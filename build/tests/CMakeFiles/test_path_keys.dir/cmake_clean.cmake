file(REMOVE_RECURSE
  "CMakeFiles/test_path_keys.dir/test_path_keys.cpp.o"
  "CMakeFiles/test_path_keys.dir/test_path_keys.cpp.o.d"
  "test_path_keys"
  "test_path_keys.pdb"
  "test_path_keys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
