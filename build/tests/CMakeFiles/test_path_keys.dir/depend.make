# Empty dependencies file for test_path_keys.
# This may be replaced when dependencies are built.
