file(REMOVE_RECURSE
  "CMakeFiles/test_late_veto.dir/test_late_veto.cpp.o"
  "CMakeFiles/test_late_veto.dir/test_late_veto.cpp.o.d"
  "test_late_veto"
  "test_late_veto.pdb"
  "test_late_veto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_late_veto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
