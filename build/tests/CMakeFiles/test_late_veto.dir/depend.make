# Empty dependencies file for test_late_veto.
# This may be replaced when dependencies are built.
