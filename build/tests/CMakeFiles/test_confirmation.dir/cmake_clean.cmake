file(REMOVE_RECURSE
  "CMakeFiles/test_confirmation.dir/test_confirmation.cpp.o"
  "CMakeFiles/test_confirmation.dir/test_confirmation.cpp.o.d"
  "test_confirmation"
  "test_confirmation.pdb"
  "test_confirmation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_confirmation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
