# Empty compiler generated dependencies file for test_confirmation.
# This may be replaced when dependencies are built.
