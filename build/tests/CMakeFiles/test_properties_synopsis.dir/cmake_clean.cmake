file(REMOVE_RECURSE
  "CMakeFiles/test_properties_synopsis.dir/test_properties_synopsis.cpp.o"
  "CMakeFiles/test_properties_synopsis.dir/test_properties_synopsis.cpp.o.d"
  "test_properties_synopsis"
  "test_properties_synopsis.pdb"
  "test_properties_synopsis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
