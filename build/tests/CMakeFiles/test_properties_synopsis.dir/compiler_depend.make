# Empty compiler generated dependencies file for test_properties_synopsis.
# This may be replaced when dependencies are built.
