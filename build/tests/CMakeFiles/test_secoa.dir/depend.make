# Empty dependencies file for test_secoa.
# This may be replaced when dependencies are built.
