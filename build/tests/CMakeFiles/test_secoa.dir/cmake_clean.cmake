file(REMOVE_RECURSE
  "CMakeFiles/test_secoa.dir/test_secoa.cpp.o"
  "CMakeFiles/test_secoa.dir/test_secoa.cpp.o.d"
  "test_secoa"
  "test_secoa.pdb"
  "test_secoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
