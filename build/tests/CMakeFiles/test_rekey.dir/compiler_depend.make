# Empty compiler generated dependencies file for test_rekey.
# This may be replaced when dependencies are built.
