file(REMOVE_RECURSE
  "CMakeFiles/test_rekey.dir/test_rekey.cpp.o"
  "CMakeFiles/test_rekey.dir/test_rekey.cpp.o.d"
  "test_rekey"
  "test_rekey.pdb"
  "test_rekey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
