file(REMOVE_RECURSE
  "CMakeFiles/test_shia.dir/test_shia.cpp.o"
  "CMakeFiles/test_shia.dir/test_shia.cpp.o.d"
  "test_shia"
  "test_shia.pdb"
  "test_shia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
