# Empty dependencies file for test_shia.
# This may be replaced when dependencies are built.
