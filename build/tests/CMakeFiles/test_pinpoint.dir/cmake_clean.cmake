file(REMOVE_RECURSE
  "CMakeFiles/test_pinpoint.dir/test_pinpoint.cpp.o"
  "CMakeFiles/test_pinpoint.dir/test_pinpoint.cpp.o.d"
  "test_pinpoint"
  "test_pinpoint.pdb"
  "test_pinpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pinpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
