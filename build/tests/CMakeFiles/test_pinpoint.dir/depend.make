# Empty dependencies file for test_pinpoint.
# This may be replaced when dependencies are built.
