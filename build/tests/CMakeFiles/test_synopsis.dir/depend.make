# Empty dependencies file for test_synopsis.
# This may be replaced when dependencies are built.
