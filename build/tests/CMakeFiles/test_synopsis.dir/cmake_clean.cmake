file(REMOVE_RECURSE
  "CMakeFiles/test_synopsis.dir/test_synopsis.cpp.o"
  "CMakeFiles/test_synopsis.dir/test_synopsis.cpp.o.d"
  "test_synopsis"
  "test_synopsis.pdb"
  "test_synopsis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synopsis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
