
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/adversary.cpp" "src/CMakeFiles/vmat.dir/attack/adversary.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/attack/adversary.cpp.o.d"
  "/root/repo/src/attack/composite.cpp" "src/CMakeFiles/vmat.dir/attack/composite.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/attack/composite.cpp.o.d"
  "/root/repo/src/attack/strategies.cpp" "src/CMakeFiles/vmat.dir/attack/strategies.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/attack/strategies.cpp.o.d"
  "/root/repo/src/baseline/alarm_only.cpp" "src/CMakeFiles/vmat.dir/baseline/alarm_only.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/alarm_only.cpp.o.d"
  "/root/repo/src/baseline/sampling.cpp" "src/CMakeFiles/vmat.dir/baseline/sampling.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/sampling.cpp.o.d"
  "/root/repo/src/baseline/secoa.cpp" "src/CMakeFiles/vmat.dir/baseline/secoa.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/secoa.cpp.o.d"
  "/root/repo/src/baseline/send_all.cpp" "src/CMakeFiles/vmat.dir/baseline/send_all.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/send_all.cpp.o.d"
  "/root/repo/src/baseline/set_sampling.cpp" "src/CMakeFiles/vmat.dir/baseline/set_sampling.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/set_sampling.cpp.o.d"
  "/root/repo/src/baseline/shia.cpp" "src/CMakeFiles/vmat.dir/baseline/shia.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/shia.cpp.o.d"
  "/root/repo/src/baseline/tag.cpp" "src/CMakeFiles/vmat.dir/baseline/tag.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/baseline/tag.cpp.o.d"
  "/root/repo/src/broadcast/auth_broadcast.cpp" "src/CMakeFiles/vmat.dir/broadcast/auth_broadcast.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/broadcast/auth_broadcast.cpp.o.d"
  "/root/repo/src/core/aggregation.cpp" "src/CMakeFiles/vmat.dir/core/aggregation.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/aggregation.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/CMakeFiles/vmat.dir/core/audit.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/audit.cpp.o.d"
  "/root/repo/src/core/confirmation.cpp" "src/CMakeFiles/vmat.dir/core/confirmation.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/confirmation.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/CMakeFiles/vmat.dir/core/coordinator.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/coordinator.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/CMakeFiles/vmat.dir/core/messages.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/messages.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/vmat.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/pinpoint.cpp" "src/CMakeFiles/vmat.dir/core/pinpoint.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/pinpoint.cpp.o.d"
  "/root/repo/src/core/predicate_test.cpp" "src/CMakeFiles/vmat.dir/core/predicate_test.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/predicate_test.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/CMakeFiles/vmat.dir/core/query.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/query.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/vmat.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/report.cpp.o.d"
  "/root/repo/src/core/synopsis.cpp" "src/CMakeFiles/vmat.dir/core/synopsis.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/synopsis.cpp.o.d"
  "/root/repo/src/core/tree_formation.cpp" "src/CMakeFiles/vmat.dir/core/tree_formation.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/core/tree_formation.cpp.o.d"
  "/root/repo/src/crypto/hash_chain.cpp" "src/CMakeFiles/vmat.dir/crypto/hash_chain.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/crypto/hash_chain.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/vmat.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/CMakeFiles/vmat.dir/crypto/mac.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/crypto/mac.cpp.o.d"
  "/root/repo/src/crypto/prf.cpp" "src/CMakeFiles/vmat.dir/crypto/prf.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/crypto/prf.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/vmat.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/keys/key_pool.cpp" "src/CMakeFiles/vmat.dir/keys/key_pool.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/keys/key_pool.cpp.o.d"
  "/root/repo/src/keys/key_ring.cpp" "src/CMakeFiles/vmat.dir/keys/key_ring.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/keys/key_ring.cpp.o.d"
  "/root/repo/src/keys/predistribution.cpp" "src/CMakeFiles/vmat.dir/keys/predistribution.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/keys/predistribution.cpp.o.d"
  "/root/repo/src/keys/revocation.cpp" "src/CMakeFiles/vmat.dir/keys/revocation.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/keys/revocation.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/CMakeFiles/vmat.dir/sim/fabric.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/sim/fabric.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/vmat.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/vmat.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/sim/topology.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/vmat.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/vmat.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/util/random.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/vmat.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/vmat.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
