# Empty compiler generated dependencies file for vmat.
# This may be replaced when dependencies are built.
