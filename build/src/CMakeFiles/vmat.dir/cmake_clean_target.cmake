file(REMOVE_RECURSE
  "libvmat.a"
)
