# Empty dependencies file for fig_neutralization.
# This may be replaced when dependencies are built.
