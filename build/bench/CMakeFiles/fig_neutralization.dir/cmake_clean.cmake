file(REMOVE_RECURSE
  "CMakeFiles/fig_neutralization.dir/fig_neutralization.cpp.o"
  "CMakeFiles/fig_neutralization.dir/fig_neutralization.cpp.o.d"
  "fig_neutralization"
  "fig_neutralization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_neutralization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
