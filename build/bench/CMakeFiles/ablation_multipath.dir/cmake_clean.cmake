file(REMOVE_RECURSE
  "CMakeFiles/ablation_multipath.dir/ablation_multipath.cpp.o"
  "CMakeFiles/ablation_multipath.dir/ablation_multipath.cpp.o.d"
  "ablation_multipath"
  "ablation_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
