# Empty dependencies file for ablation_sof.
# This may be replaced when dependencies are built.
