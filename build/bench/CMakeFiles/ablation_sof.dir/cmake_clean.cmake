file(REMOVE_RECURSE
  "CMakeFiles/ablation_sof.dir/ablation_sof.cpp.o"
  "CMakeFiles/ablation_sof.dir/ablation_sof.cpp.o.d"
  "ablation_sof"
  "ablation_sof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
