file(REMOVE_RECURSE
  "CMakeFiles/fig8_approximation.dir/fig8_approximation.cpp.o"
  "CMakeFiles/fig8_approximation.dir/fig8_approximation.cpp.o.d"
  "fig8_approximation"
  "fig8_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
