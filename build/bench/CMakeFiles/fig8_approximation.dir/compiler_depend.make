# Empty compiler generated dependencies file for fig8_approximation.
# This may be replaced when dependencies are built.
