# Empty compiler generated dependencies file for ablation_theta.
# This may be replaced when dependencies are built.
