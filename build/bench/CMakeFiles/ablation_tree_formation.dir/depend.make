# Empty dependencies file for ablation_tree_formation.
# This may be replaced when dependencies are built.
