file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_formation.dir/ablation_tree_formation.cpp.o"
  "CMakeFiles/ablation_tree_formation.dir/ablation_tree_formation.cpp.o.d"
  "ablation_tree_formation"
  "ablation_tree_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
