file(REMOVE_RECURSE
  "CMakeFiles/fig7_misrevocation.dir/fig7_misrevocation.cpp.o"
  "CMakeFiles/fig7_misrevocation.dir/fig7_misrevocation.cpp.o.d"
  "fig7_misrevocation"
  "fig7_misrevocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_misrevocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
