# Empty compiler generated dependencies file for fig7_misrevocation.
# This may be replaced when dependencies are built.
