file(REMOVE_RECURSE
  "CMakeFiles/table_comm_cost.dir/table_comm_cost.cpp.o"
  "CMakeFiles/table_comm_cost.dir/table_comm_cost.cpp.o.d"
  "table_comm_cost"
  "table_comm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
