# Empty dependencies file for table_comm_cost.
# This may be replaced when dependencies are built.
