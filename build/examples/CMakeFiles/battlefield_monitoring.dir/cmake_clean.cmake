file(REMOVE_RECURSE
  "CMakeFiles/battlefield_monitoring.dir/battlefield_monitoring.cpp.o"
  "CMakeFiles/battlefield_monitoring.dir/battlefield_monitoring.cpp.o.d"
  "battlefield_monitoring"
  "battlefield_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
