# Empty dependencies file for battlefield_monitoring.
# This may be replaced when dependencies are built.
