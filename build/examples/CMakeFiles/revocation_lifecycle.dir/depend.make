# Empty dependencies file for revocation_lifecycle.
# This may be replaced when dependencies are built.
