# Empty dependencies file for vmatsim.
# This may be replaced when dependencies are built.
