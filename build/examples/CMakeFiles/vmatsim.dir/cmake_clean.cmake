file(REMOVE_RECURSE
  "CMakeFiles/vmatsim.dir/vmatsim.cpp.o"
  "CMakeFiles/vmatsim.dir/vmatsim.cpp.o.d"
  "vmatsim"
  "vmatsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmatsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
