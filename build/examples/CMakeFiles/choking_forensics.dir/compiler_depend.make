# Empty compiler generated dependencies file for choking_forensics.
# This may be replaced when dependencies are built.
