file(REMOVE_RECURSE
  "CMakeFiles/choking_forensics.dir/choking_forensics.cpp.o"
  "CMakeFiles/choking_forensics.dir/choking_forensics.cpp.o.d"
  "choking_forensics"
  "choking_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/choking_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
