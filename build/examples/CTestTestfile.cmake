# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_battlefield "/root/repo/build/examples/battlefield_monitoring")
set_tests_properties(example_battlefield PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_choking "/root/repo/build/examples/choking_forensics")
set_tests_properties(example_choking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_revocation "/root/repo/build/examples/revocation_lifecycle")
set_tests_properties(example_revocation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vmatsim "/root/repo/build/examples/vmatsim" "--nodes" "36" "--topology" "grid" "--attack" "junk" "--f" "1" "--theta" "0" "--executions" "6")
set_tests_properties(example_vmatsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vmatsim_sparse "/root/repo/build/examples/vmatsim" "--nodes" "49" "--topology" "grid" "--attack" "none" "--query" "count" "--sparse-keys" "--executions" "2")
set_tests_properties(example_vmatsim_sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
