// vmatsim — command-line driver for ad-hoc VMAT experiments.
//
//   vmatsim [--nodes N] [--topology grid|geometric|line]
//           [--attack none|silent|drop|junk|choke|selfveto|wormhole|random|garbage]
//           [--f K] [--theta T] [--query min|count] [--instances M]
//           [--seed S] [--executions E] [--multipath] [--sparse-keys]
//           [--trace FILE]
//
// Runs E query executions against the configured adversary and reports
// each outcome plus the final revocation state. With --trace, records the
// full flight-recorder event stream across all executions, writes it to
// FILE as JSON (readable by tools/check_trace.py), and runs the built-in
// trace-invariant checker over the recording.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "attack/composite.h"
#include "vmat.h"

namespace {

struct Options {
  std::uint32_t nodes = 100;
  std::string topology = "geometric";
  std::string attack = "silent";
  std::uint32_t f = 2;
  std::uint32_t theta = 0;
  std::string query = "min";
  std::uint32_t instances = 50;
  std::uint64_t seed = 1;
  int executions = 25;
  bool multipath = false;
  bool sparse_keys = false;
  std::string trace;  // empty = no recording
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--nodes N] [--topology grid|geometric|line]\n"
      "          [--attack none|silent|drop|junk|choke|selfveto|wormhole|"
      "random|garbage]\n"
      "          [--f K] [--theta T] [--query min|count] [--instances M]\n"
      "          [--seed S] [--executions E] [--multipath] [--sparse-keys]\n"
      "          [--trace FILE]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--nodes") o.nodes = static_cast<std::uint32_t>(std::stoul(value()));
    else if (flag == "--topology") o.topology = value();
    else if (flag == "--attack") o.attack = value();
    else if (flag == "--f") o.f = static_cast<std::uint32_t>(std::stoul(value()));
    else if (flag == "--theta") o.theta = static_cast<std::uint32_t>(std::stoul(value()));
    else if (flag == "--query") o.query = value();
    else if (flag == "--instances") o.instances = static_cast<std::uint32_t>(std::stoul(value()));
    else if (flag == "--seed") o.seed = std::stoull(value());
    else if (flag == "--executions") o.executions = std::stoi(value());
    else if (flag == "--multipath") o.multipath = true;
    else if (flag == "--sparse-keys") o.sparse_keys = true;
    else if (flag == "--trace") o.trace = value();
    else usage(argv[0]);
  }
  return o;
}

vmat::Topology make_topology(const Options& o) {
  if (o.topology == "grid") {
    const auto side = static_cast<std::uint32_t>(std::sqrt(o.nodes));
    return vmat::Topology::grid(side, side);
  }
  if (o.topology == "line") return vmat::Topology::line(o.nodes);
  const double radius = 1.8 / std::sqrt(static_cast<double>(o.nodes));
  return vmat::Topology::random_geometric(o.nodes, radius, o.seed);
}

std::unique_ptr<vmat::AdversaryStrategy> make_strategy(const Options& o) {
  using namespace vmat;
  if (o.attack == "none") return std::make_unique<NullStrategy>();
  if (o.attack == "silent")
    return std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll);
  if (o.attack == "drop")
    return std::make_unique<ValueDropStrategy>(LiePolicy::kRandom);
  if (o.attack == "junk")
    return std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll);
  if (o.attack == "choke")
    return std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll);
  if (o.attack == "selfveto")
    return std::make_unique<SelfVetoStrategy>(1, LiePolicy::kDenyAll);
  if (o.attack == "wormhole")
    return std::make_unique<WormholeStrategy>(100, LiePolicy::kDenyAll);
  if (o.attack == "random")
    return std::make_unique<RandomByzantineStrategy>(o.seed);
  if (o.attack == "garbage") return std::make_unique<GarbageStrategy>(o.seed);
  std::fprintf(stderr, "unknown attack: %s\n", o.attack.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  const auto topology = make_topology(o);
  vmat::NetworkConfig netcfg;
  if (o.sparse_keys) {
    netcfg.keys.pool_size = 5000;
    netcfg.keys.ring_size = 50;
  } else {
    netcfg.keys.pool_size = 1000;
    netcfg.keys.ring_size = 180;
  }
  netcfg.keys.seed = o.seed;
  netcfg.revocation_threshold = o.theta;
  vmat::Network net(topology, netcfg);
  if (o.sparse_keys) {
    const auto established = net.establish_path_keys();
    std::printf("path keys established: %zu\n", established);
  }

  std::unordered_set<vmat::NodeId> malicious;
  if (o.attack != "none" && o.f > 0)
    malicious = vmat::choose_malicious(topology, o.f, o.seed + 17);
  vmat::Adversary adversary(&net, malicious, make_strategy(o));

  vmat::VmatConfig cfg;
  cfg.depth_bound = topology.depth(malicious);
  cfg.multipath = o.multipath;
  cfg.instances = o.query == "count" ? o.instances : 1;
  cfg.seed = o.seed;
  vmat::VmatCoordinator coordinator(&net, &adversary, cfg);

  vmat::FlightRecorder recorder;
  if (!o.trace.empty()) coordinator.set_recorder(&recorder);

  std::printf("vmatsim: attack=%s f=%zu theta=%u query=%s L=%d\n%s\n",
              o.attack.c_str(), malicious.size(), o.theta, o.query.c_str(),
              coordinator.effective_depth_bound(),
              vmat::describe_deployment(net).c_str());

  std::vector<vmat::Reading> readings(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    readings[id] = 1000 + static_cast<vmat::Reading>((id * 131) % 777);
  std::vector<std::uint8_t> predicate(net.node_count(), 0);
  for (std::uint32_t id = 1; id < net.node_count(); id += 2) predicate[id] = 1;

  vmat::QueryEngine queries(&coordinator);
  int answered = 0, disrupted = 0;
  for (int e = 1; e <= o.executions; ++e) {
    if (o.query == "count") {
      const auto out = queries.count(predicate);
      if (out.answered()) {
        ++answered;
        std::printf("exec %3d: COUNT ~= %.1f\n", e, *out.estimate);
      } else {
        ++disrupted;
        std::printf("exec %3d: disrupted (%s) -> revoked %zu keys, %zu "
                    "sensors [%s]\n",
                    e, vmat::to_string(out.exec.trigger),
                    out.exec.revoked_keys.size(),
                    out.exec.revoked_sensors.size(), out.exec.reason.c_str());
      }
    } else {
      const auto out = coordinator.run_min(readings);
      if (out.produced_result()) {
        ++answered;
        std::printf("exec %3d: MIN = %lld\n", e,
                    static_cast<long long>(out.minima[0]));
      } else {
        ++disrupted;
        std::printf("exec %3d: disrupted (%s) -> revoked %zu keys, %zu "
                    "sensors [%s]\n",
                    e, vmat::to_string(out.trigger), out.revoked_keys.size(),
                    out.revoked_sensors.size(), out.reason.c_str());
      }
    }
  }

  std::printf("\nsummary: %d answered, %d disrupted\n%s", answered,
              disrupted, vmat::describe_revocations(net).c_str());

  if (!o.trace.empty()) {
    if (!recorder.write_json(o.trace)) {
      std::fprintf(stderr, "failed to write trace: %s\n", o.trace.c_str());
      return 1;
    }
    const auto check = vmat::check_trace(recorder);
    std::printf("trace: %zu execution(s), %zu event(s); invariants %s\n",
                recorder.execution_count(), recorder.events().size(),
                check.ok() ? "OK" : "VIOLATED");
    if (!check.ok()) {
      std::printf("%s", check.to_string().c_str());
      return 1;
    }
  }
  return 0;
}
