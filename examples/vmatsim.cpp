// vmatsim — command-line driver for ad-hoc VMAT experiments.
//
//   vmatsim [--nodes N] [--topology grid|geometric|line]
//           [--attack none|silent|drop|junk|choke|selfveto|wormhole|random|garbage]
//           [--f K] [--theta T] [--query min|count] [--instances M]
//           [--seed S] [--executions E] [--serve Q] [--multipath]
//           [--sparse-keys] [--trace FILE]
//           [--campaign P] [--corpus FILE] [--replay FILE]
//           [--daemon] [--tenants N] [--adversary-tenants A] [--socket PATH]
//
// Default mode runs E one-shot query executions against the configured
// adversary and reports each outcome plus the final revocation state.
// --serve Q instead submits Q queries (COUNT / SUM / AVERAGE / MIN / MAX /
// quantile, round-robin) to the epoch-batched serving engine and reports
// per-query results, engine stats, and per-epoch rollups. With --trace,
// records the full flight-recorder event stream, writes it to FILE as JSON
// (readable by tools/check_trace.py), and runs the built-in trace-invariant
// checker over the recording.
//
// --campaign P runs the coverage-guided strategy fuzzer (src/campaign/):
// P probes forked from one post-formation snapshot, searching the
// (policy x predicate x seed) space for worst cases; prints the
// deterministic worst-case table. --corpus FILE seeds the search from an
// existing corpus (if the file exists) and writes the found corpus back;
// --trace exports the worst probe's event stream. --replay FILE instead
// re-executes every corpus entry and verifies its outcome digest — the
// regression mode the committed corpus runs under ctest.
//
// --daemon starts vmatd: N independent tenants served over the frame
// protocol (src/serve/protocol.h) on stdin/stdout, or on a Unix socket
// with --socket PATH (accepts one session). The first A tenants host a
// ChokeVeto adversary compromising --f nodes each. --trace records
// tenant 0's epoch formations and serving executions and writes the JSON
// after the session ends (the frame stream itself stays clean).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "attack/composite.h"
#include "vmat.h"

namespace {

struct Options {
  std::uint32_t nodes = 100;
  std::string topology = "geometric";
  std::string attack = "silent";
  std::uint32_t f = 2;
  std::uint32_t theta = 0;
  std::string query = "min";
  std::uint32_t instances = 50;
  std::uint64_t seed = 1;
  int executions = 25;
  int serve = 0;  // > 0: epoch-batched serving mode with this many queries
  bool multipath = false;
  bool sparse_keys = false;
  std::string trace;  // empty = no recording
  // --campaign mode
  std::uint32_t campaign = 0;  // > 0: fuzz with this probe budget
  std::string corpus;          // seed corpus in / found corpus out
  std::string replay;          // corpus regression replay mode
  // --daemon mode
  bool daemon = false;
  std::uint32_t tenants = 8;
  std::uint32_t adversary_tenants = 0;
  std::string socket_path;  // empty = stdin/stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--nodes N] [--topology grid|geometric|line]\n"
      "          [--attack none|silent|drop|junk|choke|selfveto|wormhole|"
      "random|garbage]\n"
      "          [--f K] [--theta T] [--query min|count] [--instances M]\n"
      "          [--seed S] [--executions E] [--serve Q] [--multipath]\n"
      "          [--sparse-keys] [--trace FILE]\n"
      "          [--campaign P] [--corpus FILE] [--replay FILE]\n"
      "          [--daemon] [--tenants N] [--adversary-tenants A] "
      "[--socket PATH]\n",
      argv0);
  std::exit(2);
}

/// Checked integer flag parsing — every count/seed flag goes through here.
/// A bare std::stoi would accept "12abc" (silently dropping the suffix)
/// and die with an unhelpful std::invalid_argument backtrace on "abc";
/// instead every malformed or out-of-range value gets a per-flag error.
std::uint64_t parse_uint(const char* flag, const std::string& text,
                         std::uint64_t min_value, std::uint64_t max_value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  const bool malformed = text.empty() || end != text.c_str() + text.size() ||
                         text.front() == '-' ||  // strtoull wraps negatives
                         errno == ERANGE;
  if (malformed) {
    std::fprintf(stderr, "vmatsim: %s: expected an unsigned integer, got '%s'\n",
                 flag, text.c_str());
    std::exit(2);
  }
  if (v < min_value || v > max_value) {
    std::fprintf(stderr,
                 "vmatsim: %s: value %llu out of range [%llu, %llu]\n", flag,
                 v, static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value));
    std::exit(2);
  }
  return v;
}

/// A count that must be positive (--nodes 0 is a config bug, not a run).
std::uint32_t parse_count(const char* flag, const std::string& text) {
  return static_cast<std::uint32_t>(parse_uint(flag, text, 1, 1u << 20));
}

/// A size that may legitimately be zero (--f 0, --theta 0, ...).
std::uint32_t parse_size(const char* flag, const std::string& text) {
  return static_cast<std::uint32_t>(parse_uint(flag, text, 0, 1u << 20));
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vmatsim: %s: missing value\n", flag.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (flag == "--nodes") o.nodes = parse_count("--nodes", value());
    else if (flag == "--topology") o.topology = value();
    else if (flag == "--attack") o.attack = value();
    else if (flag == "--f") o.f = parse_size("--f", value());
    else if (flag == "--theta") o.theta = parse_size("--theta", value());
    else if (flag == "--query") o.query = value();
    else if (flag == "--instances") o.instances = parse_count("--instances", value());
    else if (flag == "--seed") o.seed = parse_uint("--seed", value(), 0, ~0ull);
    else if (flag == "--executions") o.executions = static_cast<int>(parse_count("--executions", value()));
    else if (flag == "--serve") o.serve = static_cast<int>(parse_count("--serve", value()));
    else if (flag == "--multipath") o.multipath = true;
    else if (flag == "--sparse-keys") o.sparse_keys = true;
    else if (flag == "--trace") o.trace = value();
    else if (flag == "--campaign") o.campaign = parse_count("--campaign", value());
    else if (flag == "--corpus") o.corpus = value();
    else if (flag == "--replay") o.replay = value();
    else if (flag == "--daemon") o.daemon = true;
    else if (flag == "--tenants") o.tenants = parse_count("--tenants", value());
    else if (flag == "--adversary-tenants") o.adversary_tenants = parse_size("--adversary-tenants", value());
    else if (flag == "--socket") o.socket_path = value();
    else usage(argv[0]);
  }
  if (o.adversary_tenants > o.tenants) {
    std::fprintf(stderr,
                 "vmatsim: --adversary-tenants %u exceeds --tenants %u\n",
                 o.adversary_tenants, o.tenants);
    std::exit(2);
  }
  return o;
}

/// One validated SimulationSpec from the command line — the whole
/// deployment in a single builder (the unified public API; see
/// spec/simulation_spec.h).
vmat::SimulationSpec make_spec(Options& o) {
  vmat::SimulationSpec spec;
  const auto kind = vmat::topology_kind_from(o.topology);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown topology: %s\n", o.topology.c_str());
    std::exit(2);
  }
  if (*kind == vmat::TopologyKind::kGrid) {
    // Grid deployments need a perfect square; round down like the old CLI.
    const auto side = static_cast<std::uint32_t>(std::sqrt(o.nodes));
    o.nodes = side * side;
  }
  spec.nodes(o.nodes).topology(*kind).seed(o.seed);
  if (o.sparse_keys)
    spec.key_pool(5000, 50);
  else
    spec.key_pool(1000, 180);
  spec.revocation_threshold(o.theta);
  spec.multipath(o.multipath);
  spec.instances(o.query == "count" || o.serve > 0 ? o.instances : 1);
  const auto errors = spec.validate();
  if (!errors.empty()) {
    for (const auto& e : errors)
      std::fprintf(stderr, "invalid spec: %s\n", e.to_string().c_str());
    std::exit(2);
  }
  return spec;
}

/// The classic named attacks, described declaratively (the AttackSpec path —
/// the zoo subclasses these mirror remain only for attacks whose behavior is
/// not expressible as a policy x predicate genome).
bool describe_attack(const std::string& name, vmat::AttackSpec& attack) {
  using vmat::campaign::AggAction;
  using vmat::campaign::AttackPolicy;
  using vmat::campaign::AttackPredicate;
  using vmat::campaign::ConfAction;
  // The zoo's choking attacks all strike in the first slot only.
  const AttackPredicate first_slot =
      AttackPredicate::slot_at_least(1) && !AttackPredicate::slot_at_least(2);
  AttackPolicy policy;
  if (name == "silent") {
    attack.policy(policy);
  } else if (name == "drop") {
    policy.agg = AggAction::kForwardMax;
    policy.lie = vmat::LiePolicy::kRandom;
    attack.policy(policy);
  } else if (name == "junk") {
    policy.agg = AggAction::kInjectJunk;
    attack.policy(policy).when(first_slot);
  } else if (name == "choke") {
    policy.conf = ConfAction::kChokeVeto;
    attack.policy(policy).when(first_slot);
  } else if (name == "selfveto") {
    policy.conf = ConfAction::kSelfVeto;
    policy.self_veto_value = 1;
    attack.policy(policy).when(first_slot);
  } else {
    return false;
  }
  return true;
}

/// Zoo strategies with behavior outside the declarative genome (physical
/// wormholes, per-slot coin flips, malformed frames).
std::unique_ptr<vmat::AdversaryStrategy> make_zoo_strategy(const Options& o) {
  using namespace vmat;
  if (o.attack == "wormhole")
    return std::make_unique<WormholeStrategy>(100, LiePolicy::kDenyAll);
  if (o.attack == "random")
    return std::make_unique<RandomByzantineStrategy>(o.seed);
  if (o.attack == "garbage") return std::make_unique<GarbageStrategy>(o.seed);
  std::fprintf(stderr, "unknown attack: %s\n", o.attack.c_str());
  std::exit(2);
}

/// Place the configured adversary: the declarative AttackSpec path when the
/// attack is expressible as policy x predicate, the zoo otherwise.
std::unique_ptr<vmat::Adversary> make_adversary(const Options& o,
                                                vmat::SimulationSpec& spec,
                                                vmat::Network& net) {
  if (o.attack == "none" || o.f == 0)
    return std::make_unique<vmat::Adversary>(
        &net, std::unordered_set<vmat::NodeId>{},
        std::make_unique<vmat::NullStrategy>());
  if (describe_attack(o.attack, spec.attack())) {
    spec.attack().compromised(o.f).placement_seed(o.seed + 17);
    auto built = spec.build_adversary(net);
    if (!built.has_value()) {
      std::fprintf(stderr, "vmatsim: %s\n", built.error().to_string().c_str());
      std::exit(2);
    }
    return std::move(built.value());
  }
  auto malicious = vmat::choose_malicious(net.topology(), o.f, o.seed + 17);
  return std::make_unique<vmat::Adversary>(&net, std::move(malicious),
                                           make_zoo_strategy(o));
}

/// Round-robin over the engine's query kinds so a --serve run exercises
/// the whole serving surface.
vmat::EngineQuery make_served_query(int index, std::uint32_t n,
                                    const std::vector<vmat::Reading>& readings,
                                    const std::vector<std::uint8_t>& predicate) {
  vmat::EngineQuery q;
  std::vector<std::int64_t> weights(n, 0);
  for (std::uint32_t id = 1; id < n; ++id) weights[id] = readings[id];
  switch (index % 6) {
    case 0:
      q.kind = vmat::EngineQueryKind::kCount;
      q.predicate = predicate;
      break;
    case 1:
      q.kind = vmat::EngineQueryKind::kSum;
      q.readings = weights;
      break;
    case 2:
      q.kind = vmat::EngineQueryKind::kAverage;
      q.readings = weights;
      break;
    case 3:
      q.kind = vmat::EngineQueryKind::kMin;
      q.raw = readings;
      break;
    case 4:
      q.kind = vmat::EngineQueryKind::kMax;
      q.raw = readings;
      break;
    default:
      q.kind = vmat::EngineQueryKind::kQuantile;
      q.readings = weights;
      q.q = 0.5;
      q.domain_max = 2048;
      break;
  }
  return q;
}

int run_serving_mode(const Options& o, vmat::VmatCoordinator& coordinator,
                     const std::vector<vmat::Reading>& readings,
                     const std::vector<std::uint8_t>& predicate) {
  const std::uint32_t n = coordinator.network().node_count();
  vmat::Engine engine(&coordinator);
  std::vector<vmat::EngineQuery> batch;
  batch.reserve(static_cast<std::size_t>(o.serve));
  for (int q = 0; q < o.serve; ++q)
    batch.push_back(make_served_query(q, n, readings, predicate));
  const auto results = engine.run_batch(std::move(batch));

  for (const auto& r : results) {
    if (r.answered())
      std::printf("query %3llu: %-8s ~= %.1f  (executions %d, epoch %llu)\n",
                  static_cast<unsigned long long>(r.id),
                  vmat::to_string(r.kind), *r.estimate, r.executions,
                  static_cast<unsigned long long>(r.epoch_id));
    else
      std::printf("query %3llu: %-8s FAILED: %s\n",
                  static_cast<unsigned long long>(r.id),
                  vmat::to_string(r.kind),
                  r.error.has_value() ? r.error->to_string().c_str() : "?");
  }

  const vmat::EngineStats& stats = engine.stats();
  std::printf(
      "\nengine: %llu round(s), %llu execution(s) (%llu disrupted), "
      "%llu epoch(s), %llu answered, %llu failed, %.1f KB on fabric\n",
      static_cast<unsigned long long>(stats.rounds),
      static_cast<unsigned long long>(stats.executions),
      static_cast<unsigned long long>(stats.disrupted_executions),
      static_cast<unsigned long long>(stats.epochs_formed),
      static_cast<unsigned long long>(stats.queries_answered),
      static_cast<unsigned long long>(stats.queries_failed),
      static_cast<double>(stats.fabric_bytes) / 1024.0);
  for (const auto& epoch : engine.epoch_rollups())
    std::printf(
        "  epoch %llu: formation %d round(s) %.1f KB | %llu execution(s), "
        "%llu query(ies) served, %.1f KB\n",
        static_cast<unsigned long long>(epoch.epoch_id),
        epoch.formation_rounds,
        static_cast<double>(epoch.formation_bytes) / 1024.0,
        static_cast<unsigned long long>(epoch.executions),
        static_cast<unsigned long long>(epoch.queries_served),
        static_cast<double>(epoch.fabric_bytes) / 1024.0);
  return stats.queries_failed == 0 ? 0 : 1;
}

/// --campaign: the coverage-guided strategy fuzzer. Deterministic for a
/// fixed (--seed, --campaign, deployment) triple: same corpus, same
/// coverage counters, same worst-case table, any VMAT_THREADS.
int run_campaign_mode(const Options& o, const vmat::SimulationSpec& base_spec) {
  namespace camp = vmat::campaign;
  camp::CampaignConfig config;
  config.spec = base_spec;
  config.compromised = o.f == 0 ? 2 : o.f;
  config.placement_seed = o.seed + 17;
  config.probes = o.campaign;
  config.seed = o.seed;
  if (!o.corpus.empty())
    if (auto seeds = camp::Corpus::load(o.corpus); seeds.has_value()) {
      config.seeds = std::move(seeds.value());
      std::printf("corpus: seeded search with %zu entr(ies) from %s\n",
                  config.seeds.entries.size(), o.corpus.c_str());
    }
  camp::CampaignRunner runner(std::move(config));
  const camp::CampaignResult result = runner.run();
  std::printf("%s", result.table().c_str());
  if (!o.corpus.empty()) {
    if (const vmat::Status saved = result.corpus.save(o.corpus);
        !saved.has_value()) {
      std::fprintf(stderr, "vmatsim: %s\n", saved.error().to_string().c_str());
      return 1;
    }
    std::printf("corpus: wrote %zu entr(ies) to %s\n",
                result.corpus.entries.size(), o.corpus.c_str());
  }
  if (!o.trace.empty() && !result.probes.empty()) {
    // Export the most interesting probe's full event stream.
    std::size_t index = 0;
    if (result.first_violation.has_value()) index = *result.first_violation;
    else if (result.worst_ruin.has_value()) index = *result.worst_ruin;
    else if (result.worst_misrevocation.has_value()) index = *result.worst_misrevocation;
    else if (result.worst_latency.has_value()) index = *result.worst_latency;
    vmat::FlightRecorder recorder;
    (void)runner.replay(result.probes[index].entry, recorder);
    if (!recorder.write_json(o.trace)) {
      std::fprintf(stderr, "failed to write trace: %s\n", o.trace.c_str());
      return 1;
    }
    const auto check = vmat::check_trace(recorder);
    std::printf("trace: probe %zu, %zu event(s); invariants %s\n", index,
                recorder.events().size(), check.ok() ? "OK" : "VIOLATED");
  }
  return result.first_violation.has_value() ? 1 : 0;
}

/// --replay: corpus regression mode. Re-executes every entry through the
/// probe path and verifies the recorded outcome digest.
int run_replay_mode(const Options& o, const vmat::SimulationSpec& base_spec) {
  namespace camp = vmat::campaign;
  auto loaded = camp::Corpus::load(o.replay);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "vmatsim: --replay: %s\n",
                 loaded.error().to_string().c_str());
    return 2;
  }
  camp::CampaignConfig config;
  config.spec = base_spec;
  config.compromised = o.f == 0 ? 2 : o.f;
  config.placement_seed = o.seed + 17;
  config.seed = o.seed;
  camp::CampaignRunner runner(std::move(config));
  int drifted = 0;
  std::size_t violations = 0;
  const auto& entries = loaded.value().entries;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const camp::ProbeOutcome po = runner.replay(entries[i]);
    const bool match =
        entries[i].digest == 0 || entries[i].digest == po.entry.digest;
    violations += po.violations;
    std::printf("replay %2zu [%-9s]: digest %016llx %s\n", i,
                entries[i].objective.c_str(),
                static_cast<unsigned long long>(po.entry.digest),
                match ? "ok" : "DRIFT");
    if (!match) ++drifted;
  }
  std::printf("replay: %zu entr(ies), %d drifted, %zu violation(s)\n",
              entries.size(), drifted, violations);
  return drifted == 0 ? 0 : 1;
}

/// vmatd entry: serve the frame protocol on stdin/stdout, or accept one
/// session on a Unix socket. Nodes/topology/instances/f/seed flags shape
/// every tenant identically (tenant t perturbs the seed).
int run_daemon_mode(const Options& o) {
  vmat::serve::ServeOptions so;
  so.tenants = o.tenants;
  so.nodes = o.nodes;
  const auto kind = vmat::topology_kind_from(o.topology);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown topology: %s\n", o.topology.c_str());
    return 2;
  }
  so.topology = *kind;
  so.instances = o.instances;
  so.adversary_tenants = o.adversary_tenants;
  so.f = o.f;
  // vmatsim's --theta default (0) keeps one-shot semantics; for the
  // daemon 0 would let a ChokeVeto tenant burn whole deadlines before
  // neutralization, so 0 means "keep the daemon default" here.
  if (o.theta > 0) so.theta = o.theta;
  so.seed = o.seed;
  vmat::serve::Daemon daemon(so);

  // --trace: record tenant 0's epoch formations + serving executions; the
  // JSON is written (and the invariant checker run) after the session ends
  // so nothing interleaves with the frame stream.
  vmat::FlightRecorder recorder;
  if (!o.trace.empty()) daemon.set_recorder(0, &recorder);
  const auto finish_trace = [&o, &recorder, &daemon](int rc) {
    if (o.trace.empty()) return rc;
    daemon.set_recorder(0, nullptr);
    if (!recorder.write_json(o.trace)) {
      std::fprintf(stderr, "failed to write trace: %s\n", o.trace.c_str());
      return rc == 0 ? 1 : rc;
    }
    const auto check = vmat::check_trace(recorder);
    std::fprintf(stderr, "trace: %zu event(s); invariants %s\n",
                 recorder.events().size(), check.ok() ? "OK" : "VIOLATED");
    if (!check.ok()) {
      std::fprintf(stderr, "%s\n", check.to_string().c_str());
      return rc == 0 ? 1 : rc;
    }
    return rc;
  };

  if (o.socket_path.empty())
    return finish_trace(daemon.run(STDIN_FILENO, STDOUT_FILENO));

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("vmatsim: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (o.socket_path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "vmatsim: --socket: path too long\n");
    ::close(listener);
    return 2;
  }
  std::memcpy(addr.sun_path, o.socket_path.c_str(), o.socket_path.size() + 1);
  ::unlink(o.socket_path.c_str());  // stale socket from a previous run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 1) != 0) {
    std::perror("vmatsim: bind/listen");
    ::close(listener);
    return 1;
  }
  const int session = ::accept(listener, nullptr, nullptr);
  if (session < 0) {
    std::perror("vmatsim: accept");
    ::close(listener);
    return 1;
  }
  const int rc = daemon.run(session, session);
  ::close(session);
  ::close(listener);
  ::unlink(o.socket_path.c_str());
  return finish_trace(rc);
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  if (o.daemon) return run_daemon_mode(o);

  const vmat::SimulationSpec base_spec = make_spec(o);
  if (o.campaign > 0 || !o.replay.empty()) {
    try {
      return o.replay.empty() ? run_campaign_mode(o, base_spec)
                              : run_replay_mode(o, base_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vmatsim: %s\n", e.what());
      return 2;
    }
  }

  vmat::Network net(base_spec);
  if (o.sparse_keys) {
    const auto established = net.establish_path_keys();
    std::printf("path keys established: %zu\n", established);
  }

  vmat::SimulationSpec spec = base_spec;
  std::unique_ptr<vmat::Adversary> adversary_ptr = make_adversary(o, spec, net);
  vmat::Adversary& adversary = *adversary_ptr;
  const std::unordered_set<vmat::NodeId>& malicious = adversary.malicious();

  spec.depth_bound(net.topology().depth(malicious));
  vmat::VmatCoordinator coordinator(&net, &adversary, spec);

  vmat::FlightRecorder recorder;
  if (!o.trace.empty()) coordinator.set_recorder(&recorder);

  std::printf("vmatsim: attack=%s f=%zu theta=%u query=%s L=%d\n%s\n",
              o.attack.c_str(), malicious.size(), o.theta, o.query.c_str(),
              coordinator.effective_depth_bound(),
              vmat::describe_deployment(net).c_str());

  std::vector<vmat::Reading> readings(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    readings[id] = 1000 + static_cast<vmat::Reading>((id * 131) % 777);
  std::vector<std::uint8_t> predicate(net.node_count(), 0);
  for (std::uint32_t id = 1; id < net.node_count(); id += 2) predicate[id] = 1;

  int serve_status = 0;
  if (o.serve > 0) {
    serve_status = run_serving_mode(o, coordinator, readings, predicate);
  } else {
    vmat::QueryEngine queries(&coordinator);
    int answered = 0, disrupted = 0;
    for (int e = 1; e <= o.executions; ++e) {
      if (o.query == "count") {
        const auto out = queries.count(predicate);
        if (out.answered()) {
          ++answered;
          std::printf("exec %3d: COUNT ~= %.1f\n", e, *out.estimate);
        } else {
          ++disrupted;
          std::printf("exec %3d: disrupted (%s) -> revoked %zu keys, %zu "
                      "sensors [%s]\n",
                      e, vmat::to_string(out.exec.trigger),
                      out.exec.revoked_keys.size(),
                      out.exec.revoked_sensors.size(),
                      out.exec.reason.c_str());
        }
      } else {
        const auto out = coordinator.run_min(readings);
        if (out.produced_result()) {
          ++answered;
          std::printf("exec %3d: MIN = %lld\n", e,
                      static_cast<long long>(out.minima[0]));
        } else {
          ++disrupted;
          std::printf("exec %3d: disrupted (%s) -> revoked %zu keys, %zu "
                      "sensors [%s]\n",
                      e, vmat::to_string(out.trigger), out.revoked_keys.size(),
                      out.revoked_sensors.size(), out.reason.c_str());
        }
      }
    }
    std::printf("\nsummary: %d answered, %d disrupted\n%s", answered,
                disrupted, vmat::describe_revocations(net).c_str());
  }

  if (!o.trace.empty()) {
    if (!recorder.write_json(o.trace)) {
      std::fprintf(stderr, "failed to write trace: %s\n", o.trace.c_str());
      return 1;
    }
    const auto check = vmat::check_trace(recorder);
    std::printf("trace: %zu execution(s), %zu event(s); invariants %s\n",
                recorder.execution_count(), recorder.events().size(),
                check.ok() ? "OK" : "VIOLATED");
    if (!check.ok()) {
      std::printf("%s", check.to_string().c_str());
      return 1;
    }
  }
  return serve_status;
}
