// Battlefield monitoring (the paper's motivating deployment): periodic
// MIN queries over acoustic sensors while an adversary compromises relays
// mid-campaign and starts dropping readings. Shows the Theorem 7 loop in
// action: a few disrupted rounds each revoke adversary key material, and
// the system returns to correct answers without human intervention.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "vmat.h"

int main() {
  const auto topology =
      vmat::Topology::random_geometric(/*n=*/150, /*radius=*/0.17, /*seed=*/5);

  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 2000;
  netcfg.keys.ring_size = 100;  // mean pairwise overlap r²/u = 5
  netcfg.keys.seed = 11;
  netcfg.revocation_threshold = 25;
  vmat::Network net(topology, netcfg);

  // The adversary captures the relays between the base station and a
  // deep sensor (the worst case: every shortest path from that sensor
  // crosses a captured relay).
  const auto depth = topology.bfs_depth();
  std::unordered_set<vmat::NodeId> captured;
  std::uint32_t watched_sensor = 0;
  {
    std::vector<std::uint32_t> order(topology.node_count());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return depth[a] > depth[b];
              });
    for (std::uint32_t candidate : order) {
      if (depth[candidate] < 2) break;
      std::unordered_set<vmat::NodeId> cut;
      for (vmat::NodeId v : topology.neighbors(vmat::NodeId{candidate}))
        if (depth[v.value] == depth[candidate] - 1) cut.insert(v);
      if (!cut.empty() && cut.size() <= 3 && topology.connected(cut)) {
        captured = std::move(cut);
        watched_sensor = candidate;
        break;
      }
    }
  }
  std::printf("compromised relays:");
  for (vmat::NodeId m : captured) std::printf(" %u", m.value);
  std::printf("  (cutting off sensor %u at depth %d)\n\n", watched_sensor,
              depth[watched_sensor]);

  vmat::Adversary adversary(
      &net, captured,
      std::make_unique<vmat::ValueDropStrategy>(vmat::LiePolicy::kRandom));

  vmat::CoordinatorSpec cfg;
  cfg.depth_bound = topology.depth(captured);
  vmat::VmatCoordinator coordinator(&net, &adversary, cfg);

  // "Distance to the nearest detected vehicle" readings; the cut-off
  // sensor is the one that actually sees the vehicle.
  std::vector<vmat::Reading> distance_m(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    distance_m[id] = 400 + static_cast<vmat::Reading>((id * 37) % 500);
  distance_m[watched_sensor] = 120;

  std::printf("%-6s %-12s %-40s\n", "round", "answer", "note");
  int produced = 0;
  for (int round = 1; round <= 60 && produced < 5; ++round) {
    const auto out = coordinator.run_min(distance_m);
    if (out.produced_result()) {
      ++produced;
      std::printf("%-6d %-12lld correct minimum (the watched sensor's 120 m)\n",
                  round, static_cast<long long>(out.minima[0]));
    } else {
      std::printf("%-6d %-12s revoked %zu key(s), %zu sensor(s): %s\n", round,
                  "-", out.revoked_keys.size(), out.revoked_sensors.size(),
                  out.reason.c_str());
    }
  }

  std::printf("\nadversary status after the campaign:\n");
  for (vmat::NodeId m : captured)
    std::printf("  sensor %u: %s, %u of its ring keys revoked\n", m.value,
                net.revocation().is_sensor_revoked(m) ? "fully revoked"
                                                      : "still keyed",
                net.revocation().revoked_count(m));
  std::printf("honest sensors revoked: ");
  std::size_t honest_revoked = 0;
  for (vmat::NodeId s : net.revocation().revoked_sensors_in_order())
    if (!captured.contains(s)) ++honest_revoked;
  std::printf("%zu\n", honest_revoked);
  return 0;
}
