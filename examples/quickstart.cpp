// Quickstart: build a sensor network, run a secure COUNT query, read the
// estimate. No adversary — the minimal happy path of the public API.
#include <cstdio>

#include "vmat.h"

int main() {
  // 1. Deploy 300 sensors uniformly at random; the base station is the
  //    node closest to the center (id 0).
  const auto topology = vmat::Topology::random_geometric(
      /*n=*/300, /*radius=*/0.12, /*seed=*/2024);

  // 2. Key predistribution (Eschenauer-Gligor) + revocation threshold θ.
  vmat::NetworkConfig netcfg;
  netcfg.keys.pool_size = 2000;
  netcfg.keys.ring_size = 260;  // dense rings: every physical edge keyed
  netcfg.keys.seed = 7;
  netcfg.revocation_threshold = 30;
  vmat::Network net(topology, netcfg);

  // 3. Configure the coordinator: enough synopsis instances for a
  //    (10%, 5%)-approximation.
  vmat::VmatConfig cfg;
  cfg.instances = vmat::instances_for(/*epsilon=*/0.15, /*delta=*/0.1);
  vmat::VmatCoordinator coordinator(&net, /*adversary=*/nullptr, cfg);
  vmat::QueryEngine queries(&coordinator);

  std::printf("network: %u sensors, depth L=%d, %u synopsis instances\n",
              net.node_count(), coordinator.effective_depth_bound(),
              cfg.instances);

  // 4. Ask: how many sensors currently read a temperature above 40?
  //    (Simulated: sensors 1..120 do.)
  std::vector<std::uint8_t> above_40(net.node_count(), 0);
  for (std::uint32_t id = 1; id <= 120; ++id) above_40[id] = 1;

  const vmat::QueryOutcome outcome = queries.count(above_40);
  if (outcome.answered()) {
    std::printf("COUNT(temperature > 40) ~= %.1f (true value: 120)\n",
                *outcome.estimate);
    std::printf("data-path flooding rounds: %d (constant in n)\n",
                outcome.exec.data_rounds);
  } else {
    std::printf("query disrupted; revoked %zu adversary keys (%s)\n",
                outcome.exec.revoked_keys.size(),
                outcome.exec.reason.c_str());
  }

  // 5. SUM and AVERAGE work the same way.
  std::vector<std::int64_t> battery_mv(net.node_count(), 0);
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    battery_mv[id] = 2900 + static_cast<std::int64_t>(id % 200);
  const auto avg = queries.average(battery_mv);
  if (avg.answered())
    std::printf("AVERAGE(battery) ~= %.0f mV (true ~2999 mV)\n",
                *avg.estimate);
  return 0;
}
