// Quickstart: describe a deployment with one SimulationSpec, run a secure
// COUNT query, then serve a small mixed batch through the epoch-batched
// Engine. No adversary — the minimal happy path of the public API.
#include <cstdio>

#include "vmat.h"

int main() {
  // 1. One spec describes the whole deployment: 300 sensors placed
  //    uniformly at random (base station = node 0), Eschenauer-Gligor key
  //    predistribution with dense rings, revocation threshold θ, and
  //    enough synopsis instances for a (15%, 10%)-approximation.
  vmat::SimulationSpec spec;
  spec.nodes(300)
      .key_pool(/*pool_size=*/2000, /*ring_size=*/260)
      .revocation_threshold(30)
      .accuracy(/*epsilon=*/0.15, /*delta=*/0.1)
      .seed(2024);
  if (const auto errors = spec.validate(); !errors.empty()) {
    for (const auto& e : errors) std::printf("spec: %s\n", e.message.c_str());
    return 2;
  }

  vmat::Network net(spec);
  vmat::VmatCoordinator coordinator(&net, /*adversary=*/nullptr, spec);
  vmat::QueryEngine queries(&coordinator);

  std::printf("network: %u sensors, depth L=%d, %u synopsis instances\n",
              net.node_count(), coordinator.effective_depth_bound(),
              spec.effective_instances());

  // 2. Ask: how many sensors currently read a temperature above 40?
  //    (Simulated: sensors 1..120 do.)
  std::vector<std::uint8_t> above_40(net.node_count(), 0);
  for (std::uint32_t id = 1; id <= 120; ++id) above_40[id] = 1;

  const vmat::QueryOutcome outcome = queries.count(above_40);
  if (outcome.answered()) {
    std::printf("COUNT(temperature > 40) ~= %.1f (true value: 120)\n",
                *outcome.estimate);
    std::printf("data-path flooding rounds: %d (constant in n)\n",
                outcome.exec.data_rounds);
  } else {
    std::printf("query disrupted; revoked %zu adversary keys (%s)\n",
                outcome.exec.revoked_keys.size(),
                outcome.exec.reason.c_str());
  }

  // 3. Batched serving: schedule several queries into one epoch so they
  //    share a single authenticated tree formation. Each query still gets
  //    its own nonce — the security argument is per-query.
  std::vector<std::int64_t> battery_mv(net.node_count(), 0);
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    battery_mv[id] = 2900 + static_cast<std::int64_t>(id % 200);

  std::vector<vmat::EngineQuery> batch(3);
  batch[0].kind = vmat::EngineQueryKind::kCount;
  batch[0].predicate = above_40;
  batch[1].kind = vmat::EngineQueryKind::kAverage;
  batch[1].readings = battery_mv;
  batch[2].kind = vmat::EngineQueryKind::kMin;
  batch[2].raw = battery_mv;  // exact MIN runs on the raw readings

  vmat::Engine engine(&coordinator);
  const auto results = engine.run_batch(std::move(batch));
  for (const auto& r : results) {
    if (r.answered())
      std::printf("query #%llu ~= %.1f (epoch %llu, %d execution(s))\n",
                  static_cast<unsigned long long>(r.id), *r.estimate,
                  static_cast<unsigned long long>(r.epoch_id), r.executions);
    else
      std::printf("query #%llu failed: %s\n",
                  static_cast<unsigned long long>(r.id),
                  r.error ? r.error->to_string().c_str() : "unknown");
  }
  std::printf("epochs formed for the batch: %llu\n",
              static_cast<unsigned long long>(engine.stats().epochs_formed));
  return 0;
}
