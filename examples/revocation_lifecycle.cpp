// Revocation lifecycle: watch the θ-threshold mechanism (Section VI-C)
// close in on a junk-injecting attacker. Each disrupted execution
// pinpoints one of its edge keys; when θ of them are revoked the base
// station announces the ring seed and every remaining key dies at once —
// the "revoke keys before they are used to attack" effect.
#include <cstdio>
#include <memory>

#include "vmat.h"

int main() {
  const auto topology =
      vmat::Topology::random_geometric(/*n=*/50, /*radius=*/0.38, /*seed=*/3);

  // Sparse rings (mean pairwise overlap r^2/u = 2), the regime where θ is
  // meaningful.
  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = 3;
  netcfg.revocation_threshold = 8;
  vmat::Network net(topology, netcfg);

  // The attacker: the best-connected sensor.
  vmat::NodeId attacker{1};
  for (std::uint32_t id = 2; id < topology.node_count(); ++id)
    if (topology.degree(vmat::NodeId{id}) > topology.degree(attacker))
      attacker = vmat::NodeId{id};
  std::printf("attacker: sensor %u (degree %zu), ring of %u keys, theta=%u\n\n",
              attacker.value, topology.degree(attacker),
              netcfg.keys.ring_size, netcfg.revocation_threshold);

  vmat::Adversary adversary(&net, {attacker},
                            std::make_unique<vmat::JunkInjectStrategy>(
                                vmat::LiePolicy::kDenyAll, /*frame=*/false));
  vmat::CoordinatorSpec cfg;
  cfg.depth_bound =
      topology.depth(std::unordered_set<vmat::NodeId>{attacker}) + 2;
  vmat::VmatCoordinator coordinator(&net, &adversary, cfg);

  std::vector<vmat::Reading> readings(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    readings[id] = 100 + static_cast<vmat::Reading>(id);

  for (int execution = 1; execution <= 60; ++execution) {
    const auto out = coordinator.run_min(readings);
    if (out.produced_result()) {
      std::printf("execution %2d: result %lld — attacker silenced\n",
                  execution, static_cast<long long>(out.minima[0]));
      break;
    }
    std::printf("execution %2d: %-28s pinpointed=%zu theta-count=%u%s\n",
                execution,
                out.trigger == vmat::Trigger::kJunkAggregation
                    ? "junk pinned to attacker;"
                    : "disruption pinned;",
                net.revocation().pinpointed_key_count(),
                net.revocation().revoked_count(attacker),
                out.revoked_sensors.empty() ? ""
                                            : "  << RING SEED ANNOUNCED");
    if (!out.revoked_sensors.empty()) {
      std::printf(
          "\nthreshold crossed: all %u of the attacker's keys are now dead "
          "(only %zu ever needed a pinpointing walk)\n",
          netcfg.keys.ring_size, net.revocation().pinpointed_key_count());
    }
  }

  std::printf("\nfinal state: attacker %s; %zu keys revoked in total\n",
              net.revocation().is_sensor_revoked(attacker)
                  ? "fully revoked"
                  : "out of usable keys",
              net.revocation().revoked_key_count());
  return 0;
}
