// Choking-attack forensics: an adversary floods spurious vetoes to choke
// the one-time veto flood (the attack that defeats symmetric-key-only
// prior work, Section I). VMAT's junk-triggered pinpointing walks the SOF
// audit trail with keyed predicate tests and revokes the injector's edge
// key — this example prints the walk's verdict and cost.
#include <cstdio>
#include <memory>

#include "vmat.h"

int main() {
  const auto topology = vmat::Topology::grid(7, 7);

  // Sparse rings (mean pairwise overlap 3), so the θ threshold is
  // reachable within a short forensics campaign.
  vmat::NetworkSpec netcfg;
  netcfg.keys.pool_size = 1200;
  netcfg.keys.ring_size = 60;
  netcfg.keys.seed = 3;
  netcfg.revocation_threshold = 8;
  vmat::Network net(topology, netcfg);

  const auto malicious = vmat::choose_malicious(topology, 1, 21);
  vmat::Adversary adversary(
      &net, malicious,
      std::make_unique<vmat::ChokeVetoStrategy>(vmat::LiePolicy::kDenyAll));

  vmat::CoordinatorSpec cfg;
  cfg.depth_bound = topology.depth(malicious);
  vmat::VmatCoordinator coordinator(&net, &adversary, cfg);

  std::vector<vmat::Reading> readings(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    readings[id] = 200 + static_cast<vmat::Reading>(id);
  readings[48] = 42;  // the reading the chokers try to suppress

  std::printf("malicious sensors:");
  for (vmat::NodeId m : malicious) std::printf(" %u", m.value);
  std::printf("; honest minimum is 42 at sensor 48\n\n");

  for (int execution = 1; execution <= 30; ++execution) {
    const auto out = coordinator.run_min(readings);
    if (out.produced_result()) {
      std::printf(
          "execution %d: answered %lld after %d data rounds — adversary "
          "neutralized\n",
          execution, static_cast<long long>(out.minima[0]), out.data_rounds);
      break;
    }
    const char* trigger =
        out.trigger == vmat::Trigger::kJunkConfirmation ? "spurious veto"
        : out.trigger == vmat::Trigger::kVeto           ? "legitimate veto"
        : out.trigger == vmat::Trigger::kJunkAggregation
            ? "spurious minimum"
            : "self-incrimination";
    std::printf(
        "execution %d: %s -> %s; revoked %zu key(s) using %d keyed "
        "predicate tests (%d rounds)\n",
        execution, trigger, out.reason.c_str(), out.revoked_keys.size(),
        out.pinpoint_cost.predicate_tests,
        out.pinpoint_cost.flooding_rounds);
  }

  std::printf("\ntotal edge keys revoked: %zu — every one held by the "
              "adversary\n",
              net.revocation().revoked_key_count());
  return 0;
}
