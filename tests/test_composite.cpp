// Composite and fuzzing adversary tests: multi-front attacks keep the
// Theorem 7 disjunction; pure garbage never perturbs results or triggers
// revocation of anything.
#include <gtest/gtest.h>

#include "attack/composite.h"
#include "core/coordinator.h"
#include "core/query.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;
using testing::true_min;

TEST(Garbage, PureNoiseChangesNothing) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 3, 5);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious, std::make_unique<GarbageStrategy>(42));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  // Malformed frames are dropped at decode; the query completes as if the
  // adversary were silent-but-honest-in-tree... except garbage nodes do
  // not even forward, so the only possible outcome change is a routed-
  // around minimum. Both outcomes must stay sound.
  if (out.kind == OutcomeKind::kResult)
    EXPECT_LE(out.minima[0], true_min(net, readings, malicious));
  else
    EXPECT_TRUE(revocations_sound(net, malicious)) << out.reason;
}

TEST(Garbage, NoiseDoesNotBreakSynopsisQueries) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 6);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious, std::make_unique<GarbageStrategy>(43));
  CoordinatorSpec cfg;
  cfg.instances = 40;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);
  std::vector<std::uint8_t> predicate(25, 1);
  predicate[0] = 0;
  // Retries allowed (a dropped-by-absence minimum may veto), but it must
  // converge and stay sound.
  const auto out = queries.count_until_answered(predicate, 200);
  ASSERT_TRUE(out.answered());
  EXPECT_TRUE(revocations_sound(net, malicious));
}

TEST(Composite, WormholePlusDropPlusLies) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 3, 7);
  Network net(topo, dense_keys());
  auto strategy = std::make_unique<CompositeStrategy>(
      std::make_unique<WormholeStrategy>(50),
      std::make_unique<ValueDropStrategy>(),
      std::make_unique<ChokeVetoStrategy>(),
      std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  Adversary adv(&net, malicious, std::move(strategy));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);

  const auto readings = default_readings(net.node_count());
  std::vector<std::vector<Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 400);
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_LE(history.back().minima[0], true_min(net, readings, malicious));
  EXPECT_TRUE(revocations_sound(net, malicious));
}

TEST(Composite, NullSubStrategiesAreSilent) {
  const auto topo = Topology::grid(4, 4);
  const auto malicious = choose_malicious(topo, 2, 8);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<CompositeStrategy>(nullptr, nullptr, nullptr,
                                                    nullptr));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  // Fully silent malicious nodes: either the tree routed around them (a
  // correct result over honest sensors) or a veto walk revoked something.
  if (out.kind == OutcomeKind::kResult)
    EXPECT_LE(out.minima[0], true_min(net, readings, malicious));
  else
    EXPECT_TRUE(revocations_sound(net, malicious)) << out.reason;
}

TEST(Composite, CompositeSweepAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto topo = Topology::grid(5, 5);
    const auto malicious = choose_malicious(topo, 2, seed + 20);
    Network net(topo, dense_keys(0, seed));
    auto strategy = std::make_unique<CompositeStrategy>(
        std::make_unique<GarbageStrategy>(seed),
        std::make_unique<SilentDropStrategy>(),
        std::make_unique<SelfVetoStrategy>(1),
        std::make_unique<SilentDropStrategy>(LiePolicy::kRandom));
    Adversary adv(&net, malicious, std::move(strategy));
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(malicious);
    cfg.seed = seed;
    VmatCoordinator coordinator(&net, &adv, cfg);
    const auto readings = default_readings(net.node_count());
    std::vector<std::vector<Reading>> values(net.node_count());
    std::vector<std::vector<std::int64_t>> weights(net.node_count());
    for (std::uint32_t id = 0; id < net.node_count(); ++id) {
      values[id] = {readings[id]};
      weights[id] = {0};
    }
    const auto history =
        coordinator.run_until_result(values, weights, {}, 400);
    EXPECT_TRUE(history.back().produced_result()) << "seed " << seed;
    EXPECT_TRUE(revocations_sound(net, malicious)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vmat
