// Trial-engine tests: the determinism contract (bit-identical per-trial
// streams and aggregates for any thread count), seed derivation, pool
// mechanics, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.h"

namespace vmat {
namespace {

constexpr std::size_t kTrials = 64;

/// Run kTrials trials on the given pool, each drawing a few values from its
/// engine-provided rng, and return the per-trial outputs.
std::vector<std::uint64_t> run_trials(ThreadPool& pool,
                                      std::uint64_t base_seed) {
  std::vector<std::uint64_t> out(kTrials, 0);
  parallel_for_trials(
      kTrials, base_seed,
      [&out](std::size_t trial, Rng& rng) {
        std::uint64_t acc = 0;
        for (int i = 0; i < 16; ++i) acc = acc * 31 + rng.below(1'000'000);
        out[trial] = acc;
      },
      &pool);
  return out;
}

TEST(TrialSeed, DeterministicAndDistinct) {
  EXPECT_EQ(trial_seed(7, 0), trial_seed(7, 0));
  EXPECT_NE(trial_seed(7, 0), trial_seed(7, 1));
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
  // Adjacent trials under adjacent bases must not collide either.
  EXPECT_NE(trial_seed(7, 1), trial_seed(8, 0));
}

TEST(ThreadPool, BitIdenticalAcrossThreadCounts) {
  ThreadPool serial(1);
  ThreadPool two(2);
  ThreadPool eight(8);

  const auto a = run_trials(serial, 42);
  const auto b = run_trials(two, 42);
  const auto c = run_trials(eight, 42);

  // Per-trial values identical, hence every aggregate identical.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  EXPECT_EQ(sum(a), sum(c));

  // Different base seed -> different streams.
  EXPECT_NE(a, run_trials(serial, 43));
}

TEST(ThreadPool, RepeatedRunsAreStable) {
  ThreadPool pool(4);
  const auto first = run_trials(pool, 9);
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run_trials(pool, 9), first);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.for_each(hits.size(),
                [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroTrialsIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.for_each(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  parallel_for_trials(0, 1, [&called](std::size_t, Rng&) { called = true; },
                      &pool);
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each(32,
                    [](std::size_t i) {
                      if (i == 13) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // The pool must survive the failed batch.
  std::atomic<int> done{0};
  pool.for_each(32, [&done](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SerialPoolRunsOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.for_each(8, [&caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(DefaultThreadCount, AtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace vmat
