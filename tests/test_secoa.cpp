// SECOA baseline tests: one-way-chain claims verify, inflation is caught,
// and silent drops sail through — the asymmetry VMAT's veto phase closes.
#include <gtest/gtest.h>

#include "baseline/secoa.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

TEST(SecoaChain, ElementsVerifyExactlyAtTheirValue) {
  const SecoaConfig cfg{.max_value = 64, .seed = 5};
  for (std::int64_t v : {0, 1, 17, 63, 64}) {
    const Digest e = secoa_element(cfg, NodeId{3}, v);
    EXPECT_TRUE(secoa_verify(cfg, NodeId{3}, v, e));
    if (v > 0) {
      EXPECT_FALSE(secoa_verify(cfg, NodeId{3}, v - 1, e));
    }
    if (v < 64) {
      EXPECT_FALSE(secoa_verify(cfg, NodeId{3}, v + 1, e));
    }
    EXPECT_FALSE(secoa_verify(cfg, NodeId{4}, v, e));  // wrong witness
  }
}

TEST(SecoaChain, HashingForwardLowersClaims) {
  // e(v) hashed forward once is e(v-1): claims can be weakened, never
  // strengthened.
  const SecoaConfig cfg{.max_value = 32, .seed = 6};
  const Digest e10 = secoa_element(cfg, NodeId{2}, 10);
  EXPECT_EQ(Sha256::hash(e10), secoa_element(cfg, NodeId{2}, 9));
}

TEST(SecoaChain, RangeValidation) {
  const SecoaConfig cfg{.max_value = 8, .seed = 1};
  EXPECT_THROW((void)secoa_element(cfg, NodeId{1}, 9), std::invalid_argument);
  EXPECT_THROW((void)secoa_element(cfg, NodeId{1}, -1), std::invalid_argument);
  Digest d{};
  EXPECT_FALSE(secoa_verify(cfg, NodeId{1}, 9, d));
}

TEST(Secoa, HonestMaxWithWitness) {
  Network net(Topology::grid(5, 5), dense_keys());
  std::vector<std::int64_t> readings(25, 10);
  readings[0] = 0;
  readings[17] = 99;
  const auto r = run_secoa_max(net, readings, {}, SecoaAttack::kNone,
                               {.max_value = 128, .seed = 2});
  ASSERT_TRUE(r.maximum.has_value());
  EXPECT_EQ(*r.maximum, 99);
  EXPECT_EQ(r.witness, NodeId{17});
}

TEST(Secoa, InflationIsCaught) {
  Network net(Topology::grid(5, 5), dense_keys());
  std::vector<std::int64_t> readings(25, 10);
  readings[0] = 0;
  const auto r = run_secoa_max(net, readings, {NodeId{6}},
                               SecoaAttack::kInflate,
                               {.max_value = 128, .seed = 2});
  EXPECT_TRUE(r.verification_failed);
  EXPECT_FALSE(r.maximum.has_value());
}

TEST(Secoa, DropGoesUndetected) {
  // The true max (deep behind the malicious node on a line) is silently
  // suppressed, and SECOA happily verifies a smaller witness: the gap VMAT
  // closes with the confirmation/veto phase.
  Network net(Topology::line(6), dense_keys());
  std::vector<std::int64_t> readings{0, 10, 11, 12, 13, 99};
  const auto r = run_secoa_max(net, readings, {NodeId{2}}, SecoaAttack::kDrop,
                               {.max_value = 128, .seed = 2});
  ASSERT_TRUE(r.maximum.has_value());
  EXPECT_LT(*r.maximum, 99);
  EXPECT_FALSE(r.verification_failed);  // no alarm: the stealth drop wins
}

}  // namespace
}  // namespace vmat
