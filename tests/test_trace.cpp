// Flight-recorder tests: disabled tracing stays inert, recordings are
// bit-identical across thread counts, ExecutionOutcome costs reconcile
// with the trace totals, the trace-invariant checker catches seeded
// violations, and the JSON export round-trips through
// tools/check_trace.py (which must agree with the C++ checker).
//
// VMAT_PYTHON and VMAT_SOURCE_DIR are injected by tests/CMakeLists.txt
// when a python3 interpreter is available.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "helpers.h"
#include "trace/checker.h"
#include "trace/trace.h"

#ifdef VMAT_PYTHON
#include <sys/wait.h>

#include <cstdio>
#endif

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

// --- Tracer handle semantics ---

TEST(Tracer, DefaultHandleIsInert) {
  Tracer tracer;
  EXPECT_FALSE(tracer.metering());
  EXPECT_FALSE(tracer.recording());
  EXPECT_EQ(tracer.metrics(), nullptr);
  // Every emit must be a no-op, not a crash.
  tracer.begin_execution();
  tracer.begin_phase(TracePhase::kAggregation);
  tracer.frame_sent(NodeId{1}, NodeId{2}, KeyIndex{3}, 40);
  tracer.mac_verify(NodeId{1}, kNoKey, true);
  tracer.arrival_accepted(NodeId{1}, 2, 500);
  tracer.predicate_test(NodeId{1}, kNoKey, true);
  tracer.end_execution(true, 0);
}

TEST(Tracer, MeteringWithoutSinkCollectsCountersOnly) {
  TraceState state;  // no sink attached
  Tracer tracer{&state};
  EXPECT_TRUE(tracer.metering());
  EXPECT_FALSE(tracer.recording());
  tracer.begin_execution();
  tracer.begin_phase(TracePhase::kAggregation);
  tracer.frame_sent(NodeId{1}, NodeId{2}, KeyIndex{3}, 40);
  tracer.mac_verify(NodeId{1}, kNoKey, false);
  tracer.end_execution(true, 0);
  const PhaseCounters agg = state.metrics.at(TracePhase::kAggregation);
  EXPECT_EQ(agg.frames_sent, 1u);
  EXPECT_EQ(agg.bytes_sent, 40u);
  EXPECT_EQ(agg.mac_verifies, 1u);
  EXPECT_EQ(agg.mac_failures, 1u);
}

// --- Recording full executions ---

struct CleanRun {
  ExecutionOutcome outcome;
  std::uint64_t fabric_bytes_delta{0};
};

CleanRun run_clean(FlightRecorder* recorder) {
  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  if (recorder != nullptr) coordinator.set_recorder(recorder);
  const std::uint64_t before = net.fabric().total_bytes();
  CleanRun run;
  run.outcome = coordinator.run_min(default_readings(net.node_count()));
  run.fabric_bytes_delta = net.fabric().total_bytes() - before;
  return run;
}

TEST(FlightRecorder, DetachedRecorderSeesNoEvents) {
  FlightRecorder recorder;
  (void)run_clean(nullptr);  // no recorder attached anywhere
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.execution_count(), 0u);
}

TEST(FlightRecorder, MetricsAreMeteredEvenWithoutRecorder) {
  const CleanRun run = run_clean(nullptr);
  const PhaseCounters totals = run.outcome.metrics.totals();
  EXPECT_GT(totals.frames_sent, 0u);
  EXPECT_GT(totals.mac_verifies, 0u);
  EXPECT_EQ(totals.predicate_tests, 0u);
  EXPECT_EQ(totals.auth_broadcasts, 3u);  // announce, query, minima
}

TEST(FlightRecorder, CleanExecutionStreamIsWellFormed) {
  FlightRecorder recorder;
  const CleanRun run = run_clean(&recorder);
  ASSERT_TRUE(run.outcome.produced_result());
  ASSERT_EQ(recorder.execution_count(), 1u);
  ASSERT_FALSE(recorder.events().empty());
  EXPECT_EQ(recorder.events().front().kind, TraceEventKind::kExecutionBegin);
  EXPECT_EQ(recorder.events().back().kind, TraceEventKind::kOutcome);
  EXPECT_TRUE(recorder.events().back().ok);
  ASSERT_EQ(recorder.execution_metrics().size(), 1u);
  EXPECT_EQ(recorder.execution_metrics()[0], run.outcome.metrics);

  const CheckReport check = check_trace(recorder);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(FlightRecorder, OutcomeCostsReconcileWithTraceTotals) {
  // One frame-size definition end-to-end: the fabric's byte ledger, the
  // outcome's fabric_bytes, and the per-phase trace totals must agree.
  FlightRecorder recorder;
  const CleanRun run = run_clean(&recorder);
  const PhaseCounters totals = run.outcome.metrics.totals();
  EXPECT_EQ(run.outcome.fabric_bytes, totals.bytes_sent);
  EXPECT_EQ(run.outcome.fabric_bytes, run.fabric_bytes_delta);
  // The recorded stream's per-event byte sum tells the same story.
  std::uint64_t event_bytes = 0;
  for (const TraceEvent& e : recorder.events())
    if (e.kind == TraceEventKind::kSend) event_bytes += e.bytes;
  EXPECT_EQ(event_bytes, totals.bytes_sent);
}

ExecutionOutcome run_attacked(FlightRecorder* recorder) {
  const Topology topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 3, 14);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  if (recorder != nullptr) coordinator.set_recorder(recorder);
  return coordinator.run_min(default_readings(net.node_count()));
}

TEST(FlightRecorder, RevocationExecutionRecordsPinpointingAndPasses) {
  FlightRecorder recorder;
  const auto out = run_attacked(&recorder);
  ASSERT_FALSE(out.produced_result());
  bool saw_revocation = false, saw_predicate_test = false;
  for (const TraceEvent& e : recorder.events()) {
    saw_revocation = saw_revocation ||
                     e.kind == TraceEventKind::kKeyRevoked ||
                     e.kind == TraceEventKind::kSensorRevoked;
    saw_predicate_test =
        saw_predicate_test || e.kind == TraceEventKind::kPredicateTest;
  }
  EXPECT_TRUE(saw_revocation);
  EXPECT_TRUE(saw_predicate_test);
  EXPECT_FALSE(recorder.events().back().ok);
  EXPECT_GT(out.metrics.at(TracePhase::kPinpoint).predicate_tests, 0u);

  const CheckReport check = check_trace(recorder);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(FlightRecorder, StreamIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract: events carry no timestamps or addresses, so
  // a recording is a pure function of (topology, keys, seed) — VMAT_THREADS
  // must not leak into it.
  FlightRecorder one, four;
  ASSERT_EQ(setenv("VMAT_THREADS", "1", 1), 0);
  (void)run_attacked(&one);
  ASSERT_EQ(setenv("VMAT_THREADS", "4", 1), 0);
  (void)run_attacked(&four);
  unsetenv("VMAT_THREADS");
  ASSERT_EQ(one.events().size(), four.events().size());
  EXPECT_TRUE(one.events() == four.events());
  EXPECT_EQ(one.to_json(), four.to_json());
}

// --- Checker catches seeded violations ---

TraceContext small_context() {
  TraceContext ctx;
  ctx.nodes = 9;
  ctx.depth_bound = 3;
  ctx.ring_size = 4;
  ctx.slotted_sof = true;
  return ctx;
}

TEST(TraceChecker, FlagsAcceptWithoutVerifiedMac) {
  const std::vector<TraceEvent> events{
      {.kind = TraceEventKind::kExecutionBegin},
      {.kind = TraceEventKind::kMacVerify,
       .phase = TracePhase::kAggregation,
       .a = NodeId{4},
       .ok = true},
      {.kind = TraceEventKind::kArrivalAccepted,
       .phase = TracePhase::kAggregation,
       .a = NodeId{4}},
      // Accepted, but the preceding event verifies a different origin.
      {.kind = TraceEventKind::kArrivalAccepted,
       .phase = TracePhase::kAggregation,
       .a = NodeId{5}},
      {.kind = TraceEventKind::kOutcome, .ok = true},
  };
  const auto report = check_trace(small_context(), events, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "mac-before-accept");
}

TEST(TraceChecker, FlagsOverlongPinpointWalk) {
  std::vector<TraceEvent> events{{.kind = TraceEventKind::kExecutionBegin}};
  // L = 3, slotted: a walk may take at most L + 2 = 5 steps.
  for (int step = 0; step < 6; ++step)
    events.push_back({.kind = TraceEventKind::kPinpointStep,
                      .phase = TracePhase::kPinpoint,
                      .value = step});
  events.push_back({.kind = TraceEventKind::kKeyRevoked, .key = KeyIndex{7}});
  events.push_back({.kind = TraceEventKind::kOutcome, .ok = false});
  const auto report = check_trace(small_context(), events, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "lemma1-trail");
}

TEST(TraceChecker, FlagsConfirmationEventBeyondLemma1Bound) {
  const std::vector<TraceEvent> events{
      {.kind = TraceEventKind::kExecutionBegin},
      // Interval 5 > L = 3: an audit trail longer than Lemma 1 allows.
      {.kind = TraceEventKind::kVeto,
       .phase = TracePhase::kConfirmation,
       .slot = 5,
       .a = NodeId{7},
       .b = NodeId{7},
       .ok = true},
      {.kind = TraceEventKind::kSensorRevoked, .a = NodeId{7}},
      {.kind = TraceEventKind::kOutcome, .ok = false},
  };
  const auto report = check_trace(small_context(), events, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "lemma1-trail");
}

TEST(TraceChecker, FlagsTheorem7ViolationBothWays) {
  const std::vector<TraceEvent> result_and_revocation{
      {.kind = TraceEventKind::kExecutionBegin},
      {.kind = TraceEventKind::kKeyRevoked, .key = KeyIndex{7}},
      {.kind = TraceEventKind::kOutcome, .ok = true},
  };
  auto report = check_trace(small_context(), result_and_revocation, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "theorem7-disjunction");

  const std::vector<TraceEvent> neither{
      {.kind = TraceEventKind::kExecutionBegin},
      {.kind = TraceEventKind::kOutcome, .ok = false},
  };
  report = check_trace(small_context(), neither, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "theorem7-disjunction");
}

TEST(TraceChecker, FlagsTruncatedExecution) {
  const std::vector<TraceEvent> events{
      {.kind = TraceEventKind::kExecutionBegin},
      {.kind = TraceEventKind::kPhaseBegin, .phase = TracePhase::kBroadcast},
  };
  const auto report = check_trace(small_context(), events, {});
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "truncated-execution");
}

TEST(TraceChecker, FlagsCleanExecutionExceedingRoundEnvelope) {
  const std::vector<TraceEvent> events{
      {.kind = TraceEventKind::kExecutionBegin},
      {.kind = TraceEventKind::kOutcome, .ok = true},
  };
  ExecutionMetrics metrics;
  metrics.at(TracePhase::kPinpoint).predicate_tests = 1;
  const std::vector<ExecutionMetrics> snapshots{metrics};
  const auto report = check_trace(small_context(), events, snapshots);
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_EQ(report.violations[0].property, "round-envelope");
}

// --- JSON export + tools/check_trace.py agreement ---

#ifdef VMAT_PYTHON

struct ToolResult {
  int exit_code;
  std::string output;

  [[nodiscard]] bool mentions(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }
};

ToolResult run_check_trace(const std::string& args) {
  const std::string cmd = std::string(VMAT_PYTHON) + " " + VMAT_SOURCE_DIR +
                          "/tools/check_trace.py " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  std::string output;
  char buf[512];
  while (pipe != nullptr && std::fgets(buf, sizeof buf, pipe) != nullptr)
    output += buf;
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return ToolResult{code, output};
}

TEST(CheckTracePy, AcceptsARealRecording) {
  FlightRecorder recorder;
  (void)run_attacked(&recorder);
  const std::string path = ::testing::TempDir() + "vmat_attacked_trace.json";
  ASSERT_TRUE(recorder.write_json(path));
  const auto r = run_check_trace(path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.mentions("all invariants hold")) << r.output;
}

TEST(CheckTracePy, FlagsUnverifiedAcceptFixture) {
  const auto r = run_check_trace(std::string(VMAT_SOURCE_DIR) +
                                 "/tools/fixtures/traces/"
                                 "bad_unverified_accept.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.mentions("[mac-before-accept]")) << r.output;
  EXPECT_TRUE(r.mentions("1 violation(s)")) << r.output;
}

TEST(CheckTracePy, FlagsOverlongTrailFixture) {
  const auto r = run_check_trace(std::string(VMAT_SOURCE_DIR) +
                                 "/tools/fixtures/traces/"
                                 "bad_overlong_trail.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.mentions("[lemma1-trail]")) << r.output;
  EXPECT_TRUE(r.mentions("2 violation(s)")) << r.output;
}

#endif  // VMAT_PYTHON

}  // namespace
}  // namespace vmat
