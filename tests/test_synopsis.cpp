// Synopsis engine tests: codec determinism and verification, estimator
// accuracy ((ε,δ)-approximation behaviour), and instance sizing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/synopsis.h"
#include "util/random.h"
#include "util/stats.h"

namespace vmat {
namespace {

TEST(SynopsisCodec, DeterministicPerNonceOriginInstanceWeight) {
  const SynopsisCodec codec(123);
  EXPECT_EQ(codec.value_for(NodeId{5}, 2, 7), codec.value_for(NodeId{5}, 2, 7));
  EXPECT_NE(codec.value_for(NodeId{5}, 2, 7), codec.value_for(NodeId{5}, 3, 7));
  EXPECT_NE(codec.value_for(NodeId{5}, 2, 7), codec.value_for(NodeId{6}, 2, 7));
  EXPECT_NE(codec.value_for(NodeId{5}, 2, 7), codec.value_for(NodeId{5}, 2, 8));
  const SynopsisCodec other(124);
  EXPECT_NE(codec.value_for(NodeId{5}, 2, 7), other.value_for(NodeId{5}, 2, 7));
}

TEST(SynopsisCodec, EncodeDecodeRoundTrip) {
  for (double a : {1e-9, 0.001, 0.5, 1.0, 36.7}) {
    const Reading encoded = SynopsisCodec::encode_value(a);
    EXPECT_NEAR(SynopsisCodec::decode_value(encoded), a, a * 1e-9 + 1e-12);
  }
  EXPECT_EQ(SynopsisCodec::encode_value(-1.0), 0);
}

TEST(SynopsisCodec, ConsistencyCheckCatchesFabrication) {
  const SynopsisCodec codec(77);
  AggMessage m;
  m.origin = NodeId{4};
  m.instance = 1;
  m.weight = 3;
  m.value = codec.value_for(NodeId{4}, 1, 3);
  EXPECT_TRUE(codec.consistent(m));
  m.value -= 1;  // claims a smaller synopsis than its weight dictates
  EXPECT_FALSE(codec.consistent(m));
  m.value = codec.value_for(NodeId{4}, 1, 3);
  m.weight = 0;  // non-positive weight is never a valid synopsis
  EXPECT_FALSE(codec.consistent(m));
  m.weight = -2;
  EXPECT_FALSE(codec.consistent(m));
}

TEST(SynopsisCodec, LargerWeightGivesStochasticallySmallerSynopses) {
  const SynopsisCodec codec(9);
  double small_sum = 0, large_sum = 0;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    small_sum += SynopsisCodec::decode_value(codec.value_for(NodeId{1}, i, 1));
    large_sum += SynopsisCodec::decode_value(codec.value_for(NodeId{1}, i, 50));
  }
  EXPECT_GT(small_sum / large_sum, 30.0);  // means 1 vs 1/50
}

TEST(Estimator, RecoverCountWithinTenPercentOnAverage) {
  // The Figure 8 headline: 100 synopses -> average relative error < 10%.
  constexpr std::uint32_t kInstances = 100;
  constexpr int kTrials = 120;
  Rng seeds(42);
  for (std::int64_t count : {10, 100, 1000}) {
    double total_err = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const SynopsisCodec codec(seeds());
      std::vector<Reading> minima(kInstances, kInfinity);
      for (std::uint32_t i = 0; i < kInstances; ++i)
        for (std::int64_t x = 1; x <= count; ++x)
          minima[i] = std::min(
              minima[i],
              codec.value_for(NodeId{static_cast<std::uint32_t>(x)}, i, 1));
      const double est = estimate_sum(minima);
      total_err += std::abs(est - static_cast<double>(count)) /
                   static_cast<double>(count);
    }
    EXPECT_LT(total_err / kTrials, 0.14) << "count " << count;
  }
}

TEST(Estimator, SumOfWeightsRecovered) {
  constexpr std::uint32_t kInstances = 200;
  const SynopsisCodec codec(5);
  // Weights 1..40: sum = 820.
  std::vector<Reading> minima(kInstances, kInfinity);
  for (std::uint32_t i = 0; i < kInstances; ++i)
    for (std::uint32_t x = 1; x <= 40; ++x)
      minima[i] = std::min(minima[i], codec.value_for(NodeId{x}, i, x));
  const double est = estimate_sum(minima);
  EXPECT_NEAR(est, 820.0, 820.0 * 0.2);
}

TEST(Estimator, EmptyAndInfiniteInputs) {
  EXPECT_EQ(estimate_sum({}), 0.0);
  const std::vector<Reading> with_gap{SynopsisCodec::encode_value(0.5),
                                      kInfinity};
  EXPECT_EQ(estimate_sum(with_gap), 0.0);
}

TEST(InstancesFor, MatchesChernoffShape) {
  EXPECT_THROW((void)instances_for(0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)instances_for(0.1, 1.5), std::invalid_argument);
  const auto coarse = instances_for(0.2, 0.1);
  const auto fine = instances_for(0.1, 0.1);
  EXPECT_NEAR(static_cast<double>(fine) / coarse, 4.0, 0.1);  // ε⁻² scaling
  EXPECT_GT(instances_for(0.1, 0.01), instances_for(0.1, 0.1));
}

TEST(Estimator, ErrorShrinksWithMoreInstances) {
  Rng seeds(7);
  auto avg_err = [&](std::uint32_t instances) {
    double total = 0.0;
    constexpr int kTrials = 60;
    constexpr std::int64_t kCount = 500;
    for (int t = 0; t < kTrials; ++t) {
      const SynopsisCodec codec(seeds());
      std::vector<Reading> minima(instances, kInfinity);
      for (std::uint32_t i = 0; i < instances; ++i)
        for (std::int64_t x = 1; x <= kCount; ++x)
          minima[i] = std::min(
              minima[i],
              codec.value_for(NodeId{static_cast<std::uint32_t>(x)}, i, 1));
      total += std::abs(estimate_sum(minima) - kCount) / kCount;
    }
    return total / kTrials;
  };
  const double err25 = avg_err(25);
  const double err400 = avg_err(400);
  // 16x instances -> ~4x smaller error; allow generous slack.
  EXPECT_LT(err400, err25 / 2.0);
}

}  // namespace
}  // namespace vmat
