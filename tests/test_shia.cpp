// SHIA baseline tests: commitment folding, detection of drop/tamper
// attacks, tolerance of legal self-misreporting, and the stall-forever
// behaviour under a persistent attacker that motivates VMAT.
#include <gtest/gtest.h>

#include "baseline/shia.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

std::vector<std::int64_t> unit_readings(std::uint32_t n) {
  std::vector<std::int64_t> r(n, 1);
  r[0] = 0;  // base station contributes nothing
  return r;
}

TEST(ShiaFold, CommitmentBindsEverything) {
  const ShiaLabel leaf_a = shia_fold(7, NodeId{1}, 5, {});
  EXPECT_EQ(leaf_a.count, 1u);
  EXPECT_EQ(leaf_a.value, 5);
  // Any change to nonce, id, reading, or children changes the hash.
  EXPECT_NE(shia_fold(8, NodeId{1}, 5, {}).hash, leaf_a.hash);
  EXPECT_NE(shia_fold(7, NodeId{2}, 5, {}).hash, leaf_a.hash);
  EXPECT_NE(shia_fold(7, NodeId{1}, 6, {}).hash, leaf_a.hash);

  const ShiaLabel parent =
      shia_fold(7, NodeId{3}, 2, {{NodeId{1}, leaf_a}});
  EXPECT_EQ(parent.count, 2u);
  EXPECT_EQ(parent.value, 7);
  ShiaLabel forged = leaf_a;
  forged.value = 4;
  EXPECT_NE(shia_fold(7, NodeId{3}, 2, {{NodeId{1}, forged}}).hash,
            parent.hash);
  // The claimed child id is committed too.
  EXPECT_NE(shia_fold(7, NodeId{3}, 2, {{NodeId{2}, leaf_a}}).hash,
            parent.hash);
}

TEST(Shia, HonestRunSumsExactly) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto r = run_shia_sum(net, unit_readings(25), {}, ShiaAttack::kNone, 3);
  EXPECT_FALSE(r.alarmed);
  ASSERT_TRUE(r.sum.has_value());
  EXPECT_EQ(*r.sum, 24);  // 24 sensors contribute 1 each
  EXPECT_EQ(r.root.count, 25u);  // BS vertex included
}

TEST(Shia, DropAttackAlarms) {
  Network net(Topology::grid(5, 5), dense_keys());
  // A malicious interior node with children.
  const auto r = run_shia_sum(net, unit_readings(25), {NodeId{6}},
                              ShiaAttack::kDropChildren, 3);
  EXPECT_TRUE(r.alarmed);
  EXPECT_FALSE(r.sum.has_value());
  EXPECT_GT(r.missing_acks, 0u);
}

TEST(Shia, TamperAttackAlarms) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto r = run_shia_sum(net, unit_readings(25), {NodeId{6}},
                              ShiaAttack::kTamperValue, 3);
  EXPECT_TRUE(r.alarmed);
  EXPECT_FALSE(r.sum.has_value());
}

TEST(Shia, SelfMisreportingIsNotDetected) {
  // Lying about one's own reading is outside the secure-aggregation threat
  // model: SHIA (correctly) accepts it.
  Network net(Topology::grid(5, 5), dense_keys());
  const auto r = run_shia_sum(net, unit_readings(25), {NodeId{6}},
                              ShiaAttack::kInflateOwn, 3);
  EXPECT_FALSE(r.alarmed);
  ASSERT_TRUE(r.sum.has_value());
  EXPECT_EQ(*r.sum, 24 + 1000);
}

TEST(Shia, LeafAttackerCannotHurtAnyone) {
  // A malicious node with no children has nothing to drop.
  Network net(Topology::line(5), dense_keys());
  const auto r = run_shia_sum(net, unit_readings(5), {NodeId{4}},
                              ShiaAttack::kDropChildren, 3);
  EXPECT_FALSE(r.alarmed);
  EXPECT_EQ(*r.sum, 4);
}

TEST(Shia, PersistentAttackerStallsForever) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto campaign =
      run_shia_campaign(net, unit_readings(25), {NodeId{6}},
                        ShiaAttack::kDropChildren, 1, /*max_attempts=*/30);
  EXPECT_TRUE(campaign.stalled);
  EXPECT_EQ(campaign.executions, 30);
}

TEST(Shia, ConstantRoundsButNoRevocation) {
  Network net(Topology::grid(6, 6), dense_keys());
  const auto r = run_shia_sum(net, unit_readings(36), {}, ShiaAttack::kNone, 9);
  EXPECT_EQ(r.flooding_rounds, 4);
  // There is no revocation interface at all — that is the point.
}

}  // namespace
}  // namespace vmat
