// Reporting-layer tests: summaries and descriptions carry the facts.
#include <gtest/gtest.h>

#include "core/report.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

TEST(Report, EnumNames) {
  EXPECT_STREQ(to_string(Trigger::kNone), "none");
  EXPECT_STREQ(to_string(Trigger::kVeto), "veto");
  EXPECT_STREQ(to_string(Trigger::kJunkAggregation), "junk-aggregation");
  EXPECT_STREQ(to_string(Trigger::kJunkConfirmation), "junk-confirmation");
  EXPECT_STREQ(to_string(Trigger::kSelfIncrimination), "self-incrimination");
  EXPECT_STREQ(to_string(OutcomeKind::kResult), "result");
  EXPECT_STREQ(to_string(OutcomeKind::kRevocation), "revocation");
}

TEST(Report, ResultSummaryCarriesMinAndRounds) {
  Network net(Topology::grid(4, 4), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const auto out = coordinator.run_min(default_readings(16));
  const std::string s = summarize(out);
  EXPECT_NE(s.find("result"), std::string::npos) << s;
  EXPECT_NE(s.find("101"), std::string::npos) << s;
  EXPECT_NE(s.find("6 rounds"), std::string::npos) << s;
  const std::string d = describe(out);
  EXPECT_NE(d.find("outcome:   result"), std::string::npos) << d;
}

TEST(Report, RevocationSummaryCarriesReason) {
  const auto topo = Topology::grid(4, 4);
  const auto malicious = choose_malicious(topo, 2, 7);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto out = coordinator.run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  const std::string s = summarize(out);
  EXPECT_NE(s.find("revoked 1 key"), std::string::npos) << s;
  EXPECT_NE(s.find("junk-aggregation"), std::string::npos) << s;
  const std::string d = describe(out);
  EXPECT_NE(d.find("pinpoint:"), std::string::npos) << d;
}

TEST(Report, RevocationLedger) {
  Network net(Topology::grid(4, 4), dense_keys());
  (void)net.revocation().revoke_key(KeyIndex{3});
  (void)net.revocation().revoke_sensor(NodeId{5});
  const std::string s = describe_revocations(net);
  EXPECT_NE(s.find("1 pinpointed"), std::string::npos) << s;
  EXPECT_NE(s.find("revoked sensors: 1 5"), std::string::npos) << s;
  EXPECT_NE(s.find("disabled"), std::string::npos) << s;  // theta = 0
}

TEST(Report, DeploymentSummary) {
  Network net(Topology::grid(5, 5), dense_keys());
  const std::string s = describe_deployment(net);
  EXPECT_NE(s.find("sensors:  24"), std::string::npos) << s;
  EXPECT_NE(s.find("depth L=8"), std::string::npos) << s;
  EXPECT_NE(s.find("pool u=400"), std::string::npos) << s;
}

TEST(Report, InfinityMinimaRendered) {
  Network net(Topology::line(4), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  std::vector<std::vector<Reading>> values(4, {kInfinity});
  std::vector<std::vector<std::int64_t>> weights(4, {0});
  const auto out = coordinator.execute(values, weights);
  EXPECT_NE(summarize(out).find("inf"), std::string::npos);
}

}  // namespace
}  // namespace vmat
