// Self-test for tools/vmat_analyze.py: runs the libclang semantic analyzer
// as a subprocess on the fixtures under tools/fixtures/analyze/ and asserts
// exact rule hits (rule name + line) on the bad fixtures, silence on the
// ok/suppressed fixtures, and the documented exit codes (0 clean,
// 1 findings, 2 usage/infrastructure error, 3 libclang unavailable).
//
// The analyzer gates itself on libclang availability; every AST-dependent
// test probes first and GTEST_SKIPs when the bindings are absent, so this
// suite degrades exactly like the `vmat_analyze` ctest (SKIP_RETURN_CODE 3)
// instead of failing on machines without python3-clang.
//
// VMAT_PYTHON, VMAT_SOURCE_DIR and VMAT_BUILD_DIR are injected by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct AnalyzeResult {
  int exit_code;
  std::string output;

  [[nodiscard]] bool mentions(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }

  /// Count of reported findings for `rule` (lines matching "[rule]").
  [[nodiscard]] int count(const std::string& rule) const {
    const std::string tag = "[" + rule + "]";
    int n = 0;
    for (std::size_t pos = output.find(tag); pos != std::string::npos;
         pos = output.find(tag, pos + tag.size()))
      ++n;
    return n;
  }
};

AnalyzeResult run_analyze(const std::string& args) {
  const std::string cmd = std::string(VMAT_PYTHON) + " " + VMAT_SOURCE_DIR +
                          "/tools/vmat_analyze.py --root " + VMAT_SOURCE_DIR +
                          " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  std::string output;
  char buf[512];
  while (pipe != nullptr && std::fgets(buf, sizeof buf, pipe) != nullptr)
    output += buf;
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return AnalyzeResult{code, output};
}

bool analyzer_available() {
  static const bool available =
      run_analyze("--probe").exit_code == 0;
  return available;
}

#define REQUIRE_LIBCLANG()                                              \
  do {                                                                  \
    if (!analyzer_available())                                          \
      GTEST_SKIP() << "libclang python bindings unavailable "           \
                      "(vmat_analyze.py --probe exited nonzero)";       \
  } while (false)

// --- Contract tests that must hold with or without libclang ------------

TEST(VmatAnalyze, ProbeExitsZeroOrUnavailable) {
  const auto r = run_analyze("--probe");
  EXPECT_TRUE(r.exit_code == 0 || r.exit_code == 3) << r.output;
}

TEST(VmatAnalyze, ListRulesIsSortedAndExitsZero) {
  const auto r = run_analyze("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const char* rules[] = {"expected-discarded", "pool-escape", "shard-race",
                         "snapshot-field-coverage"};
  std::size_t pos = 0;
  for (const auto* rule : rules) {
    const std::size_t at = r.output.find(rule, pos);
    ASSERT_NE(at, std::string::npos)
        << rule << " missing or out of order in:\n"
        << r.output;
    pos = at + 1;
  }
}

TEST(VmatAnalyze, SelfCheckPassesWithoutLibclang) {
  // Binding-free checks of the shared walking / compile-db helpers. The
  // AST rules only execute where libclang is present, so without this
  // gate a pure-Python regression (e.g. project_walk losing its yield)
  // would be masked by GTEST_SKIP on machines without python3-clang.
  const auto r = run_analyze("--self-check");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.mentions("self-check OK")) << r.output;
}

TEST(VmatAnalyze, UnknownRuleIsUsageError) {
  const auto r = run_analyze("--only no-such-rule tools/fixtures/analyze");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.mentions("unknown rule")) << r.output;
}

// --- Per-rule fixtures (one positive and one negative file per rule) ---

TEST(VmatAnalyze, ShardRaceFixture) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only shard-race tools/fixtures/analyze/shard_race_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("shard-race"), 5) << r.output;
  EXPECT_TRUE(r.mentions("shard_race_bad.cpp:37:")) << r.output;  // +=
  EXPECT_TRUE(r.mentions("shard_race_bad.cpp:38:")) << r.output;  // method
  EXPECT_TRUE(r.mentions("shard_race_bad.cpp:40:")) << r.output;  // =
  EXPECT_TRUE(r.mentions("shard_race_bad.cpp:41:")) << r.output;  // global
  EXPECT_TRUE(r.mentions("shard_race_bad.cpp:54:")) << r.output;  // this
}

TEST(VmatAnalyze, ShardRaceNegatives) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only shard-race tools/fixtures/analyze/shard_race_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(VmatAnalyze, SnapshotFieldCoverageFixture) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only snapshot-field-coverage "
      "tools/fixtures/analyze/snapshot_coverage_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("snapshot-field-coverage"), 1) << r.output;
  EXPECT_TRUE(r.mentions("snapshot_coverage_bad.cpp:27:")) << r.output;
  EXPECT_TRUE(r.mentions("dropped_")) << r.output;
}

TEST(VmatAnalyze, SnapshotFieldCoverageNegatives) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only snapshot-field-coverage "
      "tools/fixtures/analyze/snapshot_coverage_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(VmatAnalyze, ExpectedDiscardedFixture) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only expected-discarded "
      "tools/fixtures/analyze/expected_discarded_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("expected-discarded"), 3) << r.output;
  EXPECT_TRUE(r.mentions("expected_discarded_bad.cpp:27:")) << r.output;
  EXPECT_TRUE(r.mentions("expected_discarded_bad.cpp:31:")) << r.output;
  EXPECT_TRUE(r.mentions("expected_discarded_bad.cpp:37:")) << r.output;
}

TEST(VmatAnalyze, ExpectedDiscardedNegatives) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only expected-discarded "
      "tools/fixtures/analyze/expected_discarded_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(VmatAnalyze, PoolEscapeFixture) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only pool-escape tools/fixtures/analyze/pool_escape_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("pool-escape"), 4) << r.output;
  EXPECT_TRUE(r.mentions("pool_escape_bad.cpp:28:")) << r.output;  // return
  EXPECT_TRUE(r.mentions("pool_escape_bad.cpp:36:")) << r.output;  // member
  EXPECT_TRUE(r.mentions("pool_escape_bad.cpp:45:")) << r.output;  // thread
  EXPECT_TRUE(r.mentions("pool_escape_bad.cpp:52:")) << r.output;  // global
}

TEST(VmatAnalyze, PoolEscapeNegatives) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--only pool-escape tools/fixtures/analyze/pool_escape_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- Suppressions, totals, JSON, and the shipping tree ------------------

TEST(VmatAnalyze, SuppressionsSilenceEveryForm) {
  // suppressed.cpp holds true positives of three rules, each silenced by a
  // same-line, line-above, or file-level allow().
  REQUIRE_LIBCLANG();
  const auto r = run_analyze("tools/fixtures/analyze/suppressed.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(VmatAnalyze, WholeFixtureTreeTotals) {
  // One run over the whole analyze fixture tree: totals must be the sum of
  // the per-file expectations above and nothing more.
  REQUIRE_LIBCLANG();
  const auto r = run_analyze("tools/fixtures/analyze");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("shard-race"), 5) << r.output;
  EXPECT_EQ(r.count("snapshot-field-coverage"), 1) << r.output;
  EXPECT_EQ(r.count("expected-discarded"), 3) << r.output;
  EXPECT_EQ(r.count("pool-escape"), 4) << r.output;
  EXPECT_TRUE(r.mentions("13 finding(s)")) << r.output;
}

TEST(VmatAnalyze, JsonReportForCi) {
  REQUIRE_LIBCLANG();
  const auto r = run_analyze(
      "--json - --only expected-discarded "
      "tools/fixtures/analyze/expected_discarded_bad.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_TRUE(r.mentions("\"schema\": \"vmat-analyze/1\"")) << r.output;
  EXPECT_TRUE(r.mentions("\"rule\": \"expected-discarded\"")) << r.output;
  EXPECT_TRUE(r.mentions("\"line\": 27")) << r.output;
}

TEST(VmatAnalyze, RealTreeIsClean) {
  // The shipping sources must satisfy every invariant (findings fixed or
  // carrying a justified allow) — the same sweep the vmat_analyze ctest
  // and the CI analyze job run, driven by the build's compile database.
  REQUIRE_LIBCLANG();
  const auto r =
      run_analyze(std::string("-p ") + VMAT_BUILD_DIR + " src");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
