// ThreadPool stress test for the sanitizer matrix (label: tsan).
//
// Built and run in every configuration, but written for
// -DVMAT_SANITIZE=thread: it hammers the pool with overlapping
// submit/drain cycles, concurrent pools, and shared()-pool traffic so TSan
// sees every lock-ordering and signalling path, and it re-asserts the
// determinism contract — bit-identical per-trial results for
// VMAT_THREADS ∈ {1, 4, hardware_concurrency} — under that load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace vmat {
namespace {

constexpr std::size_t kTrials = 96;

/// A trial body with enough RNG traffic to interleave threads for real.
std::uint64_t trial_value(Rng& rng) {
  std::uint64_t acc = 0;
  for (int i = 0; i < 64; ++i) acc = acc * 0x9e3779b97f4a7c15ULL + rng();
  return acc;
}

std::vector<std::uint64_t> run_trials(std::size_t threads,
                                      std::uint64_t base_seed) {
  ThreadPool pool(threads);
  std::vector<std::uint64_t> out(kTrials, 0);
  parallel_for_trials(
      kTrials, base_seed,
      [&out](std::size_t trial, Rng& rng) { out[trial] = trial_value(rng); },
      &pool);
  return out;
}

TEST(ParallelTsan, BitIdenticalAcrossThreadCounts) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto serial = run_trials(1, 42);
  const auto four = run_trials(4, 42);
  const auto wide = run_trials(hw, 42);
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, wide);
}

TEST(ParallelTsan, OverlappingSubmitDrainCycles) {
  // Back-to-back batches of varying width on one pool: each for_each
  // drains fully before the next submits, so worker wake-up from a live
  // pool (not a fresh one) is exercised every round.
  ThreadPool pool(4);
  std::vector<std::atomic<std::uint32_t>> hits(257);
  for (auto& h : hits) h.store(0);
  std::uint64_t expected = 0;
  for (std::uint32_t round = 0; round < 64; ++round) {
    const std::size_t n = (round * 37) % hits.size() + 1;
    expected += n;
    pool.for_each(n, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::uint64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, expected);
}

TEST(ParallelTsan, ConcurrentPoolsDoNotInterfere) {
  // Several driver threads, each owning a private pool and running its own
  // trial batches, while the main thread drives ThreadPool::shared() — the
  // shape a parallel bench suite has.
  constexpr int kDrivers = 3;
  std::vector<std::vector<std::uint64_t>> results(kDrivers);
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&results, d] {
      for (int rep = 0; rep < 4; ++rep)
        results[d] = run_trials(2 + d, 1000 + d);
    });
  }
  std::vector<std::uint64_t> shared_out(kTrials, 0);
  for (int rep = 0; rep < 4; ++rep) {
    parallel_for_trials(kTrials, 7, [&shared_out](std::size_t t, Rng& rng) {
      shared_out[t] = trial_value(rng);
    });
  }
  for (auto& t : drivers) t.join();
  // Every driver saw its own deterministic stream, unaffected by the
  // concurrent pools.
  for (int d = 0; d < kDrivers; ++d)
    EXPECT_EQ(results[d], run_trials(1, 1000 + d)) << "driver " << d;
  EXPECT_EQ(shared_out, run_trials(1, 7));
}

TEST(ParallelTsan, ExceptionUnderLoadLeavesPoolReusable) {
  ThreadPool pool(4);
  for (int round = 0; round < 16; ++round) {
    EXPECT_THROW(pool.for_each(64,
                               [](std::size_t i) {
                                 if (i % 17 == 3)
                                   throw std::runtime_error("boom");
                               }),
                 std::runtime_error);
    std::atomic<int> done{0};
    pool.for_each(64, [&done](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 64);
  }
}

}  // namespace
}  // namespace vmat
