// ThreadPool stress test for the sanitizer matrix (label: tsan).
//
// Built and run in every configuration, but written for
// -DVMAT_SANITIZE=thread: it hammers the pool with overlapping
// submit/drain cycles, concurrent pools, and shared()-pool traffic so TSan
// sees every lock-ordering and signalling path, and it re-asserts the
// determinism contract — bit-identical per-trial results for
// VMAT_THREADS ∈ {1, 4, hardware_concurrency} — under that load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "helpers.h"
#include "trace/trace.h"
#include "util/parallel.h"

namespace vmat {
namespace {

constexpr std::size_t kTrials = 96;

/// A trial body with enough RNG traffic to interleave threads for real.
std::uint64_t trial_value(Rng& rng) {
  std::uint64_t acc = 0;
  for (int i = 0; i < 64; ++i) acc = acc * 0x9e3779b97f4a7c15ULL + rng();
  return acc;
}

std::vector<std::uint64_t> run_trials(std::size_t threads,
                                      std::uint64_t base_seed) {
  ThreadPool pool(threads);
  std::vector<std::uint64_t> out(kTrials, 0);
  parallel_for_trials(
      kTrials, base_seed,
      [&out](std::size_t trial, Rng& rng) { out[trial] = trial_value(rng); },
      &pool);
  return out;
}

TEST(ParallelTsan, BitIdenticalAcrossThreadCounts) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto serial = run_trials(1, 42);
  const auto four = run_trials(4, 42);
  const auto wide = run_trials(hw, 42);
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, wide);
}

TEST(ParallelTsan, OverlappingSubmitDrainCycles) {
  // Back-to-back batches of varying width on one pool: each for_each
  // drains fully before the next submits, so worker wake-up from a live
  // pool (not a fresh one) is exercised every round.
  ThreadPool pool(4);
  std::vector<std::atomic<std::uint32_t>> hits(257);
  for (auto& h : hits) h.store(0);
  std::uint64_t expected = 0;
  for (std::uint32_t round = 0; round < 64; ++round) {
    const std::size_t n = (round * 37) % hits.size() + 1;
    expected += n;
    pool.for_each(n, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::uint64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, expected);
}

TEST(ParallelTsan, ConcurrentPoolsDoNotInterfere) {
  // Several driver threads, each owning a private pool and running its own
  // trial batches, while the main thread drives ThreadPool::shared() — the
  // shape a parallel bench suite has.
  constexpr int kDrivers = 3;
  std::vector<std::vector<std::uint64_t>> results(kDrivers);
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&results, d] {
      for (int rep = 0; rep < 4; ++rep)
        results[d] = run_trials(2 + d, 1000 + d);
    });
  }
  std::vector<std::uint64_t> shared_out(kTrials, 0);
  for (int rep = 0; rep < 4; ++rep) {
    parallel_for_trials(kTrials, 7, [&shared_out](std::size_t t, Rng& rng) {
      shared_out[t] = trial_value(rng);
    });
  }
  for (auto& t : drivers) t.join();
  // Every driver saw its own deterministic stream, unaffected by the
  // concurrent pools.
  for (int d = 0; d < kDrivers; ++d)
    EXPECT_EQ(results[d], run_trials(1, 1000 + d)) << "driver " << d;
  EXPECT_EQ(shared_out, run_trials(1, 7));
}

/// One full traced execution under a forced intra-execution thread count.
/// 100 nodes so plan_shards() actually shards (n >= 64).
struct ExecRun {
  ExecutionOutcome outcome;
  std::vector<TraceEvent> events;
};

ExecRun run_execution(std::size_t exec_threads) {
  set_intra_execution_threads(exec_threads);
  Network net(Topology::grid(10, 10), testing::dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);
  ExecRun run;
  run.outcome = coordinator.run_min(
      testing::default_readings(net.node_count()));
  run.events = recorder.events();
  set_intra_execution_threads(0);
  return run;
}

TEST(ParallelTsan, LevelParallelExecutionBitIdentical) {
  // The acceptance criterion of the level-parallel drivers: estimates, the
  // full flight-recorder event stream, and fabric byte totals are
  // bit-identical for VMAT_THREADS ∈ {1, 4, hardware_concurrency}.
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const ExecRun serial = run_execution(1);
  const ExecRun four = run_execution(4);
  const ExecRun wide = run_execution(hw);
  ASSERT_EQ(serial.outcome.kind, OutcomeKind::kResult);
  for (const ExecRun* run : {&four, &wide}) {
    EXPECT_EQ(run->outcome.kind, serial.outcome.kind);
    EXPECT_EQ(run->outcome.minima, serial.outcome.minima);
    EXPECT_EQ(run->outcome.data_rounds, serial.outcome.data_rounds);
    EXPECT_EQ(run->outcome.fabric_bytes, serial.outcome.fabric_bytes);
    EXPECT_EQ(run->outcome.metrics, serial.outcome.metrics);
    EXPECT_EQ(run->events, serial.events);
  }
}

TEST(ParallelTsan, LevelParallelAdversarialRunStaysSoundAndIdentical) {
  // Same determinism contract with an adversary in the loop: the strategy
  // hook stages frames serially at the top of each slot, before the honest
  // shards buffer and replay, so pinpointing and revocation histories must
  // match bit-for-bit too.
  auto run_attacked = [](std::size_t exec_threads) {
    set_intra_execution_threads(exec_threads);
    const auto topo = Topology::grid(10, 10);
    Network net(topo, testing::dense_keys());
    const auto malicious = choose_malicious(topo, 2, 13);
    Adversary adv(&net, malicious,
                  std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(malicious);
    VmatCoordinator coordinator(&net, &adv, cfg);
    FlightRecorder recorder;
    coordinator.set_recorder(&recorder);
    const auto readings = testing::default_readings(net.node_count());
    std::vector<std::vector<Reading>> values(net.node_count());
    std::vector<std::vector<std::int64_t>> weights(net.node_count());
    for (std::uint32_t id = 0; id < net.node_count(); ++id) {
      values[id] = {readings[id]};
      weights[id] = {0};
    }
    const auto history = coordinator.run_until_result(values, weights, {}, 400);
    set_intra_execution_threads(0);
    struct Result {
      Reading minimum;
      std::size_t executions;
      std::vector<TraceEvent> events;
      std::uint64_t bytes;
    } out;
    EXPECT_TRUE(history.back().produced_result());
    out.minimum = history.back().minima[0];
    out.executions = history.size();
    out.events = recorder.events();
    out.bytes = 0;
    for (const auto& h : history) out.bytes += h.fabric_bytes;
    return std::make_tuple(out.minimum, out.executions, out.bytes, out.events);
  };
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto serial = run_attacked(1);
  EXPECT_EQ(run_attacked(4), serial);
  EXPECT_EQ(run_attacked(hw), serial);
}

TEST(ParallelTsan, ExceptionUnderLoadLeavesPoolReusable) {
  ThreadPool pool(4);
  for (int round = 0; round < 16; ++round) {
    EXPECT_THROW(pool.for_each(64,
                               [](std::size_t i) {
                                 if (i % 17 == 3)
                                   throw std::runtime_error("boom");
                               }),
                 std::runtime_error);
    std::atomic<int> done{0};
    pool.for_each(64, [&done](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 64);
  }
}

}  // namespace
}  // namespace vmat
