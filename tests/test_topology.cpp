// Topology generator and graph-utility tests.
#include <gtest/gtest.h>

#include "keys/predistribution.h"
#include "sim/topology.h"

namespace vmat {
namespace {

TEST(Topology, LineDepthAndDegrees) {
  const auto t = Topology::line(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_EQ(t.depth(), 4);
  EXPECT_EQ(t.degree(NodeId{0}), 1u);
  EXPECT_EQ(t.degree(NodeId{2}), 2u);
  const auto depth = t.bfs_depth();
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(depth[i], static_cast<Level>(i));
}

TEST(Topology, GridShape) {
  const auto t = Topology::grid(4, 3);
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_EQ(t.edge_count(), 4u * 2 + 3u * 3);  // horizontal + vertical
  EXPECT_EQ(t.depth(), 3 + 2);                 // manhattan from corner
  EXPECT_TRUE(t.connected());
}

TEST(Topology, StarOfChains) {
  const auto t = Topology::star_of_chains(3, 4);
  EXPECT_EQ(t.node_count(), 13u);
  EXPECT_EQ(t.depth(), 4);
  EXPECT_EQ(t.degree(kBaseStation), 3u);
  EXPECT_TRUE(t.connected());
}

TEST(Topology, AddEdgeValidation) {
  Topology t(3);
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{0}), std::invalid_argument);
  EXPECT_THROW(t.add_edge(NodeId{0}, NodeId{3}), std::out_of_range);
  t.add_edge(NodeId{0}, NodeId{1});
  t.add_edge(NodeId{0}, NodeId{1});  // idempotent
  EXPECT_EQ(t.edge_count(), 1u);
}

TEST(Topology, ExclusionAffectsDepthAndConnectivity) {
  // 0-1-2-3 plus shortcut 0-3: excluding 1 leaves 0-3-2.
  Topology t(4);
  t.add_edge(NodeId{0}, NodeId{1});
  t.add_edge(NodeId{1}, NodeId{2});
  t.add_edge(NodeId{2}, NodeId{3});
  t.add_edge(NodeId{0}, NodeId{3});
  EXPECT_EQ(t.depth(), 2);
  const std::unordered_set<NodeId> excl{NodeId{3}};
  EXPECT_EQ(t.depth(excl), 2);
  const std::unordered_set<NodeId> cut{NodeId{1}, NodeId{3}};
  EXPECT_FALSE(t.connected(cut));
}

TEST(Topology, RandomGeometricIsConnectedAndRooted) {
  const auto t = Topology::random_geometric(150, 0.16, 42);
  EXPECT_EQ(t.node_count(), 150u);
  EXPECT_TRUE(t.connected());
  EXPECT_GT(t.degree(kBaseStation), 0u);
}

TEST(Topology, RandomGeometricDeterministicPerSeed) {
  const auto a = Topology::random_geometric(80, 0.2, 7);
  const auto b = Topology::random_geometric(80, 0.2, 7);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (std::uint32_t i = 0; i < 80; ++i)
    EXPECT_EQ(a.degree(NodeId{i}), b.degree(NodeId{i}));
}

TEST(Topology, RandomGeometricThrowsWhenImpossible) {
  EXPECT_THROW((void)Topology::random_geometric(100, 0.01, 1, 3),
               std::runtime_error);
}

TEST(Topology, SecureSubgraphKeepsOnlyKeyedEdges) {
  const auto t = Topology::grid(5, 5);
  // Tiny rings: many physical edges will lack a shared key.
  const Predistribution sparse(25, {.pool_size = 500, .ring_size = 5, .seed = 1});
  const auto secure = t.secure_subgraph(sparse);
  EXPECT_LT(secure.edge_count(), t.edge_count());
  for (std::uint32_t a = 0; a < 25; ++a)
    for (NodeId b : secure.neighbors(NodeId{a}))
      EXPECT_TRUE(sparse.edge_key(NodeId{a}, b).has_value());

  // Dense rings: essentially every edge survives.
  const Predistribution dense(25, {.pool_size = 100, .ring_size = 60, .seed = 1});
  EXPECT_EQ(t.secure_subgraph(dense).edge_count(), t.edge_count());
}

TEST(Topology, BfsDepthUnreachableIsNoLevel) {
  Topology t(3);
  t.add_edge(NodeId{0}, NodeId{1});
  const auto depth = t.bfs_depth();
  EXPECT_EQ(depth[2], kNoLevel);
  EXPECT_FALSE(t.connected());
}

}  // namespace
}  // namespace vmat
