// Re-keying epoch tests: fresh key material restores honest capacity,
// fully-revoked sensors stay out, and the adversary's old keys are
// worthless afterwards.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::true_min;

TEST(Rekey, FreshMaterialClearsBurnedEdgeKeys) {
  Network net(Topology::grid(5, 5), dense_keys(0, 1));
  // Burn a few edge keys as pinpointing would.
  const auto first = net.usable_edge_key(NodeId{1}, NodeId{2});
  ASSERT_TRUE(first.has_value());
  (void)net.revocation().revoke_key(*first);
  EXPECT_EQ(net.revocation().revoked_key_count(), 1u);

  KeyMaterialSpec fresh = dense_keys(0, 99).keys;
  EXPECT_EQ(net.rekey(fresh), 0u);
  EXPECT_EQ(net.revocation().revoked_key_count(), 0u);
  EXPECT_EQ(net.keys().config().seed, fresh.seed);
  // The pair has a usable key again (fresh rings).
  EXPECT_TRUE(net.usable_edge_key(NodeId{1}, NodeId{2}).has_value());
}

TEST(Rekey, RevokedSensorsStayRevoked) {
  Network net(Topology::grid(5, 5), dense_keys(0, 2));
  (void)net.revocation().revoke_sensor(NodeId{7});
  const auto carried = net.rekey(dense_keys(0, 100).keys);
  EXPECT_EQ(carried, 1u);
  EXPECT_TRUE(net.revocation().is_sensor_revoked(NodeId{7}));
  // Its fresh ring keys are revoked too: neighbors ignore its frames.
  for (KeyIndex k : net.keys().ring(NodeId{7}).indices())
    EXPECT_TRUE(net.revocation().is_key_revoked(k));
}

TEST(Rekey, ThresholdSurvivesRekey) {
  NetworkSpec cfg = dense_keys(0, 3);
  cfg.revocation_threshold = 42;
  Network net(Topology::grid(4, 4), cfg);
  (void)net.rekey(dense_keys(0, 101).keys);
  EXPECT_EQ(net.revocation().threshold(), 42u);
}

TEST(Rekey, ProtocolRunsCleanAfterEpoch) {
  // Grind an attacker down, ring-revoke it, rekey, and verify the next
  // query is clean and correct with the attacker still excluded.
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 1, 4);
  NetworkSpec cfg = dense_keys(0, 4);
  Network net(topo, cfg);
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec vcfg;
  vcfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, vcfg);
  const auto readings = default_readings(25);
  std::vector<std::vector<Reading>> values(25);
  std::vector<std::vector<std::int64_t>> weights(25);
  for (std::uint32_t id = 0; id < 25; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  (void)coordinator.run_until_result(values, weights, {}, 400);
  // Administrative decision: fully revoke the attacker, then re-key.
  for (NodeId m : malicious) (void)net.revocation().revoke_sensor(m);
  (void)net.rekey(dense_keys(0, 500).keys);

  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings, malicious));
  // The attacker's old key material buys it nothing: its fresh ring is
  // dead and it cannot inject anything its neighbors would accept.
  for (NodeId m : malicious)
    for (NodeId v : topo.neighbors(m))
      EXPECT_FALSE(net.usable_edge_key(m, v).has_value());
}

}  // namespace
}  // namespace vmat
