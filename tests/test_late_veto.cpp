// Regression tests for late/replayed spurious vetoes: in unslotted SOF a
// spurious veto can reach the base station in an interval far beyond L+1;
// the junk-confirmation walk must track the longer trail (its step budget
// follows the arrival interval) and still end in a sound revocation.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;

/// Injects one *spurious* veto (bogus MAC) very late in the confirmation
/// phase — only meaningful when SOF runs unslotted.
class LateSpuriousVeto final : public PolicyStrategy {
 public:
  explicit LateSpuriousVeto(Interval inject_at)
      : PolicyStrategy(LiePolicy::kDenyAll), inject_at_(inject_at) {}

  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override {
    if (ctx.slot != inject_at_) return;
    for (NodeId m : view.malicious()) {
      VetoMsg junk;
      junk.origin = m;
      junk.instance = 0;
      junk.value = (*ctx.broadcast_minima)[0] == kInfinity
                       ? -1
                       : (*ctx.broadcast_minima)[0] - 1;
      junk.level = 1;
      const Bytes frame = encode(junk);
      for (NodeId v : view.net().topology().neighbors(m)) {
        if (view.is_malicious(v)) continue;
        const auto key = view.attack_key_for(v);
        if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
      }
    }
  }

 private:
  Interval inject_at_;
};

TEST(LateVeto, UnslottedLateSpuriousVetoIsWalkedSoundly) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 1, 3);
  Network net(topo, dense_keys());
  const Level L = topo.depth(malicious);
  Adversary adv(&net, malicious,
                std::make_unique<LateSpuriousVeto>(/*inject_at=*/3 * L));
  CoordinatorSpec cfg;
  cfg.depth_bound = L;
  cfg.slotted_sof = false;  // the only mode where late injection can land
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto out = coordinator.run_min(default_readings(25));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kJunkConfirmation);
  EXPECT_TRUE(revocations_sound(net, malicious)) << out.reason;
}

TEST(LateVeto, SlottedSofIgnoresLateInjection) {
  // With slotted SOF the phase is over before the replay slot: the attack
  // simply never lands and the query completes.
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 1, 3);
  Network net(topo, dense_keys());
  const Level L = topo.depth(malicious);
  Adversary adv(&net, malicious,
                std::make_unique<LateSpuriousVeto>(/*inject_at=*/3 * L));
  CoordinatorSpec cfg;
  cfg.depth_bound = L;
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(25);
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], testing::true_min(net, readings, malicious));
}

TEST(LateVeto, UnslottedCampaignStillConverges) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 5);
  Network net(topo, dense_keys());
  const Level L = topo.depth(malicious);
  Adversary adv(&net, malicious,
                std::make_unique<LateSpuriousVeto>(2 * L));
  CoordinatorSpec cfg;
  cfg.depth_bound = L;
  cfg.slotted_sof = false;
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(25);
  std::vector<std::vector<Reading>> values(25);
  std::vector<std::vector<std::int64_t>> weights(25);
  for (std::uint32_t id = 0; id < 25; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 400);
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_TRUE(revocations_sound(net, malicious));
}

}  // namespace
}  // namespace vmat
