// Confirmation/SOF tests: Lemma 1 (a veto always gets through), one-time
// forwarding, audit tuples, slotted interval bounds, and the choking race.
#include <gtest/gtest.h>

#include "core/confirmation.h"
#include "core/tree_formation.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

struct ConfFixture {
  explicit ConfFixture(Topology topo, Adversary* adv = nullptr)
      : net(std::move(topo), dense_keys()), audits(net.node_count()) {
    TreePhaseParams tp;
    tp.depth_bound = net.physical_depth();
    tp.session = 5;
    tree = run_tree_formation(net, adv, tp);
  }

  ConfirmationOutcome run(Adversary* adv, const std::vector<Reading>& readings,
                          Reading broadcast_min, bool slotted = true) {
    ValueTable values(net.node_count(), 1, 0);
    for (std::uint32_t id = 0; id < net.node_count(); ++id)
      values.data[id] = readings[id];
    return run_confirmation(net, adv, tree, {broadcast_min}, 0x99, values,
                            audits, slotted);
  }

  Network net;
  TreeResult tree;
  AuditLog audits;
};

TEST(Confirmation, NoVetoWhenMinimumCorrect) {
  ConfFixture fx(Topology::grid(5, 4));
  const auto readings = default_readings(fx.net.node_count());
  const auto out = fx.run(nullptr, readings, /*broadcast_min=*/101);
  EXPECT_TRUE(out.arrivals.empty());
}

TEST(Confirmation, UndercutReadingTriggersVeto) {
  ConfFixture fx(Topology::grid(5, 4));
  const auto readings = default_readings(fx.net.node_count());
  // Claimed minimum larger than node 1's and node 2's readings.
  const auto out = fx.run(nullptr, readings, /*broadcast_min=*/103);
  ASSERT_FALSE(out.arrivals.empty());
  const auto& first = out.arrivals.front();
  EXPECT_LT(first.msg.value, 103);
  EXPECT_TRUE(verify_veto(fx.net.keys().sensor_key(first.msg.origin),
                          first.msg, 0x99));
}

TEST(Confirmation, VetoFromDeepestNodeArrives) {
  ConfFixture fx(Topology::line(8));
  auto readings = default_readings(fx.net.node_count());
  readings[7] = 1;  // only the deepest node undercuts
  const auto out = fx.run(nullptr, readings, /*broadcast_min=*/50);
  ASSERT_FALSE(out.arrivals.empty());
  EXPECT_EQ(out.arrivals.front().msg.origin, NodeId{7});
  // Arrived within L intervals (Lemma 1 bound).
  EXPECT_LE(out.arrivals.front().interval, fx.tree.depth_bound);
}

TEST(Confirmation, OneTimeForwardingRecordsSingleTuple) {
  ConfFixture fx(Topology::line(8));
  auto readings = default_readings(fx.net.node_count());
  readings[7] = 1;
  (void)fx.run(nullptr, readings, 50);
  for (std::uint32_t id = 1; id <= 6; ++id) {
    const SofRecord* rec = fx.audits.sof(NodeId{id});
    ASSERT_NE(rec, nullptr) << "node " << id;
    EXPECT_FALSE(rec->originated);
    EXPECT_EQ(rec->forward_interval, rec->received_interval + 1);
    EXPECT_FALSE(rec->out_edges.empty());
    EXPECT_TRUE(fx.net.keys().ring(NodeId{id}).contains(rec->in_edge));
  }
  // The vetoer's record.
  const SofRecord* vetoer_rec = fx.audits.sof(NodeId{7});
  ASSERT_NE(vetoer_rec, nullptr);
  EXPECT_TRUE(vetoer_rec->originated);
  EXPECT_EQ(vetoer_rec->forward_interval, 1);
}

TEST(Confirmation, SofIntervalsAreBoundedByDepth) {
  ConfFixture fx(Topology::grid(6, 5));
  auto readings = default_readings(fx.net.node_count());
  readings[29] = 1;
  (void)fx.run(nullptr, readings, 50);
  for (std::uint32_t id = 1; id < fx.net.node_count(); ++id) {
    const SofRecord* rec = fx.audits.sof(NodeId{id});
    if (rec == nullptr) continue;
    EXPECT_LE(rec->forward_interval, fx.tree.depth_bound + 1);
  }
}

TEST(Confirmation, Lemma1HoldsUnderSilentMaliciousCut) {
  // Honest vetoer exists and stays connected: some veto must reach the BS
  // no matter which (non-partitioning) set goes silent.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto topo = Topology::grid(5, 5);
    const auto malicious = choose_malicious(topo, 3, seed);
    Network net(topo, dense_keys());
    Adversary adv(&net, malicious, std::make_unique<SilentDropStrategy>());
    TreePhaseParams tp;
    tp.depth_bound = topo.depth(malicious);
    tp.session = seed;
    const auto tree = run_tree_formation(net, &adv, tp);

    auto readings = default_readings(net.node_count());
    // Pick an honest non-BS node to undercut.
    NodeId vetoer{0};
    for (std::uint32_t id = 1; id < net.node_count(); ++id)
      if (!malicious.contains(NodeId{id})) {
        vetoer = NodeId{id};
        break;
      }
    readings[vetoer.value] = 1;

    ValueTable values(net.node_count(), 1, 0);
    for (std::uint32_t id = 0; id < net.node_count(); ++id)
      values.data[id] = readings[id];
    AuditLog audits(net.node_count());
    const auto out = run_confirmation(net, &adv, tree, {50}, seed, values,
                                      audits);
    EXPECT_FALSE(out.arrivals.empty()) << "seed " << seed;
  }
}

TEST(Confirmation, SpuriousVetoChokesButSomethingStillArrives) {
  // The choking adversary floods spurious vetoes in slot 1. Honest one-time
  // forwarders may pick the junk — but then the junk reaches the BS, which
  // is exactly what SOF promises (Lemma 1: *some* veto arrives).
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 3, 4);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious, std::make_unique<ChokeVetoStrategy>());
  TreePhaseParams tp;
  tp.depth_bound = topo.depth(malicious);
  tp.session = 9;
  const auto tree = run_tree_formation(net, &adv, tp);

  auto readings = default_readings(net.node_count());
  NodeId vetoer{0};
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    if (!malicious.contains(NodeId{id})) {
      vetoer = NodeId{id};
      break;
    }
  readings[vetoer.value] = 1;
  ValueTable values(net.node_count(), 1, 0);
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    values.data[id] = readings[id];
  AuditLog audits(net.node_count());
  const auto out =
      run_confirmation(net, &adv, tree, {50}, 11, values, audits);
  ASSERT_FALSE(out.arrivals.empty());
  // At least one arrival is spurious (the choke) or the legit veto made it;
  // either way the base station has something to act on.
  bool any_spurious = false, any_valid = false;
  for (const auto& a : out.arrivals) {
    if (a.msg.origin.value < net.node_count() &&
        verify_veto(net.keys().sensor_key(a.msg.origin), a.msg, 11))
      any_valid = true;
    else
      any_spurious = true;
  }
  EXPECT_TRUE(any_spurious || any_valid);
}

TEST(Confirmation, VetoersAtInvalidLevelStaySilent) {
  ConfFixture fx(Topology::line(5));
  auto readings = default_readings(fx.net.node_count());
  readings[4] = 1;
  // Manually invalidate the vetoer's level to simulate a poisoned tree.
  fx.tree.level[4] = kNoLevel;
  const auto out = fx.run(nullptr, readings, 50);
  // Node 4 cannot veto (no valid level); nobody else undercuts.
  EXPECT_TRUE(out.arrivals.empty());
}

}  // namespace
}  // namespace vmat
