// Unit tests for util: deterministic RNG, sampling, statistics, and the
// canonical byte codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/bytes.h"
#include "util/random.h"
#include "util/stats.h"

namespace vmat {
namespace {

TEST(Splitmix, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) buckets[rng.below(8)]++;
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 8 * 0.9);
    EXPECT_LT(count, kDraws / 8 * 1.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitOpenNeverZeroOrOne) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit_open();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kDraws, 2.5, 0.05);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndSorted) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(1000, 250);
  ASSERT_EQ(sample.size(), 250u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  const std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 250u);
  for (auto v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleFullRange) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(15);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6),
               std::invalid_argument);
}

TEST(Rng, SampleIsUnbiased) {
  // Every element of [0,20) should be picked ~ k/n of the time.
  Rng rng(17);
  std::array<int, 20> hits{};
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t)
    for (auto v : rng.sample_without_replacement(20, 5)) hits[v]++;
  for (int h : hits) {
    EXPECT_GT(h, kTrials / 4 * 0.85);
    EXPECT_LT(h, kTrials / 4 * 1.15);
  }
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> xs{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 50), 50.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 90), 90.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 100), 100.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0), 10.0);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW((void)percentile_nearest_rank({}, 50), std::invalid_argument);
  EXPECT_THROW((void)percentile_nearest_rank({}, 0), std::invalid_argument);
  EXPECT_THROW((void)percentile_nearest_rank({}, 100), std::invalid_argument);
  EXPECT_THROW((void)percentile_interpolated({}, 50), std::invalid_argument);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile_nearest_rank(xs, 101), std::invalid_argument);
  EXPECT_THROW((void)percentile_nearest_rank(xs, -0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile_interpolated(xs, 101), std::invalid_argument);
  EXPECT_THROW((void)percentile_interpolated(xs, -0.5), std::invalid_argument);
}

TEST(Stats, PercentileEndpointsAndSingleElement) {
  // Documented contract (both variants): p == 0 is the minimum, p == 100
  // the maximum, and a single-element span returns that element for every p.
  const std::vector<double> xs{7.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0), -2.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 100), 7.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(xs, 0), -2.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(xs, 100), 7.0);
  const std::vector<double> one{42.0};
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(one, p), 42.0) << "p=" << p;
    EXPECT_DOUBLE_EQ(percentile_interpolated(one, p), 42.0) << "p=" << p;
  }
}

TEST(Stats, PercentileInterpolatedDoesNotCollapseToMax) {
  // The latency-reporting bugfix: nearest-rank p95 of 10 samples IS the
  // max (rank ceil(0.95 * 10) = 10); the interpolated variant lands
  // between the 9th and 10th order statistics instead.
  const std::vector<double> xs{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 95), 100.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(xs, 95), 95.5);
  EXPECT_DOUBLE_EQ(percentile_interpolated(xs, 50), 55.0);
  EXPECT_DOUBLE_EQ(percentile_interpolated(xs, 99), 99.1);
  // Two samples: straight line between them.
  const std::vector<double> two{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_interpolated(two, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile_interpolated(two, 75), 7.5);
}

TEST(Stats, EmptyRunningStatsUsesIdentityExtrema) {
  // min() = +inf and max() = -inf before the first add(): the identity
  // elements, so min/max over a merged-empty accumulator stay correct.
  // (They used to start at 0.0, which clamped all-positive minima.)
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(rs.max(), -std::numeric_limits<double>::infinity());

  rs.add(5.0);  // a single all-positive sample must surface as the min
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);

  RunningStats negatives;
  negatives.add(-3.0);  // ...and a single negative sample as the max
  EXPECT_DOUBLE_EQ(negatives.min(), -3.0);
  EXPECT_DOUBLE_EQ(negatives.max(), -3.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(21);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.unit() * 10 - 3;
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-7);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.str("hello");
  const Bytes buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  const Bytes buf = w.take();
  ByteReader r(buf);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::out_of_range);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xfe, 0xff, 0x7a};
  EXPECT_EQ(to_hex(data), "0001feff7a");
  EXPECT_EQ(from_hex("0001feff7a"), data);
  EXPECT_EQ(from_hex("0001FEFF7A"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
  table.add_row({"x", "y"});  // well-formed rows are fine
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(3.0, 0), "3");
  EXPECT_EQ(TablePrinter::fmt(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace vmat
