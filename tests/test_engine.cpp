// Serving-engine tests: epoch-batched execution, bit-identical results
// across thread pools, epoch invalidation on revocation, deadlines and
// slow-start/backoff under a choking adversary, and admission control.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <type_traits>

#include "engine/engine.h"
#include "helpers.h"
#include "spec/simulation_spec.h"
#include "trace/checker.h"

namespace vmat {
namespace {

using testing::dense_keys;

constexpr std::uint32_t kNodes = 36;

struct EngineFixture {
  explicit EngineFixture(std::uint32_t instances = 60,
                         Adversary* adversary = nullptr,
                         EngineConfig config = {}, ThreadPool* pool = nullptr)
      : net(Topology::grid(6, 6), dense_keys()) {
    CoordinatorSpec cfg;
    cfg.instances = instances;
    coordinator = std::make_unique<VmatCoordinator>(&net, adversary, cfg);
    engine = std::make_unique<Engine>(coordinator.get(), config, pool);
  }

  Network net;
  std::unique_ptr<VmatCoordinator> coordinator;
  std::unique_ptr<Engine> engine;
};

std::vector<EngineQuery> mixed_batch() {
  std::vector<EngineQuery> batch;
  {
    EngineQuery q;
    q.kind = EngineQueryKind::kCount;
    q.predicate.assign(kNodes, 0);
    for (std::uint32_t id = 1; id <= 20; ++id) q.predicate[id] = 1;
    batch.push_back(q);
  }
  {
    EngineQuery q;
    q.kind = EngineQueryKind::kSum;
    q.readings.assign(kNodes, 0);
    for (std::uint32_t id = 1; id < kNodes; ++id) q.readings[id] = id % 7 + 1;
    batch.push_back(q);
  }
  {
    EngineQuery q;
    q.kind = EngineQueryKind::kAverage;
    q.readings.assign(kNodes, 0);
    for (std::uint32_t id = 1; id < kNodes; ++id) q.readings[id] = 10;
    batch.push_back(q);
  }
  {
    EngineQuery q;
    q.kind = EngineQueryKind::kMin;
    q.raw = testing::default_readings(kNodes);
    batch.push_back(q);
  }
  {
    EngineQuery q;
    q.kind = EngineQueryKind::kMax;
    q.raw = testing::default_readings(kNodes);
    batch.push_back(q);
  }
  return batch;
}

TEST(Engine, BatchAnswersMatchQuerySemantics) {
  EngineFixture fx(100);
  const auto results = fx.engine->run_batch(mixed_batch());
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) ASSERT_TRUE(r.answered()) << to_string(r.kind);

  std::int64_t total = 0;
  for (std::uint32_t id = 1; id < kNodes; ++id) total += id % 7 + 1;
  EXPECT_NEAR(*results[0].estimate, 20.0, 20.0 * 0.35);
  EXPECT_NEAR(*results[1].estimate, static_cast<double>(total), total * 0.35);
  EXPECT_NEAR(*results[2].estimate, 10.0, 10.0 * 0.35);
  EXPECT_EQ(*results[3].estimate, 101.0);   // min of 100 + id over id >= 1
  EXPECT_EQ(*results[4].estimate, 135.0);   // max of 100 + id, id <= 35
}

TEST(Engine, WholeBatchSharesOneEpoch) {
  EngineFixture fx(60);
  const auto results = fx.engine->run_batch(mixed_batch());
  for (const auto& r : results) ASSERT_TRUE(r.answered());

  const EngineStats& stats = fx.engine->stats();
  EXPECT_EQ(stats.epochs_formed, 1u);
  EXPECT_TRUE(fx.coordinator->epoch_ready());
  ASSERT_EQ(fx.engine->epoch_rollups().size(), 1u);
  const EpochRollup& rollup = fx.engine->epoch_rollups().front();
  EXPECT_EQ(rollup.executions, stats.executions);
  EXPECT_EQ(rollup.queries_served, results.size());
  EXPECT_EQ(rollup.formation_bytes + rollup.fabric_bytes, stats.fabric_bytes);
  // Every query has the same serving epoch.
  for (const auto& r : results) EXPECT_EQ(r.epoch_id, rollup.epoch_id);
}

TEST(Engine, BitIdenticalAcrossThreadPools) {
  std::vector<std::vector<EngineResult>> runs;
  const std::size_t hw = default_thread_count();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, hw}) {
    ThreadPool pool(threads);
    EngineFixture fx(60, nullptr, {}, &pool);
    runs.push_back(fx.engine->run_batch(mixed_batch()));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].size(), runs[0].size());
    for (std::size_t j = 0; j < runs[0].size(); ++j) {
      ASSERT_EQ(runs[i][j].answered(), runs[0][j].answered());
      // Bit-identical, not approximately equal: same nonce streams, same
      // PRG blocks, same serial execution whatever the pool width.
      EXPECT_EQ(*runs[i][j].estimate, *runs[0][j].estimate);
      EXPECT_EQ(runs[i][j].executions, runs[0][j].executions);
    }
  }
}

TEST(Engine, QuantileViaBatchedCountProbes) {
  EngineFixture fx(100);
  EngineQuery q;
  q.kind = EngineQueryKind::kQuantile;
  q.readings.assign(kNodes, 0);
  for (std::uint32_t id = 1; id < kNodes; ++id) q.readings[id] = id;
  q.q = 0.5;
  q.domain_max = 64;
  const auto results = fx.engine->run_batch({q});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].answered());
  // Median of 1..35 is 18; the COUNT estimator's (ε,δ) error widens it.
  EXPECT_NEAR(*results[0].estimate, 18.0, 8.0);
  // The probes amortize over one epoch (no revocations happened).
  EXPECT_EQ(fx.engine->stats().epochs_formed, 1u);
  EXPECT_GT(fx.engine->stats().executions, 3u);
}

TEST(Engine, EpochInvalidatedByRevocationAndRekey) {
  EngineFixture fx(1);
  (void)fx.coordinator->prepare_epoch();
  EXPECT_TRUE(fx.coordinator->epoch_ready());

  // Any key revocation may burn an edge of the formed tree.
  (void)fx.net.revocation().revoke_key(KeyIndex{5});
  EXPECT_FALSE(fx.coordinator->epoch_ready());

  (void)fx.coordinator->prepare_epoch();
  EXPECT_TRUE(fx.coordinator->epoch_ready());

  // Rekeying replaces the key material the tree's edges authenticated with.
  (void)fx.net.rekey(dense_keys(0, 77).keys);
  EXPECT_FALSE(fx.coordinator->epoch_ready());

  // A one-shot execute() forms its own tree and orphans the epoch's.
  (void)fx.coordinator->prepare_epoch();
  const auto readings = testing::default_readings(kNodes);
  (void)fx.coordinator->run_min(readings);
  EXPECT_FALSE(fx.coordinator->epoch_ready());
}

TEST(Engine, RunQueryWithoutEpochThrows) {
  EngineFixture fx(1);
  std::vector<std::vector<Reading>> values(kNodes, std::vector<Reading>{1});
  std::vector<std::vector<std::int64_t>> weights(kNodes,
                                                 std::vector<std::int64_t>{0});
  EXPECT_THROW((void)fx.coordinator->run_query(values, weights),
               std::logic_error);
}

TEST(Engine, ChokingAdversaryTriggersBackoffThenAnswers) {
  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{14}, NodeId{21}},
                std::make_unique<ChokeVetoStrategy>());
  CoordinatorSpec cfg;
  cfg.instances = 40;
  VmatCoordinator coordinator(&net, &adv, cfg);
  EngineConfig config;
  config.max_in_flight = 4;
  Engine engine(&coordinator, config);

  std::vector<EngineQuery> batch;
  for (int i = 0; i < 4; ++i) {
    EngineQuery q;
    q.kind = EngineQueryKind::kCount;
    q.predicate.assign(kNodes, 1);
    q.predicate[0] = 0;
    q.max_executions = 600;  // Theorem 7: each disruption revokes material
    batch.push_back(q);
  }
  const auto results = engine.run_batch(batch);

  // Theorem 7 loop: every disruption revoked adversary material, so all
  // queries eventually answered within the default deadline.
  for (const auto& r : results) {
    ASSERT_TRUE(r.answered());
    EXPECT_NEAR(*r.estimate, 35.0, 35.0 * 0.40);
  }
  const EngineStats& stats = engine.stats();
  EXPECT_GT(stats.disrupted_executions, 0u);
  // Each disruption invalidated the epoch; a fresh tree was formed.
  EXPECT_GT(stats.epochs_formed, 1u);
  // The run ended clean, so slow-start recovered and backoff cleared.
  EXPECT_EQ(stats.backoff, 0u);
  EXPECT_GT(stats.window, 1u);
}

TEST(Engine, DeadlineExceededUnderPersistentDisruption) {
  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{14}}, std::make_unique<ChokeVetoStrategy>());
  CoordinatorSpec cfg;
  cfg.instances = 10;
  VmatCoordinator coordinator(&net, &adv, cfg);
  Engine engine(&coordinator);

  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(kNodes, 1);
  q.predicate[0] = 0;
  q.max_executions = 1;  // one attempt only — the first choke kills it
  const auto results = engine.run_batch({q});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].answered());
  ASSERT_TRUE(results[0].error.has_value());
  EXPECT_EQ(results[0].error->code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(results[0].executions, 1);
  EXPECT_EQ(engine.stats().backoff, engine.config().backoff_base);
  EXPECT_EQ(engine.stats().window, 1u);
}

TEST(Engine, StepServesIncrementallyAndTakeReadyPreservesOrder) {
  EngineFixture fx(100);
  std::vector<std::uint64_t> ids;
  for (EngineQuery& q : mixed_batch())
    ids.push_back(*fx.engine->submit(std::move(q)));

  // Drive the serving seams the way the daemon does: one round at a time,
  // collecting settled results between rounds.
  std::vector<EngineResult> collected;
  bool more = true;
  while (more) {
    more = fx.engine->step();
    for (EngineResult& r : fx.engine->take_ready())
      collected.push_back(std::move(r));
  }
  EXPECT_EQ(fx.engine->open_queries(), 0u);
  EXPECT_EQ(fx.engine->queued(), 0u);

  ASSERT_EQ(collected.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(collected[i].id, ids[i]);  // submission order preserved
    EXPECT_TRUE(collected[i].answered());
  }
  // take_ready() on a drained engine is an empty no-op.
  EXPECT_TRUE(fx.engine->take_ready().empty());
}

TEST(Engine, TakeReadyMidServeKeepsOpenQueryPayloadsIntact) {
  // Regression: take_ready() used to compact the pending queue with an
  // unconditional move-assignment, which self-moved (and gutted) the first
  // open query's payload vectors whenever nothing settled ahead of it —
  // exactly the daemon's poll-between-rounds pattern under disruption.
  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{14}, NodeId{21}},
                std::make_unique<ChokeVetoStrategy>());
  CoordinatorSpec cfg;
  cfg.instances = 40;
  VmatCoordinator coordinator(&net, &adv, cfg);
  Engine engine(&coordinator);

  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(kNodes, 1);
  q.predicate[0] = 0;
  q.max_executions = 600;
  ASSERT_TRUE(engine.submit(q).has_value());

  std::vector<EngineResult> collected;
  bool more = true;
  while (more) {
    // Poll even when nothing settled: the empty-take path is the trigger.
    for (EngineResult& r : engine.take_ready())
      collected.push_back(std::move(r));
    more = engine.step();
  }
  for (EngineResult& r : engine.take_ready()) collected.push_back(std::move(r));

  ASSERT_EQ(collected.size(), 1u);
  ASSERT_TRUE(collected[0].answered());
  EXPECT_NEAR(*collected[0].estimate, 35.0, 35.0 * 0.40);
  EXPECT_GT(engine.stats().disrupted_executions, 0u);
}

TEST(Engine, StepSettlesEverythingOnceRoundBudgetExhausts) {
  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{14}}, std::make_unique<ChokeVetoStrategy>());
  CoordinatorSpec cfg;
  cfg.instances = 10;
  VmatCoordinator coordinator(&net, &adv, cfg);
  EngineConfig config;
  config.max_rounds = 1;
  Engine engine(&coordinator, config);

  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(kNodes, 1);
  q.predicate[0] = 0;
  q.max_executions = 50;  // far beyond the engine budget
  ASSERT_TRUE(engine.submit(q).has_value());

  EXPECT_TRUE(engine.step());   // round 1: disrupted, query stays open
  EXPECT_FALSE(engine.step());  // budget check fires before a second round
  const auto results = engine.take_ready();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].error.has_value());
  EXPECT_EQ(results[0].error->code, ErrorCode::kBudgetExhausted);
  EXPECT_EQ(engine.stats().rounds, 1u);
  EXPECT_EQ(engine.stats().queries_failed, 1u);
}

TEST(Engine, DeadlineOnDisruptedRoundSettlesExactlyOnce) {
  // Boundary: the deadline lands on the same disrupted round that
  // invalidates the epoch. The query must settle kDeadlineExceeded exactly
  // once — not get retried on the re-formed epoch, not settle twice.
  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{14}}, std::make_unique<ChokeVetoStrategy>());
  CoordinatorSpec cfg;
  cfg.instances = 10;
  VmatCoordinator coordinator(&net, &adv, cfg);
  Engine engine(&coordinator);

  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(kNodes, 1);
  q.predicate[0] = 0;
  q.max_executions = 2;  // both attempts disrupted; the second is terminal
  ASSERT_TRUE(engine.submit(q).has_value());

  while (engine.step()) {}
  EXPECT_FALSE(coordinator.epoch_ready());  // that round revoked material
  const auto results = engine.take_ready();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].answered());
  ASSERT_TRUE(results[0].error.has_value());
  EXPECT_EQ(results[0].error->code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(results[0].executions, 2);
  EXPECT_EQ(engine.stats().queries_failed, 1u);  // settled exactly once
  EXPECT_EQ(engine.stats().rounds, 2u);
  EXPECT_EQ(engine.open_queries(), 0u);
}

TEST(Engine, PrepareWarmsEpochAheadAndRearmsAfterOneShot) {
  EngineFixture fx(40);
  // Pipelining seam: prepare() forms the epoch before any query arrives...
  fx.engine->prepare();
  EXPECT_TRUE(fx.coordinator->epoch_ready());
  EXPECT_EQ(fx.engine->stats().epochs_formed, 1u);
  fx.engine->prepare();  // ...and is a no-op while the epoch stays ready.
  EXPECT_EQ(fx.engine->stats().epochs_formed, 1u);

  // A one-shot execution orphans the epoch's tree WITHOUT moving key
  // material — the only situation rearm_epoch() covers.
  const std::vector<std::vector<Reading>> values(
      kNodes, std::vector<Reading>(40, kInfinity));
  const std::vector<std::vector<std::int64_t>> weights(
      kNodes, std::vector<std::int64_t>(40, 0));
  (void)fx.coordinator->execute(values, weights);
  EXPECT_FALSE(fx.coordinator->epoch_ready());
  fx.engine->prepare();
  EXPECT_TRUE(fx.coordinator->epoch_ready());
  EXPECT_EQ(fx.engine->stats().epochs_rearmed, 1u);
  EXPECT_EQ(fx.engine->stats().epochs_formed, 1u);  // restored, not re-formed
  ASSERT_EQ(fx.engine->epoch_rollups().size(), 2u);
  EXPECT_TRUE(fx.engine->epoch_rollups().back().rearmed);
  EXPECT_EQ(fx.engine->epoch_rollups().back().formation_bytes, 0u);

  // Queries land on the re-armed epoch and serve normally.
  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(kNodes, 1);
  q.predicate[0] = 0;
  const auto results = fx.engine->run_batch({q});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].answered());
  EXPECT_EQ(fx.engine->stats().epochs_formed, 1u);
}

TEST(Engine, AdmissionControlRejectsOverflowAndBadPayloads) {
  EngineConfig config;
  config.queue_depth = 2;
  EngineFixture fx(10, nullptr, config);

  EngineQuery ok;
  ok.kind = EngineQueryKind::kCount;
  ok.predicate.assign(kNodes, 1);
  EXPECT_TRUE(fx.engine->submit(ok).has_value());
  EXPECT_TRUE(fx.engine->submit(ok).has_value());
  const auto overflow = fx.engine->submit(ok);
  ASSERT_FALSE(overflow.has_value());
  EXPECT_EQ(overflow.error().code, ErrorCode::kQueueFull);

  EngineQuery bad;
  bad.kind = EngineQueryKind::kCount;
  bad.predicate.assign(kNodes - 1, 1);  // does not cover all nodes
  const auto invalid = fx.engine->submit(bad);
  ASSERT_FALSE(invalid.has_value());
  EXPECT_EQ(invalid.error().code, ErrorCode::kInvalidArgument);

  EngineQuery negative;
  negative.kind = EngineQueryKind::kSum;
  negative.readings.assign(kNodes, -1);
  EXPECT_FALSE(fx.engine->submit(negative).has_value());

  const auto results = fx.engine->drain();
  EXPECT_EQ(results.size(), 2u);
}

TEST(Engine, ServingTraceSatisfiesInvariantCheckers) {
  EngineFixture fx(40);
  FlightRecorder recorder;
  fx.coordinator->set_recorder(&recorder);
  const auto results = fx.engine->run_batch(mixed_batch());
  fx.coordinator->set_recorder(nullptr);
  for (const auto& r : results) ASSERT_TRUE(r.answered());

  // The recording holds one epoch slice plus the execution slices; both
  // kinds must satisfy the trace-invariant checker.
  const CheckReport report = check_trace(recorder);
  EXPECT_TRUE(report.ok()) << report.to_string();
  bool saw_epoch = false;
  for (const TraceEvent& e : recorder.events())
    saw_epoch = saw_epoch || e.kind == TraceEventKind::kEpochBegin;
  EXPECT_TRUE(saw_epoch);
}

TEST(Engine, SimulationSpecConstructsWholeStack) {
  SimulationSpec spec;
  spec.nodes(36)
      .topology(TopologyKind::kGrid)
      .key_pool(400, 120)
      .instances(40)
      .seed(2024);
  ASSERT_TRUE(spec.check().has_value());
  Network net(spec);
  VmatCoordinator coordinator(&net, nullptr, spec);
  Engine engine(&coordinator);

  EngineQuery q;
  q.kind = EngineQueryKind::kCount;
  q.predicate.assign(36, 1);
  q.predicate[0] = 0;
  const auto results = engine.run_batch({q});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].answered());
  EXPECT_NEAR(*results[0].estimate, 35.0, 35.0 * 0.40);
}

TEST(Engine, SimulationSpecValidateReportsTypedErrors) {
  SimulationSpec spec;
  spec.nodes(1).key_pool(10, 20).loss(1.5).instances(0);
  const auto errors = spec.validate();
  EXPECT_GE(errors.size(), 4u);
  for (const Error& e : errors) EXPECT_EQ(e.code, ErrorCode::kInvalidSpec);
  EXPECT_FALSE(spec.check().has_value());
  EXPECT_THROW((void)Network(spec), std::invalid_argument);
}

}  // namespace
}  // namespace vmat
