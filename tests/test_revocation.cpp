// Statistical tests backing the Figure 7 reproduction: ring-overlap
// distributions, the θ threshold trade-off, and θ-driven full-sensor
// revocation during protocol campaigns.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coordinator.h"
#include "helpers.h"
#include "util/random.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

TEST(Fig7Stats, MeanRingOverlapMatchesHypergeometric) {
  // E[overlap] = r^2 / u.
  constexpr std::uint32_t kPool = 10000;
  constexpr std::uint32_t kRing = 100;
  const Predistribution pd(200, {.pool_size = kPool, .ring_size = kRing,
                                 .seed = 5});
  double total = 0.0;
  int pairs = 0;
  for (std::uint32_t a = 1; a < 60; ++a)
    for (std::uint32_t b = a + 1; b < 60; ++b) {
      total += static_cast<double>(pd.ring(NodeId{a}).overlap(pd.ring(NodeId{b})));
      ++pairs;
    }
  EXPECT_NEAR(total / pairs, 1.0, 0.2);  // 100*100/10000 = 1
}

TEST(Fig7Stats, SmallThetaMisrevokesLargeThetaDoesNot) {
  // Adversary key set = union of f=5 malicious rings; an honest ring with
  // >= θ overlap is mis-revocable. θ=1 catches many honest sensors; a θ a
  // few standard deviations above the mean overlap catches none.
  constexpr std::uint32_t kPool = 10000;
  constexpr std::uint32_t kRing = 100;
  constexpr std::uint32_t kNodes = 300;
  const Predistribution pd(kNodes, {.pool_size = kPool, .ring_size = kRing,
                                    .seed = 6});
  std::vector<bool> adversary_keys(kPool, false);
  for (std::uint32_t m = 1; m <= 5; ++m)
    for (KeyIndex k : pd.ring(NodeId{m}).indices())
      adversary_keys[k.value] = true;

  auto overlap_with_adversary = [&](NodeId node) {
    std::uint32_t overlap = 0;
    for (KeyIndex k : pd.ring(node).indices())
      if (adversary_keys[k.value]) ++overlap;
    return overlap;
  };

  std::uint32_t misrevoked_theta1 = 0, misrevoked_theta_big = 0;
  for (std::uint32_t id = 6; id < kNodes; ++id) {
    const auto o = overlap_with_adversary(NodeId{id});
    if (o >= 1) ++misrevoked_theta1;
    if (o >= 25) ++misrevoked_theta_big;  // mean ~5, far tail
  }
  EXPECT_GT(misrevoked_theta1, kNodes / 2);
  EXPECT_EQ(misrevoked_theta_big, 0u);
}

TEST(Fig7Stats, LargerAdversaryNeedsLargerTheta) {
  constexpr std::uint32_t kPool = 10000;
  constexpr std::uint32_t kRing = 100;
  const Predistribution pd(400, {.pool_size = kPool, .ring_size = kRing,
                                 .seed = 7});
  auto max_honest_overlap = [&](std::uint32_t f) {
    std::vector<bool> adversary_keys(kPool, false);
    for (std::uint32_t m = 1; m <= f; ++m)
      for (KeyIndex k : pd.ring(NodeId{m}).indices())
        adversary_keys[k.value] = true;
    std::uint32_t worst = 0;
    for (std::uint32_t id = f + 1; id < 400; ++id) {
      std::uint32_t o = 0;
      for (KeyIndex k : pd.ring(NodeId{id}).indices())
        if (adversary_keys[k.value]) ++o;
      worst = std::max(worst, o);
    }
    return worst;
  };
  // More malicious sensors -> larger worst-case honest overlap -> larger
  // θ needed for zero mis-revocation.
  EXPECT_LT(max_honest_overlap(1), max_honest_overlap(16));
}

// Regression for the θ-cascade accounting bug: ring-seed bulk revocations
// said nothing about the *other* holders of those keys, yet they used to
// count toward every holder's θ. With high ring overlap one revoked sensor
// then chain-revoked honest neighbors. Only pinpointed keys — individual
// exposures attributable to the holder — may contribute (Section VI-C).
TEST(ThetaCascade, RingSeedRevocationsDoNotCountTowardOtherSensorsTheta) {
  // pool 50, ring 40: any two rings overlap in ~32 keys, far above θ = 10,
  // so the pre-fix accounting would cascade through the whole deployment.
  const Predistribution pd(6, {.pool_size = 50, .ring_size = 40, .seed = 11});
  RevocationRegistry reg(&pd, /*threshold=*/10);

  const auto newly = reg.revoke_sensor(NodeId{1});
  ASSERT_FALSE(newly.empty());
  EXPECT_EQ(newly.front(), NodeId{1});
  EXPECT_EQ(newly.size(), 1u) << "ring-seed revocation cascaded";
  for (std::uint32_t id = 2; id < 6; ++id) {
    EXPECT_FALSE(reg.is_sensor_revoked(NodeId{id})) << "sensor " << id;
    EXPECT_EQ(reg.revoked_count(NodeId{id}), 0u) << "sensor " << id;
  }
}

TEST(ThetaCascade, PinpointedRevocationsStillCrossTheta) {
  const Predistribution pd(6, {.pool_size = 50, .ring_size = 40, .seed = 11});
  RevocationRegistry reg(&pd, /*threshold=*/10);

  // Individually pinpointed keys are real exposures and must still count:
  // after θ of node 2's keys are revoked one by one, node 2 falls.
  std::uint32_t walked = 0;
  for (KeyIndex k : pd.ring(NodeId{2}).indices()) {
    if (reg.is_sensor_revoked(NodeId{2})) break;
    (void)reg.revoke_key(k);
    ++walked;
  }
  EXPECT_TRUE(reg.is_sensor_revoked(NodeId{2}));
  EXPECT_EQ(walked, 10u) << "cascade should fire exactly at theta";
}

// θ-campaign scaffolding: a junk-injecting attacker placed at a
// high-degree node, under the paper's sparse-key regime (mean pairwise
// ring overlap r²/u = 2). Every execution pinpoints one fresh edge key the
// attacker shares with some honest neighbor, so its exposure accumulates
// across neighbors until θ is crossed — the Section VI-C mechanism.
struct ThetaCampaignResult {
  std::size_t executions;
  bool attacker_ring_revoked;
  std::size_t pinpointed_keys;
  std::size_t honest_revoked;
};

ThetaCampaignResult run_theta_campaign(std::uint32_t theta,
                                       std::uint64_t seed) {
  const auto topo = Topology::random_geometric(40, 0.40, seed);
  // Attack from the highest-degree non-base-station node.
  NodeId attacker{1};
  for (std::uint32_t id = 2; id < topo.node_count(); ++id)
    if (topo.degree(NodeId{id}) > topo.degree(attacker)) attacker = NodeId{id};

  NetworkSpec netcfg;
  netcfg.keys.pool_size = 800;
  netcfg.keys.ring_size = 40;
  netcfg.keys.seed = seed;
  netcfg.revocation_threshold = theta;
  Network net(topo, netcfg);

  const std::unordered_set<NodeId> malicious{attacker};
  Adversary adv(&net, malicious,
                std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll,
                                                     /*frame=*/false));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious) + 2;  // slack for sparse keying
  cfg.seed = seed;
  VmatCoordinator coordinator(&net, &adv, cfg);

  const auto readings = default_readings(net.node_count());
  std::vector<std::vector<Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 500);

  ThetaCampaignResult result;
  result.executions = history.size();
  result.attacker_ring_revoked = net.revocation().is_sensor_revoked(attacker);
  result.pinpointed_keys = net.revocation().pinpointed_key_count();
  result.honest_revoked = 0;
  for (NodeId s : net.revocation().revoked_sensors_in_order())
    if (!malicious.contains(s)) ++result.honest_revoked;
  return result;
}

TEST(ThetaCampaign, ThresholdFullyRevokesThePersistentAttacker) {
  const auto r = run_theta_campaign(/*theta=*/8, /*seed=*/3);
  EXPECT_TRUE(r.attacker_ring_revoked);
  EXPECT_EQ(r.honest_revoked, 0u);
  // θ-threshold bulk revocation: only ~θ keys needed individual walks.
  EXPECT_LE(r.pinpointed_keys, 12u);
}

TEST(ThetaCampaign, ZeroThetaRequiresMoreExecutions) {
  const auto with_theta = run_theta_campaign(/*theta=*/8, /*seed=*/3);
  const auto without_theta = run_theta_campaign(/*theta=*/0, /*seed=*/3);
  EXPECT_FALSE(without_theta.attacker_ring_revoked);
  EXPECT_EQ(without_theta.honest_revoked, 0u);
  EXPECT_LT(with_theta.executions, without_theta.executions);
}

}  // namespace
}  // namespace vmat
