// Path-key establishment tests: sparse rings leave physical edges unkeyed;
// establish_path_keys() restores full secure connectivity, and the whole
// protocol — including pinpointing and revocation — treats path keys as
// first-class keys.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::revocations_sound;
using testing::true_min;

NetworkSpec sparse_keys(std::uint64_t seed) {
  NetworkSpec cfg;
  cfg.keys.pool_size = 5000;
  cfg.keys.ring_size = 50;  // P(two rings share a key) ~ 0.39
  cfg.keys.seed = seed;
  cfg.revocation_threshold = 0;
  return cfg;
}

TEST(PathKeys, RegistrationBasics) {
  Predistribution pd(10, {.pool_size = 100, .ring_size = 5, .seed = 1});
  const KeyIndex k = pd.register_path_key(NodeId{2}, NodeId{7});
  EXPECT_TRUE(pd.is_path_key(k));
  EXPECT_GE(k.value, 100u);
  // Idempotent, order-independent.
  EXPECT_EQ(pd.register_path_key(NodeId{7}, NodeId{2}), k);
  // Exactly two holders, sorted.
  const auto holders = pd.holders(k);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], NodeId{2});
  EXPECT_EQ(holders[1], NodeId{7});
  // node_holds / keys_of see it.
  EXPECT_TRUE(pd.node_holds(NodeId{2}, k));
  EXPECT_TRUE(pd.node_holds(NodeId{7}, k));
  EXPECT_FALSE(pd.node_holds(NodeId{3}, k));
  const auto keys = pd.keys_of(NodeId{2});
  EXPECT_TRUE(std::find(keys.begin(), keys.end(), k) != keys.end());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Distinct key material from pool keys and other path keys.
  const KeyIndex k2 = pd.register_path_key(NodeId{1}, NodeId{3});
  EXPECT_NE(pd.key_material(k), pd.key_material(k2));
}

TEST(PathKeys, RegistrationValidation) {
  Predistribution pd(5, {.pool_size = 50, .ring_size = 5, .seed = 2});
  EXPECT_THROW((void)pd.register_path_key(NodeId{1}, NodeId{1}),
               std::invalid_argument);
  EXPECT_THROW((void)pd.register_path_key(NodeId{1}, NodeId{9}),
               std::out_of_range);
  EXPECT_THROW((void)pd.key_material(KeyIndex{60}), std::out_of_range);
}

TEST(PathKeys, EstablishmentRestoresSecureConnectivity) {
  const auto topo = Topology::grid(6, 6);
  Network net(topo, sparse_keys(4));
  // Sparse rings: many physical edges are unkeyed before establishment.
  const auto before = topo.secure_subgraph(net.keys());
  ASSERT_LT(before.edge_count(), topo.edge_count());

  const std::size_t established = net.establish_path_keys();
  EXPECT_EQ(established, topo.edge_count() - before.edge_count());
  // Now every physical neighbor pair has a usable key.
  for (std::uint32_t id = 0; id < topo.node_count(); ++id)
    EXPECT_EQ(net.usable_neighbors(NodeId{id}).size(),
              topo.degree(NodeId{id}));
  // Idempotent.
  EXPECT_EQ(net.establish_path_keys(), 0u);
}

TEST(PathKeys, SecureSendOverPathKey) {
  // Find an edge that needs a path key and exercise the full MAC path.
  const auto topo = Topology::grid(6, 6);
  Network net(topo, sparse_keys(4));
  (void)net.establish_path_keys();
  bool exercised = false;
  for (std::uint32_t id = 0; id < topo.node_count() && !exercised; ++id) {
    for (NodeId v : topo.neighbors(NodeId{id})) {
      const auto key = net.usable_edge_key(NodeId{id}, v);
      ASSERT_TRUE(key.has_value());
      if (!net.keys().is_path_key(*key)) continue;
      const Bytes payload{1, 2, 3};
      ASSERT_TRUE(net.send_secure(NodeId{id}, v, payload));
      net.fabric().end_slot();
      const auto got = net.receive_valid(v);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(Bytes(got[0].payload.begin(), got[0].payload.end()), payload);
      exercised = true;
      break;
    }
  }
  EXPECT_TRUE(exercised);
}

TEST(PathKeys, RevokedPathKeyKillsTheEdge) {
  const auto topo = Topology::grid(6, 6);
  Network net(topo, sparse_keys(4));
  (void)net.establish_path_keys();
  for (std::uint32_t id = 0; id < topo.node_count(); ++id) {
    for (NodeId v : topo.neighbors(NodeId{id})) {
      const auto key = net.usable_edge_key(NodeId{id}, v);
      if (!key.has_value() || !net.keys().is_path_key(*key)) continue;
      (void)net.revocation().revoke_key(*key);
      // No fallback: the pair shared no ring key to begin with.
      EXPECT_FALSE(net.usable_edge_key(NodeId{id}, v).has_value());
      return;
    }
  }
  FAIL() << "no path-keyed edge found";
}

TEST(PathKeys, FullProtocolRunsOnSparseRings) {
  const auto topo = Topology::grid(6, 6);
  Network net(topo, sparse_keys(8));
  (void)net.establish_path_keys();
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings));
}

TEST(PathKeys, PinpointingWalksAcrossPathKeys) {
  // Sparse rings + a silent dropper: the veto walk must traverse (and may
  // revoke) path keys, and stays sound.
  const auto topo = Topology::grid(5, 5);
  Network net(topo, sparse_keys(11));
  (void)net.establish_path_keys();
  const auto malicious = choose_malicious(topo, 2, 13);
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);

  const auto readings = default_readings(net.node_count());
  std::vector<std::vector<Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 400);
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_TRUE(revocations_sound(net, malicious));
  EXPECT_EQ(history.back().minima[0], true_min(net, readings, malicious));
}

TEST(PathKeys, RingRevocationTakesPathKeysAlong) {
  Predistribution pd(10, {.pool_size = 200, .ring_size = 10, .seed = 3});
  const KeyIndex pk = pd.register_path_key(NodeId{4}, NodeId{5});
  RevocationRegistry reg(&pd, 0);
  (void)reg.revoke_sensor(NodeId{4});
  EXPECT_TRUE(reg.is_key_revoked(pk));
}

}  // namespace
}  // namespace vmat
