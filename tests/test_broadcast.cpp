// Authenticated broadcast tests: chain-element authentication, replay and
// forgery rejection, epoch monotonicity.
#include <gtest/gtest.h>

#include "broadcast/auth_broadcast.h"

namespace vmat {
namespace {

TEST(AuthBroadcast, SignedBroadcastAccepted) {
  AuthBroadcaster bs(1, 10);
  AuthReceiver rx(bs.anchor());
  const auto b = bs.sign({1, 2, 3});
  EXPECT_TRUE(rx.accept(b));
}

TEST(AuthBroadcast, SequenceAccepted) {
  AuthBroadcaster bs(2, 10);
  AuthReceiver rx(bs.anchor());
  for (int i = 0; i < 10; ++i) {
    const auto b = bs.sign({static_cast<std::uint8_t>(i)});
    EXPECT_TRUE(rx.accept(b)) << "epoch " << i;
  }
  EXPECT_THROW((void)bs.sign({0}), std::runtime_error);  // chain exhausted
}

TEST(AuthBroadcast, SkippedEpochsStillVerify) {
  AuthBroadcaster bs(3, 10);
  AuthReceiver rx(bs.anchor());
  (void)bs.sign({1});  // lost broadcast
  const auto b2 = bs.sign({2});
  EXPECT_TRUE(rx.accept(b2));  // verifies across the gap
}

TEST(AuthBroadcast, ReplayRejected) {
  AuthBroadcaster bs(4, 10);
  AuthReceiver rx(bs.anchor());
  const auto b = bs.sign({1});
  EXPECT_TRUE(rx.accept(b));
  EXPECT_FALSE(rx.accept(b));  // same epoch again
}

TEST(AuthBroadcast, TamperedPayloadRejected) {
  AuthBroadcaster bs(5, 10);
  AuthReceiver rx(bs.anchor());
  auto b = bs.sign({1, 2, 3});
  b.payload[0] ^= 1;
  EXPECT_FALSE(rx.accept(b));
}

TEST(AuthBroadcast, ForgedChainElementRejected) {
  AuthBroadcaster bs(6, 10);
  AuthReceiver rx(bs.anchor());
  auto b = bs.sign({1});
  b.chain_element[3] ^= 0x40;
  // Re-MAC with the forged element so only the chain check can catch it.
  b.mac = compute_mac(broadcast_key(b.chain_element), b.payload);
  EXPECT_FALSE(rx.accept(b));
}

TEST(AuthBroadcast, WrongAnchorRejectsEverything) {
  AuthBroadcaster bs(7, 10);
  AuthBroadcaster other(8, 10);
  AuthReceiver rx(other.anchor());
  EXPECT_FALSE(rx.accept(bs.sign({1})));
}

TEST(AuthBroadcast, OldEpochAfterNewerRejected) {
  AuthBroadcaster bs(9, 10);
  AuthReceiver rx(bs.anchor());
  const auto b1 = bs.sign({1});
  const auto b2 = bs.sign({2});
  EXPECT_TRUE(rx.accept(b2));
  EXPECT_FALSE(rx.accept(b1));  // stale
}

}  // namespace
}  // namespace vmat
