// End-to-end coordinator tests: the Figure 1 state machine, Theorem 2
// (returned results are correct), O(1) data rounds, and the Theorem 7
// recovery loop for every attack family.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;
using testing::true_min;

TEST(Coordinator, HonestRunReturnsTrueMin) {
  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.trigger, Trigger::kNone);
  EXPECT_EQ(out.minima[0], true_min(net, readings));
}

TEST(Coordinator, DataPathIsConstantRounds) {
  for (std::uint32_t side : {4u, 6u, 8u}) {
    Network net(Topology::grid(side, side), dense_keys());
    VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
    const auto out = coordinator.run_min(default_readings(net.node_count()));
    ASSERT_EQ(out.kind, OutcomeKind::kResult);
    EXPECT_EQ(out.data_rounds, 6);  // 3 announcements + 3 phases, any n
  }
}

TEST(Coordinator, RandomGeometricHonestRun) {
  Network net(Topology::random_geometric(200, 0.14, 33), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings));
}

TEST(Coordinator, PassthroughAdversaryChangesNothing) {
  Network net(Topology::grid(5, 5), dense_keys());
  Adversary adv(&net, {NodeId{7}, NodeId{12}},
                std::make_unique<NullStrategy>());
  VmatCoordinator coordinator(&net, &adv, CoordinatorSpec{});
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings));
}

TEST(Coordinator, NeverReturnsIncorrectResult) {
  // Theorem 2: whatever the dropper does, a returned result equals the
  // honest minimum (here the malicious sensor reports its honest reading,
  // so the true min is the global min).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto topo = Topology::grid(5, 5);
    const auto malicious = choose_malicious(topo, 3, seed);
    Network net(topo, dense_keys(0, seed));
    Adversary adv(&net, malicious,
                  std::make_unique<ValueDropStrategy>(LiePolicy::kDenyAll));
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(malicious);
    cfg.seed = seed;
    VmatCoordinator coordinator(&net, &adv, cfg);
    const auto readings = default_readings(net.node_count());
    const auto out = coordinator.run_min(readings);
    if (out.kind == OutcomeKind::kResult)
      EXPECT_LE(out.minima[0], true_min(net, readings, malicious))
          << "seed " << seed;
    else
      EXPECT_TRUE(revocations_sound(net, malicious)) << "seed " << seed;
  }
}

TEST(Coordinator, RecoversFromEveryAttackFamily) {
  const auto topo = Topology::grid(5, 5);
  const auto readings = default_readings(25);
  std::vector<std::vector<Reading>> values(25);
  std::vector<std::vector<std::int64_t>> weights(25);
  for (std::uint32_t id = 0; id < 25; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }

  using Factory = std::unique_ptr<AdversaryStrategy> (*)();
  const std::pair<const char*, Factory> families[] = {
      {"silent", +[]() -> std::unique_ptr<AdversaryStrategy> {
         return std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll);
       }},
      {"value-drop", +[]() -> std::unique_ptr<AdversaryStrategy> {
         return std::make_unique<ValueDropStrategy>(LiePolicy::kAdmitAll);
       }},
      {"junk", +[]() -> std::unique_ptr<AdversaryStrategy> {
         return std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll);
       }},
      {"choke", +[]() -> std::unique_ptr<AdversaryStrategy> {
         return std::make_unique<ChokeVetoStrategy>(LiePolicy::kRandom);
       }},
      {"self-veto", +[]() -> std::unique_ptr<AdversaryStrategy> {
         return std::make_unique<SelfVetoStrategy>(1, LiePolicy::kDenyAll);
       }},
  };

  for (const auto& [name, make] : families) {
    const auto malicious = choose_malicious(topo, 2, 17);
    Network net(topo, dense_keys(0, 99));
    Adversary adv(&net, malicious, make());
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(malicious);
    VmatCoordinator coordinator(&net, &adv, cfg);
    const auto history =
        coordinator.run_until_result(values, weights, {}, /*max=*/600);
    EXPECT_TRUE(history.back().produced_result()) << name;
    EXPECT_TRUE(revocations_sound(net, malicious)) << name;
    // Honest material intact: the final minimum is the honest one.
    EXPECT_LE(history.back().minima[0], true_min(net, readings, malicious))
        << name;
  }
}

TEST(Coordinator, MultipathModeWorksEndToEnd) {
  Network net(Topology::grid(5, 5), dense_keys());
  CoordinatorSpec cfg;
  cfg.multipath = true;
  VmatCoordinator coordinator(&net, nullptr, cfg);
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings));
}

TEST(Coordinator, MultipathToleratesSingleDropperWithoutPinpointing) {
  // Section IV-D: with ring aggregation a single silent parent usually
  // cannot suppress the minimum, so the run completes with a result.
  const auto topo = Topology::grid(5, 5);
  Network net(topo, dense_keys());
  Adversary adv(&net, {NodeId{7}},
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.multipath = true;
  cfg.depth_bound = topo.depth({NodeId{7}});
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], true_min(net, readings, {NodeId{7}}));
}

TEST(Coordinator, SelfIncriminationRevokesTheSigner) {
  // A malicious sensor sends a *valid-MAC* veto with an impossible level.
  class BadLevelVeto final : public PolicyStrategy {
   public:
    BadLevelVeto() : PolicyStrategy(LiePolicy::kDenyAll) {}
    void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override {
      if (ctx.slot != 1) return;
      const NodeId m = *view.malicious().begin();
      const Reading value = (*ctx.broadcast_minima)[0] == kInfinity
                                ? 0
                                : (*ctx.broadcast_minima)[0] - 1;
      const VetoMsg veto = make_veto(view.sensor_key(m), m, 0, value,
                                     /*level=*/9999, ctx.nonce);
      const Bytes frame = encode(veto);
      for (NodeId v : view.net().topology().neighbors(m)) {
        const auto key = view.attack_key_for(v);
        if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
      }
    }
  };
  const auto topo = Topology::grid(4, 4);
  Network net(topo, dense_keys());
  Adversary adv(&net, {NodeId{5}}, std::make_unique<BadLevelVeto>());
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth({NodeId{5}});
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto out = coordinator.run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kSelfIncrimination);
  ASSERT_FALSE(out.revoked_sensors.empty());
  EXPECT_EQ(out.revoked_sensors.front(), NodeId{5});
}

TEST(Coordinator, EmptyNetworkMinIsInfinity) {
  Network net(Topology::line(4), dense_keys());
  CoordinatorSpec cfg;
  cfg.instances = 1;
  VmatCoordinator coordinator(&net, nullptr, cfg);
  std::vector<std::vector<Reading>> values(4, {kInfinity});
  std::vector<std::vector<std::int64_t>> weights(4, {0});
  const auto out = coordinator.execute(values, weights);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.minima[0], kInfinity);
}

TEST(Coordinator, ValidatesInputSizes) {
  Network net(Topology::line(4), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  std::vector<std::vector<Reading>> bad(3, {1});
  std::vector<std::vector<std::int64_t>> weights(4, {0});
  EXPECT_THROW((void)coordinator.execute(bad, weights),
               std::invalid_argument);
  EXPECT_THROW((void)coordinator.run_min({1, 2}), std::invalid_argument);
}

TEST(Coordinator, InstancesZeroRejected) {
  Network net(Topology::line(4), dense_keys());
  CoordinatorSpec cfg;
  cfg.instances = 0;
  EXPECT_THROW(VmatCoordinator(&net, nullptr, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace vmat
