// Campaign-layer tests: predicate algebra (purity, De Morgan, parse
// round-trips), policy/corpus serialization, the declarative AttackSpec
// (validation + zoo equivalence), and the CampaignRunner fuzzer contract —
// fixed (seed, budget) is fully deterministic, fork probes match scratch
// probes bit-for-bit, and corpus entries replay to the same outcome digest
// for any intra-execution thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "campaign/corpus.h"
#include "campaign/predicate.h"
#include "campaign/runner.h"
#include "campaign/strategy.h"
#include "helpers.h"
#include "sim/snapshot.h"
#include "spec/attack_spec.h"
#include "spec/simulation_spec.h"
#include "util/parallel.h"

namespace vmat {
namespace {

using campaign::AttackPolicy;
using campaign::AttackPredicate;
using campaign::CampaignConfig;
using campaign::CampaignEntry;
using campaign::CampaignRunner;
using campaign::Corpus;

/// Override intra-execution threads for one scope, restoring the default.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t threads) {
    set_intra_execution_threads(threads);
  }
  ~ScopedThreads() { set_intra_execution_threads(0); }
};

/// A small grid of trigger states spanning every field a leaf can test.
std::vector<TriggerState> state_grid() {
  std::vector<TriggerState> states;
  for (const TracePhase phase :
       {TracePhase::kNone, TracePhase::kBroadcast, TracePhase::kAggregation,
        TracePhase::kConfirmation, TracePhase::kPinpoint})
    for (const Interval slot : {Interval{0}, Interval{1}, Interval{3}})
      for (const std::size_t keys : {std::size_t{0}, std::size_t{4}})
        for (const Reading min_seen : {kInfinity, Reading{7}}) {
          TriggerState s;
          s.phase = phase;
          s.slot = slot;
          s.deepest_level = static_cast<Level>(slot + 1);
          s.revoked_keys = keys;
          s.revoked_sensors = keys / 2;
          s.round = slot + keys;
          s.frames_seen = keys + 1;
          s.min_seen = min_seen;
          states.push_back(s);
        }
  return states;
}

/// One predicate per leaf kind, at thresholds the grid straddles.
std::vector<AttackPredicate> leaf_samples() {
  return {AttackPredicate::always(),
          AttackPredicate::never(),
          AttackPredicate::phase_is(TracePhase::kAggregation),
          AttackPredicate::slot_at_least(1),
          AttackPredicate::level_at_least(2),
          AttackPredicate::revoked_keys_at_least(2),
          AttackPredicate::revoked_sensors_at_least(1),
          AttackPredicate::round_at_least(3),
          AttackPredicate::frames_seen_at_least(2),
          AttackPredicate::min_seen_below(10)};
}

TEST(Predicate, LeavesPartitionTheGrid) {
  // Every sample leaf must both fire and not fire somewhere on the grid
  // (except the constants) — otherwise the algebra tests below are vacuous.
  const auto states = state_grid();
  for (const auto& leaf : leaf_samples()) {
    int fired = 0;
    for (const auto& s : states) fired += leaf.evaluate(s) ? 1 : 0;
    if (leaf == AttackPredicate::always()) {
      EXPECT_EQ(fired, static_cast<int>(states.size()));
    } else if (leaf == AttackPredicate::never()) {
      EXPECT_EQ(fired, 0);
    } else {
      EXPECT_GT(fired, 0) << leaf.to_text();
      EXPECT_LT(fired, static_cast<int>(states.size())) << leaf.to_text();
    }
  }
}

TEST(Predicate, DeMorganAndDoubleNegationHold) {
  // evaluate() is pure, so the boolean algebra must hold pointwise over
  // the whole grid for every pair of sample leaves.
  const auto states = state_grid();
  const auto leaves = leaf_samples();
  for (const auto& a : leaves)
    for (const auto& b : leaves) {
      const auto not_and = !(a && b);
      const auto or_nots = !a || !b;
      const auto not_or = !(a || b);
      const auto and_nots = !a && !b;
      const auto double_neg = !!a;
      for (const auto& s : states) {
        EXPECT_EQ(not_and.evaluate(s), or_nots.evaluate(s))
            << not_and.to_text() << " vs " << or_nots.to_text();
        EXPECT_EQ(not_or.evaluate(s), and_nots.evaluate(s));
        EXPECT_EQ(double_neg.evaluate(s), a.evaluate(s));
      }
    }
}

TEST(Predicate, EvaluationIsIdempotent) {
  // Repeated evaluation of the same tree over the same state never changes
  // its answer — the observable face of the purity contract the
  // predicate-purity lint rule enforces statically.
  const auto states = state_grid();
  const auto p = (AttackPredicate::phase_is(TracePhase::kAggregation) &&
                  AttackPredicate::slot_at_least(1)) ||
                 !AttackPredicate::min_seen_below(10);
  for (const auto& s : states) {
    const bool first = p.evaluate(s);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(p.evaluate(s), first);
  }
}

TEST(Predicate, TextRoundTripsThroughParse) {
  const auto leaves = leaf_samples();
  std::vector<AttackPredicate> samples = leaves;
  for (const auto& a : leaves)
    for (const auto& b : leaves) {
      samples.push_back(a && b);
      samples.push_back(a || !b);
      samples.push_back(!(a && b) || (b && a));
    }
  for (const auto& p : samples) {
    const auto parsed = AttackPredicate::parse(p.to_text());
    ASSERT_TRUE(parsed.has_value()) << p.to_text();
    EXPECT_EQ(parsed.value(), p) << p.to_text();
    EXPECT_EQ(parsed.value().to_text(), p.to_text());
  }
}

TEST(Predicate, ParseRejectsMalformedText) {
  const char* bad[] = {
      "",                      // empty
      "(",                     // unbalanced
      "(alwayss)",             // unknown head
      "(phase nope)",          // unknown phase name
      "(slot>= )",             // missing number
      "(slot>= x)",            // non-numeric
      "(and (always))",        // arity
      "(not)",                 // arity
      "(always) junk",         // trailing garbage
  };
  for (const char* text : bad) {
    const auto parsed = AttackPredicate::parse(text);
    EXPECT_FALSE(parsed.has_value()) << text;
    if (!parsed.has_value()) {
      EXPECT_EQ(parsed.error().code, ErrorCode::kInvalidArgument) << text;
    }
  }
}

TEST(Corpus, PolicyAndEntryRoundTrip) {
  AttackPolicy policy;
  policy.agg = campaign::AggAction::kInjectJunk;
  policy.conf = campaign::ConfAction::kSelfVeto;
  policy.lie = LiePolicy::kRandom;
  policy.frame_honest_origin = false;
  policy.self_veto_value = 42;
  const auto policy_text = campaign::to_text(policy);
  const auto parsed_policy = campaign::policy_from_text(policy_text);
  ASSERT_TRUE(parsed_policy.has_value()) << policy_text;
  EXPECT_EQ(parsed_policy.value(), policy);

  CampaignEntry entry;
  entry.seed = 0xdeadbeefULL;
  entry.policy = policy;
  entry.when = AttackPredicate::slot_at_least(1) &&
               !AttackPredicate::revoked_keys_at_least(3);
  entry.objective = "violation";
  entry.digest = 0x1234abcd5678ef00ULL;
  const auto line = campaign::to_line(entry);
  const auto parsed = campaign::entry_from_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed.value(), entry);

  Corpus corpus;
  corpus.entries = {entry, entry};
  corpus.entries[1].seed = 2;
  corpus.entries[1].objective = "ruin";
  const auto round = Corpus::from_text("# comment\n\n" + corpus.to_text());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round.value(), corpus);

  EXPECT_FALSE(campaign::entry_from_line("vmatc1 seed=1").has_value());
  EXPECT_FALSE(campaign::entry_from_line("vmatc9 " + line).has_value());
}

TEST(AttackSpec, ValidatesAgainstDeployment) {
  AttackSpec attack;
  EXPECT_TRUE(attack.validate(10).empty());
  attack.compromised(0);
  EXPECT_FALSE(attack.validate(10).empty());
  attack.compromised(10);
  const auto errors = attack.validate(10);
  ASSERT_FALSE(errors.empty());
  for (const Error& e : errors) EXPECT_EQ(e.code, ErrorCode::kInvalidSpec);

  SimulationSpec spec;
  spec.nodes(36).topology(TopologyKind::kGrid).seed(4);
  Network net(spec);
  EXPECT_FALSE(spec.build_adversary(net).has_value());  // no attack section
  spec.attack().compromised(2).placement_seed(13);
  auto built = spec.build_adversary(net);
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built.value()->malicious().size(), 2u);
}

TEST(AttackSpec, PredicatedStrategyMatchesZooSubclass) {
  // The declarative genome {agg: junk, frame: 0, when: first slot} must be
  // bit-identical to the hand-written JunkInjectStrategy it subsumes.
  const auto run = [](bool declarative) {
    const auto topo = Topology::grid(6, 6);
    Network net(topo, testing::dense_keys());
    std::unique_ptr<Adversary> adv;
    if (declarative) {
      AttackSpec attack;
      attack.compromised(2).placement_seed(13);
      attack.policy({.agg = campaign::AggAction::kInjectJunk,
                     .frame_honest_origin = false});
      attack.when(AttackPredicate::slot_at_least(1) &&
                  !AttackPredicate::slot_at_least(2));
      auto built = attack.build(net);
      EXPECT_TRUE(built.has_value());
      adv = std::move(built.value());
    } else {
      adv = std::make_unique<Adversary>(
          &net, choose_malicious(topo, 2, 13),
          std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll, false));
    }
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth(adv->malicious()) + 2;
    VmatCoordinator coordinator(&net, adv.get(), cfg);
    const auto out =
        coordinator.run_min(testing::default_readings(net.node_count()));
    return campaign::outcome_digest(out);
  };
  EXPECT_EQ(run(true), run(false));
}

/// The shared deployment every fuzzer test below searches: sparse rings so
/// pinpointing has something to bite on, θ on so cascades are reachable.
CampaignConfig small_config() {
  CampaignConfig config;
  config.spec.nodes(48).key_pool(800, 60).revocation_threshold(8).seed(33);
  config.compromised = 3;
  config.placement_seed = 21;
  config.probes = 16;
  config.seed = 9;
  return config;
}

TEST(Campaign, FixedBudgetIsDeterministic) {
  CampaignRunner first(small_config());
  const auto a = first.run();
  CampaignRunner second(small_config());
  const auto b = second.run();
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].entry.digest, b.probes[i].entry.digest) << i;
    EXPECT_EQ(a.probes[i].coverage, b.probes[i].coverage) << i;
  }
  EXPECT_EQ(a.coverage_buckets, b.coverage_buckets);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.table(), b.table());
  EXPECT_FALSE(a.corpus.entries.empty());
}

TEST(Campaign, ForkProbesMatchScratchProbes) {
  // The snapshot contract, end to end: forking every probe from the shared
  // post-formation prefix changes the formation count, never the outcomes.
  auto fork_config = small_config();
  auto scratch_config = small_config();
  scratch_config.fork_probes = false;
  CampaignRunner forked(fork_config);
  const auto a = forked.run();
  CampaignRunner scratch(scratch_config);
  const auto b = scratch.run();
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i)
    EXPECT_EQ(a.probes[i].entry.digest, b.probes[i].entry.digest) << i;
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.coverage_buckets, b.coverage_buckets);
  EXPECT_GE(b.formations, static_cast<std::uint64_t>(b.probes.size()));
  if (snapshots_enabled()) {
    EXPECT_EQ(a.formations, 1u);
  }
}

TEST(Campaign, CorpusReplaysIdenticallyAcrossThreadCounts) {
  // Replaying a recorded entry must reproduce its digest under any
  // intra-execution thread count — the property that makes the corpus a
  // portable regression suite rather than a machine-specific artifact.
  CampaignRunner runner(small_config());
  const auto result = runner.run();
  ASSERT_FALSE(result.corpus.entries.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedThreads scope(threads);
    for (const auto& entry : result.corpus.entries) {
      const auto outcome = runner.replay(entry);
      EXPECT_EQ(outcome.entry.digest, entry.digest)
          << "threads=" << threads << " " << campaign::to_line(entry);
    }
  }
}

TEST(Campaign, SeedCorpusStillConvergesDeterministically) {
  // Seeding the search with a prior corpus (what vmatsim --corpus does on a
  // warm start) stays deterministic and keeps every seed entry replayable.
  CampaignRunner first(small_config());
  const auto base = first.run();
  auto seeded_config = small_config();
  seeded_config.seeds = base.corpus;
  seeded_config.probes = 8;
  CampaignRunner second(seeded_config);
  const auto a = second.run();
  CampaignRunner third(seeded_config);
  const auto b = third.run();
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.table(), b.table());
}

#ifdef VMAT_SOURCE_DIR
TEST(Campaign, CommittedCorpusReplaysExactly) {
  // tests/data/campaign_corpus.vmatc was recorded by running small_config()
  // — any digest drift means the protocol's observable behavior changed.
  const auto corpus =
      Corpus::load(std::string(VMAT_SOURCE_DIR) + "/tests/data/campaign_corpus.vmatc");
  ASSERT_TRUE(corpus.has_value()) << corpus.error().to_string();
  ASSERT_FALSE(corpus.value().entries.empty());
  CampaignRunner runner(small_config());
  for (const auto& entry : corpus.value().entries) {
    const auto outcome = runner.replay(entry);
    EXPECT_NE(entry.digest, 0u);
    EXPECT_EQ(outcome.entry.digest, entry.digest) << campaign::to_line(entry);
  }
}
#endif

}  // namespace
}  // namespace vmat
