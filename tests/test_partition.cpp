// Partition behaviour (Section III): "if the malicious sensors indeed
// partition the sensor network, then VMAT will simply compute an aggregate
// for those sensors that are in the same connected component as the base
// station". These tests pin that documented behaviour down.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

TEST(Partition, SilentCutVertexLimitsScopeToBsComponent) {
  // Line 0-1-2-3-4-5: node 2 is a cut vertex. A fully silent node 2
  // partitions {3,4,5} away; their readings (including the global minimum)
  // cannot be incorporated, and no veto can cross the cut either.
  Network net(Topology::line(6), dense_keys());
  // Fully silent including tree formation: a destroyed/jammed sensor.
  class DeadSensor final : public AdversaryStrategy {};
  Adversary adv(&net, {NodeId{2}}, std::make_unique<DeadSensor>());
  CoordinatorSpec cfg;
  cfg.depth_bound = 5;
  VmatCoordinator coordinator(&net, &adv, cfg);
  auto readings = default_readings(6);
  readings[5] = 1;  // global min, but partitioned away
  const auto out = coordinator.run_min(readings);
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  // The answer is the correct minimum *of the BS component* {1}.
  EXPECT_EQ(out.minima[0], 101);
}

TEST(Partition, TreeParticipatingCutVertexIsCaughtInstead) {
  // The sneakier play: the cut vertex participates in tree formation (so
  // the far side gets levels and vetoes) but drops everything. Vetoes
  // cannot cross it either — but then the far-side sensors simply never
  // reach the base station and the component answer stands. If however the
  // far side has *any* honest path around the cut, the veto arrives and
  // the dropper is pinpointed. Both cases in one test:
  {
    // No detour: component answer.
    Network net(Topology::line(6), dense_keys());
    Adversary adv(&net, {NodeId{2}},
                  std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
    CoordinatorSpec cfg;
    cfg.depth_bound = 5;
    VmatCoordinator coordinator(&net, &adv, cfg);
    auto readings = default_readings(6);
    readings[5] = 1;
    const auto out = coordinator.run_min(readings);
    ASSERT_EQ(out.kind, OutcomeKind::kResult);
    EXPECT_EQ(out.minima[0], 101);
  }
  {
    // With a detour the same strategy is pinpointed (no silent loss).
    Topology topo(7);
    for (std::uint32_t i = 0; i + 1 < 6; ++i)
      topo.add_edge(NodeId{i}, NodeId{i + 1});
    topo.add_edge(NodeId{0}, NodeId{6});
    topo.add_edge(NodeId{6}, NodeId{4});  // detour around node 2
    Network net(topo, dense_keys());
    Adversary adv(&net, {NodeId{2}},
                  std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
    CoordinatorSpec cfg;
    cfg.depth_bound = topo.depth({NodeId{2}});
    VmatCoordinator coordinator(&net, &adv, cfg);
    auto readings = default_readings(7);
    readings[5] = 1;
    const auto out = coordinator.run_min(readings);
    // The minimum either flows around the detour (result) or its drop is
    // vetoed and pinpointed; silent incorrect answers are impossible.
    if (out.kind == OutcomeKind::kResult)
      EXPECT_EQ(out.minima[0], 1);
    else
      EXPECT_TRUE(testing::revocations_sound(net, {NodeId{2}})) << out.reason;
  }
}

TEST(Partition, PartitionedSensorsDoNotBlockTermination) {
  // Executions always terminate in O(1) data rounds even when a chunk of
  // the network is unreachable.
  Network net(Topology::line(8), dense_keys());
  class DeadSensor final : public AdversaryStrategy {};
  Adversary adv(&net, {NodeId{3}}, std::make_unique<DeadSensor>());
  CoordinatorSpec cfg;
  cfg.depth_bound = 7;
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto out = coordinator.run_min(default_readings(8));
  ASSERT_EQ(out.kind, OutcomeKind::kResult);
  EXPECT_EQ(out.data_rounds, 6);
}

}  // namespace
}  // namespace vmat
