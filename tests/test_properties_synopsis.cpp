// Theorem 7 property sweep for *synopsis* (COUNT) queries: the multi-
// instance pipeline under every attack family must either answer within
// the estimator's statistical bounds or soundly revoke, and always
// converge. Complements the plain-MIN sweep in test_properties.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/query.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;
using testing::revocations_sound;

enum class Family { kSilent, kValueDrop, kJunk, kChoke, kRandom };

const char* family_name(Family f) {
  switch (f) {
    case Family::kSilent: return "Silent";
    case Family::kValueDrop: return "ValueDrop";
    case Family::kJunk: return "Junk";
    case Family::kChoke: return "Choke";
    case Family::kRandom: return "Random";
  }
  return "?";
}

std::unique_ptr<AdversaryStrategy> make_strategy(Family f,
                                                 std::uint64_t seed) {
  switch (f) {
    case Family::kSilent:
      return std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll);
    case Family::kValueDrop:
      return std::make_unique<ValueDropStrategy>(LiePolicy::kAdmitAll);
    case Family::kJunk:
      return std::make_unique<JunkInjectStrategy>(LiePolicy::kRandom);
    case Family::kChoke:
      return std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll);
    case Family::kRandom:
      return std::make_unique<RandomByzantineStrategy>(seed);
  }
  return nullptr;
}

using Params = std::tuple<Family, std::uint64_t>;

class SynopsisSweep : public ::testing::TestWithParam<Params> {};

TEST_P(SynopsisSweep, CountQueriesConvergeAndStaySound) {
  const Family family = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());

  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, seed + 31);
  Network net(topo, dense_keys(0, seed));
  Adversary adv(&net, malicious, make_strategy(family, seed));
  CoordinatorSpec cfg;
  cfg.instances = 40;
  cfg.depth_bound = topo.depth(malicious);
  cfg.seed = seed;
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);

  std::vector<std::uint8_t> predicate(25, 0);
  std::uint32_t honest_true = 0;
  for (std::uint32_t id = 1; id < 25; ++id) {
    predicate[id] = 1;
    if (!malicious.contains(NodeId{id})) ++honest_true;
  }

  for (int e = 0; e < 500; ++e) {
    const QueryOutcome out = queries.count(predicate);
    ASSERT_TRUE(revocations_sound(net, malicious))
        << "seed " << seed << ": " << out.exec.reason;
    if (!out.answered()) {
      ASSERT_FALSE(out.exec.revoked_keys.empty() &&
                   out.exec.revoked_sensors.empty())
          << "disrupted but revoked nothing: " << out.exec.reason;
      continue;
    }
    // Answered: within the 40-instance estimator's generous tail, against
    // the population the adversary could legally shape (honest_true .. all
    // 24 sensors self-reporting true).
    EXPECT_GT(*out.estimate, honest_true * 0.35) << "seed " << seed;
    EXPECT_LT(*out.estimate, 24 * 2.2) << "seed " << seed;
    return;
  }
  FAIL() << "never answered within 500 executions";
}

INSTANTIATE_TEST_SUITE_P(
    Families, SynopsisSweep,
    ::testing::Combine(::testing::Values(Family::kSilent, Family::kValueDrop,
                                         Family::kJunk, Family::kChoke,
                                         Family::kRandom),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::string(family_name(std::get<0>(info.param))) +
             std::to_string(std::get<1>(info.param));
    });

TEST(SynopsisSweepLarge, GeometricNetworkFiveByzantines) {
  const auto topo = Topology::random_geometric(80, 0.24, 11);
  const auto malicious = choose_malicious(topo, 5, 13);
  Network net(topo, dense_keys(0, 11));
  Adversary adv(&net, malicious,
                std::make_unique<RandomByzantineStrategy>(99));
  CoordinatorSpec cfg;
  cfg.instances = 30;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);
  std::vector<std::uint8_t> predicate(net.node_count(), 1);
  predicate[0] = 0;
  const auto out = queries.count_until_answered(predicate, 500);
  ASSERT_TRUE(out.answered());
  EXPECT_TRUE(revocations_sound(net, malicious));
  EXPECT_GT(*out.estimate, (net.node_count() - 6) * 0.3);
}

}  // namespace
}  // namespace vmat
