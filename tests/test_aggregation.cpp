// Aggregation-phase tests: correct minima at the base station, audit-trail
// recording, multi-instance bundles, multipath mode, and dropping attacks.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/aggregation.h"
#include "core/tree_formation.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

struct AggFixture {
  explicit AggFixture(Topology topo, Adversary* adv = nullptr,
                      std::uint32_t instances = 1)
      : net(std::move(topo), dense_keys()), audits(net.node_count()) {
    TreePhaseParams tp;
    tp.depth_bound = net.physical_depth();
    tp.session = 77;
    tree = run_tree_formation(net, adv, tp);
    config.instances = instances;
    config.nonce = 0xbeef;
  }

  AggregationOutcome run(Adversary* adv,
                         const std::vector<Reading>& readings) {
    ValueTable values(net.node_count(), config.instances, 0);
    const ValueTable weights(net.node_count(), config.instances, 0);
    for (std::uint32_t id = 0; id < net.node_count(); ++id)
      for (std::uint32_t i = 0; i < config.instances; ++i)
        values.row(id)[i] = readings[id];
    return run_aggregation(net, adv, tree, config, values, weights, audits);
  }

  Reading best_valid(const AggregationOutcome& out, std::uint32_t instance) {
    Reading best = kInfinity;
    for (const auto& a : out.arrivals) {
      if (a.msg.instance != instance) continue;
      if (!verify_agg_message(net.keys().sensor_key(a.msg.origin), a.msg,
                              config.nonce))
        continue;
      best = std::min(best, a.msg.value);
    }
    return best;
  }

  Network net;
  TreeResult tree;
  AggConfig config;
  AuditLog audits;
};

TEST(Aggregation, HonestRunDeliversTrueMin) {
  AggFixture fx(Topology::grid(5, 5));
  const auto readings = default_readings(fx.net.node_count());
  const auto out = fx.run(nullptr, readings);
  EXPECT_EQ(fx.best_valid(out, 0), 101);  // node 1 has the smallest reading
}

TEST(Aggregation, MinimumCarriesOriginatorsMac) {
  AggFixture fx(Topology::line(6));
  auto readings = default_readings(fx.net.node_count());
  readings[4] = 3;  // deep node holds the min
  const auto out = fx.run(nullptr, readings);
  bool found = false;
  for (const auto& a : out.arrivals) {
    if (a.msg.value == 3) {
      found = true;
      EXPECT_EQ(a.msg.origin, NodeId{4});
      EXPECT_TRUE(verify_agg_message(fx.net.keys().sensor_key(NodeId{4}),
                                     a.msg, fx.config.nonce));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Aggregation, EveryForwarderRecordedAuditTuples) {
  AggFixture fx(Topology::line(6));
  auto readings = default_readings(fx.net.node_count());
  readings[5] = 1;  // deepest node: its value traverses the whole line
  (void)fx.run(nullptr, readings);
  // Every intermediate node forwarded value 1 with in/out edges recorded.
  for (std::uint32_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(fx.audits.level(NodeId{id}), static_cast<Level>(id));
    const auto forwarded = fx.audits.forwarded_of(NodeId{id});
    const bool forwarded_min =
        std::any_of(forwarded.begin(), forwarded.end(),
                    [](const ForwardRecord& f) { return f.msg.value == 1; });
    EXPECT_TRUE(forwarded_min) << "node " << id;
    for (const auto& f : forwarded)
      EXPECT_TRUE(fx.net.keys().ring(NodeId{id}).contains(f.out_edge));
  }
  // Receivers recorded the child level the value arrived from.
  for (std::uint32_t id = 1; id <= 4; ++id) {
    const auto received = fx.audits.received_of(NodeId{id});
    const bool got_min = std::any_of(
        received.begin(), received.end(), [&](const ReceivedRecord& r) {
          return r.msg.value == 1 &&
                 r.child_level == static_cast<Level>(id) + 1;
        });
    EXPECT_TRUE(got_min) << "node " << id;
  }
}

TEST(Aggregation, MultiInstanceMinimaIndependent) {
  AggFixture fx(Topology::grid(4, 4), nullptr, /*instances=*/3);
  ValueTable values(fx.net.node_count(), 3, 0);
  const ValueTable weights(fx.net.node_count(), 3, 0);
  for (std::uint32_t id = 0; id < fx.net.node_count(); ++id) {
    values.row(id)[0] = static_cast<Reading>(1000 + id);
    values.row(id)[1] = static_cast<Reading>(2000 - id);
    values.row(id)[2] = static_cast<Reading>(5 * id + 7);
  }
  const auto out = run_aggregation(fx.net, nullptr, fx.tree, fx.config,
                                   values, weights, fx.audits);
  Reading best[3] = {kInfinity, kInfinity, kInfinity};
  for (const auto& a : out.arrivals)
    best[a.msg.instance] = std::min(best[a.msg.instance], a.msg.value);
  EXPECT_EQ(best[0], 1001);                      // id 1
  EXPECT_EQ(best[1], 2000 - 15);                 // largest id
  EXPECT_EQ(best[2], 12);                        // id 1
}

TEST(Aggregation, InfinityValueContributesNothing) {
  AggFixture fx(Topology::line(4));
  ValueTable values(fx.net.node_count(), 1, kInfinity);
  const ValueTable weights(fx.net.node_count(), 1, 0);
  values.data[2] = 55;
  const auto out = run_aggregation(fx.net, nullptr, fx.tree, fx.config,
                                   values, weights, fx.audits);
  ASSERT_FALSE(out.arrivals.empty());
  for (const auto& a : out.arrivals) EXPECT_EQ(a.msg.origin, NodeId{2});
}

TEST(Aggregation, SilentDropLosesDeepValuesOnALine) {
  // Line 0-1-2-3-4-5 with malicious 2: everything behind it is cut off.
  Network net(Topology::line(6), dense_keys());
  Adversary adv(&net, {NodeId{2}}, std::make_unique<SilentDropStrategy>());
  AggFixture fx(Topology::line(6), nullptr);  // honest tree for levels
  // Re-run with the adversary present end to end.
  AggFixture fx2(Topology::line(6), &adv);
  auto readings = default_readings(6);
  readings[5] = 1;
  const auto out = fx2.run(&adv, readings);
  EXPECT_EQ(fx2.best_valid(out, 0), 101);  // node 1's reading; 1 was dropped
}

TEST(Aggregation, ValueDropForwardsMaxInstead) {
  Network net(Topology::line(6), dense_keys());
  auto strategy = std::make_unique<ValueDropStrategy>();
  Adversary adv(&net, {NodeId{3}}, std::move(strategy));
  AggFixture fx(Topology::line(6), &adv);
  auto readings = default_readings(6);
  readings[5] = 1;  // behind the malicious node
  const auto out = fx.run(&adv, readings);
  const Reading best = fx.best_valid(out, 0);
  EXPECT_NE(best, 1);      // the true min was dropped
  EXPECT_NE(best, kInfinity);  // but something still flowed
}

TEST(Aggregation, MultipathSurvivesSingleSilentParent) {
  // Grid, multipath on: a single silent malicious node cannot cut off the
  // min because siblings carry it around.
  const auto topo = Topology::grid(5, 5);
  Network net(topo, dense_keys());
  Adversary adv(&net, {NodeId{6}}, std::make_unique<SilentDropStrategy>());
  TreePhaseParams tp;
  tp.depth_bound = net.physical_depth();
  tp.session = 3;
  const auto tree = run_tree_formation(net, &adv, tp);

  AggConfig config;
  config.instances = 1;
  config.nonce = 0x77;
  config.multipath = true;

  ValueTable values(net.node_count(), 1, 0);
  const ValueTable weights(net.node_count(), 1, 0);
  auto readings = default_readings(net.node_count());
  readings[24] = 1;  // far corner
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    values.data[id] = readings[id];
  AuditLog audits(net.node_count());
  const auto out = run_aggregation(net, &adv, tree, config, values, weights,
                                   audits);
  Reading best = kInfinity;
  for (const auto& a : out.arrivals) best = std::min(best, a.msg.value);
  EXPECT_EQ(best, 1);
}

TEST(Aggregation, SizeMismatchThrows) {
  AggFixture fx(Topology::line(3));
  const ValueTable bad(2, 1, 0);  // wrong node count
  const ValueTable weights(3, 1, 0);
  EXPECT_THROW((void)run_aggregation(fx.net, nullptr, fx.tree, fx.config, bad,
                                     weights, fx.audits),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmat
