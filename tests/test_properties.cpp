// Theorem 7 property sweep: for every strategy family x topology x seed,
// each execution either returns the correct minimum or revokes key material
// held by the adversary; honest sensors are never revoked; and repeated
// executions always converge to a result (strictly diminishing adversary).
//
// Every sweep runs with the flight recorder attached and validates the
// recorded stream with the trace-invariant checker, so the Lemma 1 /
// Theorem 7 trace properties are exercised across the whole strategy zoo.
// Set VMAT_TRACE_DIR to export each recording as JSON (CI feeds these to
// tools/check_trace.py).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>

#include "core/coordinator.h"
#include "helpers.h"
#include "trace/checker.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;
using testing::true_min;

enum class Family {
  kSilent,
  kValueDrop,
  kJunk,
  kChoke,
  kSelfVeto,
  kRandomByzantine,
};

std::string family_name(Family f) {
  switch (f) {
    case Family::kSilent: return "Silent";
    case Family::kValueDrop: return "ValueDrop";
    case Family::kJunk: return "Junk";
    case Family::kChoke: return "Choke";
    case Family::kSelfVeto: return "SelfVeto";
    case Family::kRandomByzantine: return "RandomByzantine";
  }
  return "?";
}

std::unique_ptr<AdversaryStrategy> make_strategy(Family f, LiePolicy policy,
                                                 std::uint64_t seed) {
  switch (f) {
    case Family::kSilent:
      return std::make_unique<SilentDropStrategy>(policy);
    case Family::kValueDrop:
      return std::make_unique<ValueDropStrategy>(policy);
    case Family::kJunk:
      return std::make_unique<JunkInjectStrategy>(policy);
    case Family::kChoke:
      return std::make_unique<ChokeVetoStrategy>(policy);
    case Family::kSelfVeto:
      return std::make_unique<SelfVetoStrategy>(1, policy);
    case Family::kRandomByzantine:
      return std::make_unique<RandomByzantineStrategy>(seed);
  }
  return nullptr;
}

/// Validate a sweep's recording against the trace invariants and, when
/// VMAT_TRACE_DIR is set, export it as <dir>/<current test name>.json.
void check_and_export(const FlightRecorder& recorder) {
  const auto check = check_trace(recorder);
  EXPECT_TRUE(check.ok()) << check.to_string();
  const char* dir = std::getenv("VMAT_TRACE_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "." + info->name();
  for (char& c : name)
    if (c == '/') c = '_';
  EXPECT_TRUE(recorder.write_json(std::string(dir) + "/" + name + ".json"));
}

enum class Shape { kGrid, kGeometric };

Topology make_topology(Shape shape, std::uint64_t seed) {
  switch (shape) {
    case Shape::kGrid:
      return Topology::grid(5, 5);
    case Shape::kGeometric:
      return Topology::random_geometric(40, 0.3, seed);
  }
  return Topology::line(2);
}

using Params = std::tuple<Family, LiePolicy, Shape, std::uint64_t>;

class Theorem7Sweep : public ::testing::TestWithParam<Params> {};

TEST_P(Theorem7Sweep, EveryExecutionResultsOrSoundlyRevokes) {
  const auto [family, policy, shape, seed] = GetParam();
  const Topology topo = make_topology(shape, seed);
  const auto malicious = choose_malicious(topo, 3, seed * 13 + 1);
  Network net(topo, dense_keys(/*theta=*/0, seed));
  Adversary adv(&net, malicious, make_strategy(family, policy, seed));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  cfg.seed = seed;
  VmatCoordinator coordinator(&net, &adv, cfg);
  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);

  const auto readings = default_readings(net.node_count());
  std::vector<std::vector<Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }

  int executions = 0;
  for (; executions < 400; ++executions) {
    const auto out = coordinator.execute(values, weights);
    // Soundness after every single execution.
    ASSERT_TRUE(revocations_sound(net, malicious))
        << family_name(family) << " execution " << executions << ": "
        << out.reason;
    if (out.kind == OutcomeKind::kResult) {
      // Theorem 2: a returned result never exceeds the honest minimum
      // (malicious sensors may legally self-report or hide their own
      // readings, so it can be smaller).
      EXPECT_LE(out.minima[0], true_min(net, readings, malicious));
      // And it cannot be a fabrication below anything any sensor could
      // have signed (RandomByzantine's own_reading shifts by >= -5).
      EXPECT_GE(out.minima[0], 101 - 5);
      break;
    }
    // Theorem 7: a non-result execution revoked something.
    ASSERT_FALSE(out.revoked_keys.empty() && out.revoked_sensors.empty())
        << family_name(family) << ": execution neither resulted nor revoked ("
        << out.reason << ")";
  }
  EXPECT_LT(executions, 400) << "adversary was never exhausted";
  check_and_export(recorder);
}

INSTANTIATE_TEST_SUITE_P(
    Families, Theorem7Sweep,
    ::testing::Combine(
        ::testing::Values(Family::kSilent, Family::kValueDrop, Family::kJunk,
                          Family::kChoke, Family::kSelfVeto,
                          Family::kRandomByzantine),
        ::testing::Values(LiePolicy::kDenyAll, LiePolicy::kAdmitAll,
                          LiePolicy::kRandom),
        ::testing::Values(Shape::kGrid, Shape::kGeometric),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3})),
    [](const ::testing::TestParamInfo<Params>& info) {
      const Family family = std::get<0>(info.param);
      const LiePolicy policy = std::get<1>(info.param);
      const Shape shape = std::get<2>(info.param);
      std::string name = family_name(family);
      name += policy == LiePolicy::kDenyAll    ? "Deny"
              : policy == LiePolicy::kAdmitAll ? "Admit"
                                               : "Rand";
      name += shape == Shape::kGrid ? "Grid" : "Geo";
      name += std::to_string(std::get<3>(info.param));
      return name;
    });

// The multipath variant of the sweep (Section IV-D): same guarantees.
class Theorem7Multipath : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem7Multipath, MultipathKeepsGuarantees) {
  const std::uint64_t seed = GetParam();
  const Topology topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 3, seed);
  Network net(topo, dense_keys(0, seed));
  Adversary adv(&net, malicious,
                std::make_unique<ValueDropStrategy>(LiePolicy::kRandom));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  cfg.multipath = true;
  cfg.seed = seed;
  VmatCoordinator coordinator(&net, &adv, cfg);
  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);
  const auto readings = default_readings(net.node_count());
  std::vector<std::vector<Reading>> values(net.node_count());
  std::vector<std::vector<std::int64_t>> weights(net.node_count());
  for (std::uint32_t id = 0; id < net.node_count(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 400);
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_LE(history.back().minima[0], true_min(net, readings, malicious));
  EXPECT_TRUE(revocations_sound(net, malicious));
  check_and_export(recorder);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem7Multipath,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Unslotted-SOF ablation still satisfies the disjunction (just with longer
// trails; the length difference is measured in the ablation bench).
class UnslottedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnslottedSweep, UnslottedSofStillSoundlyRevokes) {
  const std::uint64_t seed = GetParam();
  const Topology topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, seed);
  Network net(topo, dense_keys(0, seed));
  Adversary adv(&net, malicious,
                std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  cfg.slotted_sof = false;
  cfg.seed = seed;
  VmatCoordinator coordinator(&net, &adv, cfg);
  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);
  const auto readings = default_readings(net.node_count());
  const auto out = coordinator.run_min(readings);
  if (out.kind == OutcomeKind::kRevocation)
    EXPECT_TRUE(revocations_sound(net, malicious)) << out.reason;
  else
    EXPECT_LE(out.minima[0], true_min(net, readings, malicious));
  check_and_export(recorder);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnslottedSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace vmat
