// Crypto substrate tests: SHA-256 against FIPS vectors, HMAC against
// RFC 4231 vectors, truncated MACs, the synopsis PRF, and hash chains.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/mac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "keys/key_pool.h"
#include "util/bytes.h"
#include "util/random.h"

namespace vmat {
namespace {

Bytes ascii(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

std::string digest_hex(const Digest& d) { return to_hex(d); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(Sha256::hash(ascii(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  const Bytes msg = ascii("the quick brown fox jumps over the lazy dog etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::span(msg.data(), split));
    h.update(std::span(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(ascii("Jefe"),
                               ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, ascii("Test Using Larger Than Block-Size Key - Hash "
                           "Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeyStateMatchesOneShot) {
  // The cached ipad/opad midstates must reproduce hmac_sha256 exactly for
  // every key-size regime (short, exactly one block, hashed-down long) and
  // message lengths straddling block boundaries.
  Rng rng(0x5eed);
  for (const std::size_t key_len : {0u, 16u, 63u, 64u, 65u, 131u}) {
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.below(256));
    const HmacKeyState state(key);
    for (const std::size_t msg_len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 1000u}) {
      Bytes msg(msg_len);
      for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
      EXPECT_EQ(state.mac(msg), hmac_sha256(key, msg))
          << "key_len=" << key_len << " msg_len=" << msg_len;
    }
  }
}

TEST(Hmac, KeyStateIsReusable) {
  const Bytes key(20, 0x0b);
  const HmacKeyState state(key);
  const Bytes msg = ascii("Hi There");
  // Same state, repeated use: RFC 4231 case 1 every time.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(to_hex(state.mac(msg)),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Mac, ContextMatchesOneShotForRandomKeys) {
  Rng rng(0xc0ffee);
  for (int i = 0; i < 50; ++i) {
    SymmetricKey key;
    for (auto& b : key.bytes) b = static_cast<std::uint8_t>(rng.below(256));
    Bytes msg(rng.below(200));
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.below(256));
    const MacContext ctx(key);
    EXPECT_EQ(ctx.compute(msg), compute_mac(key, msg)) << "i=" << i;
  }
}

TEST(Mac, ContextVerifyAcceptsAndRejects) {
  SymmetricKey key;
  key.bytes.fill(7);
  const Bytes msg = ascii("payload");
  const MacContext ctx(key);
  const Mac tag = ctx.compute(msg);
  EXPECT_TRUE(ctx.verify(msg, tag));
  EXPECT_TRUE(verify_mac(key, msg, tag));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(ctx.verify(tampered, tag));
  Mac wrong = tag;
  wrong.bytes[0] ^= 1;
  EXPECT_FALSE(ctx.verify(msg, wrong));
}

TEST(Mac, KeyPoolContextConsistent) {
  const KeyPool pool(32, 99);
  for (std::uint32_t i = 0; i < pool.size(); ++i) {
    const KeyIndex index{i};
    const Bytes msg = ascii("pool message");
    // Cached context == fresh context from the derived key, and the cache
    // hands back the same object on reuse.
    EXPECT_EQ(pool.mac_context(index).compute(msg),
              MacContext(pool.key(index)).compute(msg));
    EXPECT_EQ(&pool.mac_context(index), &pool.mac_context(index));
  }
}

TEST(Mac, TruncatesHmacPrefix) {
  SymmetricKey key;
  key.bytes.fill(0x42);
  const Bytes msg = ascii("message");
  const Mac tag = compute_mac(key, msg);
  const Digest full = hmac_sha256(key.span(), msg);
  for (std::size_t i = 0; i < tag.bytes.size(); ++i)
    EXPECT_EQ(tag.bytes[i], full[i]);
}

TEST(Mac, VerifyAcceptsAndRejects) {
  SymmetricKey key;
  key.bytes.fill(1);
  SymmetricKey other;
  other.bytes.fill(2);
  const Bytes msg = ascii("payload");
  const Mac tag = compute_mac(key, msg);
  EXPECT_TRUE(verify_mac(key, msg, tag));
  EXPECT_FALSE(verify_mac(other, msg, tag));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify_mac(key, tampered, tag));
}

TEST(Mac, DeriveKeyIsDeterministicAndLabelSeparated) {
  EXPECT_EQ(derive_key("a", 1, 2), derive_key("a", 1, 2));
  EXPECT_NE(derive_key("a", 1, 2), derive_key("b", 1, 2));
  EXPECT_NE(derive_key("a", 1, 2), derive_key("a", 2, 2));
  EXPECT_NE(derive_key("a", 1, 2), derive_key("a", 1, 3));
}

TEST(Prf, Deterministic) {
  const SymmetricKey key = derive_key("test", 1, 1);
  EXPECT_EQ(prf_u64(key, 5, 6, 7, 8), prf_u64(key, 5, 6, 7, 8));
  EXPECT_NE(prf_u64(key, 5, 6, 7, 8), prf_u64(key, 5, 6, 7, 9));
  EXPECT_NE(prf_u64(key, 5, 6, 7, 8), prf_u64(key, 5, 6, 8, 8));
}

TEST(Prf, UnitOpenInRange) {
  const SymmetricKey key = derive_key("test", 2, 1);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const double u = prf_unit_open(key, 1, 2, i, 3);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prf, ExponentialMeanMatchesInverseWeight) {
  const SymmetricKey key = derive_key("test", 3, 1);
  constexpr std::uint64_t kWeight = 4;
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i)
    sum += prf_exponential(key, 9, 1, static_cast<std::uint32_t>(i), kWeight);
  EXPECT_NEAR(sum / kDraws, 1.0 / kWeight, 0.01);
}

TEST(Prf, MinOfExponentialsScalesWithTotalWeight) {
  // min over sensors of Exp(rate v_x) ~ Exp(rate sum v_x): the synopsis
  // foundation. Check the empirical mean of the minimum.
  const SymmetricKey key = derive_key("test", 4, 1);
  constexpr int kSensors = 50;
  constexpr int kInstances = 4000;
  double sum_min = 0.0;
  for (int i = 0; i < kInstances; ++i) {
    double m = 1e300;
    for (std::uint32_t x = 0; x < kSensors; ++x)
      m = std::min(m, prf_exponential(key, 7, x, static_cast<std::uint32_t>(i), 2));
    sum_min += m;
  }
  // Total weight 100 -> mean of min = 1/100.
  EXPECT_NEAR(sum_min / kInstances, 0.01, 0.001);
}

TEST(HashChain, ForwardVerification) {
  const HashChain chain(99, 16);
  // Every element verifies against the anchor.
  for (std::size_t i = 1; i < chain.length(); ++i)
    EXPECT_TRUE(HashChain::verify(chain.element(i), i, chain.anchor(), 0));
  // And against any earlier verified element.
  EXPECT_TRUE(HashChain::verify(chain.element(10), 10, chain.element(4), 4));
}

TEST(HashChain, RejectsWrongElementAndOrder) {
  const HashChain chain(99, 16);
  Digest forged = chain.element(5);
  forged[0] ^= 1;
  EXPECT_FALSE(HashChain::verify(forged, 5, chain.anchor(), 0));
  // Same or earlier position never verifies.
  EXPECT_FALSE(HashChain::verify(chain.element(3), 3, chain.element(5), 5));
  EXPECT_FALSE(HashChain::verify(chain.element(5), 5, chain.element(5), 5));
}

TEST(HashChain, DifferentSeedsDiffer) {
  const HashChain a(1, 8);
  const HashChain b(2, 8);
  EXPECT_NE(a.anchor(), b.anchor());
}

TEST(HashChain, AdjacentElementsHashForward) {
  const HashChain chain(7, 8);
  for (std::size_t i = 1; i < chain.length(); ++i)
    EXPECT_EQ(Sha256::hash(chain.element(i)), chain.element(i - 1));
}

TEST(HashOfMac, MatchesManualHash) {
  SymmetricKey key;
  key.bytes.fill(9);
  const Mac tag = compute_mac(key, ascii("x"));
  EXPECT_EQ(hash_of_mac(tag), Sha256::hash(tag.bytes));
}

}  // namespace
}  // namespace vmat
