// Replay and direct-injection edge cases: nonce freshness makes vetoes
// from past executions spurious, and junk injected straight at the base
// station (skipping the whole aggregation chain) is pinned to the
// injector's own key.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;

/// Records every veto its nodes overhear and replays the first one in all
/// later confirmation phases (a classic replay attack — the MAC is valid,
/// but for a stale nonce).
class ReplayOldVeto final : public PolicyStrategy {
 public:
  ReplayOldVeto() : PolicyStrategy(LiePolicy::kDenyAll) {}

  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override {
    // Capture: remember anything overheard in earlier executions.
    for (NodeId m : view.malicious()) {
      const auto& seen = (*ctx.malicious_vetoes)[m.value];
      if (!captured_.has_value() && !seen.empty()) captured_ = seen.front();
    }
    if (ctx.slot != 1 || !captured_.has_value()) return;
    if (captured_nonce_ == 0) {
      captured_nonce_ = ctx.nonce;  // same execution: not a replay yet
      return;
    }
    if (ctx.nonce == captured_nonce_) return;
    const Bytes frame = encode(*captured_);
    for (NodeId m : view.malicious()) {
      for (NodeId v : view.net().topology().neighbors(m)) {
        if (view.is_malicious(v)) continue;
        const auto key = view.attack_key_for(v);
        if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
      }
    }
  }

 private:
  std::optional<VetoMsg> captured_;
  std::uint64_t captured_nonce_{0};
};

TEST(Replay, StaleVetoFromPastExecutionIsSpuriousAndPinned) {
  // Path A 0-1-2-3-4 (2 malicious) + detour 0-5-6-7-8-4 so the honest
  // subgraph stays connected. Execution 1: node 2 drops node 4's minimum,
  // overhears the resulting veto. Later executions: it replays that veto.
  Topology topo(9);
  topo.add_edge(NodeId{0}, NodeId{1});
  topo.add_edge(NodeId{1}, NodeId{2});
  topo.add_edge(NodeId{2}, NodeId{3});
  topo.add_edge(NodeId{3}, NodeId{4});
  topo.add_edge(NodeId{0}, NodeId{5});
  topo.add_edge(NodeId{5}, NodeId{6});
  topo.add_edge(NodeId{6}, NodeId{7});
  topo.add_edge(NodeId{7}, NodeId{8});
  topo.add_edge(NodeId{8}, NodeId{4});

  Network net(topo, dense_keys());
  const std::unordered_set<NodeId> malicious{NodeId{2}};
  Adversary adv(&net, malicious, std::make_unique<ReplayOldVeto>());
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);

  auto readings = default_readings(9);
  readings[4] = 1;

  bool saw_replay_pinned = false;
  for (int e = 0; e < 20 && !saw_replay_pinned; ++e) {
    const auto out = coordinator.run_min(readings);
    ASSERT_TRUE(revocations_sound(net, malicious)) << out.reason;
    // A replayed stale veto fails the fresh-nonce MAC check and lands in
    // the junk-confirmation walk.
    saw_replay_pinned = out.trigger == Trigger::kJunkConfirmation;
  }
  EXPECT_TRUE(saw_replay_pinned)
      << "replayed veto was never classified as spurious";
}

/// Injects junk straight at the base station in an early slot, claiming an
/// absurdly deep level — the walk must start at the claimed level and
/// revoke the injection key without bothering anyone honest.
class DirectJunkAtBs final : public PolicyStrategy {
 public:
  DirectJunkAtBs() : PolicyStrategy(LiePolicy::kDenyAll) {}

  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override {
    if (ctx.slot != 1) return;  // earliest slot => claimed level = L
    for (NodeId m : view.malicious()) {
      if (!view.net().topology().has_edge(m, kBaseStation)) continue;
      AggMessage junk;
      junk.origin = m;
      junk.value = -999;
      const Bytes frame = encode(AggBundle{{junk}});
      const auto key = view.attack_key_for(kBaseStation);
      if (key.has_value())
        (void)view.inject(m, kBaseStation, m, *key, frame);
    }
  }
};

TEST(Replay, DirectEarlyJunkAtBaseStationPinsInjectorKey) {
  const auto topo = Topology::grid(4, 4);
  // Malicious node adjacent to the base station (corner 0): node 1.
  const std::unordered_set<NodeId> malicious{NodeId{1}};
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious, std::make_unique<DirectJunkAtBs>());
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto out = coordinator.run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kJunkAggregation);
  ASSERT_EQ(out.revoked_keys.size(), 1u);
  // The blamed key is held by the injector.
  EXPECT_TRUE(net.keys().node_holds(NodeId{1}, out.revoked_keys[0]));
  EXPECT_TRUE(revocations_sound(net, malicious));
}

}  // namespace
}  // namespace vmat
