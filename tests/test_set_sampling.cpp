// Set-sampling protocol tests (the [29] comparator): membership is
// deterministic with the right density, estimates are accurate, Byzantine
// members cannot ruin the estimate beyond their own self-reports, and
// non-members cannot influence it at all.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/set_sampling.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

struct Fx {
  explicit Fx(std::uint32_t side = 8, Adversary* adv = nullptr)
      : net(Topology::grid(side, side), dense_keys()),
        protocol(&net, adv, {.tests_per_level = 48, .key_seed = 3}) {}

  Network net;
  SetSamplingProtocol protocol;
};

TEST(SetSampling, MembershipDeterministicWithRightDensity) {
  Fx fx;
  int level0 = 0, level3 = 0;
  constexpr std::uint32_t kTests = 60;
  for (std::uint32_t t = 0; t < kTests; ++t) {
    for (std::uint32_t id = 1; id < fx.net.node_count(); ++id) {
      EXPECT_EQ(fx.protocol.is_member(NodeId{id}, t, 0),
                fx.protocol.is_member(NodeId{id}, t, 0));
      level0 += fx.protocol.is_member(NodeId{id}, t, 0) ? 1 : 0;
      level3 += fx.protocol.is_member(NodeId{id}, t, 3) ? 1 : 0;
    }
  }
  const double n_samples = kTests * (fx.net.node_count() - 1);
  EXPECT_NEAR(level0 / n_samples, 0.5, 0.03);    // 2^-1
  EXPECT_NEAR(level3 / n_samples, 0.0625, 0.01);  // 2^-4
}

TEST(SetSampling, HonestCountWithinFactor) {
  Fx fx;
  std::vector<std::uint8_t> predicate(64, 0);
  for (std::uint32_t id = 1; id <= 20; ++id) predicate[id] = 1;
  const auto run = fx.protocol.count(predicate);
  EXPECT_NEAR(run.estimate, 20.0, 20.0 * 0.6);
  EXPECT_EQ(run.levels, 6u);  // log2(64)
  EXPECT_EQ(run.flooding_rounds, 12);
}

TEST(SetSampling, ZeroCountExact) {
  Fx fx;
  const std::vector<std::uint8_t> predicate(64, 0);
  EXPECT_EQ(fx.protocol.count(predicate).estimate, 0.0);
}

TEST(SetSampling, SilentByzantineMembersCannotSuppress) {
  // Byzantine sensors refuse to answer and refuse to relay — but honest
  // replies flood around them, so the estimate barely moves (they only
  // remove their own contributions).
  const auto topo = Topology::grid(8, 8);
  const auto malicious = choose_malicious(topo, 4, 5);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  SetSamplingProtocol protocol(&net, &adv, {.tests_per_level = 48,
                                            .key_seed = 3});
  std::vector<std::uint8_t> predicate(64, 1);
  predicate[0] = 0;
  std::uint32_t honest_true = 0;
  for (std::uint32_t id = 1; id < 64; ++id)
    if (!malicious.contains(NodeId{id})) ++honest_true;
  const auto run = protocol.count(predicate);
  EXPECT_NEAR(run.estimate, static_cast<double>(honest_true),
              honest_true * 0.6);
}

TEST(SetSampling, AdmitAllByzantineOnlyAddsSelfReports) {
  // Byzantine members always answering "yes" is equivalent to them all
  // claiming their reading satisfies the predicate — the estimate moves by
  // at most ~f, never collapses.
  const auto topo = Topology::grid(8, 8);
  const auto malicious = choose_malicious(topo, 4, 6);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  SetSamplingProtocol protocol(&net, &adv, {.tests_per_level = 48,
                                            .key_seed = 3});
  std::vector<std::uint8_t> predicate(64, 0);
  for (std::uint32_t id = 1; id <= 30; ++id) predicate[id] = 1;
  const auto run = protocol.count(predicate);
  // Upper bound: true positives among honest + all f fakers.
  EXPECT_LT(run.estimate, (30.0 + 4.0) * 1.8);
  EXPECT_GT(run.estimate, 30.0 * 0.4);
}

TEST(SetSampling, NeverNeedsPinpointing) {
  // The tolerance property: whatever the adversary does, the query always
  // completes in the same Ω(log n) rounds; there is no disruption path.
  const auto topo = Topology::grid(8, 8);
  const auto malicious = choose_malicious(topo, 6, 7);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<ChokeVetoStrategy>(LiePolicy::kRandom));
  SetSamplingProtocol protocol(&net, &adv, {});
  std::vector<std::uint8_t> predicate(64, 1);
  predicate[0] = 0;
  const auto run = protocol.count(predicate);
  EXPECT_EQ(run.flooding_rounds, 12);
  EXPECT_GT(run.estimate, 0.0);
  EXPECT_EQ(net.revocation().revoked_key_count(), 0u);
}

TEST(SetSampling, ValidatesInputs) {
  Fx fx;
  EXPECT_THROW((void)fx.protocol.count(std::vector<std::uint8_t>(3, 1)),
               std::invalid_argument);
  Network net(Topology::line(4), dense_keys());
  EXPECT_THROW(SetSamplingProtocol(nullptr, nullptr, {}),
               std::invalid_argument);
  EXPECT_THROW(SetSamplingProtocol(&net, nullptr, {.tests_per_level = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmat
