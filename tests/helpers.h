// Shared fixtures/helpers for the protocol-level tests.
#pragma once

#include <memory>
#include <unordered_set>

#include "attack/adversary.h"
#include "attack/strategies.h"
#include "core/coordinator.h"
#include "sim/network.h"

namespace vmat::testing {

/// Dense key setup: every physical edge has a shared key with overwhelming
/// probability (r^2/u = 36), so the secure topology equals the physical
/// one and tests can reason about connectivity directly.
inline NetworkSpec dense_keys(std::uint32_t theta = 0,
                                std::uint64_t seed = 2024) {
  NetworkSpec cfg;
  cfg.keys.pool_size = 400;
  cfg.keys.ring_size = 120;
  cfg.keys.seed = seed;
  cfg.revocation_threshold = theta;
  return cfg;
}

/// Readings 100 + id, so the honest minimum is held by the smallest
/// participating sensor id and every reading is unique.
inline std::vector<Reading> default_readings(std::uint32_t n) {
  std::vector<Reading> readings(n);
  for (std::uint32_t i = 0; i < n; ++i)
    readings[i] = 100 + static_cast<Reading>(i);
  return readings;
}

/// The correctness bound of Section III: the smallest reading among
/// *honest* non-revoked sensors. Malicious sensors may legitimately
/// under-report or hide their own readings, so a returned result must be
/// <= this value, with equality whenever the adversary does not
/// self-report anything smaller.
inline Reading true_min(const Network& net,
                        const std::vector<Reading>& readings,
                        const std::unordered_set<NodeId>& malicious = {}) {
  Reading best = kInfinity;
  for (std::uint32_t id = 1; id < net.node_count(); ++id) {
    if (malicious.contains(NodeId{id})) continue;
    if (!net.revocation().is_sensor_revoked(NodeId{id}))
      best = std::min(best, readings[id]);
  }
  return best;
}

/// True iff every revoked key is held by at least one malicious sensor and
/// every fully revoked sensor is malicious — the Lemma 4/5 soundness
/// condition (ignoring θ-cascades, which tests disable with θ = 0).
inline bool revocations_sound(const Network& net,
                              const std::unordered_set<NodeId>& malicious) {
  for (const auto& event : net.revocation().events()) {
    bool held = false;
    for (NodeId m : malicious)
      held = held || net.keys().node_holds(m, event.key);
    if (!held) return false;
  }
  for (NodeId s : net.revocation().revoked_sensors_in_order())
    if (!malicious.contains(s)) return false;
  return true;
}

}  // namespace vmat::testing
