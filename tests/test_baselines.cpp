// Baseline comparator tests: TAG silently corrupts, alarm-only stalls
// forever under a persistent attacker while VMAT recovers, set-sampling is
// correct but pays Ω(log n) rounds, send-all pays linear bytes.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/alarm_only.h"
#include "baseline/sampling.h"
#include "baseline/send_all.h"
#include "baseline/tag.h"
#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

TEST(Tag, HonestRunIsCorrect) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto readings = default_readings(25);
  const auto r = run_tag_min(net, readings, {}, TagAttack::kNone, 8);
  ASSERT_TRUE(r.minimum.has_value());
  EXPECT_EQ(*r.minimum, 101);
}

TEST(Tag, SingleAttackerCorruptsSilently) {
  Network net(Topology::grid(5, 5), dense_keys());
  auto readings = default_readings(25);
  readings[24] = 1;
  // Any node on the unique BFS route of the minimum can deflate/inflate.
  const auto depth = net.topology().bfs_depth();
  (void)depth;
  const auto inflated =
      run_tag_min(net, readings, {NodeId{24}}, TagAttack::kInflate, 8);
  ASSERT_TRUE(inflated.minimum.has_value());
  EXPECT_NE(*inflated.minimum, 1);  // the true min vanished, no alarm

  const auto deflated =
      run_tag_min(net, readings, {NodeId{12}}, TagAttack::kDeflate, 8);
  ASSERT_TRUE(deflated.minimum.has_value());
  EXPECT_EQ(*deflated.minimum, -1000000);  // fabricated value accepted
}

TEST(Tag, ConstantRounds) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto r =
      run_tag_min(net, default_readings(25), {}, TagAttack::kNone, 8);
  EXPECT_EQ(r.flooding_rounds, 2);
}

TEST(AlarmOnly, HonestRunProducesResult) {
  Network net(Topology::grid(5, 5), dense_keys());
  const auto r = run_alarm_only(net, nullptr, default_readings(25),
                                net.physical_depth(), 1);
  EXPECT_FALSE(r.alarmed);
  ASSERT_TRUE(r.minimum.has_value());
  EXPECT_EQ(*r.minimum, 101);
}

TEST(AlarmOnly, PersistentChokerStallsForever) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 3);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll));
  const auto campaign = run_alarm_only_campaign(
      net, &adv, default_readings(25), topo.depth(malicious), 1,
      /*max_attempts=*/25);
  EXPECT_TRUE(campaign.stalled);
  EXPECT_EQ(campaign.executions, 25);
}

TEST(AlarmOnly, VmatRecoversWhereAlarmOnlyStalls) {
  // Same adversary family, same topology: VMAT's revocation converges.
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 3);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(25);
  std::vector<std::vector<Reading>> values(25);
  std::vector<std::vector<std::int64_t>> weights(25);
  for (std::uint32_t id = 0; id < 25; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 600);
  EXPECT_TRUE(history.back().produced_result());
}

TEST(Sampling, EstimateWithinFactorAndLogRounds) {
  std::vector<std::uint8_t> predicate(1024, 0);
  for (std::uint32_t id = 1; id <= 300; ++id) predicate[id] = 1;
  const auto r = run_set_sampling_count(predicate, {.tests_per_level = 64,
                                                    .seed = 5});
  EXPECT_NEAR(r.estimate, 300.0, 300.0 * 0.5);
  EXPECT_EQ(r.levels, 10u);  // log2(1024)
  EXPECT_EQ(r.flooding_rounds, 20);
}

TEST(Sampling, ZeroCountIsZero) {
  const std::vector<std::uint8_t> predicate(256, 0);
  const auto r = run_set_sampling_count(predicate, {});
  EXPECT_EQ(r.estimate, 0.0);
}

TEST(Sampling, RoundsGrowLogarithmically) {
  std::vector<std::uint8_t> small(64, 1), large(4096, 1);
  const auto rs = run_set_sampling_count(small, {});
  const auto rl = run_set_sampling_count(large, {});
  EXPECT_EQ(rl.flooding_rounds - rs.flooding_rounds, 2 * 6);  // log ratio 64
}

TEST(SendAll, ExactMinAndLinearBytes) {
  Network net_small(Topology::grid(6, 6), dense_keys());
  Network net_large(Topology::grid(12, 12), dense_keys());
  auto readings_small = default_readings(36);
  auto readings_large = default_readings(144);
  const auto small = run_send_all(net_small, readings_small);
  const auto large = run_send_all(net_large, readings_large);
  EXPECT_EQ(small.minimum, 101);
  EXPECT_EQ(large.minimum, 101);
  // Total cost grows super-linearly with n (relaying), and the hottest
  // relay scales with n.
  EXPECT_GT(large.total_bytes, small.total_bytes * 3);
  EXPECT_GT(large.max_node_bytes, small.max_node_bytes);
  // Every reading crosses at least one hop: lower bound.
  EXPECT_GE(small.total_bytes, 35u * 20u);
}

TEST(SendAll, MatchesPaperScaleClaim) {
  // Section IX: ~10,000 sensors => at least 80 KB with 8-byte MACs. Our
  // records carry 20 bytes, so the total must exceed 200 KB.
  Network net(Topology::grid(100, 100), dense_keys());
  const auto r = run_send_all(net, default_readings(10000));
  EXPECT_GE(r.total_bytes, 200000u);
}

}  // namespace
}  // namespace vmat
