// Key predistribution and revocation tests: pool determinism, ring
// sampling, edge-key discovery (the Eschenauer-Gligor birthday property),
// holder indexing, and the θ-threshold revocation cascade.
#include <gtest/gtest.h>

#include <cmath>

#include "keys/key_pool.h"
#include "keys/key_ring.h"
#include "keys/predistribution.h"
#include "keys/revocation.h"

namespace vmat {
namespace {

TEST(KeyPool, DeterministicByIndexAndSeed) {
  const KeyPool pool(100, 7);
  EXPECT_EQ(pool.key(KeyIndex{3}), pool.key(KeyIndex{3}));
  EXPECT_NE(pool.key(KeyIndex{3}), pool.key(KeyIndex{4}));
  const KeyPool other(100, 8);
  EXPECT_NE(pool.key(KeyIndex{3}), other.key(KeyIndex{3}));
}

TEST(KeyPool, RejectsBadIndex) {
  const KeyPool pool(10, 1);
  EXPECT_THROW((void)pool.key(KeyIndex{10}), std::out_of_range);
}

TEST(KeyRing, SortedDistinctAndDeterministic) {
  const KeyRing a(42, 50, 1000);
  const KeyRing b(42, 50, 1000);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_TRUE(std::equal(a.indices().begin(), a.indices().end(),
                         b.indices().begin()));
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LT(a.indices()[i - 1], a.indices()[i]);
}

TEST(KeyRing, ContainsAndPosition) {
  const KeyRing ring(42, 50, 1000);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const KeyIndex k = ring.indices()[i];
    EXPECT_TRUE(ring.contains(k));
    EXPECT_EQ(ring.position_of(k), i);
  }
  // A value not in the ring.
  for (std::uint32_t v = 0; v < 1000; ++v) {
    if (!ring.contains(KeyIndex{v})) {
      EXPECT_FALSE(ring.position_of(KeyIndex{v}).has_value());
      break;
    }
  }
}

TEST(KeyRing, SharedKeyIsSmallestCommon) {
  const KeyRing a(1, 400, 1000);
  const KeyRing b(2, 400, 1000);
  const auto shared = a.shared_key(b);
  ASSERT_TRUE(shared.has_value());
  EXPECT_TRUE(a.contains(*shared));
  EXPECT_TRUE(b.contains(*shared));
  // Nothing smaller is common.
  for (KeyIndex k : a.indices()) {
    if (k == *shared) break;
    EXPECT_FALSE(b.contains(k));
  }
}

TEST(KeyRing, OverlapSymmetricAndBounded) {
  const KeyRing a(1, 100, 500);
  const KeyRing b(2, 100, 500);
  EXPECT_EQ(a.overlap(b), b.overlap(a));
  EXPECT_LE(a.overlap(b), 100u);
  EXPECT_EQ(a.overlap(a), 100u);
}

TEST(KeyRing, BirthdayParadoxSharingProbability) {
  // With r = c*sqrt(u), two rings share a key with prob ~ 1 - e^{-c^2}.
  // u = 2500, r = 100 => c = 2, P(share) ~ 0.98.
  int share = 0;
  constexpr int kPairs = 400;
  for (int i = 0; i < kPairs; ++i) {
    const KeyRing a(2 * i + 1000, 100, 2500);
    const KeyRing b(2 * i + 1001, 100, 2500);
    if (a.shared_key(b).has_value()) ++share;
  }
  EXPECT_GT(share, kPairs * 0.93);
}

TEST(Predistribution, HoldersAreExactAndSorted) {
  const Predistribution pd(50, {.pool_size = 200, .ring_size = 20, .seed = 3});
  for (std::uint32_t k = 0; k < 200; ++k) {
    const auto holders = pd.holders(KeyIndex{k});
    for (std::size_t i = 1; i < holders.size(); ++i)
      EXPECT_LT(holders[i - 1], holders[i]);
    for (NodeId h : holders) EXPECT_TRUE(pd.ring(h).contains(KeyIndex{k}));
  }
  // Every ring entry appears in the holder map.
  for (std::uint32_t id = 0; id < 50; ++id) {
    for (KeyIndex k : pd.ring(NodeId{id}).indices()) {
      const auto holders = pd.holders(k);
      EXPECT_TRUE(std::find(holders.begin(), holders.end(), NodeId{id}) !=
                  holders.end());
    }
  }
}

TEST(Predistribution, EdgeKeySymmetric) {
  const Predistribution pd(30, {.pool_size = 100, .ring_size = 30, .seed = 4});
  for (std::uint32_t a = 0; a < 30; ++a)
    for (std::uint32_t b = a + 1; b < 30; ++b)
      EXPECT_EQ(pd.edge_key(NodeId{a}, NodeId{b}),
                pd.edge_key(NodeId{b}, NodeId{a}));
}

TEST(Predistribution, SensorKeysUniquePerNode) {
  const Predistribution pd(20, {.pool_size = 100, .ring_size = 10, .seed = 5});
  for (std::uint32_t a = 0; a < 20; ++a)
    for (std::uint32_t b = a + 1; b < 20; ++b)
      EXPECT_NE(pd.sensor_key(NodeId{a}), pd.sensor_key(NodeId{b}));
}

TEST(Revocation, KeyRevocationIsIdempotent) {
  const Predistribution pd(20, {.pool_size = 100, .ring_size = 10, .seed = 6});
  RevocationRegistry reg(&pd, 0);
  EXPECT_FALSE(reg.is_key_revoked(KeyIndex{5}));
  (void)reg.revoke_key(KeyIndex{5});
  EXPECT_TRUE(reg.is_key_revoked(KeyIndex{5}));
  (void)reg.revoke_key(KeyIndex{5});
  EXPECT_EQ(reg.revoked_key_count(), 1u);
  EXPECT_EQ(reg.events().size(), 1u);
}

TEST(Revocation, ThresholdTriggersSensorRevocation) {
  const Predistribution pd(10, {.pool_size = 50, .ring_size = 10, .seed = 7});
  RevocationRegistry reg(&pd, 3);
  const NodeId victim{4};
  const auto ring = pd.ring(victim).indices();
  std::vector<NodeId> newly;
  // Revoke ring keys one by one until victim crosses θ = 3.
  for (std::size_t i = 0; i < ring.size() && newly.empty(); ++i)
    newly = reg.revoke_key(ring[i]);
  EXPECT_TRUE(reg.is_sensor_revoked(victim) ||
              // Some other sensor sharing these keys may trip first; either
              // way, somebody crossed the threshold.
              !newly.empty());
}

TEST(Revocation, SensorRevocationRevokesWholeRing) {
  const Predistribution pd(10, {.pool_size = 200, .ring_size = 12, .seed = 8});
  RevocationRegistry reg(&pd, 0);  // no cascade
  const NodeId victim{3};
  const auto newly = reg.revoke_sensor(victim);
  ASSERT_FALSE(newly.empty());
  EXPECT_EQ(newly.front(), victim);
  EXPECT_TRUE(reg.is_sensor_revoked(victim));
  for (KeyIndex k : pd.ring(victim).indices())
    EXPECT_TRUE(reg.is_key_revoked(k));
}

TEST(Revocation, PinpointedVsRingSeedCausesTracked) {
  const Predistribution pd(10, {.pool_size = 200, .ring_size = 12, .seed = 9});
  RevocationRegistry reg(&pd, 0);
  (void)reg.revoke_key(KeyIndex{1});
  (void)reg.revoke_sensor(NodeId{2});
  EXPECT_EQ(reg.pinpointed_key_count(), 1u);
  EXPECT_GT(reg.events().size(), 1u);
}

TEST(Revocation, CountsRevokedKeysPerSensor) {
  const Predistribution pd(10, {.pool_size = 200, .ring_size = 12, .seed = 10});
  RevocationRegistry reg(&pd, 100);  // high threshold: no cascade
  const NodeId node{5};
  const auto ring = pd.ring(node).indices();
  (void)reg.revoke_key(ring[0]);
  (void)reg.revoke_key(ring[1]);
  EXPECT_EQ(reg.revoked_count(node), 2u);
}

TEST(Revocation, ZeroThresholdDisablesAutoRevocation) {
  const Predistribution pd(10, {.pool_size = 50, .ring_size = 20, .seed = 11});
  RevocationRegistry reg(&pd, 0);
  for (KeyIndex k : pd.ring(NodeId{1}).indices())
    (void)reg.revoke_key(k);
  EXPECT_FALSE(reg.is_sensor_revoked(NodeId{1}));
}

}  // namespace
}  // namespace vmat
