// Lossy-link tests: the paper assumes "messages are reliable, after proper
// retransmissions if necessary" — here the assumption is made mechanical.
// With per-frame loss p and redundancy k, a logical message is lost with
// probability p^k; adequate k restores every protocol guarantee.
#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/query.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::revocations_sound;
using testing::true_min;

NetworkSpec lossy_keys(double loss, std::uint32_t redundancy,
                         std::uint64_t seed = 9) {
  NetworkSpec cfg = testing::dense_keys(0, seed);
  cfg.loss_probability = loss;
  cfg.redundancy = redundancy;
  return cfg;
}

TEST(Loss, FabricDropsRequestedFraction) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  ASSERT_TRUE(fabric.set_loss(0.3, 5).has_value());
  int delivered = 0;
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i) {
    Envelope e;
    e.from = NodeId{0};
    e.to = NodeId{1};
    e.payload = {1};
    ASSERT_TRUE(fabric.send(e));
    fabric.end_slot();
    delivered += static_cast<int>(fabric.take_inbox(NodeId{1}).size());
  }
  EXPECT_NEAR(static_cast<double>(delivered) / kFrames, 0.7, 0.03);
  EXPECT_EQ(fabric.frames_lost(), kFrames - delivered);
}

TEST(Loss, SetLossValidatesProbability) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  const Status low = fabric.set_loss(-0.1, 1);
  ASSERT_FALSE(low.has_value());
  EXPECT_EQ(low.error().code, ErrorCode::kInvalidArgument);
  const Status high = fabric.set_loss(1.0, 1);
  ASSERT_FALSE(high.has_value());
  EXPECT_EQ(high.error().code, ErrorCode::kInvalidArgument);
}

TEST(Loss, RedundancyRestoresCorrectMin) {
  // 10% frame loss, 4 copies per logical message: logical loss 1e-4; runs
  // across seeds must all return the exact minimum.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Network net(Topology::grid(5, 5), lossy_keys(0.10, 4, seed));
    VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
    const auto readings = default_readings(25);
    const auto out = coordinator.run_min(readings);
    ASSERT_EQ(out.kind, OutcomeKind::kResult) << "seed " << seed;
    EXPECT_EQ(out.minima[0], true_min(net, readings)) << "seed " << seed;
  }
}

TEST(Loss, SynopsisQueriesSurviveLoss) {
  Network net(Topology::grid(6, 6), lossy_keys(0.08, 4));
  CoordinatorSpec cfg;
  cfg.instances = 60;
  VmatCoordinator coordinator(&net, nullptr, cfg);
  QueryEngine queries(&coordinator);
  std::vector<std::uint8_t> predicate(36, 0);
  for (std::uint32_t id = 1; id <= 18; ++id) predicate[id] = 1;
  const auto out = queries.count_until_answered(predicate, 50);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, 18.0, 18.0 * 0.4);
}

TEST(Loss, AdversaryUnderLossStillSoundlyRevoked) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 3);
  Network net(topo, lossy_keys(0.05, 4));
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  const auto readings = default_readings(25);
  std::vector<std::vector<Reading>> values(25);
  std::vector<std::vector<std::int64_t>> weights(25);
  for (std::uint32_t id = 0; id < 25; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = coordinator.run_until_result(values, weights, {}, 400);
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_TRUE(revocations_sound(net, malicious));
}

TEST(Loss, UnmitigatedLossCanCostHonestKeys) {
  // The reason the paper assumes reliability: with heavy loss and NO
  // redundancy, a vanished message looks exactly like a drop attack, and
  // the veto walk may blame (and revoke) an honest edge key. This test
  // documents the failure mode the redundancy knob exists to prevent.
  int honest_key_revocations = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Network net(Topology::grid(5, 5), lossy_keys(0.25, 1, seed));
    VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
    (void)coordinator.run_min(default_readings(25));
    honest_key_revocations +=
        static_cast<int>(net.revocation().revoked_key_count());
  }
  // Not asserting a tight count (stochastic), just that the hazard is real
  // — and that with redundancy 4 (RedundancyRestoresCorrectMin) it never
  // happened.
  EXPECT_GT(honest_key_revocations, 0);
}

}  // namespace
}  // namespace vmat
