// Keyed predicate test: honest evaluation semantics over audit records and
// the Theorem 3 engine guarantees (success iff a satisfying honest holder
// exists, modulo Byzantine holders who may answer either way).
#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/predicate_test.h"
#include "core/tree_formation.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;

// --- evaluate_predicate unit tests over hand-built audits ---

// Node 5 sits at level 3 with one received and one forwarded record
// (serial build: shard 0).
AuditLog sample_audits() {
  AuditLog audits(8);
  audits.begin_aggregation(1);
  audits.set_level(NodeId{5}, 3);
  ReceivedRecord r;
  r.msg.origin = NodeId{9};
  r.msg.instance = 0;
  r.msg.value = 42;
  r.in_edge = KeyIndex{17};
  r.slot = 2;
  r.child_level = 4;
  audits.add_received(0, NodeId{5}, r);
  ForwardRecord f;
  f.msg = r.msg;
  f.out_edge = KeyIndex{23};
  f.parent = NodeId{2};
  audits.add_forwarded(0, NodeId{5}, f);
  return audits;
}

TEST(Predicate, AggForwardedMatchesLevelValueAndWindow) {
  const AuditLog audit = sample_audits();
  Predicate p;
  p.kind = PredicateKind::kAggForwardedValue;
  p.instance = 0;
  p.v_max = 42;
  p.level = 3;
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  p.z_lo = KeyIndex{20};
  p.z_hi = KeyIndex{25};
  EXPECT_TRUE(evaluate_predicate(p, NodeId{5}, audit));
  p.v_max = 41;  // smaller bound
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
  p.v_max = 42;
  p.level = 4;  // wrong level
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
  p.level = 3;
  p.z_hi = KeyIndex{22};  // out-edge outside window
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
  p.z_hi = KeyIndex{25};
  p.id_lo = p.id_hi = NodeId{6};  // id window excludes self
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  p.instance = 1;  // wrong instance
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
}

TEST(Predicate, AggReceivedRequiresOwnLevelOneBelow) {
  const AuditLog audit = sample_audits();  // own level 3, child level 4
  Predicate p;
  p.kind = PredicateKind::kAggReceivedValue;
  p.instance = 0;
  p.v_max = 50;
  p.level = 4;  // child level; admitter must sit at 3
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  EXPECT_TRUE(evaluate_predicate(p, NodeId{5}, audit));
  p.level = 5;  // would require own level 4
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
}

TEST(Predicate, JunkAggKindsBindExactIdentityAndEdge) {
  const AuditLog audit = sample_audits();
  const Digest id_hash = message_identity(audit.forwarded_of(NodeId{5})[0].msg);
  Predicate p;
  p.kind = PredicateKind::kJunkAggForwarded;
  p.level = 3;
  p.bound_edge = KeyIndex{23};
  p.msg_hash = id_hash;
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  EXPECT_TRUE(evaluate_predicate(p, NodeId{5}, audit));
  p.bound_edge = KeyIndex{17};
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));
  p.bound_edge = KeyIndex{23};
  p.msg_hash[0] ^= 1;
  EXPECT_FALSE(evaluate_predicate(p, NodeId{5}, audit));

  Predicate q;
  q.kind = PredicateKind::kJunkAggReceived;
  q.level = 3;
  q.z_lo = KeyIndex{17};
  q.z_hi = KeyIndex{17};
  q.msg_hash = id_hash;
  q.id_lo = NodeId{0};
  q.id_hi = NodeId{100};
  EXPECT_TRUE(evaluate_predicate(q, NodeId{5}, audit));
  q.z_lo = q.z_hi = KeyIndex{18};
  EXPECT_FALSE(evaluate_predicate(q, NodeId{5}, audit));
}

TEST(Predicate, SofKindsMatchIntervalAndEdges) {
  AuditLog audit(8);
  audit.begin_aggregation(1);
  SofRecord rec;
  rec.msg.origin = NodeId{4};
  rec.msg.value = 7;
  rec.msg.level = 2;
  rec.originated = false;
  rec.received_interval = 2;
  rec.forward_interval = 3;
  rec.in_edge = KeyIndex{31};
  rec.out_edges = {KeyIndex{40}, KeyIndex{41}};
  audit.set_sof(0, NodeId{6}, rec);
  const Digest id_hash = message_identity(rec.msg);

  Predicate p;
  p.kind = PredicateKind::kJunkSofForwarded;
  p.level = 3;
  p.bound_edge = KeyIndex{41};
  p.msg_hash = id_hash;
  p.id_lo = NodeId{0};
  p.id_hi = NodeId{100};
  EXPECT_TRUE(evaluate_predicate(p, NodeId{6}, audit));
  p.level = 2;
  EXPECT_FALSE(evaluate_predicate(p, NodeId{6}, audit));
  p.level = 3;
  p.bound_edge = KeyIndex{42};
  EXPECT_FALSE(evaluate_predicate(p, NodeId{6}, audit));

  Predicate q;
  q.kind = PredicateKind::kJunkSofReceived;
  q.level = 2;
  q.z_lo = KeyIndex{31};
  q.z_hi = KeyIndex{31};
  q.msg_hash = id_hash;
  q.id_lo = NodeId{0};
  q.id_hi = NodeId{100};
  EXPECT_TRUE(evaluate_predicate(q, NodeId{6}, audit));
  // Originators never satisfy the received kind.
  audit.sof_mut(NodeId{6})->originated = true;
  EXPECT_FALSE(evaluate_predicate(q, NodeId{6}, audit));
}

TEST(Predicate, NoAuditNeverSatisfies) {
  const AuditLog empty(2);
  for (auto kind : {PredicateKind::kAggForwardedValue,
                    PredicateKind::kAggReceivedValue,
                    PredicateKind::kJunkAggForwarded,
                    PredicateKind::kJunkAggReceived,
                    PredicateKind::kJunkSofForwarded,
                    PredicateKind::kJunkSofReceived}) {
    Predicate p;
    p.kind = kind;
    p.id_lo = NodeId{0};
    p.id_hi = NodeId{100};
    p.v_max = kInfinity - 1;
    p.z_lo = KeyIndex{0};
    p.z_hi = KeyIndex{0xfffffff0};
    EXPECT_FALSE(evaluate_predicate(p, NodeId{1}, empty));
  }
}

// --- engine tests (Theorem 3) over a real aggregation run ---

struct EngineFixture {
  EngineFixture()
      : net(Topology::line(6), dense_keys()), audits(net.node_count()) {
    TreePhaseParams tp;
    tp.depth_bound = net.physical_depth();
    tp.session = 1;
    tree = run_tree_formation(net, nullptr, tp);
    AggConfig cfg;
    cfg.nonce = 0xaa;
    auto readings = default_readings(net.node_count());
    readings[5] = 1;
    ValueTable values(net.node_count(), 1, 0);
    const ValueTable weights(net.node_count(), 1, 0);
    for (std::uint32_t id = 0; id < net.node_count(); ++id)
      values.data[id] = readings[id];
    (void)run_aggregation(net, nullptr, tree, cfg, values, weights, audits);
  }

  Predicate forwarded_probe(Level level, Reading v_max) {
    Predicate p;
    p.kind = PredicateKind::kAggForwardedValue;
    p.v_max = v_max;
    p.level = level;
    p.id_lo = NodeId{0};
    p.id_hi = NodeId{0xffffffff};
    p.z_lo = KeyIndex{0};
    p.z_hi = KeyIndex{0xfffffff0};
    return p;
  }

  Network net;
  TreeResult tree;
  AuditLog audits;
};

TEST(PredicateEngine, SucceedsWhenHonestHolderSatisfies) {
  EngineFixture fx;
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, nullptr, &fx.audits, &meter);
  // Node 3 (level 3) forwarded value 1.
  EXPECT_TRUE(engine.run(KeySpec::sensor_key(NodeId{3}),
                         fx.forwarded_probe(3, 1)));
  EXPECT_EQ(meter.predicate_tests, 1);
  EXPECT_EQ(meter.flooding_rounds, 2);
}

TEST(PredicateEngine, FailsWhenNobodySatisfies) {
  EngineFixture fx;
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, nullptr, &fx.audits, &meter);
  // Wrong level for node 3.
  EXPECT_FALSE(engine.run(KeySpec::sensor_key(NodeId{3}),
                          fx.forwarded_probe(4, 1)));
}

TEST(PredicateEngine, PoolKeyTestReachesAllHolders) {
  EngineFixture fx;
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, nullptr, &fx.audits, &meter);
  // Use node 3's actual out-edge key: its holder (node 3) satisfies.
  const KeyIndex out_edge = fx.audits.forwarded_of(NodeId{3})[0].out_edge;
  EXPECT_TRUE(engine.run(KeySpec::pool_key(out_edge),
                         fx.forwarded_probe(3, 1)));
}

TEST(PredicateEngine, ByzantineHolderCanFakeYes) {
  EngineFixture fx;
  Adversary adv(&fx.net, {NodeId{2}},
                std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, &adv, &fx.audits, &meter);
  // Node 2 has no matching record (probe at absurd level), but admits.
  EXPECT_TRUE(engine.run(KeySpec::sensor_key(NodeId{2}),
                         fx.forwarded_probe(99, 1)));
}

TEST(PredicateEngine, ByzantineHolderCanStonewall) {
  EngineFixture fx;
  Adversary adv(&fx.net, {NodeId{2}},
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, &adv, &fx.audits, &meter);
  // Node 2 does satisfy (it forwarded value 1 at level 2) but stays silent.
  EXPECT_FALSE(engine.run(KeySpec::sensor_key(NodeId{2}),
                          fx.forwarded_probe(2, 1)));
}

TEST(PredicateEngine, ByzantineCannotFakeForKeysItLacks) {
  EngineFixture fx;
  Adversary adv(&fx.net, {NodeId{2}},
                std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, &adv, &fx.audits, &meter);
  // Sensor key of honest node 4, probe it does not satisfy: node 2 cannot
  // answer for a key it does not hold, so the test must fail.
  EXPECT_FALSE(engine.run(KeySpec::sensor_key(NodeId{4}),
                          fx.forwarded_probe(99, 1)));
}

TEST(PredicateEngine, MessageLevelModeAgreesWithReachability) {
  // The reachability collapse is claimed to be exact; check it against the
  // full fabric-level verified flood across a grid of predicates and
  // adversary configurations.
  EngineFixture fx;
  struct Case {
    std::unordered_set<NodeId> malicious;
    LiePolicy policy;
  };
  const Case cases[] = {
      {{}, LiePolicy::kDenyAll},
      {{NodeId{2}}, LiePolicy::kDenyAll},
      {{NodeId{2}}, LiePolicy::kAdmitAll},
      {{NodeId{1}, NodeId{4}}, LiePolicy::kDenyAll},
      {{NodeId{1}, NodeId{4}}, LiePolicy::kAdmitAll},
  };
  for (const auto& c : cases) {
    std::optional<Adversary> adv;
    if (!c.malicious.empty())
      adv.emplace(&fx.net, c.malicious,
                  std::make_unique<SilentDropStrategy>(c.policy));
    Adversary* adv_ptr = adv.has_value() ? &*adv : nullptr;
    for (Level level : {1, 2, 3, 4, 5, 99}) {
      for (Reading v_max : {Reading{1}, Reading{101}, Reading{1000}}) {
        for (std::uint32_t target : {1u, 2u, 3u, 4u, 5u}) {
          const Predicate p = fx.forwarded_probe(level, v_max);
          CostMeter m1, m2;
          PredicateTestEngine fast(&fx.net, adv_ptr, &fx.audits, &m1,
                                   PredicateTestMode::kReachability);
          PredicateTestEngine full(&fx.net, adv_ptr, &fx.audits, &m2,
                                   PredicateTestMode::kMessageLevel);
          const KeySpec key = KeySpec::sensor_key(NodeId{target});
          EXPECT_EQ(fast.run(key, p), full.run(key, p))
              << "target=" << target << " level=" << level
              << " v_max=" << v_max << " f=" << c.malicious.size();
        }
      }
    }
  }
}

TEST(PredicateEngine, MessageLevelDropsJunkFrames) {
  // Feed the flood machinery a junk frame directly: a forwarder must drop
  // anything whose hash does not match the token, so a test keyed on a key
  // nobody satisfies still fails even with garbage in flight.
  EngineFixture fx;
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, nullptr, &fx.audits, &meter,
                             PredicateTestMode::kMessageLevel);
  // Stuff junk into the fabric; the engine resets it before flooding, so
  // also verify a plain failing test is unaffected end to end.
  Envelope junk;
  junk.from = NodeId{1};
  junk.to = NodeId{0};
  junk.edge_key = kNoKey;
  junk.payload = encode(PredicateReplyMsg{});  // wrong reply bytes
  (void)fx.net.fabric().send(junk);
  EXPECT_FALSE(engine.run(KeySpec::sensor_key(NodeId{3}),
                          fx.forwarded_probe(4, 1)));
}

TEST(PredicateEngine, ReplyBlockedByByzantineCutFails) {
  // Line 0-1-2-3-4-5 with Byzantine node 1: replies from beyond it cannot
  // reach the base station (Byzantine nodes do not relay).
  EngineFixture fx;
  Adversary adv(&fx.net, {NodeId{1}},
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CostMeter meter;
  PredicateTestEngine engine(&fx.net, &adv, &fx.audits, &meter);
  EXPECT_FALSE(engine.run(KeySpec::sensor_key(NodeId{4}),
                          fx.forwarded_probe(4, 101)));
  // But an injector adjacent to the reachable component succeeds: node 1
  // itself answering yes reaches the BS.
  Adversary adv2(&fx.net, {NodeId{1}},
                 std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  PredicateTestEngine engine2(&fx.net, &adv2, &fx.audits, &meter);
  EXPECT_TRUE(engine2.run(KeySpec::sensor_key(NodeId{1}),
                          fx.forwarded_probe(99, 1)));
}

}  // namespace
}  // namespace vmat
