// Pinpointing/revocation tests (Lemmas 4-6): every walk ends by revoking
// key material the adversary provably holds, honest sensors are never
// revoked, and the walks stay sound against stonewalling, admit-all
// framing, and inconsistent answers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/coordinator.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;
using testing::true_min;

/// Path A 0-1-2-3-4 (node 2 will be malicious) plus detour B 0-5-6-7-8-4:
/// the minimum at node 4 is tree-routed through node 2, while the honest
/// subgraph stays connected through the detour.
Topology forced_drop_topology() {
  Topology t(9);
  t.add_edge(NodeId{0}, NodeId{1});
  t.add_edge(NodeId{1}, NodeId{2});
  t.add_edge(NodeId{2}, NodeId{3});
  t.add_edge(NodeId{3}, NodeId{4});
  t.add_edge(NodeId{0}, NodeId{5});
  t.add_edge(NodeId{5}, NodeId{6});
  t.add_edge(NodeId{6}, NodeId{7});
  t.add_edge(NodeId{7}, NodeId{8});
  t.add_edge(NodeId{8}, NodeId{4});
  return t;
}

struct Scenario {
  Scenario(Topology topo, std::unordered_set<NodeId> malicious,
           std::unique_ptr<AdversaryStrategy> strategy,
           std::uint64_t seed = 100)
      : net(std::move(topo), dense_keys(/*theta=*/0, seed)),
        malicious_set(malicious),
        adv(&net, std::move(malicious), std::move(strategy)) {
    cfg.depth_bound = net.topology().depth(malicious_set);
    cfg.seed = seed;
    coordinator = std::make_unique<VmatCoordinator>(&net, &adv, cfg);
  }

  Network net;
  std::unordered_set<NodeId> malicious_set;
  Adversary adv;
  CoordinatorSpec cfg;
  std::unique_ptr<VmatCoordinator> coordinator;
};

std::vector<Reading> forced_drop_readings() {
  auto readings = default_readings(9);
  readings[4] = 1;  // the vetoer behind the malicious node
  return readings;
}

TEST(Pinpoint, SilentDropIsRevokedViaVetoWalk) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(forced_drop_readings());
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kVeto);
  EXPECT_FALSE(out.revoked_keys.empty());
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, AdmitAllDraggingStillEndsInSoundRevocation) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<SilentDropStrategy>(LiePolicy::kAdmitAll));
  const auto out = s.coordinator->run_min(forced_drop_readings());
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_TRUE(!out.revoked_keys.empty() || !out.revoked_sensors.empty())
      << "walk must revoke something";
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, RandomAnswersStillEndInSoundRevocation) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario s(forced_drop_topology(), {NodeId{2}},
               std::make_unique<SilentDropStrategy>(LiePolicy::kRandom),
               1000 + seed);
    const auto out = s.coordinator->run_min(forced_drop_readings());
    ASSERT_EQ(out.kind, OutcomeKind::kRevocation) << "seed " << seed;
    EXPECT_TRUE(revocations_sound(s.net, s.malicious_set))
        << "seed " << seed << ": " << out.reason;
  }
}

TEST(Pinpoint, ValueDropPinpointedToo) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<ValueDropStrategy>(LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(forced_drop_readings());
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kVeto);
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, JunkInjectionTriggersJunkWalk) {
  const auto topo = Topology::grid(4, 4);
  const auto malicious = choose_malicious(topo, 2, 7);
  Scenario s(topo, malicious,
             std::make_unique<JunkInjectStrategy>(LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kJunkAggregation);
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, JunkInjectionWithFramingDoesNotHurtTheFramed) {
  const auto topo = Topology::grid(4, 4);
  const auto malicious = choose_malicious(topo, 2, 8);
  Scenario s(topo, malicious,
             std::make_unique<JunkInjectStrategy>(LiePolicy::kAdmitAll,
                                                  /*frame=*/true));
  const auto out = s.coordinator->run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, ChokingAttackTriggersJunkConfirmationWalk) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(forced_drop_readings());
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kJunkConfirmation);
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, ValidSelfVetoFromMaliciousSensorIsWalkedSoundly) {
  const auto topo = Topology::grid(4, 4);
  const auto malicious = choose_malicious(topo, 1, 9);
  Scenario s(topo, malicious,
             std::make_unique<SelfVetoStrategy>(/*hidden=*/1,
                                                LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(default_readings(16));
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(out.trigger, Trigger::kVeto);
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set)) << out.reason;
}

TEST(Pinpoint, HonestSensorsNeverRevokedAcrossManyRuns) {
  // Repeat executions against the dropper until it is fully neutralized;
  // no honest key material may ever be revoked.
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  const auto readings = forced_drop_readings();
  std::vector<std::vector<Reading>> values(9);
  std::vector<std::vector<std::int64_t>> weights(9);
  for (std::uint32_t id = 0; id < 9; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = s.coordinator->run_until_result(values, weights);
  ASSERT_GE(history.size(), 2u);  // at least one revocation, then a result
  EXPECT_TRUE(history.back().produced_result());
  EXPECT_TRUE(revocations_sound(s.net, s.malicious_set));
  for (std::size_t i = 0; i + 1 < history.size(); ++i)
    EXPECT_TRUE(history[i].revoked_keys.size() +
                    history[i].revoked_sensors.size() >
                0)
        << "execution " << i << " neither produced nor revoked";
}

TEST(Pinpoint, ResultAfterRecoveryIsCorrect) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  const auto readings = forced_drop_readings();
  std::vector<std::vector<Reading>> values(9);
  std::vector<std::vector<std::int64_t>> weights(9);
  for (std::uint32_t id = 0; id < 9; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  const auto history = s.coordinator->run_until_result(values, weights);
  // The final result includes node 4's reading: it was never revoked and
  // the network routes around the neutralized dropper.
  EXPECT_EQ(history.back().minima[0],
            true_min(s.net, readings, s.malicious_set));
}

TEST(Pinpoint, MessageLevelPredicateModeGivesSameOutcome) {
  // Run the same drop scenario with the full fabric-level predicate-test
  // flood instead of the reachability collapse: identical revocations.
  auto run_with = [&](PredicateTestMode mode) {
    Scenario s(forced_drop_topology(), {NodeId{2}},
               std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
    CoordinatorSpec cfg = s.cfg;
    cfg.predicate_mode = mode;
    VmatCoordinator coordinator(&s.net, &s.adv, cfg);
    return coordinator.run_min(forced_drop_readings());
  };
  const auto fast = run_with(PredicateTestMode::kReachability);
  const auto full = run_with(PredicateTestMode::kMessageLevel);
  ASSERT_EQ(fast.kind, OutcomeKind::kRevocation);
  ASSERT_EQ(full.kind, OutcomeKind::kRevocation);
  EXPECT_EQ(fast.trigger, full.trigger);
  EXPECT_EQ(fast.revoked_keys, full.revoked_keys);
  EXPECT_EQ(fast.reason, full.reason);
}

TEST(Pinpoint, CostStaysWithinTheoremSixBounds) {
  Scenario s(forced_drop_topology(), {NodeId{2}},
             std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  const auto out = s.coordinator->run_min(forced_drop_readings());
  ASSERT_EQ(out.kind, OutcomeKind::kRevocation);
  // O(L log n) predicate tests: L+1 walk steps, each O(log r + log n)
  // tests; generous constant-factor ceiling.
  const int L = s.coordinator->effective_depth_bound();
  const double bound =
      12.0 * (L + 2) *
      (std::log2(static_cast<double>(s.net.keys().config().pool_size)) + 4);
  EXPECT_LE(out.pinpoint_cost.predicate_tests, bound);
  EXPECT_GE(out.pinpoint_cost.predicate_tests, 1);
}

}  // namespace
}  // namespace vmat
