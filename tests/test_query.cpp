// Query-engine tests: COUNT/SUM/AVERAGE end to end over the network, the
// anti-fabrication path, and the retry loop under attack.
#include <gtest/gtest.h>

#include <cmath>

#include "core/query.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

struct QueryFixture {
  explicit QueryFixture(std::uint32_t instances = 60,
                        Adversary* adversary = nullptr, Level L = 0)
      : net(Topology::grid(6, 6), dense_keys()) {
    CoordinatorSpec cfg;
    cfg.instances = instances;
    if (L > 0) cfg.depth_bound = L;
    coordinator = std::make_unique<VmatCoordinator>(&net, adversary, cfg);
    queries = std::make_unique<QueryEngine>(coordinator.get());
  }

  Network net;
  std::unique_ptr<VmatCoordinator> coordinator;
  std::unique_ptr<QueryEngine> queries;
};

TEST(Query, CountRecoversPredicateCardinality) {
  QueryFixture fx(100);
  std::vector<std::uint8_t> predicate(36, 0);
  for (std::uint32_t id = 1; id <= 20; ++id) predicate[id] = 1;
  const auto out = fx.queries->count(predicate);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, 20.0, 20.0 * 0.35);
}

TEST(Query, CountZeroIsExact) {
  QueryFixture fx(30);
  const std::vector<std::uint8_t> predicate(36, 0);
  const auto out = fx.queries->count(predicate);
  ASSERT_TRUE(out.answered());
  EXPECT_EQ(*out.estimate, 0.0);
}

TEST(Query, SumRecoversTotal) {
  QueryFixture fx(100);
  std::vector<std::int64_t> readings(36, 0);
  std::int64_t total = 0;
  for (std::uint32_t id = 1; id < 36; ++id) {
    readings[id] = id % 7 + 1;
    total += readings[id];
  }
  const auto out = fx.queries->sum(readings);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, static_cast<double>(total), total * 0.35);
}

TEST(Query, SumRejectsNegativeReadings) {
  QueryFixture fx(10);
  std::vector<std::int64_t> readings(36, 1);
  readings[3] = -2;
  EXPECT_THROW((void)fx.queries->sum(readings), std::invalid_argument);
}

TEST(Query, AverageCombinesSumAndCount) {
  QueryFixture fx(100);
  std::vector<std::int64_t> readings(36, 0);
  for (std::uint32_t id = 1; id < 36; ++id) readings[id] = 10;
  const auto out = fx.queries->average(readings);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, 10.0, 10.0 * 0.35);
}

TEST(Query, FabricatedSynopsisIsRejectedAndSignerRevoked) {
  // A malicious sensor signs a synopsis that does not match its claimed
  // weight: the base station detects it via the public PRG and revokes the
  // signer outright (Section VIII anti-fabrication).
  class FabricateSynopsis final : public PolicyStrategy {
   public:
    FabricateSynopsis() : PolicyStrategy(LiePolicy::kDenyAll) {}
    void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override {
      const NodeId m = *view.malicious().begin();
      const Level level = ctx.tree->level[m.value];
      if (level < 1 || ctx.slot != ctx.tree->depth_bound - level + 1) return;
      // Claim weight 1 but report synopsis value 0 (smaller than any
      // legitimate synopsis) with a *valid* sensor-key MAC.
      AggMessage fake;
      fake.origin = m;
      fake.instance = 0;
      fake.value = 0;
      fake.weight = 1;
      fake.mac = compute_mac(view.sensor_key(m),
                             agg_mac_input(ctx.config->nonce, 0, 0, 1));
      const Bytes frame = encode(AggBundle{{fake}});
      for (const ParentLink& link : ctx.tree->parents[m.value])
        (void)view.inject(m, link.claimed_id, m, link.edge_key, frame);
    }
  };

  Network net(Topology::grid(6, 6), dense_keys());
  Adversary adv(&net, {NodeId{8}}, std::make_unique<FabricateSynopsis>());
  CoordinatorSpec cfg;
  cfg.instances = 20;
  cfg.depth_bound = net.topology().depth({NodeId{8}});
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);

  std::vector<std::uint8_t> predicate(36, 1);
  predicate[0] = 0;
  const auto out = queries.count(predicate);
  EXPECT_FALSE(out.answered());
  EXPECT_EQ(out.exec.trigger, Trigger::kSelfIncrimination);
  ASSERT_FALSE(out.exec.revoked_sensors.empty());
  EXPECT_EQ(out.exec.revoked_sensors.front(), NodeId{8});
}

TEST(Query, CountUntilAnsweredDefeatsDropper) {
  const auto topo = Topology::grid(6, 6);
  const auto malicious = choose_malicious(topo, 2, 5);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.instances = 40;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);

  std::vector<std::uint8_t> predicate(36, 0);
  std::uint32_t honest_true = 0;
  for (std::uint32_t id = 1; id < 36; ++id) {
    if (malicious.contains(NodeId{id})) continue;
    predicate[id] = 1;
    ++honest_true;
  }
  const auto out = queries.count_until_answered(predicate, /*max=*/600);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, static_cast<double>(honest_true),
              honest_true * 0.45);
  EXPECT_TRUE(testing::revocations_sound(net, malicious));
}

TEST(Query, MinAndMaxReadings) {
  QueryFixture fx(20);  // multi-instance coordinator serves MIN/MAX too
  std::vector<Reading> readings(36, 0);
  for (std::uint32_t id = 1; id < 36; ++id)
    readings[id] = 50 + static_cast<Reading>((id * 7) % 90);
  Reading lo = kInfinity, hi = -1;
  for (std::uint32_t id = 1; id < 36; ++id) {
    lo = std::min(lo, readings[id]);
    hi = std::max(hi, readings[id]);
  }
  const auto mn = fx.queries->min_reading(readings);
  ASSERT_TRUE(mn.answered());
  EXPECT_EQ(*mn.estimate, static_cast<double>(lo));
  const auto mx = fx.queries->max_reading(readings);
  ASSERT_TRUE(mx.answered());
  EXPECT_EQ(*mx.estimate, static_cast<double>(hi));
}

TEST(Query, MaxUnderDropAttackIsNeverInflatedOrSilentlyLowered) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 4);
  Network net(topo, dense_keys());
  Adversary adv(&net, malicious,
                std::make_unique<SilentDropStrategy>(LiePolicy::kDenyAll));
  CoordinatorSpec cfg;
  cfg.instances = 1;
  cfg.depth_bound = topo.depth(malicious);
  VmatCoordinator coordinator(&net, &adv, cfg);
  QueryEngine queries(&coordinator);
  std::vector<Reading> readings(25, 10);
  readings[0] = 0;
  readings[24] = 99;
  for (int e = 0; e < 200; ++e) {
    const auto out = queries.max_reading(readings);
    if (!out.answered()) continue;  // revocation round
    // A returned MAX covers every honest reading (drops are caught by the
    // negated-min veto) and cannot exceed anything any sensor signed.
    Reading honest_max = 0;
    for (std::uint32_t id = 1; id < 25; ++id)
      if (!malicious.contains(NodeId{id}) &&
          !net.revocation().is_sensor_revoked(NodeId{id}))
        honest_max = std::max(honest_max, readings[id]);
    EXPECT_GE(*out.estimate, static_cast<double>(honest_max));
    EXPECT_LE(*out.estimate, 99.0);
    return;
  }
  FAIL() << "never answered";
}

TEST(Query, QuantileViaBinarySearchedCounts) {
  QueryFixture fx(100);
  std::vector<std::int64_t> readings(36, 0);
  for (std::uint32_t id = 1; id < 36; ++id) readings[id] = id;  // 1..35
  const auto median = fx.queries->quantile(readings, 0.5, 64);
  ASSERT_TRUE(median.answered());
  // COUNT noise (~10%) can shift the rank boundary by a few values.
  EXPECT_NEAR(*median.estimate, 18.0, 5.0);
  const auto p90 = fx.queries->quantile(readings, 0.9, 64);
  ASSERT_TRUE(p90.answered());
  EXPECT_NEAR(*p90.estimate, 32.0, 4.0);
}

TEST(Query, QuantileValidatesArguments) {
  QueryFixture fx(10);
  std::vector<std::int64_t> readings(36, 1);
  EXPECT_THROW((void)fx.queries->quantile(readings, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)fx.queries->quantile(readings, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)fx.queries->quantile(readings, 0.5, 0),
               std::invalid_argument);
  readings[3] = 11;  // outside [0, 10]
  EXPECT_THROW((void)fx.queries->quantile(readings, 0.5, 10),
               std::invalid_argument);
}

TEST(Query, QuantileOfEmptyPopulationIsZero) {
  QueryFixture fx(10);
  const std::vector<std::int64_t> readings(36, 0);
  const auto out = fx.queries->quantile(readings, 0.5, 16);
  ASSERT_TRUE(out.answered());
  EXPECT_EQ(*out.estimate, 0.0);
}

TEST(Query, MaliciousSelfReadingIsNotAnAttack) {
  // A malicious sensor picking an adversarial (but valid) weight for itself
  // shifts the estimate only by its own contribution — the query still
  // completes (it is not "interference" per Section III).
  class SelfWeight final : public PolicyStrategy {
   public:
    SelfWeight() : PolicyStrategy(LiePolicy::kDenyAll) {}
    // Behaves honestly in all phases (tree participation inherited); its
    // influence comes only from the weight the query assigns it below.
  };
  QueryFixture fx(60);
  std::vector<std::uint8_t> predicate(36, 0);
  for (std::uint32_t id = 1; id <= 10; ++id) predicate[id] = 1;
  const auto out = fx.queries->count(predicate);
  ASSERT_TRUE(out.answered());
  EXPECT_NEAR(*out.estimate, 10.0, 10 * 0.5);
}

}  // namespace
}  // namespace vmat
