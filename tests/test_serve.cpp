// vmatd tests: wire-protocol round trips and malformed-frame discipline,
// fd framing, daemon tenant isolation, bit-identical serving across thread
// pools, clean SHUTDOWN draining, and a full client/daemon session over a
// socketpair.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"

namespace vmat::serve {
namespace {

ServeOptions small_options(std::uint32_t tenants,
                           std::uint32_t adversary_tenants = 0) {
  ServeOptions o;
  o.tenants = tenants;
  o.nodes = 36;
  o.topology = TopologyKind::kGrid;
  o.instances = 8;
  o.adversary_tenants = adversary_tenants;
  o.f = 2;
  o.seed = 11;
  return o;
}

SubmitRequest count_request(std::uint32_t tenant, std::int64_t threshold) {
  SubmitRequest r;
  r.tenant = tenant;
  r.kind = EngineQueryKind::kCount;
  r.threshold = threshold;
  return r;
}

Response must_decode(const Bytes& payload) {
  const Expected<Response> decoded = decode_response(payload);
  EXPECT_TRUE(decoded.has_value());
  return decoded.has_value() ? decoded.value() : Response{};
}

/// Submit through the direct request API; returns the wire request id.
std::uint64_t must_submit(Daemon& daemon, const SubmitRequest& submit) {
  Request req;
  req.op = Op::kSubmit;
  req.submit = submit;
  const Response resp = must_decode(daemon.handle_request(req));
  EXPECT_FALSE(resp.error.has_value())
      << (resp.error.has_value() ? resp.error->to_string() : "");
  return resp.request_id;
}

std::vector<ResultRecord> settle_and_poll(Daemon& daemon) {
  while (daemon.open_total() > 0) daemon.tick();
  Request poll;
  poll.op = Op::kPoll;
  poll.poll_max = 0;
  return must_decode(daemon.handle_request(poll)).results;
}

// --- protocol round trips ---

TEST(ServeProtocol, SubmitRoundTripPreservesEveryField) {
  SubmitRequest in;
  in.tenant = 5;
  in.kind = EngineQueryKind::kQuantile;
  in.instances = 24;
  in.max_executions = 7;
  in.threshold = -1234;
  in.q = 0.62;
  in.domain_max = 4096;
  const Expected<Request> out = decode_request(encode_submit(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out.value().op, Op::kSubmit);
  const SubmitRequest& got = out.value().submit;
  EXPECT_EQ(got.tenant, in.tenant);
  EXPECT_EQ(got.kind, in.kind);
  EXPECT_EQ(got.instances, in.instances);
  EXPECT_EQ(got.max_executions, in.max_executions);
  EXPECT_EQ(got.threshold, in.threshold);
  EXPECT_EQ(got.q, in.q);  // f64 travels as its bit pattern: exact
  EXPECT_EQ(got.domain_max, in.domain_max);
}

TEST(ServeProtocol, ControlRequestsRoundTrip) {
  const Expected<Request> poll = decode_request(encode_poll(17));
  ASSERT_TRUE(poll.has_value());
  EXPECT_EQ(poll.value().op, Op::kPoll);
  EXPECT_EQ(poll.value().poll_max, 17u);

  const Expected<Request> stats = decode_request(encode_stats());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats.value().op, Op::kStats);

  const Expected<Request> shutdown = decode_request(encode_shutdown());
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_EQ(shutdown.value().op, Op::kShutdown);
}

TEST(ServeProtocol, ResultRecordsRoundTripAnsweredAndFailed) {
  ResultRecord answered;
  answered.request_id = (7ull << 32) | 3;
  answered.tenant = 6;
  answered.kind = EngineQueryKind::kAverage;
  answered.answered = true;
  answered.estimate = 1234.5625;
  answered.executions = 4;
  answered.epoch_id = 9;
  ResultRecord failed;
  failed.request_id = (1ull << 32) | 8;
  failed.kind = EngineQueryKind::kQuantile;
  failed.answered = false;
  failed.error = ErrorCode::kDeadlineExceeded;
  const std::vector<ResultRecord> records{answered, failed};

  const Response out = must_decode(encode_results(Op::kPoll, records));
  EXPECT_EQ(out.op, Op::kPoll);
  ASSERT_EQ(out.results.size(), 2u);
  EXPECT_EQ(out.results[0].request_id, answered.request_id);
  EXPECT_EQ(out.results[0].estimate, answered.estimate);
  EXPECT_EQ(out.results[0].epoch_id, answered.epoch_id);
  EXPECT_FALSE(out.results[1].answered);
  EXPECT_EQ(out.results[1].error, ErrorCode::kDeadlineExceeded);
}

TEST(ServeProtocol, StatsAndErrorResponsesRoundTrip) {
  StatsResponse stats;
  stats.ticks = 42;
  stats.results_ready = 3;
  TenantStats t;
  t.tenant = 1;
  t.disrupted = true;
  t.open = 2;
  t.submitted = 10;
  t.answered = 7;
  t.failed = 1;
  t.epochs_rearmed = 5;
  t.fabric_bytes = 123456;
  stats.tenants.push_back(t);
  const Response out = must_decode(encode_stats_ok(stats));
  EXPECT_EQ(out.stats.ticks, 42u);
  ASSERT_EQ(out.stats.tenants.size(), 1u);
  EXPECT_TRUE(out.stats.tenants[0].disrupted);
  EXPECT_EQ(out.stats.tenants[0].epochs_rearmed, 5u);
  EXPECT_EQ(out.stats.tenants[0].fabric_bytes, 123456u);

  const Response err = must_decode(
      encode_error(Op::kSubmit, Error{ErrorCode::kQueueFull, "full"}));
  ASSERT_TRUE(err.error.has_value());
  EXPECT_EQ(err.error->code, ErrorCode::kQueueFull);
  EXPECT_EQ(err.error->message, "full");
}

TEST(ServeProtocol, MalformedPayloadsDecodeToErrorsNotExceptions) {
  // Empty payload, unknown opcode, truncation, trailing garbage: each is a
  // typed decode error — the wire boundary never throws.
  EXPECT_FALSE(decode_request({}).has_value());
  const Bytes unknown{0x09};
  EXPECT_FALSE(decode_request(unknown).has_value());

  Bytes truncated = encode_submit(count_request(0, 10));
  truncated.resize(truncated.size() / 2);
  const Expected<Request> trunc = decode_request(truncated);
  ASSERT_FALSE(trunc.has_value());
  EXPECT_EQ(trunc.error().code, ErrorCode::kInvalidArgument);

  Bytes trailing = encode_poll(1);
  trailing.push_back(0xff);
  EXPECT_FALSE(decode_request(trailing).has_value());

  Bytes bad_response = encode_submit_ok(7);
  bad_response.resize(3);
  EXPECT_FALSE(decode_response(bad_response).has_value());
}

// --- fd framing ---

TEST(ServeProtocol, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const Bytes sent = encode_submit(count_request(2, 99));
  ASSERT_TRUE(write_frame(fds[1], sent));
  Bytes got;
  EXPECT_EQ(read_frame(fds[0], got), FrameStatus::kOk);
  EXPECT_EQ(got, sent);

  // Clean close between frames is EOF, not an error.
  close(fds[1]);
  EXPECT_EQ(read_frame(fds[0], got), FrameStatus::kEof);
  close(fds[0]);
}

TEST(ServeProtocol, OversizedAndTornFramesAreErrors) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Length prefix far beyond kMaxFrameBytes: the stream is unsynchronized.
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(write(fds[1], huge, sizeof huge), 4);
  Bytes got;
  EXPECT_EQ(read_frame(fds[0], got), FrameStatus::kError);

  // A frame whose payload is cut off mid-way is an error, not a hang.
  const std::uint8_t torn[6] = {8, 0, 0, 0, 0xab, 0xcd};
  ASSERT_EQ(write(fds[1], torn, sizeof torn), 6);
  close(fds[1]);
  EXPECT_EQ(read_frame(fds[0], got), FrameStatus::kError);
  close(fds[0]);
}

// --- daemon semantics (direct request API: deterministic, no sockets) ---

TEST(ServeDaemon, TenantIsolationBitIdenticalWithAndWithoutNeighbors) {
  // Tenant 1's answers must not depend on what tenant 0 is doing: drive
  // the same tenant-1 sequence with busy and idle neighbors and compare
  // records bit-for-bit.
  Daemon busy(small_options(2));
  Daemon idle(small_options(2));
  for (int i = 0; i < 3; ++i) {
    (void)must_submit(busy, count_request(0, 1100 + 40 * i));  // neighbor load
    (void)must_submit(busy, count_request(1, 1300 + 10 * i));
    (void)must_submit(idle, count_request(1, 1300 + 10 * i));
  }
  const std::vector<ResultRecord> busy_all = settle_and_poll(busy);
  const std::vector<ResultRecord> idle_all = settle_and_poll(idle);

  std::vector<ResultRecord> busy_t1;
  for (const ResultRecord& r : busy_all)
    if (r.tenant == 1) busy_t1.push_back(r);
  ASSERT_EQ(busy_t1.size(), 3u);
  ASSERT_EQ(idle_all.size(), 3u);
  for (std::size_t i = 0; i < busy_t1.size(); ++i) {
    EXPECT_EQ(busy_t1[i].request_id, idle_all[i].request_id);
    ASSERT_TRUE(busy_t1[i].answered);
    ASSERT_TRUE(idle_all[i].answered);
    EXPECT_EQ(busy_t1[i].estimate, idle_all[i].estimate);  // bit-identical
    EXPECT_EQ(busy_t1[i].executions, idle_all[i].executions);
  }
}

TEST(ServeDaemon, TenantsSeeTheirOwnReadings) {
  // The same MAX query against two tenants reports each tenant's own
  // sensor state — the readings are deliberately tenant-perturbed.
  Daemon daemon(small_options(2));
  SubmitRequest max0;
  max0.tenant = 0;
  max0.kind = EngineQueryKind::kMax;
  SubmitRequest max1 = max0;
  max1.tenant = 1;
  (void)must_submit(daemon, max0);
  (void)must_submit(daemon, max1);
  const std::vector<ResultRecord> results = settle_and_poll(daemon);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].answered);
  ASSERT_TRUE(results[1].answered);
  EXPECT_NE(results[0].estimate, results[1].estimate);
}

TEST(ServeDaemon, BitIdenticalAcrossThreadPools) {
  // The engine determinism contract survives the daemon multiplexer: the
  // same request/tick sequence on a serial and a wide pool yields
  // bit-identical result streams, disrupted tenant included.
  std::vector<std::vector<ResultRecord>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    Daemon daemon(small_options(3, /*adversary_tenants=*/1), &pool);
    for (int i = 0; i < 9; ++i) {
      SubmitRequest r = count_request(static_cast<std::uint32_t>(i) % 3,
                                      1200 + 17 * (i % 4));
      if (i % 3 == 2) {
        r.kind = EngineQueryKind::kSum;
      } else if (i % 3 == 1) {
        r.kind = EngineQueryKind::kMin;
      }
      (void)must_submit(daemon, r);
    }
    runs.push_back(settle_and_poll(daemon));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].request_id, runs[1][i].request_id);
    ASSERT_EQ(runs[0][i].answered, runs[1][i].answered);
    if (runs[0][i].answered) {
      EXPECT_EQ(runs[0][i].estimate, runs[1][i].estimate);  // bit-identical
    }
    EXPECT_EQ(runs[0][i].executions, runs[1][i].executions);
    EXPECT_EQ(runs[0][i].epoch_id, runs[1][i].epoch_id);
  }
}

TEST(ServeDaemon, ShutdownDrainsInFlightAndLatchesClosed) {
  Daemon daemon(small_options(2));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(
        must_submit(daemon, count_request(static_cast<std::uint32_t>(i) % 2,
                                          1100 + 100 * i)));
  // No ticks ran: every query is still in flight when SHUTDOWN arrives.
  ASSERT_EQ(daemon.open_total(), 4u);
  Request shutdown;
  shutdown.op = Op::kShutdown;
  const Response drained = must_decode(daemon.handle_request(shutdown));
  ASSERT_EQ(drained.results.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(drained.results[i].answered, true)
        << "query " << i << " not settled by the shutdown drain";
  }
  EXPECT_TRUE(daemon.shutting_down());
  EXPECT_EQ(daemon.open_total(), 0u);

  // The daemon is latched: post-shutdown submissions are refused.
  Request late;
  late.op = Op::kSubmit;
  late.submit = count_request(0, 1200);
  const Response refused = must_decode(daemon.handle_request(late));
  ASSERT_TRUE(refused.error.has_value());
  EXPECT_EQ(refused.error->code, ErrorCode::kUnavailable);
}

TEST(ServeDaemon, RejectsUnknownTenantAndMalformedPayloads) {
  Daemon daemon(small_options(1));
  Request bad;
  bad.op = Op::kSubmit;
  bad.submit = count_request(7, 0);
  const Response refused = must_decode(daemon.handle_request(bad));
  ASSERT_TRUE(refused.error.has_value());
  EXPECT_EQ(refused.error->code, ErrorCode::kInvalidArgument);

  const Bytes junk{0x01, 0x02};  // SUBMIT opcode, truncated body
  const Response err = must_decode(daemon.handle_payload(junk));
  EXPECT_EQ(err.op, Op::kSubmit);
  ASSERT_TRUE(err.error.has_value());
  EXPECT_EQ(err.error->code, ErrorCode::kInvalidArgument);
}

TEST(ServeDaemon, StatsTrackSubmissionsAndDisruptedTenants) {
  Daemon daemon(small_options(2, /*adversary_tenants=*/1));
  (void)must_submit(daemon, count_request(0, 1200));
  (void)must_submit(daemon, count_request(1, 1200));
  const std::vector<ResultRecord> results = settle_and_poll(daemon);
  ASSERT_EQ(results.size(), 2u);

  Request stats;
  stats.op = Op::kStats;
  const Response out = must_decode(daemon.handle_request(stats));
  ASSERT_EQ(out.stats.tenants.size(), 2u);
  EXPECT_TRUE(out.stats.tenants[0].disrupted);
  EXPECT_FALSE(out.stats.tenants[1].disrupted);
  for (const TenantStats& t : out.stats.tenants) {
    EXPECT_EQ(t.submitted, 1u);
    EXPECT_EQ(t.open, 0u);
    EXPECT_GT(t.fabric_bytes, 0u);
  }
  // The choked tenant paid for its disruption; the clean one did not.
  EXPECT_GT(out.stats.tenants[0].disrupted_executions, 0u);
  EXPECT_EQ(out.stats.tenants[1].disrupted_executions, 0u);
}

// --- full session over a socketpair ---

TEST(ServeSession, ClientDrivesDaemonOverSocketpair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Daemon daemon(small_options(2, /*adversary_tenants=*/1));
  int daemon_rc = -1;
  std::thread server(
      [&daemon, &fds, &daemon_rc] { daemon_rc = daemon.run(fds[1], fds[1]); });
  ServeClient client(fds[0], fds[0]);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto id = client.submit(
        count_request(static_cast<std::uint32_t>(i) % 2, 1150 + 25 * i));
    ASSERT_TRUE(id.has_value()) << id.error().to_string();
    ids.push_back(*id);
  }
  std::vector<ResultRecord> results;
  while (results.size() < ids.size()) {
    const auto batch = client.poll(0);
    ASSERT_TRUE(batch.has_value()) << batch.error().to_string();
    results.insert(results.end(), batch.value().begin(), batch.value().end());
  }
  for (const ResultRecord& r : results)
    EXPECT_TRUE(r.answered) << "request " << r.request_id;

  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats.value().tenants.size(), 2u);

  const auto rest = client.shutdown();
  ASSERT_TRUE(rest.has_value());
  EXPECT_TRUE(rest.value().empty());  // everything was already polled
  server.join();
  EXPECT_EQ(daemon_rc, 0);
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace vmat::serve
