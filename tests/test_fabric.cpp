// Fabric and secure-network mechanics: slotted delivery, physics
// constraints, capacity, accounting, arena payload lifetime, the honest
// receive discipline, and the large-n memory-diet structures (ParentTable
// CSR, pooled AuditLog chains, streaming allocation policy).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/audit.h"
#include "core/coordinator.h"
#include "core/phase_state.h"
#include "helpers.h"
#include "sim/fabric.h"
#include "sim/network.h"

namespace vmat {
namespace {

Bytes copy_of(std::span<const std::uint8_t> payload) {
  return Bytes(payload.begin(), payload.end());
}

Envelope plain(NodeId from, NodeId to, std::uint8_t tag) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.edge_key = KeyIndex{0};
  e.payload = {tag};
  return e;
}

TEST(Fabric, DeliversAfterEndSlotOnly) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 7)));
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload[0], 7);
  // Drained: second take is empty.
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
}

TEST(Fabric, RefusesNonNeighborTransmission) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  EXPECT_FALSE(fabric.send(plain(NodeId{0}, NodeId{2}, 1)));
  EXPECT_EQ(fabric.frames_dropped(), 1u);
}

TEST(Fabric, SpoofedSenderStillBoundByPhysics) {
  const auto topo = Topology::line(3);  // 0-1-2
  Fabric fabric(&topo);
  // Node 2 claims to be node 0 but can only reach its own neighbor 1.
  EXPECT_TRUE(fabric.send_as(NodeId{2}, plain(NodeId{0}, NodeId{1}, 9)));
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, NodeId{0});  // the lie is preserved on the frame
  // But it cannot reach node 0's other side directly... (line: 0 has only
  // neighbor 1, so sending "to 0" from 2 fails).
  EXPECT_FALSE(fabric.send_as(NodeId{2}, plain(NodeId{0}, NodeId{0}, 9)));
}

TEST(Fabric, CapacityLimitsPerSlotAndResets) {
  const auto topo = Topology::star_of_chains(4, 1);  // hub 0 with 4 leaves
  Fabric fabric(&topo, 2);
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{2}, 2)));
  EXPECT_FALSE(fabric.send(plain(NodeId{0}, NodeId{3}, 3)));  // over budget
  fabric.end_slot();
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{3}, 3)));  // fresh slot
}

TEST(Fabric, ByteAccounting) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  Envelope e = plain(NodeId{0}, NodeId{1}, 5);
  e.payload = Bytes(10, 0xaa);
  ASSERT_TRUE(fabric.send(e));
  fabric.end_slot();
  EXPECT_EQ(fabric.bytes_sent(NodeId{0}), 30u);  // 20 overhead + 10 payload
  EXPECT_EQ(fabric.bytes_received(NodeId{1}), 30u);
  EXPECT_EQ(fabric.total_bytes(), 30u);
}

TEST(SlotArena, StoreReturnsStableCopyAndResetKeepsCapacity) {
  SlotArena arena;
  const Bytes a(100, 0x11);
  const Bytes b(5000, 0x22);  // forces a second chunk
  const auto sa = arena.store(a);
  const auto sb = arena.store(b);
  EXPECT_EQ(copy_of(sa), a);
  EXPECT_EQ(copy_of(sb), b);
  EXPECT_EQ(arena.used(), a.size() + b.size());
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, arena.used());
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);  // rewound, not freed
  // Refilling after reset reuses the same chunks: capacity is unchanged.
  (void)arena.store(a);
  (void)arena.store(b);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Fabric, PayloadSpansStayValidThroughDeliverySlot) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  Bytes payload(64, 0xab);
  {
    Envelope e = plain(NodeId{0}, NodeId{1}, 0);
    e.payload = payload;
    ASSERT_TRUE(fabric.send(e));
  }
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  // New sends land in the *other* arena, so the delivered span survives a
  // full slot of fresh traffic.
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(fabric.send(plain(NodeId{1}, NodeId{2},
                                  static_cast<std::uint8_t>(i))));
  EXPECT_EQ(copy_of(inbox[0].payload), payload);
}

TEST(Fabric, ArenaCapacityDoesNotShrinkAcrossSlots) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  for (int slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
    fabric.end_slot();
    (void)fabric.take_inbox(NodeId{1});
  }
  const std::size_t cap = fabric.arena_capacity();
  EXPECT_GT(cap, 0u);
  for (int slot = 0; slot < 16; ++slot) {
    ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 2)));
    EXPECT_LE(fabric.collect_arena_used(), cap);
    fabric.end_slot();
    (void)fabric.take_inbox(NodeId{1});
    // Same traffic every slot: steady state allocates nothing new.
    EXPECT_EQ(fabric.arena_capacity(), cap);
  }
}

TEST(Fabric, TracedBytesMatchFabricAccounting) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  TraceState state;
  fabric.set_tracer(Tracer(&state));
  ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  Envelope big = plain(NodeId{1}, NodeId{2}, 2);
  big.payload = Bytes(77, 0x55);
  ASSERT_TRUE(fabric.send(big));
  fabric.end_slot();
  // The flight recorder's byte counters and the fabric's accounting both
  // derive from the one frame_size()/kFrameOverheadBytes definition.
  EXPECT_EQ(state.metrics.totals().bytes_sent, fabric.total_bytes());
  EXPECT_EQ(fabric.total_bytes(), (20u + 1u) + (20u + 77u));
}

TEST(Fabric, ResetDropsInFlightAndInboxes) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  fabric.reset();
  fabric.end_slot();
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
}

// --- large-n memory-diet structures ---

TEST(ParentTable, FromNestedKeepsVectorOfVectorsSemantics) {
  std::vector<std::vector<ParentLink>> rows(5);
  rows[0] = {{NodeId{7}, KeyIndex{3}}};
  rows[2] = {{NodeId{1}, KeyIndex{9}},
             {NodeId{4}, KeyIndex{2}},
             {NodeId{1}, KeyIndex{9}}};  // duplicates preserved
  rows[4] = {{NodeId{0}, KeyIndex{0}}};
  const auto expected = rows;  // copy before from_nested consumes them

  const ParentTable table = ParentTable::from_nested(std::move(rows));
  ASSERT_EQ(table.size(), expected.size());
  for (std::size_t id = 0; id < expected.size(); ++id) {
    const auto row = table[id];
    ASSERT_EQ(row.size(), expected[id].size()) << "node " << id;
    for (std::size_t k = 0; k < row.size(); ++k)
      EXPECT_EQ(row[k], expected[id][k]) << "node " << id << " link " << k;
  }
  EXPECT_THROW((void)table[expected.size()], std::out_of_range);
}

TEST(ParentTable, RestoreRoundTripsAndRejectsCorruptOffsets) {
  std::vector<std::vector<ParentLink>> rows(3);
  rows[1] = {{NodeId{2}, KeyIndex{5}}, {NodeId{9}, KeyIndex{1}}};
  const ParentTable original = ParentTable::from_nested(std::move(rows));

  ParentTable restored;
  restored.restore(original.offsets(), original.links());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t id = 0; id < original.size(); ++id) {
    const auto a = original[id];
    const auto b = restored[id];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }

  // offsets.back() must equal links.size(); a truncated link pool is the
  // snapshot-corruption shape this guards against.
  ParentTable corrupt;
  EXPECT_THROW(corrupt.restore(original.offsets(), {}),
               std::invalid_argument);
}

TEST(ParentTable, FromTaggedMatchesFromNested) {
  // Two shards owning contiguous id ranges ([0,2) and [2,4)), links staged
  // in record order within each shard — the phase drivers' invariant.
  std::vector<std::vector<ParentTable::Tagged>> bufs(2);
  bufs[0] = {{1, {NodeId{8}, KeyIndex{4}}},
             {0, {NodeId{5}, KeyIndex{7}}},
             {1, {NodeId{6}, KeyIndex{2}}}};
  bufs[1] = {{3, {NodeId{2}, KeyIndex{0}}},
             {3, {NodeId{7}, KeyIndex{9}}}};

  std::vector<std::vector<ParentLink>> rows(4);
  for (const auto& buf : bufs)
    for (const auto& e : buf) rows[e.node].push_back(e.link);

  const ParentTable tagged = ParentTable::from_tagged(4, bufs);
  const ParentTable nested = ParentTable::from_nested(std::move(rows));
  ASSERT_EQ(tagged.size(), nested.size());
  EXPECT_EQ(tagged.offsets(), nested.offsets());
  EXPECT_EQ(tagged.links(), nested.links());
}

TEST(AuditLog, PooledChainsPreserveArrivalOrderAcrossShardPlans) {
  // The same per-node append sequence through a 1-pool and a 3-pool plan
  // (nodes assigned to shards round-robin, consistently per node). The
  // in-memory pool layout differs; every per-node observation must not.
  constexpr std::uint32_t kNodes = 6;
  const auto fill = [](AuditLog& log, std::size_t shards) {
    log.begin_aggregation(shards);
    for (std::uint32_t step = 0; step < 24; ++step) {
      const NodeId node{step % kNodes};
      const std::size_t shard = shards == 1 ? 0 : node.value % shards;
      ReceivedRecord r;
      r.msg.origin = NodeId{step};
      r.msg.value = static_cast<Reading>(1000 + step);
      r.in_edge = KeyIndex{step};
      r.slot = static_cast<Interval>(1 + step / kNodes);
      log.add_received(shard, node, r);
      if (step % 2 == 0) {
        ForwardRecord f;
        f.msg.origin = NodeId{step};
        f.msg.value = static_cast<Reading>(2000 + step);
        f.out_edge = KeyIndex{100 + step};
        f.parent = NodeId{(step + 1) % kNodes};
        log.add_forwarded(shard, node, f);
      }
    }
  };

  AuditLog one(kNodes), three(kNodes);
  fill(one, 1);
  fill(three, 3);
  for (std::uint32_t id = 0; id < kNodes; ++id) {
    const auto ra = one.received_of(NodeId{id});
    const auto rb = three.received_of(NodeId{id});
    ASSERT_EQ(ra.size(), rb.size()) << "node " << id;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k].msg, rb[k].msg);
      EXPECT_EQ(ra[k].in_edge, rb[k].in_edge);
      EXPECT_EQ(ra[k].slot, rb[k].slot);
    }
    const auto fa = one.forwarded_of(NodeId{id});
    const auto fb = three.forwarded_of(NodeId{id});
    ASSERT_EQ(fa.size(), fb.size()) << "node " << id;
    for (std::size_t k = 0; k < fa.size(); ++k) {
      EXPECT_EQ(fa[k].msg, fb[k].msg);
      EXPECT_EQ(fa[k].out_edge, fb[k].out_edge);
      EXPECT_EQ(fa[k].parent, fb[k].parent);
    }
  }
}

TEST(Fabric, StreamingModeDeliversIdenticalFrames) {
  const auto topo = Topology::line(4);
  Fabric resident(&topo);
  Fabric streaming(&topo);
  streaming.set_streaming(true);

  for (int slot = 0; slot < 3; ++slot) {
    for (std::uint32_t i = 0; i + 1 < 4; ++i) {
      Envelope e = plain(NodeId{i}, NodeId{i + 1},
                         static_cast<std::uint8_t>(slot * 4 + i));
      e.payload.resize(32 + 7 * i, e.payload[0]);
      ASSERT_TRUE(resident.send(e));
      ASSERT_TRUE(streaming.send(e));
    }
    resident.end_slot();
    streaming.end_slot();
    for (std::uint32_t i = 1; i < 4; ++i) {
      const auto a = resident.take_inbox(NodeId{i});
      const auto b = streaming.take_inbox(NodeId{i});
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].from, b[k].from);
        EXPECT_EQ(a[k].to, b[k].to);
        EXPECT_EQ(a[k].edge_key, b[k].edge_key);
        EXPECT_EQ(copy_of(a[k].payload), copy_of(b[k].payload));
      }
    }
  }
  EXPECT_EQ(resident.total_bytes(), streaming.total_bytes());
  EXPECT_EQ(resident.frames_sent(), streaming.frames_sent());
}

TEST(Fabric, StreamingModeRetiresArenaCapacity) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  fabric.set_streaming(true);
  // One fat slot, then quiet slots: resident mode would keep the fat
  // slot's chunks forever; streaming retires them as the slot closes.
  Envelope big = plain(NodeId{0}, NodeId{1}, 1);
  big.payload = Bytes(1 << 16, 0xcd);
  ASSERT_TRUE(fabric.send(big));
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(copy_of(inbox[0].payload), big.payload);  // span still valid
  fabric.end_slot();  // the fat slot's arena is now the retiring one
  fabric.end_slot();
  EXPECT_EQ(fabric.arena_capacity(), 0u);
  // Traffic still flows after full retirement.
  ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 2)));
  fabric.end_slot();
  EXPECT_EQ(fabric.take_inbox(NodeId{1}).size(), 1u);
}

TEST(Fabric, StreamingRunMinMatchesResident) {
  // Full executions under both allocation policies must be bit-identical
  // (this is also the ASan driver for the streaming paths: every frame
  // span is read after the retiring arena was released).
  const auto topo = Topology::grid(6, 6);
  const auto readings = testing::default_readings(36);
  auto run = [&](MemoryMode mode) {
    NetworkSpec cfg = testing::dense_keys();
    cfg.memory_mode = mode;
    Network net(topo, cfg);
    VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
    return coordinator.run_min(readings);
  };
  const auto resident = run(MemoryMode::kResident);
  const auto streaming = run(MemoryMode::kStreaming);
  ASSERT_EQ(resident.kind, OutcomeKind::kResult);
  EXPECT_EQ(resident.kind, streaming.kind);
  EXPECT_EQ(resident.trigger, streaming.trigger);
  EXPECT_EQ(resident.minima, streaming.minima);
  EXPECT_EQ(resident.data_rounds, streaming.data_rounds);
  EXPECT_EQ(resident.fabric_bytes, streaming.fabric_bytes);
  EXPECT_TRUE(resident.metrics == streaming.metrics);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net_(Topology::line(4),
             {.keys = {.pool_size = 60, .ring_size = 40, .seed = 2},
              .revocation_threshold = 0}) {}

  Network net_;
};

TEST_F(NetworkTest, SecureSendIsReceivedValid) {
  const Bytes payload{1, 2, 3};
  ASSERT_TRUE(net_.send_secure(NodeId{0}, NodeId{1}, payload));
  net_.fabric().end_slot();
  const auto got = net_.receive_valid(NodeId{1});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(copy_of(got[0].payload), payload);
}

TEST_F(NetworkTest, TamperedFrameRejected) {
  const Bytes payload{1, 2, 3};
  const auto key = net_.usable_edge_key(NodeId{0}, NodeId{1});
  ASSERT_TRUE(key.has_value());
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = *key;
  e.payload = payload;
  e.edge_mac = compute_mac(net_.keys().pool_key(*key), payload);
  e.payload[0] ^= 1;  // tamper after MAC
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, WrongKeyClaimRejected) {
  // Claim a key the receiver does not hold.
  KeyIndex absent{0};
  for (std::uint32_t k = 0; k < 60; ++k) {
    if (!net_.keys().ring(NodeId{1}).contains(KeyIndex{k})) {
      absent = KeyIndex{k};
      break;
    }
  }
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = absent;
  e.payload = {9};
  e.edge_mac = compute_mac(net_.keys().pool_key(absent), e.payload);
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, RevokedKeyRejectedAndFallbackUsed) {
  const auto first = net_.usable_edge_key(NodeId{0}, NodeId{1});
  ASSERT_TRUE(first.has_value());
  (void)net_.revocation().revoke_key(*first);
  const auto second = net_.usable_edge_key(NodeId{0}, NodeId{1});
  // Dense rings here: a fallback shared key exists and differs.
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);

  // Frames MAC'd with the revoked key are dropped on receive.
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = *first;
  e.payload = {1};
  e.edge_mac = compute_mac(net_.keys().pool_key(*first), e.payload);
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, BroadcastSecureHitsAllUsableNeighbors) {
  const Bytes payload{5};
  const auto sent = net_.broadcast_secure(NodeId{1}, payload);
  EXPECT_EQ(sent, net_.usable_neighbors(NodeId{1}).size());
  net_.fabric().end_slot();
  EXPECT_EQ(net_.receive_valid(NodeId{0}).size(), 1u);
  EXPECT_EQ(net_.receive_valid(NodeId{2}).size(), 1u);
}

}  // namespace
}  // namespace vmat
