// Fabric and secure-network mechanics: slotted delivery, physics
// constraints, capacity, accounting, arena payload lifetime, and the honest
// receive discipline.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/fabric.h"
#include "sim/network.h"

namespace vmat {
namespace {

Bytes copy_of(std::span<const std::uint8_t> payload) {
  return Bytes(payload.begin(), payload.end());
}

Envelope plain(NodeId from, NodeId to, std::uint8_t tag) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.edge_key = KeyIndex{0};
  e.payload = {tag};
  return e;
}

TEST(Fabric, DeliversAfterEndSlotOnly) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 7)));
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload[0], 7);
  // Drained: second take is empty.
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
}

TEST(Fabric, RefusesNonNeighborTransmission) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  EXPECT_FALSE(fabric.send(plain(NodeId{0}, NodeId{2}, 1)));
  EXPECT_EQ(fabric.frames_dropped(), 1u);
}

TEST(Fabric, SpoofedSenderStillBoundByPhysics) {
  const auto topo = Topology::line(3);  // 0-1-2
  Fabric fabric(&topo);
  // Node 2 claims to be node 0 but can only reach its own neighbor 1.
  EXPECT_TRUE(fabric.send_as(NodeId{2}, plain(NodeId{0}, NodeId{1}, 9)));
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, NodeId{0});  // the lie is preserved on the frame
  // But it cannot reach node 0's other side directly... (line: 0 has only
  // neighbor 1, so sending "to 0" from 2 fails).
  EXPECT_FALSE(fabric.send_as(NodeId{2}, plain(NodeId{0}, NodeId{0}, 9)));
}

TEST(Fabric, CapacityLimitsPerSlotAndResets) {
  const auto topo = Topology::star_of_chains(4, 1);  // hub 0 with 4 leaves
  Fabric fabric(&topo, 2);
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{2}, 2)));
  EXPECT_FALSE(fabric.send(plain(NodeId{0}, NodeId{3}, 3)));  // over budget
  fabric.end_slot();
  EXPECT_TRUE(fabric.send(plain(NodeId{0}, NodeId{3}, 3)));  // fresh slot
}

TEST(Fabric, ByteAccounting) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  Envelope e = plain(NodeId{0}, NodeId{1}, 5);
  e.payload = Bytes(10, 0xaa);
  ASSERT_TRUE(fabric.send(e));
  fabric.end_slot();
  EXPECT_EQ(fabric.bytes_sent(NodeId{0}), 30u);  // 20 overhead + 10 payload
  EXPECT_EQ(fabric.bytes_received(NodeId{1}), 30u);
  EXPECT_EQ(fabric.total_bytes(), 30u);
}

TEST(SlotArena, StoreReturnsStableCopyAndResetKeepsCapacity) {
  SlotArena arena;
  const Bytes a(100, 0x11);
  const Bytes b(5000, 0x22);  // forces a second chunk
  const auto sa = arena.store(a);
  const auto sb = arena.store(b);
  EXPECT_EQ(copy_of(sa), a);
  EXPECT_EQ(copy_of(sb), b);
  EXPECT_EQ(arena.used(), a.size() + b.size());
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, arena.used());
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), cap);  // rewound, not freed
  // Refilling after reset reuses the same chunks: capacity is unchanged.
  (void)arena.store(a);
  (void)arena.store(b);
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(Fabric, PayloadSpansStayValidThroughDeliverySlot) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  Bytes payload(64, 0xab);
  {
    Envelope e = plain(NodeId{0}, NodeId{1}, 0);
    e.payload = payload;
    ASSERT_TRUE(fabric.send(e));
  }
  fabric.end_slot();
  const auto inbox = fabric.take_inbox(NodeId{1});
  ASSERT_EQ(inbox.size(), 1u);
  // New sends land in the *other* arena, so the delivered span survives a
  // full slot of fresh traffic.
  for (int i = 0; i < 32; ++i)
    ASSERT_TRUE(fabric.send(plain(NodeId{1}, NodeId{2},
                                  static_cast<std::uint8_t>(i))));
  EXPECT_EQ(copy_of(inbox[0].payload), payload);
}

TEST(Fabric, ArenaCapacityDoesNotShrinkAcrossSlots) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  for (int slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
    fabric.end_slot();
    (void)fabric.take_inbox(NodeId{1});
  }
  const std::size_t cap = fabric.arena_capacity();
  EXPECT_GT(cap, 0u);
  for (int slot = 0; slot < 16; ++slot) {
    ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 2)));
    EXPECT_LE(fabric.collect_arena_used(), cap);
    fabric.end_slot();
    (void)fabric.take_inbox(NodeId{1});
    // Same traffic every slot: steady state allocates nothing new.
    EXPECT_EQ(fabric.arena_capacity(), cap);
  }
}

TEST(Fabric, TracedBytesMatchFabricAccounting) {
  const auto topo = Topology::line(3);
  Fabric fabric(&topo);
  TraceState state;
  fabric.set_tracer(Tracer(&state));
  ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  Envelope big = plain(NodeId{1}, NodeId{2}, 2);
  big.payload = Bytes(77, 0x55);
  ASSERT_TRUE(fabric.send(big));
  fabric.end_slot();
  // The flight recorder's byte counters and the fabric's accounting both
  // derive from the one frame_size()/kFrameOverheadBytes definition.
  EXPECT_EQ(state.metrics.totals().bytes_sent, fabric.total_bytes());
  EXPECT_EQ(fabric.total_bytes(), (20u + 1u) + (20u + 77u));
}

TEST(Fabric, ResetDropsInFlightAndInboxes) {
  const auto topo = Topology::line(2);
  Fabric fabric(&topo);
  ASSERT_TRUE(fabric.send(plain(NodeId{0}, NodeId{1}, 1)));
  fabric.reset();
  fabric.end_slot();
  EXPECT_TRUE(fabric.take_inbox(NodeId{1}).empty());
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net_(Topology::line(4),
             {.keys = {.pool_size = 60, .ring_size = 40, .seed = 2},
              .revocation_threshold = 0}) {}

  Network net_;
};

TEST_F(NetworkTest, SecureSendIsReceivedValid) {
  const Bytes payload{1, 2, 3};
  ASSERT_TRUE(net_.send_secure(NodeId{0}, NodeId{1}, payload));
  net_.fabric().end_slot();
  const auto got = net_.receive_valid(NodeId{1});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(copy_of(got[0].payload), payload);
}

TEST_F(NetworkTest, TamperedFrameRejected) {
  const Bytes payload{1, 2, 3};
  const auto key = net_.usable_edge_key(NodeId{0}, NodeId{1});
  ASSERT_TRUE(key.has_value());
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = *key;
  e.payload = payload;
  e.edge_mac = compute_mac(net_.keys().pool_key(*key), payload);
  e.payload[0] ^= 1;  // tamper after MAC
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, WrongKeyClaimRejected) {
  // Claim a key the receiver does not hold.
  KeyIndex absent{0};
  for (std::uint32_t k = 0; k < 60; ++k) {
    if (!net_.keys().ring(NodeId{1}).contains(KeyIndex{k})) {
      absent = KeyIndex{k};
      break;
    }
  }
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = absent;
  e.payload = {9};
  e.edge_mac = compute_mac(net_.keys().pool_key(absent), e.payload);
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, RevokedKeyRejectedAndFallbackUsed) {
  const auto first = net_.usable_edge_key(NodeId{0}, NodeId{1});
  ASSERT_TRUE(first.has_value());
  (void)net_.revocation().revoke_key(*first);
  const auto second = net_.usable_edge_key(NodeId{0}, NodeId{1});
  // Dense rings here: a fallback shared key exists and differs.
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);

  // Frames MAC'd with the revoked key are dropped on receive.
  Envelope e;
  e.from = NodeId{0};
  e.to = NodeId{1};
  e.edge_key = *first;
  e.payload = {1};
  e.edge_mac = compute_mac(net_.keys().pool_key(*first), e.payload);
  ASSERT_TRUE(net_.fabric().send(e));
  net_.fabric().end_slot();
  EXPECT_TRUE(net_.receive_valid(NodeId{1}).empty());
}

TEST_F(NetworkTest, BroadcastSecureHitsAllUsableNeighbors) {
  const Bytes payload{5};
  const auto sent = net_.broadcast_secure(NodeId{1}, payload);
  EXPECT_EQ(sent, net_.usable_neighbors(NodeId{1}).size());
  net_.fabric().end_slot();
  EXPECT_EQ(net_.receive_valid(NodeId{0}).size(), 1u);
  EXPECT_EQ(net_.receive_valid(NodeId{2}).size(), 1u);
}

}  // namespace
}  // namespace vmat
