// Copy-on-write snapshot tests: a fork (snapshot_after_formation +
// resume_from) must be bit-identical to the execute() that would have run
// the same prefix — same stats, same trace stream, for any thread count —
// and a re-armed epoch must continue the live nonce/ordinal streams. The
// SnapshotParallel suite runs concurrent forks and is picked up by the
// sanitizer CI matrix (ctest -R 'Parallel|ThreadPool|TrialSeed').
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engine/engine.h"
#include "helpers.h"
#include "sim/snapshot.h"
#include "util/parallel.h"

namespace vmat {
namespace {

using testing::default_readings;
using testing::dense_keys;
using testing::revocations_sound;
using testing::true_min;

void expect_same_outcome(const ExecutionOutcome& a, const ExecutionOutcome& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.trigger, b.trigger);
  EXPECT_EQ(a.minima, b.minima);
  EXPECT_EQ(a.revoked_keys, b.revoked_keys);
  EXPECT_EQ(a.revoked_sensors, b.revoked_sensors);
  EXPECT_EQ(a.data_rounds, b.data_rounds);
  EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
  EXPECT_TRUE(a.metrics == b.metrics);
}

/// Per-trial readings so forked trials are distinct queries, not reruns.
std::vector<Reading> trial_readings(std::uint32_t n, std::size_t trial) {
  std::vector<Reading> readings(n);
  for (std::uint32_t i = 0; i < n; ++i)
    readings[i] = 100 + static_cast<Reading>((i * 13 + trial * 101) % 500);
  return readings;
}

/// Pin VMAT_SNAPSHOT for one test and restore the previous value after.
class SnapshotEnvGuard {
 public:
  explicit SnapshotEnvGuard(const char* value) {
    if (const char* prev = std::getenv("VMAT_SNAPSHOT")) {
      had_ = true;
      prev_ = prev;
    }
    setenv("VMAT_SNAPSHOT", value, 1);
  }
  ~SnapshotEnvGuard() {
    if (had_)
      setenv("VMAT_SNAPSHOT", prev_.c_str(), 1);
    else
      unsetenv("VMAT_SNAPSHOT");
  }

 private:
  bool had_{false};
  std::string prev_;
};

/// Override intra-execution threads for one test, restoring the default.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t threads) {
    set_intra_execution_threads(threads);
  }
  ~ScopedThreads() { set_intra_execution_threads(0); }
};

TEST(Snapshot, ForkMatchesScratchBitIdentical) {
  const auto topo = Topology::grid(6, 6);
  const auto readings = default_readings(36);

  FlightRecorder scratch_rec;
  Network scratch_net(topo, dense_keys());
  VmatCoordinator scratch(&scratch_net, nullptr, CoordinatorSpec{});
  scratch.set_recorder(&scratch_rec);
  const auto want = scratch.run_min(readings);
  ASSERT_EQ(want.kind, OutcomeKind::kResult);
  EXPECT_EQ(want.minima[0], true_min(scratch_net, readings));

  Network fork_net(topo, dense_keys());
  VmatCoordinator forker(&fork_net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = forker.snapshot_after_formation();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.kind(), SnapshotKind::kExecutionPrefix);
  EXPECT_EQ(snapshot.node_count(), 36u);

  // Attached after the capture, the recorder receives the replayed prefix
  // plus the live query phases: one complete stream, equal to scratch's.
  FlightRecorder fork_rec;
  forker.set_recorder(&fork_rec);
  const auto got = forker.resume_min(snapshot, readings);

  expect_same_outcome(want, got);
  EXPECT_EQ(scratch_rec.events(), fork_rec.events());
}

TEST(Snapshot, RepeatedForksFromOneSnapshotAreIdentical) {
  Network net(Topology::grid(6, 6), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = coordinator.snapshot_after_formation();

  const auto readings = default_readings(36);
  const auto first = coordinator.resume_min(snapshot, readings);
  const auto second = coordinator.resume_min(snapshot, readings);
  expect_same_outcome(first, second);

  // Forks are real per-trial work: a different query reads differently.
  auto other = readings;
  other[3] = 42;
  const auto third = coordinator.resume_min(snapshot, other);
  ASSERT_EQ(third.kind, OutcomeKind::kResult);
  EXPECT_EQ(third.minima[0], 42);
  EXPECT_EQ(first.minima[0], 101);
}

TEST(Snapshot, ForkOnSeparateDeploymentMatches) {
  const auto topo = Topology::grid(6, 6);
  Network net_a(topo, dense_keys());
  VmatCoordinator a(&net_a, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = a.snapshot_after_formation();

  // A compatible twin deployment (same topology/keys/config) restores the
  // buffer captured elsewhere — the fan-out sharing mode.
  Network net_b(topo, dense_keys());
  VmatCoordinator b(&net_b, nullptr, CoordinatorSpec{});

  const auto readings = default_readings(36);
  const auto from_a = a.resume_min(snapshot, readings);
  const auto from_b = b.resume_min(snapshot, readings);
  expect_same_outcome(from_a, from_b);
}

TEST(Snapshot, DivergentStrategiesMatchScratch) {
  const auto topo = Topology::grid(5, 5);
  const std::unordered_set<NodeId> malicious{NodeId{7}, NodeId{12}};
  const auto readings = default_readings(25);

  auto make_strategy = [](int which) -> std::unique_ptr<AdversaryStrategy> {
    switch (which) {
      case 0: return std::make_unique<SilentDropStrategy>();
      case 1: return std::make_unique<ValueDropStrategy>();
      case 2: return std::make_unique<ChokeVetoStrategy>();
      default: return std::make_unique<SelfVetoStrategy>(Reading{1});
    }
  };

  // One snapshot, formed under the factory strategy; every PolicyStrategy
  // shares the honest tree-slot behavior, so the prefix is strategy-blind.
  Network fork_net(topo, dense_keys());
  Adversary factory_adv(&fork_net, malicious, make_strategy(0));
  VmatCoordinator forker(&fork_net, &factory_adv, CoordinatorSpec{});
  const Snapshot snapshot = forker.snapshot_after_formation();

  for (int which = 0; which < 4; ++which) {
    Network scratch_net(topo, dense_keys());
    Adversary scratch_adv(&scratch_net, malicious, make_strategy(which));
    VmatCoordinator scratch(&scratch_net, &scratch_adv, CoordinatorSpec{});
    const auto want = scratch.run_min(readings);

    Adversary fork_adv(&fork_net, malicious, make_strategy(which));
    forker.set_adversary(&fork_adv);
    const auto got = forker.resume_min(snapshot, readings);

    expect_same_outcome(want, got);
    if (got.kind == OutcomeKind::kRevocation) {
      EXPECT_TRUE(revocations_sound(fork_net, malicious));
    }
  }
  forker.set_adversary(&factory_adv);
}

TEST(Snapshot, ForkStreamIsThreadCountInvariant) {
  const auto topo = Topology::grid(6, 6);
  const auto readings = default_readings(36);

  Network net(topo, dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = coordinator.snapshot_after_formation();

  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);

  std::vector<std::vector<TraceEvent>> streams;
  std::vector<ExecutionOutcome> outcomes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScopedThreads scoped(threads);
    recorder.clear();
    outcomes.push_back(coordinator.resume_min(snapshot, readings));
    streams.push_back(recorder.events());
  }
  coordinator.set_recorder(nullptr);

  expect_same_outcome(outcomes[0], outcomes[1]);
  EXPECT_EQ(streams[0], streams[1]);
}

TEST(Snapshot, ResumeRejectsEmptySnapshot) {
  Network net(Topology::grid(4, 4), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  EXPECT_THROW((void)coordinator.resume_min(Snapshot{}, default_readings(16)),
               std::invalid_argument);
}

TEST(Snapshot, ResumeRejectsIncompatibleDeployment) {
  const auto topo = Topology::grid(5, 5);
  Network net_a(topo, dense_keys());
  VmatCoordinator a(&net_a, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = a.snapshot_after_formation();

  // Different key-ring seed: same node count, different deployment
  // identity — the fingerprint check must refuse the restore.
  Network net_b(topo, dense_keys(/*theta=*/0, /*seed=*/9999));
  VmatCoordinator b(&net_b, nullptr, CoordinatorSpec{});
  EXPECT_THROW((void)b.resume_min(snapshot, default_readings(25)),
               std::invalid_argument);
}

/// Rewrite the first occurrence of the 4-byte little-endian section tag
/// `from` inside the snapshot buffer to `to`. The Snapshot API is
/// deliberately opaque, so the tamper goes through data()'s span.
void retag_section(const Snapshot& snapshot, std::uint32_t from,
                   std::uint32_t to) {
  const auto view = snapshot.data();
  auto* bytes = const_cast<std::uint8_t*>(view.data());
  std::uint8_t needle[4], replacement[4];
  std::memcpy(needle, &from, 4);
  std::memcpy(replacement, &to, 4);
  for (std::size_t i = 0; i + 4 <= view.size(); ++i) {
    if (std::memcmp(bytes + i, needle, 4) == 0) {
      std::memcpy(bytes + i, replacement, 4);
      return;
    }
  }
  FAIL() << "section tag not found in snapshot buffer";
}

TEST(Snapshot, ResumeRejectsPreDietSectionLayout) {
  // The memory diet changed the tree and audit section encodings (CSR
  // offsets + pooled chains) and renamed their tags TREE→TRE2, AUDT→AUD2.
  // A snapshot carrying a pre-diet tag must be refused as layout skew, not
  // misparsed: forward compatibility here is a clean error.
  constexpr std::uint32_t kTre2 = 0x54524532;  // "TRE2" (current)
  constexpr std::uint32_t kTree = 0x54524545;  // "TREE" (pre-diet)
  constexpr std::uint32_t kAud2 = 0x41554432;  // "AUD2" (current)
  constexpr std::uint32_t kAudt = 0x41554454;  // "AUDT" (pre-diet)

  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const auto readings = default_readings(25);

  Snapshot stale_tree = coordinator.snapshot_after_formation();
  retag_section(stale_tree, kTre2, kTree);
  EXPECT_THROW((void)coordinator.resume_min(stale_tree, readings),
               std::invalid_argument);

  Snapshot stale_audit = coordinator.snapshot_after_formation();
  retag_section(stale_audit, kAud2, kAudt);
  EXPECT_THROW((void)coordinator.resume_min(stale_audit, readings),
               std::invalid_argument);

  // The untampered twin still resumes — the rejections above are the tag
  // checks firing, not collateral corruption.
  const Snapshot good = coordinator.snapshot_after_formation();
  EXPECT_EQ(coordinator.resume_min(good, readings).kind,
            OutcomeKind::kResult);
}

TEST(Snapshot, RestoreRejectsStaleKeyMaterial) {
  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = coordinator.snapshot_after_formation();

  // Re-keying with the *same* spec keeps the fingerprint but bumps the
  // key generation: the captured state references retired key material.
  net.rekey(dense_keys().keys);
  EXPECT_THROW((void)coordinator.resume_min(snapshot, default_readings(25)),
               std::invalid_argument);
}

TEST(Snapshot, EnvEscapeHatchDisablesRearm) {
  const SnapshotEnvGuard guard("0");
  EXPECT_FALSE(snapshots_enabled());

  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  (void)coordinator.prepare_epoch();

  // Stale the epoch without a revocation; with VMAT_SNAPSHOT=0 no epoch
  // snapshot was captured, so re-arming must refuse and leave the stale
  // epoch to prepare_epoch().
  const auto one_shot = coordinator.run_min(default_readings(25));
  ASSERT_EQ(one_shot.kind, OutcomeKind::kResult);
  EXPECT_FALSE(coordinator.epoch_ready());
  EXPECT_FALSE(coordinator.rearm_epoch());

  // Explicit forks still work — they just stop sharing (every capture is
  // private), which is the bench escape-hatch mode.
  Network fork_net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator forker(&fork_net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = forker.snapshot_after_formation();
  const auto out = forker.resume_min(snapshot, default_readings(25));
  EXPECT_EQ(out.kind, OutcomeKind::kResult);
}

TEST(Snapshot, RearmContinuesEpochOrdinalsAndResults) {
  const std::uint32_t n = 25;
  Network net(Topology::grid(5, 5), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  FlightRecorder recorder;
  coordinator.set_recorder(&recorder);

  const auto readings = default_readings(n);
  std::vector<std::vector<Reading>> values(n);
  std::vector<std::vector<std::int64_t>> weights(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }

  (void)coordinator.prepare_epoch();
  const auto served = coordinator.run_query(values, weights);
  ASSERT_EQ(served.kind, OutcomeKind::kResult);

  // An intervening one-shot execution stales the epoch without touching
  // revocations — exactly the case re-arming exists for.
  const auto one_shot = coordinator.run_min(readings);
  ASSERT_EQ(one_shot.kind, OutcomeKind::kResult);
  ASSERT_FALSE(coordinator.epoch_ready());

  ASSERT_TRUE(coordinator.rearm_epoch());
  EXPECT_TRUE(coordinator.epoch_ready());
  EXPECT_EQ(coordinator.epoch().id, 2u);

  const auto reserved = coordinator.run_query(values, weights);
  ASSERT_EQ(reserved.kind, OutcomeKind::kResult);
  EXPECT_EQ(reserved.minima, served.minima);
  coordinator.set_recorder(nullptr);

  // The replayed kEpochBegin continues the live epoch ordinal stream
  // (0 for the formed epoch, 1 for the re-armed one) — no rewinds.
  std::vector<std::int64_t> epoch_ordinals;
  for (const TraceEvent& e : recorder.events())
    if (e.kind == TraceEventKind::kEpochBegin) epoch_ordinals.push_back(e.value);
  EXPECT_EQ(epoch_ordinals, (std::vector<std::int64_t>{0, 1}));
}

TEST(Snapshot, EngineRearmsStaleEpochWithoutRevocation) {
  Network net(Topology::grid(6, 6), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  Engine engine(&coordinator);

  EngineQuery query;
  query.kind = EngineQueryKind::kMin;
  query.raw = default_readings(36);

  const auto first = engine.run_batch({query});
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(first[0].answered());
  EXPECT_EQ(first[0].estimate.value(), 101.0);
  EXPECT_EQ(engine.stats().epochs_formed, 1u);
  EXPECT_EQ(engine.stats().epochs_rearmed, 0u);

  // Stale the epoch (one-shot execution between serving rounds), then
  // serve again: the engine re-arms from the epoch snapshot instead of
  // paying another announcement + tree formation.
  const auto one_shot = coordinator.run_min(default_readings(36));
  ASSERT_EQ(one_shot.kind, OutcomeKind::kResult);

  const auto second = engine.run_batch({query});
  ASSERT_EQ(second.size(), 1u);
  ASSERT_TRUE(second[0].answered());
  EXPECT_EQ(second[0].estimate.value(), 101.0);
  EXPECT_EQ(engine.stats().epochs_formed, 1u);
  EXPECT_EQ(engine.stats().epochs_rearmed, 1u);

  const auto& rollups = engine.epoch_rollups();
  ASSERT_EQ(rollups.size(), 2u);
  EXPECT_FALSE(rollups[0].rearmed);
  EXPECT_TRUE(rollups[1].rearmed);
  EXPECT_EQ(rollups[1].formation_rounds, 0);
  EXPECT_EQ(rollups[1].formation_bytes, 0u);
}

TEST(Snapshot, EngineReformsAfterRevocation) {
  Network net(Topology::grid(6, 6), dense_keys());
  VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
  Engine engine(&coordinator);

  EngineQuery query;
  query.kind = EngineQueryKind::kMin;
  query.raw = default_readings(36);

  (void)engine.run_batch({query});
  ASSERT_EQ(engine.stats().epochs_formed, 1u);

  // A revocation invalidates the formed tree: re-arming must refuse (the
  // snapshot references a pre-revocation membership) and the engine falls
  // back to a full prepare_epoch().
  (void)net.revocation().revoke_sensor(NodeId{5});
  EXPECT_FALSE(coordinator.epoch_ready());
  EXPECT_FALSE(coordinator.rearm_epoch());

  const auto after = engine.run_batch({query});
  ASSERT_EQ(after.size(), 1u);
  ASSERT_TRUE(after[0].answered());
  EXPECT_EQ(after[0].estimate.value(), 101.0);
  EXPECT_EQ(engine.stats().epochs_formed, 2u);
  EXPECT_EQ(engine.stats().epochs_rearmed, 0u);
  ASSERT_EQ(engine.epoch_rollups().size(), 2u);
  EXPECT_FALSE(engine.epoch_rollups()[1].rearmed);
}

// Named for the sanitizer CI matrix: `ctest -R 'Parallel|ThreadPool|...'`
// runs this suite under -DVMAT_SANITIZE=thread.
TEST(SnapshotParallel, ConcurrentForksAreIsolated) {
  const auto topo = Topology::grid(6, 6);
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kTrialsPerWorker = 3;

  // Scratch expectations, computed serially.
  std::vector<ExecutionOutcome> want(kWorkers * kTrialsPerWorker);
  for (std::size_t trial = 0; trial < want.size(); ++trial) {
    Network net(topo, dense_keys());
    VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
    want[trial] = coordinator.run_min(trial_readings(36, trial));
  }

  // One shared snapshot; each worker forks it on a private deployment.
  Network capture_net(topo, dense_keys());
  VmatCoordinator capturer(&capture_net, nullptr, CoordinatorSpec{});
  const Snapshot snapshot = capturer.snapshot_after_formation();

  std::vector<ExecutionOutcome> got(want.size());
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Network net(topo, dense_keys());
      VmatCoordinator coordinator(&net, nullptr, CoordinatorSpec{});
      for (std::size_t i = 0; i < kTrialsPerWorker; ++i) {
        const std::size_t trial = w * kTrialsPerWorker + i;
        got[trial] = coordinator.resume_min(snapshot, trial_readings(36, trial));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (std::size_t trial = 0; trial < want.size(); ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_same_outcome(want[trial], got[trial]);
  }
}

// Runtime twin of the vmat-analyze `snapshot-field-coverage` rule (see
// tools/fixtures/analyze/snapshot_coverage_bad.cpp for the static fixture):
// a serializer that omits a mutable field silently resurrects post-capture
// state on restore. The drifting pair shows the corruption the rule exists
// to catch; the covered pair shows the fix restoring bit-exact state.
struct DriftingTally {
  std::uint64_t applied{0};
  std::uint64_t dropped{0};

  // The buggy pair: `dropped` never enters the buffer.
  void save_drifting(SnapshotWriter& w) const { w.pod(applied); }
  void load_drifting(SnapshotReader& r) { r.pod(applied); }

  // The covered pair: every mutable field round-trips.
  void save_covered(SnapshotWriter& w) const {
    w.pod(applied);
    w.pod(dropped);
  }
  void load_covered(SnapshotReader& r) {
    r.pod(applied);
    r.pod(dropped);
  }
};

TEST(Snapshot, OmittedFieldDriftsAcrossRestore) {
  DriftingTally tally;
  tally.applied = 3;
  tally.dropped = 7;

  SnapshotWriter w;
  tally.save_drifting(w);
  const Bytes image = w.take();

  // Post-capture mutation that a restore must undo.
  tally.applied = 100;
  tally.dropped = 100;

  SnapshotReader r(image);
  tally.load_drifting(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(tally.applied, 3u);    // serialized: restored to capture time
  EXPECT_EQ(tally.dropped, 100u);  // omitted: post-capture value leaks through
  EXPECT_NE(tally.dropped, 7u);    // the restored object != the captured one
}

TEST(Snapshot, CoveredFieldsRestoreBitExact) {
  DriftingTally tally;
  tally.applied = 3;
  tally.dropped = 7;

  SnapshotWriter w;
  tally.save_covered(w);
  const Bytes image = w.take();

  tally.applied = 100;
  tally.dropped = 100;

  SnapshotReader r(image);
  tally.load_covered(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(tally.applied, 3u);
  EXPECT_EQ(tally.dropped, 7u);
}

}  // namespace
}  // namespace vmat
