// Tree-formation tests: timestamp levels equal BFS depth in honest runs;
// parents are recorded with usable edge keys; the wormhole attack breaks
// hop-count trees but not timestamp trees (Section IV-A / Figure 2).
#include <gtest/gtest.h>

#include "core/tree_formation.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

TreeResult form(Network& net, Adversary* adv, TreeMode mode, Level L,
                std::uint64_t session = 1) {
  TreePhaseParams params;
  params.mode = mode;
  params.depth_bound = L;
  params.session = session;
  return run_tree_formation(net, adv, params);
}

TEST(TreeFormation, TimestampLevelsEqualBfsDepthWithoutAdversary) {
  Network net(Topology::grid(6, 5), dense_keys());
  const Level L = net.physical_depth();
  const auto tree = form(net, nullptr, TreeMode::kTimestamp, L);
  const auto depth = net.topology().bfs_depth();
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    EXPECT_EQ(tree.level[id], depth[id]) << "node " << id;
}

TEST(TreeFormation, HopCountLevelsEqualBfsDepthWithoutAdversary) {
  Network net(Topology::grid(6, 5), dense_keys());
  const Level L = net.physical_depth();
  const auto tree = form(net, nullptr, TreeMode::kHopCount, L);
  const auto depth = net.topology().bfs_depth();
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    EXPECT_EQ(tree.level[id], depth[id]) << "node " << id;
}

TEST(TreeFormation, ParentsAreOneLevelUpAndKeyed) {
  Network net(Topology::random_geometric(120, 0.18, 5), dense_keys());
  const Level L = net.physical_depth();
  const auto tree = form(net, nullptr, TreeMode::kTimestamp, L);
  for (std::uint32_t id = 1; id < net.node_count(); ++id) {
    ASSERT_TRUE(tree.has_valid_level(NodeId{id})) << "node " << id;
    ASSERT_FALSE(tree.parents[id].empty());
    for (const ParentLink& p : tree.parents[id]) {
      EXPECT_EQ(tree.level[p.claimed_id.value], tree.level[id] - 1);
      // The child holds the edge key it accepted the frame with.
      EXPECT_TRUE(net.keys().ring(NodeId{id}).contains(p.edge_key));
      EXPECT_TRUE(net.keys().ring(p.claimed_id).contains(p.edge_key));
    }
  }
}

TEST(TreeFormation, MultiParentRecordingForMultipath) {
  // In a grid, interior nodes usually hear the flood from several
  // same-level-minus-one neighbors in the same slot.
  Network net(Topology::grid(5, 5), dense_keys());
  const auto tree = form(net, nullptr, TreeMode::kTimestamp,
                         net.physical_depth());
  std::size_t multi = 0;
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    if (tree.parents[id].size() > 1) ++multi;
  EXPECT_GT(multi, 0u);
}

TEST(TreeFormation, WormholeBreaksHopCountTree) {
  // Line topology with malicious node 3: it forges hop count 50 in slot 1,
  // giving its honest neighbors levels > L.
  Network net(Topology::line(10), dense_keys());
  const Level L = net.physical_depth();
  Adversary adv(&net, {NodeId{3}},
                std::make_unique<WormholeStrategy>(50));
  const auto tree = form(net, &adv, TreeMode::kHopCount, L);
  std::size_t invalid = 0;
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    if (!tree.has_valid_level(NodeId{id})) ++invalid;
  // Everything behind the wormhole got a poisoned (>= 51) level.
  EXPECT_GT(invalid, 0u);
}

TEST(TreeFormation, WormholeHarmlessAgainstTimestampTree) {
  Network net(Topology::line(10), dense_keys());
  const Level L = net.physical_depth();
  Adversary adv(&net, {NodeId{3}},
                std::make_unique<WormholeStrategy>(50));
  const auto tree = form(net, &adv, TreeMode::kTimestamp, L);
  for (std::uint32_t id = 1; id < net.node_count(); ++id)
    EXPECT_TRUE(tree.has_valid_level(NodeId{id})) << "node " << id;
}

TEST(TreeFormation, SilentMaliciousCutDelaysButBoundsLevels) {
  // Grid with a few silent malicious nodes: honest non-partitioned sensors
  // still level within L as long as L covers the honest detour depth.
  const auto topo = Topology::grid(6, 6);
  const auto malicious = choose_malicious(topo, 4, 99);
  Network net(topo, dense_keys());
  const Level L = topo.depth(malicious);  // depth excluding malicious
  Adversary adv(&net, malicious, std::make_unique<SilentDropStrategy>());
  const auto tree = form(net, &adv, TreeMode::kTimestamp, L);
  const auto honest_depth = topo.bfs_depth(malicious);
  for (std::uint32_t id = 1; id < net.node_count(); ++id) {
    if (malicious.contains(NodeId{id})) continue;
    ASSERT_NE(honest_depth[id], kNoLevel);
    EXPECT_TRUE(tree.has_valid_level(NodeId{id})) << "node " << id;
    EXPECT_LE(tree.level[id], L);
    // Timestamp level can never beat the honest shortest path.
    EXPECT_GE(tree.level[id], 1);
  }
}

TEST(TreeFormation, StaleSessionFramesIgnored) {
  Network net(Topology::line(4), dense_keys());
  const auto t1 = form(net, nullptr, TreeMode::kTimestamp, 3, /*session=*/10);
  EXPECT_TRUE(t1.has_valid_level(NodeId{3}));
  // New session: old levels do not leak.
  const auto t2 = form(net, nullptr, TreeMode::kTimestamp, 3, /*session=*/11);
  EXPECT_EQ(t2.session, 11u);
  EXPECT_TRUE(t2.has_valid_level(NodeId{3}));
}

TEST(TreeFormation, RejectsZeroDepthBound) {
  Network net(Topology::line(3), dense_keys());
  TreePhaseParams params;
  params.depth_bound = 0;
  EXPECT_THROW((void)run_tree_formation(net, nullptr, params),
               std::invalid_argument);
}

TEST(TreeFormation, PassthroughAdversaryActsHonest) {
  Network net(Topology::grid(4, 4), dense_keys());
  const Level L = net.physical_depth();
  Adversary adv(&net, {NodeId{5}}, std::make_unique<NullStrategy>());
  const auto tree = form(net, &adv, TreeMode::kTimestamp, L);
  const auto depth = net.topology().bfs_depth();
  for (std::uint32_t id = 0; id < net.node_count(); ++id)
    EXPECT_EQ(tree.level[id], depth[id]);
}

}  // namespace
}  // namespace vmat
