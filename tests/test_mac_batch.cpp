// Multi-buffer HMAC correctness: every MacBatch kernel (scalar, SHA-NI x2,
// AVX2 x8, auto dispatch) must agree bit-for-bit with the one-shot
// MacContext::compute across message lengths that hit every padding and
// block-count edge of SHA-256, for batch sizes that exercise full SIMD
// groups, partial groups, and single-lane tails.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/mac.h"
#include "crypto/mac_batch.h"

namespace vmat {
namespace {

SymmetricKey key_of(std::uint8_t fill) {
  SymmetricKey k;
  k.bytes.fill(fill);
  return k;
}

Bytes message_of(std::size_t length, std::uint8_t seed) {
  Bytes m(length, 0);
  for (std::size_t i = 0; i < length; ++i)
    m[i] = static_cast<std::uint8_t>(seed + 31 * i);
  return m;
}

/// SHA-256 padding edges: empty, below/at/over the 55-byte single-block
/// padding boundary, exact block, just past a block, and multi-block.
constexpr std::size_t kLengths[] = {0, 1, 20, 55, 56, 63, 64, 65,
                                    119, 120, 128, 333, 1024};

class MacBatchImpls : public ::testing::TestWithParam<MacBatch::Impl> {
 protected:
  void SetUp() override { MacBatch::set_impl(GetParam()); }
  void TearDown() override { MacBatch::set_impl(MacBatch::Impl::kAuto); }
};

TEST_P(MacBatchImpls, MatchesOneShotAcrossLengths) {
  std::vector<MacContext> contexts;
  std::vector<Bytes> messages;
  for (std::size_t i = 0; i < std::size(kLengths); ++i) {
    contexts.emplace_back(key_of(static_cast<std::uint8_t>(i + 1)));
    messages.push_back(message_of(kLengths[i], static_cast<std::uint8_t>(i)));
  }
  MacBatch batch;
  for (std::size_t i = 0; i < contexts.size(); ++i)
    EXPECT_EQ(batch.add(contexts[i], messages[i]), i);
  batch.compute();
  const auto macs = batch.macs();
  ASSERT_EQ(macs.size(), contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i)
    EXPECT_EQ(macs[i], contexts[i].compute(messages[i]))
        << "lane " << i << " (length " << kLengths[i] << ")";
}

TEST_P(MacBatchImpls, EveryBatchWidthUpToThreeSimdGroups) {
  // 1..24 lanes: covers single-lane tails, one partial AVX2 group, exact
  // x8/x2 groups, and several full groups with a remainder.
  const MacContext context(key_of(0x5a));
  for (std::size_t width = 1; width <= 24; ++width) {
    MacBatch batch;
    std::vector<Bytes> messages;
    for (std::size_t i = 0; i < width; ++i)
      messages.push_back(message_of(7 * i, static_cast<std::uint8_t>(width)));
    for (const auto& m : messages) (void)batch.add(context, m);
    batch.compute();
    for (std::size_t i = 0; i < width; ++i)
      EXPECT_EQ(batch.macs()[i], context.compute(messages[i]))
          << "width " << width << " lane " << i;
  }
}

TEST_P(MacBatchImpls, ClearAndReuseKeepsResultsCorrect) {
  const MacContext a(key_of(1));
  const MacContext b(key_of(2));
  const Bytes ma = message_of(40, 9);
  const Bytes mb = message_of(80, 10);
  MacBatch batch;
  (void)batch.add(a, ma);
  batch.compute();
  EXPECT_EQ(batch.macs()[0], a.compute(ma));
  batch.clear();
  EXPECT_TRUE(batch.empty());
  (void)batch.add(b, mb);
  (void)batch.add(a, ma);
  batch.compute();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.macs()[0], b.compute(mb));
  EXPECT_EQ(batch.macs()[1], a.compute(ma));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, MacBatchImpls,
                         ::testing::Values(MacBatch::Impl::kAuto,
                                           MacBatch::Impl::kScalar,
                                           MacBatch::Impl::kShaNiX2,
                                           MacBatch::Impl::kAvx2X8),
                         [](const auto& info) {
                           switch (info.param) {
                             case MacBatch::Impl::kAuto: return "Auto";
                             case MacBatch::Impl::kScalar: return "Scalar";
                             case MacBatch::Impl::kShaNiX2: return "ShaNiX2";
                             case MacBatch::Impl::kAvx2X8: return "Avx2X8";
                           }
                           return "Unknown";
                         });

TEST(MacBatch, ForcedUnsupportedKernelFallsBackToScalar) {
  // set_impl() promises a silent fallback at compute() time when the CPU
  // lacks the forced kernel; active_impl() reports the kernel actually used
  // and results stay correct either way. (Exercised for real on hardware
  // without SHA-NI/AVX2; elsewhere this pins the reporting contract.)
  for (const auto forced :
       {MacBatch::Impl::kShaNiX2, MacBatch::Impl::kAvx2X8}) {
    MacBatch::set_impl(forced);
    const auto active = MacBatch::active_impl();
    EXPECT_TRUE(active == forced || active == MacBatch::Impl::kScalar);
    const MacContext context(key_of(0x33));
    const Bytes m = message_of(100, 4);
    MacBatch batch;
    (void)batch.add(context, m);
    batch.compute();
    EXPECT_EQ(batch.macs()[0], context.compute(m));
  }
  MacBatch::set_impl(MacBatch::Impl::kAuto);
  EXPECT_NE(MacBatch::active_impl(), MacBatch::Impl::kAuto);  // resolved
}

TEST(MacBatch, EmptyComputeIsANoOp) {
  MacBatch batch;
  batch.compute();
  EXPECT_TRUE(batch.macs().empty());
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace vmat
