// Self-test for tools/vmat_lint.py: runs the linter as a subprocess on the
// fixture files under tools/fixtures/ and asserts exact rule hits (rule
// name + line) on the bad fixtures, a clean pass on the clean/suppressed
// fixtures, and the documented exit codes.
//
// VMAT_PYTHON and VMAT_SOURCE_DIR are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct LintResult {
  int exit_code;
  std::string output;

  [[nodiscard]] bool mentions(const std::string& needle) const {
    return output.find(needle) != std::string::npos;
  }

  /// Count of reported violations for `rule` (lines matching "[rule]").
  [[nodiscard]] int count(const std::string& rule) const {
    const std::string tag = "[" + rule + "]";
    int n = 0;
    for (std::size_t pos = output.find(tag); pos != std::string::npos;
         pos = output.find(tag, pos + tag.size()))
      ++n;
    return n;
  }
};

LintResult run_lint(const std::string& args) {
  const std::string cmd = std::string(VMAT_PYTHON) + " " + VMAT_SOURCE_DIR +
                          "/tools/vmat_lint.py --root " + VMAT_SOURCE_DIR +
                          " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  std::string output;
  char buf[512];
  while (pipe != nullptr && std::fgets(buf, sizeof buf, pipe) != nullptr)
    output += buf;
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return LintResult{code, output};
}

TEST(VmatLint, CleanFixturePasses) {
  const auto r = run_lint("tools/fixtures/clean.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(VmatLint, SuppressionsSilenceEveryForm) {
  // suppressed.cpp holds real violations of three rules, each carrying a
  // same-line, previous-line, or file-level allow().
  const auto r = run_lint("tools/fixtures/suppressed.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(VmatLint, RawRngIsFlagged) {
  const auto r = run_lint("tools/fixtures/bad_rand.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("determinism-rng"), 3) << r.output;
  EXPECT_TRUE(r.mentions("bad_rand.cpp:9:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_rand.cpp:14:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_rand.cpp:19:")) << r.output;
}

TEST(VmatLint, DiscardedMacVerifyIsFlagged) {
  const auto r = run_lint("tools/fixtures/bad_discard.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("mac-verify-discarded"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_discard.cpp:12:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_discard.cpp:18:")) << r.output;
}

TEST(VmatLint, KeyMemcpyIsFlagged) {
  // Exactly one hit: the key-material copy, not the plain payload copy.
  const auto r = run_lint("tools/fixtures/bad_memcpy.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("key-memcpy"), 1) << r.output;
  EXPECT_TRUE(r.mentions("bad_memcpy.cpp:13:")) << r.output;
}

TEST(VmatLint, DefaultCaptureInPoolLambdaIsFlagged) {
  const auto r = run_lint("tools/fixtures/bad_capture.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("threadpool-ref-capture"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_capture.cpp:11:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_capture.cpp:15:")) << r.output;
}

TEST(VmatLint, StdoutInSrcIsFlagged) {
  // snprintf into a buffer must not count; cout and printf must.
  const auto r = run_lint("tools/fixtures/src/bad_cout.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("stdout-in-src"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_cout.cpp:9:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_cout.cpp:10:")) << r.output;
}

TEST(VmatLint, TraceSinkStdoutIsSanctioned) {
  // src/trace/ writes the trace-file pointer line directly; the stdout rule
  // carves it out just like core/report and util/stats.
  const auto r = run_lint("tools/fixtures/src/trace/clean_trace_sink.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(VmatLint, ServeDaemonStdoutIsSanctioned) {
  // src/serve/ prints vmatd operator status lines (only when stdout is not
  // the protocol channel); the stdout rule carves the component out just
  // like trace/, core/report and util/stats.
  const auto r = run_lint("tools/fixtures/src/serve/clean_serve_daemon.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(VmatLint, PredicatePurityIsFlagged) {
  // The non-const evaluate(), the member mutation in its body, and the RNG
  // draw in a const evaluate() are flagged; the pure form and the
  // allow()-suppressed form are not.
  const auto r = run_lint("tools/fixtures/src/campaign/bad_predicate_purity.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("predicate-purity"), 3) << r.output;
  EXPECT_TRUE(r.mentions("bad_predicate_purity.cpp:10:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_predicate_purity.cpp:11:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_predicate_purity.cpp:19:")) << r.output;
}

TEST(VmatLint, MissingNodiscardInCryptoHeaderIsFlagged) {
  // The const observer and the free function are flagged; the void mutator
  // and the value-returning non-const mutator are not.
  const auto r = run_lint("tools/fixtures/crypto/bad_nodiscard.h");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("missing-nodiscard"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_nodiscard.h:14:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_nodiscard.h:28:")) << r.output;
}

TEST(VmatLint, EagerRingMaterializationIsFlagged) {
  // The vector-of-KeyRing member and the per-node ring() sweep are
  // flagged; the ring_contains() sweep and the allow()-suppressed sweep
  // are not.
  const auto r = run_lint("tools/fixtures/src/keys_use/bad_eager_rings.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("eager-ring-materialization"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_eager_rings.cpp:9:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_eager_rings.cpp:15:")) << r.output;
}

TEST(VmatLint, HotPathAllocIsFlagged) {
  // The two raw allocations inside per-frame loops are flagged; the
  // allow()-suppressed copy, the allocation outside any frame loop, and
  // the reference binding are not.
  const auto r = run_lint("tools/fixtures/src/sim/bad_hot_alloc.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("hot-path-alloc"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_hot_alloc.cpp:9:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_hot_alloc.cpp:10:")) << r.output;
}

TEST(VmatLint, SnapshotUnsafeStateIsFlagged) {
  // The unordered_map member and the mutable-pointee raw pointer in the
  // snapshot_save()-bearing struct are flagged; the const-pointee pointer,
  // the flat vector, the nested helper's member, and the struct without
  // snapshot_save() are not.
  const auto r = run_lint("tools/fixtures/src/sim/bad_snapshot_state.cpp");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("snapshot-unsafe-state"), 2) << r.output;
  EXPECT_TRUE(r.mentions("bad_snapshot_state.cpp:13:")) << r.output;
  EXPECT_TRUE(r.mentions("bad_snapshot_state.cpp:14:")) << r.output;
}

TEST(VmatLint, WholeFixtureTreeTotals) {
  // One run over the whole fixture tree: totals must be the sum of the
  // per-file expectations above and nothing more.
  const auto r = run_lint("tools/fixtures");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("determinism-rng"), 3) << r.output;
  EXPECT_EQ(r.count("eager-ring-materialization"), 2) << r.output;
  EXPECT_EQ(r.count("mac-verify-discarded"), 2) << r.output;
  EXPECT_EQ(r.count("key-memcpy"), 1) << r.output;
  EXPECT_EQ(r.count("threadpool-ref-capture"), 2) << r.output;
  EXPECT_EQ(r.count("stdout-in-src"), 2) << r.output;
  EXPECT_EQ(r.count("missing-nodiscard"), 2) << r.output;
  EXPECT_EQ(r.count("predicate-purity"), 3) << r.output;
  EXPECT_EQ(r.count("hot-path-alloc"), 2) << r.output;
  EXPECT_EQ(r.count("snapshot-unsafe-state"), 2) << r.output;
  EXPECT_TRUE(r.mentions("21 violation(s)")) << r.output;
}

TEST(VmatLint, RuleFilterRunsOnlyThatRule) {
  const auto r =
      run_lint("--rule determinism-rng tools/fixtures");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.count("determinism-rng"), 3) << r.output;
  EXPECT_EQ(r.count("stdout-in-src"), 0) << r.output;
}

TEST(VmatLint, UnknownRuleIsUsageError) {
  const auto r = run_lint("--rule no-such-rule tools/fixtures");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.mentions("unknown rule")) << r.output;
}

TEST(VmatLint, ListRulesIsSortedAndExitsZero) {
  // The catalog must print every rule in lexicographic order regardless of
  // registration (dict insertion) order, so diffs of CI logs are stable.
  const auto r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const char* rules[] = {
      "determinism-rng",       "eager-ring-materialization",
      "hot-path-alloc",        "key-memcpy",
      "mac-verify-discarded",  "missing-nodiscard",
      "predicate-purity",      "snapshot-unsafe-state",
      "stdout-in-src",         "threadpool-ref-capture"};
  std::size_t pos = 0;
  for (const auto* rule : rules) {
    const std::size_t at = r.output.find(rule, pos);
    ASSERT_NE(at, std::string::npos)
        << rule << " missing or out of order in:\n"
        << r.output;
    pos = at + 1;
  }
}

TEST(VmatLint, RealTreeIsClean) {
  // The shipping sources must satisfy every invariant — this is the same
  // invocation the vmat_lint ctest runs.
  const auto r = run_lint("src bench tests");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
