// MonitorService tests: epoch loop, retry accounting, adversary grind-down
// across epochs, and health statistics.
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "helpers.h"

namespace vmat {
namespace {

using testing::dense_keys;

struct MonitorFixture {
  explicit MonitorFixture(std::unordered_set<NodeId> malicious = {},
                          std::unique_ptr<AdversaryStrategy> strategy = nullptr)
      : net(Topology::grid(5, 5), dense_keys()) {
    if (strategy != nullptr)
      adversary.emplace(&net, std::move(malicious), std::move(strategy));
    CoordinatorSpec cfg;
    cfg.instances = 40;
    cfg.depth_bound = net.physical_depth();
    coordinator = std::make_unique<VmatCoordinator>(
        &net, adversary.has_value() ? &*adversary : nullptr, cfg);
    queries = std::make_unique<QueryEngine>(coordinator.get());
    monitor = std::make_unique<MonitorService>(queries.get(), &net);
  }

  Network net;
  std::optional<Adversary> adversary;
  std::unique_ptr<VmatCoordinator> coordinator;
  std::unique_ptr<QueryEngine> queries;
  std::unique_ptr<MonitorService> monitor;
};

TEST(Monitor, HonestEpochsAnswerWithoutRetries) {
  MonitorFixture fx;
  std::vector<std::uint8_t> predicate(25, 0);
  for (std::uint32_t id = 1; id <= 12; ++id) predicate[id] = 1;
  for (int e = 0; e < 3; ++e) {
    const auto report = fx.monitor->run_count_epoch(predicate);
    EXPECT_TRUE(report.answered());
    EXPECT_EQ(report.disruptions, 0);
    EXPECT_EQ(report.keys_revoked, 0u);
    EXPECT_NEAR(*report.estimate, 12.0, 12.0 * 0.5);
  }
  EXPECT_EQ(fx.monitor->epochs(), 3);
  EXPECT_EQ(fx.monitor->answered_epochs(), 3u);
  EXPECT_EQ(fx.monitor->total_disruptions(), 0);
}

TEST(Monitor, EpochNumbersAndHistoryAccumulate) {
  MonitorFixture fx;
  std::vector<std::int64_t> readings(25, 2);
  readings[0] = 0;
  (void)fx.monitor->run_sum_epoch(readings);
  (void)fx.monitor->run_average_epoch(readings);
  ASSERT_EQ(fx.monitor->history().size(), 2u);
  EXPECT_EQ(fx.monitor->history()[0].epoch, 1);
  EXPECT_EQ(fx.monitor->history()[1].epoch, 2);
}

TEST(Monitor, AdversaryGetsGroundDownAcrossEpochs) {
  const auto topo = Topology::grid(5, 5);
  const auto malicious = choose_malicious(topo, 2, 9);
  MonitorFixture fx(malicious, std::make_unique<SilentDropStrategy>(
                                   LiePolicy::kDenyAll));
  std::vector<std::uint8_t> predicate(25, 1);
  predicate[0] = 0;

  // Early epochs may exhaust their whole retry budget (each retry still
  // revokes a key — progress); once the droppers' key material is burned
  // through, epochs answer instantly and stay clean.
  int total_disruptions = 0;
  bool clean_epoch_seen = false;
  std::size_t previous_keys = 0;
  for (int e = 0; e < 20 && !clean_epoch_seen; ++e) {
    const auto report = fx.monitor->run_count_epoch(predicate);
    total_disruptions += report.disruptions;
    if (!report.answered()) {
      // A budget-exhausted epoch must have revoked one key per retry.
      EXPECT_EQ(report.keys_revoked,
                static_cast<std::size_t>(report.disruptions));
    }
    EXPECT_GE(fx.net.revocation().revoked_key_count(), previous_keys);
    previous_keys = fx.net.revocation().revoked_key_count();
    clean_epoch_seen = report.answered() && report.disruptions == 0;
  }
  EXPECT_TRUE(clean_epoch_seen)
      << "adversary never fully neutralized in 20 epochs";
  EXPECT_EQ(fx.monitor->total_disruptions(), total_disruptions);
  EXPECT_TRUE(testing::revocations_sound(fx.net, malicious));
}

TEST(Monitor, ValidatesConstruction) {
  MonitorFixture fx;
  EXPECT_THROW(MonitorService(nullptr, &fx.net), std::invalid_argument);
  EXPECT_THROW(MonitorService(fx.queries.get(), nullptr),
               std::invalid_argument);
  EXPECT_THROW(MonitorService(fx.queries.get(), &fx.net, {.max_retries_per_epoch = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmat
