// Message codec tests: round trips, malformed-frame rejection, sensor-key
// MAC helpers, and message identity.
#include <gtest/gtest.h>

#include "core/messages.h"

namespace vmat {
namespace {

SymmetricKey test_key(std::uint8_t fill) {
  SymmetricKey k;
  k.bytes.fill(fill);
  return k;
}

TEST(Messages, TreeRoundTrip) {
  const TreeFormationMsg m{0xfeedbeef, 7};
  const auto decoded = decode_tree(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, m);
  EXPECT_EQ(peek_type(encode(m)), MsgType::kTreeFormation);
}

TEST(Messages, AggBundleRoundTrip) {
  AggBundle bundle;
  for (std::uint32_t i = 0; i < 3; ++i) {
    AggMessage m;
    m.origin = NodeId{10 + i};
    m.instance = i;
    m.value = -5 + static_cast<Reading>(i);
    m.weight = i;
    m.mac.bytes.fill(static_cast<std::uint8_t>(i));
    bundle.entries.push_back(m);
  }
  const auto decoded = decode_agg(encode(bundle));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bundle);
}

TEST(Messages, VetoRoundTrip) {
  VetoMsg v;
  v.origin = NodeId{42};
  v.instance = 3;
  v.value = -999;
  v.level = 5;
  v.mac.bytes.fill(0xcd);
  const auto decoded = decode_veto(encode(v));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(Messages, ReplyRoundTrip) {
  PredicateReplyMsg r;
  r.reply.bytes.fill(0x77);
  const auto decoded = decode_reply(encode(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(Messages, CrossTypeDecodeFails) {
  const auto tree_frame = encode(TreeFormationMsg{1, 2});
  EXPECT_FALSE(decode_agg(tree_frame).has_value());
  EXPECT_FALSE(decode_veto(tree_frame).has_value());
  EXPECT_FALSE(decode_reply(tree_frame).has_value());
}

TEST(Messages, TruncatedFrameRejected) {
  auto frame = encode(VetoMsg{});
  frame.pop_back();
  EXPECT_FALSE(decode_veto(frame).has_value());
}

TEST(Messages, TrailingGarbageRejected) {
  auto frame = encode(TreeFormationMsg{1, 2});
  frame.push_back(0);
  EXPECT_FALSE(decode_tree(frame).has_value());
}

TEST(Messages, EmptyAndUnknownFrames) {
  EXPECT_FALSE(peek_type({}).has_value());
  EXPECT_FALSE(peek_type(Bytes{99}).has_value());
  EXPECT_FALSE(decode_tree({}).has_value());
}

TEST(Messages, OversizedBundleCountRejected) {
  ByteWriter w;
  w.u8(2);             // kAggBundle
  w.u32(0xffffffffu);  // absurd count
  EXPECT_FALSE(decode_agg(w.take()).has_value());
}

TEST(Messages, AggMacVerifies) {
  const SymmetricKey key = test_key(1);
  const auto m = make_agg_message(key, NodeId{5}, 2, -7, 0, 0xabc);
  EXPECT_TRUE(verify_agg_message(key, m, 0xabc));
  EXPECT_FALSE(verify_agg_message(key, m, 0xabd));     // wrong nonce
  EXPECT_FALSE(verify_agg_message(test_key(2), m, 0xabc));  // wrong key
  auto tampered = m;
  tampered.value += 1;
  EXPECT_FALSE(verify_agg_message(key, tampered, 0xabc));
  tampered = m;
  tampered.weight += 1;
  EXPECT_FALSE(verify_agg_message(key, tampered, 0xabc));
}

TEST(Messages, VetoMacVerifiesAndBindsLevel) {
  const SymmetricKey key = test_key(3);
  const auto v = make_veto(key, NodeId{9}, 0, -3, 4, 0x123);
  EXPECT_TRUE(verify_veto(key, v, 0x123));
  auto tampered = v;
  tampered.level = 5;
  EXPECT_FALSE(verify_veto(key, tampered, 0x123));
}

TEST(Messages, IdentityDistinguishesMessages) {
  const SymmetricKey key = test_key(4);
  const auto a = make_agg_message(key, NodeId{1}, 0, 5, 0, 1);
  auto b = a;
  EXPECT_EQ(message_identity(a), message_identity(b));
  b.value = 6;
  EXPECT_NE(message_identity(a), message_identity(b));
  b = a;
  b.mac.bytes[0] ^= 1;  // identity covers the MAC too
  EXPECT_NE(message_identity(a), message_identity(b));
}

}  // namespace
}  // namespace vmat
