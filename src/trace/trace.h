// Execution flight recorder.
//
// Every protocol phase, the message fabric, the authenticated-broadcast
// channel, and the revocation registry emit typed events through a Tracer
// handle threaded down from the coordinator. The handle is a single
// pointer: default-constructed it is fully disabled (every emit is one
// predictable branch), bound to a TraceState it meters per-phase counters,
// and with a TraceSink attached it additionally records the full event
// stream — the replayable audit trail the trace-invariant checker
// (trace/checker.h) validates Lemma 1 / Theorem 7 shaped properties over.
//
// Determinism contract: events carry no timestamps and no addresses, only
// protocol state, so a recorded stream is bit-identical for any
// VMAT_THREADS — the same contract the trial engine makes for results.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace vmat {

/// Which protocol phase an event belongs to (Figure 1's boxes, with the
/// authenticated announcements folded into kBroadcast).
enum class TracePhase : std::uint8_t {
  kNone = 0,
  kBroadcast,
  kTreeFormation,
  kAggregation,
  kConfirmation,
  kPinpoint,
};
inline constexpr std::size_t kTracePhaseCount = 6;

[[nodiscard]] const char* to_string(TracePhase phase) noexcept;

enum class TraceEventKind : std::uint8_t {
  kExecutionBegin,   ///< value = execution ordinal within the recording
  kPhaseBegin,       ///< phase field names the phase
  kPhaseEnd,
  kSlotTick,         ///< slot = interval index within the phase
  kSend,             ///< a=sender, b=receiver, key=edge key, bytes=frame size
  kDeliver,          ///< b=receiver, bytes=frame size
  kDrop,             ///< a=sender, b=receiver, bytes; budget/physics drop
  kLoss,             ///< a=sender, b=receiver, bytes; the ether ate it
  kAuthBroadcast,    ///< bytes = payload size; one flooding round
  kMacCompute,       ///< a=node, key (kNoKey = sensor key)
  kMacVerify,        ///< a=subject node, key, ok = verified
  kArrivalAccepted,  ///< a=origin, slot=arrival interval, value
  kArrivalRejected,  ///< a=origin, slot, value; ok always false
  kVeto,             ///< a=actor, b=veto origin, slot; ok: originated (true)
                     ///  or forwarded (false)
  kPredicateTest,    ///< a=sensor (sensor-key test), key (pool-key test), ok
  kPinpointStep,     ///< a=current sensor, key=current edge, value=step,
                     ///  slot=level/interval of the walk
  kKeyRevoked,       ///< key; ok=true for pinpointed, false for ring seed
  kSensorRevoked,    ///< a=node
  kOutcome,          ///< ok=produced_result, value=trigger enum
  kEpochBegin,       ///< value = epoch ordinal; an epoch-formation slice
                     ///  (announcement + tree formation, no query phases)
};

[[nodiscard]] const char* to_string(TraceEventKind kind) noexcept;

/// One flight-recorder event. Field meaning is per-kind (see
/// TraceEventKind); unused fields hold their zero/sentinel defaults.
struct TraceEvent {
  TraceEventKind kind{TraceEventKind::kExecutionBegin};
  TracePhase phase{TracePhase::kNone};
  Interval slot{0};
  NodeId a{};
  NodeId b{};
  KeyIndex key{kNoKey};
  std::uint32_t bytes{0};
  std::int64_t value{0};
  bool ok{true};

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Typed counters for one phase — the structured replacement for the
/// ad-hoc cost tallies that used to live only in ExecutionOutcome.
struct PhaseCounters {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_delivered{0};
  std::uint64_t frames_dropped{0};
  std::uint64_t frames_lost{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t mac_computes{0};
  std::uint64_t mac_verifies{0};
  std::uint64_t mac_failures{0};
  std::uint64_t auth_broadcasts{0};
  std::uint64_t flooding_rounds{0};
  std::uint64_t predicate_tests{0};

  PhaseCounters& operator+=(const PhaseCounters& other) noexcept;

  friend bool operator==(const PhaseCounters&, const PhaseCounters&) = default;
};

/// Per-execution metrics: one PhaseCounters bucket per TracePhase.
struct ExecutionMetrics {
  std::array<PhaseCounters, kTracePhaseCount> phase{};

  [[nodiscard]] PhaseCounters& at(TracePhase p) noexcept {
    return phase[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PhaseCounters& at(TracePhase p) const noexcept {
    return phase[static_cast<std::size_t>(p)];
  }
  /// Sum across phases.
  [[nodiscard]] PhaseCounters totals() const noexcept;

  friend bool operator==(const ExecutionMetrics&,
                         const ExecutionMetrics&) = default;
};

/// Receiver of the recorded stream. on_event only fires while a sink is
/// attached; on_execution_end delivers the finished metrics snapshot.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void on_execution_end(const ExecutionMetrics& metrics) {
    (void)metrics;
  }
};

/// The mutable state a Tracer handle points at. Owned by the coordinator
/// (or a test); shared by every component tracing one execution.
struct TraceState {
  TraceSink* sink{nullptr};
  ExecutionMetrics metrics;
  TracePhase phase{TracePhase::kNone};
  Interval slot{0};
  std::int64_t executions{0};
  std::int64_t epochs{0};
};

/// Zero-cost-when-disabled tracing handle. Copyable by value; a default
/// constructed Tracer ignores every call.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceState* state) noexcept : state_(state) {}

  /// Counters are being collected.
  [[nodiscard]] bool metering() const noexcept { return state_ != nullptr; }
  /// The full event stream is being recorded.
  [[nodiscard]] bool recording() const noexcept {
    return state_ != nullptr && state_->sink != nullptr;
  }
  [[nodiscard]] const ExecutionMetrics* metrics() const noexcept {
    return state_ != nullptr ? &state_->metrics : nullptr;
  }

  /// Reset metrics/phase for a fresh execution and emit kExecutionBegin.
  void begin_execution();
  /// Reset metrics/phase for an epoch-formation slice and emit kEpochBegin.
  /// Epoch slices record announcement + tree formation only; they end with
  /// end_epoch(), not with a kOutcome (an epoch has no query result).
  void begin_epoch();
  /// Close the epoch-formation slice (no kOutcome, no metrics handoff —
  /// the coordinator snapshots Epoch::metrics itself).
  void end_epoch();
  /// Close any open phase and emit kPhaseBegin for `p`.
  void begin_phase(TracePhase p);
  /// Emit kPhaseEnd and fall back to TracePhase::kNone.
  void end_phase();
  /// Emit kOutcome (closing any open phase first) and hand the metrics
  /// snapshot to the sink.
  void end_execution(bool produced_result, std::int64_t trigger);

  // The per-frame/per-MAC methods sit on the simulator's hottest loops, so
  // their metering fast path is inline: one null check plus counter bumps.
  // Only the recording slow path (sink attached) leaves the header.
  void slot_tick(Interval slot) {
    if (state_ == nullptr) return;
    state_->slot = slot;
    if (state_->sink != nullptr) record_slot_tick(slot);
  }
  void frame_sent(NodeId from, NodeId to, KeyIndex key, std::size_t bytes) {
    if (state_ == nullptr) return;
    PhaseCounters& c = counters();
    c.frames_sent += 1;
    c.bytes_sent += bytes;
    if (state_->sink != nullptr) record_frame_sent(from, to, key, bytes);
  }
  void frame_delivered(NodeId to, std::size_t bytes) {
    if (state_ == nullptr) return;
    counters().frames_delivered += 1;
    if (state_->sink != nullptr) record_frame_delivered(to, bytes);
  }
  void frame_dropped(NodeId from, NodeId to, std::size_t bytes) {
    if (state_ == nullptr) return;
    counters().frames_dropped += 1;
    if (state_->sink != nullptr) record_frame_dropped(from, to, bytes);
  }
  void frame_lost(NodeId from, NodeId to, std::size_t bytes) {
    if (state_ == nullptr) return;
    counters().frames_lost += 1;
    if (state_->sink != nullptr) record_frame_lost(from, to, bytes);
  }
  void mac_compute(NodeId node, KeyIndex key) {
    if (state_ == nullptr) return;
    counters().mac_computes += 1;
    if (state_->sink != nullptr) record_mac_compute(node, key);
  }
  void mac_verify(NodeId node, KeyIndex key, bool ok) {
    if (state_ == nullptr) return;
    PhaseCounters& c = counters();
    c.mac_verifies += 1;
    if (!ok) c.mac_failures += 1;
    if (state_->sink != nullptr) record_mac_verify(node, key, ok);
  }

  void auth_broadcast(std::size_t payload_bytes, std::uint64_t receivers);
  void arrival_accepted(NodeId origin, Interval slot, std::int64_t value);
  void arrival_rejected(NodeId origin, Interval slot, std::int64_t value);
  void veto(NodeId actor, NodeId origin, Interval slot, std::int64_t value,
            bool originated);
  void predicate_test(NodeId sensor, KeyIndex pool_key, bool ok);
  void pinpoint_step(NodeId current, KeyIndex edge, std::int64_t step,
                     Interval level);
  void key_revoked(KeyIndex key, bool pinpointed);
  void sensor_revoked(NodeId node);

 private:
  [[nodiscard]] PhaseCounters& counters() noexcept {
    return state_->metrics.at(state_->phase);
  }
  void emit(TraceEvent event);

  // Recording slow paths for the inline metering methods above.
  void record_slot_tick(Interval slot);
  void record_frame_sent(NodeId from, NodeId to, KeyIndex key,
                         std::size_t bytes);
  void record_frame_delivered(NodeId to, std::size_t bytes);
  void record_frame_dropped(NodeId from, NodeId to, std::size_t bytes);
  void record_frame_lost(NodeId from, NodeId to, std::size_t bytes);
  void record_mac_compute(NodeId node, KeyIndex key);
  void record_mac_verify(NodeId node, KeyIndex key, bool ok);

  TraceState* state_{nullptr};

  friend class ShardedTrace;
};

/// Per-shard trace buffering for the level-parallel phase drivers.
///
/// A sharded slot hands each shard its own Tracer: counters accumulate in a
/// private per-shard TraceState, and (when the parent is recording) events
/// buffer in a private sink. After the join, merge() folds the counters
/// into the parent state and replays the buffered events through the parent
/// sink in shard order — shards cover nodes in id order, so the merged
/// stream is the id-ordered stream serial execution produces, bit for bit.
/// With a disabled parent every shard Tracer is disabled too and merge() is
/// a no-op. Construct per sharded slot; shard() handles must not outlive
/// the ShardedTrace.
class ShardedTrace {
 public:
  ShardedTrace(Tracer parent, std::size_t shards);

  /// The buffering Tracer for shard `i`.
  [[nodiscard]] Tracer shard(std::size_t i) noexcept {
    return states_.empty() ? Tracer{} : Tracer(&states_[i]);
  }

  /// Fold shard counters into the parent and replay buffered events in
  /// shard order. Call exactly once, after the join.
  void merge();

 private:
  struct BufferSink final : TraceSink {
    void on_event(const TraceEvent& event) override;
    std::vector<TraceEvent> events;
  };

  Tracer parent_;
  std::vector<TraceState> states_;  // sized in ctor, never resized
  std::vector<BufferSink> sinks_;
};

/// Deployment facts a recorded trace is checked against.
struct TraceContext {
  std::uint32_t nodes{0};
  Level depth_bound{0};
  std::uint32_t ring_size{0};
  std::uint32_t theta{0};
  std::uint32_t instances{1};
  bool slotted_sof{true};
};

/// The standard sink: records every event plus per-execution metrics
/// snapshots, and exports the whole recording as JSON (schema versioned,
/// consumed by tools/check_trace.py and the bench reports).
class FlightRecorder : public TraceSink {
 public:
  void set_context(const TraceContext& context) { context_ = context; }
  [[nodiscard]] const TraceContext& context() const noexcept {
    return context_;
  }

  void on_event(const TraceEvent& event) override;
  void on_execution_end(const ExecutionMetrics& metrics) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<ExecutionMetrics>& execution_metrics()
      const noexcept {
    return execution_metrics_;
  }
  [[nodiscard]] std::size_t execution_count() const noexcept;

  void clear();

  /// Serialise the recording (context, per-execution events + metrics).
  [[nodiscard]] std::string to_json() const;
  /// to_json() to a file; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  TraceContext context_;
  std::vector<TraceEvent> events_;
  std::vector<ExecutionMetrics> execution_metrics_;
};

}  // namespace vmat
