#include "trace/trace.h"

#include <cstdio>
#include <fstream>

namespace vmat {

const char* to_string(TracePhase phase) noexcept {
  switch (phase) {
    case TracePhase::kNone: return "none";
    case TracePhase::kBroadcast: return "broadcast";
    case TracePhase::kTreeFormation: return "tree-formation";
    case TracePhase::kAggregation: return "aggregation";
    case TracePhase::kConfirmation: return "confirmation";
    case TracePhase::kPinpoint: return "pinpoint";
  }
  return "?";
}

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kExecutionBegin: return "exec-begin";
    case TraceEventKind::kPhaseBegin: return "phase-begin";
    case TraceEventKind::kPhaseEnd: return "phase-end";
    case TraceEventKind::kSlotTick: return "slot";
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kDrop: return "drop";
    case TraceEventKind::kLoss: return "loss";
    case TraceEventKind::kAuthBroadcast: return "auth-bcast";
    case TraceEventKind::kMacCompute: return "mac-compute";
    case TraceEventKind::kMacVerify: return "mac-verify";
    case TraceEventKind::kArrivalAccepted: return "accept";
    case TraceEventKind::kArrivalRejected: return "reject";
    case TraceEventKind::kVeto: return "veto";
    case TraceEventKind::kPredicateTest: return "predicate-test";
    case TraceEventKind::kPinpointStep: return "pinpoint-step";
    case TraceEventKind::kKeyRevoked: return "key-revoked";
    case TraceEventKind::kSensorRevoked: return "sensor-revoked";
    case TraceEventKind::kOutcome: return "outcome";
    case TraceEventKind::kEpochBegin: return "epoch-begin";
  }
  return "?";
}

PhaseCounters& PhaseCounters::operator+=(const PhaseCounters& other) noexcept {
  frames_sent += other.frames_sent;
  frames_delivered += other.frames_delivered;
  frames_dropped += other.frames_dropped;
  frames_lost += other.frames_lost;
  bytes_sent += other.bytes_sent;
  mac_computes += other.mac_computes;
  mac_verifies += other.mac_verifies;
  mac_failures += other.mac_failures;
  auth_broadcasts += other.auth_broadcasts;
  flooding_rounds += other.flooding_rounds;
  predicate_tests += other.predicate_tests;
  return *this;
}

PhaseCounters ExecutionMetrics::totals() const noexcept {
  PhaseCounters sum;
  for (const PhaseCounters& c : phase) sum += c;
  return sum;
}

// --- Tracer ---

void Tracer::emit(TraceEvent event) {
  event.phase = state_->phase;
  state_->sink->on_event(event);
}

void Tracer::begin_execution() {
  if (state_ == nullptr) return;
  state_->metrics = ExecutionMetrics{};
  state_->phase = TracePhase::kNone;
  state_->slot = 0;
  const std::int64_t ordinal = state_->executions++;
  if (recording())
    emit({.kind = TraceEventKind::kExecutionBegin, .value = ordinal});
}

void Tracer::begin_epoch() {
  if (state_ == nullptr) return;
  state_->metrics = ExecutionMetrics{};
  state_->phase = TracePhase::kNone;
  state_->slot = 0;
  const std::int64_t ordinal = state_->epochs++;
  if (recording())
    emit({.kind = TraceEventKind::kEpochBegin, .value = ordinal});
}

void Tracer::end_epoch() {
  if (state_ == nullptr) return;
  end_phase();
}

void Tracer::begin_phase(TracePhase p) {
  if (state_ == nullptr) return;
  if (state_->phase != TracePhase::kNone) end_phase();
  state_->phase = p;
  state_->slot = 0;
  if (recording()) emit({.kind = TraceEventKind::kPhaseBegin});
}

void Tracer::end_phase() {
  if (state_ == nullptr || state_->phase == TracePhase::kNone) return;
  if (recording()) emit({.kind = TraceEventKind::kPhaseEnd});
  state_->phase = TracePhase::kNone;
  state_->slot = 0;
}

void Tracer::end_execution(bool produced_result, std::int64_t trigger) {
  if (state_ == nullptr) return;
  end_phase();
  if (recording()) {
    emit({.kind = TraceEventKind::kOutcome,
          .value = trigger,
          .ok = produced_result});
    state_->sink->on_execution_end(state_->metrics);
  }
}

void Tracer::record_slot_tick(Interval slot) {
  emit({.kind = TraceEventKind::kSlotTick, .slot = slot});
}

void Tracer::record_frame_sent(NodeId from, NodeId to, KeyIndex key,
                               std::size_t bytes) {
  emit({.kind = TraceEventKind::kSend,
        .slot = state_->slot,
        .a = from,
        .b = to,
        .key = key,
        .bytes = static_cast<std::uint32_t>(bytes)});
}

void Tracer::record_frame_delivered(NodeId to, std::size_t bytes) {
  emit({.kind = TraceEventKind::kDeliver,
        .slot = state_->slot,
        .b = to,
        .bytes = static_cast<std::uint32_t>(bytes)});
}

void Tracer::record_frame_dropped(NodeId from, NodeId to, std::size_t bytes) {
  emit({.kind = TraceEventKind::kDrop,
        .slot = state_->slot,
        .a = from,
        .b = to,
        .bytes = static_cast<std::uint32_t>(bytes),
        .ok = false});
}

void Tracer::record_frame_lost(NodeId from, NodeId to, std::size_t bytes) {
  emit({.kind = TraceEventKind::kLoss,
        .slot = state_->slot,
        .a = from,
        .b = to,
        .bytes = static_cast<std::uint32_t>(bytes),
        .ok = false});
}

void Tracer::auth_broadcast(std::size_t payload_bytes,
                            std::uint64_t receivers) {
  if (state_ == nullptr) return;
  PhaseCounters& c = counters();
  c.auth_broadcasts += 1;
  c.flooding_rounds += 1;
  if (recording())
    emit({.kind = TraceEventKind::kAuthBroadcast,
          .bytes = static_cast<std::uint32_t>(payload_bytes),
          .value = static_cast<std::int64_t>(receivers)});
}

void Tracer::record_mac_compute(NodeId node, KeyIndex key) {
  emit({.kind = TraceEventKind::kMacCompute,
        .slot = state_->slot,
        .a = node,
        .key = key});
}

void Tracer::record_mac_verify(NodeId node, KeyIndex key, bool ok) {
  emit({.kind = TraceEventKind::kMacVerify,
        .slot = state_->slot,
        .a = node,
        .key = key,
        .ok = ok});
}

void Tracer::arrival_accepted(NodeId origin, Interval slot,
                              std::int64_t value) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kArrivalAccepted,
        .slot = slot,
        .a = origin,
        .value = value});
}

void Tracer::arrival_rejected(NodeId origin, Interval slot,
                              std::int64_t value) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kArrivalRejected,
        .slot = slot,
        .a = origin,
        .value = value,
        .ok = false});
}

void Tracer::veto(NodeId actor, NodeId origin, Interval slot,
                  std::int64_t value, bool originated) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kVeto,
        .slot = slot,
        .a = actor,
        .b = origin,
        .value = value,
        .ok = originated});
}

void Tracer::predicate_test(NodeId sensor, KeyIndex pool_key, bool ok) {
  if (state_ == nullptr) return;
  PhaseCounters& c = counters();
  c.predicate_tests += 1;
  c.flooding_rounds += 2;  // token dissemination + reply flood
  if (recording())
    emit({.kind = TraceEventKind::kPredicateTest,
          .a = sensor,
          .key = pool_key,
          .ok = ok});
}

void Tracer::pinpoint_step(NodeId current, KeyIndex edge, std::int64_t step,
                           Interval level) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kPinpointStep,
        .slot = level,
        .a = current,
        .key = edge,
        .value = step});
}

void Tracer::key_revoked(KeyIndex key, bool pinpointed) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kKeyRevoked, .key = key, .ok = pinpointed});
}

void Tracer::sensor_revoked(NodeId node) {
  if (!recording()) return;
  emit({.kind = TraceEventKind::kSensorRevoked, .a = node});
}

// --- ShardedTrace ---

void ShardedTrace::BufferSink::on_event(const TraceEvent& event) {
  events.push_back(event);
}

ShardedTrace::ShardedTrace(Tracer parent, std::size_t shards)
    : parent_(parent) {
  if (parent_.state_ == nullptr || shards == 0) return;
  states_.resize(shards);
  if (parent_.recording()) sinks_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Phase/slot context copied so shard counters land in the right bucket
    // and buffered events carry the right slot; metrics start zeroed so
    // merge() can add them without double counting.
    states_[s].phase = parent_.state_->phase;
    states_[s].slot = parent_.state_->slot;
    states_[s].sink = sinks_.empty() ? nullptr : &sinks_[s];
  }
}

void ShardedTrace::merge() {
  if (parent_.state_ == nullptr) return;
  for (std::size_t s = 0; s < states_.size(); ++s) {
    for (std::size_t p = 0; p < kTracePhaseCount; ++p)
      parent_.state_->metrics.phase[p] += states_[s].metrics.phase[p];
    states_[s].metrics = ExecutionMetrics{};
    if (!sinks_.empty()) {
      for (const TraceEvent& e : sinks_[s].events)
        parent_.state_->sink->on_event(e);
      sinks_[s].events.clear();
    }
  }
}

// --- FlightRecorder ---

void FlightRecorder::on_event(const TraceEvent& event) {
  events_.push_back(event);
}

void FlightRecorder::on_execution_end(const ExecutionMetrics& metrics) {
  execution_metrics_.push_back(metrics);
}

std::size_t FlightRecorder::execution_count() const noexcept {
  std::size_t n = 0;
  for (const TraceEvent& e : events_)
    if (e.kind == TraceEventKind::kExecutionBegin) ++n;
  return n;
}

void FlightRecorder::clear() {
  events_.clear();
  execution_metrics_.clear();
}

namespace {

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"k\":\"";
  out += to_string(e.kind);
  out += "\",\"ph\":\"";
  out += to_string(e.phase);
  out += "\",\"slot\":";
  out += std::to_string(e.slot);
  out += ",\"a\":";
  append_u64(out, e.a.value);
  out += ",\"b\":";
  append_u64(out, e.b.value);
  out += ",\"key\":";
  // kNoKey serialises as -1 so downstream tools need no sentinel constant.
  out += e.key == kNoKey ? std::string("-1") : std::to_string(e.key.value);
  out += ",\"bytes\":";
  append_u64(out, e.bytes);
  out += ",\"v\":";
  out += std::to_string(e.value);
  out += ",\"ok\":";
  out += e.ok ? "true" : "false";
  out += '}';
}

void append_counters(std::string& out, const PhaseCounters& c) {
  out += "{\"frames_sent\":";
  append_u64(out, c.frames_sent);
  out += ",\"frames_delivered\":";
  append_u64(out, c.frames_delivered);
  out += ",\"frames_dropped\":";
  append_u64(out, c.frames_dropped);
  out += ",\"frames_lost\":";
  append_u64(out, c.frames_lost);
  out += ",\"bytes_sent\":";
  append_u64(out, c.bytes_sent);
  out += ",\"mac_computes\":";
  append_u64(out, c.mac_computes);
  out += ",\"mac_verifies\":";
  append_u64(out, c.mac_verifies);
  out += ",\"mac_failures\":";
  append_u64(out, c.mac_failures);
  out += ",\"auth_broadcasts\":";
  append_u64(out, c.auth_broadcasts);
  out += ",\"flooding_rounds\":";
  append_u64(out, c.flooding_rounds);
  out += ",\"predicate_tests\":";
  append_u64(out, c.predicate_tests);
  out += '}';
}

void append_metrics(std::string& out, const ExecutionMetrics& m) {
  out += '{';
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    out += '"';
    out += to_string(static_cast<TracePhase>(p));
    out += "\":";
    append_counters(out, m.phase[p]);
    out += ',';
  }
  out += "\"totals\":";
  append_counters(out, m.totals());
  out += '}';
}

}  // namespace

std::string FlightRecorder::to_json() const {
  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"trace_version\":2,\"context\":{\"nodes\":";
  append_u64(out, context_.nodes);
  out += ",\"depth_bound\":";
  out += std::to_string(context_.depth_bound);
  out += ",\"ring_size\":";
  append_u64(out, context_.ring_size);
  out += ",\"theta\":";
  append_u64(out, context_.theta);
  out += ",\"instances\":";
  append_u64(out, context_.instances);
  out += ",\"slotted_sof\":";
  out += context_.slotted_sof ? "true" : "false";
  out += "},\"executions\":[";

  // Slice the stream at kExecutionBegin / kEpochBegin markers. Metrics
  // snapshots only exist for execution slices (end_execution pushes them),
  // so they are consumed by a running execution counter, not slice index.
  std::size_t exec = 0;
  std::size_t slices = 0;
  bool open = false;
  bool open_is_execution = false;
  bool first_event = true;
  auto close_slice = [&] {
    out += ']';
    if (open_is_execution && exec < execution_metrics_.size()) {
      out += ",\"metrics\":";
      append_metrics(out, execution_metrics_[exec]);
    }
    if (open_is_execution) ++exec;
    out += '}';
    ++slices;
  };
  for (const TraceEvent& e : events_) {
    const bool is_marker = e.kind == TraceEventKind::kExecutionBegin ||
                           e.kind == TraceEventKind::kEpochBegin;
    if (is_marker) {
      if (open) close_slice();
      if (slices > 0) out += ',';
      open_is_execution = e.kind == TraceEventKind::kExecutionBegin;
      out += "{\"unit\":\"";
      out += open_is_execution ? "execution" : "epoch";
      out += "\",\"events\":[";
      open = true;
      first_event = true;
    }
    if (!open) continue;  // events before the first marker are skipped
    if (!first_event) out += ',';
    first_event = false;
    append_event(out, e);
  }
  if (open) close_slice();
  out += "]}";
  return out;
}

bool FlightRecorder::write_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_json() << '\n';
  if (!file) return false;
  // src/trace is a sanctioned output sink (see tools/vmat_lint.py): the
  // pointer line mirrors BenchReport::write so harness logs stay greppable.
  std::printf("[trace] wrote %s\n", path.c_str());
  return true;
}

}  // namespace vmat
