#include "trace/checker.h"

#include <algorithm>
#include <cstdio>

namespace vmat {
namespace {

std::uint64_t ceil_log2(std::uint64_t x) noexcept {
  std::uint64_t bits = 0;
  while ((1ULL << bits) < x) ++bits;
  return bits;
}

struct ExecutionSlice {
  std::span<const TraceEvent> events;  // starts at the begin marker
  bool is_epoch{false};                // kEpochBegin vs kExecutionBegin
};

std::vector<ExecutionSlice> slice_executions(
    std::span<const TraceEvent> events) {
  std::vector<ExecutionSlice> slices;
  std::size_t begin = events.size();
  bool begin_is_epoch = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEventKind k = events[i].kind;
    if (k != TraceEventKind::kExecutionBegin &&
        k != TraceEventKind::kEpochBegin)
      continue;
    if (begin < i)
      slices.push_back({events.subspan(begin, i - begin), begin_is_epoch});
    begin = i;
    begin_is_epoch = k == TraceEventKind::kEpochBegin;
  }
  if (begin < events.size())
    slices.push_back({events.subspan(begin), begin_is_epoch});
  return slices;
}

std::string format(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

}  // namespace

std::string CheckReport::to_string() const {
  if (violations.empty()) return "trace: all invariants hold\n";
  std::string out;
  for (const TraceViolation& v : violations)
    out += format("exec %zu: [%s] %s\n", v.execution, v.property.c_str(),
                  v.detail.c_str());
  out += format("trace: %zu violation(s)\n", violations.size());
  return out;
}

std::uint64_t predicate_test_envelope(const TraceContext& context) noexcept {
  // One binary search over m candidates costs at most 2*ceil(log2 m)
  // window tests plus the whole-window test and a re-confirmation; each
  // walk step runs two searches (Figure 5 + Figure 6). The candidate set
  // is a key ring (ring keys + up to one path key per neighbor) or a
  // holder list, both bounded by nodes + ring_size.
  const std::uint64_t m =
      std::max<std::uint64_t>(2, std::uint64_t{context.nodes} +
                                     context.ring_size);
  const std::uint64_t per_search = 2 * ceil_log2(m) + 3;
  const std::uint64_t L =
      context.depth_bound > 0 ? static_cast<std::uint64_t>(context.depth_bound)
                              : 1;
  const std::uint64_t steps = context.slotted_sof ? L + 2 : 4 * L + 6;
  return steps * (2 * per_search + 1) + 8;
}

CheckReport check_trace(const TraceContext& context,
                        std::span<const TraceEvent> events,
                        std::span<const ExecutionMetrics> metrics) {
  CheckReport report;
  const auto slices = slice_executions(events);
  const std::uint64_t test_envelope = predicate_test_envelope(context);

  // Metrics snapshots exist only for execution slices, so they are consumed
  // by a running execution counter, not by slice index.
  std::size_t exec = 0;
  for (std::size_t x = 0; x < slices.size(); ++x) {
    const auto ev = slices[x].events;
    auto flag = [&](const char* property, std::string detail) {
      report.violations.push_back({property, x, std::move(detail)});
    };

    if (slices[x].is_epoch) {
      // Epoch-prep slices carry announcement + tree formation only: no
      // query phases, no pinpointing, no outcome — exactly one
      // authenticated broadcast starts them.
      std::uint64_t auth_broadcasts = 0;
      for (const TraceEvent& e : ev) {
        switch (e.kind) {
          case TraceEventKind::kAuthBroadcast:
            ++auth_broadcasts;
            break;
          case TraceEventKind::kOutcome:
            flag("epoch-prep", "epoch slice carries a kOutcome event");
            break;
          case TraceEventKind::kPredicateTest:
          case TraceEventKind::kPinpointStep:
          case TraceEventKind::kArrivalAccepted:
          case TraceEventKind::kArrivalRejected:
          case TraceEventKind::kVeto:
            flag("epoch-prep",
                 format("epoch slice carries query-phase event `%s`",
                        to_string(e.kind)));
            break;
          default:
            break;
        }
        if (e.phase == TracePhase::kAggregation ||
            e.phase == TracePhase::kConfirmation ||
            e.phase == TracePhase::kPinpoint)
          flag("epoch-prep",
               format("epoch slice carries event in query phase `%s`",
                      to_string(e.phase)));
      }
      if (auth_broadcasts > 1)
        flag("epoch-prep",
             format("epoch slice used %llu authenticated broadcasts > 1",
                    static_cast<unsigned long long>(auth_broadcasts)));
      continue;
    }

    bool saw_outcome = false;
    bool produced_result = false;
    bool revoked_anything = false;
    std::int64_t pinpoint_steps = 0;

    for (std::size_t i = 0; i < ev.size(); ++i) {
      const TraceEvent& e = ev[i];
      switch (e.kind) {
        case TraceEventKind::kArrivalAccepted: {
          const bool verified = i > 0 &&
                                ev[i - 1].kind == TraceEventKind::kMacVerify &&
                                ev[i - 1].ok && ev[i - 1].a == e.a;
          if (!verified)
            flag("mac-before-accept",
                 format("arrival from node %u accepted without an "
                        "immediately preceding verified MAC",
                        e.a.value));
          break;
        }
        case TraceEventKind::kPinpointStep:
          ++pinpoint_steps;
          break;
        case TraceEventKind::kKeyRevoked:
        case TraceEventKind::kSensorRevoked:
          revoked_anything = true;
          break;
        case TraceEventKind::kOutcome:
          saw_outcome = true;
          produced_result = e.ok;
          break;
        default:
          break;
      }
      if (context.slotted_sof && e.phase == TracePhase::kConfirmation &&
          e.slot > context.depth_bound)
        flag("lemma1-trail",
             format("confirmation event `%s` in interval %d > L=%d",
                    to_string(e.kind), e.slot, context.depth_bound));
    }

    const std::int64_t max_steps =
        context.slotted_sof ? context.depth_bound + 2
                            : 4 * context.depth_bound + 6;
    if (pinpoint_steps > max_steps)
      flag("lemma1-trail", format("pinpointing walk took %lld steps > %lld",
                                  static_cast<long long>(pinpoint_steps),
                                  static_cast<long long>(max_steps)));

    if (!saw_outcome) {
      // No kOutcome means end_execution never ran, so no metrics snapshot
      // was pushed for this slice either — exec is not advanced.
      flag("truncated-execution", "stream ends without a kOutcome event");
      continue;  // the remaining properties need the outcome
    }

    if (produced_result == revoked_anything)
      flag("theorem7-disjunction",
           produced_result
               ? "execution produced a result AND revoked key material"
               : "execution produced no result and revoked nothing");

    const std::size_t metrics_index = exec++;
    if (metrics_index < metrics.size()) {
      const PhaseCounters totals = metrics[metrics_index].totals();
      if (produced_result) {
        if (totals.predicate_tests != 0)
          flag("round-envelope",
               format("clean execution ran %llu predicate tests",
                      static_cast<unsigned long long>(totals.predicate_tests)));
        if (totals.auth_broadcasts > 4)
          flag("round-envelope",
               format("clean execution used %llu authenticated broadcasts > 4",
                      static_cast<unsigned long long>(totals.auth_broadcasts)));
      } else if (totals.predicate_tests > test_envelope) {
        flag("round-envelope",
             format("revocation execution ran %llu predicate tests > "
                    "O(L log n) envelope %llu",
                    static_cast<unsigned long long>(totals.predicate_tests),
                    static_cast<unsigned long long>(test_envelope)));
      }
    }
  }
  return report;
}

CheckReport check_trace(const FlightRecorder& recorder) {
  return check_trace(recorder.context(), recorder.events(),
                     recorder.execution_metrics());
}

}  // namespace vmat
