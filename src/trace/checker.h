// Trace-invariant checker: validates theorem-shaped properties over a
// recorded execution stream. tools/check_trace.py implements the same
// properties over the exported JSON; DESIGN.md ("Flight recorder & trace
// invariants") documents the envelope constants.
//
// Properties, per execution:
//   lemma1-trail          With slotted SOF every confirmation-phase event
//                         happens in an interval <= L (audit trails are
//                         <= L+1 tuples, Lemma 1), and a pinpointing walk
//                         takes <= L+2 steps (4L+6 unslotted).
//   mac-before-accept     Every kArrivalAccepted is immediately preceded
//                         by a successful kMacVerify for the same origin —
//                         nothing is accepted on an unverified MAC.
//   theorem7-disjunction  The execution produced a result XOR revoked at
//                         least one key/sensor (Theorem 7).
//   round-envelope        Clean executions stay within the O(1) data-path
//                         budget (no predicate tests, <= 4 authenticated
//                         broadcasts); revocation executions stay within
//                         the O(L log n) pinpointing envelope.
//   truncated-execution   The stream for an execution ends with kOutcome.
//
// Epoch slices (kEpochBegin, emitted by prepare_epoch) are checked for one
// property instead:
//   epoch-prep            An epoch slice carries announcement + tree
//                         formation only: exactly one authenticated
//                         broadcast, no query-phase events, no predicate
//                         tests, no kOutcome.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace vmat {

struct TraceViolation {
  std::string property;
  std::size_t execution{0};
  std::string detail;
};

struct CheckReport {
  std::vector<TraceViolation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Upper bound on predicate tests for one revocation execution: the
/// O(L log n) envelope the round-envelope property enforces.
[[nodiscard]] std::uint64_t predicate_test_envelope(
    const TraceContext& context) noexcept;

/// Check a recorded stream against `context`. `metrics` (one snapshot per
/// completed execution, in order) gates the round-envelope property; pass
/// an empty span to skip it.
[[nodiscard]] CheckReport check_trace(
    const TraceContext& context, std::span<const TraceEvent> events,
    std::span<const ExecutionMetrics> metrics);

/// Convenience: check everything a FlightRecorder captured.
[[nodiscard]] CheckReport check_trace(const FlightRecorder& recorder);

}  // namespace vmat
