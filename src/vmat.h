// Umbrella header: the full public API of the VMAT library.
//
// Quickstart — one SimulationSpec describes the whole deployment, and the
// epoch-batched Engine serves query batches over shared tree formations
// (see examples/quickstart.cpp and examples/vmatsim.cpp --serve):
//
//   vmat::SimulationSpec spec;
//   spec.nodes(400).accuracy(0.1, 0.05).seed(1);
//   vmat::Network net(spec);
//   vmat::VmatCoordinator coordinator(&net, /*adversary=*/nullptr, spec);
//
//   // One-shot queries (one tree formation per execution):
//   vmat::QueryEngine queries(&coordinator);
//   auto outcome = queries.count(predicate_bits);
//
//   // Batched serving (one tree formation per epoch, shared by a batch):
//   vmat::Engine engine(&coordinator);
//   auto results = engine.run_batch(std::move(batch));
//
// The per-layer section types (NetworkSpec, CoordinatorSpec, ...) remain
// available for fine-grained construction. Adversaries are described
// declaratively through the spec's attack section (spec/attack_spec.h);
// wiring a PolicyStrategy subclass directly is the deprecated path.
#pragma once

#include "attack/adversary.h"        // IWYU pragma: export
#include "attack/composite.h"        // IWYU pragma: export
#include "attack/strategies.h"       // IWYU pragma: export
#include "baseline/alarm_only.h"     // IWYU pragma: export
#include "baseline/sampling.h"       // IWYU pragma: export
#include "baseline/set_sampling.h"   // IWYU pragma: export
#include "baseline/send_all.h"       // IWYU pragma: export
#include "baseline/tag.h"            // IWYU pragma: export
#include "broadcast/auth_broadcast.h"  // IWYU pragma: export
#include "campaign/corpus.h"         // IWYU pragma: export
#include "campaign/predicate.h"      // IWYU pragma: export
#include "campaign/runner.h"         // IWYU pragma: export
#include "campaign/strategy.h"       // IWYU pragma: export
#include "core/aggregation.h"        // IWYU pragma: export
#include "core/audit.h"              // IWYU pragma: export
#include "core/confirmation.h"       // IWYU pragma: export
#include "core/coordinator.h"        // IWYU pragma: export
#include "core/messages.h"           // IWYU pragma: export
#include "core/monitor.h"            // IWYU pragma: export
#include "core/pinpoint.h"           // IWYU pragma: export
#include "core/predicate_test.h"     // IWYU pragma: export
#include "core/query.h"              // IWYU pragma: export
#include "core/report.h"             // IWYU pragma: export
#include "core/synopsis.h"           // IWYU pragma: export
#include "core/tree_formation.h"     // IWYU pragma: export
#include "crypto/hash_chain.h"       // IWYU pragma: export
#include "crypto/hmac.h"             // IWYU pragma: export
#include "crypto/mac.h"              // IWYU pragma: export
#include "crypto/prf.h"              // IWYU pragma: export
#include "crypto/sha256.h"           // IWYU pragma: export
#include "engine/engine.h"           // IWYU pragma: export
#include "keys/key_pool.h"           // IWYU pragma: export
#include "keys/key_ring.h"           // IWYU pragma: export
#include "keys/predistribution.h"    // IWYU pragma: export
#include "keys/revocation.h"         // IWYU pragma: export
#include "serve/client.h"            // IWYU pragma: export
#include "serve/daemon.h"            // IWYU pragma: export
#include "serve/protocol.h"          // IWYU pragma: export
#include "sim/fabric.h"              // IWYU pragma: export
#include "sim/network.h"             // IWYU pragma: export
#include "sim/topology.h"            // IWYU pragma: export
#include "spec/attack_spec.h"        // IWYU pragma: export
#include "spec/simulation_spec.h"    // IWYU pragma: export
#include "trace/checker.h"           // IWYU pragma: export
#include "trace/trace.h"             // IWYU pragma: export
#include "util/error.h"              // IWYU pragma: export
#include "util/ids.h"                // IWYU pragma: export
#include "util/parallel.h"           // IWYU pragma: export
#include "util/random.h"             // IWYU pragma: export
#include "util/stats.h"              // IWYU pragma: export
