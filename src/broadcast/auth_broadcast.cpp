#include "broadcast/auth_broadcast.h"

#include <algorithm>
#include <stdexcept>

#include "sim/snapshot.h"

namespace vmat {

SymmetricKey broadcast_key(const Digest& chain_element) noexcept {
  ByteWriter w;
  w.str("vmat.abcast-key");
  w.raw(chain_element);
  const Digest d = Sha256::hash(w.bytes());
  SymmetricKey key;
  std::copy_n(d.begin(), key.bytes.size(), key.bytes.begin());
  return key;
}

AuthBroadcaster::AuthBroadcaster(std::uint64_t seed,
                                 std::size_t max_broadcasts)
    : chain_(seed, max_broadcasts + 1) {}

SignedBroadcast AuthBroadcaster::sign(Bytes payload, Tracer tracer) {
  if (next_epoch_ >= chain_.length())
    throw std::runtime_error("AuthBroadcaster: hash chain exhausted");
  SignedBroadcast b;
  b.epoch = next_epoch_;
  b.chain_element = chain_.element(next_epoch_);
  b.payload = std::move(payload);
  b.mac = compute_mac(broadcast_key(b.chain_element), b.payload);
  tracer.mac_compute(kBaseStation, kNoKey);
  ++next_epoch_;
  return b;
}

AuthReceiver::AuthReceiver(const Digest& anchor) : last_verified_(anchor) {}

bool AuthReceiver::accept(const SignedBroadcast& b, Tracer tracer,
                          NodeId self) {
  const bool ok =
      b.epoch > last_epoch_ &&
      HashChain::verify(b.chain_element, b.epoch, last_verified_,
                        last_epoch_) &&
      verify_mac(broadcast_key(b.chain_element), b.payload, b.mac);
  tracer.mac_verify(self, kNoKey, ok);
  if (!ok) return false;
  last_verified_ = b.chain_element;
  last_epoch_ = b.epoch;
  return true;
}

void AuthReceiver::snapshot_save(SnapshotWriter& w) const {
  w.pod(last_verified_);
  w.pod(last_epoch_);
}

void AuthReceiver::snapshot_load(SnapshotReader& r) {
  r.pod(last_verified_);
  r.pod(last_epoch_);
}

}  // namespace vmat
