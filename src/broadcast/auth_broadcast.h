// Authenticated broadcast from the base station (μTESLA-style, per Ning et
// al. [20]).
//
// The base station owns a one-way hash chain committed by its anchor, which
// every sensor is pre-loaded with. Broadcast number e releases chain element
// e and MACs the payload with a key derived from that element; receivers
// verify the element by hashing forward to their last verified element and
// then check the MAC, so a forged or replayed broadcast is rejected.
//
// Simulation note (DESIGN.md): real μTESLA discloses the epoch key one
// interval *after* the MAC'd message to prevent in-epoch forgery; our
// simulator delivers a broadcast atomically, so disclosing key and message
// together is equivalent in-model. The choke-resistance of this primitive
// is an assumption the paper inherits from [20]; the channel below delivers
// to every honest connected node and costs one flooding round.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash_chain.h"
#include "crypto/mac.h"
#include "trace/trace.h"
#include "util/bytes.h"

namespace vmat {

class SnapshotReader;
class SnapshotWriter;

/// A signed broadcast frame.
struct SignedBroadcast {
  std::uint64_t epoch{0};
  Digest chain_element{};
  Mac mac;
  Bytes payload;
};

/// Base-station side: signs successive broadcasts.
class AuthBroadcaster {
 public:
  AuthBroadcaster(std::uint64_t seed, std::size_t max_broadcasts);

  [[nodiscard]] const Digest& anchor() const { return chain_.anchor(); }

  /// Sign the next broadcast. Throws if the chain is exhausted.
  [[nodiscard]] SignedBroadcast sign(Bytes payload, Tracer tracer = {});

  [[nodiscard]] std::uint64_t next_epoch() const noexcept { return next_epoch_; }

  /// Reposition the chain cursor (snapshot restore). The chain itself is
  /// immutable precomputed material, so the cursor is the whole state.
  void restore_next_epoch(std::uint64_t next_epoch) noexcept {
    next_epoch_ = next_epoch;
  }

 private:
  HashChain chain_;
  std::uint64_t next_epoch_{1};  // epoch 0 is the anchor itself
};

/// Sensor side: verifies successive broadcasts against the anchor.
class AuthReceiver {
 public:
  explicit AuthReceiver(const Digest& anchor);

  /// Accept iff the chain element verifies against the last verified
  /// element, the epoch is strictly newer, and the MAC checks out.
  /// `self` identifies the receiving sensor in the trace stream.
  [[nodiscard]] bool accept(const SignedBroadcast& b, Tracer tracer = {},
                            NodeId self = {});

  // --- snapshots (sim/snapshot.h): the verification cursor is the whole
  // mutable state ---
  void snapshot_save(SnapshotWriter& writer) const;
  void snapshot_load(SnapshotReader& reader);

 private:
  Digest last_verified_;
  std::uint64_t last_epoch_{0};
};

/// Derives the broadcast MAC key for a chain element.
[[nodiscard]] SymmetricKey broadcast_key(const Digest& chain_element) noexcept;

}  // namespace vmat
