// vmatd wire protocol — length-prefixed binary request/response frames.
//
// A frame is a little-endian u32 payload length followed by that many
// payload bytes (kMaxFrameBytes cap). Request payloads start with a one
// byte opcode; response payloads echo the opcode and carry a status byte
// (0 = OK, otherwise 1 + the ErrorCode and a length-prefixed message).
//
//   SUBMIT   enqueue one query on a tenant's engine -> request id
//   POLL     collect up to N settled results (0 = all)
//   STATS    daemon + per-tenant counters snapshot
//   SHUTDOWN drain every in-flight query, return the drained results,
//            and stop the daemon loop
//
// Queries are described, not shipped: the daemon owns each tenant's
// per-node readings, so a SUBMIT carries the query kind plus scalar
// parameters (predicate threshold, quantile q / domain) and the daemon
// materializes the per-node payload vectors. All integers are fixed-width
// little-endian via ByteWriter/ByteReader; doubles travel as their IEEE
// bit pattern in a u64. Malformed payloads decode to an Error — never an
// exception across the wire boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "util/bytes.h"
#include "util/error.h"

namespace vmat::serve {

/// Upper bound on one frame's payload; a longer length prefix is a
/// protocol violation (or a desynchronized stream) and kills the session.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class Op : std::uint8_t {
  kSubmit = 1,
  kPoll = 2,
  kStats = 3,
  kShutdown = 4,
};

[[nodiscard]] const char* to_string(Op op) noexcept;

/// One query submission. The daemon builds the EngineQuery payload from
/// the tenant's readings: kCount counts readings >= threshold; kSum /
/// kAverage / kQuantile run over the readings themselves; kMin / kMax are
/// exact extrema of the raw readings.
struct SubmitRequest {
  std::uint32_t tenant{0};
  EngineQueryKind kind{EngineQueryKind::kCount};
  std::uint32_t instances{0};       ///< 0 = the tenant's configured count
  std::uint32_t max_executions{0};  ///< 0 = the engine's default deadline
  std::int64_t threshold{0};        ///< kCount predicate: reading >= threshold
  double q{0.5};                    ///< kQuantile
  std::int64_t domain_max{2048};    ///< kQuantile reading domain [0, max]
};

/// One settled query, as reported by POLL / SHUTDOWN.
struct ResultRecord {
  std::uint64_t request_id{0};
  std::uint32_t tenant{0};
  EngineQueryKind kind{EngineQueryKind::kCount};
  bool answered{false};
  ErrorCode error{ErrorCode::kUnavailable};  ///< valid when !answered
  double estimate{0.0};                      ///< valid when answered
  std::uint32_t executions{0};
  std::uint64_t epoch_id{0};
};

struct TenantStats {
  std::uint32_t tenant{0};
  bool disrupted{false};  ///< configured with an adversary
  std::uint32_t open{0};  ///< submitted, not yet settled
  std::uint64_t submitted{0};
  std::uint64_t answered{0};
  std::uint64_t failed{0};
  std::uint64_t rounds{0};
  std::uint64_t executions{0};
  std::uint64_t disrupted_executions{0};
  std::uint64_t epochs_formed{0};
  std::uint64_t epochs_rearmed{0};
  std::uint64_t fabric_bytes{0};
};

struct StatsResponse {
  std::uint64_t ticks{0};
  std::uint64_t results_ready{0};
  std::vector<TenantStats> tenants;
};

/// A decoded request (daemon side).
struct Request {
  Op op{Op::kPoll};
  SubmitRequest submit;       ///< op == kSubmit
  std::uint32_t poll_max{0};  ///< op == kPoll; 0 = all
};

/// A decoded response (client side). Exactly one payload member is
/// meaningful, selected by `op`; `error` is set when the daemon rejected
/// the request.
struct Response {
  Op op{Op::kPoll};
  std::optional<Error> error;
  std::uint64_t request_id{0};        ///< kSubmit
  std::vector<ResultRecord> results;  ///< kPoll / kShutdown
  StatsResponse stats;                ///< kStats
};

// --- request encoding (client side) ---
[[nodiscard]] Bytes encode_submit(const SubmitRequest& request);
[[nodiscard]] Bytes encode_poll(std::uint32_t max_results);
[[nodiscard]] Bytes encode_stats();
[[nodiscard]] Bytes encode_shutdown();

// --- response encoding (daemon side) ---
[[nodiscard]] Bytes encode_error(Op op, const Error& error);
[[nodiscard]] Bytes encode_submit_ok(std::uint64_t request_id);
[[nodiscard]] Bytes encode_results(Op op, std::span<const ResultRecord> results);
[[nodiscard]] Bytes encode_stats_ok(const StatsResponse& stats);

// --- decoding ---
[[nodiscard]] Expected<Request> decode_request(
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<Response> decode_response(
    std::span<const std::uint8_t> payload);

// --- framing over file descriptors ---

enum class FrameStatus : std::uint8_t {
  kOk,     ///< one complete frame read
  kEof,    ///< clean end of stream before any byte of a frame
  kError,  ///< oversized length prefix, truncated frame, or read error
};

/// Blocking read of one frame into `payload` (replaced, not appended).
[[nodiscard]] FrameStatus read_frame(int fd, Bytes& payload);

/// Blocking write of the length prefix + payload. False on write error.
[[nodiscard]] bool write_frame(int fd, std::span<const std::uint8_t> payload);

}  // namespace vmat::serve
