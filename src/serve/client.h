// ServeClient — the caller's side of the vmatd frame protocol.
//
// Wraps a connected file-descriptor pair (stdin/stdout of a spawned
// daemon, or one end of a socketpair) and turns each protocol exchange
// into a typed call: write one request frame, read one response frame,
// decode. Blocking, one request in flight at a time — the daemon serves
// between requests, so a client that wants progress polls.
//
// Every transport or decode failure comes back as an Error (kUnavailable
// for the transport, kInvalidArgument for malformed payloads); the client
// never throws across the protocol boundary.
#pragma once

#include <cstdint>

#include "serve/protocol.h"
#include "util/error.h"

namespace vmat::serve {

class ServeClient {
 public:
  /// `in_fd` carries daemon responses, `out_fd` carries our requests. The
  /// client does not own either descriptor.
  ServeClient(int in_fd, int out_fd) noexcept : in_fd_(in_fd), out_fd_(out_fd) {}

  /// Enqueue one query; returns the daemon-assigned request id.
  Expected<std::uint64_t> submit(const SubmitRequest& request);

  /// Collect up to `max_results` settled results (0 = all ready).
  Expected<std::vector<ResultRecord>> poll(std::uint32_t max_results = 0);

  Expected<StatsResponse> stats();

  /// Drain every in-flight query and stop the daemon; returns the results
  /// that had not been polled yet.
  Expected<std::vector<ResultRecord>> shutdown();

 private:
  /// One request/response exchange, op-checked.
  Expected<Response> exchange(Op op, const Bytes& request_payload);

  int in_fd_;
  int out_fd_;
};

}  // namespace vmat::serve
