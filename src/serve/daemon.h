// vmatd — the multi-tenant serving daemon.
//
// One Daemon multiplexes N independent deployments ("tenants": network +
// adversary + coordinator + epoch-batched Engine) over the shared thread
// fabric and speaks the src/serve/protocol.h frame protocol over a pair of
// file descriptors (stdin/stdout, or both ends of a Unix socket).
//
// Scheduling is cooperative and single-threaded at the tenant level (the
// intra-execution parallelism lives inside each Engine round): one tick()
// steps every tenant with open queries by ONE serving round, then
// prepares at most one idle stale tenant ahead of demand — epoch
// pipelining. A tenant whose epoch was invalidated (revocation, rekey)
// gets its tree re-armed from the prepare_epoch() snapshot — or re-formed
// — while OTHER tenants' rounds are serving, so the next burst of queries
// lands on a warm epoch instead of paying formation latency in-band.
//
// Determinism: tick() and handle_request() take no wall-clock input, the
// per-tenant engines draw nonces serially, and the prepare-ahead cursor
// advances deterministically — the same request/tick sequence yields
// bit-identical responses for any VMAT_THREADS. The fd run() loop feeds
// them in arrival order; only arrival order (not time) affects results.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "attack/adversary.h"
#include "core/coordinator.h"
#include "engine/engine.h"
#include "serve/protocol.h"
#include "sim/network.h"
#include "spec/simulation_spec.h"
#include "util/parallel.h"

namespace vmat::serve {

struct ServeOptions {
  std::uint32_t tenants{8};
  /// Per-tenant deployment shape (grid sides are derived from nodes).
  std::uint32_t nodes{36};
  TopologyKind topology{TopologyKind::kGrid};
  std::uint32_t instances{24};
  /// The first `adversary_tenants` tenants host a ChokeVeto adversary
  /// compromising `f` nodes each — the disrupted-tenant fraction knob.
  std::uint32_t adversary_tenants{0};
  std::uint32_t f{2};
  /// Revocation threshold (theta). 1 by default so a persistently
  /// disrupting adversary is neutralized after a couple of executions and
  /// the tenant resumes answering; 0 (key-only revocation) can take
  /// hundreds of executions to starve a ChokeVeto adversary out.
  std::uint32_t theta{1};
  std::uint64_t seed{1};
  /// Per-tenant engine tuning (admission window, queue depth, deadlines).
  EngineConfig engine;
};

class Daemon {
 public:
  /// Builds every tenant deployment up front (tenant t seeds its network
  /// with seed + t, so tenants are independent but reproducible). `pool`
  /// runs intra-round parallelism; nullptr = ThreadPool::shared().
  explicit Daemon(ServeOptions options, ThreadPool* pool = nullptr);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Dispatch one decoded request; returns the encoded response payload.
  /// SUBMIT enqueues (readings materialized from the tenant's sensor
  /// state), POLL collects settled results, STATS snapshots counters,
  /// SHUTDOWN drains every tenant and latches shutting_down().
  [[nodiscard]] Bytes handle_request(const Request& request);

  /// decode_request() + handle_request(); malformed payloads become an
  /// error response, never an exception.
  [[nodiscard]] Bytes handle_payload(std::span<const std::uint8_t> payload);

  /// One cooperative scheduling pass: step every tenant with open queries
  /// by one serving round, collect settled results, then prepare at most
  /// one idle stale tenant's epoch ahead of demand (the pipelining slot).
  void tick();

  /// Serve the frame protocol: read requests from `in_fd`, write responses
  /// to `out_fd`, and burn idle time (no readable input) on tick() while
  /// open queries remain. Returns 0 on SHUTDOWN or clean EOF (in-flight
  /// queries drained either way), 1 on a framing/socket error.
  int run(int in_fd, int out_fd);

  /// Attach a flight recorder to one tenant's coordinator: every epoch
  /// formation and serving execution for that tenant records its slices
  /// (tools/check_trace.py-compatible). nullptr detaches.
  void set_recorder(std::uint32_t tenant, FlightRecorder* recorder);

  [[nodiscard]] bool shutting_down() const noexcept { return shutting_down_; }
  [[nodiscard]] std::size_t open_total() const;
  [[nodiscard]] std::size_t results_ready() const noexcept {
    return ready_.size();
  }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Tenant {
    std::unique_ptr<Network> net;
    std::unique_ptr<Adversary> adversary;
    std::unique_ptr<VmatCoordinator> coordinator;
    std::unique_ptr<Engine> engine;
    std::vector<Reading> readings;  ///< per-node sensor state, entry 0 unused
    bool disrupted{false};
    std::uint64_t submitted{0};
  };

  [[nodiscard]] Bytes handle_submit(const SubmitRequest& request);
  [[nodiscard]] std::vector<ResultRecord> pop_ready(std::uint32_t max);
  [[nodiscard]] StatsResponse stats_snapshot();
  void drain_all();
  /// Move a tenant engine's settled results into the ready queue.
  void collect(std::uint32_t tenant);

  ServeOptions options_;
  ThreadPool* pool_;
  std::vector<Tenant> tenants_;
  std::deque<ResultRecord> ready_;  ///< settled, awaiting POLL/SHUTDOWN
  std::uint64_t ticks_{0};
  std::uint32_t prepare_cursor_{0};  ///< rotating pipelining slot
  bool shutting_down_{false};
};

}  // namespace vmat::serve
