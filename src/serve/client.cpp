#include "serve/client.h"

#include <utility>

namespace vmat::serve {

namespace {

Error transport_error(const char* what) {
  return Error{ErrorCode::kUnavailable, what};
}

}  // namespace

Expected<Response> ServeClient::exchange(Op op, const Bytes& request_payload) {
  if (!write_frame(out_fd_, request_payload))
    return transport_error("request write failed");
  Bytes payload;
  switch (read_frame(in_fd_, payload)) {
    case FrameStatus::kOk: break;
    case FrameStatus::kEof:
      return transport_error("daemon closed the stream");
    case FrameStatus::kError:
      return transport_error("malformed response frame");
  }
  Expected<Response> response = decode_response(payload);
  if (!response) return response.error();
  if (response.value().op != op)
    return Error{ErrorCode::kInvalidArgument,
                 "response opcode does not match the request"};
  if (response.value().error.has_value()) return *response.value().error;
  return response;
}

Expected<std::uint64_t> ServeClient::submit(const SubmitRequest& request) {
  Expected<Response> response = exchange(Op::kSubmit, encode_submit(request));
  if (!response) return response.error();
  return response.value().request_id;
}

Expected<std::vector<ResultRecord>> ServeClient::poll(
    std::uint32_t max_results) {
  Expected<Response> response = exchange(Op::kPoll, encode_poll(max_results));
  if (!response) return response.error();
  return std::move(response.value().results);
}

Expected<StatsResponse> ServeClient::stats() {
  Expected<Response> response = exchange(Op::kStats, encode_stats());
  if (!response) return response.error();
  return std::move(response.value().stats);
}

Expected<std::vector<ResultRecord>> ServeClient::shutdown() {
  Expected<Response> response = exchange(Op::kShutdown, encode_shutdown());
  if (!response) return response.error();
  return std::move(response.value().results);
}

}  // namespace vmat::serve
