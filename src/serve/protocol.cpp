#include "serve/protocol.h"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <stdexcept>

namespace vmat::serve {

namespace {

void put_f64(ByteWriter& w, double v) { w.u64(std::bit_cast<std::uint64_t>(v)); }

double get_f64(ByteReader& r) { return std::bit_cast<double>(r.u64()); }

Error malformed(const char* what) {
  return Error{ErrorCode::kInvalidArgument, what};
}

Expected<Op> read_op(ByteReader& r) {
  const std::uint8_t raw = r.u8();
  switch (raw) {
    case static_cast<std::uint8_t>(Op::kSubmit): return Op::kSubmit;
    case static_cast<std::uint8_t>(Op::kPoll): return Op::kPoll;
    case static_cast<std::uint8_t>(Op::kStats): return Op::kStats;
    case static_cast<std::uint8_t>(Op::kShutdown): return Op::kShutdown;
    default: return malformed("unknown opcode");
  }
}

Expected<EngineQueryKind> read_kind(ByteReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(EngineQueryKind::kQuantile))
    return malformed("unknown query kind");
  return static_cast<EngineQueryKind>(raw);
}

Expected<ErrorCode> read_error_code(ByteReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(ErrorCode::kUnavailable))
    return malformed("unknown error code");
  return static_cast<ErrorCode>(raw);
}

void write_result(ByteWriter& w, const ResultRecord& rec) {
  w.u64(rec.request_id);
  w.u32(rec.tenant);
  w.u8(static_cast<std::uint8_t>(rec.kind));
  w.u8(rec.answered ? 1 : 0);
  if (rec.answered)
    put_f64(w, rec.estimate);
  else
    w.u8(static_cast<std::uint8_t>(rec.error));
  w.u32(rec.executions);
  w.u64(rec.epoch_id);
}

Expected<ResultRecord> read_result(ByteReader& r) {
  ResultRecord rec;
  rec.request_id = r.u64();
  rec.tenant = r.u32();
  Expected<EngineQueryKind> kind = read_kind(r);
  if (!kind) return kind.error();
  rec.kind = *kind;
  rec.answered = r.u8() != 0;
  if (rec.answered) {
    rec.estimate = get_f64(r);
  } else {
    Expected<ErrorCode> code = read_error_code(r);
    if (!code) return code.error();
    rec.error = *code;
  }
  rec.executions = r.u32();
  rec.epoch_id = r.u64();
  return rec;
}

}  // namespace

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kSubmit: return "SUBMIT";
    case Op::kPoll: return "POLL";
    case Op::kStats: return "STATS";
    case Op::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

Bytes encode_submit(const SubmitRequest& request) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kSubmit));
  w.u32(request.tenant);
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u32(request.instances);
  w.u32(request.max_executions);
  w.i64(request.threshold);
  put_f64(w, request.q);
  w.i64(request.domain_max);
  return w.take();
}

Bytes encode_poll(std::uint32_t max_results) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kPoll));
  w.u32(max_results);
  return w.take();
}

Bytes encode_stats() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kStats));
  return w.take();
}

Bytes encode_shutdown() {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kShutdown));
  return w.take();
}

Bytes encode_error(Op op, const Error& error) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.message);
  return w.take();
}

Bytes encode_submit_ok(std::uint64_t request_id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kSubmit));
  w.u8(0);
  w.u64(request_id);
  return w.take();
}

Bytes encode_results(Op op, std::span<const ResultRecord> results) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(0);
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const ResultRecord& rec : results) write_result(w, rec);
  return w.take();
}

Bytes encode_stats_ok(const StatsResponse& stats) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(Op::kStats));
  w.u8(0);
  w.u64(stats.ticks);
  w.u64(stats.results_ready);
  w.u32(static_cast<std::uint32_t>(stats.tenants.size()));
  for (const TenantStats& t : stats.tenants) {
    w.u32(t.tenant);
    w.u8(t.disrupted ? 1 : 0);
    w.u32(t.open);
    w.u64(t.submitted);
    w.u64(t.answered);
    w.u64(t.failed);
    w.u64(t.rounds);
    w.u64(t.executions);
    w.u64(t.disrupted_executions);
    w.u64(t.epochs_formed);
    w.u64(t.epochs_rearmed);
    w.u64(t.fabric_bytes);
  }
  return w.take();
}

Expected<Request> decode_request(std::span<const std::uint8_t> payload) {
  try {
    ByteReader r(payload);
    Expected<Op> op = read_op(r);
    if (!op) return op.error();
    Request req;
    req.op = *op;
    switch (req.op) {
      case Op::kSubmit: {
        req.submit.tenant = r.u32();
        Expected<EngineQueryKind> kind = read_kind(r);
        if (!kind) return kind.error();
        req.submit.kind = *kind;
        req.submit.instances = r.u32();
        req.submit.max_executions = r.u32();
        req.submit.threshold = r.i64();
        req.submit.q = get_f64(r);
        req.submit.domain_max = r.i64();
        break;
      }
      case Op::kPoll:
        req.poll_max = r.u32();
        break;
      case Op::kStats:
      case Op::kShutdown:
        break;
    }
    if (!r.done()) return malformed("trailing bytes after request");
    return req;
  } catch (const std::out_of_range&) {
    return malformed("truncated request payload");
  }
}

Expected<Response> decode_response(std::span<const std::uint8_t> payload) {
  try {
    ByteReader r(payload);
    Expected<Op> op = read_op(r);
    if (!op) return op.error();
    Response resp;
    resp.op = *op;
    if (r.u8() != 0) {
      Expected<ErrorCode> code = read_error_code(r);
      if (!code) return code.error();
      resp.error = Error{*code, r.str()};
      if (!r.done()) return malformed("trailing bytes after response");
      return resp;
    }
    switch (resp.op) {
      case Op::kSubmit:
        resp.request_id = r.u64();
        break;
      case Op::kPoll:
      case Op::kShutdown: {
        const std::uint32_t count = r.u32();
        if (count > kMaxFrameBytes)  // cheap sanity bound before reserving
          return malformed("implausible result count");
        resp.results.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          Expected<ResultRecord> rec = read_result(r);
          if (!rec) return rec.error();
          resp.results.push_back(*rec);
        }
        break;
      }
      case Op::kStats: {
        resp.stats.ticks = r.u64();
        resp.stats.results_ready = r.u64();
        const std::uint32_t count = r.u32();
        if (count > kMaxFrameBytes)
          return malformed("implausible tenant count");
        resp.stats.tenants.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          TenantStats t;
          t.tenant = r.u32();
          t.disrupted = r.u8() != 0;
          t.open = r.u32();
          t.submitted = r.u64();
          t.answered = r.u64();
          t.failed = r.u64();
          t.rounds = r.u64();
          t.executions = r.u64();
          t.disrupted_executions = r.u64();
          t.epochs_formed = r.u64();
          t.epochs_rearmed = r.u64();
          t.fabric_bytes = r.u64();
          resp.stats.tenants.push_back(t);
        }
        break;
      }
    }
    if (!r.done()) return malformed("trailing bytes after response");
    return resp;
  } catch (const std::out_of_range&) {
    return malformed("truncated response payload");
  }
}

namespace {

/// read() until `out` is full; handles EINTR and short reads. Returns the
/// bytes read (== out.size() on success; fewer means EOF or error).
std::size_t read_fully(int fd, std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

FrameStatus read_frame(int fd, Bytes& payload) {
  std::uint8_t len_buf[4];
  const std::size_t got = read_fully(fd, len_buf);
  if (got == 0) return FrameStatus::kEof;
  if (got < sizeof len_buf) return FrameStatus::kError;  // torn length prefix
  const std::uint32_t len = static_cast<std::uint32_t>(len_buf[0]) |
                            static_cast<std::uint32_t>(len_buf[1]) << 8 |
                            static_cast<std::uint32_t>(len_buf[2]) << 16 |
                            static_cast<std::uint32_t>(len_buf[3]) << 24;
  if (len > kMaxFrameBytes) return FrameStatus::kError;
  payload.resize(len);
  if (read_fully(fd, payload) != len) return FrameStatus::kError;
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  Bytes frame;
  frame.reserve(sizeof len + payload.size());
  frame.push_back(static_cast<std::uint8_t>(len & 0xff));
  frame.push_back(static_cast<std::uint8_t>(len >> 8 & 0xff));
  frame.push_back(static_cast<std::uint8_t>(len >> 16 & 0xff));
  frame.push_back(static_cast<std::uint8_t>(len >> 24 & 0xff));
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace vmat::serve
