#include "serve/daemon.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "attack/strategies.h"

namespace vmat::serve {

namespace {

/// Wire request id: tenant (1-based, high half) | engine query id (low
/// half). Deterministic — no lookup table to keep in sync with the engine.
std::uint64_t wire_id(std::uint32_t tenant, std::uint64_t engine_id) {
  return (static_cast<std::uint64_t>(tenant) + 1) << 32 |
         (engine_id & 0xffffffffull);
}

bool input_ready(int fd) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  while (true) {
    const int n = ::poll(&p, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    return n > 0;
  }
}

}  // namespace

Daemon::Daemon(ServeOptions options, ThreadPool* pool)
    : options_(std::move(options)), pool_(pool) {
  if (options_.tenants == 0)
    throw std::invalid_argument("Daemon: tenants must be positive");
  tenants_.reserve(options_.tenants);
  for (std::uint32_t t = 0; t < options_.tenants; ++t) {
    Tenant tenant;
    tenant.disrupted = t < options_.adversary_tenants && options_.f > 0;

    std::uint32_t nodes = options_.nodes;
    if (options_.topology == TopologyKind::kGrid) {
      const auto side =
          static_cast<std::uint32_t>(std::sqrt(static_cast<double>(nodes)));
      nodes = side * side;
    }
    SimulationSpec spec;
    spec.nodes(nodes)
        .topology(options_.topology)
        .seed(options_.seed + t)
        .key_pool(1000, 180)
        .revocation_threshold(options_.theta)
        .instances(options_.instances);
    const auto errors = spec.validate();
    if (!errors.empty())
      throw std::invalid_argument("Daemon: invalid tenant spec: " +
                                  errors.front().to_string());
    tenant.net = std::make_unique<Network>(spec);

    std::unordered_set<NodeId> malicious;
    if (tenant.disrupted)
      malicious = choose_malicious(tenant.net->topology(), options_.f,
                                   options_.seed + 17 + t);
    std::unique_ptr<AdversaryStrategy> strategy;
    if (tenant.disrupted)
      strategy = std::make_unique<ChokeVetoStrategy>(LiePolicy::kDenyAll);
    else
      strategy = std::make_unique<NullStrategy>();
    tenant.adversary = std::make_unique<Adversary>(tenant.net.get(), malicious,
                                                   std::move(strategy));
    spec.depth_bound(tenant.net->topology().depth(malicious));
    tenant.coordinator = std::make_unique<VmatCoordinator>(
        tenant.net.get(), tenant.adversary.get(), spec);
    tenant.engine = std::make_unique<Engine>(tenant.coordinator.get(),
                                             options_.engine, pool_);

    // Per-tenant sensor state: distinct per node AND per tenant, so
    // cross-tenant leakage shows up as a wrong number, not a coincidence.
    tenant.readings.assign(tenant.net->node_count(), 0);
    for (std::uint32_t id = 0; id < tenant.net->node_count(); ++id)
      tenant.readings[id] =
          1000 + static_cast<Reading>((id * 131 + t * 37) % 777);

    tenants_.push_back(std::move(tenant));
  }
}

Daemon::~Daemon() = default;

void Daemon::set_recorder(std::uint32_t tenant, FlightRecorder* recorder) {
  if (tenant < tenants_.size())
    tenants_[tenant].coordinator->set_recorder(recorder);
}

std::size_t Daemon::open_total() const {
  std::size_t open = 0;
  for (const Tenant& t : tenants_) open += t.engine->open_queries();
  return open;
}

namespace {

ResultRecord to_record(std::uint32_t tenant, const EngineResult& r) {
  ResultRecord rec;
  rec.request_id = wire_id(tenant, r.id);
  rec.tenant = tenant;
  rec.kind = r.kind;
  rec.answered = r.answered();
  if (rec.answered)
    rec.estimate = *r.estimate;
  else
    rec.error = r.error.has_value() ? r.error->code : ErrorCode::kUnavailable;
  rec.executions = static_cast<std::uint32_t>(r.executions);
  rec.epoch_id = r.epoch_id;
  return rec;
}

}  // namespace

void Daemon::collect(std::uint32_t tenant) {
  Tenant& t = tenants_[tenant];
  for (const EngineResult& r : t.engine->take_ready())
    ready_.push_back(to_record(tenant, r));
}

Bytes Daemon::handle_submit(const SubmitRequest& request) {
  if (shutting_down_)
    return encode_error(Op::kSubmit,
                        Error{ErrorCode::kUnavailable, "daemon shutting down"});
  if (request.tenant >= tenants_.size())
    return encode_error(
        Op::kSubmit, Error{ErrorCode::kInvalidArgument, "tenant out of range"});
  Tenant& t = tenants_[request.tenant];
  const std::uint32_t n = t.net->node_count();

  EngineQuery q;
  q.kind = request.kind;
  q.instances = request.instances;
  q.max_executions = static_cast<int>(request.max_executions);
  switch (request.kind) {
    case EngineQueryKind::kCount:
      q.predicate.assign(n, 0);
      for (std::uint32_t id = 1; id < n; ++id)
        q.predicate[id] = t.readings[id] >= request.threshold ? 1 : 0;
      break;
    case EngineQueryKind::kSum:
    case EngineQueryKind::kAverage:
    case EngineQueryKind::kQuantile:
      q.readings.assign(n, 0);
      for (std::uint32_t id = 1; id < n; ++id)
        q.readings[id] = t.readings[id];
      q.q = request.q;
      q.domain_max = request.domain_max;
      break;
    case EngineQueryKind::kMin:
    case EngineQueryKind::kMax:
      q.raw = t.readings;
      break;
  }

  const Expected<std::uint64_t> id = t.engine->submit(std::move(q));
  if (!id) return encode_error(Op::kSubmit, id.error());
  t.submitted += 1;
  return encode_submit_ok(wire_id(request.tenant, *id));
}

std::vector<ResultRecord> Daemon::pop_ready(std::uint32_t max) {
  std::vector<ResultRecord> out;
  const std::size_t take =
      max == 0 ? ready_.size() : std::min<std::size_t>(max, ready_.size());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(ready_.front());
    ready_.pop_front();
  }
  return out;
}

StatsResponse Daemon::stats_snapshot() {
  StatsResponse out;
  out.ticks = ticks_;
  out.results_ready = ready_.size();
  out.tenants.reserve(tenants_.size());
  for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    const EngineStats& s = t.engine->stats();
    TenantStats ts;
    ts.tenant = i;
    ts.disrupted = t.disrupted;
    ts.open = static_cast<std::uint32_t>(t.engine->open_queries());
    ts.submitted = t.submitted;
    ts.answered = s.queries_answered;
    ts.failed = s.queries_failed;
    ts.rounds = s.rounds;
    ts.executions = s.executions;
    ts.disrupted_executions = s.disrupted_executions;
    ts.epochs_formed = s.epochs_formed;
    ts.epochs_rearmed = s.epochs_rearmed;
    ts.fabric_bytes = s.fabric_bytes;
    out.tenants.push_back(ts);
  }
  return out;
}

void Daemon::drain_all() {
  for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    if (t.engine->queued() == 0) continue;
    for (const EngineResult& r : t.engine->drain())
      ready_.push_back(to_record(i, r));
  }
}

Bytes Daemon::handle_request(const Request& request) {
  switch (request.op) {
    case Op::kSubmit:
      return handle_submit(request.submit);
    case Op::kPoll: {
      for (std::uint32_t i = 0; i < tenants_.size(); ++i) collect(i);
      const std::vector<ResultRecord> out = pop_ready(request.poll_max);
      return encode_results(Op::kPoll, out);
    }
    case Op::kStats:
      return encode_stats_ok(stats_snapshot());
    case Op::kShutdown: {
      drain_all();
      shutting_down_ = true;
      const std::vector<ResultRecord> out = pop_ready(0);
      return encode_results(Op::kShutdown, out);
    }
  }
  return encode_error(request.op,
                      Error{ErrorCode::kInvalidArgument, "unhandled opcode"});
}

Bytes Daemon::handle_payload(std::span<const std::uint8_t> payload) {
  const Expected<Request> request = decode_request(payload);
  if (!request) {
    // Best-effort opcode echo so the client can pair the error with its
    // request even when the payload was malformed past the first byte.
    Op op = Op::kPoll;
    if (!payload.empty() && payload.front() >= 1 && payload.front() <= 4)
      op = static_cast<Op>(payload.front());
    return encode_error(op, request.error());
  }
  return handle_request(*request);
}

void Daemon::tick() {
  ticks_ += 1;
  for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
    Tenant& t = tenants_[i];
    if (t.engine->open_queries() == 0) continue;
    t.engine->step();
    collect(i);
  }
  // Pipelining slot: while the rounds above were serving, at most one idle
  // tenant whose epoch went stale gets its tree re-armed (or re-formed)
  // ahead of demand. The rotating cursor keeps the slot fair and the
  // schedule deterministic.
  const auto count = static_cast<std::uint32_t>(tenants_.size());
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t idx = (prepare_cursor_ + i) % count;
    Tenant& t = tenants_[idx];
    if (t.engine->open_queries() != 0 || t.coordinator->epoch_ready())
      continue;
    t.engine->prepare();
    prepare_cursor_ = (idx + 1) % count;
    break;
  }
}

int Daemon::run(int in_fd, int out_fd) {
  // Human-facing status goes to stdout only when stdout is NOT the
  // protocol channel (Unix-socket mode); otherwise it would corrupt the
  // frame stream.
  const bool log = out_fd != STDOUT_FILENO;
  if (log)
    std::printf("vmatd: serving %u tenant(s) (%u disrupted), %u node(s) "
                "each\n",
                static_cast<unsigned>(tenants_.size()),
                options_.adversary_tenants, options_.nodes);

  Bytes payload;
  while (!shutting_down_) {
    // Burn idle time on serving rounds: while no request is readable and
    // open queries remain, step the tenants. A poll-spinning client can't
    // starve serving and a silent client can't stall it.
    while (open_total() > 0 && !input_ready(in_fd)) tick();
    const FrameStatus status = read_frame(in_fd, payload);
    if (status == FrameStatus::kEof) break;
    if (status == FrameStatus::kError) {
      std::fprintf(stderr,
                   "vmatd: malformed frame (oversized or truncated) — "
                   "closing session\n");
      return 1;
    }
    const Bytes response = handle_payload(payload);
    if (!write_frame(out_fd, response)) {
      std::fprintf(stderr, "vmatd: response write failed — closing session\n");
      return 1;
    }
    // One serving round per handled request, so even a client that keeps
    // the input readable (a tight poll loop) cannot starve serving.
    if (!shutting_down_ && open_total() > 0) tick();
  }

  if (!shutting_down_) {
    // Clean EOF without SHUTDOWN: settle in-flight queries so engine
    // budgets and stats end in a consistent state, then latch shutdown.
    drain_all();
    shutting_down_ = true;
  }
  if (log)
    std::printf("vmatd: shutdown after %llu tick(s), %zu unclaimed "
                "result(s)\n",
                static_cast<unsigned long long>(ticks_), ready_.size());
  return 0;
}

}  // namespace vmat::serve
