#include "attack/adversary.h"

#include <stdexcept>

namespace vmat {

AdversaryView::AdversaryView(Network* net, std::unordered_set<NodeId> malicious)
    : net_(net), malicious_(std::move(malicious)) {
  if (net == nullptr) throw std::invalid_argument("AdversaryView: null net");
  if (malicious_.contains(kBaseStation))
    throw std::invalid_argument(
        "AdversaryView: the base station is trusted (Section III)");
  for (NodeId m : malicious_)
    if (m.value >= net_->node_count())
      throw std::out_of_range("AdversaryView: malicious id out of range");
}

bool AdversaryView::holds_pool_key(KeyIndex key) const {
  for (NodeId m : malicious_)
    if (net_->keys().node_holds(m, key)) return true;
  return false;
}

SymmetricKey AdversaryView::pool_key(KeyIndex key) const {
  if (!holds_pool_key(key))
    throw std::logic_error(
        "AdversaryView::pool_key: adversary does not hold this key");
  return net_->keys().key_material(key);
}

SymmetricKey AdversaryView::sensor_key(NodeId node) const {
  if (!is_malicious(node))
    throw std::logic_error(
        "AdversaryView::sensor_key: sensor is not compromised");
  return net_->keys().sensor_key(node);
}

bool AdversaryView::inject(NodeId via, NodeId to, NodeId claimed_from,
                           KeyIndex edge_key, const Bytes& payload) {
  if (!is_malicious(via)) return false;
  if (!holds_pool_key(edge_key)) return false;
  Envelope e;
  e.from = claimed_from;
  e.to = to;
  e.edge_key = edge_key;
  e.payload = payload;
  e.edge_mac = net_->keys().mac_context(edge_key).compute(payload);
  return net_->fabric().send_as(via, std::move(e));
}

std::optional<KeyIndex> AdversaryView::attack_key_for(NodeId target) const {
  std::optional<KeyIndex> best;
  for (NodeId m : malicious_) {
    for (KeyIndex k : net_->keys().keys_of(m)) {
      if (!net_->keys().node_holds(target, k)) continue;
      if (net_->revocation().is_key_revoked(k)) continue;
      if (!best.has_value() || k < *best) best = k;
      break;  // keys_of is sorted; first usable is smallest for m
    }
  }
  return best;
}

TriggerState AdversaryView::trigger_state(TracePhase phase,
                                          Interval slot) const {
  TriggerState state;
  state.phase = phase;
  state.slot = slot;
  state.revoked_keys = net_->revocation().revoked_key_count();
  state.revoked_sensors = net_->revocation().revoked_sensors_in_order().size();
  state.round = round_;
  return state;
}

std::vector<NodeId> AdversaryView::malicious_neighbors_of(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v : net_->topology().neighbors(node))
    if (is_malicious(v)) out.push_back(v);
  return out;
}

void AdversaryStrategy::on_tree_slot(AdversaryView&, const TreeCtx&) {}
void AdversaryStrategy::on_agg_slot(AdversaryView&, const AggCtx&) {}
void AdversaryStrategy::on_conf_slot(AdversaryView&, const ConfCtx&) {}

bool AdversaryStrategy::answer_predicate(AdversaryView&, const Predicate&,
                                         NodeId) {
  return false;
}

Reading AdversaryStrategy::own_reading(NodeId, Reading honest) {
  return honest;
}

Adversary::Adversary(Network* net, std::unordered_set<NodeId> malicious,
                     std::unique_ptr<AdversaryStrategy> strategy)
    : view_(net, std::move(malicious)), strategy_(std::move(strategy)) {
  if (strategy_ == nullptr)
    throw std::invalid_argument("Adversary: null strategy");
}

}  // namespace vmat
