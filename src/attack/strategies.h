// Concrete adversary strategies — the attack zoo used by tests, benches,
// and examples. Each models an attack family the paper discusses:
//
//   NullStrategy        dormant (passthrough) — the no-attack control.
//   SilentDropStrategy  malicious sensors transmit nothing at all, so every
//                       value routed through them is silently dropped
//                       (Section IV-B dropping attack).
//   ValueDropStrategy   participates but forwards the *largest* collected
//                       value instead of the smallest — the stealthy form
//                       of the dropping attack.
//   JunkInjectStrategy  injects spurious minima (invalid sensor MACs, tiny
//                       values, framed origins) during aggregation
//                       (Figure 1 step 4).
//   ChokeVetoStrategy   drops during aggregation, then floods spurious
//                       vetoes in SOF slot 1 to beat legitimate vetoes to
//                       every one-time forwarder — the choking attack of
//                       Section IV-C.
//   SelfVetoStrategy    hides its own small reading during aggregation and
//                       then vetoes it with a *valid* MAC (the "legitimate
//                       veto from a malicious sensor" case of Theorem 2).
//   WormholeStrategy    during tree formation, injects tree frames with
//                       forged hop counts through a wormhole (Figure 2(c));
//                       breaks hop-count trees, is harmless against VMAT's
//                       timestamp trees.
//   RandomByzantineStrategy  seeded random mixture of all of the above with
//                       random predicate-test answers — the fuzzing
//                       adversary for the Theorem 7 property tests.
//
// All strategies take a LiePolicy governing how malicious key holders
// answer keyed predicate tests: deny everything, admit everything, answer
// randomly, or answer honestly from the node's real records.
#pragma once

#include <memory>

#include "attack/adversary.h"
#include "util/random.h"

namespace vmat {

enum class LiePolicy : std::uint8_t {
  kDenyAll,   ///< never answer (stonewall the walk as early as possible)
  kAdmitAll,  ///< always answer yes (drag the walk on, frame if possible)
  kRandom,    ///< coin-flip per test (inconsistent-binary-search trigger)
};

/// Base with the shared predicate-answer policy. By default malicious
/// sensors *participate honestly in tree formation* (the profitable play:
/// attract children first, misbehave later); strategies that attack the
/// tree itself override on_tree_slot.
class PolicyStrategy : public AdversaryStrategy {
 public:
  explicit PolicyStrategy(LiePolicy policy, std::uint64_t seed = 7);

  void on_tree_slot(AdversaryView& view, const TreeCtx& ctx) override;

  [[nodiscard]] bool answer_predicate(AdversaryView& view,
                                      const Predicate& predicate,
                                      NodeId holder) override;

 private:
  LiePolicy policy_;
  Rng rng_;
};

/// Honest tree-formation behaviour for malicious sensors: rebroadcast the
/// flood in the slot after first receipt, exactly like an honest sensor.
void participate_in_tree_formation(AdversaryView& view, const TreeCtx& ctx);

class NullStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] bool passthrough() const override { return true; }
};

class SilentDropStrategy final : public PolicyStrategy {
 public:
  explicit SilentDropStrategy(LiePolicy policy = LiePolicy::kDenyAll)
      : PolicyStrategy(policy) {}
};

class ValueDropStrategy final : public PolicyStrategy {
 public:
  explicit ValueDropStrategy(LiePolicy policy = LiePolicy::kDenyAll)
      : PolicyStrategy(policy) {}

  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;
};

class JunkInjectStrategy final : public PolicyStrategy {
 public:
  explicit JunkInjectStrategy(LiePolicy policy = LiePolicy::kDenyAll,
                              bool frame_honest_origin = true)
      : PolicyStrategy(policy), frame_honest_origin_(frame_honest_origin) {}

  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;

 private:
  bool frame_honest_origin_;
};

class ChokeVetoStrategy final : public PolicyStrategy {
 public:
  explicit ChokeVetoStrategy(LiePolicy policy = LiePolicy::kDenyAll)
      : PolicyStrategy(policy) {}

  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;
};

class SelfVetoStrategy final : public PolicyStrategy {
 public:
  explicit SelfVetoStrategy(Reading hidden_value,
                            LiePolicy policy = LiePolicy::kDenyAll)
      : PolicyStrategy(policy), hidden_value_(hidden_value) {}

  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;

 private:
  Reading hidden_value_;
};

class WormholeStrategy final : public PolicyStrategy {
 public:
  /// `forged_hop_count` is what the injected tree frames claim; a large
  /// value pushes honest hop-count levels beyond L.
  explicit WormholeStrategy(std::int32_t forged_hop_count,
                            LiePolicy policy = LiePolicy::kDenyAll)
      : PolicyStrategy(policy), forged_hop_count_(forged_hop_count) {}

  void on_tree_slot(AdversaryView& view, const TreeCtx& ctx) override;

 private:
  std::int32_t forged_hop_count_;
};

class RandomByzantineStrategy final : public AdversaryStrategy {
 public:
  explicit RandomByzantineStrategy(std::uint64_t seed);

  void on_tree_slot(AdversaryView& view, const TreeCtx& ctx) override;
  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;
  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;
  [[nodiscard]] bool answer_predicate(AdversaryView& view,
                                      const Predicate& predicate,
                                      NodeId holder) override;
  [[nodiscard]] Reading own_reading(NodeId node, Reading honest) override;

 private:
  Rng rng_;
};

// --- shared attack building blocks (also used by tests) ---

/// Forward the per-instance *maximum* (dropping the minimum) from a
/// malicious node at its scheduled slot, to its recorded parents.
void forward_max_instead_of_min(AdversaryView& view, const AggCtx& ctx,
                                NodeId node);

/// Inject one spurious aggregation message (bogus MAC, very small value)
/// from `node` to all of its physical neighbors it shares a usable key
/// with. Claims `origin` as the message source.
void inject_junk_min(AdversaryView& view, const AggCtx& ctx, NodeId node,
                     NodeId claimed_origin);

/// Flood one spurious veto (bogus MAC) from `node` to all reachable
/// neighbors — the choking primitive.
void inject_spurious_veto(AdversaryView& view, const ConfCtx& ctx,
                          NodeId node, NodeId claimed_origin);

/// Send a *valid* veto for `value` from malicious `node` (its own sensor
/// key) to all reachable neighbors.
void inject_valid_self_veto(AdversaryView& view, const ConfCtx& ctx,
                            NodeId node, Reading value);

/// Pick `count` random non-base-station malicious nodes such that the
/// remaining honest subgraph stays connected (the paper's standing
/// assumption). Throws after too many attempts.
[[nodiscard]] std::unordered_set<NodeId> choose_malicious(
    const Topology& topology, std::uint32_t count, std::uint64_t seed);

}  // namespace vmat
