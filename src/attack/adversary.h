// The Byzantine adversary interface.
//
// The adversary compromises a set of sensors and learns exactly what those
// sensors know: their sensor keys and the keys in their rings (Section III).
// AdversaryView enforces that boundary — strategies can only MAC with held
// keys — while letting them do everything else Byzantine nodes can do:
// inject arbitrary frames to physical neighbors with arbitrary claimed
// senders, stay silent, lie in predicate tests, and coordinate globally
// (strategies see the whole network state, modeling a global eavesdropper).
//
// Phase drivers call the strategy hook at the *start* of every slot, before
// honest transmissions, which is the pessimistic race ordering choking
// attacks rely on.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/audit.h"
#include "core/messages.h"
#include "core/phase_state.h"
#include "sim/network.h"

namespace vmat {

/// A snapshot of the live execution state an attack trigger predicate is
/// evaluated over (campaign/predicate.h). AdversaryView fills the fields it
/// can see globally (phase, slot, revocation counts, execution round); the
/// per-phase hooks add what only their context knows (tree level, frame
/// contents).
struct TriggerState {
  TracePhase phase{TracePhase::kNone};
  Interval slot{0};
  /// Deepest tree level any malicious sensor was placed at (0 = unknown /
  /// not yet on a tree).
  Level deepest_level{0};
  std::size_t revoked_keys{0};
  std::size_t revoked_sensors{0};
  /// 1-based execution ordinal since this adversary was placed (bumped by
  /// the coordinator at the start of every execution's query phases).
  std::uint64_t round{0};
  /// Valid-envelope frames delivered to the malicious set so far this phase.
  std::size_t frames_seen{0};
  /// Smallest reading observed in those frames (kInfinity = none yet).
  Reading min_seen{kInfinity};

  friend bool operator==(const TriggerState&, const TriggerState&) = default;
};

class AdversaryView {
 public:
  AdversaryView(Network* net, std::unordered_set<NodeId> malicious);

  [[nodiscard]] Network& net() noexcept { return *net_; }
  [[nodiscard]] const Network& net() const noexcept { return *net_; }
  [[nodiscard]] const std::unordered_set<NodeId>& malicious() const noexcept {
    return malicious_;
  }
  [[nodiscard]] bool is_malicious(NodeId node) const noexcept {
    return malicious_.contains(node);
  }

  /// Does any compromised ring contain this pool key?
  [[nodiscard]] bool holds_pool_key(KeyIndex key) const;

  /// Key material for a held pool key. Throws if not held — the type-level
  /// guarantee that the adversary cannot MAC with keys it never learned.
  [[nodiscard]] SymmetricKey pool_key(KeyIndex key) const;

  /// Sensor key of a compromised sensor. Throws if the sensor is honest.
  [[nodiscard]] SymmetricKey sensor_key(NodeId node) const;

  /// Transmit a frame from malicious node `via` to its physical neighbor
  /// `to`, claiming sender `claimed_from`, authenticated with held pool key
  /// `edge_key`. Returns false if the key is not held, `via` is honest, or
  /// the fabric refused (no physical edge / capacity).
  bool inject(NodeId via, NodeId to, NodeId claimed_from, KeyIndex edge_key,
              const Bytes& payload);

  /// A non-revoked pool key held by the adversary that `target` also holds
  /// (so target will accept frames MAC'd with it), if any.
  [[nodiscard]] std::optional<KeyIndex> attack_key_for(NodeId target) const;

  /// Malicious physical neighbors of `node`.
  [[nodiscard]] std::vector<NodeId> malicious_neighbors_of(NodeId node) const;

  // --- trigger-predicate evaluation seam (campaign/predicate.h) ---

  /// Called by the coordinator at the start of every execution's query
  /// phases, so `(round>= N)` predicates can arm on a later execution.
  void begin_execution_round() noexcept { ++round_; }
  /// 1-based execution ordinal; 0 before the first execution.
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// The globally visible part of the trigger state: phase, slot, the
  /// revocation counters, and the execution round. Per-phase hook contexts
  /// add tree level and frame contents on top (campaign/strategy.h).
  [[nodiscard]] TriggerState trigger_state(TracePhase phase,
                                           Interval slot) const;

 private:
  Network* net_;
  std::unordered_set<NodeId> malicious_;
  std::uint64_t round_{0};
};

/// Read-only context handed to the tree-formation hook each slot.
struct TreeCtx {
  TreeMode mode{TreeMode::kTimestamp};
  Level depth_bound{0};
  std::uint64_t session{0};
  Interval slot{0};
  const std::vector<Level>* levels{nullptr};  ///< current partial levels
};

/// Read-only context handed to the aggregation hook each slot.
struct AggCtx {
  const TreeResult* tree{nullptr};
  const AggConfig* config{nullptr};
  Interval slot{0};
  /// Valid-envelope aggregation records delivered to malicious nodes so far
  /// this phase, indexed by node id (empty vectors for honest ids).
  const std::vector<std::vector<ReceivedRecord>>* malicious_received{nullptr};
  /// The messages each node would honestly originate, per node per instance.
  const std::vector<std::vector<AggMessage>>* own_messages{nullptr};
};

/// Read-only context handed to the confirmation hook each slot.
struct ConfCtx {
  const TreeResult* tree{nullptr};
  std::uint64_t nonce{0};
  Interval slot{0};
  const std::vector<Reading>* broadcast_minima{nullptr};  ///< per instance
  /// Valid-envelope vetoes delivered to malicious nodes, by node id.
  const std::vector<std::vector<VetoMsg>>* malicious_vetoes{nullptr};
};

/// Strategy hooks. Default implementations do nothing (a silent adversary:
/// malicious nodes never transmit and never answer predicate tests).
class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;

  /// When true, phase drivers treat the compromised nodes as honest (a
  /// dormant adversary). Used as the no-attack control in experiments.
  [[nodiscard]] virtual bool passthrough() const { return false; }

  virtual void on_tree_slot(AdversaryView& view, const TreeCtx& ctx);
  virtual void on_agg_slot(AdversaryView& view, const AggCtx& ctx);
  virtual void on_conf_slot(AdversaryView& view, const ConfCtx& ctx);

  /// Keyed predicate test: return true to emit the valid "yes" reply from
  /// malicious `holder` (the engine verifies the holder actually holds the
  /// tested key). Called once per test per malicious holder.
  [[nodiscard]] virtual bool answer_predicate(AdversaryView& view,
                                              const Predicate& predicate,
                                              NodeId holder);

  /// Reading a malicious node reports for itself (always "legitimate" — the
  /// secure aggregation problem does not police self-readings).
  [[nodiscard]] virtual Reading own_reading(NodeId node, Reading honest);

 protected:
  AdversaryStrategy() = default;
};

/// A placed adversary: compromised set + strategy + key view.
class Adversary {
 public:
  Adversary(Network* net, std::unordered_set<NodeId> malicious,
            std::unique_ptr<AdversaryStrategy> strategy);

  [[nodiscard]] bool is_malicious(NodeId node) const noexcept {
    return view_.is_malicious(node);
  }
  /// Byzantine = malicious and actively deviating (strategy not passthrough).
  [[nodiscard]] bool is_byzantine(NodeId node) const noexcept {
    return !strategy_->passthrough() && view_.is_malicious(node);
  }
  [[nodiscard]] AdversaryView& view() noexcept { return view_; }
  [[nodiscard]] AdversaryStrategy& strategy() noexcept { return *strategy_; }
  [[nodiscard]] const std::unordered_set<NodeId>& malicious() const noexcept {
    return view_.malicious();
  }

 private:
  AdversaryView view_;
  std::unique_ptr<AdversaryStrategy> strategy_;
};

/// Null-safe helper used throughout the phase drivers.
[[nodiscard]] inline bool byzantine(const Adversary* adv, NodeId node) noexcept {
  return adv != nullptr && adv->is_byzantine(node);
}

}  // namespace vmat
