#include "attack/strategies.h"

#include <stdexcept>

namespace vmat {
namespace {

/// A non-revoked key the adversary shares with `target`, preferring keys
/// actually usable for frames `target` will accept.
std::optional<KeyIndex> usable_attack_key(AdversaryView& view, NodeId target) {
  return view.attack_key_for(target);
}

/// The slot in which a sensor at level i transmits its bundle.
Interval send_slot_for_level(Level depth_bound, Level level) {
  return depth_bound - level + 1;
}

}  // namespace

PolicyStrategy::PolicyStrategy(LiePolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

void participate_in_tree_formation(AdversaryView& view, const TreeCtx& ctx) {
  const Bytes frame = encode(TreeFormationMsg{ctx.session, 0});
  for (NodeId m : view.malicious()) {
    const Level level = (*ctx.levels)[m.value];
    if (level == kNoLevel || level != ctx.slot - 1) continue;
    for (NodeId v : view.net().topology().neighbors(m)) {
      if (view.is_malicious(v) || v == kBaseStation) continue;
      const auto key = view.attack_key_for(v);
      if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
    }
  }
}

void PolicyStrategy::on_tree_slot(AdversaryView& view, const TreeCtx& ctx) {
  participate_in_tree_formation(view, ctx);
}

bool PolicyStrategy::answer_predicate(AdversaryView&, const Predicate&,
                                      NodeId) {
  switch (policy_) {
    case LiePolicy::kDenyAll:
      return false;
    case LiePolicy::kAdmitAll:
      return true;
    case LiePolicy::kRandom:
      return rng_.bernoulli(0.5);
  }
  return false;
}

// --- shared attack building blocks ---

void forward_max_instead_of_min(AdversaryView& view, const AggCtx& ctx,
                                NodeId node) {
  const Level level = ctx.tree->level[node.value];
  if (level < 1 || level > ctx.tree->depth_bound) return;
  if (ctx.slot != send_slot_for_level(ctx.tree->depth_bound, level)) return;

  // Collect: own honest messages + everything received from children.
  std::vector<const AggMessage*> best(ctx.config->instances, nullptr);
  auto consider = [&](const AggMessage& m) {
    if (m.instance >= ctx.config->instances) return;
    const AggMessage*& slot = best[m.instance];
    if (slot == nullptr || m.value > slot->value) slot = &m;  // keep the MAX
  };
  for (const auto& m : (*ctx.own_messages)[node.value]) consider(m);
  for (const auto& r : (*ctx.malicious_received)[node.value]) consider(r.msg);

  AggBundle bundle;
  for (const AggMessage* m : best)
    if (m != nullptr) bundle.entries.push_back(*m);
  if (bundle.entries.empty()) return;
  const Bytes frame = encode(bundle);

  for (const ParentLink& link : ctx.tree->parents[node.value])
    (void)view.inject(node, link.claimed_id, node, link.edge_key, frame);
}

void inject_junk_min(AdversaryView& view, const AggCtx& ctx, NodeId node,
                     NodeId claimed_origin) {
  (void)ctx;  // kept in the signature for hook uniformity
  AggMessage junk;
  junk.origin = claimed_origin;
  junk.instance = 0;
  junk.value = -1000000;  // beats every honest reading
  junk.weight = 0;
  // A MAC the adversary cannot actually compute: all-zero bytes.
  const Bytes frame = encode(AggBundle{{junk}});
  for (NodeId v : view.net().topology().neighbors(node)) {
    if (view.is_malicious(v)) continue;
    const auto key = usable_attack_key(view, v);
    if (key.has_value()) (void)view.inject(node, v, node, *key, frame);
  }
}

void inject_spurious_veto(AdversaryView& view, const ConfCtx& ctx, NodeId node,
                          NodeId claimed_origin) {
  VetoMsg veto;
  veto.origin = claimed_origin;
  veto.instance = 0;
  veto.value = (*ctx.broadcast_minima)[0] == kInfinity
                   ? -1
                   : (*ctx.broadcast_minima)[0] - 1;
  veto.level = 1;
  // mac left all-zero: spurious by construction.
  const Bytes frame = encode(veto);
  for (NodeId v : view.net().topology().neighbors(node)) {
    if (view.is_malicious(v)) continue;
    const auto key = usable_attack_key(view, v);
    if (key.has_value()) (void)view.inject(node, v, node, *key, frame);
  }
}

void inject_valid_self_veto(AdversaryView& view, const ConfCtx& ctx,
                            NodeId node, Reading value) {
  Level level = ctx.tree->level[node.value];
  if (level < 1 || level > ctx.tree->depth_bound) level = 1;
  const VetoMsg veto = make_veto(view.sensor_key(node), node, 0, value, level,
                                 ctx.nonce);
  const Bytes frame = encode(veto);
  for (NodeId v : view.net().topology().neighbors(node)) {
    if (view.is_malicious(v)) continue;
    const auto key = usable_attack_key(view, v);
    if (key.has_value()) (void)view.inject(node, v, node, *key, frame);
  }
}

// --- concrete strategies ---

void ValueDropStrategy::on_agg_slot(AdversaryView& view, const AggCtx& ctx) {
  for (NodeId m : view.malicious()) forward_max_instead_of_min(view, ctx, m);
}

void JunkInjectStrategy::on_agg_slot(AdversaryView& view, const AggCtx& ctx) {
  if (ctx.slot != 1) return;  // inject once, early, so it wins every min
  for (NodeId m : view.malicious()) {
    NodeId claimed = m;
    if (frame_honest_origin_) {
      // Frame an honest neighbor if one exists.
      for (NodeId v : view.net().topology().neighbors(m)) {
        if (!view.is_malicious(v) && v != kBaseStation) {
          claimed = v;
          break;
        }
      }
    }
    inject_junk_min(view, ctx, m, claimed);
  }
}

void ChokeVetoStrategy::on_conf_slot(AdversaryView& view, const ConfCtx& ctx) {
  if (ctx.slot != 1) return;  // race the legitimate vetoers in slot 1
  for (NodeId m : view.malicious()) inject_spurious_veto(view, ctx, m, m);
}

void SelfVetoStrategy::on_conf_slot(AdversaryView& view, const ConfCtx& ctx) {
  if (ctx.slot != 1) return;
  if ((*ctx.broadcast_minima)[0] <= hidden_value_) return;  // nothing to veto
  // One malicious sensor (the smallest id) vetoes its hidden value.
  NodeId vetoer = *view.malicious().begin();
  for (NodeId m : view.malicious())
    if (m < vetoer) vetoer = m;
  inject_valid_self_veto(view, ctx, vetoer, hidden_value_);
}

void WormholeStrategy::on_tree_slot(AdversaryView& view, const TreeCtx& ctx) {
  if (ctx.slot != 1) return;
  // Every malicious sensor immediately relays the (wormholed) tree frame
  // with a forged hop count to all honest neighbors.
  const Bytes frame = encode(TreeFormationMsg{ctx.session, forged_hop_count_});
  for (NodeId m : view.malicious()) {
    for (NodeId v : view.net().topology().neighbors(m)) {
      if (view.is_malicious(v) || v == kBaseStation) continue;
      const auto key = usable_attack_key(view, v);
      if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
    }
  }
}

RandomByzantineStrategy::RandomByzantineStrategy(std::uint64_t seed)
    : rng_(seed) {}

void RandomByzantineStrategy::on_tree_slot(AdversaryView& view,
                                           const TreeCtx& ctx) {
  for (NodeId m : view.malicious()) {
    if (!rng_.bernoulli(0.15)) continue;
    const Bytes frame = encode(TreeFormationMsg{
        ctx.session, static_cast<std::int32_t>(rng_.between(0, 100))});
    for (NodeId v : view.net().topology().neighbors(m)) {
      if (view.is_malicious(v) || v == kBaseStation) continue;
      const auto key = view.attack_key_for(v);
      if (key.has_value()) (void)view.inject(m, v, m, *key, frame);
    }
  }
}

void RandomByzantineStrategy::on_agg_slot(AdversaryView& view,
                                          const AggCtx& ctx) {
  for (NodeId m : view.malicious()) {
    const double coin = rng_.unit();
    if (coin < 0.3) {
      // silent drop: do nothing
    } else if (coin < 0.6) {
      forward_max_instead_of_min(view, ctx, m);
    } else if (coin < 0.75 && ctx.slot == 1) {
      inject_junk_min(view, ctx, m, m);
    }
  }
}

void RandomByzantineStrategy::on_conf_slot(AdversaryView& view,
                                           const ConfCtx& ctx) {
  if (ctx.slot != 1) return;
  for (NodeId m : view.malicious()) {
    const double coin = rng_.unit();
    if (coin < 0.25) {
      inject_spurious_veto(view, ctx, m, m);
    } else if (coin < 0.4) {
      inject_valid_self_veto(view, ctx, m,
                             (*ctx.broadcast_minima)[0] == kInfinity
                                 ? 0
                                 : (*ctx.broadcast_minima)[0] - 1);
    }
  }
}

bool RandomByzantineStrategy::answer_predicate(AdversaryView&,
                                               const Predicate&, NodeId) {
  return rng_.bernoulli(0.5);
}

Reading RandomByzantineStrategy::own_reading(NodeId, Reading honest) {
  return rng_.bernoulli(0.3) ? honest + static_cast<Reading>(rng_.between(-5, 50))
                             : honest;
}

std::unordered_set<NodeId> choose_malicious(const Topology& topology,
                                            std::uint32_t count,
                                            std::uint64_t seed) {
  if (count >= topology.node_count())
    throw std::invalid_argument("choose_malicious: too many malicious nodes");
  Rng rng(seed);
  for (int attempt = 0; attempt < 2000; ++attempt) {
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < count) {
      const NodeId candidate{static_cast<std::uint32_t>(
          rng.between(1, topology.node_count() - 1))};
      chosen.insert(candidate);
    }
    if (topology.connected(chosen)) return chosen;
  }
  throw std::runtime_error(
      "choose_malicious: could not keep the honest subgraph connected");
}

}  // namespace vmat
