// Composite and fuzzing adversaries.
//
// CompositeStrategy glues independently chosen sub-strategies per protocol
// phase, so tests can combine e.g. wormhole tree formation with value
// dropping and admit-all predicate answers — adaptive multi-front attacks.
//
// GarbageStrategy is the protocol fuzzer: in every slot of every phase each
// malicious node sprays random byte blobs (valid edge MACs over garbage, or
// corrupted copies of real messages) at its neighbors. Nothing it emits is
// well-formed, so the guarantee under test is pure robustness: honest
// decoders drop the noise and the execution behaves as if the adversary
// were silent.
#pragma once

#include <memory>

#include "attack/adversary.h"
#include "util/random.h"

namespace vmat {

class CompositeStrategy final : public AdversaryStrategy {
 public:
  /// Any sub-strategy may be null (that phase stays silent). Predicate
  /// answers delegate to `predicates` (null = deny all).
  CompositeStrategy(std::unique_ptr<AdversaryStrategy> tree,
                    std::unique_ptr<AdversaryStrategy> aggregation,
                    std::unique_ptr<AdversaryStrategy> confirmation,
                    std::unique_ptr<AdversaryStrategy> predicates);

  void on_tree_slot(AdversaryView& view, const TreeCtx& ctx) override;
  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;
  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;
  [[nodiscard]] bool answer_predicate(AdversaryView& view,
                                      const Predicate& predicate,
                                      NodeId holder) override;

 private:
  std::unique_ptr<AdversaryStrategy> tree_;
  std::unique_ptr<AdversaryStrategy> aggregation_;
  std::unique_ptr<AdversaryStrategy> confirmation_;
  std::unique_ptr<AdversaryStrategy> predicates_;
};

class GarbageStrategy final : public AdversaryStrategy {
 public:
  /// `blobs_per_slot` frames per malicious node per slot.
  GarbageStrategy(std::uint64_t seed, int blobs_per_slot = 2);

  void on_tree_slot(AdversaryView& view, const TreeCtx& ctx) override;
  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;
  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;
  [[nodiscard]] bool answer_predicate(AdversaryView& view,
                                      const Predicate& predicate,
                                      NodeId holder) override;

 private:
  void spray(AdversaryView& view);

  Rng rng_;
  int blobs_per_slot_;
};

}  // namespace vmat
