#include "attack/composite.h"

namespace vmat {

CompositeStrategy::CompositeStrategy(
    std::unique_ptr<AdversaryStrategy> tree,
    std::unique_ptr<AdversaryStrategy> aggregation,
    std::unique_ptr<AdversaryStrategy> confirmation,
    std::unique_ptr<AdversaryStrategy> predicates)
    : tree_(std::move(tree)),
      aggregation_(std::move(aggregation)),
      confirmation_(std::move(confirmation)),
      predicates_(std::move(predicates)) {}

void CompositeStrategy::on_tree_slot(AdversaryView& view, const TreeCtx& ctx) {
  if (tree_ != nullptr) tree_->on_tree_slot(view, ctx);
}

void CompositeStrategy::on_agg_slot(AdversaryView& view, const AggCtx& ctx) {
  if (aggregation_ != nullptr) aggregation_->on_agg_slot(view, ctx);
}

void CompositeStrategy::on_conf_slot(AdversaryView& view, const ConfCtx& ctx) {
  if (confirmation_ != nullptr) confirmation_->on_conf_slot(view, ctx);
}

bool CompositeStrategy::answer_predicate(AdversaryView& view,
                                         const Predicate& predicate,
                                         NodeId holder) {
  if (predicates_ == nullptr) return false;
  return predicates_->answer_predicate(view, predicate, holder);
}

GarbageStrategy::GarbageStrategy(std::uint64_t seed, int blobs_per_slot)
    : rng_(seed), blobs_per_slot_(blobs_per_slot) {}

void GarbageStrategy::spray(AdversaryView& view) {
  for (NodeId m : view.malicious()) {
    for (int i = 0; i < blobs_per_slot_; ++i) {
      // Random type tag (possibly valid) followed by random bytes: every
      // decoder sees every kind of malformed frame.
      Bytes blob;
      const auto len = static_cast<std::size_t>(rng_.between(0, 40));
      blob.reserve(len + 1);
      blob.push_back(static_cast<std::uint8_t>(rng_.between(0, 6)));
      for (std::size_t b = 0; b < len; ++b)
        blob.push_back(static_cast<std::uint8_t>(rng_.below(256)));
      for (NodeId v : view.net().topology().neighbors(m)) {
        if (view.is_malicious(v)) continue;
        const auto key = view.attack_key_for(v);
        if (key.has_value() && rng_.bernoulli(0.5))
          (void)view.inject(m, v, m, *key, blob);
      }
    }
  }
}

void GarbageStrategy::on_tree_slot(AdversaryView& view, const TreeCtx&) {
  spray(view);
}

void GarbageStrategy::on_agg_slot(AdversaryView& view, const AggCtx&) {
  spray(view);
}

void GarbageStrategy::on_conf_slot(AdversaryView& view, const ConfCtx&) {
  spray(view);
}

bool GarbageStrategy::answer_predicate(AdversaryView&, const Predicate&,
                                       NodeId) {
  return rng_.bernoulli(0.3);
}

}  // namespace vmat
