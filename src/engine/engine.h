// Epoch-batched query serving engine — the multi-query layer above
// VmatCoordinator/QueryEngine.
//
// QueryEngine runs one query per VMAT execution, and every execution pays
// for an authenticated announcement plus a full tree formation. The Engine
// amortizes that: queries are submitted into a queue, and each serving
// round packs up to max_in_flight of them into ONE wide execution over the
// current *epoch* — a tree formed once by prepare_epoch() and shared until
// a revocation (or rekey) invalidates it. The combined execution's
// instance space is the concatenation of per-query blocks; every synopsis
// block keeps its own query nonce and SynopsisCodec, so each query's
// synopses are exactly what a standalone execution would use and the
// per-execution security argument (Theorem 2 / Theorem 7) is unchanged —
// only the formation cost is shared.
//
// Disruption handling is the Theorem 7 retry loop: a disrupted execution
// revokes adversary key material, invalidates the epoch, and leaves the
// packed queries queued. Each query carries an execution budget (its
// deadline); the engine applies slow-start admission — after a disruption
// the next round packs a single query (so one disruption burns one query's
// attempt, not the whole batch's), and the window doubles per clean round
// back up to max_in_flight — plus a nominal exponential backoff counter
// (EngineStats::backoff) a deployment would sleep between rounds.
//
// Determinism contract: queries are packed in submission order, nonces are
// drawn serially before any parallel work, and the thread pool only builds
// per-block synopsis grids (pure PRG evaluation, disjoint column writes).
// Results are bit-identical for any VMAT_THREADS.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/coordinator.h"
#include "core/query.h"
#include "util/error.h"
#include "util/parallel.h"

namespace vmat {

enum class EngineQueryKind : std::uint8_t {
  kCount,     ///< predicate COUNT via exponential synopses
  kSum,       ///< SUM of non-negative readings via synopses
  kAverage,   ///< SUM / COUNT(reading > 0); both blocks ride one execution
  kMin,       ///< exact MIN of raw readings (one instance)
  kMax,       ///< exact MAX via MIN over negated readings
  kQuantile,  ///< q-quantile via a binary search of COUNT probes
};

[[nodiscard]] const char* to_string(EngineQueryKind kind) noexcept;

/// One query submitted to the engine. Payload vectors are indexed by node
/// id (entry 0, the base station, is ignored) and must cover every node.
struct EngineQuery {
  EngineQueryKind kind{EngineQueryKind::kCount};
  /// kCount: predicate[id] != 0 means node id satisfies the predicate.
  std::vector<std::uint8_t> predicate;
  /// kSum / kAverage / kQuantile: non-negative integer readings.
  std::vector<std::int64_t> readings;
  /// kMin / kMax: raw readings.
  std::vector<Reading> raw;
  /// kQuantile: the quantile in (0, 1) and the reading domain [0, max].
  double q{0.5};
  std::int64_t domain_max{0};
  /// Synopsis instances for this query; 0 = the coordinator's configured
  /// count. Ignored by kMin/kMax (always 1 instance).
  std::uint32_t instances{0};
  /// Execution budget (deadline): the query fails with kDeadlineExceeded
  /// after participating in this many executions. 0 = EngineConfig default.
  int max_executions{0};
};

struct EngineResult {
  std::uint64_t id{0};
  EngineQueryKind kind{EngineQueryKind::kCount};
  /// The estimate, when the query was answered. Exact for kMin/kMax.
  std::optional<double> estimate;
  /// kDeadlineExceeded / kBudgetExhausted / kUnavailable / kQueueFull /
  /// kInvalidArgument when the query was not answered.
  std::optional<Error> error;
  /// Executions this query participated in (clean and disrupted).
  int executions{0};
  /// Epoch that served the final execution (0 if never executed).
  std::uint64_t epoch_id{0};

  [[nodiscard]] bool answered() const noexcept { return estimate.has_value(); }
};

struct EngineConfig {
  /// Admission control: queries packed into one combined execution.
  std::uint32_t max_in_flight{16};
  /// Admission control: submissions beyond this fail with kQueueFull.
  std::size_t queue_depth{256};
  /// Width cap for one combined execution; a round stops packing when the
  /// next query's blocks would exceed it (the first query always fits).
  std::uint32_t max_instances_per_execution{8192};
  /// Default per-query execution budget (EngineQuery::max_executions = 0).
  int default_deadline{64};
  /// Nominal backoff doubling base/cap (rounds a deployment would wait
  /// between disrupted executions; surfaced via EngineStats::backoff).
  std::uint64_t backoff_base{1};
  std::uint64_t backoff_cap{64};
  /// Engine-level budget: drain() fails everything still pending with
  /// kBudgetExhausted once this many rounds have run.
  std::uint64_t max_rounds{100000};
};

/// Per-epoch rollup: formation cost plus everything served on that tree.
struct EpochRollup {
  std::uint64_t epoch_id{0};
  /// The epoch was re-armed from its snapshot instead of re-formed: zero
  /// formation rounds/bytes (the tree was restored, not re-flooded).
  bool rearmed{false};
  int formation_rounds{0};
  std::uint64_t formation_bytes{0};
  std::uint64_t executions{0};
  std::uint64_t queries_served{0};
  std::uint64_t fabric_bytes{0};  ///< execution bytes (formation excluded)
  /// Metered counters: the formation slice plus every execution slice
  /// served under this epoch.
  ExecutionMetrics metrics;
};

struct EngineStats {
  std::uint64_t rounds{0};
  std::uint64_t executions{0};
  std::uint64_t disrupted_executions{0};
  std::uint64_t epochs_formed{0};
  /// Epochs restored from their prepare_epoch() snapshot (rearm_epoch())
  /// instead of re-formed — the zero-flooding recovery path.
  std::uint64_t epochs_rearmed{0};
  std::uint64_t queries_answered{0};
  std::uint64_t queries_failed{0};
  /// Current nominal backoff (0 after a clean round).
  std::uint64_t backoff{0};
  /// Current admission window (slow-start state).
  std::uint32_t window{1};
  std::uint64_t fabric_bytes{0};  ///< executions + epoch formations
};

class Engine {
 public:
  /// `coordinator` must outlive the engine. `pool` runs the per-block grid
  /// builds; nullptr = ThreadPool::shared().
  explicit Engine(VmatCoordinator* coordinator, EngineConfig config = {},
                  ThreadPool* pool = nullptr);

  /// Enqueue a query. Fails with kInvalidArgument (malformed payload) or
  /// kQueueFull (queue_depth reached) without enqueuing.
  Expected<std::uint64_t> submit(EngineQuery query);

  /// Serve every queued query to completion (answer, deadline, or engine
  /// budget), one epoch-batched round at a time. Returns results in
  /// submission order and empties the queue.
  std::vector<EngineResult> drain();

  // --- non-blocking serving seams (the vmatd daemon drives these) ---

  /// Ensure the serving epoch is ready without running any query: re-arm
  /// it from its prepare_epoch() snapshot when possible, form it
  /// otherwise. No-op when the epoch is already ready. This is the
  /// pipelining seam — a multiplexer calls it on an idle tenant so the
  /// tree formation overlaps other tenants' serving rounds and the next
  /// burst of queries lands on a warm epoch.
  void prepare();

  /// Run at most ONE serving round (prepare() + pack + one combined
  /// execution + settle) if any query is open. Returns true while open
  /// queries remain afterwards — callers interleave step() across engines
  /// instead of blocking in drain(). Settled queries stay queued until
  /// take_ready() collects them.
  bool step();

  /// Remove and return every settled query's result (submission order
  /// preserved among them); open queries stay queued. The incremental
  /// counterpart of drain() for callers that poll.
  std::vector<EngineResult> take_ready();

  /// submit() + drain(): accepted queries come back in request order;
  /// submissions rejected by admission control are appended after them as
  /// failed results (id 0), not thrown.
  std::vector<EngineResult> run_batch(std::vector<EngineQuery> queries);

  [[nodiscard]] std::size_t queued() const noexcept { return pending_.size(); }
  /// Queued queries not yet settled (queued() also counts settled results
  /// awaiting take_ready()).
  [[nodiscard]] std::size_t open_queries() const noexcept {
    std::size_t open = 0;
    for (const Pending& p : pending_)
      if (!p.done) ++open;
    return open;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// One rollup per epoch formed by this engine, in formation order.
  [[nodiscard]] const std::vector<EpochRollup>& epoch_rollups() const noexcept {
    return epochs_;
  }

 private:
  struct Pending {
    std::uint64_t id{0};
    EngineQuery query;
    int executions{0};
    int deadline{0};
    bool done{false};
    EngineResult result;
    // kQuantile search state: phase 0 probes the total population, phase 1
    // binary-searches [lo, hi] for the target rank.
    int phase{0};
    double target{0.0};
    std::int64_t lo{0};
    std::int64_t hi{0};
    // kAverage: the SUM block's estimate, set when the round resolves.
    std::optional<double> sum_estimate;
  };

  /// One serving round: ensure an epoch, pack up to the admission window,
  /// run one combined execution, settle the packed queries.
  void run_round();
  void settle_failure(Pending& p, ErrorCode code, const char* detail);

  VmatCoordinator* coordinator_;
  EngineConfig config_;
  ThreadPool* pool_;
  std::vector<Pending> pending_;
  std::vector<EpochRollup> epochs_;
  EngineStats stats_;
  std::uint64_t next_id_{1};
};

}  // namespace vmat
