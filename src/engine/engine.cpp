#include "engine/engine.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

#include "core/synopsis.h"

namespace vmat {
namespace {

/// One instance block of a combined execution: the slice of the global
/// instance space [offset, offset + instances) owned by one query part.
struct Block {
  std::size_t pending_index{0};
  bool count_part{false};  ///< kAverage's COUNT block (part 1)
  bool synopsis{true};     ///< synopsis block vs exact-MIN block
  std::uint32_t offset{0};
  std::uint32_t instances{0};
  std::uint64_t nonce{0};               ///< synopsis query nonce
  std::vector<std::int64_t> weights;    ///< per-node weight (synopsis)
  std::vector<Reading> readings;        ///< per-node reading (exact MIN)
};

void add_metrics(ExecutionMetrics& into, const ExecutionMetrics& from) {
  for (std::size_t p = 0; p < kTracePhaseCount; ++p)
    into.phase[p] += from.phase[p];
}

}  // namespace

const char* to_string(EngineQueryKind kind) noexcept {
  switch (kind) {
    case EngineQueryKind::kCount: return "count";
    case EngineQueryKind::kSum: return "sum";
    case EngineQueryKind::kAverage: return "average";
    case EngineQueryKind::kMin: return "min";
    case EngineQueryKind::kMax: return "max";
    case EngineQueryKind::kQuantile: return "quantile";
  }
  return "?";
}

Engine::Engine(VmatCoordinator* coordinator, EngineConfig config,
               ThreadPool* pool)
    : coordinator_(coordinator),
      config_(config),
      pool_(pool != nullptr ? pool : &ThreadPool::shared()) {
  if (coordinator == nullptr)
    throw std::invalid_argument("Engine: null coordinator");
  if (config_.max_in_flight == 0 || config_.queue_depth == 0 ||
      config_.max_instances_per_execution == 0 || config_.default_deadline <= 0)
    throw std::invalid_argument("Engine: degenerate EngineConfig");
  // Full window until the first disruption; slow-start kicks in after.
  stats_.window = config_.max_in_flight;
}

Expected<std::uint64_t> Engine::submit(EngineQuery query) {
  const std::size_t n = coordinator_->network().node_count();
  auto invalid = [](std::string message) -> Error {
    return {ErrorCode::kInvalidArgument, std::move(message)};
  };
  switch (query.kind) {
    case EngineQueryKind::kCount:
      if (query.predicate.size() != n)
        return invalid("count: predicate must cover all nodes");
      break;
    case EngineQueryKind::kSum:
    case EngineQueryKind::kAverage:
      if (query.readings.size() != n)
        return invalid("sum/average: readings must cover all nodes");
      for (std::int64_t r : query.readings)
        if (r < 0) return invalid("sum/average: negative reading");
      break;
    case EngineQueryKind::kMin:
    case EngineQueryKind::kMax:
      if (query.raw.size() != n)
        return invalid("min/max: readings must cover all nodes");
      break;
    case EngineQueryKind::kQuantile:
      if (query.readings.size() != n)
        return invalid("quantile: readings must cover all nodes");
      if (!(query.q > 0.0 && query.q < 1.0))
        return invalid("quantile: require 0 < q < 1");
      if (query.domain_max < 0) return invalid("quantile: negative domain");
      for (std::int64_t r : query.readings)
        if (r < 0 || r > query.domain_max)
          return invalid("quantile: reading outside domain");
      break;
  }
  if (pending_.size() >= config_.queue_depth)
    return Error{ErrorCode::kQueueFull,
                 "Engine: queue_depth reached — drain() first"};

  Pending p;
  p.id = next_id_++;
  p.deadline = query.max_executions > 0 ? query.max_executions
                                        : config_.default_deadline;
  p.result.id = p.id;
  p.result.kind = query.kind;
  p.query = std::move(query);
  pending_.push_back(std::move(p));
  return pending_.back().id;
}

void Engine::settle_failure(Pending& p, ErrorCode code, const char* detail) {
  p.done = true;
  p.result.error = Error{code, detail};
  stats_.queries_failed += 1;
}

void Engine::prepare() {
  // Re-arm the shared tree from its snapshot when the epoch went stale
  // without a revocation (an intervening one-shot execution, say);
  // otherwise form (or re-form, after a revocation) it for real.
  if (coordinator_->epoch_ready()) return;
  if (coordinator_->rearm_epoch()) {
    stats_.epochs_rearmed += 1;
    EpochRollup rollup;
    rollup.epoch_id = coordinator_->epoch().id;
    rollup.rearmed = true;  // restored, not re-flooded: zero formation cost
    epochs_.push_back(std::move(rollup));
  } else {
    const Epoch& epoch = coordinator_->prepare_epoch();
    stats_.epochs_formed += 1;
    stats_.fabric_bytes += epoch.fabric_bytes;
    EpochRollup rollup;
    rollup.epoch_id = epoch.id;
    rollup.formation_rounds = epoch.formation_rounds;
    rollup.formation_bytes = epoch.fabric_bytes;
    rollup.metrics = epoch.metrics;
    epochs_.push_back(std::move(rollup));
  }
}

bool Engine::step() {
  bool open = false;
  for (const Pending& p : pending_)
    if (!p.done) { open = true; break; }
  if (!open) return false;
  if (stats_.rounds >= config_.max_rounds) {
    // Same engine-budget discipline as drain(): a step()-driven caller (the
    // vmatd tick loop) must not spin forever on a pathological tenant.
    for (Pending& p : pending_)
      if (!p.done)
        settle_failure(p, ErrorCode::kBudgetExhausted,
                       "engine round budget exhausted");
    return false;
  }
  run_round();
  for (const Pending& p : pending_)
    if (!p.done) return true;
  return false;
}

std::vector<EngineResult> Engine::take_ready() {
  std::vector<EngineResult> ready;
  std::size_t keep = 0;
  for (Pending& p : pending_) {
    if (p.done) {
      ready.push_back(std::move(p.result));
      continue;
    }
    // Guard the no-gap case: self-move-assignment would gut the query's
    // payload vectors and leave an open query with no predicate/readings.
    if (&pending_[keep] != &p) pending_[keep] = std::move(p);
    ++keep;
  }
  pending_.resize(keep);
  return ready;
}

void Engine::run_round() {
  stats_.rounds += 1;
  prepare();

  const std::size_t n = coordinator_->network().node_count();
  const std::uint32_t default_instances = coordinator_->config().instances;

  // --- pack: queries in submission order, up to the admission window and
  // the execution width cap; nonces are drawn serially here, before any
  // parallel work, so packing order fully determines every PRG stream ---
  std::vector<Block> blocks;
  std::vector<std::size_t> picked;
  std::uint32_t total = 0;
  for (std::size_t qi = 0;
       qi < pending_.size() && picked.size() < stats_.window; ++qi) {
    Pending& p = pending_[qi];
    if (p.done) continue;
    const std::uint32_t m =
        p.query.instances > 0 ? p.query.instances : default_instances;

    std::vector<Block> mine;
    mine.reserve(2);  // kAverage emits two blocks; pointers must stay valid
    auto synopsis_block = [&mine, qi, n](std::uint32_t instances,
                                         bool count_part) {
      Block b;
      b.pending_index = qi;
      b.count_part = count_part;
      b.instances = instances;
      b.weights.assign(n, 0);
      mine.push_back(std::move(b));
      return &mine.back();
    };
    switch (p.query.kind) {
      case EngineQueryKind::kCount: {
        Block* b = synopsis_block(m, false);
        for (std::size_t id = 1; id < n; ++id)
          b->weights[id] = p.query.predicate[id] ? 1 : 0;
        break;
      }
      case EngineQueryKind::kSum: {
        Block* b = synopsis_block(m, false);
        for (std::size_t id = 1; id < n; ++id)
          b->weights[id] = p.query.readings[id];
        break;
      }
      case EngineQueryKind::kAverage: {
        Block* s = synopsis_block(m, false);
        for (std::size_t id = 1; id < n; ++id)
          s->weights[id] = p.query.readings[id];
        Block* c = synopsis_block(m, true);
        for (std::size_t id = 1; id < n; ++id)
          c->weights[id] = p.query.readings[id] > 0 ? 1 : 0;
        break;
      }
      case EngineQueryKind::kQuantile: {
        const std::int64_t probe =
            p.phase == 0 ? p.query.domain_max : p.lo + (p.hi - p.lo) / 2;
        Block* b = synopsis_block(m, false);
        for (std::size_t id = 1; id < n; ++id)
          b->weights[id] = p.query.readings[id] <= probe ? 1 : 0;
        break;
      }
      case EngineQueryKind::kMin:
      case EngineQueryKind::kMax: {
        Block b;
        b.pending_index = qi;
        b.synopsis = false;
        b.instances = 1;
        b.readings.assign(n, kInfinity);
        const bool negate = p.query.kind == EngineQueryKind::kMax;
        for (std::size_t id = 1; id < n; ++id)
          b.readings[id] = negate ? -p.query.raw[id] : p.query.raw[id];
        mine.push_back(std::move(b));
        break;
      }
    }

    std::uint32_t width = 0;
    for (const Block& b : mine) width += b.instances;
    if (!picked.empty() && total + width > config_.max_instances_per_execution)
      break;
    for (Block& b : mine) {
      b.offset = total;
      total += b.instances;
      if (b.synopsis) b.nonce = coordinator_->fresh_nonce();
      blocks.push_back(std::move(b));
    }
    picked.push_back(qi);
  }
  if (picked.empty()) return;

  // --- grids: per-block synopsis rows in parallel. Blocks own disjoint
  // columns, so the writes never overlap; each PRG stream depends only on
  // the block's serially assigned nonce — bit-identical for any pool ---
  std::vector<std::optional<SynopsisCodec>> codecs(blocks.size());
  for (std::size_t bi = 0; bi < blocks.size(); ++bi)
    if (blocks[bi].synopsis) codecs[bi].emplace(blocks[bi].nonce);

  std::vector<std::vector<Reading>> values(n);
  std::vector<std::vector<std::int64_t>> weights(n);
  for (std::size_t id = 0; id < n; ++id) {
    values[id].assign(total, kInfinity);
    weights[id].assign(total, 0);
  }
  pool_->for_each(
      blocks.size(),
      [&blocks, &codecs, &values, &weights, n](std::size_t bi) {
        const Block& b = blocks[bi];
        if (!b.synopsis) {
          for (std::size_t id = 1; id < n; ++id)
            values[id][b.offset] = b.readings[id];
          return;
        }
        const SynopsisCodec& codec = *codecs[bi];
        for (std::size_t id = 1; id < n; ++id) {
          const std::int64_t w = b.weights[id];
          if (w <= 0) continue;
          codec.fill_values(
              NodeId{static_cast<std::uint32_t>(id)}, w,
              std::span<Reading>(values[id]).subspan(b.offset, b.instances));
          std::fill_n(weights[id].begin() + b.offset, b.instances, w);
        }
      });

  // --- combined validator: dispatch on the block owning the instance ---
  std::vector<std::uint32_t> ends(blocks.size());
  for (std::size_t bi = 0; bi < blocks.size(); ++bi)
    ends[bi] = blocks[bi].offset + blocks[bi].instances;
  auto validate = [&blocks, &codecs, &ends, total](const AggMessage& m) {
    if (m.instance >= total) return false;
    const std::size_t bi = static_cast<std::size_t>(
        std::upper_bound(ends.begin(), ends.end(), m.instance) - ends.begin());
    const Block& b = blocks[bi];
    if (!b.synopsis) return m.weight == 0;
    return m.weight > 0 &&
           codecs[bi]->value_for(m.origin, m.instance - b.offset, m.weight) ==
               m.value;
  };

  const ExecutionOutcome exec =
      coordinator_->run_query(values, weights, validate, total);

  stats_.executions += 1;
  stats_.fabric_bytes += exec.fabric_bytes;
  EpochRollup& rollup = epochs_.back();
  rollup.executions += 1;
  rollup.fabric_bytes += exec.fabric_bytes;
  add_metrics(rollup.metrics, exec.metrics);
  for (std::size_t qi : picked) {
    pending_[qi].executions += 1;
    pending_[qi].result.executions = pending_[qi].executions;
    pending_[qi].result.epoch_id = rollup.epoch_id;
  }

  // --- settle: disrupted executions burn an attempt; clean ones answer ---
  if (!exec.produced_result()) {
    stats_.disrupted_executions += 1;
    stats_.backoff = stats_.backoff == 0
                         ? config_.backoff_base
                         : std::min(stats_.backoff * 2, config_.backoff_cap);
    stats_.window = 1;
    for (std::size_t qi : picked) {
      Pending& p = pending_[qi];
      if (p.executions >= p.deadline)
        settle_failure(p, ErrorCode::kDeadlineExceeded,
                       "execution budget exhausted before an answer");
    }
    return;
  }
  stats_.backoff = 0;
  stats_.window = std::min(stats_.window * 2, config_.max_in_flight);

  for (const Block& b : blocks) {
    Pending& p = pending_[b.pending_index];
    const auto minima =
        std::span<const Reading>(exec.minima).subspan(b.offset, b.instances);
    if (!b.synopsis) {
      // Exact MIN/MAX: instance 0 of the block carries the answer.
      if (minima[0] == kInfinity) {
        settle_failure(p, ErrorCode::kUnavailable,
                       "min/max: no reading arrived");
        continue;
      }
      const double v = static_cast<double>(minima[0]);
      p.result.estimate = p.query.kind == EngineQueryKind::kMax ? -v : v;
      p.done = true;
      stats_.queries_answered += 1;
      rollup.queries_served += 1;
      continue;
    }
    const double estimate = estimate_sum(minima);
    switch (p.query.kind) {
      case EngineQueryKind::kCount:
      case EngineQueryKind::kSum:
        p.result.estimate = estimate;
        p.done = true;
        stats_.queries_answered += 1;
        break;
      case EngineQueryKind::kAverage:
        if (!b.count_part) {
          p.sum_estimate = estimate;
        } else {
          // Both blocks rode this execution; the SUM part settled first.
          p.result.estimate =
              estimate <= 0.0 ? 0.0 : *p.sum_estimate / estimate;
          p.done = true;
          stats_.queries_answered += 1;
        }
        break;
      case EngineQueryKind::kQuantile:
        if (p.phase == 0) {
          if (estimate <= 0.0) {
            // Empty population: report the bottom of the domain.
            p.result.estimate = 0.0;
            p.done = true;
            stats_.queries_answered += 1;
            break;
          }
          p.target = p.query.q * estimate;
          p.lo = 0;
          p.hi = p.query.domain_max;
          p.phase = 1;
        } else {
          const std::int64_t mid = p.lo + (p.hi - p.lo) / 2;
          if (estimate >= p.target)
            p.hi = mid;
          else
            p.lo = mid + 1;
        }
        if (p.phase == 1 && p.lo >= p.hi) {
          p.result.estimate = static_cast<double>(p.lo);
          p.done = true;
          stats_.queries_answered += 1;
        } else if (p.executions >= p.deadline) {
          settle_failure(p, ErrorCode::kDeadlineExceeded,
                         "quantile search unfinished within budget");
        }
        break;
      case EngineQueryKind::kMin:
      case EngineQueryKind::kMax:
        break;  // handled above (exact block)
    }
    if (p.done) rollup.queries_served += 1;
  }
}

std::vector<EngineResult> Engine::drain() {
  while (step()) {
  }
  std::vector<EngineResult> results;
  results.reserve(pending_.size());
  for (Pending& p : pending_) results.push_back(std::move(p.result));
  pending_.clear();
  return results;
}

std::vector<EngineResult> Engine::run_batch(std::vector<EngineQuery> queries) {
  std::vector<EngineResult> rejected;
  for (EngineQuery& q : queries) {
    const EngineQueryKind kind = q.kind;
    Expected<std::uint64_t> id = submit(std::move(q));
    if (!id) {
      EngineResult r;
      r.kind = kind;
      r.error = id.error();
      rejected.push_back(std::move(r));
    }
  }
  std::vector<EngineResult> results = drain();
  for (EngineResult& r : rejected) results.push_back(std::move(r));
  return results;
}

}  // namespace vmat
