#include "core/synopsis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vmat {

namespace {

/// Map one digest lane to a uniform (0,1) draw: 53 bits, with the
/// measure-zero all-zeros lane clamped to 2^-53 so log() stays finite.
/// Deterministic and public, so the validator recomputes it exactly.
double lane_unit_open(const Digest& d, std::uint32_t lane) noexcept {
  std::uint64_t raw = 0;
  for (int i = 0; i < 8; ++i)
    raw |= std::uint64_t{d[8 * lane + i]} << (8 * i);
  std::uint64_t bits = raw >> 11;
  if (bits == 0) bits = 1;
  return static_cast<double>(bits) * 0x1.0p-53;
}

}  // namespace

SynopsisCodec::SynopsisCodec(std::uint64_t nonce) noexcept
    : nonce_(nonce),
      prg_key_(derive_key("vmat.synopsis-prg", nonce, 0)),
      prg_state_(prg_key_.span()) {}

Digest SynopsisCodec::block_digest(NodeId origin, std::uint32_t block,
                                   std::int64_t weight) const noexcept {
  // Canonical LE encoding of (nonce, origin, block, weight) — the ByteWriter
  // layout, on the stack to keep the per-block cost at the two SHA-256
  // compressions of the cached key schedule.
  std::uint8_t msg[24];
  for (int i = 0; i < 8; ++i)
    msg[i] = static_cast<std::uint8_t>(nonce_ >> (8 * i));
  for (int i = 0; i < 4; ++i)
    msg[8 + i] = static_cast<std::uint8_t>(origin.value >> (8 * i));
  for (int i = 0; i < 4; ++i)
    msg[12 + i] = static_cast<std::uint8_t>(block >> (8 * i));
  const auto w = static_cast<std::uint64_t>(weight);
  for (int i = 0; i < 8; ++i)
    msg[16 + i] = static_cast<std::uint8_t>(w >> (8 * i));
  return prg_state_.mac(msg);
}

Reading SynopsisCodec::encode_value(double a) noexcept {
  if (a < 0.0) a = 0.0;
  const double scaled = a * kScale;
  if (scaled >= 9.0e18) return kInfinity - 1;
  return static_cast<Reading>(scaled);
}

double SynopsisCodec::decode_value(Reading v) noexcept {
  return static_cast<double>(v) / kScale;
}

Reading SynopsisCodec::value_for(NodeId origin, std::uint32_t instance,
                                 std::int64_t weight) const noexcept {
  const Digest d = block_digest(origin, instance / kLanes, weight);
  const double u = lane_unit_open(d, instance % kLanes);
  return encode_value(-std::log(u) / static_cast<double>(weight));
}

void SynopsisCodec::fill_values(NodeId origin, std::int64_t weight,
                                std::span<Reading> out) const noexcept {
  const double w = static_cast<double>(weight);
  for (std::uint32_t i = 0; i < out.size(); i += kLanes) {
    const Digest d = block_digest(origin, i / kLanes, weight);
    const std::uint32_t lanes =
        std::min<std::uint32_t>(kLanes, static_cast<std::uint32_t>(out.size()) - i);
    for (std::uint32_t lane = 0; lane < lanes; ++lane)
      out[i + lane] = encode_value(-std::log(lane_unit_open(d, lane)) / w);
  }
}

bool SynopsisCodec::consistent(const AggMessage& m) const noexcept {
  if (m.weight <= 0) return false;
  return m.value == value_for(m.origin, m.instance, m.weight);
}

double estimate_sum(std::span<const Reading> minima) noexcept {
  if (minima.empty()) return 0.0;
  double sum = 0.0;
  for (Reading v : minima) {
    if (v == kInfinity) return 0.0;
    sum += SynopsisCodec::decode_value(v);
  }
  const double a_min = sum / static_cast<double>(minima.size());
  return a_min <= 0.0 ? 0.0 : 1.0 / a_min;
}

std::uint32_t instances_for(double epsilon, double delta) {
  if (epsilon <= 0.0 || epsilon >= 1.0 || delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("instances_for: require 0 < ε, δ < 1");
  const double m = 2.0 / (epsilon * epsilon) * std::log(2.0 / delta);
  return static_cast<std::uint32_t>(std::ceil(m));
}

}  // namespace vmat
