#include "core/synopsis.h"

#include <cmath>
#include <stdexcept>

namespace vmat {

SynopsisCodec::SynopsisCodec(std::uint64_t nonce) noexcept
    : nonce_(nonce), prg_key_(derive_key("vmat.synopsis-prg", nonce, 0)) {}

Reading SynopsisCodec::encode_value(double a) noexcept {
  if (a < 0.0) a = 0.0;
  const double scaled = a * kScale;
  if (scaled >= 9.0e18) return kInfinity - 1;
  return static_cast<Reading>(scaled);
}

double SynopsisCodec::decode_value(Reading v) noexcept {
  return static_cast<double>(v) / kScale;
}

Reading SynopsisCodec::value_for(NodeId origin, std::uint32_t instance,
                                 std::int64_t weight) const noexcept {
  const double a = prf_exponential(prg_key_, nonce_, origin.value, instance,
                                   static_cast<std::uint64_t>(weight));
  return encode_value(a);
}

bool SynopsisCodec::consistent(const AggMessage& m) const noexcept {
  if (m.weight <= 0) return false;
  return m.value == value_for(m.origin, m.instance, m.weight);
}

double estimate_sum(std::span<const Reading> minima) noexcept {
  if (minima.empty()) return 0.0;
  double sum = 0.0;
  for (Reading v : minima) {
    if (v == kInfinity) return 0.0;
    sum += SynopsisCodec::decode_value(v);
  }
  const double a_min = sum / static_cast<double>(minima.size());
  return a_min <= 0.0 ? 0.0 : 1.0 / a_min;
}

std::uint32_t instances_for(double epsilon, double delta) {
  if (epsilon <= 0.0 || epsilon >= 1.0 || delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("instances_for: require 0 < ε, δ < 1");
  const double m = 2.0 / (epsilon * epsilon) * std::log(2.0 / delta);
  return static_cast<std::uint32_t>(std::ceil(m));
}

}  // namespace vmat
