// Pinpointing and revocation (Section VI, Figures 4-6).
//
// All three walks share one skeleton: alternate
//   (1) a Figure-5-style binary search over one sensor's key ring to find
//       the edge key it used on the trail (keyed on its *sensor* key), and
//   (2) a Figure-6-style binary search over the holders of that edge key to
//       find the next sensor on the trail (keyed on the *edge* key, with a
//       final re-confirmation on the found sensor's own key to defeat
//       framing),
// using keyed predicate tests as the only communication primitive. Any
// failed whole-window test, any inconsistent binary-search step (both
// halves failing), and any failed re-confirmation pins the blame on a key
// the adversary provably holds:
//   - an edge key is revoked individually, or
//   - a sensor caught lying on its own sensor key is fully revoked (its
//     ring seed is announced).
//
// veto_triggered:            walks the aggregation trail from the vetoer
//                            toward the base station (levels decreasing).
// junk_triggered_aggregation: walks from the base station toward the junk's
//                            unknown source (levels increasing).
// junk_triggered_confirmation: walks the SOF trail from the base station
//                            toward the unknown veto source (intervals
//                            decreasing).
//
// Guarantees (Lemmas 4-5, Theorem 6): every revoked key is held by some
// malicious sensor; an honest sensor is never revoked; the walk terminates
// after O(L) search phases of O(log n) predicate tests each.
#pragma once

#include <string>
#include <vector>

#include "attack/adversary.h"
#include "core/audit.h"
#include "core/phase_state.h"
#include "core/predicate_test.h"
#include "sim/network.h"

namespace vmat {

struct PinpointOutcome {
  /// Edge keys individually revoked by this run (usually exactly one).
  std::vector<KeyIndex> revoked_keys;
  /// Sensors fully revoked (directly or through the θ-threshold cascade).
  std::vector<NodeId> revoked_sensors;
  /// Which rule fired, for diagnostics and tests.
  std::string reason;
  CostMeter cost;

  [[nodiscard]] bool revoked_anything() const noexcept {
    return !revoked_keys.empty() || !revoked_sensors.empty();
  }
};

class PinpointEngine {
 public:
  PinpointEngine(Network* net, Adversary* adversary,
                 const AuditLog* audits, const TreeResult* tree,
                 PredicateTestMode mode = PredicateTestMode::kReachability,
                 Tracer tracer = {});

  /// Figure 4: the base station received a legitimate (valid-MAC) veto.
  [[nodiscard]] PinpointOutcome veto_triggered(const VetoMsg& veto);

  /// The base station received a spurious aggregation message on edge key
  /// `bs_in_edge` in slot `bs_slot`.
  [[nodiscard]] PinpointOutcome junk_triggered_aggregation(
      const AggMessage& junk, KeyIndex bs_in_edge, Interval bs_slot);

  /// The base station received a spurious veto on `bs_in_edge` in SOF
  /// interval `bs_interval`.
  [[nodiscard]] PinpointOutcome junk_triggered_confirmation(
      const VetoMsg& junk, KeyIndex bs_in_edge, Interval bs_interval);

 private:
  /// Figure-5-style: binary-search `owner`'s ring for a key matching
  /// `probe` (whose z-window fields are filled in per step). Returns the
  /// found key, or kNoKey after revoking `owner` (whole-window failure or
  /// inconsistency — the sensor key lied).
  [[nodiscard]] KeyIndex find_edge_key(NodeId owner, Predicate probe,
                                       PinpointOutcome& out,
                                       const char* what);

  /// Figure-6-style: binary-search the holders of `edge_key` for a sensor
  /// satisfying `probe` (id-window fields filled in per step), then
  /// re-confirm on its sensor key. Returns the found sensor, or kNoNode
  /// (represented as nullopt) after revoking `edge_key`.
  [[nodiscard]] std::optional<NodeId> find_holder(KeyIndex edge_key,
                                                  Predicate probe,
                                                  PinpointOutcome& out,
                                                  const char* what);

  void revoke_key(KeyIndex key, PinpointOutcome& out, std::string reason);
  void revoke_ring(NodeId node, PinpointOutcome& out, std::string reason);

  Network* net_;
  Adversary* adversary_;
  const AuditLog* audits_;
  const TreeResult* tree_;
  PredicateTestMode mode_;
  Tracer tracer_;
};

}  // namespace vmat
