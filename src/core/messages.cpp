#include "core/messages.h"

#include <algorithm>

namespace vmat {
namespace {

void put_mac(ByteWriter& w, const Mac& mac) { w.raw(mac.bytes); }

Mac get_mac(ByteReader& r) {
  Mac mac;
  r.raw_into(mac.bytes);
  return mac;
}

void put_agg_message(ByteWriter& w, const AggMessage& m) {
  w.u32(m.origin.value);
  w.u32(m.instance);
  w.i64(m.value);
  w.i64(m.weight);
  put_mac(w, m.mac);
}

AggMessage get_agg_message(ByteReader& r) {
  AggMessage m;
  m.origin = NodeId{r.u32()};
  m.instance = r.u32();
  m.value = r.i64();
  m.weight = r.i64();
  m.mac = get_mac(r);
  return m;
}

}  // namespace

Bytes encode(const TreeFormationMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTreeFormation));
  w.u64(m.session);
  w.u32(static_cast<std::uint32_t>(m.hop_count));
  return w.take();
}

Bytes encode(const AggBundle& m) {
  ByteWriter w;
  // 24 fixed bytes + MAC per entry; exact pre-size keeps the hot
  // aggregation path allocation-flat.
  w.reserve(5 + m.entries.size() * (24 + sizeof(Mac::bytes)));
  w.u8(static_cast<std::uint8_t>(MsgType::kAggBundle));
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const auto& e : m.entries) put_agg_message(w, e);
  return w.take();
}

Bytes encode(const VetoMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kVeto));
  w.u32(m.origin.value);
  w.u32(m.instance);
  w.i64(m.value);
  w.u32(static_cast<std::uint32_t>(m.level));
  put_mac(w, m.mac);
  return w.take();
}

Bytes encode(const PredicateReplyMsg& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPredicateReply));
  put_mac(w, m.reply);
  return w.take();
}

std::optional<MsgType> peek_type(std::span<const std::uint8_t> frame) noexcept {
  if (frame.empty()) return std::nullopt;
  switch (frame[0]) {
    case 1:
      return MsgType::kTreeFormation;
    case 2:
      return MsgType::kAggBundle;
    case 3:
      return MsgType::kVeto;
    case 4:
      return MsgType::kPredicateReply;
    default:
      return std::nullopt;
  }
}

std::optional<TreeFormationMsg> decode_tree(
    std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    if (r.u8() != static_cast<std::uint8_t>(MsgType::kTreeFormation))
      return std::nullopt;
    TreeFormationMsg m;
    m.session = r.u64();
    m.hop_count = static_cast<std::int32_t>(r.u32());
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<AggBundle> decode_agg(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    if (r.u8() != static_cast<std::uint8_t>(MsgType::kAggBundle))
      return std::nullopt;
    const std::uint32_t count = r.u32();
    // Sanity bound so a malformed length cannot cause a huge allocation.
    if (count > 100000) return std::nullopt;
    AggBundle m;
    m.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      m.entries.push_back(get_agg_message(r));
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<VetoMsg> decode_veto(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    if (r.u8() != static_cast<std::uint8_t>(MsgType::kVeto))
      return std::nullopt;
    VetoMsg m;
    m.origin = NodeId{r.u32()};
    m.instance = r.u32();
    m.value = r.i64();
    m.level = static_cast<Level>(r.u32());
    m.mac = get_mac(r);
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::optional<PredicateReplyMsg> decode_reply(
    std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    if (r.u8() != static_cast<std::uint8_t>(MsgType::kPredicateReply))
      return std::nullopt;
    PredicateReplyMsg m;
    m.reply = get_mac(r);
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

namespace {

// agg_mac_input's canonical layout, built into a caller buffer with no
// allocation: str("vmat.agg") | u64 nonce | u32 instance | i64 value |
// i64 weight — 12 + 8 + 4 + 8 + 8 bytes, all little-endian.
constexpr std::size_t kAggMacInputSize = 40;

void fill_agg_mac_input(std::uint8_t* out, std::uint64_t nonce,
                        std::uint32_t instance, Reading value,
                        std::int64_t weight) noexcept {
  constexpr char label[] = "vmat.agg";
  constexpr std::uint32_t label_len = 8;
  std::size_t at = 0;
  for (int i = 0; i < 4; ++i)
    out[at++] = static_cast<std::uint8_t>(label_len >> (8 * i));
  for (std::size_t i = 0; i < label_len; ++i)
    out[at++] = static_cast<std::uint8_t>(label[i]);
  for (int i = 0; i < 8; ++i)
    out[at++] = static_cast<std::uint8_t>(nonce >> (8 * i));
  for (int i = 0; i < 4; ++i)
    out[at++] = static_cast<std::uint8_t>(instance >> (8 * i));
  const auto v = static_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i)
    out[at++] = static_cast<std::uint8_t>(v >> (8 * i));
  const auto w = static_cast<std::uint64_t>(weight);
  for (int i = 0; i < 8; ++i)
    out[at++] = static_cast<std::uint8_t>(w >> (8 * i));
}

}  // namespace

Bytes agg_mac_input(std::uint64_t nonce, std::uint32_t instance, Reading value,
                    std::int64_t weight) {
  Bytes out(kAggMacInputSize);
  fill_agg_mac_input(out.data(), nonce, instance, value, weight);
  return out;
}

Bytes veto_mac_input(std::uint64_t nonce, std::uint32_t instance, Reading value,
                     Level level) {
  ByteWriter w;
  w.str("vmat.veto");
  w.u64(nonce);
  w.u32(instance);
  w.i64(value);
  w.u32(static_cast<std::uint32_t>(level));
  return w.take();
}

AggMessage make_agg_message(const MacContext& sensor_key, NodeId origin,
                            std::uint32_t instance, Reading value,
                            std::int64_t weight, std::uint64_t nonce) {
  AggMessage m;
  m.origin = origin;
  m.instance = instance;
  m.value = value;
  m.weight = weight;
  std::uint8_t input[kAggMacInputSize];
  fill_agg_mac_input(input, nonce, instance, value, weight);
  m.mac = sensor_key.compute(input);
  return m;
}

AggMessage make_agg_message(const SymmetricKey& sensor_key, NodeId origin,
                            std::uint32_t instance, Reading value,
                            std::int64_t weight, std::uint64_t nonce) {
  return make_agg_message(MacContext(sensor_key), origin, instance, value,
                          weight, nonce);
}

VetoMsg make_veto(const MacContext& sensor_key, NodeId origin,
                  std::uint32_t instance, Reading value, Level level,
                  std::uint64_t nonce) {
  VetoMsg m;
  m.origin = origin;
  m.instance = instance;
  m.value = value;
  m.level = level;
  m.mac = sensor_key.compute(veto_mac_input(nonce, instance, value, level));
  return m;
}

VetoMsg make_veto(const SymmetricKey& sensor_key, NodeId origin,
                  std::uint32_t instance, Reading value, Level level,
                  std::uint64_t nonce) {
  return make_veto(MacContext(sensor_key), origin, instance, value, level,
                   nonce);
}

bool verify_agg_message(const MacContext& sensor_key, const AggMessage& m,
                        std::uint64_t nonce) {
  return sensor_key.verify(agg_mac_input(nonce, m.instance, m.value, m.weight),
                           m.mac);
}

bool verify_agg_message(const SymmetricKey& sensor_key, const AggMessage& m,
                        std::uint64_t nonce) {
  return verify_agg_message(MacContext(sensor_key), m, nonce);
}

bool verify_veto(const MacContext& sensor_key, const VetoMsg& m,
                 std::uint64_t nonce) {
  return sensor_key.verify(veto_mac_input(nonce, m.instance, m.value, m.level),
                           m.mac);
}

bool verify_veto(const SymmetricKey& sensor_key, const VetoMsg& m,
                 std::uint64_t nonce) {
  return verify_veto(MacContext(sensor_key), m, nonce);
}

Digest message_identity(const AggMessage& m) {
  ByteWriter w;
  w.str("vmat.id.agg");
  put_agg_message(w, m);
  return Sha256::hash(w.bytes());
}

Digest message_identity(const VetoMsg& m) {
  return Sha256::hash(encode(m));
}

}  // namespace vmat
