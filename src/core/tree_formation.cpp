#include "core/tree_formation.h"

#include <stdexcept>

#include "core/phase_shard.h"
#include "util/parallel.h"

namespace vmat {
namespace {

/// Record a parent into a flat staging buffer, deduplicated by (claimed id,
/// edge key) against the node's links already staged. A node records all
/// its parents in one slot of one shard, so its entries form the trailing
/// run tagged with its id — the backward scan stops at the first foreign
/// tag.
void record_parent(std::vector<ParentTable::Tagged>& staged,
                   std::uint32_t node, ParentLink link) {
  for (std::size_t i = staged.size(); i-- > 0;) {
    if (staged[i].node != node) break;
    if (staged[i].link == link) return;
  }
  staged.push_back({node, link});
}

TreeResult run_timestamp_mode(Network& net, Adversary* adversary,
                              const TreePhaseParams& params,
                              Tracer tracer) {
  const std::uint32_t n = net.node_count();
  TreeResult result;
  result.session = params.session;
  result.mode = params.mode;
  result.depth_bound = params.depth_bound;
  result.level.assign(n, kNoLevel);
  result.level[kBaseStation.value] = 0;
  const Bytes flood_frame = encode(TreeFormationMsg{params.session, 0});

  // Level-parallel sharding (see core/phase_shard.h): only level-(slot-1)
  // sensors transmit each slot, but the cheap per-node filters run in-shard
  // so one pass covers all ids; sends replay serially in id order.
  net.warm_crypto_caches();
  const std::size_t shards = plan_shards(n);
  ThreadPool& pool = ThreadPool::shared();
  std::vector<ShardBuf> bufs(shards);
  // Flat per-shard parent staging, compacted into the CSR ParentTable at
  // phase end (a node records all its parents in the one slot it adopts a
  // level, within its owning shard).
  std::vector<std::vector<ParentTable::Tagged>> parent_stage(shards);

  for (Interval slot = 1; slot <= params.depth_bound; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      TreeCtx ctx;
      ctx.mode = params.mode;
      ctx.depth_bound = params.depth_bound;
      ctx.session = params.session;
      ctx.slot = slot;
      ctx.levels = &result.level;
      adversary->strategy().on_tree_slot(adversary->view(), ctx);
    }

    // Honest transmissions: the base station in slot 1; level-(slot-1)
    // sensors in slot `slot`.
    for_each_shard(
        n, shards, pool,
        [&net, &adversary, &result, &flood_frame, &bufs, slot](
            std::size_t shard, std::size_t begin, std::size_t end) {
          ShardBuf& buf = bufs[shard];
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (byzantine(adversary, node)) continue;
            if (net.revocation().is_sensor_revoked(node)) continue;
            const bool is_bs_turn = (node == kBaseStation && slot == 1);
            const bool is_sensor_turn =
                (node != kBaseStation && result.level[id] == slot - 1);
            if (!is_bs_turn && !is_sensor_turn) continue;
            for (NodeId v : net.topology().neighbors(node)) {
              const auto edge_key = net.usable_edge_key(node, v);
              if (!edge_key.has_value()) continue;
              TxStep step;
              step.from = node;
              step.to = v;
              step.edge_key = *edge_key;
              buf.stage_payload(step, flood_frame);
              buf.steps.push_back(std::move(step));
            }
          }
          compute_step_macs(net.keys(), buf);
        });
    replay_tx(net, bufs, nullptr, tracer);

    net.fabric().end_slot();

    // Receipt: unleveled nodes adopt this slot as their level.
    ShardedTrace rx_trace(tracer, shards);
    for_each_shard(
        n, shards, pool,
        [&net, &params, &result, &parent_stage, &bufs, &rx_trace, slot](
            std::size_t shard, std::size_t begin, std::size_t end) {
          Tracer shard_tracer = rx_trace.shard(shard);
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (node == kBaseStation) {
              (void)net.fabric().take_inbox(node);  // BS ignores tree frames
              continue;
            }
            if (net.revocation().is_sensor_revoked(node)) continue;
            auto frames = net.receive_valid(node, bufs[shard].rx,
                                            shard_tracer);
            if (result.level[id] != kNoLevel) continue;  // already leveled
            bool adopted = false;
            for (const auto& env : frames) {
              const auto msg = decode_tree(env.payload);
              if (!msg.has_value() || msg->session != params.session)
                continue;
              adopted = true;
              record_parent(parent_stage[shard],
                            static_cast<std::uint32_t>(id),
                            {env.from, env.edge_key});
            }
            if (adopted) result.level[id] = slot;
          }
        });
    rx_trace.merge();
  }
  result.parents = ParentTable::from_tagged(n, parent_stage);
  return result;
}

TreeResult run_hopcount_mode(Network& net, Adversary* adversary,
                             const TreePhaseParams& params,
                             Tracer tracer) {
  const std::uint32_t n = net.node_count();
  TreeResult result;
  result.session = params.session;
  result.mode = params.mode;
  result.depth_bound = params.depth_bound;
  result.level.assign(n, kNoLevel);
  result.level[kBaseStation.value] = 0;
  std::vector<std::vector<ParentTable::Tagged>> parent_stage(1);

  // Hop count each node will forward with, once, in the slot after receipt.
  std::vector<std::int32_t> pending_hop(n, -1);
  std::vector<bool> forwarded(n, false);

  const Interval slot_cap = 2 * params.depth_bound + 4;
  for (Interval slot = 1; slot <= slot_cap; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      TreeCtx ctx;
      ctx.mode = params.mode;
      ctx.depth_bound = params.depth_bound;
      ctx.session = params.session;
      ctx.slot = slot;
      ctx.levels = &result.level;
      adversary->strategy().on_tree_slot(adversary->view(), ctx);
    }

    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      if (byzantine(adversary, node)) continue;
      if (net.revocation().is_sensor_revoked(node)) continue;
      if (node == kBaseStation) {
        if (slot == 1)
          net.broadcast_secure(node, encode(TreeFormationMsg{params.session, 0}));
        continue;
      }
      if (pending_hop[id] >= 0 && !forwarded[id]) {
        net.broadcast_secure(node,
                             encode(TreeFormationMsg{params.session,
                                                     pending_hop[id] + 1}));
        forwarded[id] = true;
      }
    }

    net.fabric().end_slot();

    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      if (node == kBaseStation) {
        (void)net.fabric().take_inbox(node);
        continue;
      }
      if (net.revocation().is_sensor_revoked(node)) continue;
      auto frames = net.receive_valid(node);
      if (result.level[id] != kNoLevel) continue;
      for (const auto& env : frames) {
        const auto msg = decode_tree(env.payload);
        if (!msg.has_value() || msg->session != params.session) continue;
        // First frame wins, exactly as in TAG.
        result.level[id] = msg->hop_count + 1;
        pending_hop[id] = msg->hop_count;
        record_parent(parent_stage[0], id, {env.from, env.edge_key});
        break;
      }
    }
  }
  result.parents = ParentTable::from_tagged(n, parent_stage);
  return result;
}

}  // namespace

TreeResult run_tree_formation(Network& net, Adversary* adversary,
                              const TreePhaseParams& params,
                              Tracer tracer) {
  if (params.depth_bound < 1)
    throw std::invalid_argument("run_tree_formation: depth_bound must be >= 1");
  net.fabric().reset();
  TreeResult result = params.mode == TreeMode::kTimestamp
                          ? run_timestamp_mode(net, adversary, params, tracer)
                          : run_hopcount_mode(net, adversary, params, tracer);
  net.fabric().reset();
  return result;
}

}  // namespace vmat
