// On-wire protocol messages and their canonical encodings.
//
// Every frame body is a type-tagged canonical byte string; edge MACs are
// computed over exactly these bytes (sim/network.h), and the sensor-key MACs
// inside aggregation/veto messages are computed over the canonical
// `*_mac_input` encodings below.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/mac.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace vmat {

enum class MsgType : std::uint8_t {
  kTreeFormation = 1,
  kAggBundle = 2,
  kVeto = 3,
  kPredicateReply = 4,
};

/// Tree-formation flood message. `hop_count` is only meaningful in the
/// naive hop-count mode (the ablation baseline); VMAT's timestamp mode
/// ignores it by design (Section IV-A).
struct TreeFormationMsg {
  std::uint64_t session{0};
  std::int32_t hop_count{0};

  friend bool operator==(const TreeFormationMsg&,
                         const TreeFormationMsg&) = default;
};

/// One aggregation record: ⟨id, v, MAC_id(v ‖ nonce)⟩ from Section IV-B,
/// extended with the synopsis fields of Section VIII. For a plain MIN query
/// `weight` is 0 and `value` is the raw reading; for synopsis queries
/// `value` is the fixed-point-encoded exponential synopsis derived from
/// `weight`, which the base station re-derives and checks.
struct AggMessage {
  NodeId origin;
  std::uint32_t instance{0};
  Reading value{0};
  std::int64_t weight{0};
  Mac mac;

  friend bool operator==(const AggMessage&, const AggMessage&) = default;
};

/// The aggregation-phase frame: per-instance minima, one entry per instance
/// that has a value so far.
struct AggBundle {
  std::vector<AggMessage> entries;

  friend bool operator==(const AggBundle&, const AggBundle&) = default;
};

/// Veto: ⟨id, v, level, MAC_id(v ‖ level ‖ nonce)⟩ from Section IV-C.
struct VetoMsg {
  NodeId origin;
  std::uint32_t instance{0};
  Reading value{0};
  Level level{kNoLevel};
  Mac mac;

  friend bool operator==(const VetoMsg&, const VetoMsg&) = default;
};

/// The single legitimate reply of a keyed predicate test: MAC_K(N).
struct PredicateReplyMsg {
  Mac reply;

  friend bool operator==(const PredicateReplyMsg&,
                         const PredicateReplyMsg&) = default;
};

// --- canonical encodings ---

[[nodiscard]] Bytes encode(const TreeFormationMsg& m);
[[nodiscard]] Bytes encode(const AggBundle& m);
[[nodiscard]] Bytes encode(const VetoMsg& m);
[[nodiscard]] Bytes encode(const PredicateReplyMsg& m);

/// Peek at the type tag of an encoded frame (nullopt if empty/unknown).
[[nodiscard]] std::optional<MsgType> peek_type(
    std::span<const std::uint8_t> frame) noexcept;

/// Decoders return nullopt on any malformed input — the receiving code
/// treats such frames as spurious. They take spans so delivered frames
/// (whose payloads live in the fabric's slot arena) decode without a copy;
/// a Bytes converts implicitly.
[[nodiscard]] std::optional<TreeFormationMsg> decode_tree(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<AggBundle> decode_agg(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<VetoMsg> decode_veto(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::optional<PredicateReplyMsg> decode_reply(
    std::span<const std::uint8_t> frame);

// --- sensor-key MAC inputs ---

[[nodiscard]] Bytes agg_mac_input(std::uint64_t nonce, std::uint32_t instance,
                                  Reading value, std::int64_t weight);

[[nodiscard]] Bytes veto_mac_input(std::uint64_t nonce, std::uint32_t instance,
                                   Reading value, Level level);

/// Build a properly MAC'd aggregation message for a sensor. The MacContext
/// overloads are the hot path (cached key schedule via
/// Predistribution::sensor_mac_context); the SymmetricKey forms re-derive
/// the schedule per call.
[[nodiscard]] AggMessage make_agg_message(const MacContext& sensor_key,
                                          NodeId origin, std::uint32_t instance,
                                          Reading value, std::int64_t weight,
                                          std::uint64_t nonce);
[[nodiscard]] AggMessage make_agg_message(const SymmetricKey& sensor_key,
                                          NodeId origin, std::uint32_t instance,
                                          Reading value, std::int64_t weight,
                                          std::uint64_t nonce);

/// Build a properly MAC'd veto.
[[nodiscard]] VetoMsg make_veto(const MacContext& sensor_key, NodeId origin,
                                std::uint32_t instance, Reading value,
                                Level level, std::uint64_t nonce);
[[nodiscard]] VetoMsg make_veto(const SymmetricKey& sensor_key, NodeId origin,
                                std::uint32_t instance, Reading value,
                                Level level, std::uint64_t nonce);

/// Base-station verification of the sensor-key MAC inside a message.
[[nodiscard]] bool verify_agg_message(const MacContext& sensor_key,
                                      const AggMessage& m, std::uint64_t nonce);
[[nodiscard]] bool verify_agg_message(const SymmetricKey& sensor_key,
                                      const AggMessage& m, std::uint64_t nonce);
[[nodiscard]] bool verify_veto(const MacContext& sensor_key, const VetoMsg& m,
                               std::uint64_t nonce);
[[nodiscard]] bool verify_veto(const SymmetricKey& sensor_key, const VetoMsg& m,
                               std::uint64_t nonce);

/// Identity hash of a message, used by the junk-triggered audit walks to ask
/// "did you forward *this exact* message?".
[[nodiscard]] Digest message_identity(const AggMessage& m);
[[nodiscard]] Digest message_identity(const VetoMsg& m);

}  // namespace vmat
