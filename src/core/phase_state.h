// Shared state types produced/consumed by the protocol phases. Kept in a
// leaf header so the adversary hook interface (attack/adversary.h) and the
// phase drivers can both see them without a dependency cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace vmat {

/// How tree levels are derived during tree formation.
enum class TreeMode : std::uint8_t {
  kTimestamp,  ///< VMAT: level = slot of first receipt (Section IV-A)
  kHopCount,   ///< naive TAG-style baseline: level = hop count + 1
};

/// A parent as recorded by a child: the id the tree-formation frame claimed
/// to come from, and the edge key it was authenticated with. Only the edge
/// key is trustworthy; the id is the sender's claim.
struct ParentLink {
  NodeId claimed_id;
  KeyIndex edge_key{kNoKey};

  friend bool operator==(const ParentLink&, const ParentLink&) = default;
};

/// Output of the tree-formation phase.
struct TreeResult {
  std::uint64_t session{0};
  TreeMode mode{TreeMode::kTimestamp};
  Level depth_bound{0};  ///< the announced L
  std::vector<Level> level;                    ///< per node; kNoLevel if unset
  std::vector<std::vector<ParentLink>> parents;  ///< per node

  [[nodiscard]] bool has_valid_level(NodeId node) const {
    const Level l = level[node.value];
    return l >= 1 && l <= depth_bound;
  }
};

/// Parameters of one aggregation execution.
struct AggConfig {
  std::uint32_t instances{1};  ///< parallel MIN instances (synopses)
  std::uint64_t nonce{0};      ///< fresh per execution (Section IV-B)
  bool multipath{false};       ///< Section IV-D ring aggregation
};

}  // namespace vmat
