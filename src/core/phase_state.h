// Shared state types produced/consumed by the protocol phases. Kept in a
// leaf header so the adversary hook interface (attack/adversary.h) and the
// phase drivers can both see them without a dependency cycle.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/ids.h"

namespace vmat {

/// How tree levels are derived during tree formation.
enum class TreeMode : std::uint8_t {
  kTimestamp,  ///< VMAT: level = slot of first receipt (Section IV-A)
  kHopCount,   ///< naive TAG-style baseline: level = hop count + 1
};

/// A parent as recorded by a child: the id the tree-formation frame claimed
/// to come from, and the edge key it was authenticated with. Only the edge
/// key is trustworthy; the id is the sender's claim.
struct ParentLink {
  NodeId claimed_id;
  KeyIndex edge_key{kNoKey};

  friend bool operator==(const ParentLink&, const ParentLink&) = default;
};

/// Per-node parent sets in CSR form: one flat link pool plus an n+1 offset
/// row, instead of a vector-of-vectors (24 B header + one heap block per
/// node). Rows are immutable once compacted — tree formation builds into a
/// transient nested builder (a node records all its parents in the single
/// slot it adopts a level) and compacts at phase end.
class ParentTable {
 public:
  ParentTable() = default;

  /// Compact a per-node nested builder, consuming it row by row.
  static ParentTable from_nested(std::vector<std::vector<ParentLink>>&& rows) {
    ParentTable t;
    t.offsets_.reserve(rows.size() + 1);
    std::size_t total = 0;
    t.offsets_.push_back(0);
    for (const auto& row : rows) {
      total += row.size();
      t.offsets_.push_back(static_cast<std::uint32_t>(total));
    }
    t.links_.reserve(total);
    for (auto& row : rows) {
      t.links_.insert(t.links_.end(), row.begin(), row.end());
      row.clear();
      row.shrink_to_fit();
    }
    return t;
  }

  /// A link staged in a flat phase buffer, tagged with its recording node.
  struct Tagged {
    std::uint32_t node;
    ParentLink link;
  };

  /// Compact per-shard flat staging buffers (12 B per link, no per-node heap
  /// blocks — the large-n tree phase's transient peak stays flat). A node's
  /// links must all sit in one buffer in record order (phase shards own
  /// contiguous id ranges); the stable counting sort below then reproduces
  /// exactly the per-node order from_nested() would have produced.
  static ParentTable from_tagged(std::uint32_t node_count,
                                 const std::vector<std::vector<Tagged>>& bufs) {
    ParentTable t;
    t.offsets_.assign(node_count + 1, 0);
    std::size_t total = 0;
    for (const auto& buf : bufs) {
      for (const Tagged& e : buf) ++t.offsets_[e.node + 1];
      total += buf.size();
    }
    for (std::uint32_t id = 0; id < node_count; ++id)
      t.offsets_[id + 1] += t.offsets_[id];
    t.links_.resize(total);
    std::vector<std::uint32_t> cursor(t.offsets_.begin(),
                                      t.offsets_.end() - 1);
    for (const auto& buf : bufs)
      for (const Tagged& e : buf) t.links_[cursor[e.node]++] = e.link;
    return t;
  }

  /// Number of nodes covered (rows).
  [[nodiscard]] std::size_t size() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// The parent links recorded by node `id`, in record order.
  [[nodiscard]] std::span<const ParentLink> operator[](std::size_t id) const {
    if (id + 1 >= offsets_.size())
      throw std::out_of_range("ParentTable::operator[]");
    return std::span<const ParentLink>(links_.data() + offsets_[id],
                                       offsets_[id + 1] - offsets_[id]);
  }

  // Snapshot accessors (core/coordinator.cpp, section tag "TRE2").
  [[nodiscard]] const std::vector<std::uint32_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<ParentLink>& links() const noexcept {
    return links_;
  }
  void restore(std::vector<std::uint32_t> offsets,
               std::vector<ParentLink> links) {
    if (!offsets.empty() &&
        (offsets.front() != 0 || offsets.back() != links.size()))
      throw std::invalid_argument("ParentTable::restore: corrupt offsets");
    offsets_ = std::move(offsets);
    links_ = std::move(links);
  }

 private:
  std::vector<std::uint32_t> offsets_;  ///< size n+1 (empty = no nodes)
  std::vector<ParentLink> links_;
};

/// Output of the tree-formation phase.
struct TreeResult {
  std::uint64_t session{0};
  TreeMode mode{TreeMode::kTimestamp};
  Level depth_bound{0};  ///< the announced L
  std::vector<Level> level;  ///< per node; kNoLevel if unset
  ParentTable parents;       ///< per node, CSR (see ParentTable)

  [[nodiscard]] bool has_valid_level(NodeId node) const {
    const Level l = level[node.value];
    return l >= 1 && l <= depth_bound;
  }
};

/// Dense node-major value storage for per-node, per-instance readings and
/// weights: one flat row of `instances` entries per node (8 B each) instead
/// of a vector-of-vectors (24 B header + a heap block per node). The phase
/// drivers consume this form; the coordinator's nested public API converts
/// at the boundary (run_min builds it directly).
struct ValueTable {
  std::uint32_t node_count{0};
  std::uint32_t instances{0};
  std::vector<std::int64_t> data;  ///< node_count * instances, node-major

  ValueTable() = default;
  ValueTable(std::uint32_t n, std::uint32_t inst, std::int64_t fill)
      : node_count(n),
        instances(inst),
        data(static_cast<std::size_t>(n) * inst, fill) {}

  /// Convert a nested table, padding short rows with `pad` and ignoring
  /// entries beyond `inst` (exactly what the drivers' instance-bounded
  /// loops did with ragged nested rows: a padded kInfinity value
  /// contributes nothing and never undercuts a broadcast minimum; a padded
  /// 0 weight matches the default).
  static ValueTable from_nested(const std::vector<std::vector<std::int64_t>>& rows,
                                std::uint32_t inst, std::int64_t pad) {
    ValueTable t(static_cast<std::uint32_t>(rows.size()), inst, pad);
    for (std::size_t id = 0; id < rows.size(); ++id) {
      const auto& row = rows[id];
      for (std::uint32_t i = 0; i < inst && i < row.size(); ++i)
        t.data[id * inst + i] = row[i];
    }
    return t;
  }

  [[nodiscard]] std::span<const std::int64_t> row(std::uint32_t id) const {
    return std::span<const std::int64_t>(
        data.data() + static_cast<std::size_t>(id) * instances, instances);
  }
  [[nodiscard]] std::span<std::int64_t> row(std::uint32_t id) {
    return std::span<std::int64_t>(
        data.data() + static_cast<std::size_t>(id) * instances, instances);
  }
};

/// Parameters of one aggregation execution.
struct AggConfig {
  std::uint32_t instances{1};  ///< parallel MIN instances (synopses)
  std::uint64_t nonce{0};      ///< fresh per execution (Section IV-B)
  bool multipath{false};       ///< Section IV-D ring aggregation
};

}  // namespace vmat
