// Human-readable reporting for executions, revocation state, and
// deployments — the observability layer the CLI and examples print from.
// Together with util/stats, this is the sanctioned stdout sink for
// library code (vmat-lint: stdout-in-src).
#pragma once

#include <string>

#include "core/coordinator.h"
#include "sim/network.h"

namespace vmat {

/// One-line outcome summary, e.g.
///   "result: min=42 (6 rounds, 31.2 KB)" or
///   "revoked 1 key via veto walk: veto/fig6: no holder admits (53 tests)".
[[nodiscard]] std::string summarize(const ExecutionOutcome& outcome);

/// Multi-line detail: trigger, minima/revocations, costs.
[[nodiscard]] std::string describe(const ExecutionOutcome& outcome);

/// Revocation ledger: per-cause key counts, fully revoked sensors.
[[nodiscard]] std::string describe_revocations(const Network& net);

/// Deployment summary: nodes, edges, depth, degree stats, key regime.
[[nodiscard]] std::string describe_deployment(const Network& net);

/// Stable names for enums (also used by tests and the CLI).
[[nodiscard]] const char* to_string(Trigger trigger) noexcept;
[[nodiscard]] const char* to_string(OutcomeKind kind) noexcept;

}  // namespace vmat
