// Level-parallel phase-driver machinery.
//
// Within one slot, the phase drivers shard honest per-node work (bundle
// building, MAC computation, inbox verification) across the thread pool
// and keep the protocol's determinism contract by construction:
//
//   - TX: shards *buffer* their outgoing frames as TxSteps — edge MACs are
//     computed in-shard through a per-shard MacBatch, but nothing touches
//     the fabric. After the join, replay_tx() walks the buffers in shard
//     order (= global node-id order, since shards cover contiguous id
//     ranges) and performs the actual sends serially. Delivery order, the
//     loss-RNG consumption order, transmit-budget accounting, and the
//     traced event stream are therefore bit-identical to serial execution
//     for any thread count — and the adversary still transmits first, since
//     its strategy hook ran before the shards and its frames already sit in
//     the fabric's staging queue.
//   - RX: take_inbox()/receive_valid() are safe for distinct nodes, every
//     write the receipt loops perform is per-node state owned by exactly
//     one shard, and trace events buffer in a ShardedTrace that merges in
//     shard order after the join.
//
// One code path serves serial and parallel execution: plan_shards() returns
// 1 when intra-execution threading is off (or the node count is too small),
// and for_each_shard() then runs the single shard inline on the caller.
#pragma once

#include <cstdint>
#include <vector>

#include "core/audit.h"
#include "crypto/mac_batch.h"
#include "sim/network.h"
#include "trace/trace.h"
#include "util/ids.h"

namespace vmat {

/// One buffered transmit-side action, replayed serially after the shard
/// join. kSend transmits an already-MAC'd envelope; kVeto emits the
/// originated-veto trace event at its original position in the stream.
struct TxStep {
  enum class Kind : std::uint8_t { kSend, kVeto };
  Kind kind{Kind::kSend};
  /// kSend: wire fields, kept flat instead of as an Envelope (whose heap
  /// Bytes member would add 24 B of dead weight per buffered step — the
  /// payload bytes live in the owning ShardBuf's flat payload buffer via
  /// stage_payload(), so buffering a step never heap-allocates). edge_mac
  /// is filled in by compute_step_macs(); replay_tx() builds a stack
  /// Envelope per step.
  NodeId from;
  NodeId to;
  KeyIndex edge_key{kNoKey};
  Mac edge_mac;
  std::uint32_t payload_off{0};
  std::uint32_t payload_len{0};
  /// kSend: on send success, append env.edge_key to the sender's SOF
  /// out_edges (the SOF audit tuple records which edges the one-time flood
  /// actually went out on).
  bool track_out_edge{false};
  // kVeto event fields (mirrors Tracer::veto).
  NodeId actor;
  NodeId origin;
  Interval slot{0};
  std::int64_t value{0};
  bool originated{false};
};

/// Per-shard scratch: the TX step buffer, its flat payload bytes, the MAC
/// batch, and the RX scratch. Lives across slots so steady-state slots
/// allocate nothing.
struct ShardBuf {
  std::vector<TxStep> steps;
  Bytes payload_bytes;  // every buffered step's payload, back to back
  MacBatch batch;
  RxScratch rx;

  /// Copy `payload` into the shard's flat buffer and point `step` at it.
  void stage_payload(TxStep& step, std::span<const std::uint8_t> payload) {
    step.payload_off = static_cast<std::uint32_t>(payload_bytes.size());
    step.payload_len = static_cast<std::uint32_t>(payload.size());
    payload_bytes.insert(payload_bytes.end(), payload.begin(), payload.end());
  }

  [[nodiscard]] std::span<const std::uint8_t> payload_of(
      const TxStep& step) const {
    return std::span<const std::uint8_t>(payload_bytes)
        .subspan(step.payload_off, step.payload_len);
  }
};

/// Compute every buffered kSend step's edge MAC through the shard's
/// multi-buffer batch. Called at the end of a shard's TX pass, inside the
/// shard: MacContext lookups must already be warm
/// (Network::warm_crypto_caches()). Emits no trace events — mac_compute
/// fires at replay, via Network::send_prepared, exactly where the serial
/// driver emitted it.
inline void compute_step_macs(const Predistribution& keys, ShardBuf& buf) {
  buf.batch.clear();
  for (const TxStep& s : buf.steps)
    if (s.kind == TxStep::Kind::kSend)
      buf.batch.add(keys.mac_context(s.edge_key), buf.payload_of(s));
  buf.batch.compute();
  std::size_t lane = 0;
  for (TxStep& s : buf.steps)
    if (s.kind == TxStep::Kind::kSend) s.edge_mac = buf.batch.macs()[lane++];
}

/// Serially replay every shard's buffered TX steps in shard order and clear
/// the buffers. `sof_audits` is non-null only for the confirmation driver,
/// whose sends record their out-edges on success.
inline void replay_tx(Network& net, std::vector<ShardBuf>& bufs,
                      AuditLog* sof_audits, Tracer tracer) {
  for (ShardBuf& buf : bufs) {
    for (const TxStep& s : buf.steps) {
      switch (s.kind) {
        case TxStep::Kind::kSend: {
          Envelope env;
          env.from = s.from;
          env.to = s.to;
          env.edge_key = s.edge_key;
          env.edge_mac = s.edge_mac;
          const bool sent = net.send_prepared(env, buf.payload_of(s));
          if (sent && s.track_out_edge)
            sof_audits->sof_mut(s.from)->out_edges.push_back(s.edge_key);
          break;
        }
        case TxStep::Kind::kVeto:
          tracer.veto(s.actor, s.origin, s.slot, s.value, s.originated);
          break;
      }
    }
    buf.steps.clear();
    buf.payload_bytes.clear();
  }
}

}  // namespace vmat
