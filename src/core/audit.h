// Distributed audit trails (Sections IV-B, IV-C) and the predicates the
// pinpointing protocols evaluate against them (Figures 5 and 6).
//
// Each sensor stores, locally:
//  - for the aggregation phase, the tuples
//      ⟨level, message, sensor key, in-edge key, out-edge key⟩
//    split here into ReceivedRecord (what arrived from children, with the
//    in-edge key and the slot it arrived in) and ForwardRecord (what was
//    forwarded to which parent with which out-edge key);
//  - for the confirmation phase (SOF), the tuple
//      ⟨interval, message, sensor key, in-edge key, out-edge key⟩
//    as SofRecord.
//
// A keyed predicate test asks a yes/no question against these records; the
// honest evaluation lives here so that sensors, the base station, and the
// test engine all agree on semantics.
#pragma once

#include <optional>
#include <vector>

#include "core/messages.h"
#include "util/ids.h"

namespace vmat {

/// An aggregation message accepted from a child during the collection
/// window.
struct ReceivedRecord {
  AggMessage msg;
  KeyIndex in_edge{kNoKey};
  Interval slot{0};          ///< the slot it arrived in
  Level child_level{kNoLevel};  ///< L - slot + 1, fixed at record time
  NodeId claimed_sender;     ///< envelope `from` claim, unauthenticated
};

/// An aggregation message forwarded to a parent.
struct ForwardRecord {
  AggMessage msg;
  KeyIndex out_edge{kNoKey};
  NodeId parent;  ///< claimed parent id (tree-formation sender claim)
};

/// Audit state of one sensor for the aggregation phase.
struct AggregationAudit {
  Level level{kNoLevel};
  std::vector<ReceivedRecord> received;
  std::vector<ForwardRecord> forwarded;

  void clear() {
    level = kNoLevel;
    received.clear();
    forwarded.clear();
  }
};

/// Audit state of one sensor for one SOF execution. A sensor handles at
/// most one veto (one-time flooding), so at most one record.
struct SofRecord {
  VetoMsg msg;
  bool originated{false};
  Interval received_interval{0};  ///< 0 when originated
  Interval forward_interval{0};   ///< the interval it was sent/forwarded in
  KeyIndex in_edge{kNoKey};
  std::vector<KeyIndex> out_edges;  ///< one per neighbor flooded
};

/// Everything one sensor remembers for pinpointing.
struct NodeAudit {
  AggregationAudit agg;
  std::optional<SofRecord> sof;

  void clear() {
    agg.clear();
    sof.reset();
  }
};

// --- predicates ---

enum class PredicateKind : std::uint8_t {
  /// Figure 5 (veto walk): "at level `level`, forwarded an aggregation
  /// message of instance `instance` with value <= v_max, using an out-edge
  /// key whose pool index is in [z_lo, z_hi]".
  kAggForwardedValue,

  /// Figure 6 (veto walk): "being a sensor at level `level`-1, received,
  /// from a child at level `level` (i.e. in slot L-level+1), an aggregation
  /// message of instance `instance` with value <= v_max". Combined with the
  /// id window below. The own-level clause keeps the walk's level
  /// decrement sound: an honest admitter is guaranteed to be exactly one
  /// level up the trail.
  kAggReceivedValue,

  /// Junk walk, aggregation: "at level `level`, forwarded *exactly* the
  /// message with identity `msg_hash`, using out-edge key `bound_edge`".
  kJunkAggForwarded,

  /// Junk walk, aggregation: "at level `level`, received exactly `msg_hash`
  /// with an in-edge key whose pool index is in [z_lo, z_hi]".
  kJunkAggReceived,

  /// Junk walk, confirmation: "in SOF interval `level`, sent/forwarded
  /// exactly `msg_hash` using out-edge key `bound_edge`".
  kJunkSofForwarded,

  /// Junk walk, confirmation: "received exactly `msg_hash` in SOF interval
  /// `level`, with an in-edge key whose pool index is in [z_lo, z_hi]".
  kJunkSofReceived,
};

/// A predicate disseminated by a keyed predicate test. `level` doubles as
/// the SOF interval for the kJunkSof* kinds. The id window [id_lo, id_hi]
/// applies to every kind (Figure 6 binary-searches on it; Figure 5 tests
/// key a single sensor via its sensor key, where the window is the full
/// range).
struct Predicate {
  PredicateKind kind{PredicateKind::kAggForwardedValue};
  std::uint32_t instance{0};
  Reading v_max{0};
  Level level{0};
  NodeId id_lo{0};
  NodeId id_hi{0};
  KeyIndex z_lo{0};
  KeyIndex z_hi{0};
  KeyIndex bound_edge{kNoKey};
  Digest msg_hash{};
};

/// Canonical encoding, part of the predicate test's broadcast and of the
/// reply MAC input.
[[nodiscard]] Bytes encode_predicate(const Predicate& p);

/// Honest evaluation of a predicate by sensor `self` against its audit
/// records. The key-possession part of the test is checked by the engine;
/// this is only the behavioural clause.
[[nodiscard]] bool evaluate_predicate(const Predicate& p, NodeId self,
                                      const NodeAudit& audit);

}  // namespace vmat
