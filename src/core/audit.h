// Distributed audit trails (Sections IV-B, IV-C) and the predicates the
// pinpointing protocols evaluate against them (Figures 5 and 6).
//
// Each sensor stores, locally:
//  - for the aggregation phase, the tuples
//      ⟨level, message, sensor key, in-edge key, out-edge key⟩
//    split here into ReceivedRecord (what arrived from children, with the
//    in-edge key and the slot it arrived in) and ForwardRecord (what was
//    forwarded to which parent with which out-edge key);
//  - for the confirmation phase (SOF), the tuple
//      ⟨interval, message, sensor key, in-edge key, out-edge key⟩
//    as SofRecord.
//
// A keyed predicate test asks a yes/no question against these records; the
// honest evaluation lives here so that sensors, the base station, and the
// test engine all agree on semantics.
#pragma once

#include <optional>
#include <vector>

#include "core/messages.h"
#include "util/ids.h"

namespace vmat {

/// An aggregation message accepted from a child during the collection
/// window.
struct ReceivedRecord {
  AggMessage msg;
  KeyIndex in_edge{kNoKey};
  Interval slot{0};          ///< the slot it arrived in
  Level child_level{kNoLevel};  ///< L - slot + 1, fixed at record time
  NodeId claimed_sender;     ///< envelope `from` claim, unauthenticated
};

/// An aggregation message forwarded to a parent.
struct ForwardRecord {
  AggMessage msg;
  KeyIndex out_edge{kNoKey};
  NodeId parent;  ///< claimed parent id (tree-formation sender claim)
};

/// Audit state of one sensor for one SOF execution. A sensor handles at
/// most one veto (one-time flooding), so at most one record.
struct SofRecord {
  VetoMsg msg;
  bool originated{false};
  Interval received_interval{0};  ///< 0 when originated
  Interval forward_interval{0};   ///< the interval it was sent/forwarded in
  KeyIndex in_edge{kNoKey};
  std::vector<KeyIndex> out_edges;  ///< one per neighbor flooded
};

/// The distributed audit store for every sensor, in flat pooled form.
///
/// The pre-diet layout was a `std::vector<NodeAudit>` — per node two record
/// vectors plus an inline `std::optional<SofRecord>`, ~160 B of headers and
/// one-to-three heap blocks per node before a single record landed. At the
/// 10^5..10^6-sensor scale that dominated the resident set, so records now
/// live in shared pools:
///
///  - Received/forwarded rows append to per-shard pools (one pool per
///    phase-driver shard) and chain per node through u32 `next` links. A
///    node is owned by exactly one shard, so appends are race-free under
///    the phase drivers' level-parallel sharding, and per-node chain order
///    equals arrival order regardless of thread count (in-memory pool
///    layout varies with the shard plan; every observable iteration and
///    the snapshot encoding are canonical per-node order).
///  - The SOF record is one optional pooled slot per node (at most one
///    veto per sensor per execution) — sparse, so a clean large-n run
///    stores zero SofRecords instead of n empty optionals.
///
/// Per node the log keeps a 24 B chain-head entry plus a 4 B level; all
/// record payloads are pooled. Appends for a given node must consistently
/// pass that node's owning shard index; serial callers (tests, snapshot
/// restore, the hop-count tree baseline) use shard 0.
class AuditLog {
 public:
  AuditLog() = default;
  explicit AuditLog(std::uint32_t node_count)
      : nodes_(node_count), level_(node_count, kNoLevel) {}

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Start an aggregation phase: drop every record (rows, SOF, levels) and
  /// provision `shards` append pools.
  void begin_aggregation(std::size_t shards) {
    pools_.clear();
    pools_.resize(shards == 0 ? 1 : shards);
    const std::size_t n = nodes_.size();
    nodes_.assign(n, {});
    level_.assign(n, kNoLevel);
  }

  /// Start a confirmation (SOF) phase: drop SOF records only — the
  /// aggregation rows stay for pinpointing.
  void begin_sof(std::size_t shards) {
    if (pools_.size() < shards) pools_.resize(shards);
    if (pools_.empty()) pools_.resize(1);
    for (Pool& p : pools_) p.sof.clear();
    for (NodeState& s : nodes_) s.sof = kNil;
  }

  void set_level(NodeId node, Level level) { level_[node.value] = level; }
  [[nodiscard]] Level level(NodeId node) const {
    return level_[node.value];
  }

  // --- appends (race-free for distinct shard-owned nodes) ---

  void add_received(std::size_t shard, NodeId node, const ReceivedRecord& rec) {
    Pool& p = pools_[shard];
    NodeState& s = nodes_[node.value];
    const auto idx = static_cast<std::uint32_t>(p.recv.size());
    p.recv.push_back({rec, kNil});
    if (s.recv_head == kNil) {
      s.recv_head = idx;
      s.row_pool = static_cast<std::uint8_t>(shard);
    } else {
      p.recv[s.recv_tail].next = idx;
    }
    s.recv_tail = idx;
  }

  void add_forwarded(std::size_t shard, NodeId node, const ForwardRecord& rec) {
    Pool& p = pools_[shard];
    NodeState& s = nodes_[node.value];
    const auto idx = static_cast<std::uint32_t>(p.fwd.size());
    p.fwd.push_back({rec, kNil});
    if (s.fwd_head == kNil) {
      s.fwd_head = idx;
      s.row_pool = static_cast<std::uint8_t>(shard);
    } else {
      p.fwd[s.fwd_tail].next = idx;
    }
    s.fwd_tail = idx;
  }

  /// Record the node's one SOF tuple (callers check has_sof() first —
  /// one-time flooding handles at most one veto per node).
  void set_sof(std::size_t shard, NodeId node, SofRecord rec) {
    Pool& p = pools_[shard];
    NodeState& s = nodes_[node.value];
    s.sof = static_cast<std::uint32_t>(p.sof.size());
    s.sof_pool = static_cast<std::uint8_t>(shard);
    p.sof.push_back(std::move(rec));
  }

  [[nodiscard]] bool has_sof(NodeId node) const {
    return nodes_[node.value].sof != kNil;
  }
  [[nodiscard]] const SofRecord* sof(NodeId node) const {
    const NodeState& s = nodes_[node.value];
    if (s.sof == kNil) return nullptr;
    return &pools_[s.sof_pool].sof[s.sof];
  }
  /// Mutable SOF access (replay_tx appends out-edges on send success).
  /// Serial-only: pool growth elsewhere may relocate records.
  [[nodiscard]] SofRecord* sof_mut(NodeId node) {
    const NodeState& s = nodes_[node.value];
    if (s.sof == kNil) return nullptr;
    return &pools_[s.sof_pool].sof[s.sof];
  }

  // --- iteration, per-node arrival order ---

  template <class F>
  void for_each_received(NodeId node, F&& f) const {
    const NodeState& s = nodes_[node.value];
    if (s.recv_head == kNil) return;
    const Pool& p = pools_[s.row_pool];
    for (std::uint32_t i = s.recv_head; i != kNil; i = p.recv[i].next)
      f(p.recv[i].rec);
  }

  template <class F>
  void for_each_forwarded(NodeId node, F&& f) const {
    const NodeState& s = nodes_[node.value];
    if (s.fwd_head == kNil) return;
    const Pool& p = pools_[s.row_pool];
    for (std::uint32_t i = s.fwd_head; i != kNil; i = p.fwd[i].next)
      f(p.fwd[i].rec);
  }

  /// Materialized per-node copies, in arrival order — snapshot encoding and
  /// test assertions; cold paths only.
  [[nodiscard]] std::vector<ReceivedRecord> received_of(NodeId node) const {
    std::vector<ReceivedRecord> out;
    for_each_received(node, [&](const ReceivedRecord& r) { out.push_back(r); });
    return out;
  }
  [[nodiscard]] std::vector<ForwardRecord> forwarded_of(NodeId node) const {
    std::vector<ForwardRecord> out;
    for_each_forwarded(node, [&](const ForwardRecord& r) { out.push_back(r); });
    return out;
  }

 private:
  struct RecvRow {
    ReceivedRecord rec;
    std::uint32_t next;
  };
  struct FwdRow {
    ForwardRecord rec;
    std::uint32_t next;
  };
  struct Pool {
    std::vector<RecvRow> recv;
    std::vector<FwdRow> fwd;
    std::vector<SofRecord> sof;
  };
  struct NodeState {
    std::uint32_t recv_head{kNil}, recv_tail{kNil};
    std::uint32_t fwd_head{kNil}, fwd_tail{kNil};
    std::uint32_t sof{kNil};
    std::uint8_t row_pool{0};  ///< pool owning both row chains
    std::uint8_t sof_pool{0};
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  std::vector<Pool> pools_;
  std::vector<NodeState> nodes_;
  std::vector<Level> level_;
};

// --- predicates ---

enum class PredicateKind : std::uint8_t {
  /// Figure 5 (veto walk): "at level `level`, forwarded an aggregation
  /// message of instance `instance` with value <= v_max, using an out-edge
  /// key whose pool index is in [z_lo, z_hi]".
  kAggForwardedValue,

  /// Figure 6 (veto walk): "being a sensor at level `level`-1, received,
  /// from a child at level `level` (i.e. in slot L-level+1), an aggregation
  /// message of instance `instance` with value <= v_max". Combined with the
  /// id window below. The own-level clause keeps the walk's level
  /// decrement sound: an honest admitter is guaranteed to be exactly one
  /// level up the trail.
  kAggReceivedValue,

  /// Junk walk, aggregation: "at level `level`, forwarded *exactly* the
  /// message with identity `msg_hash`, using out-edge key `bound_edge`".
  kJunkAggForwarded,

  /// Junk walk, aggregation: "at level `level`, received exactly `msg_hash`
  /// with an in-edge key whose pool index is in [z_lo, z_hi]".
  kJunkAggReceived,

  /// Junk walk, confirmation: "in SOF interval `level`, sent/forwarded
  /// exactly `msg_hash` using out-edge key `bound_edge`".
  kJunkSofForwarded,

  /// Junk walk, confirmation: "received exactly `msg_hash` in SOF interval
  /// `level`, with an in-edge key whose pool index is in [z_lo, z_hi]".
  kJunkSofReceived,
};

/// A predicate disseminated by a keyed predicate test. `level` doubles as
/// the SOF interval for the kJunkSof* kinds. The id window [id_lo, id_hi]
/// applies to every kind (Figure 6 binary-searches on it; Figure 5 tests
/// key a single sensor via its sensor key, where the window is the full
/// range).
struct Predicate {
  PredicateKind kind{PredicateKind::kAggForwardedValue};
  std::uint32_t instance{0};
  Reading v_max{0};
  Level level{0};
  NodeId id_lo{0};
  NodeId id_hi{0};
  KeyIndex z_lo{0};
  KeyIndex z_hi{0};
  KeyIndex bound_edge{kNoKey};
  Digest msg_hash{};
};

/// Canonical encoding, part of the predicate test's broadcast and of the
/// reply MAC input.
[[nodiscard]] Bytes encode_predicate(const Predicate& p);

/// Honest evaluation of a predicate by sensor `self` against its audit
/// records. The key-possession part of the test is checked by the engine;
/// this is only the behavioural clause.
[[nodiscard]] bool evaluate_predicate(const Predicate& p, NodeId self,
                                      const AuditLog& audits);

}  // namespace vmat
