// Continuous secure monitoring on top of the query engine.
//
// Long-running deployments ask the same query every epoch (e.g. "average
// battery level, every 10 minutes"). MonitorService wraps that loop around
// VMAT's guarantee: a disrupted execution is retried within the epoch, and
// because every disruption revokes adversary key material (Theorem 7), the
// retry budget is spent against a strictly shrinking opponent. The service
// keeps per-epoch reports and running totals so operators can watch the
// adversary being ground down.
#pragma once

#include <optional>
#include <vector>

#include "core/query.h"

namespace vmat {

struct MonitorConfig {
  /// Retry budget per epoch; an epoch that exhausts it reports no estimate
  /// (it still made progress: every retry revoked something).
  int max_retries_per_epoch{50};
};

struct EpochReport {
  int epoch{0};
  std::optional<double> estimate;
  int disruptions{0};          ///< retries consumed this epoch
  std::size_t keys_revoked{0};  ///< new key revocations this epoch
  std::size_t sensors_revoked{0};

  [[nodiscard]] bool answered() const noexcept {
    return estimate.has_value();
  }
};

class MonitorService {
 public:
  MonitorService(QueryEngine* queries, Network* net,
                 MonitorConfig config = {});

  /// Run one COUNT epoch (retrying through disruptions).
  EpochReport run_count_epoch(const std::vector<std::uint8_t>& predicate);

  /// Run one SUM epoch.
  EpochReport run_sum_epoch(const std::vector<std::int64_t>& readings);

  /// Run one AVERAGE epoch.
  EpochReport run_average_epoch(const std::vector<std::int64_t>& readings);

  [[nodiscard]] const std::vector<EpochReport>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] int epochs() const noexcept {
    return static_cast<int>(history_.size());
  }
  [[nodiscard]] int total_disruptions() const noexcept;
  [[nodiscard]] std::size_t answered_epochs() const noexcept;

 private:
  template <typename RunOnce>
  EpochReport run_epoch(RunOnce&& run_once);

  QueryEngine* queries_;
  Network* net_;
  MonitorConfig config_;
  std::vector<EpochReport> history_;
};

}  // namespace vmat
