#include "core/coordinator.h"

#include <stdexcept>
#include <type_traits>

#include "spec/simulation_spec.h"
#include "util/random.h"

namespace vmat {
namespace {

/// Enough hash-chain elements for long experiment campaigns.
constexpr std::size_t kMaxBroadcasts = 1 << 16;

// Snapshot section tags (layout skew detectors; see sim/snapshot.h).
constexpr std::uint32_t kCoordSection = 0x434f4f52;  // "COOR"
// The tree and audit sections moved to CSR/pooled layouts with the large-n
// memory diet; their tags are versioned so a pre-diet snapshot is rejected
// by the section check instead of misparsed.
constexpr std::uint32_t kTreeSection = 0x54524532;   // "TRE2" (CSR parents)
constexpr std::uint32_t kAuditSection = 0x41554432;  // "AUD2" (pooled audit)
constexpr std::uint32_t kTraceSection = 0x54524143;  // "TRAC"

// The snapshot encodes these wholesale as flat pods.
static_assert(std::is_trivially_copyable_v<Epoch>);
static_assert(std::is_trivially_copyable_v<ParentLink>);
static_assert(std::is_trivially_copyable_v<ReceivedRecord>);
static_assert(std::is_trivially_copyable_v<ForwardRecord>);
static_assert(std::is_trivially_copyable_v<VetoMsg>);
static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// Buffers the event stream of a capture prefix while forwarding it to the
/// user's sink (if any) — so snapshot_after_formation()/prepare_epoch()
/// record the same events a plain execute()/prepare_epoch() would, and the
/// buffered copy replays into forks' sinks on restore.
struct TeeSink final : TraceSink {
  TraceSink* downstream{nullptr};
  std::vector<TraceEvent>* buffer{nullptr};

  void on_event(const TraceEvent& event) override {
    buffer->push_back(event);
    if (downstream != nullptr) downstream->on_event(event);
  }
  void on_execution_end(const ExecutionMetrics& metrics) override {
    if (downstream != nullptr) downstream->on_execution_end(metrics);
  }
};

CoordinatorSpec validated_coordinator_spec(const SimulationSpec& spec) {
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "VmatCoordinator: invalid SimulationSpec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  return spec.coordinator();
}

}  // namespace

VmatCoordinator::VmatCoordinator(Network* net, Adversary* adversary,
                                 CoordinatorSpec config)
    : net_(net),
      adversary_(adversary),
      config_(config),
      depth_bound_(config.depth_bound),
      nonce_state_(config.seed ^ 0x1234567890abcdefULL),
      audits_(net->node_count()),
      broadcaster_(config.seed, kMaxBroadcasts) {
  if (net == nullptr) throw std::invalid_argument("VmatCoordinator: null net");
  if (config.instances == 0)
    throw std::invalid_argument("VmatCoordinator: zero instances");
  if (depth_bound_ == 0) {
    // "VMAT knows a rough upper bound on the depth" — default to the
    // depth of the physical topology.
    depth_bound_ = net_->physical_depth();
  }
  receivers_.reserve(net_->node_count());
  for (std::uint32_t id = 0; id < net_->node_count(); ++id)
    receivers_.emplace_back(broadcaster_.anchor());
}

VmatCoordinator::VmatCoordinator(Network* net, Adversary* adversary,
                                 const SimulationSpec& spec)
    : VmatCoordinator(net, adversary, validated_coordinator_spec(spec)) {}

std::uint64_t VmatCoordinator::fresh_nonce() noexcept {
  return splitmix64(nonce_state_);
}

void VmatCoordinator::set_recorder(FlightRecorder* recorder) {
  trace_state_.sink = recorder;
  if (recorder == nullptr) return;
  TraceContext ctx;
  ctx.nodes = net_->node_count();
  ctx.depth_bound = depth_bound_;
  ctx.ring_size = net_->keys().config().ring_size;
  ctx.theta = net_->revocation().threshold();
  ctx.instances = config_.instances;
  ctx.slotted_sof = config_.slotted_sof;
  recorder->set_context(ctx);
}

void VmatCoordinator::authenticated_broadcast(const Bytes& payload,
                                              int& rounds, Tracer tracer) {
  const SignedBroadcast b = broadcaster_.sign(payload, tracer);
  std::uint64_t receivers = 0;
  for (std::uint32_t id = 1; id < net_->node_count(); ++id) {
    if (net_->revocation().is_sensor_revoked(NodeId{id})) continue;
    if (!receivers_[id].accept(b, tracer, NodeId{id}))
      throw std::logic_error("authenticated broadcast rejected by a sensor");
    ++receivers;
  }
  tracer.auth_broadcast(payload.size(), receivers);
  rounds += 1;
}

void VmatCoordinator::form_tree(std::uint64_t session, int& rounds,
                                Tracer tracer) {
  {
    ByteWriter announce;
    announce.str("vmat.announce.tree");
    announce.u64(session);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), rounds, tracer);
  }
  TreePhaseParams tree_params;
  tree_params.mode = config_.tree_mode;
  tree_params.depth_bound = depth_bound_;
  tree_params.session = session;
  tracer.begin_phase(TracePhase::kTreeFormation);
  tree_ = run_tree_formation(*net_, adversary_, tree_params, tracer);
  rounds += 1;
  formations_ += 1;
}

ExecutionOutcome VmatCoordinator::run_min(
    const std::vector<Reading>& readings) {
  if (config_.instances != 1)
    throw std::logic_error("run_min requires instances == 1");
  ValueTable values(static_cast<std::uint32_t>(readings.size()), 1, 0);
  const ValueTable weights(static_cast<std::uint32_t>(readings.size()), 1, 0);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    Reading r = readings[i];
    if (adversary_ != nullptr && adversary_->is_byzantine(NodeId{
            static_cast<std::uint32_t>(i)}))
      r = adversary_->strategy().own_reading(
          NodeId{static_cast<std::uint32_t>(i)}, r);
    values.data[i] = r;
  }
  return execute(values, weights);
}

const Epoch& VmatCoordinator::prepare_epoch() {
  // With snapshots enabled, tee the epoch slice's event stream so the
  // kEpoch snapshot captured below can replay it on rearm_epoch().
  std::vector<TraceEvent> prefix;
  TeeSink tee;
  tee.downstream = trace_state_.sink;
  tee.buffer = &prefix;
  TraceSink* const user_sink = trace_state_.sink;
  const bool capture = snapshots_enabled();
  if (capture) trace_state_.sink = &tee;

  Tracer tracer{&trace_state_};
  tracer.begin_epoch();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    TraceState* ts;
    TraceSink* user;
    ~TracerDetach() {
      net->set_tracer({});
      ts->sink = user;
    }
  } detach{net_, &trace_state_, user_sink};

  int rounds = 0;
  const std::uint64_t session = fresh_nonce();
  form_tree(session, rounds, tracer);
  tracer.end_epoch();

  epoch_.id += 1;
  epoch_.session = session;
  epoch_.formation_rounds = rounds;
  epoch_.metrics = trace_state_.metrics;
  epoch_.fabric_bytes = epoch_.metrics.totals().bytes_sent;
  epoch_.revoked_keys = net_->revocation().revoked_key_count();
  epoch_.revoked_sensors = net_->revocation().revoked_sensors_in_order().size();
  epoch_.key_generation = net_->key_generation();
  epoch_stale_ = false;
  if (capture) {
    epoch_snapshot_ = capture_snapshot(SnapshotKind::kEpoch, rounds, prefix);
    epoch_snapshot_meta_ = epoch_;
  }
  return epoch_;
}

bool VmatCoordinator::epoch_ready() const noexcept {
  return !epoch_stale_ && epoch_.id != 0 &&
         net_->revocation().revoked_key_count() == epoch_.revoked_keys &&
         net_->revocation().revoked_sensors_in_order().size() ==
             epoch_.revoked_sensors &&
         net_->key_generation() == epoch_.key_generation;
}

ExecutionOutcome VmatCoordinator::run_query(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, std::uint32_t instances) {
  if (!epoch_ready())
    throw std::logic_error(
        "run_query: no ready epoch — call prepare_epoch() first (a "
        "revocation or rekey invalidates the current epoch)");
  Tracer tracer{&trace_state_};
  tracer.begin_execution();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};
  const std::uint32_t inst = instances == 0 ? config_.instances : instances;
  return run_query_phases(ValueTable::from_nested(values, inst, kInfinity),
                          ValueTable::from_nested(weights, inst, 0), validate,
                          inst, tracer, 0);
}

ExecutionOutcome VmatCoordinator::execute(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate) {
  return execute(
      ValueTable::from_nested(values, config_.instances, kInfinity),
      ValueTable::from_nested(weights, config_.instances, 0), validate);
}

ExecutionOutcome VmatCoordinator::execute(const ValueTable& values,
                                          const ValueTable& weights,
                                          const ContentValidator& validate) {
  // Attach the flight recorder for exactly this execution: the Tracer
  // handles passed down all point at trace_state_, and the network-side
  // attachment is undone on every exit path so no component keeps a handle
  // into a dead coordinator.
  Tracer tracer{&trace_state_};
  tracer.begin_execution();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};

  // A one-shot execution forms its own tree, which orphans any epoch tree
  // a serving layer may have prepared.
  epoch_stale_ = true;

  int rounds = 0;
  const std::uint64_t session = fresh_nonce();
  form_tree(session, rounds, tracer);
  return run_query_phases(values, weights, validate, config_.instances,
                          tracer, rounds);
}

ExecutionOutcome VmatCoordinator::run_query_phases(
    const ValueTable& values, const ValueTable& weights,
    const ContentValidator& validate, std::uint32_t instances, Tracer tracer,
    int rounds_so_far) {
  const std::uint32_t n = net_->node_count();
  if (values.node_count != n || weights.node_count != n)
    throw std::invalid_argument("execute: values/weights must cover all nodes");

  // Arm `(round>= N)` trigger predicates: one bump per execution, on every
  // entry path (execute / run_query / resume_from).
  if (adversary_ != nullptr) adversary_->view().begin_execution_round();

  ExecutionOutcome out;
  out.data_rounds = rounds_so_far;

  // --- announce query + aggregation ---
  const std::uint64_t agg_nonce = fresh_nonce();
  {
    ByteWriter announce;
    announce.str("vmat.announce.query");
    announce.u64(agg_nonce);
    announce.u32(instances);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), out.data_rounds, tracer);
  }
  AggConfig agg_config;
  agg_config.instances = instances;
  agg_config.nonce = agg_nonce;
  agg_config.multipath = config_.multipath;
  tracer.begin_phase(TracePhase::kAggregation);
  const AggregationOutcome agg =
      run_aggregation(*net_, adversary_, tree_, agg_config, values, weights,
                      audits_, tracer);
  out.data_rounds += 1;

  auto finish = [&](ExecutionOutcome& o) -> ExecutionOutcome& {
    tracer.end_execution(o.produced_result(),
                         static_cast<std::int64_t>(o.trigger));
    o.metrics = trace_state_.metrics;
    o.fabric_bytes = o.metrics.totals().bytes_sent;
    return o;
  };
  auto finish_pinpoint = [&](PinpointOutcome&& pp, Trigger trigger) {
    out.kind = OutcomeKind::kRevocation;
    out.trigger = trigger;
    out.revoked_keys = std::move(pp.revoked_keys);
    out.revoked_sensors = std::move(pp.revoked_sensors);
    out.reason = std::move(pp.reason);
    out.pinpoint_cost = pp.cost;
    return finish(out);
  };

  // --- Figure 1 step 4: classify arrivals, junk first ---
  std::vector<Reading> minima(instances, kInfinity);
  for (const BsArrival& a : agg.arrivals) {
    const bool id_ok =
        a.msg.origin != kBaseStation && a.msg.origin.value < n &&
        !net_->revocation().is_sensor_revoked(a.msg.origin);
    const bool mac_ok =
        id_ok && verify_agg_message(net_->keys().sensor_mac_context(a.msg.origin),
                                    a.msg, agg_nonce);
    tracer.mac_verify(a.msg.origin, kNoKey, mac_ok);
    if (!mac_ok) {
      tracer.arrival_rejected(a.msg.origin, a.slot, a.msg.value);
      tracer.begin_phase(TracePhase::kPinpoint);
      PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                             config_.predicate_mode, tracer);
      return finish_pinpoint(
          engine.junk_triggered_aggregation(a.msg, a.in_edge, a.slot),
          Trigger::kJunkAggregation);
    }
    const bool content_ok =
        validate ? validate(a.msg) : a.msg.weight == 0;
    if (!content_ok) {
      // Valid sensor-key MAC over impossible content: only the origin's key
      // holder could have signed it. Revoke the origin outright.
      tracer.arrival_rejected(a.msg.origin, a.slot, a.msg.value);
      out.kind = OutcomeKind::kRevocation;
      out.trigger = Trigger::kSelfIncrimination;
      out.reason = "aggregation message with valid MAC but invalid content";
      out.revoked_sensors = net_->revocation().revoke_sensor(a.msg.origin);
      return finish(out);
    }
    tracer.arrival_accepted(a.msg.origin, a.slot, a.msg.value);
    if (a.msg.value < minima[a.msg.instance]) minima[a.msg.instance] = a.msg.value;
  }

  // --- announce minima + confirmation ---
  const std::uint64_t conf_nonce = fresh_nonce();
  {
    ByteWriter announce;
    announce.str("vmat.announce.minima");
    announce.u64(conf_nonce);
    for (Reading m : minima) announce.i64(m);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), out.data_rounds, tracer);
  }
  tracer.begin_phase(TracePhase::kConfirmation);
  const ConfirmationOutcome conf =
      run_confirmation(*net_, adversary_, tree_, minima, conf_nonce, values,
                       audits_, config_.slotted_sof, tracer);
  out.data_rounds += 1;

  // --- Figure 1 steps 7/8: spurious veto beats legitimate veto ---
  const VetoArrival* legit = nullptr;
  for (const VetoArrival& v : conf.arrivals) {
    const bool id_ok = v.msg.origin != kBaseStation && v.msg.origin.value < n &&
                       !net_->revocation().is_sensor_revoked(v.msg.origin);
    const bool mac_ok =
        id_ok && verify_veto(net_->keys().sensor_mac_context(v.msg.origin),
                             v.msg, conf_nonce);
    tracer.mac_verify(v.msg.origin, kNoKey, mac_ok);
    if (!mac_ok) {
      tracer.arrival_rejected(v.msg.origin, v.interval, v.msg.value);
      tracer.begin_phase(TracePhase::kPinpoint);
      PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                             config_.predicate_mode, tracer);
      return finish_pinpoint(
          engine.junk_triggered_confirmation(v.msg, v.in_edge, v.interval),
          Trigger::kJunkConfirmation);
    }
    const bool semantics_ok = v.msg.instance < instances &&
                              v.msg.level >= 1 && v.msg.level <= depth_bound_ &&
                              v.msg.value < minima[v.msg.instance];
    if (!semantics_ok) {
      tracer.arrival_rejected(v.msg.origin, v.interval, v.msg.value);
      out.kind = OutcomeKind::kRevocation;
      out.trigger = Trigger::kSelfIncrimination;
      out.reason = "veto with valid MAC but impossible claim";
      out.revoked_sensors = net_->revocation().revoke_sensor(v.msg.origin);
      return finish(out);
    }
    tracer.arrival_accepted(v.msg.origin, v.interval, v.msg.value);
    if (legit == nullptr) legit = &v;
  }
  if (legit != nullptr) {
    tracer.begin_phase(TracePhase::kPinpoint);
    PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                          config_.predicate_mode, tracer);
    return finish_pinpoint(engine.veto_triggered(legit->msg), Trigger::kVeto);
  }

  // --- Figure 1 step 6: no veto, the minima are correct ---
  out.kind = OutcomeKind::kResult;
  out.trigger = Trigger::kNone;
  out.minima = std::move(minima);
  return finish(out);
}

std::uint64_t VmatCoordinator::deployment_fingerprint() const {
  std::uint64_t h = net_->snapshot_fingerprint();
  h = snapshot_mix(h, config_.seed);
  h = snapshot_mix(h, depth_bound_);
  h = snapshot_mix(h, static_cast<std::uint64_t>(config_.tree_mode));
  h = snapshot_mix(h, config_.multipath ? 1 : 0);
  h = snapshot_mix(h, config_.slotted_sof ? 1 : 0);
  h = snapshot_mix(h, config_.instances);
  h = snapshot_mix(h, static_cast<std::uint64_t>(config_.predicate_mode));
  return h;
}

Snapshot VmatCoordinator::capture_snapshot(
    SnapshotKind kind, int rounds,
    const std::vector<TraceEvent>& prefix_events) const {
  SnapshotWriter w;

  w.section(kCoordSection);
  w.pod(nonce_state_);
  w.pod(epoch_stale_);
  w.pod(epoch_);
  w.pod(broadcaster_.next_epoch());
  w.pod(static_cast<std::uint64_t>(receivers_.size()));
  for (const AuthReceiver& recv : receivers_) recv.snapshot_save(w);
  w.pod(trace_state_.metrics);
  w.pod(trace_state_.phase);
  w.pod(trace_state_.slot);
  w.pod(trace_state_.executions);
  w.pod(trace_state_.epochs);

  w.section(kTreeSection);
  w.pod(tree_.session);
  w.pod(tree_.mode);
  w.pod(tree_.depth_bound);
  w.vec_pod(tree_.level);
  w.vec_pod(tree_.parents.offsets());
  w.vec_pod(tree_.parents.links());

  // Canonical per-node encoding regardless of the pooled in-memory layout
  // (which varies with the shard plan): rows serialize in per-node arrival
  // order, exactly as the pre-diet per-node vectors did.
  w.section(kAuditSection);
  w.pod(static_cast<std::uint64_t>(audits_.node_count()));
  for (std::uint32_t id = 0; id < audits_.node_count(); ++id) {
    const NodeId node{id};
    w.pod(audits_.level(node));
    w.vec_pod(audits_.received_of(node));
    w.vec_pod(audits_.forwarded_of(node));
    const SofRecord* sof = audits_.sof(node);
    w.pod(sof != nullptr);
    if (sof != nullptr) {
      w.pod(sof->msg);
      w.pod(sof->originated);
      w.pod(sof->received_interval);
      w.pod(sof->forward_interval);
      w.pod(sof->in_edge);
      w.vec_pod(sof->out_edges);
    }
  }

  net_->snapshot_save(w);

  w.section(kTraceSection);
  w.vec_pod(prefix_events);

  Snapshot snap;
  snap.kind_ = kind;
  snap.fingerprint_ = deployment_fingerprint();
  snap.node_count_ = net_->node_count();
  snap.formation_rounds_ = rounds;
  snap.buffer_ = w.take();
  return snap;
}

void VmatCoordinator::restore_snapshot(const Snapshot& snapshot,
                                       std::int64_t epoch_ordinal) {
  if (snapshot.empty())
    throw std::invalid_argument("restore_snapshot: empty snapshot");
  if (snapshot.node_count() != net_->node_count() ||
      snapshot.fingerprint() != deployment_fingerprint())
    throw std::invalid_argument(
        "restore_snapshot: snapshot belongs to an incompatible deployment "
        "(topology/key material/config mismatch)");

  SnapshotReader r(snapshot.data());

  r.section(kCoordSection);
  r.pod(nonce_state_);
  r.pod(epoch_stale_);
  r.pod(epoch_);
  broadcaster_.restore_next_epoch(r.pod<std::uint64_t>());
  if (r.pod<std::uint64_t>() != receivers_.size())
    throw std::invalid_argument("restore_snapshot: receiver count mismatch");
  for (AuthReceiver& recv : receivers_) recv.snapshot_load(r);
  r.pod(trace_state_.metrics);
  r.pod(trace_state_.phase);
  r.pod(trace_state_.slot);
  r.pod(trace_state_.executions);
  r.pod(trace_state_.epochs);

  r.section(kTreeSection);
  r.pod(tree_.session);
  r.pod(tree_.mode);
  r.pod(tree_.depth_bound);
  r.vec_pod(tree_.level);
  {
    std::vector<std::uint32_t> offsets;
    std::vector<ParentLink> links;
    r.vec_pod(offsets);
    r.vec_pod(links);
    tree_.parents.restore(std::move(offsets), std::move(links));
  }

  r.section(kAuditSection);
  if (r.pod<std::uint64_t>() != audits_.node_count())
    throw std::invalid_argument("restore_snapshot: audit count mismatch");
  audits_.begin_aggregation(1);  // serial restore: one pool
  for (std::uint32_t id = 0; id < audits_.node_count(); ++id) {
    const NodeId node{id};
    Level level;
    r.pod(level);
    audits_.set_level(node, level);
    std::vector<ReceivedRecord> received;
    std::vector<ForwardRecord> forwarded;
    r.vec_pod(received);
    r.vec_pod(forwarded);
    for (const ReceivedRecord& rec : received) audits_.add_received(0, node, rec);
    for (const ForwardRecord& rec : forwarded) audits_.add_forwarded(0, node, rec);
    if (r.pod<bool>()) {
      SofRecord sof;
      r.pod(sof.msg);
      r.pod(sof.originated);
      r.pod(sof.received_interval);
      r.pod(sof.forward_interval);
      r.pod(sof.in_edge);
      r.vec_pod(sof.out_edges);
      audits_.set_sof(0, node, std::move(sof));
    }
  }

  net_->snapshot_load(r);

  r.section(kTraceSection);
  std::vector<TraceEvent> prefix;
  r.vec_pod(prefix);
  if (TraceSink* sink = trace_state_.sink; sink != nullptr) {
    for (TraceEvent e : prefix) {
      if (epoch_ordinal >= 0 && e.kind == TraceEventKind::kEpochBegin)
        e.value = epoch_ordinal;
      // Straight to the sink: going through a Tracer would double-meter
      // events the restored metrics already count.
      sink->on_event(e);
    }
  }
  if (!r.exhausted())
    throw std::invalid_argument("restore_snapshot: trailing bytes");
}

Snapshot VmatCoordinator::snapshot_after_formation() {
  // Tee the prefix's event stream: the user's sink (if any) observes it
  // live, and the buffered copy replays into forks' sinks on restore.
  std::vector<TraceEvent> prefix;
  TeeSink tee;
  tee.downstream = trace_state_.sink;
  tee.buffer = &prefix;
  TraceSink* const user_sink = trace_state_.sink;
  trace_state_.sink = &tee;

  Tracer tracer{&trace_state_};
  tracer.begin_execution();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    TraceState* ts;
    TraceSink* user;
    ~TracerDetach() {
      net->set_tracer({});
      ts->sink = user;
    }
  } detach{net_, &trace_state_, user_sink};

  // Same prefix as execute(): orphan any prepared epoch, fresh session,
  // announcement + tree formation.
  epoch_stale_ = true;
  int rounds = 0;
  const std::uint64_t session = fresh_nonce();
  form_tree(session, rounds, tracer);
  return capture_snapshot(SnapshotKind::kExecutionPrefix, rounds, prefix);
}

ExecutionOutcome VmatCoordinator::resume_from(
    const Snapshot& snapshot, const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, std::uint32_t instances) {
  if (snapshot.kind() != SnapshotKind::kExecutionPrefix)
    throw std::invalid_argument(
        "resume_from: not an execution-prefix snapshot (epoch snapshots "
        "re-arm via rearm_epoch)");
  const std::uint32_t inst = instances == 0 ? config_.instances : instances;
  return resume_from(snapshot,
                     ValueTable::from_nested(values, inst, kInfinity),
                     ValueTable::from_nested(weights, inst, 0), validate,
                     instances);
}

ExecutionOutcome VmatCoordinator::resume_from(const Snapshot& snapshot,
                                              const ValueTable& values,
                                              const ValueTable& weights,
                                              const ContentValidator& validate,
                                              std::uint32_t instances) {
  if (snapshot.kind() != SnapshotKind::kExecutionPrefix)
    throw std::invalid_argument(
        "resume_from: not an execution-prefix snapshot (epoch snapshots "
        "re-arm via rearm_epoch)");
  restore_snapshot(snapshot, -1);
  // Mid-execution: the captured prefix already ran begin_execution() (its
  // metrics and ordinal were just restored), so attach without resetting.
  Tracer tracer{&trace_state_};
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};
  return run_query_phases(values, weights, validate,
                          instances == 0 ? config_.instances : instances,
                          tracer, snapshot.formation_rounds());
}

ExecutionOutcome VmatCoordinator::resume_min(
    const Snapshot& snapshot, const std::vector<Reading>& readings) {
  if (config_.instances != 1)
    throw std::logic_error("resume_min requires instances == 1");
  ValueTable values(static_cast<std::uint32_t>(readings.size()), 1, 0);
  const ValueTable weights(static_cast<std::uint32_t>(readings.size()), 1, 0);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    Reading r = readings[i];
    if (adversary_ != nullptr && adversary_->is_byzantine(NodeId{
            static_cast<std::uint32_t>(i)}))
      r = adversary_->strategy().own_reading(
          NodeId{static_cast<std::uint32_t>(i)}, r);
    values.data[i] = r;
  }
  return resume_from(snapshot, values, weights);
}

bool VmatCoordinator::rearm_epoch() {
  if (!snapshots_enabled() || !epoch_snapshot_.has_value()) return false;
  // The formed tree is stale if anything revocation/key-shaped moved since
  // capture; only a real prepare_epoch() may serve then.
  if (net_->revocation().revoked_key_count() !=
          epoch_snapshot_meta_.revoked_keys ||
      net_->revocation().revoked_sensors_in_order().size() !=
          epoch_snapshot_meta_.revoked_sensors ||
      net_->key_generation() != epoch_snapshot_meta_.key_generation)
    return false;

  // Monotone counters survive the rewind: the nonce stream, the broadcast
  // chain cursor, the trace ordinals, and the epoch id keep advancing, so
  // a re-armed epoch never reuses a nonce or a chain element.
  const std::uint64_t cur_nonce = nonce_state_;
  const std::uint64_t cur_next = broadcaster_.next_epoch();
  const std::int64_t cur_execs = trace_state_.executions;
  const std::int64_t cur_epochs = trace_state_.epochs;
  const std::uint64_t cur_epoch_id = epoch_.id;

  restore_snapshot(*epoch_snapshot_, cur_epochs);

  nonce_state_ = cur_nonce;
  broadcaster_.restore_next_epoch(cur_next);
  trace_state_.executions = cur_execs;
  trace_state_.epochs = cur_epochs + 1;
  epoch_.id = cur_epoch_id + 1;
  epoch_stale_ = false;
  return true;
}

std::vector<ExecutionOutcome> VmatCoordinator::run_until_result(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, int max_executions) {
  std::vector<ExecutionOutcome> history;
  for (int i = 0; i < max_executions; ++i) {
    history.push_back(execute(values, weights, validate));
    if (history.back().produced_result()) return history;
  }
  throw std::runtime_error(
      "run_until_result: no result after max_executions — an execution "
      "failed to revoke adversary material (Theorem 7 violation)");
}

}  // namespace vmat
