#include "core/coordinator.h"

#include <stdexcept>

#include "spec/simulation_spec.h"
#include "util/random.h"

namespace vmat {
namespace {

/// Enough hash-chain elements for long experiment campaigns.
constexpr std::size_t kMaxBroadcasts = 1 << 16;

CoordinatorSpec validated_coordinator_spec(const SimulationSpec& spec) {
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "VmatCoordinator: invalid SimulationSpec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  return spec.coordinator();
}

}  // namespace

VmatCoordinator::VmatCoordinator(Network* net, Adversary* adversary,
                                 CoordinatorSpec config)
    : net_(net),
      adversary_(adversary),
      config_(config),
      depth_bound_(config.depth_bound),
      nonce_state_(config.seed ^ 0x1234567890abcdefULL),
      audits_(net->node_count()),
      broadcaster_(config.seed, kMaxBroadcasts) {
  if (net == nullptr) throw std::invalid_argument("VmatCoordinator: null net");
  if (config.instances == 0)
    throw std::invalid_argument("VmatCoordinator: zero instances");
  if (depth_bound_ == 0) {
    // "VMAT knows a rough upper bound on the depth" — default to the
    // depth of the physical topology.
    depth_bound_ = net_->physical_depth();
  }
  receivers_.reserve(net_->node_count());
  for (std::uint32_t id = 0; id < net_->node_count(); ++id)
    receivers_.emplace_back(broadcaster_.anchor());
}

VmatCoordinator::VmatCoordinator(Network* net, Adversary* adversary,
                                 const SimulationSpec& spec)
    : VmatCoordinator(net, adversary, validated_coordinator_spec(spec)) {}

std::uint64_t VmatCoordinator::fresh_nonce() noexcept {
  return splitmix64(nonce_state_);
}

void VmatCoordinator::set_recorder(FlightRecorder* recorder) {
  trace_state_.sink = recorder;
  if (recorder == nullptr) return;
  TraceContext ctx;
  ctx.nodes = net_->node_count();
  ctx.depth_bound = depth_bound_;
  ctx.ring_size = net_->keys().config().ring_size;
  ctx.theta = net_->revocation().threshold();
  ctx.instances = config_.instances;
  ctx.slotted_sof = config_.slotted_sof;
  recorder->set_context(ctx);
}

void VmatCoordinator::authenticated_broadcast(const Bytes& payload,
                                              int& rounds, Tracer tracer) {
  const SignedBroadcast b = broadcaster_.sign(payload, tracer);
  std::uint64_t receivers = 0;
  for (std::uint32_t id = 1; id < net_->node_count(); ++id) {
    if (net_->revocation().is_sensor_revoked(NodeId{id})) continue;
    if (!receivers_[id].accept(b, tracer, NodeId{id}))
      throw std::logic_error("authenticated broadcast rejected by a sensor");
    ++receivers;
  }
  tracer.auth_broadcast(payload.size(), receivers);
  rounds += 1;
}

void VmatCoordinator::form_tree(std::uint64_t session, int& rounds,
                                Tracer tracer) {
  {
    ByteWriter announce;
    announce.str("vmat.announce.tree");
    announce.u64(session);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), rounds, tracer);
  }
  TreePhaseParams tree_params;
  tree_params.mode = config_.tree_mode;
  tree_params.depth_bound = depth_bound_;
  tree_params.session = session;
  tracer.begin_phase(TracePhase::kTreeFormation);
  tree_ = run_tree_formation(*net_, adversary_, tree_params, tracer);
  rounds += 1;
}

ExecutionOutcome VmatCoordinator::run_min(
    const std::vector<Reading>& readings) {
  if (config_.instances != 1)
    throw std::logic_error("run_min requires instances == 1");
  std::vector<std::vector<Reading>> values(readings.size());
  std::vector<std::vector<std::int64_t>> weights(readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    Reading r = readings[i];
    if (adversary_ != nullptr && adversary_->is_byzantine(NodeId{
            static_cast<std::uint32_t>(i)}))
      r = adversary_->strategy().own_reading(
          NodeId{static_cast<std::uint32_t>(i)}, r);
    values[i] = {r};
    weights[i] = {0};
  }
  return execute(values, weights);
}

const Epoch& VmatCoordinator::prepare_epoch() {
  Tracer tracer{&trace_state_};
  tracer.begin_epoch();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};

  int rounds = 0;
  const std::uint64_t session = fresh_nonce();
  form_tree(session, rounds, tracer);
  tracer.end_epoch();

  epoch_.id += 1;
  epoch_.session = session;
  epoch_.formation_rounds = rounds;
  epoch_.metrics = trace_state_.metrics;
  epoch_.fabric_bytes = epoch_.metrics.totals().bytes_sent;
  epoch_.revoked_keys = net_->revocation().revoked_key_count();
  epoch_.revoked_sensors = net_->revocation().revoked_sensors_in_order().size();
  epoch_.key_generation = net_->key_generation();
  epoch_stale_ = false;
  return epoch_;
}

bool VmatCoordinator::epoch_ready() const noexcept {
  return !epoch_stale_ && epoch_.id != 0 &&
         net_->revocation().revoked_key_count() == epoch_.revoked_keys &&
         net_->revocation().revoked_sensors_in_order().size() ==
             epoch_.revoked_sensors &&
         net_->key_generation() == epoch_.key_generation;
}

ExecutionOutcome VmatCoordinator::run_query(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, std::uint32_t instances) {
  if (!epoch_ready())
    throw std::logic_error(
        "run_query: no ready epoch — call prepare_epoch() first (a "
        "revocation or rekey invalidates the current epoch)");
  Tracer tracer{&trace_state_};
  tracer.begin_execution();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};
  return run_query_phases(values, weights, validate,
                          instances == 0 ? config_.instances : instances,
                          tracer, 0);
}

ExecutionOutcome VmatCoordinator::execute(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate) {
  // Attach the flight recorder for exactly this execution: the Tracer
  // handles passed down all point at trace_state_, and the network-side
  // attachment is undone on every exit path so no component keeps a handle
  // into a dead coordinator.
  Tracer tracer{&trace_state_};
  tracer.begin_execution();
  net_->set_tracer(tracer);
  struct TracerDetach {
    Network* net;
    ~TracerDetach() { net->set_tracer({}); }
  } detach{net_};

  // A one-shot execution forms its own tree, which orphans any epoch tree
  // a serving layer may have prepared.
  epoch_stale_ = true;

  int rounds = 0;
  const std::uint64_t session = fresh_nonce();
  form_tree(session, rounds, tracer);
  return run_query_phases(values, weights, validate, config_.instances,
                          tracer, rounds);
}

ExecutionOutcome VmatCoordinator::run_query_phases(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, std::uint32_t instances, Tracer tracer,
    int rounds_so_far) {
  const std::uint32_t n = net_->node_count();
  if (values.size() != n || weights.size() != n)
    throw std::invalid_argument("execute: values/weights must cover all nodes");

  ExecutionOutcome out;
  out.data_rounds = rounds_so_far;

  // --- announce query + aggregation ---
  const std::uint64_t agg_nonce = fresh_nonce();
  {
    ByteWriter announce;
    announce.str("vmat.announce.query");
    announce.u64(agg_nonce);
    announce.u32(instances);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), out.data_rounds, tracer);
  }
  AggConfig agg_config;
  agg_config.instances = instances;
  agg_config.nonce = agg_nonce;
  agg_config.multipath = config_.multipath;
  tracer.begin_phase(TracePhase::kAggregation);
  const AggregationOutcome agg =
      run_aggregation(*net_, adversary_, tree_, agg_config, values, weights,
                      audits_, tracer);
  out.data_rounds += 1;

  auto finish = [&](ExecutionOutcome& o) -> ExecutionOutcome& {
    tracer.end_execution(o.produced_result(),
                         static_cast<std::int64_t>(o.trigger));
    o.metrics = trace_state_.metrics;
    o.fabric_bytes = o.metrics.totals().bytes_sent;
    return o;
  };
  auto finish_pinpoint = [&](PinpointOutcome&& pp, Trigger trigger) {
    out.kind = OutcomeKind::kRevocation;
    out.trigger = trigger;
    out.revoked_keys = std::move(pp.revoked_keys);
    out.revoked_sensors = std::move(pp.revoked_sensors);
    out.reason = std::move(pp.reason);
    out.pinpoint_cost = pp.cost;
    return finish(out);
  };

  // --- Figure 1 step 4: classify arrivals, junk first ---
  std::vector<Reading> minima(instances, kInfinity);
  for (const BsArrival& a : agg.arrivals) {
    const bool id_ok =
        a.msg.origin != kBaseStation && a.msg.origin.value < n &&
        !net_->revocation().is_sensor_revoked(a.msg.origin);
    const bool mac_ok =
        id_ok && verify_agg_message(net_->keys().sensor_mac_context(a.msg.origin),
                                    a.msg, agg_nonce);
    tracer.mac_verify(a.msg.origin, kNoKey, mac_ok);
    if (!mac_ok) {
      tracer.arrival_rejected(a.msg.origin, a.slot, a.msg.value);
      tracer.begin_phase(TracePhase::kPinpoint);
      PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                             config_.predicate_mode, tracer);
      return finish_pinpoint(
          engine.junk_triggered_aggregation(a.msg, a.in_edge, a.slot),
          Trigger::kJunkAggregation);
    }
    const bool content_ok =
        validate ? validate(a.msg) : a.msg.weight == 0;
    if (!content_ok) {
      // Valid sensor-key MAC over impossible content: only the origin's key
      // holder could have signed it. Revoke the origin outright.
      tracer.arrival_rejected(a.msg.origin, a.slot, a.msg.value);
      out.kind = OutcomeKind::kRevocation;
      out.trigger = Trigger::kSelfIncrimination;
      out.reason = "aggregation message with valid MAC but invalid content";
      out.revoked_sensors = net_->revocation().revoke_sensor(a.msg.origin);
      return finish(out);
    }
    tracer.arrival_accepted(a.msg.origin, a.slot, a.msg.value);
    if (a.msg.value < minima[a.msg.instance]) minima[a.msg.instance] = a.msg.value;
  }

  // --- announce minima + confirmation ---
  const std::uint64_t conf_nonce = fresh_nonce();
  {
    ByteWriter announce;
    announce.str("vmat.announce.minima");
    announce.u64(conf_nonce);
    for (Reading m : minima) announce.i64(m);
    tracer.begin_phase(TracePhase::kBroadcast);
    authenticated_broadcast(announce.take(), out.data_rounds, tracer);
  }
  tracer.begin_phase(TracePhase::kConfirmation);
  const ConfirmationOutcome conf =
      run_confirmation(*net_, adversary_, tree_, minima, conf_nonce, values,
                       audits_, config_.slotted_sof, tracer);
  out.data_rounds += 1;

  // --- Figure 1 steps 7/8: spurious veto beats legitimate veto ---
  const VetoArrival* legit = nullptr;
  for (const VetoArrival& v : conf.arrivals) {
    const bool id_ok = v.msg.origin != kBaseStation && v.msg.origin.value < n &&
                       !net_->revocation().is_sensor_revoked(v.msg.origin);
    const bool mac_ok =
        id_ok && verify_veto(net_->keys().sensor_mac_context(v.msg.origin),
                             v.msg, conf_nonce);
    tracer.mac_verify(v.msg.origin, kNoKey, mac_ok);
    if (!mac_ok) {
      tracer.arrival_rejected(v.msg.origin, v.interval, v.msg.value);
      tracer.begin_phase(TracePhase::kPinpoint);
      PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                             config_.predicate_mode, tracer);
      return finish_pinpoint(
          engine.junk_triggered_confirmation(v.msg, v.in_edge, v.interval),
          Trigger::kJunkConfirmation);
    }
    const bool semantics_ok = v.msg.instance < instances &&
                              v.msg.level >= 1 && v.msg.level <= depth_bound_ &&
                              v.msg.value < minima[v.msg.instance];
    if (!semantics_ok) {
      tracer.arrival_rejected(v.msg.origin, v.interval, v.msg.value);
      out.kind = OutcomeKind::kRevocation;
      out.trigger = Trigger::kSelfIncrimination;
      out.reason = "veto with valid MAC but impossible claim";
      out.revoked_sensors = net_->revocation().revoke_sensor(v.msg.origin);
      return finish(out);
    }
    tracer.arrival_accepted(v.msg.origin, v.interval, v.msg.value);
    if (legit == nullptr) legit = &v;
  }
  if (legit != nullptr) {
    tracer.begin_phase(TracePhase::kPinpoint);
    PinpointEngine engine(net_, adversary_, &audits_, &tree_,
                          config_.predicate_mode, tracer);
    return finish_pinpoint(engine.veto_triggered(legit->msg), Trigger::kVeto);
  }

  // --- Figure 1 step 6: no veto, the minima are correct ---
  out.kind = OutcomeKind::kResult;
  out.trigger = Trigger::kNone;
  out.minima = std::move(minima);
  return finish(out);
}

std::vector<ExecutionOutcome> VmatCoordinator::run_until_result(
    const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    const ContentValidator& validate, int max_executions) {
  std::vector<ExecutionOutcome> history;
  for (int i = 0; i < max_executions; ++i) {
    history.push_back(execute(values, weights, validate));
    if (history.back().produced_result()) return history;
  }
  throw std::runtime_error(
      "run_until_result: no result after max_executions — an execution "
      "failed to revoke adversary material (Theorem 7 violation)");
}

}  // namespace vmat
