#include "core/aggregation.h"

#include <stdexcept>

#include "core/phase_shard.h"
#include "util/parallel.h"

namespace vmat {
namespace {

/// The per-instance minima a sensor would honestly forward: its own message
/// and everything collected from children, minimum by value (ties broken by
/// origin id for determinism).
AggBundle honest_bundle(const std::vector<AggMessage>& own,
                        const std::vector<ReceivedRecord>& received,
                        std::uint32_t instances) {
  std::vector<const AggMessage*> best(instances, nullptr);
  auto consider = [&](const AggMessage& m) {
    if (m.instance >= instances) return;
    const AggMessage*& slot = best[m.instance];
    if (slot == nullptr || m.value < slot->value ||
        (m.value == slot->value && m.origin < slot->origin))
      slot = &m;
  };
  for (const auto& m : own) consider(m);
  for (const auto& r : received) consider(r.msg);

  AggBundle bundle;
  for (const AggMessage* m : best)
    if (m != nullptr) bundle.entries.push_back(*m);
  return bundle;
}

}  // namespace

AggregationOutcome run_aggregation(
    Network& net, Adversary* adversary, const TreeResult& tree,
    const AggConfig& config, const std::vector<std::vector<Reading>>& values,
    const std::vector<std::vector<std::int64_t>>& weights,
    std::vector<NodeAudit>& audits, Tracer tracer) {
  const std::uint32_t n = net.node_count();
  const Level L = tree.depth_bound;
  if (values.size() != n || weights.size() != n || audits.size() != n)
    throw std::invalid_argument("run_aggregation: size mismatch");

  net.fabric().reset();
  for (std::uint32_t id = 0; id < n; ++id) {
    audits[id].agg.clear();
    audits[id].agg.level = tree.level[id];
  }

  // Pre-build every node's own messages (what an honest node originates).
  std::vector<std::vector<AggMessage>> own(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const NodeId node{id};
    if (node == kBaseStation) continue;
    if (net.revocation().is_sensor_revoked(node)) continue;
    if (!tree.has_valid_level(node)) continue;
    const MacContext& key = net.keys().sensor_mac_context(node);
    own[id].reserve(config.instances);
    for (std::uint32_t i = 0; i < config.instances; ++i) {
      // kInfinity marks "no contribution" (e.g. a COUNT predicate the
      // sensor does not satisfy): the sensor originates nothing.
      if (values[id][i] == kInfinity) continue;
      own[id].push_back(make_agg_message(key, node, i, values[id][i],
                                         weights[id][i], config.nonce));
    }
  }

  // Valid records delivered to malicious nodes, exposed to the strategy.
  std::vector<std::vector<ReceivedRecord>> malicious_received(n);

  AggregationOutcome outcome;

  // Level-parallel sharding (see core/phase_shard.h): shards cover
  // contiguous node-id ranges, buffer their sends, and meter receipt into
  // per-shard traces; every fabric mutation and trace emission happens (or
  // merges) in global node-id order, so results and recorded streams are
  // bit-identical for any thread count.
  net.warm_crypto_caches();
  const std::size_t shards = plan_shards(n);
  ThreadPool& pool = ThreadPool::shared();
  std::vector<ShardBuf> bufs(shards);

  for (Interval slot = 1; slot <= L; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      AggCtx ctx;
      ctx.tree = &tree;
      ctx.config = &config;
      ctx.slot = slot;
      ctx.malicious_received = &malicious_received;
      ctx.own_messages = &own;
      adversary->strategy().on_agg_slot(adversary->view(), ctx);
    }

    // Honest transmissions: a level-i sensor transmits in slot L-i+1.
    // Shards build bundles and batch-compute edge MACs; the fabric sends
    // replay serially below.
    for_each_shard(
        n, shards, pool,
        [&net, &tree, &config, &adversary, &own, &audits, &bufs, slot, L](
            std::size_t shard, std::size_t begin, std::size_t end) {
          ShardBuf& buf = bufs[shard];
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (node == kBaseStation || byzantine(adversary, node)) continue;
            if (net.revocation().is_sensor_revoked(node)) continue;
            if (!tree.has_valid_level(node)) continue;
            const Level i = tree.level[id];
            if (slot != L - i + 1) continue;

            const AggBundle bundle = honest_bundle(
                own[id], audits[id].agg.received, config.instances);
            if (bundle.entries.empty()) continue;
            const Bytes frame = encode(bundle);

            const auto& parents = tree.parents[id];
            const std::size_t fanout =
                config.multipath ? parents.size()
                                 : std::min<std::size_t>(1, parents.size());
            for (std::size_t p = 0; p < fanout; ++p) {
              const ParentLink& link = parents[p];
              if (net.revocation().is_key_revoked(link.edge_key)) continue;
              TxStep step;
              step.env.from = node;
              step.env.to = link.claimed_id;
              step.env.edge_key = link.edge_key;
              // The claimed parent may not be a physical neighbor (a
              // spoofed tree-formation frame); the fabric then drops the
              // frame at replay, which is exactly a silent drop the
              // confirmation phase will catch.
              buf.stage_payload(step, frame);
              buf.steps.push_back(std::move(step));
              for (const auto& m : bundle.entries)
                audits[id].agg.forwarded.push_back(
                    {m, link.edge_key, link.claimed_id});
            }
          }
          compute_step_macs(net.keys(), buf);
        });
    replay_tx(net, bufs, nullptr, tracer);

    net.fabric().end_slot();

    // Receipt.
    ShardedTrace rx_trace(tracer, shards);
    for_each_shard(
        n, shards, pool,
        [&net, &tree, &config, &adversary, &audits, &bufs, &rx_trace,
         &malicious_received, &outcome, slot, L](
            std::size_t shard, std::size_t begin, std::size_t end) {
          Tracer shard_tracer = rx_trace.shard(shard);
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (net.revocation().is_sensor_revoked(node)) continue;
            const bool is_bs = node == kBaseStation;
            if (!is_bs && !tree.has_valid_level(node)) {
              (void)net.fabric().take_inbox(node);
              continue;
            }
            const Level i = is_bs ? 0 : tree.level[id];
            auto frames = net.receive_valid(node, bufs[shard].rx,
                                            shard_tracer);
            // Collection window: slots 1 .. L-i.
            if (!is_bs && slot > L - i) continue;
            const bool is_malicious =
                adversary != nullptr && adversary->is_malicious(node);
            for (const auto& env : frames) {
              const auto bundle = decode_agg(env.payload);
              if (!bundle.has_value()) continue;
              for (const auto& m : bundle->entries) {
                if (m.instance >= config.instances) continue;
                ReceivedRecord rec;
                rec.msg = m;
                rec.in_edge = env.edge_key;
                rec.slot = slot;
                rec.child_level = L - slot + 1;
                rec.claimed_sender = env.from;
                if (is_bs) {
                  // Only the shard owning kBaseStation reaches this arm
                  // (RX shards partition nodes), so the shared outcome
                  // sees exactly one writer.
                  // vmat-analyze: allow(shard-race) -- BS-owner-only write
                  outcome.arrivals.push_back({m, env.edge_key, slot});
                  audits[id].agg.received.push_back(rec);
                } else {
                  audits[id].agg.received.push_back(rec);
                  if (is_malicious) malicious_received[id].push_back(rec);
                }
              }
            }
          }
        });
    rx_trace.merge();
  }

  net.fabric().reset();
  return outcome;
}

}  // namespace vmat
