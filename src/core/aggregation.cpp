#include "core/aggregation.h"

#include <stdexcept>

#include "core/phase_shard.h"
#include "util/parallel.h"

namespace vmat {
namespace {

/// The messages an honest node originates: one per instance with a
/// contributing value (kInfinity marks "no contribution", e.g. a COUNT
/// predicate the sensor does not satisfy). Built on the fly in the node's
/// transmit slot — a stack MacContext computes the same MACs as the cached
/// sensor_mac_context() form without an O(n) prebuilt table.
void build_own_messages(const Network& net, const AggConfig& config,
                        NodeId node, std::span<const Reading> values,
                        std::span<const std::int64_t> weights,
                        std::vector<AggMessage>& out) {
  out.clear();
  const MacContext key(net.keys().sensor_key(node));
  for (std::uint32_t i = 0; i < config.instances; ++i) {
    if (values[i] == kInfinity) continue;
    out.push_back(
        make_agg_message(key, node, i, values[i], weights[i], config.nonce));
  }
}

/// The per-instance minima a sensor would honestly forward: its own message
/// and everything collected from children, minimum by value (ties broken by
/// origin id for determinism).
AggBundle honest_bundle(const std::vector<AggMessage>& own,
                        const AuditLog& audits, NodeId node,
                        std::uint32_t instances) {
  std::vector<const AggMessage*> best(instances, nullptr);
  auto consider = [&](const AggMessage& m) {
    if (m.instance >= instances) return;
    const AggMessage*& slot = best[m.instance];
    if (slot == nullptr || m.value < slot->value ||
        (m.value == slot->value && m.origin < slot->origin))
      slot = &m;
  };
  for (const auto& m : own) consider(m);
  audits.for_each_received(node,
                           [&](const ReceivedRecord& r) { consider(r.msg); });

  AggBundle bundle;
  for (const AggMessage* m : best)
    if (m != nullptr) bundle.entries.push_back(*m);
  return bundle;
}

}  // namespace

AggregationOutcome run_aggregation(Network& net, Adversary* adversary,
                                   const TreeResult& tree,
                                   const AggConfig& config,
                                   const ValueTable& values,
                                   const ValueTable& weights, AuditLog& audits,
                                   Tracer tracer) {
  const std::uint32_t n = net.node_count();
  const Level L = tree.depth_bound;
  if (values.node_count != n || weights.node_count != n ||
      audits.node_count() != n)
    throw std::invalid_argument("run_aggregation: size mismatch");
  if (values.instances != config.instances ||
      weights.instances != config.instances)
    throw std::invalid_argument("run_aggregation: instance-count mismatch");

  net.fabric().reset();

  // Level-parallel sharding (see core/phase_shard.h): shards cover
  // contiguous node-id ranges, buffer their sends, and meter receipt into
  // per-shard traces; every fabric mutation and trace emission happens (or
  // merges) in global node-id order, so results and recorded streams are
  // bit-identical for any thread count.
  net.warm_crypto_caches();
  const std::size_t shards = plan_shards(n);
  ThreadPool& pool = ThreadPool::shared();
  std::vector<ShardBuf> bufs(shards);

  audits.begin_aggregation(shards);
  for (std::uint32_t id = 0; id < n; ++id)
    audits.set_level(NodeId{id}, tree.level[id]);

  // The adversary hook interface exposes every node's own messages and the
  // valid records delivered to malicious nodes — both O(n)
  // vector-of-vectors by construction (strategies index them per node). A
  // clean large-n run (no adversary) skips them entirely: honest
  // transmitters rebuild their own messages on the fly in their one
  // transmit slot, bit-identically (same pure MAC over the same inputs).
  const bool hooked = adversary != nullptr;
  std::vector<std::vector<AggMessage>> own(hooked ? n : 0);
  std::vector<std::vector<ReceivedRecord>> malicious_received(hooked ? n : 0);
  if (hooked) {
    std::vector<AggMessage> msgs;
    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      if (node == kBaseStation) continue;
      if (net.revocation().is_sensor_revoked(node)) continue;
      if (!tree.has_valid_level(node)) continue;
      build_own_messages(net, config, node, values.row(id), weights.row(id),
                         msgs);
      own[id] = msgs;
    }
  }

  AggregationOutcome outcome;

  for (Interval slot = 1; slot <= L; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      AggCtx ctx;
      ctx.tree = &tree;
      ctx.config = &config;
      ctx.slot = slot;
      ctx.malicious_received = &malicious_received;
      ctx.own_messages = &own;
      adversary->strategy().on_agg_slot(adversary->view(), ctx);
    }

    // Honest transmissions: a level-i sensor transmits in slot L-i+1.
    // Shards build bundles and batch-compute edge MACs; the fabric sends
    // replay serially below.
    for_each_shard(
        n, shards, pool,
        [&net, &tree, &config, &adversary, &values, &weights, &audits, &bufs,
         slot, L](std::size_t shard, std::size_t begin, std::size_t end) {
          ShardBuf& buf = bufs[shard];
          std::vector<AggMessage> own_msgs;  // per-node scratch
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (node == kBaseStation || byzantine(adversary, node)) continue;
            if (net.revocation().is_sensor_revoked(node)) continue;
            if (!tree.has_valid_level(node)) continue;
            const Level i = tree.level[id];
            if (slot != L - i + 1) continue;

            build_own_messages(net, config, node,
                               values.row(static_cast<std::uint32_t>(id)),
                               weights.row(static_cast<std::uint32_t>(id)),
                               own_msgs);
            const AggBundle bundle =
                honest_bundle(own_msgs, audits, node, config.instances);
            if (bundle.entries.empty()) continue;
            const Bytes frame = encode(bundle);

            const auto parents = tree.parents[id];
            const std::size_t fanout =
                config.multipath ? parents.size()
                                 : std::min<std::size_t>(1, parents.size());
            for (std::size_t p = 0; p < fanout; ++p) {
              const ParentLink& link = parents[p];
              if (net.revocation().is_key_revoked(link.edge_key)) continue;
              TxStep step;
              step.from = node;
              step.to = link.claimed_id;
              step.edge_key = link.edge_key;
              // The claimed parent may not be a physical neighbor (a
              // spoofed tree-formation frame); the fabric then drops the
              // frame at replay, which is exactly a silent drop the
              // confirmation phase will catch.
              buf.stage_payload(step, frame);
              buf.steps.push_back(std::move(step));
              for (const auto& m : bundle.entries)
                audits.add_forwarded(shard, node,
                                     {m, link.edge_key, link.claimed_id});
            }
          }
          compute_step_macs(net.keys(), buf);
        });
    replay_tx(net, bufs, nullptr, tracer);

    net.fabric().end_slot();

    // Receipt.
    ShardedTrace rx_trace(tracer, shards);
    for_each_shard(
        n, shards, pool,
        [&net, &tree, &config, &adversary, &audits, &bufs, &rx_trace,
         &malicious_received, &outcome, slot, L](
            std::size_t shard, std::size_t begin, std::size_t end) {
          Tracer shard_tracer = rx_trace.shard(shard);
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (net.revocation().is_sensor_revoked(node)) continue;
            const bool is_bs = node == kBaseStation;
            if (!is_bs && !tree.has_valid_level(node)) {
              (void)net.fabric().take_inbox(node);
              continue;
            }
            const Level i = is_bs ? 0 : tree.level[id];
            auto frames = net.receive_valid(node, bufs[shard].rx,
                                            shard_tracer);
            // Collection window: slots 1 .. L-i.
            if (!is_bs && slot > L - i) continue;
            const bool is_malicious =
                adversary != nullptr && adversary->is_malicious(node);
            for (const auto& env : frames) {
              const auto bundle = decode_agg(env.payload);
              if (!bundle.has_value()) continue;
              for (const auto& m : bundle->entries) {
                if (m.instance >= config.instances) continue;
                ReceivedRecord rec;
                rec.msg = m;
                rec.in_edge = env.edge_key;
                rec.slot = slot;
                rec.child_level = L - slot + 1;
                rec.claimed_sender = env.from;
                if (is_bs) {
                  // Only the shard owning kBaseStation reaches this arm
                  // (RX shards partition nodes), so the shared outcome
                  // sees exactly one writer.
                  // vmat-analyze: allow(shard-race) -- BS-owner-only write
                  outcome.arrivals.push_back({m, env.edge_key, slot});
                  audits.add_received(shard, node, rec);
                } else {
                  audits.add_received(shard, node, rec);
                  if (is_malicious) malicious_received[id].push_back(rec);
                }
              }
            }
          }
        });
    rx_trace.merge();
  }

  net.fabric().reset();
  return outcome;
}

}  // namespace vmat
