// Tree-formation phase (Section IV-A).
//
// VMAT mode (kTimestamp): the phase is divided into `depth_bound` (= L)
// slots. The base station transmits in slot 1; a sensor that receives its
// first valid tree-formation frame in slot t adopts level t and retransmits
// in slot t+1. Levels are therefore bounded by L for every honest sensor
// the malicious set does not partition away, no matter what hop counts
// adversaries write into frames.
//
// Baseline mode (kHopCount): classic TAG flooding — level = received hop
// count + 1, forwarded immediately. A wormhole pair can concatenate paths
// and push honest levels beyond L (Figure 2(c)), which the ablation bench
// demonstrates.
#pragma once

#include "attack/adversary.h"
#include "core/phase_state.h"
#include "sim/network.h"
#include "trace/trace.h"

namespace vmat {

struct TreePhaseParams {
  TreeMode mode{TreeMode::kTimestamp};
  Level depth_bound{0};  ///< the announced L (> 0)
  std::uint64_t session{0};
};

/// Run the phase to completion. The adversary hook runs at the start of
/// every slot, before honest transmissions.
[[nodiscard]] TreeResult run_tree_formation(Network& net, Adversary* adversary,
                                            const TreePhaseParams& params,
                                            Tracer tracer = {});

}  // namespace vmat
