// Aggregation phase (Section IV-B).
//
// The phase is divided into L slots. A sensor at level i collects bundles
// from its children until slot L-i, then transmits the per-instance minima
// of {its own message} ∪ {collected messages} to its parent(s) in slot
// L-i+1, recording ⟨level, message, in-edge, out-edge⟩ audit tuples as it
// goes. The base station collects throughout and returns every arrival —
// the coordinator classifies them as valid minima or junk.
//
// Multi-path mode (Section IV-D): bundles go to all recorded parents, one
// ForwardRecord per parent.
#pragma once

#include <vector>

#include "attack/adversary.h"
#include "core/audit.h"
#include "core/phase_state.h"
#include "sim/network.h"
#include "trace/trace.h"

namespace vmat {

/// An aggregation message as it arrived at the base station.
struct BsArrival {
  AggMessage msg;
  KeyIndex in_edge{kNoKey};
  Interval slot{0};
};

struct AggregationOutcome {
  std::vector<BsArrival> arrivals;
};

/// `values.row(node)[instance]` is the value each sensor reports (raw
/// reading for MIN, encoded synopsis otherwise); `weights.row(node)` the
/// synopsis weights (0 for raw MIN). Both tables must be sized node_count x
/// config.instances. `audits` (node_count nodes) receives the distributed
/// audit trail; previous aggregation records are cleared.
[[nodiscard]] AggregationOutcome run_aggregation(
    Network& net, Adversary* adversary, const TreeResult& tree,
    const AggConfig& config, const ValueTable& values,
    const ValueTable& weights, AuditLog& audits, Tracer tracer = {});

}  // namespace vmat
