#include "core/query.h"

#include <stdexcept>

namespace vmat {

QueryEngine::QueryEngine(VmatCoordinator* coordinator)
    : coordinator_(coordinator) {
  if (coordinator == nullptr)
    throw std::invalid_argument("QueryEngine: null coordinator");
}

QueryOutcome QueryEngine::run_synopsis_query(
    const std::vector<std::int64_t>& weights) {
  const std::uint32_t instances = coordinator_->config().instances;
  const std::size_t n = weights.size();

  const SynopsisCodec codec(coordinator_->fresh_nonce());
  std::vector<std::vector<Reading>> values(n);
  std::vector<std::vector<std::int64_t>> weight_grid(n);
  for (std::size_t id = 0; id < n; ++id) {
    values[id].assign(instances, kInfinity);
    weight_grid[id].assign(instances, 0);
    if (weights[id] <= 0 || id == kBaseStation.value) continue;
    codec.fill_values(NodeId{static_cast<std::uint32_t>(id)}, weights[id],
                      values[id]);
    weight_grid[id].assign(instances, weights[id]);
  }

  QueryOutcome out;
  out.exec = coordinator_->execute(
      values, weight_grid,
      [&codec](const AggMessage& m) { return codec.consistent(m); });
  if (out.exec.produced_result())
    out.estimate = estimate_sum(out.exec.minima);
  return out;
}

QueryOutcome QueryEngine::count(const std::vector<std::uint8_t>& predicate) {
  std::vector<std::int64_t> weights(predicate.size(), 0);
  for (std::size_t i = 0; i < predicate.size(); ++i)
    weights[i] = predicate[i] ? 1 : 0;
  return run_synopsis_query(weights);
}

QueryOutcome QueryEngine::sum(const std::vector<std::int64_t>& readings) {
  for (std::int64_t r : readings)
    if (r < 0)
      throw std::invalid_argument("QueryEngine::sum: negative reading");
  return run_synopsis_query(readings);
}

QueryOutcome QueryEngine::average(const std::vector<std::int64_t>& readings) {
  QueryOutcome total = sum(readings);
  if (!total.answered()) return total;

  std::vector<std::uint8_t> positive(readings.size(), 0);
  for (std::size_t i = 0; i < readings.size(); ++i)
    positive[i] = readings[i] > 0 ? 1 : 0;
  QueryOutcome cnt = count(positive);
  if (!cnt.answered()) return cnt;

  QueryOutcome out;
  out.exec = cnt.exec;
  out.estimate =
      *cnt.estimate <= 0.0 ? 0.0 : *total.estimate / *cnt.estimate;
  return out;
}

QueryOutcome QueryEngine::count_until_answered(
    const std::vector<std::uint8_t>& predicate, int max_executions) {
  for (int i = 0; i < max_executions; ++i) {
    QueryOutcome out = count(predicate);
    if (out.answered()) return out;
  }
  throw std::runtime_error(
      "count_until_answered: adversary still standing after max_executions");
}

QueryOutcome QueryEngine::run_plain_min(const std::vector<Reading>& readings) {
  // Uses instance 0 only, whatever the coordinator's instance count, so
  // one engine serves synopsis queries and exact MIN/MAX alike.
  const std::uint32_t instances = coordinator_->config().instances;
  const std::size_t n = readings.size();
  std::vector<std::vector<Reading>> values(n);
  std::vector<std::vector<std::int64_t>> weights(n);
  for (std::size_t id = 0; id < n; ++id) {
    values[id].assign(instances, kInfinity);
    weights[id].assign(instances, 0);
    if (id != kBaseStation.value) values[id][0] = readings[id];
  }
  QueryOutcome out;
  out.exec = coordinator_->execute(values, weights);
  if (out.exec.produced_result() && out.exec.minima[0] != kInfinity)
    out.estimate = static_cast<double>(out.exec.minima[0]);
  return out;
}

QueryOutcome QueryEngine::min_reading(const std::vector<Reading>& readings) {
  return run_plain_min(readings);
}

QueryOutcome QueryEngine::max_reading(const std::vector<Reading>& readings) {
  std::vector<Reading> negated(readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) negated[i] = -readings[i];
  QueryOutcome out = run_plain_min(negated);
  if (out.estimate.has_value()) out.estimate = -*out.estimate;
  return out;
}

QueryOutcome QueryEngine::quantile(const std::vector<std::int64_t>& readings,
                                   double q, std::int64_t domain_max,
                                   int max_executions_per_probe) {
  if (q <= 0.0 || q >= 1.0)
    throw std::invalid_argument("quantile: require 0 < q < 1");
  if (domain_max < 0)
    throw std::invalid_argument("quantile: negative domain");
  for (std::int64_t r : readings)
    if (r < 0 || r > domain_max)
      throw std::invalid_argument("quantile: reading outside domain");

  auto count_leq = [&](std::int64_t v) {
    std::vector<std::uint8_t> predicate(readings.size(), 0);
    for (std::size_t i = 1; i < readings.size(); ++i)
      predicate[i] = readings[i] <= v ? 1 : 0;
    for (int e = 0; e < max_executions_per_probe; ++e) {
      QueryOutcome out = count(predicate);
      if (out.answered()) return *out.estimate;
    }
    throw std::runtime_error("quantile: probe never answered");
  };

  const double total = count_leq(domain_max);
  QueryOutcome out;
  if (total <= 0.0) {
    // Empty population: report the bottom of the domain.
    out.exec.kind = OutcomeKind::kResult;
    out.estimate = 0.0;
    return out;
  }
  const double target = q * total;
  std::int64_t lo = 0, hi = domain_max;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (count_leq(mid) >= target)
      hi = mid;
    else
      lo = mid + 1;
  }
  out.exec.kind = OutcomeKind::kResult;
  out.estimate = static_cast<double>(lo);
  return out;
}

}  // namespace vmat
