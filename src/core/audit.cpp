#include "core/audit.h"

#include <algorithm>

namespace vmat {

Bytes encode_predicate(const Predicate& p) {
  ByteWriter w;
  w.str("vmat.predicate");
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u32(p.instance);
  w.i64(p.v_max);
  w.u32(static_cast<std::uint32_t>(p.level));
  w.u32(p.id_lo.value);
  w.u32(p.id_hi.value);
  w.u32(p.z_lo.value);
  w.u32(p.z_hi.value);
  w.u32(p.bound_edge.value);
  w.raw(p.msg_hash);
  return w.take();
}

namespace {

bool in_id_window(const Predicate& p, NodeId self) noexcept {
  return p.id_lo <= self && self <= p.id_hi;
}

bool in_edge_window(const Predicate& p, KeyIndex k) noexcept {
  return k != kNoKey && p.z_lo <= k && k <= p.z_hi;
}

}  // namespace

namespace {

/// Existential scan over a node's pooled record chain.
template <class Log, class F>
bool any_forwarded(const Log& audits, NodeId self, F&& pred) {
  bool hit = false;
  audits.for_each_forwarded(self, [&](const ForwardRecord& f) {
    if (!hit && pred(f)) hit = true;
  });
  return hit;
}

template <class Log, class F>
bool any_received(const Log& audits, NodeId self, F&& pred) {
  bool hit = false;
  audits.for_each_received(self, [&](const ReceivedRecord& r) {
    if (!hit && pred(r)) hit = true;
  });
  return hit;
}

}  // namespace

bool evaluate_predicate(const Predicate& p, NodeId self,
                        const AuditLog& audits) {
  if (!in_id_window(p, self)) return false;

  switch (p.kind) {
    case PredicateKind::kAggForwardedValue: {
      if (audits.level(self) != p.level) return false;
      return any_forwarded(audits, self, [&](const ForwardRecord& f) {
        return f.msg.instance == p.instance && f.msg.value <= p.v_max &&
               in_edge_window(p, f.out_edge);
      });
    }
    case PredicateKind::kAggReceivedValue: {
      if (audits.level(self) != p.level - 1) return false;
      return any_received(audits, self, [&](const ReceivedRecord& r) {
        return r.msg.instance == p.instance && r.msg.value <= p.v_max &&
               r.child_level == p.level;
      });
    }
    case PredicateKind::kJunkAggForwarded: {
      if (audits.level(self) != p.level) return false;
      return any_forwarded(audits, self, [&](const ForwardRecord& f) {
        return f.out_edge == p.bound_edge &&
               message_identity(f.msg) == p.msg_hash;
      });
    }
    case PredicateKind::kJunkAggReceived: {
      if (audits.level(self) != p.level) return false;
      return any_received(audits, self, [&](const ReceivedRecord& r) {
        return in_edge_window(p, r.in_edge) &&
               message_identity(r.msg) == p.msg_hash;
      });
    }
    case PredicateKind::kJunkSofForwarded: {
      const SofRecord* s = audits.sof(self);
      if (s == nullptr) return false;
      return s->forward_interval == p.level &&
             message_identity(s->msg) == p.msg_hash &&
             std::find(s->out_edges.begin(), s->out_edges.end(),
                       p.bound_edge) != s->out_edges.end();
    }
    case PredicateKind::kJunkSofReceived: {
      const SofRecord* s = audits.sof(self);
      if (s == nullptr) return false;
      return !s->originated && s->received_interval == p.level &&
             message_identity(s->msg) == p.msg_hash &&
             in_edge_window(p, s->in_edge);
    }
  }
  return false;
}

}  // namespace vmat
