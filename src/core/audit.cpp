#include "core/audit.h"

#include <algorithm>

namespace vmat {

Bytes encode_predicate(const Predicate& p) {
  ByteWriter w;
  w.str("vmat.predicate");
  w.u8(static_cast<std::uint8_t>(p.kind));
  w.u32(p.instance);
  w.i64(p.v_max);
  w.u32(static_cast<std::uint32_t>(p.level));
  w.u32(p.id_lo.value);
  w.u32(p.id_hi.value);
  w.u32(p.z_lo.value);
  w.u32(p.z_hi.value);
  w.u32(p.bound_edge.value);
  w.raw(p.msg_hash);
  return w.take();
}

namespace {

bool in_id_window(const Predicate& p, NodeId self) noexcept {
  return p.id_lo <= self && self <= p.id_hi;
}

bool in_edge_window(const Predicate& p, KeyIndex k) noexcept {
  return k != kNoKey && p.z_lo <= k && k <= p.z_hi;
}

}  // namespace

bool evaluate_predicate(const Predicate& p, NodeId self,
                        const NodeAudit& audit) {
  if (!in_id_window(p, self)) return false;

  switch (p.kind) {
    case PredicateKind::kAggForwardedValue: {
      if (audit.agg.level != p.level) return false;
      return std::any_of(
          audit.agg.forwarded.begin(), audit.agg.forwarded.end(),
          [&](const ForwardRecord& f) {
            return f.msg.instance == p.instance && f.msg.value <= p.v_max &&
                   in_edge_window(p, f.out_edge);
          });
    }
    case PredicateKind::kAggReceivedValue: {
      if (audit.agg.level != p.level - 1) return false;
      return std::any_of(
          audit.agg.received.begin(), audit.agg.received.end(),
          [&](const ReceivedRecord& r) {
            return r.msg.instance == p.instance && r.msg.value <= p.v_max &&
                   r.child_level == p.level;
          });
    }
    case PredicateKind::kJunkAggForwarded: {
      if (audit.agg.level != p.level) return false;
      return std::any_of(audit.agg.forwarded.begin(),
                         audit.agg.forwarded.end(),
                         [&](const ForwardRecord& f) {
                           return f.out_edge == p.bound_edge &&
                                  message_identity(f.msg) == p.msg_hash;
                         });
    }
    case PredicateKind::kJunkAggReceived: {
      if (audit.agg.level != p.level) return false;
      return std::any_of(audit.agg.received.begin(), audit.agg.received.end(),
                         [&](const ReceivedRecord& r) {
                           return in_edge_window(p, r.in_edge) &&
                                  message_identity(r.msg) == p.msg_hash;
                         });
    }
    case PredicateKind::kJunkSofForwarded: {
      if (!audit.sof.has_value()) return false;
      const SofRecord& s = *audit.sof;
      return s.forward_interval == p.level &&
             message_identity(s.msg) == p.msg_hash &&
             std::find(s.out_edges.begin(), s.out_edges.end(), p.bound_edge) !=
                 s.out_edges.end();
    }
    case PredicateKind::kJunkSofReceived: {
      if (!audit.sof.has_value()) return false;
      const SofRecord& s = *audit.sof;
      return !s.originated && s.received_interval == p.level &&
             message_identity(s.msg) == p.msg_hash &&
             in_edge_window(p, s.in_edge);
    }
  }
  return false;
}

}  // namespace vmat
