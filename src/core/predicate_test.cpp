#include "core/predicate_test.h"

#include <deque>
#include <stdexcept>

namespace vmat {

PredicateTestEngine::PredicateTestEngine(Network* net, Adversary* adversary,
                                         const AuditLog* audits,
                                         CostMeter* meter,
                                         PredicateTestMode mode, Tracer tracer)
    : net_(net),
      adversary_(adversary),
      audits_(audits),
      meter_(meter),
      mode_(mode),
      tracer_(tracer) {
  if (net == nullptr || audits == nullptr || meter == nullptr)
    throw std::invalid_argument("PredicateTestEngine: null dependency");
}

bool PredicateTestEngine::holder_is(const KeySpec& key, NodeId node) const {
  switch (key.type) {
    case KeySpec::Type::kSensorKey:
      return node == key.sensor;
    case KeySpec::Type::kPoolKey:
      return net_->keys().node_holds(node, key.pool);
  }
  return false;
}

const MacContext& PredicateTestEngine::key_context(const KeySpec& key) const {
  switch (key.type) {
    case KeySpec::Type::kSensorKey:
      return net_->keys().sensor_mac_context(key.sensor);
    case KeySpec::Type::kPoolKey:
      return net_->keys().mac_context(key.pool);
  }
  throw std::logic_error("key_context: bad key spec");
}

std::vector<NodeId> PredicateTestEngine::collect_repliers(
    const KeySpec& key, const Predicate& predicate) {
  std::vector<NodeId> repliers;
  for (std::uint32_t id = 0; id < net_->node_count(); ++id) {
    const NodeId node{id};
    if (!holder_is(key, node)) continue;
    if (net_->revocation().is_sensor_revoked(node)) continue;
    if (byzantine(adversary_, node)) {
      if (adversary_->strategy().answer_predicate(adversary_->view(),
                                                  predicate, node))
        repliers.push_back(node);
    } else if (evaluate_predicate(predicate, node, *audits_)) {
      repliers.push_back(node);
    }
  }
  return repliers;
}

bool PredicateTestEngine::reaches_base_station(
    const std::vector<NodeId>& repliers) const {
  if (repliers.empty()) return false;
  // Active honest sensors relay the (verifiable) reply; Byzantine sensors
  // pessimistically never relay. BFS from the base station over the active
  // honest subgraph; a replier succeeds if it is in that component (honest
  // replier) or physically adjacent to it (Byzantine injector).
  const std::uint32_t n = net_->node_count();
  std::vector<bool> active(n, false);
  for (std::uint32_t id = 0; id < n; ++id) {
    const NodeId node{id};
    active[id] = !net_->revocation().is_sensor_revoked(node) &&
                 !byzantine(adversary_, node);
  }
  std::vector<bool> reached(n, false);
  std::deque<NodeId> queue;
  if (active[kBaseStation.value]) {
    reached[kBaseStation.value] = true;
    queue.push_back(kBaseStation);
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : net_->topology().neighbors(u)) {
      if (!active[v.value] || reached[v.value]) continue;
      reached[v.value] = true;
      queue.push_back(v);
    }
  }
  for (NodeId r : repliers) {
    if (reached[r.value]) return true;
    for (NodeId v : net_->topology().neighbors(r))
      if (reached[v.value]) return true;
  }
  return false;
}

bool PredicateTestEngine::flood_reply(const std::vector<NodeId>& repliers,
                                      const Mac& reply, const Digest& token) {
  // One-time verified flood on the actual fabric: the reply needs no edge
  // MAC because every sensor can check a candidate frame against the
  // broadcast token H(MAC_K(N ‖ P)).
  net_->fabric().reset();
  const std::uint32_t n = net_->node_count();
  const Bytes frame = encode(PredicateReplyMsg{reply});

  auto transmit = [&](NodeId from) {
    for (NodeId v : net_->topology().neighbors(from)) {
      Envelope e;
      e.from = from;
      e.to = v;
      e.edge_key = kNoKey;  // token-verified, not edge-authenticated
      e.payload = frame;
      (void)net_->fabric().send_as(from, std::move(e));
    }
  };

  std::vector<bool> handled(n, false);
  std::vector<NodeId> to_send = repliers;
  bool bs_received = false;

  const Level L = net_->physical_depth();
  for (Interval slot = 1; slot <= 2 * L + 2 && !bs_received; ++slot) {
    for (NodeId s : to_send) {
      if (net_->revocation().is_sensor_revoked(s)) continue;
      transmit(s);
      handled[s.value] = true;
    }
    to_send.clear();
    net_->fabric().end_slot();
    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      auto inbox = net_->fabric().take_inbox(node);
      if (net_->revocation().is_sensor_revoked(node)) continue;
      if (node != kBaseStation && byzantine(adversary_, node))
        continue;  // Byzantine sensors do not relay
      for (const auto& env : inbox) {
        const auto msg = decode_reply(env.payload);
        if (!msg.has_value()) continue;          // malformed: dropped
        if (hash_of_mac(msg->reply) != token) continue;  // junk: dropped
        if (node == kBaseStation) {
          bs_received = true;
          break;
        }
        if (!handled[id]) {
          handled[id] = true;
          to_send.push_back(node);  // one-time forward next slot
        }
      }
    }
  }
  net_->fabric().reset();
  return bs_received;
}

bool PredicateTestEngine::run(const KeySpec& key, const Predicate& predicate) {
  ++nonce_;
  meter_->predicate_tests += 1;
  // One authenticated broadcast (token dissemination) + the reply flood:
  // the paper charges two flooding rounds per test.
  meter_->flooding_rounds += 2;
  meter_->control_bytes += static_cast<std::uint64_t>(net_->node_count()) *
                           (encode_predicate(predicate).size() + 48);

  const std::vector<NodeId> repliers = collect_repliers(key, predicate);

  bool ok;
  if (mode_ == PredicateTestMode::kReachability) {
    ok = reaches_base_station(repliers);
  } else {
    // Message-level mode: derive the actual reply and token and flood it.
    ByteWriter mac_input;
    mac_input.str("vmat.predicate-reply");
    mac_input.u64(nonce_);
    mac_input.raw(encode_predicate(predicate));
    const Mac reply = key_context(key).compute(mac_input.bytes());
    ok = flood_reply(repliers, reply, hash_of_mac(reply));
  }
  const NodeId subject =
      key.type == KeySpec::Type::kSensorKey ? key.sensor : NodeId{};
  const KeyIndex pool =
      key.type == KeySpec::Type::kPoolKey ? key.pool : kNoKey;
  tracer_.predicate_test(subject, pool, ok);
  return ok;
}

}  // namespace vmat
