#include "core/report.h"

#include <algorithm>
#include <cstdio>

namespace vmat {
namespace {

std::string format(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

}  // namespace

const char* to_string(Trigger trigger) noexcept {
  switch (trigger) {
    case Trigger::kNone: return "none";
    case Trigger::kVeto: return "veto";
    case Trigger::kJunkAggregation: return "junk-aggregation";
    case Trigger::kJunkConfirmation: return "junk-confirmation";
    case Trigger::kSelfIncrimination: return "self-incrimination";
  }
  return "?";
}

const char* to_string(OutcomeKind kind) noexcept {
  switch (kind) {
    case OutcomeKind::kResult: return "result";
    case OutcomeKind::kRevocation: return "revocation";
  }
  return "?";
}

std::string summarize(const ExecutionOutcome& outcome) {
  if (outcome.produced_result()) {
    std::string minima = "[";
    const std::size_t shown = std::min<std::size_t>(outcome.minima.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i > 0) minima += ", ";
      minima += outcome.minima[i] == kInfinity
                    ? "inf"
                    : std::to_string(outcome.minima[i]);
    }
    if (outcome.minima.size() > shown) minima += ", ...";
    minima += "]";
    return format("result: minima=%s (%d rounds, %.1f KB)", minima.c_str(),
                  outcome.data_rounds,
                  static_cast<double>(outcome.fabric_bytes) / kBytesPerKb);
  }
  return format("revoked %zu key(s), %zu sensor(s) via %s: %s (%d tests)",
                outcome.revoked_keys.size(), outcome.revoked_sensors.size(),
                to_string(outcome.trigger), outcome.reason.c_str(),
                outcome.pinpoint_cost.predicate_tests);
}

std::string describe(const ExecutionOutcome& outcome) {
  std::string out;
  out += format("outcome:   %s\n", to_string(outcome.kind));
  out += format("trigger:   %s\n", to_string(outcome.trigger));
  if (outcome.produced_result()) {
    out += format("instances: %zu\n", outcome.minima.size());
  } else {
    out += format("reason:    %s\n", outcome.reason.c_str());
    out += format("revoked:   %zu key(s), %zu sensor(s)\n",
                  outcome.revoked_keys.size(), outcome.revoked_sensors.size());
    out += format("pinpoint:  %d predicate tests, %d flooding rounds\n",
                  outcome.pinpoint_cost.predicate_tests,
                  outcome.pinpoint_cost.flooding_rounds);
  }
  out += format("data path: %d flooding rounds, %.1f KB on the fabric\n",
                outcome.data_rounds,
                static_cast<double>(outcome.fabric_bytes) / kBytesPerKb);
  return out;
}

std::string describe_revocations(const Network& net) {
  const auto& reg = net.revocation();
  std::size_t pinpointed = 0, bulk = 0;
  for (const auto& e : reg.events()) {
    if (e.cause == RevocationCause::kPinpointed)
      ++pinpointed;
    else
      ++bulk;
  }
  std::string out;
  out += format("revoked keys:    %zu (%zu pinpointed, %zu via ring seeds)\n",
                reg.revoked_key_count(), pinpointed, bulk);
  out += format("revoked sensors: %zu", reg.revoked_sensors_in_order().size());
  for (NodeId s : reg.revoked_sensors_in_order())
    out += format(" %u", s.value);
  out += "\n";
  out += format("threshold:       theta=%u%s\n", reg.threshold(),
                reg.threshold() == 0 ? " (ring revocation disabled)" : "");
  return out;
}

std::string describe_deployment(const Network& net) {
  const auto& topo = net.topology();
  std::size_t min_deg = topo.node_count(), max_deg = 0, total_deg = 0;
  for (std::uint32_t id = 0; id < topo.node_count(); ++id) {
    const std::size_t d = topo.degree(NodeId{id});
    min_deg = std::min(min_deg, d);
    max_deg = std::max(max_deg, d);
    total_deg += d;
  }
  std::string out;
  out += format("sensors:  %u (+ base station at node 0)\n",
                net.node_count() - 1);
  out += format("edges:    %zu physical, depth L=%d\n", topo.edge_count(),
                net.physical_depth());
  out += format("degree:   min %zu / avg %.1f / max %zu\n", min_deg,
                static_cast<double>(total_deg) / topo.node_count(), max_deg);
  out += format("keys:     pool u=%u, ring r=%u (mean pairwise overlap %.2f)\n",
                net.keys().config().pool_size, net.keys().config().ring_size,
                static_cast<double>(net.keys().config().ring_size) *
                    net.keys().config().ring_size /
                    net.keys().config().pool_size);
  return out;
}

}  // namespace vmat
