#include "core/monitor.h"

#include <stdexcept>

namespace vmat {

MonitorService::MonitorService(QueryEngine* queries, Network* net,
                               MonitorConfig config)
    : queries_(queries), net_(net), config_(config) {
  if (queries == nullptr || net == nullptr)
    throw std::invalid_argument("MonitorService: null dependency");
  if (config.max_retries_per_epoch < 1)
    throw std::invalid_argument("MonitorService: retry budget must be >= 1");
}

template <typename RunOnce>
EpochReport MonitorService::run_epoch(RunOnce&& run_once) {
  EpochReport report;
  report.epoch = epochs() + 1;
  const std::size_t keys_before = net_->revocation().revoked_key_count();
  const std::size_t sensors_before =
      net_->revocation().revoked_sensors_in_order().size();

  for (int attempt = 0; attempt < config_.max_retries_per_epoch; ++attempt) {
    const QueryOutcome out = run_once();
    if (out.answered()) {
      report.estimate = out.estimate;
      break;
    }
    ++report.disruptions;
  }
  report.keys_revoked =
      net_->revocation().revoked_key_count() - keys_before;
  report.sensors_revoked =
      net_->revocation().revoked_sensors_in_order().size() - sensors_before;
  history_.push_back(report);
  return report;
}

EpochReport MonitorService::run_count_epoch(
    const std::vector<std::uint8_t>& predicate) {
  return run_epoch([&] { return queries_->count(predicate); });
}

EpochReport MonitorService::run_sum_epoch(
    const std::vector<std::int64_t>& readings) {
  return run_epoch([&] { return queries_->sum(readings); });
}

EpochReport MonitorService::run_average_epoch(
    const std::vector<std::int64_t>& readings) {
  return run_epoch([&] { return queries_->average(readings); });
}

int MonitorService::total_disruptions() const noexcept {
  int total = 0;
  for (const auto& r : history_) total += r.disruptions;
  return total;
}

std::size_t MonitorService::answered_epochs() const noexcept {
  std::size_t total = 0;
  for (const auto& r : history_)
    if (r.answered()) ++total;
  return total;
}

}  // namespace vmat
