// Keyed predicate test (Yu, IPSN'09 — reviewed in Section VI-A).
//
// The base station asks: "is there a sensor that (i) holds key K and (ii)
// satisfies predicate P?". It authenticated-broadcasts
//     ⟨index of K, P, nonce N, H(MAC_K(N ‖ P))⟩,
// a holder of K satisfying P generates MAC_K(N ‖ P) as the "yes" reply and
// floods it; every sensor can verify a candidate reply against the hash
// token, so only the one legitimate reply can propagate — choking is
// structurally impossible. The test succeeds iff the base station receives
// the valid reply within two flooding rounds.
//
// Theorem 3 guarantees: an honest satisfying holder ⇒ success; no
// satisfying honest holder and no malicious holder ⇒ failure. A malicious
// holder can freely answer either way — the pinpointing protocols are built
// to be sound against that.
//
// The engine offers two execution modes:
//  * kReachability (default): because exactly one byte string can
//    propagate (every forwarder verifies it against the token), flooding
//    degenerates to reachability; the engine runs a BFS over active honest
//    sensors. Exact and fast.
//  * kMessageLevel: the flood actually runs on the fabric — repliers
//    broadcast MAC_K(N ‖ P), every honest sensor verifies candidate frames
//    against H(MAC_K(N ‖ P)) and one-time-forwards the first valid one.
//    Junk frames (wrong hash) die at the first honest hop, demonstrating
//    the choke-proofness mechanically. Tests assert both modes agree.
#pragma once

#include <cstdint>

#include "attack/adversary.h"
#include "core/audit.h"
#include "sim/network.h"
#include "trace/trace.h"

namespace vmat {

/// Which key a test is keyed on.
struct KeySpec {
  enum class Type : std::uint8_t { kSensorKey, kPoolKey };
  Type type{Type::kSensorKey};
  NodeId sensor;   ///< for kSensorKey
  KeyIndex pool{kNoKey};  ///< for kPoolKey

  [[nodiscard]] static KeySpec sensor_key(NodeId id) {
    KeySpec s;
    s.type = Type::kSensorKey;
    s.sensor = id;
    return s;
  }
  [[nodiscard]] static KeySpec pool_key(KeyIndex k) {
    KeySpec s;
    s.type = Type::kPoolKey;
    s.pool = k;
    return s;
  }
};

/// Accumulates the control-plane cost of a pinpointing run.
struct CostMeter {
  int flooding_rounds{0};
  int predicate_tests{0};
  std::uint64_t control_bytes{0};

  void charge_broadcast(std::uint32_t node_count, std::size_t bytes) {
    flooding_rounds += 1;
    control_bytes += static_cast<std::uint64_t>(node_count) * bytes;
  }
};

enum class PredicateTestMode : std::uint8_t {
  kReachability,  ///< exact BFS collapse (default)
  kMessageLevel,  ///< full fabric-level verified one-time flood
};

class PredicateTestEngine {
 public:
  /// `audits` must outlive the engine and stay indexed by node id.
  PredicateTestEngine(Network* net, Adversary* adversary,
                      const AuditLog* audits, CostMeter* meter,
                      PredicateTestMode mode = PredicateTestMode::kReachability,
                      Tracer tracer = {});

  /// Run one keyed predicate test. Exact per Theorem 3 semantics plus
  /// Byzantine holders answering via the adversary strategy.
  [[nodiscard]] bool run(const KeySpec& key, const Predicate& predicate);

 private:
  [[nodiscard]] bool holder_is(const KeySpec& key, NodeId node) const;
  [[nodiscard]] const MacContext& key_context(const KeySpec& key) const;
  [[nodiscard]] std::vector<NodeId> collect_repliers(
      const KeySpec& key, const Predicate& predicate);
  [[nodiscard]] bool reaches_base_station(
      const std::vector<NodeId>& repliers) const;
  [[nodiscard]] bool flood_reply(const std::vector<NodeId>& repliers,
                                 const Mac& reply, const Digest& token);

  Network* net_;
  Adversary* adversary_;
  const AuditLog* audits_;
  CostMeter* meter_;
  PredicateTestMode mode_;
  Tracer tracer_;
  std::uint64_t nonce_{0};
};

}  // namespace vmat
