#include "core/confirmation.h"

#include <optional>
#include <stdexcept>

#include "core/phase_shard.h"
#include "util/parallel.h"

namespace vmat {
namespace {

/// The instance a sensor vetoes for: the smallest instance index whose own
/// value undercuts the broadcast minimum.
std::optional<std::uint32_t> veto_instance(
    std::span<const Reading> own_values,
    const std::vector<Reading>& minima) {
  for (std::uint32_t i = 0; i < minima.size() && i < own_values.size(); ++i)
    if (own_values[i] < minima[i]) return i;
  return std::nullopt;
}

}  // namespace

ConfirmationOutcome run_confirmation(
    Network& net, Adversary* adversary, const TreeResult& tree,
    const std::vector<Reading>& broadcast_minima, std::uint64_t nonce,
    const ValueTable& values, AuditLog& audits, bool slotted, Tracer tracer) {
  const std::uint32_t n = net.node_count();
  const Level L = tree.depth_bound;
  if (values.node_count != n || audits.node_count() != n)
    throw std::invalid_argument("run_confirmation: size mismatch");

  net.fabric().reset();

  // Level-parallel sharding (see core/phase_shard.h). Veto MACs and the
  // per-neighbor edge MACs compute in-shard; sends, out-edge audit records
  // (which depend on send success) and veto trace events replay serially in
  // node-id order, so the fabric and the event stream behave exactly as in
  // serial execution.
  net.warm_crypto_caches();
  const std::size_t shards = plan_shards(n);
  ThreadPool& pool = ThreadPool::shared();
  std::vector<ShardBuf> bufs(shards);

  audits.begin_sof(shards);

  // Pending forwards decided at receipt, executed next slot (an empty
  // buffer means none — a recorded veto frame is never empty). The
  // malicious-veto feed exists only for the adversary hooks.
  std::vector<Bytes> pending(n);
  std::vector<std::vector<VetoMsg>> malicious_vetoes(
      adversary != nullptr ? n : 0);

  ConfirmationOutcome outcome;

  const Interval max_interval = slotted ? L : 4 * L + 4;
  for (Interval slot = 1; slot <= max_interval; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      ConfCtx ctx;
      ctx.tree = &tree;
      ctx.nonce = nonce;
      ctx.slot = slot;
      ctx.broadcast_minima = &broadcast_minima;
      ctx.malicious_vetoes = &malicious_vetoes;
      adversary->strategy().on_conf_slot(adversary->view(), ctx);
    }

    for_each_shard(
        n, shards, pool,
        [&net, &tree, &adversary, &values, &broadcast_minima, &audits,
         &pending, &bufs, nonce, slot](std::size_t shard, std::size_t begin,
                                      std::size_t end) {
          ShardBuf& buf = bufs[shard];
          auto buffer_flood = [&net, &buf](NodeId node, const Bytes& frame,
                                           bool track_out_edge) {
            for (NodeId v : net.topology().neighbors(node)) {
              const auto edge_key = net.usable_edge_key(node, v);
              if (!edge_key.has_value()) continue;
              TxStep step;
              step.from = node;
              step.to = v;
              step.edge_key = *edge_key;
              step.track_out_edge = track_out_edge;
              buf.stage_payload(step, frame);
              buf.steps.push_back(std::move(step));
            }
          };
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (node == kBaseStation || byzantine(adversary, node)) continue;
            if (net.revocation().is_sensor_revoked(node)) continue;

            if (slot == 1) {
              // Vetoers transmit in the first interval.
              if (!tree.has_valid_level(node)) continue;
              const auto instance = veto_instance(
                  values.row(static_cast<std::uint32_t>(id)),
                  broadcast_minima);
              if (!instance.has_value()) continue;
              // Stack context: identical MAC to the cached form, and
              // thread-safe inside the shard (no lazy table mutation).
              const MacContext vetoer_key(net.keys().sensor_key(node));
              const Reading own =
                  values.row(static_cast<std::uint32_t>(id))[*instance];
              const VetoMsg veto = make_veto(vetoer_key, node, *instance, own,
                                             tree.level[id], nonce);
              SofRecord rec;
              rec.msg = veto;
              rec.originated = true;
              rec.received_interval = 0;
              rec.forward_interval = 1;
              // out_edges fill at replay, as sends succeed.
              audits.set_sof(shard, node, std::move(rec));
              buffer_flood(node, encode(veto), /*track_out_edge=*/true);
              TxStep ev;
              ev.kind = TxStep::Kind::kVeto;
              ev.actor = node;
              ev.origin = node;
              ev.slot = slot;
              ev.value = own;
              ev.originated = true;
              buf.steps.push_back(std::move(ev));
            } else if (!pending[id].empty()) {
              // One-time forward of the first veto received last slot.
              const Bytes frame = std::move(pending[id]);
              pending[id].clear();
              buffer_flood(node, frame, /*track_out_edge=*/true);
            }
          }
          compute_step_macs(net.keys(), buf);
        });
    replay_tx(net, bufs, &audits, tracer);

    net.fabric().end_slot();

    ShardedTrace rx_trace(tracer, shards);
    for_each_shard(
        n, shards, pool,
        [&net, &adversary, &audits, &pending, &malicious_vetoes, &outcome,
         &bufs, &rx_trace, slot](std::size_t shard, std::size_t begin,
                                 std::size_t end) {
          Tracer shard_tracer = rx_trace.shard(shard);
          for (std::size_t id = begin; id < end; ++id) {
            const NodeId node{static_cast<std::uint32_t>(id)};
            if (net.revocation().is_sensor_revoked(node)) continue;
            auto frames = net.receive_valid(node, bufs[shard].rx,
                                            shard_tracer);
            const bool is_malicious =
                adversary != nullptr && adversary->is_malicious(node);
            for (const auto& env : frames) {
              const auto veto = decode_veto(env.payload);
              if (!veto.has_value()) continue;
              if (node == kBaseStation) {
                // Only the shard owning kBaseStation reaches this arm
                // (RX shards partition nodes), so the shared outcome
                // sees exactly one writer.
                // vmat-analyze: allow(shard-race) -- BS-owner-only write
                outcome.arrivals.push_back({*veto, env.edge_key, slot});
                continue;
              }
              if (is_malicious) malicious_vetoes[id].push_back(*veto);
              if (byzantine(adversary, node)) continue;  // strategy decides
              if (audits.has_sof(node)) continue;  // one-time: handled
              // First veto: schedule forwarding for the next slot and
              // record the audit tuple now.
              SofRecord rec;
              rec.msg = *veto;
              rec.originated = false;
              rec.received_interval = slot;
              rec.forward_interval = slot + 1;
              rec.in_edge = env.edge_key;
              audits.set_sof(shard, node, std::move(rec));
              // One-time per node per execution: the forwarded frame must
              // outlive the arena slot.
              // vmat-lint: allow(hot-path-alloc) -- one-shot veto forward
              pending[id] = Bytes(env.payload.begin(), env.payload.end());
              shard_tracer.veto(node, veto->origin, slot, veto->value, false);
            }
          }
        });
    rx_trace.merge();
  }

  net.fabric().reset();
  return outcome;
}

}  // namespace vmat
