#include "core/confirmation.h"

#include <optional>
#include <stdexcept>

namespace vmat {
namespace {

/// The instance a sensor vetoes for: the smallest instance index whose own
/// value undercuts the broadcast minimum.
std::optional<std::uint32_t> veto_instance(
    const std::vector<Reading>& own_values,
    const std::vector<Reading>& minima) {
  for (std::uint32_t i = 0; i < minima.size() && i < own_values.size(); ++i)
    if (own_values[i] < minima[i]) return i;
  return std::nullopt;
}

}  // namespace

ConfirmationOutcome run_confirmation(
    Network& net, Adversary* adversary, const TreeResult& tree,
    const std::vector<Reading>& broadcast_minima, std::uint64_t nonce,
    const std::vector<std::vector<Reading>>& values,
    std::vector<NodeAudit>& audits, bool slotted, Tracer tracer) {
  const std::uint32_t n = net.node_count();
  const Level L = tree.depth_bound;
  if (values.size() != n || audits.size() != n)
    throw std::invalid_argument("run_confirmation: size mismatch");

  net.fabric().reset();
  for (auto& a : audits) a.sof.reset();

  // Pending forwards decided at receipt, executed next slot.
  std::vector<std::optional<Bytes>> pending(n);
  std::vector<std::vector<VetoMsg>> malicious_vetoes(n);

  ConfirmationOutcome outcome;

  const Interval max_interval = slotted ? L : 4 * L + 4;
  for (Interval slot = 1; slot <= max_interval; ++slot) {
    tracer.slot_tick(slot);
    if (adversary != nullptr && !adversary->strategy().passthrough()) {
      ConfCtx ctx;
      ctx.tree = &tree;
      ctx.nonce = nonce;
      ctx.slot = slot;
      ctx.broadcast_minima = &broadcast_minima;
      ctx.malicious_vetoes = &malicious_vetoes;
      adversary->strategy().on_conf_slot(adversary->view(), ctx);
    }

    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      if (node == kBaseStation || byzantine(adversary, node)) continue;
      if (net.revocation().is_sensor_revoked(node)) continue;

      if (slot == 1) {
        // Vetoers transmit in the first interval.
        if (!tree.has_valid_level(node)) continue;
        const auto instance = veto_instance(values[id], broadcast_minima);
        if (!instance.has_value()) continue;
        const VetoMsg veto = make_veto(
            net.keys().sensor_mac_context(node), node, *instance,
            values[id][*instance], tree.level[id], nonce);
        const Bytes frame = encode(veto);
        SofRecord rec;
        rec.msg = veto;
        rec.originated = true;
        rec.received_interval = 0;
        rec.forward_interval = 1;
        for (NodeId v : net.usable_neighbors(node)) {
          if (net.send_secure(node, v, frame))
            rec.out_edges.push_back(*net.usable_edge_key(node, v));
        }
        audits[id].sof = rec;
        tracer.veto(node, node, slot, values[id][*instance], true);
      } else if (pending[id].has_value()) {
        // One-time forward of the first veto received last slot.
        const Bytes frame = std::move(*pending[id]);
        pending[id].reset();
        for (NodeId v : net.usable_neighbors(node)) {
          if (net.send_secure(node, v, frame))
            audits[id].sof->out_edges.push_back(*net.usable_edge_key(node, v));
        }
      }
    }

    net.fabric().end_slot();

    for (std::uint32_t id = 0; id < n; ++id) {
      const NodeId node{id};
      if (net.revocation().is_sensor_revoked(node)) continue;
      auto frames = net.receive_valid(node);
      const bool is_malicious =
          adversary != nullptr && adversary->is_malicious(node);
      for (const auto& env : frames) {
        const auto veto = decode_veto(env.payload);
        if (!veto.has_value()) continue;
        if (node == kBaseStation) {
          outcome.arrivals.push_back({*veto, env.edge_key, slot});
          continue;
        }
        if (is_malicious) malicious_vetoes[id].push_back(*veto);
        if (byzantine(adversary, node)) continue;  // strategy decides itself
        if (audits[id].sof.has_value()) continue;  // one-time: already handled
        // First veto: schedule forwarding for the next slot and record the
        // audit tuple now.
        SofRecord rec;
        rec.msg = *veto;
        rec.originated = false;
        rec.received_interval = slot;
        rec.forward_interval = slot + 1;
        rec.in_edge = env.edge_key;
        audits[id].sof = rec;
        pending[id] = env.payload;
        tracer.veto(node, veto->origin, slot, veto->value, false);
      }
    }
  }

  net.fabric().reset();
  return outcome;
}

}  // namespace vmat
