// The VMAT execution driver — Figure 1's state machine, run by the trusted
// base station.
//
// One execute() performs: authenticated announcement → tree formation →
// authenticated query announcement → aggregation → junk check →
// authenticated minimum broadcast → confirmation/SOF → veto check, and, on
// any trigger, the corresponding pinpointing/revocation protocol. It
// returns either per-instance minima (guaranteed correct, Theorem 2) or the
// keys/sensors revoked (guaranteed adversary-held, Theorem 6) — the
// Theorem 7 disjunction.
//
// The serving split: execute() is the one-shot form. A serving layer
// (engine/engine.h) instead calls prepare_epoch() once — announcement +
// tree formation under a fresh session — and then run_query() many times
// over the shared tree; the epoch stays valid until a revocation (or
// rekey/path-key change) invalidates the formed tree. Each run_query()
// uses fresh query/confirmation nonces, so the per-execution security
// argument is unchanged — only the tree-formation cost is amortized.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "broadcast/auth_broadcast.h"
#include "core/aggregation.h"
#include "core/confirmation.h"
#include "core/phase_state.h"
#include "core/pinpoint.h"
#include "core/tree_formation.h"
#include "sim/network.h"
#include "sim/snapshot.h"
#include "trace/trace.h"

namespace vmat {

struct CoordinatorSpec {
  Level depth_bound{0};  ///< announced L; 0 = use the physical depth
  TreeMode tree_mode{TreeMode::kTimestamp};
  bool multipath{false};     ///< Section IV-D ring aggregation
  bool slotted_sof{true};    ///< false = unslotted ablation
  std::uint32_t instances{1};
  std::uint64_t seed{0x5eed};  ///< nonce/session generator seed
  /// How keyed predicate tests execute during pinpointing: the exact
  /// reachability collapse (fast, default) or the full fabric-level
  /// verified flood.
  PredicateTestMode predicate_mode{PredicateTestMode::kReachability};
};

class SimulationSpec;

enum class OutcomeKind : std::uint8_t { kResult, kRevocation };

enum class Trigger : std::uint8_t {
  kNone,               ///< clean run: result returned
  kVeto,               ///< Figure 1 step 8
  kJunkAggregation,    ///< Figure 1 step 4
  kJunkConfirmation,   ///< Figure 1 step 7
  kSelfIncrimination,  ///< valid-MAC message with impossible semantics
};

struct ExecutionOutcome {
  OutcomeKind kind{OutcomeKind::kResult};
  Trigger trigger{Trigger::kNone};
  /// Per-instance minima; kInfinity where no message arrived. Only
  /// meaningful when kind == kResult.
  std::vector<Reading> minima;
  std::vector<KeyIndex> revoked_keys;
  std::vector<NodeId> revoked_sensors;
  std::string reason;
  /// O(1) data-path flooding rounds (announcements + phases).
  int data_rounds{0};
  /// Pinpointing cost (zero for clean runs).
  CostMeter pinpoint_cost;
  /// Payload bytes moved by the fabric during this execution. Always equal
  /// to metrics.totals().bytes_sent — the fabric and the flight recorder
  /// meter the same frame-size definition (frame_size in sim/fabric.h).
  std::uint64_t fabric_bytes{0};
  /// Typed per-phase counters collected by the flight recorder for this
  /// execution (always metered, even with no recorder attached).
  ExecutionMetrics metrics;

  [[nodiscard]] bool produced_result() const noexcept {
    return kind == OutcomeKind::kResult;
  }
};

/// Validates the content of an aggregation message beyond its sensor-key
/// MAC (e.g. synopsis consistency). Returning false marks it spurious.
using ContentValidator = std::function<bool(const AggMessage&)>;

/// A formed epoch: one authenticated announcement + tree formation whose
/// tree is shared by every run_query() until a revocation invalidates it.
struct Epoch {
  std::uint64_t id{0};       ///< 1-based formation ordinal; 0 = none yet
  std::uint64_t session{0};  ///< the tree-formation session nonce
  /// Flooding rounds spent on formation (announcement + tree phase).
  int formation_rounds{0};
  /// Metrics for the formation slice only; query executions meter their
  /// own slices into ExecutionOutcome::metrics.
  ExecutionMetrics metrics;
  /// Fabric bytes moved by the formation slice.
  std::uint64_t fabric_bytes{0};
  // Revocation/key-material snapshot the epoch's validity is checked
  // against (any change means the formed tree may be stale).
  std::size_t revoked_keys{0};
  std::size_t revoked_sensors{0};
  std::uint64_t key_generation{0};
};

class VmatCoordinator {
 public:
  VmatCoordinator(Network* net, Adversary* adversary, CoordinatorSpec config);

  /// Construct from a validated SimulationSpec (throws
  /// std::invalid_argument with the joined validation report otherwise).
  VmatCoordinator(Network* net, Adversary* adversary,
                  const SimulationSpec& spec);

  /// One full execution over per-node, per-instance values/weights
  /// (kInfinity value = the node contributes nothing for that instance).
  /// `validate` defaults to "raw reading" semantics (weight must be 0).
  /// The nested form converts at the boundary; the ValueTable overload is
  /// the allocation-lean path large-n drivers (run_min, benches) use.
  [[nodiscard]] ExecutionOutcome execute(
      const std::vector<std::vector<Reading>>& values,
      const std::vector<std::vector<std::int64_t>>& weights,
      const ContentValidator& validate = {});
  [[nodiscard]] ExecutionOutcome execute(const ValueTable& values,
                                         const ValueTable& weights,
                                         const ContentValidator& validate = {});

  // --- epoch-batched serving (engine/engine.h drives these) ---

  /// Form (or re-form) the epoch: authenticated announcement + tree
  /// formation under a fresh session nonce. Returns the epoch descriptor.
  const Epoch& prepare_epoch();

  /// A prepare_epoch() tree exists and no revocation / rekey / path-key
  /// change (or intervening execute()) has stalled it.
  [[nodiscard]] bool epoch_ready() const noexcept;

  /// The last formed epoch (id 0 when none was formed yet).
  [[nodiscard]] const Epoch& epoch() const noexcept { return epoch_; }

  /// One query execution over the current epoch's tree: query announcement
  /// → aggregation → minima announcement → confirmation → classification,
  /// with fresh per-query nonces. Requires epoch_ready() (throws
  /// std::logic_error otherwise). `instances` overrides config().instances
  /// for this execution (0 = config value) — the serving engine packs many
  /// queries into one wide execution this way. A kRevocation outcome
  /// invalidates the epoch.
  [[nodiscard]] ExecutionOutcome run_query(
      const std::vector<std::vector<Reading>>& values,
      const std::vector<std::vector<std::int64_t>>& weights,
      const ContentValidator& validate = {}, std::uint32_t instances = 0);

  /// Plain MIN query over one reading per node (instances must be 1).
  [[nodiscard]] ExecutionOutcome run_min(const std::vector<Reading>& readings);

  /// Re-run the same query until it produces a result, revoking adversary
  /// keys along the way — the "strictly diminishing capability" loop.
  /// Throws after `max_executions` attempts.
  [[nodiscard]] std::vector<ExecutionOutcome> run_until_result(
      const std::vector<std::vector<Reading>>& values,
      const std::vector<std::vector<std::int64_t>>& weights,
      const ContentValidator& validate = {}, int max_executions = 1000);

  // --- copy-on-write snapshots (sim/snapshot.h) ---

  /// Run the shared execution prefix — fresh session nonce, authenticated
  /// announcement, tree formation (identical to execute()'s prefix) — and
  /// capture the complete post-formation state. The coordinator is left
  /// mid-execution; finish it any number of times with resume_from(), on
  /// this coordinator or on any compatible one (same topology/keys/config;
  /// enforced by a fingerprint check). An attached recorder observes the
  /// prefix live here AND replayed by every restore — for one complete
  /// stream per fork, attach the recorder to the forking coordinator after
  /// the capture. The fork contract: the malicious
  /// *set* shaped formation and must stay fixed across forks — strategies
  /// may diverge post-formation (every PolicyStrategy shares the honest
  /// tree-slot behavior), rebound via set_adversary().
  [[nodiscard]] Snapshot snapshot_after_formation();

  /// Finish an execution from a kExecutionPrefix snapshot: restore the
  /// captured state and run the query phases (aggregation → confirmation →
  /// classification) over it. Bit-identical to the execute() that would
  /// have run the same prefix: same nonce stream, same stats, and — with a
  /// recorder attached — the same event stream, because the captured
  /// prefix events are replayed into the sink before the live phases run.
  /// `instances` overrides config().instances (0 = config value).
  [[nodiscard]] ExecutionOutcome resume_from(
      const Snapshot& snapshot,
      const std::vector<std::vector<Reading>>& values,
      const std::vector<std::vector<std::int64_t>>& weights,
      const ContentValidator& validate = {}, std::uint32_t instances = 0);
  [[nodiscard]] ExecutionOutcome resume_from(
      const Snapshot& snapshot, const ValueTable& values,
      const ValueTable& weights, const ContentValidator& validate = {},
      std::uint32_t instances = 0);

  /// run_min()'s fork twin: same per-node reading preparation (byzantine
  /// own_reading substitution included), finished via resume_from().
  [[nodiscard]] ExecutionOutcome resume_min(
      const Snapshot& snapshot, const std::vector<Reading>& readings);

  /// Re-arm the last prepare_epoch() tree from its snapshot instead of
  /// re-forming it: O(state) restore, zero flooding rounds. Succeeds only
  /// when snapshots are enabled, an epoch snapshot exists, and no
  /// revocation/rekey happened since its capture (the formed tree would be
  /// stale otherwise — prepare_epoch() is the only correct path then).
  /// Monotone counters survive the restore: the nonce stream, the
  /// broadcast chain cursor, and the trace ordinals keep advancing, so a
  /// re-armed epoch never reuses a nonce or a chain element. Returns true
  /// and leaves epoch_ready() on success.
  bool rearm_epoch();

  /// Rebind the adversary handle (fork fan-out swaps per-trial strategies;
  /// nullptr = no adversary). The malicious set must match the one the
  /// restored snapshot's tree was formed under — see
  /// snapshot_after_formation().
  void set_adversary(Adversary* adversary) noexcept { adversary_ = adversary; }

  [[nodiscard]] const AuditLog& audits() const noexcept { return audits_; }
  [[nodiscard]] Network& network() const noexcept { return *net_; }
  [[nodiscard]] const TreeResult& last_tree() const noexcept { return tree_; }
  [[nodiscard]] const CoordinatorSpec& config() const noexcept { return config_; }
  [[nodiscard]] Level effective_depth_bound() const noexcept {
    return depth_bound_;
  }

  [[nodiscard]] std::uint64_t fresh_nonce() noexcept;

  /// How many tree formations this coordinator has run (execute(),
  /// prepare_epoch(), snapshot_after_formation() each form once; resumes
  /// and rearms never do). The campaign bench asserts fork-mode probes
  /// leave this at 1.
  [[nodiscard]] std::uint64_t formations_run() const noexcept {
    return formations_;
  }

  /// Attach a flight recorder: every subsequent execute() records its full
  /// event stream into it (and fills its TraceContext from this deployment).
  /// Pass nullptr to stop recording; per-phase metrics are metered either
  /// way and land in ExecutionOutcome::metrics.
  void set_recorder(FlightRecorder* recorder);

 private:
  /// Sign at the base station and verify at every honest sensor; models one
  /// flooding round of choke-resistant authenticated broadcast.
  void authenticated_broadcast(const Bytes& payload, int& rounds,
                               Tracer tracer);

  /// Announcement broadcast + tree formation for `session` (fills tree_).
  void form_tree(std::uint64_t session, int& rounds, Tracer tracer);

  /// Query announcement → aggregation → minima announcement →
  /// confirmation → classification over the already-formed tree_;
  /// `rounds_so_far` seeds ExecutionOutcome::data_rounds.
  [[nodiscard]] ExecutionOutcome run_query_phases(
      const ValueTable& values, const ValueTable& weights,
      const ContentValidator& validate, std::uint32_t instances,
      Tracer tracer, int rounds_so_far);

  /// Hash pinning the immutable deployment identity a snapshot belongs to.
  [[nodiscard]] std::uint64_t deployment_fingerprint() const;
  /// Serialize the coordinator + network state (with the buffered prefix
  /// trace events) into a Snapshot.
  [[nodiscard]] Snapshot capture_snapshot(
      SnapshotKind kind, int rounds,
      const std::vector<TraceEvent>& prefix_events) const;
  /// Decode a snapshot back into this coordinator/network, replaying the
  /// buffered prefix events into an attached sink. `epoch_ordinal` >= 0
  /// rewrites the replayed kEpochBegin ordinal (rearm continues the live
  /// epoch counter instead of rewinding it).
  void restore_snapshot(const Snapshot& snapshot, std::int64_t epoch_ordinal);

  Network* net_;
  // The adversary strategy is an input to an execution, not part of its
  // state: forks deliberately re-run it against restored state.
  // vmat-analyze: allow(snapshot-field-coverage) -- execution input
  Adversary* adversary_;
  // Construction-time config, covered by deployment_fingerprint().
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  CoordinatorSpec config_;
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  Level depth_bound_;
  std::uint64_t nonce_state_;
  // Diagnostic counter (formation-reuse accounting), not execution state:
  // a fork restoring a snapshot must NOT inherit the capturing
  // coordinator's count.
  // vmat-analyze: allow(snapshot-field-coverage) -- diagnostic counter
  std::uint64_t formations_{0};
  AuditLog audits_;
  TreeResult tree_;
  Epoch epoch_;
  bool epoch_stale_{true};
  AuthBroadcaster broadcaster_;
  std::vector<AuthReceiver> receivers_;
  /// Shared by every component tracing one execution; the Tracer handles
  /// threaded through the phases all point here.
  TraceState trace_state_;
  /// The kEpoch snapshot prepare_epoch() captures (when snapshots are
  /// enabled), plus the epoch-validity guard recorded at capture time.
  /// Snapshot storage itself: capturing a snapshot inside a snapshot
  /// would recurse, so the pair deliberately skips both members.
  // vmat-analyze: allow(snapshot-field-coverage) -- snapshot storage
  std::optional<Snapshot> epoch_snapshot_;
  // vmat-analyze: allow(snapshot-field-coverage) -- snapshot storage
  Epoch epoch_snapshot_meta_;
};

}  // namespace vmat
