// COUNT/SUM → MIN conversion via verifiable exponential synopses
// (Section VIII, after Mosk-Aoyama & Shah [17]).
//
// A sensor x with reading (weight) v > 0 derives, for each of m parallel
// instances, a_{i,x} ~ Exp(mean 1/v) from a *public* PRG seeded with
// (query nonce ‖ x ‖ i ‖ v). min_x a_{i,x} is computed by m parallel MIN
// queries; with a^min = (Σ_i a_i^min)/m the sum estimate is 1/a^min, an
// (ε,δ)-approximation for m = Θ(ε⁻² log δ⁻¹).
//
// Verifiability: since the PRG seed is public, the base station recomputes
// any claimed synopsis from (origin, instance, weight) and rejects
// mismatches, so a malicious sensor can only submit synopses corresponding
// to *some* reading of its own — exactly the paper's anti-fabrication
// argument. Synopses travel as fixed-point Readings so the MIN machinery,
// audit trails, and pinpointing apply unchanged.
//
// PRG layout: instances are generated in blocks of four. One HMAC-SHA-256
// digest over (nonce ‖ origin ‖ instance/4 ‖ weight) — under the key
// schedule precomputed once per codec — yields four u64 lanes, each mapped
// to a uniform (0,1) draw for instances 4b .. 4b+3. This is still a public
// deterministic function of (nonce, origin, instance, weight), so the
// verifiability argument is unchanged; it just costs ~0.5 SHA-256
// compressions per instance instead of 4 for the one-shot per-instance
// HMAC. Dense per-participant grids should use fill_values(), which walks
// the blocks directly.
#pragma once

#include <cstdint>
#include <span>

#include "core/messages.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "util/ids.h"

namespace vmat {

class SynopsisCodec {
 public:
  /// Fixed-point scale: values in (0, ~2^23) map losslessly enough into
  /// int64 (synopses are at most ~-ln(2^-53)·1 ≈ 36.7 for weight 1).
  static constexpr double kScale = 1099511627776.0;  // 2^40

  /// Instances generated per PRG digest (one 32-byte digest = 4 u64 lanes).
  static constexpr std::uint32_t kLanes = 4;

  explicit SynopsisCodec(std::uint64_t nonce) noexcept;

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }

  /// The synopsis a sensor with this weight must produce for an instance.
  [[nodiscard]] Reading value_for(NodeId origin, std::uint32_t instance,
                                  std::int64_t weight) const noexcept;

  /// The full per-participant instance row: out[i] = value_for(origin, i,
  /// weight) for i in [0, out.size()), at one PRG digest per kLanes
  /// instances. This is the hot path of run_synopsis_query.
  void fill_values(NodeId origin, std::int64_t weight,
                   std::span<Reading> out) const noexcept;

  /// Base-station check: does the message carry exactly the synopsis its
  /// claimed (origin, instance, weight) dictates, with weight > 0?
  [[nodiscard]] bool consistent(const AggMessage& m) const noexcept;

  [[nodiscard]] static Reading encode_value(double a) noexcept;
  [[nodiscard]] static double decode_value(Reading v) noexcept;

 private:
  /// The PRG digest covering instances [block*kLanes, block*kLanes+kLanes).
  [[nodiscard]] Digest block_digest(NodeId origin, std::uint32_t block,
                                    std::int64_t weight) const noexcept;

  std::uint64_t nonce_;
  SymmetricKey prg_key_;   // publicly derivable from the nonce
  HmacKeyState prg_state_;  // key schedule for prg_key_, computed once
};

/// 1 / ((Σ decoded minima)/m); 0 when any instance saw no synopsis (which
/// means no sensor carried positive weight).
[[nodiscard]] double estimate_sum(std::span<const Reading> minima) noexcept;

/// m = ceil(2 ε⁻² ln(2/δ)): enough instances for an (ε,δ)-approximation.
[[nodiscard]] std::uint32_t instances_for(double epsilon, double delta);

}  // namespace vmat
