// COUNT/SUM → MIN conversion via verifiable exponential synopses
// (Section VIII, after Mosk-Aoyama & Shah [17]).
//
// A sensor x with reading (weight) v > 0 derives, for each of m parallel
// instances, a_{i,x} ~ Exp(mean 1/v) from a *public* PRG seeded with
// (query nonce ‖ x ‖ i ‖ v). min_x a_{i,x} is computed by m parallel MIN
// queries; with a^min = (Σ_i a_i^min)/m the sum estimate is 1/a^min, an
// (ε,δ)-approximation for m = Θ(ε⁻² log δ⁻¹).
//
// Verifiability: since the PRG seed is public, the base station recomputes
// any claimed synopsis from (origin, instance, weight) and rejects
// mismatches, so a malicious sensor can only submit synopses corresponding
// to *some* reading of its own — exactly the paper's anti-fabrication
// argument. Synopses travel as fixed-point Readings so the MIN machinery,
// audit trails, and pinpointing apply unchanged.
#pragma once

#include <cstdint>
#include <span>

#include "core/messages.h"
#include "crypto/prf.h"
#include "util/ids.h"

namespace vmat {

class SynopsisCodec {
 public:
  /// Fixed-point scale: values in (0, ~2^23) map losslessly enough into
  /// int64 (synopses are at most ~-ln(2^-53)·1 ≈ 36.7 for weight 1).
  static constexpr double kScale = 1099511627776.0;  // 2^40

  explicit SynopsisCodec(std::uint64_t nonce) noexcept;

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }

  /// The synopsis a sensor with this weight must produce for an instance.
  [[nodiscard]] Reading value_for(NodeId origin, std::uint32_t instance,
                                  std::int64_t weight) const noexcept;

  /// Base-station check: does the message carry exactly the synopsis its
  /// claimed (origin, instance, weight) dictates, with weight > 0?
  [[nodiscard]] bool consistent(const AggMessage& m) const noexcept;

  [[nodiscard]] static Reading encode_value(double a) noexcept;
  [[nodiscard]] static double decode_value(Reading v) noexcept;

 private:
  std::uint64_t nonce_;
  SymmetricKey prg_key_;  // publicly derivable from the nonce
};

/// 1 / ((Σ decoded minima)/m); 0 when any instance saw no synopsis (which
/// means no sensor carried positive weight).
[[nodiscard]] double estimate_sum(std::span<const Reading> minima) noexcept;

/// m = ceil(2 ε⁻² ln(2/δ)): enough instances for an (ε,δ)-approximation.
[[nodiscard]] std::uint32_t instances_for(double epsilon, double delta);

}  // namespace vmat
