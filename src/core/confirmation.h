// Confirmation phase with SOF — Slotted One-time Flooding with Audit Trail
// (Section IV-C).
//
// The base station has broadcast the per-instance minima it received. Any
// sensor whose own value is smaller than the broadcast minimum for some
// instance is a vetoer and floods its veto in slot 1. A non-vetoer forwards
// the *first* valid-envelope veto it receives — if received in slot i, it
// forwards in slot i+1 — and ignores everything else. Each sensor records
// an SOF audit tuple ⟨interval, message, in-edge, out-edges⟩.
//
// Lemma 1: if any honest sensor vetoes, the base station receives *some*
// veto (possibly a spurious one injected by the adversary to choke the
// legitimate one — which then triggers junk-triggered pinpointing).
//
// `slotted = false` gives the unslotted ablation: the phase runs longer and
// forwarding is not bounded by the L-interval discipline, so audit trails
// can exceed L+1 tuples under adversarial detours.
#pragma once

#include <vector>

#include "attack/adversary.h"
#include "core/audit.h"
#include "core/phase_state.h"
#include "sim/network.h"
#include "trace/trace.h"

namespace vmat {

struct VetoArrival {
  VetoMsg msg;
  KeyIndex in_edge{kNoKey};
  Interval interval{0};  ///< slot in which the base station received it
};

struct ConfirmationOutcome {
  std::vector<VetoArrival> arrivals;
};

[[nodiscard]] ConfirmationOutcome run_confirmation(
    Network& net, Adversary* adversary, const TreeResult& tree,
    const std::vector<Reading>& broadcast_minima, std::uint64_t nonce,
    const ValueTable& values, AuditLog& audits, bool slotted = true,
    Tracer tracer = {});

}  // namespace vmat
