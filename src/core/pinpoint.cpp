#include "core/pinpoint.h"

#include <stdexcept>

namespace vmat {
namespace {

constexpr std::uint32_t kFullIdLo = 0;
constexpr std::uint32_t kFullIdHi = 0xffffffffu;

Predicate with_id_window(Predicate p, NodeId lo, NodeId hi) {
  p.id_lo = lo;
  p.id_hi = hi;
  return p;
}

Predicate with_z_window(Predicate p, KeyIndex lo, KeyIndex hi) {
  p.z_lo = lo;
  p.z_hi = hi;
  return p;
}

}  // namespace

PinpointEngine::PinpointEngine(Network* net, Adversary* adversary,
                               const AuditLog* audits,
                               const TreeResult* tree, PredicateTestMode mode,
                               Tracer tracer)
    : net_(net), adversary_(adversary), audits_(audits), tree_(tree),
      mode_(mode), tracer_(tracer) {
  if (net == nullptr || audits == nullptr || tree == nullptr)
    throw std::invalid_argument("PinpointEngine: null dependency");
}

void PinpointEngine::revoke_key(KeyIndex key, PinpointOutcome& out,
                                std::string reason) {
  out.revoked_keys.push_back(key);
  out.reason = std::move(reason);
  // Announcing the revocation is one authenticated broadcast.
  out.cost.charge_broadcast(net_->node_count(), 16);
  const auto cascaded = net_->revocation().revoke_key(key);
  out.revoked_sensors.insert(out.revoked_sensors.end(), cascaded.begin(),
                             cascaded.end());
}

void PinpointEngine::revoke_ring(NodeId node, PinpointOutcome& out,
                                 std::string reason) {
  out.reason = std::move(reason);
  out.cost.charge_broadcast(net_->node_count(), 16);
  const auto revoked = net_->revocation().revoke_sensor(node);
  out.revoked_sensors.insert(out.revoked_sensors.end(), revoked.begin(),
                             revoked.end());
}

KeyIndex PinpointEngine::find_edge_key(NodeId owner, Predicate probe,
                                       PinpointOutcome& out,
                                       const char* what) {
  PredicateTestEngine tests(net_, adversary_, audits_, &out.cost, mode_,
                            tracer_);
  const KeySpec key = KeySpec::sensor_key(owner);
  // Honest sensors only ever use non-revoked keys, and re-revoking a key
  // would not diminish the adversary; the base station therefore searches
  // the sensor's held keys (ring + path keys) minus the already-revoked
  // indices.
  std::vector<KeyIndex> ring;
  for (KeyIndex k : net_->keys().keys_of(owner))
    if (!net_->revocation().is_key_revoked(k)) ring.push_back(k);
  if (ring.empty()) {
    revoke_ring(owner, out,
                std::string(what) + ": no unrevoked key left to blame");
    return kNoKey;
  }
  probe = with_id_window(probe, owner, owner);

  auto test_window = [&](std::size_t lo, std::size_t hi) {
    return tests.run(key, with_z_window(probe, ring[lo], ring[hi]));
  };

  // Whole-window test first: an honest owner always satisfies it (Figure 5
  // would never reach x > y for an honest sensor; a refusal proves the
  // sensor key's owner is lying).
  if (!test_window(0, ring.size() - 1)) {
    revoke_ring(owner, out, std::string(what) + ": whole-ring test refused");
    return kNoKey;
  }
  std::size_t lo = 0;
  std::size_t hi = ring.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (test_window(lo, mid)) {
      hi = mid;
    } else if (test_window(mid + 1, hi)) {
      lo = mid + 1;
    } else {
      // Inconsistent answers across a split it previously confirmed: only
      // the owner's sensor key could have produced them.
      revoke_ring(owner, out,
                  std::string(what) + ": inconsistent binary search");
      return kNoKey;
    }
  }
  return ring[lo];
}

std::optional<NodeId> PinpointEngine::find_holder(KeyIndex edge_key,
                                                  Predicate probe,
                                                  PinpointOutcome& out,
                                                  const char* what) {
  PredicateTestEngine tests(net_, adversary_, audits_, &out.cost, mode_,
                            tracer_);
  const KeySpec key = KeySpec::pool_key(edge_key);
  const auto holders = net_->keys().holders(edge_key);
  if (holders.empty()) {
    revoke_key(edge_key, out, std::string(what) + ": key has no holders");
    return std::nullopt;
  }

  auto test_window = [&](std::size_t lo, std::size_t hi) {
    return tests.run(key, with_id_window(probe, holders[lo], holders[hi]));
  };

  // Figure 6 Step 2: nobody willing to admit -> revoke the edge key.
  if (!test_window(0, holders.size() - 1)) {
    revoke_key(edge_key, out, std::string(what) + ": no holder admits");
    return std::nullopt;
  }
  std::size_t lo = 0;
  std::size_t hi = holders.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (test_window(lo, mid)) {
      hi = mid;
    } else if (test_window(mid + 1, hi)) {
      lo = mid + 1;
    } else {
      // Figure 6 Step 12: inconsistent behaviour proves a malicious holder.
      revoke_key(edge_key, out,
                 std::string(what) + ": inconsistent holder search");
      return std::nullopt;
    }
  }
  const NodeId found = holders[lo];

  // Figure 6 Step 6: re-confirm on the found sensor's own key, defeating
  // framing of honest ids.
  if (!tests.run(KeySpec::sensor_key(found),
                 with_id_window(probe, found, found))) {
    revoke_key(edge_key, out,
               std::string(what) + ": re-confirmation failed (framing)");
    return std::nullopt;
  }
  return found;
}

PinpointOutcome PinpointEngine::veto_triggered(const VetoMsg& veto) {
  PinpointOutcome out;
  const Level L = tree_->depth_bound;

  NodeId current = veto.origin;
  Level level = veto.level;

  for (Level step = 0; step <= L + 1; ++step) {
    tracer_.pinpoint_step(current, kNoKey, step, level);
    if (level < 1) {
      // Only the base station sits at level 0; a non-base-station sensor
      // whose own key admitted to level 0 is lying.
      revoke_ring(current, out, "veto walk: sensor claims level 0");
      return out;
    }

    // Figure 5: which edge key did `current` forward the small value on?
    Predicate p_fwd;
    p_fwd.kind = PredicateKind::kAggForwardedValue;
    p_fwd.instance = veto.instance;
    p_fwd.v_max = veto.value;
    p_fwd.level = level;
    const KeyIndex edge = find_edge_key(current, p_fwd, out, "veto/fig5");
    if (edge == kNoKey) return out;

    // Figure 6: which holder of that key admits receiving the value from a
    // child at this level?
    Predicate p_recv;
    p_recv.kind = PredicateKind::kAggReceivedValue;
    p_recv.instance = veto.instance;
    p_recv.v_max = veto.value;
    p_recv.level = level;
    p_recv.id_lo = NodeId{kFullIdLo};
    p_recv.id_hi = NodeId{kFullIdHi};
    const auto parent = find_holder(edge, p_recv, out, "veto/fig6");
    if (!parent.has_value()) return out;

    current = *parent;
    level -= 1;
  }
  throw std::logic_error(
      "veto_triggered: walk exceeded L+1 steps (broken trail invariant)");
}

PinpointOutcome PinpointEngine::junk_triggered_aggregation(
    const AggMessage& junk, KeyIndex bs_in_edge, Interval bs_slot) {
  PinpointOutcome out;
  const Level L = tree_->depth_bound;
  const Digest identity = message_identity(junk);

  KeyIndex edge = bs_in_edge;
  Level level = L - bs_slot + 1;  // claimed level of the sensor that sent it

  for (Level step = 0; step <= L + 1; ++step) {
    tracer_.pinpoint_step(NodeId{}, edge, step, level);
    if (level > L) {
      // Nobody legitimate exists beyond level L; whoever used this key to
      // pass the junk down refuses to exist.
      revoke_key(edge, out, "junk-agg walk: trail exceeds depth bound");
      return out;
    }

    // Who admits having forwarded exactly this message at this level using
    // this edge key?
    Predicate p_fwd;
    p_fwd.kind = PredicateKind::kJunkAggForwarded;
    p_fwd.level = level;
    p_fwd.bound_edge = edge;
    p_fwd.msg_hash = identity;
    p_fwd.id_lo = NodeId{kFullIdLo};
    p_fwd.id_hi = NodeId{kFullIdHi};
    const auto forwarder = find_holder(edge, p_fwd, out, "junk-agg/holder");
    if (!forwarder.has_value()) return out;

    // An honest forwarder must have received the junk from someone (it
    // cannot have originated an invalid message of its own).
    Predicate p_recv;
    p_recv.kind = PredicateKind::kJunkAggReceived;
    p_recv.level = level;
    p_recv.msg_hash = identity;
    const KeyIndex in_edge =
        find_edge_key(*forwarder, p_recv, out, "junk-agg/in-edge");
    if (in_edge == kNoKey) return out;

    edge = in_edge;
    level += 1;
  }
  throw std::logic_error(
      "junk_triggered_aggregation: walk exceeded L+1 steps");
}

PinpointOutcome PinpointEngine::junk_triggered_confirmation(
    const VetoMsg& junk, KeyIndex bs_in_edge, Interval bs_interval) {
  PinpointOutcome out;
  const Digest identity = message_identity(junk);

  KeyIndex edge = bs_in_edge;
  Interval interval = bs_interval;

  // The walk shrinks `interval` every iteration, so it is bounded by the
  // arrival interval — which can exceed L+1 only in the unslotted-SOF
  // ablation (slotted SOF guarantees bs_interval <= L, Section IV-C).
  for (Interval step = 0; step <= bs_interval + 1; ++step) {
    tracer_.pinpoint_step(NodeId{}, edge, step, interval);
    // Who admits forwarding exactly this veto in this SOF interval on this
    // edge key?
    Predicate p_fwd;
    p_fwd.kind = PredicateKind::kJunkSofForwarded;
    p_fwd.level = interval;
    p_fwd.bound_edge = edge;
    p_fwd.msg_hash = identity;
    p_fwd.id_lo = NodeId{kFullIdLo};
    p_fwd.id_hi = NodeId{kFullIdHi};
    const auto forwarder = find_holder(edge, p_fwd, out, "junk-sof/holder");
    if (!forwarder.has_value()) return out;

    if (interval <= 1) {
      // Forwarding in interval 1 means originating; no honest sensor
      // originates a veto with an invalid MAC, and the claim was just
      // re-confirmed on the sensor's own key.
      revoke_ring(*forwarder, out,
                  "junk-sof walk: admitted originating a spurious veto");
      return out;
    }

    Predicate p_recv;
    p_recv.kind = PredicateKind::kJunkSofReceived;
    p_recv.level = interval - 1;
    p_recv.msg_hash = identity;
    const KeyIndex in_edge =
        find_edge_key(*forwarder, p_recv, out, "junk-sof/in-edge");
    if (in_edge == kNoKey) return out;

    edge = in_edge;
    interval -= 1;
  }
  throw std::logic_error(
      "junk_triggered_confirmation: walk exceeded L+1 steps");
}

}  // namespace vmat
