// High-level aggregation query API (the public face of the library).
//
// COUNT, SUM, and AVERAGE queries are converted to parallel MIN instances
// via verifiable exponential synopses (core/synopsis.h) and executed by the
// VmatCoordinator. Each query call performs one VMAT execution; if the
// adversary disrupted it, the outcome carries what was revoked instead of
// an estimate, and the caller simply retries (each retry strictly shrinks
// the adversary's key material — Theorem 7).
#pragma once

#include <optional>
#include <vector>

#include "core/coordinator.h"
#include "core/synopsis.h"
#include "util/error.h"

namespace vmat {

struct QueryOutcome {
  /// Set when the execution produced a result; the (ε,δ)-approximate
  /// estimate of the queried aggregate.
  std::optional<double> estimate;
  /// Full execution detail (revocations, trigger, costs).
  ExecutionOutcome exec;

  [[nodiscard]] bool answered() const noexcept { return estimate.has_value(); }

  /// Typed error when the query was not answered: kDisrupted carrying the
  /// execution's reason string. Callers never dig through exec.reason.
  [[nodiscard]] std::optional<Error> error() const {
    if (answered()) return std::nullopt;
    return Error{ErrorCode::kDisrupted, exec.reason};
  }
  /// Human-readable disruption detail ("" for answered queries).
  [[nodiscard]] const std::string& reason() const noexcept {
    return exec.reason;
  }
};

class QueryEngine {
 public:
  /// `coordinator` must be configured with the number of instances to use
  /// (e.g. instances_for(epsilon, delta), or the paper's 100).
  explicit QueryEngine(VmatCoordinator* coordinator);

  /// Predicate COUNT: how many sensors report `predicate[node] == true`?
  [[nodiscard]] QueryOutcome count(const std::vector<std::uint8_t>& predicate);

  /// SUM of non-negative integer readings (0 contributes nothing).
  [[nodiscard]] QueryOutcome sum(const std::vector<std::int64_t>& readings);

  /// AVERAGE of positive integer readings: SUM / COUNT(reading > 0) — two
  /// executions, as in Section VIII.
  [[nodiscard]] QueryOutcome average(const std::vector<std::int64_t>& readings);

  /// Retry-until-answered convenience (the Theorem 7 loop).
  [[nodiscard]] QueryOutcome count_until_answered(
      const std::vector<std::uint8_t>& predicate, int max_executions = 1000);

  /// Exact MIN of raw readings (runs on instance 0; works with any
  /// coordinator instance count).
  [[nodiscard]] QueryOutcome min_reading(const std::vector<Reading>& readings);

  /// Exact MAX via MIN over negated readings (the standard duality; the
  /// veto/pinpointing machinery applies unchanged).
  [[nodiscard]] QueryOutcome max_reading(const std::vector<Reading>& readings);

  /// Approximate q-quantile (0 < q < 1) of non-negative integer readings in
  /// [0, domain_max], via a binary search of COUNT queries (log2(domain)
  /// probes, each a retried secure execution). Error follows the COUNT
  /// estimator's (ε,δ) bound.
  [[nodiscard]] QueryOutcome quantile(
      const std::vector<std::int64_t>& readings, double q,
      std::int64_t domain_max, int max_executions_per_probe = 300);

 private:
  [[nodiscard]] QueryOutcome run_synopsis_query(
      const std::vector<std::int64_t>& weights);
  [[nodiscard]] QueryOutcome run_plain_min(
      const std::vector<Reading>& readings);

  VmatCoordinator* coordinator_;
};

}  // namespace vmat
