#include "campaign/runner.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "trace/checker.h"

namespace vmat::campaign {
namespace {

/// log2-style bucket: 0, 1, 2 for 2-3, 3 for 4-7, ... so outcomes with the
/// "same shape" but slightly different counts share a coverage signature.
std::uint64_t bucket(std::uint64_t value) {
  return static_cast<std::uint64_t>(std::bit_width(value));
}

std::string joined_errors(const std::vector<Error>& errors) {
  std::string out;
  for (const Error& error : errors) {
    if (!out.empty()) out += "; ";
    out += error.to_string();
  }
  return out;
}

}  // namespace

std::uint64_t outcome_digest(const ExecutionOutcome& outcome) {
  std::uint64_t h = 0x76d3a7c4151e9dULL;
  h = snapshot_mix(h, static_cast<std::uint64_t>(outcome.kind));
  h = snapshot_mix(h, static_cast<std::uint64_t>(outcome.trigger));
  h = snapshot_mix(h, outcome.minima.size());
  for (const Reading minimum : outcome.minima)
    h = snapshot_mix(h, static_cast<std::uint64_t>(minimum));
  h = snapshot_mix(h, outcome.revoked_keys.size());
  for (const KeyIndex key : outcome.revoked_keys)
    h = snapshot_mix(h, key.value);
  h = snapshot_mix(h, outcome.revoked_sensors.size());
  for (const NodeId sensor : outcome.revoked_sensors)
    h = snapshot_mix(h, sensor.value);
  h = snapshot_mix(h, static_cast<std::uint64_t>(outcome.data_rounds));
  h = snapshot_mix(h,
                   static_cast<std::uint64_t>(outcome.pinpoint_cost.flooding_rounds));
  h = snapshot_mix(
      h, static_cast<std::uint64_t>(outcome.pinpoint_cost.predicate_tests));
  h = snapshot_mix(h, outcome.pinpoint_cost.control_bytes);
  h = snapshot_mix(h, outcome.fabric_bytes);
  for (const PhaseCounters& counters : outcome.metrics.phase) {
    h = snapshot_mix(h, counters.frames_sent);
    h = snapshot_mix(h, counters.frames_delivered);
    h = snapshot_mix(h, counters.frames_dropped);
    h = snapshot_mix(h, counters.frames_lost);
    h = snapshot_mix(h, counters.bytes_sent);
    h = snapshot_mix(h, counters.mac_computes);
    h = snapshot_mix(h, counters.mac_verifies);
    h = snapshot_mix(h, counters.mac_failures);
    h = snapshot_mix(h, counters.auth_broadcasts);
    h = snapshot_mix(h, counters.flooding_rounds);
    h = snapshot_mix(h, counters.predicate_tests);
  }
  return h;
}

std::uint64_t coverage_signature(const ExecutionOutcome& outcome,
                                 std::size_t violations) {
  std::uint64_t h = 0x5eedc0ffeeULL;
  h = snapshot_mix(h, static_cast<std::uint64_t>(outcome.kind));
  h = snapshot_mix(h, static_cast<std::uint64_t>(outcome.trigger));
  h = snapshot_mix(h, outcome.revoked_keys.size());
  h = snapshot_mix(h, outcome.revoked_sensors.size());
  h = snapshot_mix(h, violations > 0 ? 1 : 0);
  for (const PhaseCounters& counters : outcome.metrics.phase) {
    h = snapshot_mix(h, bucket(counters.frames_sent));
    h = snapshot_mix(h, bucket(counters.frames_delivered));
    h = snapshot_mix(h, bucket(counters.mac_failures));
    h = snapshot_mix(h, bucket(counters.auth_broadcasts));
    h = snapshot_mix(h, bucket(counters.flooding_rounds));
    h = snapshot_mix(h, bucket(counters.predicate_tests));
  }
  return h;
}

CampaignRunner::CampaignRunner(CampaignConfig config)
    : config_(std::move(config)), spec_(config_.spec) {
  spec_.instances(1);  // probes are MIN queries (resume_min/run_min)
  if (const std::vector<Error> errors = spec_.validate(); !errors.empty())
    throw std::invalid_argument("CampaignRunner: invalid spec: " +
                                joined_errors(errors));
  if (config_.compromised == 0 || config_.compromised >= spec_.nodes())
    throw std::invalid_argument(
        "CampaignRunner: compromised count must be in [1, nodes)");
  if (config_.probes == 0)
    throw std::invalid_argument("CampaignRunner: probe budget must be >= 1");

  const Topology topology = spec_.build_topology();
  malicious_ =
      choose_malicious(topology, config_.compromised, config_.placement_seed);
  if (spec_.depth_bound() == 0) spec_.depth_bound(topology.depth(malicious_));

  fork_ = config_.fork_probes && snapshots_enabled();
  if (fork_) {
    net_ = std::make_unique<Network>(spec_);
    formation_adversary_ = std::make_unique<Adversary>(
        net_.get(), malicious_,
        std::make_unique<PredicatedStrategy>(AttackPolicy{}));
    coordinator_ = std::make_unique<VmatCoordinator>(
        net_.get(), formation_adversary_.get(), spec_);
    snapshot_ = coordinator_->snapshot_after_formation();
  }
}

CampaignRunner::~CampaignRunner() = default;

std::uint64_t CampaignRunner::formations() const noexcept {
  return (coordinator_ != nullptr ? coordinator_->formations_run() : 0) +
         scratch_formations_;
}

std::vector<Reading> CampaignRunner::probe_readings(std::uint64_t seed) const {
  std::vector<Reading> readings(spec_.nodes());
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::uint32_t id = 1; id < spec_.nodes(); ++id)
    readings[id] = 100 + static_cast<Reading>(rng.below(900));
  return readings;
}

ProbeOutcome CampaignRunner::probe(const CampaignEntry& entry,
                                   FlightRecorder& recorder) {
  const std::vector<Reading> readings = probe_readings(entry.seed);
  recorder.clear();
  if (fork_) {
    Adversary adversary(net_.get(), malicious_,
                        std::make_unique<PredicatedStrategy>(
                            entry.policy, entry.when, entry.seed));
    coordinator_->set_adversary(&adversary);
    coordinator_->set_recorder(&recorder);
    const ExecutionOutcome outcome =
        coordinator_->resume_min(*snapshot_, readings);
    coordinator_->set_recorder(nullptr);
    coordinator_->set_adversary(formation_adversary_.get());
    return probe_outcome(entry, outcome, recorder, *net_);
  }
  // Scratch fallback: a private deployment per probe. Bit-identical to the
  // fork path (the snapshot contract: resume == the execute() that would
  // have run the same prefix), just one tree formation per probe.
  Network net(spec_);
  Adversary adversary(&net, malicious_,
                      std::make_unique<PredicatedStrategy>(
                          entry.policy, entry.when, entry.seed));
  VmatCoordinator coordinator(&net, &adversary, spec_);
  coordinator.set_recorder(&recorder);
  const ExecutionOutcome outcome = coordinator.run_min(readings);
  scratch_formations_ += coordinator.formations_run();
  return probe_outcome(entry, outcome, recorder, net);
}

ProbeOutcome CampaignRunner::probe_outcome(const CampaignEntry& entry,
                                           const ExecutionOutcome& outcome,
                                           const FlightRecorder& recorder,
                                           const Network& net) {
  ProbeOutcome po;
  po.entry = entry;
  po.entry.digest = outcome_digest(outcome);
  po.ruined = !outcome.produced_result();
  for (const KeyIndex key : outcome.revoked_keys) {
    bool adversary_held = false;
    for (const NodeId m : malicious_) {
      if (!net.keys().node_holds(m, key)) continue;
      adversary_held = true;
      break;
    }
    if (adversary_held)
      ++po.adversary_keys_revoked;
    else
      ++po.framed_keys;
  }
  for (const NodeId sensor : outcome.revoked_sensors)
    if (!malicious_.contains(sensor)) ++po.honest_sensors_revoked;
  po.pinpoint_rounds = outcome.pinpoint_cost.flooding_rounds;
  po.predicate_tests = outcome.pinpoint_cost.predicate_tests;
  const CheckReport report = check_trace(recorder);
  po.violations = report.violations.size();
  if (!report.ok()) po.violation_text = report.to_string();
  po.coverage = coverage_signature(outcome, po.violations);
  return po;
}

ProbeOutcome CampaignRunner::replay(const CampaignEntry& entry) {
  FlightRecorder recorder;
  return probe(entry, recorder);
}

ProbeOutcome CampaignRunner::replay(const CampaignEntry& entry,
                                    FlightRecorder& recorder) {
  return probe(entry, recorder);
}

AttackPredicate CampaignRunner::random_predicate(Rng& rng, int depth) const {
  if (depth > 0 && rng.bernoulli(0.45)) {
    switch (rng.below(3)) {
      case 0:
        return random_predicate(rng, depth - 1) &&
               random_predicate(rng, depth - 1);
      case 1:
        return random_predicate(rng, depth - 1) ||
               random_predicate(rng, depth - 1);
      default:
        return !random_predicate(rng, depth - 1);
    }
  }
  switch (rng.below(8)) {
    case 0:
      return AttackPredicate::always();
    case 1:
      return AttackPredicate::phase_is(rng.bernoulli(0.5)
                                           ? TracePhase::kAggregation
                                           : TracePhase::kConfirmation);
    case 2:
      return AttackPredicate::slot_at_least(
          1 + static_cast<Interval>(rng.below(4)));
    case 3:
      return AttackPredicate::level_at_least(
          1 + static_cast<Level>(rng.below(4)));
    case 4:
      return AttackPredicate::revoked_keys_at_least(rng.below(8));
    case 5:
      return AttackPredicate::round_at_least(1 + rng.below(3));
    case 6:
      return AttackPredicate::frames_seen_at_least(rng.below(12));
    default:
      return AttackPredicate::min_seen_below(rng.between(-100, 300));
  }
}

CampaignEntry CampaignRunner::random_entry(Rng& rng) const {
  CampaignEntry entry;
  entry.seed = 1 + rng.below(1u << 20);
  switch (rng.below(3)) {
    case 0: entry.policy.agg = AggAction::kSilentDrop; break;
    case 1: entry.policy.agg = AggAction::kForwardMax; break;
    default: entry.policy.agg = AggAction::kInjectJunk; break;
  }
  switch (rng.below(3)) {
    case 0: entry.policy.conf = ConfAction::kNone; break;
    case 1: entry.policy.conf = ConfAction::kChokeVeto; break;
    default: entry.policy.conf = ConfAction::kSelfVeto; break;
  }
  switch (rng.below(3)) {
    case 0: entry.policy.lie = LiePolicy::kDenyAll; break;
    case 1: entry.policy.lie = LiePolicy::kAdmitAll; break;
    default: entry.policy.lie = LiePolicy::kRandom; break;
  }
  entry.policy.frame_honest_origin = rng.bernoulli(0.5);
  entry.policy.self_veto_value = 1 + static_cast<Reading>(rng.below(50));
  entry.when = random_predicate(rng, 2);
  return entry;
}

CampaignEntry CampaignRunner::mutate(const CampaignEntry& base,
                                     Rng& rng) const {
  CampaignEntry entry = base;
  entry.objective = "seed";
  entry.digest = 0;
  switch (rng.below(4)) {
    case 0:
      entry.seed = 1 + rng.below(1u << 20);
      break;
    case 1: {
      // Flip one policy gene.
      CampaignEntry fresh = random_entry(rng);
      switch (rng.below(4)) {
        case 0: entry.policy.agg = fresh.policy.agg; break;
        case 1: entry.policy.conf = fresh.policy.conf; break;
        case 2: entry.policy.lie = fresh.policy.lie; break;
        default:
          entry.policy.frame_honest_origin = fresh.policy.frame_honest_origin;
          entry.policy.self_veto_value = fresh.policy.self_veto_value;
          break;
      }
      break;
    }
    case 2:
      entry.when = random_predicate(rng, 2);
      break;
    default:
      // Wrap the trigger with a fresh conjunct/disjunct.
      if (rng.bernoulli(0.5))
        entry.when = entry.when && random_predicate(rng, 0);
      else
        entry.when = entry.when || random_predicate(rng, 0);
      break;
  }
  return entry;
}

void CampaignRunner::deepen_ruin(const CampaignEntry& entry,
                                 CampaignResult& result) {
  // The "executions ruined before full revocation" streak: re-run the
  // worst-ruin genome on a private deployment, epoch-reusing between
  // executions (re-formation only where the protocol demands it — after a
  // revocation invalidates the epoch), until the adversary can no longer
  // prevent a result.
  Network net(spec_);
  Adversary adversary(&net, malicious_,
                      std::make_unique<PredicatedStrategy>(
                          entry.policy, entry.when, entry.seed));
  VmatCoordinator coordinator(&net, &adversary, spec_);
  const std::vector<Reading> readings = probe_readings(entry.seed);
  std::vector<std::vector<Reading>> values(spec_.nodes());
  std::vector<std::vector<std::int64_t>> weights(spec_.nodes());
  for (std::uint32_t id = 0; id < spec_.nodes(); ++id) {
    values[id] = {readings[id]};
    weights[id] = {0};
  }
  constexpr int kStreakCap = 50;
  int ruined = 0;
  int executions = 0;
  while (executions < kStreakCap) {
    if (!coordinator.epoch_ready()) (void)coordinator.prepare_epoch();
    const ExecutionOutcome outcome = coordinator.run_query(values, weights);
    ++executions;
    if (outcome.produced_result()) break;
    ++ruined;
  }
  result.ruin_streak = ruined;
  result.ruin_streak_executions = executions;
}

CampaignResult CampaignRunner::run() {
  CampaignResult result;
  Rng rng(config_.seed);
  std::vector<CampaignEntry> pool = config_.seeds.entries;
  std::unordered_set<std::uint64_t> seen;

  for (std::uint32_t i = 0; i < config_.probes; ++i) {
    CampaignEntry entry = (pool.empty() || rng.bernoulli(0.5))
                              ? random_entry(rng)
                              : mutate(pool[rng.below(pool.size())], rng);
    FlightRecorder recorder;
    ProbeOutcome po = probe(entry, recorder);
    po.new_coverage = seen.insert(po.coverage).second;
    if (po.new_coverage) pool.push_back(po.entry);
    result.probes.push_back(std::move(po));
  }
  result.coverage_buckets = seen.size();

  // Deterministic worst-case selection (first probe wins ties).
  for (std::size_t i = 0; i < result.probes.size(); ++i) {
    const ProbeOutcome& po = result.probes[i];
    if (po.violations > 0 && !result.first_violation.has_value())
      result.first_violation = i;
    if (po.ruined) {
      if (!result.worst_ruin.has_value() ||
          po.adversary_keys_revoked <
              result.probes[*result.worst_ruin].adversary_keys_revoked)
        result.worst_ruin = i;
    }
    const auto misrevocation = [](const ProbeOutcome& p) {
      return std::pair{p.honest_sensors_revoked, p.framed_keys};
    };
    if (misrevocation(po) > std::pair<std::size_t, std::size_t>{0, 0} &&
        (!result.worst_misrevocation.has_value() ||
         misrevocation(po) >
             misrevocation(result.probes[*result.worst_misrevocation])))
      result.worst_misrevocation = i;
    const auto latency = [](const ProbeOutcome& p) {
      return std::pair{p.pinpoint_rounds, p.predicate_tests};
    };
    if (latency(po) > std::pair<int, int>{0, 0} &&
        (!result.worst_latency.has_value() ||
         latency(po) > latency(result.probes[*result.worst_latency])))
      result.worst_latency = i;
  }

  // Corpus: violations first (each is a protocol bug), then the worst-case
  // winners, then ruining coverage novelties, deduplicated by genome.
  std::unordered_set<std::string> in_corpus;
  auto add = [&result, &in_corpus](std::size_t index,
                                   const std::string& objective) {
    CampaignEntry entry = result.probes[index].entry;
    const std::string key =
        std::to_string(entry.seed) + '|' + to_text(entry.policy) + '|' +
        entry.when.to_text();
    if (!in_corpus.insert(key).second) return;
    entry.objective = objective;
    result.corpus.entries.push_back(std::move(entry));
  };
  for (std::size_t i = 0; i < result.probes.size(); ++i)
    if (result.probes[i].violations > 0) add(i, "violation");
  if (result.worst_ruin.has_value()) add(*result.worst_ruin, "ruin");
  if (result.worst_misrevocation.has_value())
    add(*result.worst_misrevocation, "misrevoke");
  if (result.worst_latency.has_value()) add(*result.worst_latency, "latency");
  constexpr std::size_t kCorpusCap = 16;
  for (std::size_t i = 0;
       i < result.probes.size() && result.corpus.entries.size() < kCorpusCap;
       ++i)
    if (result.probes[i].ruined && result.probes[i].new_coverage)
      add(i, "coverage");

  if (result.worst_ruin.has_value())
    deepen_ruin(result.probes[*result.worst_ruin].entry, result);

  result.formations = formations();
  return result;
}

std::string CampaignResult::table() const {
  std::ostringstream out;
  out << "campaign worst cases\n";
  out << "  probes           : " << probes.size() << '\n';
  out << "  coverage buckets : " << coverage_buckets << '\n';
  out << "  corpus entries   : " << corpus.entries.size() << '\n';
  out << "  probe formations : " << formations << '\n';
  auto describe = [this, &out](const char* label,
                               const std::optional<std::size_t>& index,
                               auto&& detail) {
    out << "  " << label;
    if (!index.has_value()) {
      out << ": none\n";
      return;
    }
    const ProbeOutcome& po = probes[*index];
    out << ": probe " << *index << "  ";
    detail(po);
    out << "\n      " << to_text(po.entry.policy) << "  when="
        << po.entry.when.to_text() << "  seed=" << po.entry.seed << '\n';
  };
  describe("ruin      ", worst_ruin, [this, &out](const ProbeOutcome& po) {
    out << "adversary_keys_revoked=" << po.adversary_keys_revoked
        << "  streak=" << ruin_streak << "/" << ruin_streak_executions
        << " executions ruined";
  });
  describe("misrevoke ", worst_misrevocation,
           [&out](const ProbeOutcome& po) {
             out << "honest_sensors=" << po.honest_sensors_revoked
                 << "  framed_keys=" << po.framed_keys;
           });
  describe("latency   ", worst_latency, [&out](const ProbeOutcome& po) {
    out << "pinpoint_rounds=" << po.pinpoint_rounds
        << "  predicate_tests=" << po.predicate_tests;
  });
  describe("violation ", first_violation, [&out](const ProbeOutcome& po) {
    out << po.violations << " violation(s)";
  });
  return out.str();
}

}  // namespace vmat::campaign
