// AttackPredicate — the composable trigger-condition DSL for adversary
// campaigns.
//
// A predicate is a small boolean expression over the live execution state
// an adversary observes (TriggerState, attack/adversary.h): protocol phase,
// slot index, tree level, frame contents, revocation counters, execution
// round. Leaves test one field; AND/OR/NOT combinators compose them:
//
//   using namespace vmat::campaign;
//   auto fire = AttackPredicate::phase_is(TracePhase::kConfirmation) &&
//               AttackPredicate::slot_at_least(2) &&
//               !AttackPredicate::revoked_keys_at_least(4);
//
// With PredicatedStrategy (campaign/strategy.h) a predicate turns any
// attack policy into *data* — (policy × predicate) replaces the hand-written
// strategy-zoo subclass — which is what makes the strategy space searchable
// and serializable.
//
// evaluate() is PURE: const, no RNG, no mutation, no globals. The
// `predicate-purity` vmat-lint rule enforces this, and the campaign tests
// rely on it (De Morgan equivalence, short-circuit order has no observable
// effect, repeated evaluation is idempotent).
//
// Text form is a LISP-ish s-expression, stable under to_text() → parse():
//
//   expr  := (always) | (never)
//          | (phase NAME)       NAME ∈ none broadcast tree aggregation
//                               confirmation pinpoint
//          | (slot>= N) | (level>= N) | (keys>= N) | (sensors>= N)
//          | (round>= N) | (frames>= N) | (min< N)
//          | (and expr expr) | (or expr expr) | (not expr)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "attack/adversary.h"
#include "util/error.h"

namespace vmat::campaign {

class AttackPredicate {
 public:
  enum class Kind : std::uint8_t {
    kAlways,
    kNever,
    kPhaseIs,                ///< phase == arg
    kSlotAtLeast,            ///< slot >= arg
    kLevelAtLeast,           ///< deepest_level >= arg
    kRevokedKeysAtLeast,     ///< revoked_keys >= arg
    kRevokedSensorsAtLeast,  ///< revoked_sensors >= arg
    kRoundAtLeast,           ///< round >= arg
    kFramesSeenAtLeast,      ///< frames_seen >= arg
    kMinSeenBelow,           ///< min_seen < arg (kInfinity never fires)
    kAnd,
    kOr,
    kNot,
  };

  /// A default predicate fires unconditionally (== always()).
  AttackPredicate() : AttackPredicate(Kind::kAlways, 0) {}

  // --- leaf factories ---

  [[nodiscard]] static AttackPredicate always();
  [[nodiscard]] static AttackPredicate never();
  [[nodiscard]] static AttackPredicate phase_is(TracePhase phase);
  [[nodiscard]] static AttackPredicate slot_at_least(Interval slot);
  [[nodiscard]] static AttackPredicate level_at_least(Level level);
  [[nodiscard]] static AttackPredicate revoked_keys_at_least(std::size_t n);
  [[nodiscard]] static AttackPredicate revoked_sensors_at_least(std::size_t n);
  [[nodiscard]] static AttackPredicate round_at_least(std::uint64_t n);
  [[nodiscard]] static AttackPredicate frames_seen_at_least(std::size_t n);
  [[nodiscard]] static AttackPredicate min_seen_below(Reading value);

  // --- combinators (value semantics; operands are copied in) ---

  friend AttackPredicate operator&&(const AttackPredicate& a,
                                    const AttackPredicate& b) {
    return combine(Kind::kAnd, a, b);
  }
  friend AttackPredicate operator||(const AttackPredicate& a,
                                    const AttackPredicate& b) {
    return combine(Kind::kOr, a, b);
  }
  friend AttackPredicate operator!(const AttackPredicate& a);

  /// Pure evaluation over a trigger-state snapshot: no RNG, no mutation.
  [[nodiscard]] bool evaluate(const TriggerState& state) const;

  /// Expression-tree size (leaves + combinators).
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] Kind root_kind() const noexcept { return nodes_.back().kind; }

  /// Canonical s-expression text (grammar above); parse(to_text()) == *this.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Expected<AttackPredicate> parse(std::string_view text);

  friend bool operator==(const AttackPredicate&,
                         const AttackPredicate&) = default;

  /// One expression node. The tree is stored flat in evaluation postorder
  /// (children before parents, root last) so predicates copy and compare as
  /// plain vectors. `left`/`right` index into the same vector; leaves use
  /// `arg` only, kNot uses `left` only. Public for the parser; predicates
  /// are only built through the factories/combinators/parse().
  struct Node {
    Kind kind{Kind::kAlways};
    std::int64_t arg{0};
    std::uint32_t left{0};
    std::uint32_t right{0};

    friend bool operator==(const Node&, const Node&) = default;
  };

 private:
  AttackPredicate(Kind kind, std::int64_t arg);
  explicit AttackPredicate(std::vector<Node> nodes)
      : nodes_(std::move(nodes)) {}

  [[nodiscard]] static AttackPredicate combine(Kind kind,
                                               const AttackPredicate& a,
                                               const AttackPredicate& b);
  [[nodiscard]] bool evaluate_node(std::uint32_t index,
                                   const TriggerState& state) const;
  void print_node(std::uint32_t index, std::string& out) const;

  std::vector<Node> nodes_;
};

}  // namespace vmat::campaign
