#include "campaign/strategy.h"

#include <algorithm>
#include <cstdlib>

namespace vmat::campaign {
namespace {

/// Deepest tree level any malicious sensor holds on `tree` (0 if none made
/// it onto the tree).
Level deepest_malicious_level(const AdversaryView& view,
                              const TreeResult* tree) {
  Level deepest = 0;
  if (tree == nullptr) return deepest;
  for (NodeId m : view.malicious()) {
    const Level level = tree->level[m.value];
    if (level != kNoLevel) deepest = std::max(deepest, level);
  }
  return deepest;
}

}  // namespace

TriggerState trigger_state(const AdversaryView& view, const AggCtx& ctx) {
  TriggerState state = view.trigger_state(TracePhase::kAggregation, ctx.slot);
  state.deepest_level = deepest_malicious_level(view, ctx.tree);
  for (NodeId m : view.malicious()) {
    const auto& received = (*ctx.malicious_received)[m.value];
    state.frames_seen += received.size();
    for (const ReceivedRecord& r : received)
      state.min_seen = std::min(state.min_seen, r.msg.value);
  }
  return state;
}

TriggerState trigger_state(const AdversaryView& view, const ConfCtx& ctx) {
  TriggerState state = view.trigger_state(TracePhase::kConfirmation, ctx.slot);
  state.deepest_level = deepest_malicious_level(view, ctx.tree);
  for (const Reading minimum : *ctx.broadcast_minima)
    if (minimum != kInfinity) state.min_seen = std::min(state.min_seen, minimum);
  for (NodeId m : view.malicious()) {
    const auto& vetoes = (*ctx.malicious_vetoes)[m.value];
    state.frames_seen += vetoes.size();
    for (const VetoMsg& veto : vetoes)
      state.min_seen = std::min(state.min_seen, veto.value);
  }
  return state;
}

PredicatedStrategy::PredicatedStrategy(AttackPolicy policy,
                                       AttackPredicate when,
                                       std::uint64_t seed)
    : PolicyStrategy(policy.lie, seed),
      policy_(policy),
      when_(std::move(when)) {}

void PredicatedStrategy::on_agg_slot(AdversaryView& view, const AggCtx& ctx) {
  if (policy_.agg == AggAction::kSilentDrop) return;
  if (!when_.evaluate(trigger_state(view, ctx))) return;
  switch (policy_.agg) {
    case AggAction::kSilentDrop:
      return;
    case AggAction::kForwardMax:
      for (NodeId m : view.malicious()) forward_max_instead_of_min(view, ctx, m);
      return;
    case AggAction::kInjectJunk:
      for (NodeId m : view.malicious()) {
        NodeId claimed = m;
        if (policy_.frame_honest_origin) {
          for (NodeId v : view.net().topology().neighbors(m)) {
            if (!view.is_malicious(v) && v != kBaseStation) {
              claimed = v;
              break;
            }
          }
        }
        inject_junk_min(view, ctx, m, claimed);
      }
      return;
  }
}

void PredicatedStrategy::on_conf_slot(AdversaryView& view, const ConfCtx& ctx) {
  if (policy_.conf == ConfAction::kNone) return;
  if (!when_.evaluate(trigger_state(view, ctx))) return;
  switch (policy_.conf) {
    case ConfAction::kNone:
      return;
    case ConfAction::kChokeVeto:
      for (NodeId m : view.malicious()) inject_spurious_veto(view, ctx, m, m);
      return;
    case ConfAction::kSelfVeto: {
      // A self-veto only makes sense against a broadcast minimum larger
      // than the hidden reading (Theorem 2's "legitimate veto" case).
      if ((*ctx.broadcast_minima)[0] <= policy_.self_veto_value) return;
      NodeId vetoer = *view.malicious().begin();
      for (NodeId m : view.malicious())
        if (m < vetoer) vetoer = m;
      inject_valid_self_veto(view, ctx, vetoer, policy_.self_veto_value);
      return;
    }
  }
}

namespace {

template <typename T>
struct EnumName {
  T value;
  std::string_view name;
};

constexpr EnumName<AggAction> kAggNames[] = {
    {AggAction::kSilentDrop, "silent"},
    {AggAction::kForwardMax, "maxfwd"},
    {AggAction::kInjectJunk, "junk"},
};
constexpr EnumName<ConfAction> kConfNames[] = {
    {ConfAction::kNone, "none"},
    {ConfAction::kChokeVeto, "choke"},
    {ConfAction::kSelfVeto, "selfveto"},
};
constexpr EnumName<LiePolicy> kLieNames[] = {
    {LiePolicy::kDenyAll, "deny"},
    {LiePolicy::kAdmitAll, "admit"},
    {LiePolicy::kRandom, "random"},
};

template <typename T, std::size_t N>
std::string_view name_of(const EnumName<T> (&table)[N], T value) {
  for (const auto& entry : table)
    if (entry.value == value) return entry.name;
  return table[0].name;
}

template <typename T, std::size_t N>
bool value_of(const EnumName<T> (&table)[N], std::string_view name, T& out) {
  for (const auto& entry : table) {
    if (entry.name != name) continue;
    out = entry.value;
    return true;
  }
  return false;
}

}  // namespace

std::string to_text(const AttackPolicy& policy) {
  std::string out = "agg:";
  out += name_of(kAggNames, policy.agg);
  out += ",conf:";
  out += name_of(kConfNames, policy.conf);
  out += ",lie:";
  out += name_of(kLieNames, policy.lie);
  out += ",frame:";
  out += policy.frame_honest_origin ? '1' : '0';
  out += ",veto:";
  out += std::to_string(policy.self_veto_value);
  return out;
}

Expected<AttackPolicy> policy_from_text(std::string_view text) {
  AttackPolicy policy;
  auto fail = [](const std::string& what) {
    return Error{ErrorCode::kInvalidArgument, "policy parse: " + what};
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view field = text.substr(pos, comma - pos);
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos)
      return fail("expected key:value, got '" + std::string(field) + "'");
    const std::string_view key = field.substr(0, colon);
    const std::string_view value = field.substr(colon + 1);
    bool ok = true;
    if (key == "agg") {
      ok = value_of(kAggNames, value, policy.agg);
    } else if (key == "conf") {
      ok = value_of(kConfNames, value, policy.conf);
    } else if (key == "lie") {
      ok = value_of(kLieNames, value, policy.lie);
    } else if (key == "frame") {
      ok = value == "0" || value == "1";
      policy.frame_honest_origin = value == "1";
    } else if (key == "veto") {
      char* end = nullptr;
      const std::string digits(value);
      policy.self_veto_value = std::strtoll(digits.c_str(), &end, 10);
      ok = end != nullptr && *end == '\0' && !digits.empty();
    } else {
      return fail("unknown field '" + std::string(key) + "'");
    }
    if (!ok)
      return fail("bad value '" + std::string(value) + "' for field '" +
                  std::string(key) + "'");
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return policy;
}

}  // namespace vmat::campaign
