// AttackPolicy × AttackPredicate — attack strategies as data.
//
// AttackPolicy is the action genome: WHAT the compromised set does in each
// query phase, drawn from the shared building blocks of the strategy zoo
// (attack/strategies.h). AttackPredicate (campaign/predicate.h) is WHEN it
// does it. PredicatedStrategy glues the two behind the ordinary
// AdversaryStrategy hook interface, so one serializable (policy, predicate,
// seed) triple replaces a hand-written PolicyStrategy subclass — which is
// what the campaign fuzzer mutates and the corpus replays.
//
// The zoo subclasses remain for compatibility, but new call sites should
// build adversaries declaratively via SimulationSpec::attack()
// (spec/attack_spec.h); see DESIGN.md "Campaign search & predicates".
#pragma once

#include <string>
#include <string_view>

#include "attack/strategies.h"
#include "campaign/predicate.h"
#include "util/error.h"

namespace vmat::campaign {

/// Aggregation-phase action once the trigger fires. Until it fires (and for
/// kSilentDrop) malicious sensors transmit nothing — the Section IV-B
/// dropping attack is the resting state of every predicated adversary.
enum class AggAction : std::uint8_t {
  kSilentDrop,  ///< never transmit (pure dropping)
  kForwardMax,  ///< forward the collected maximum instead of the minimum
  kInjectJunk,  ///< inject spurious minima with bogus MACs
};

/// Confirmation-phase (SOF) action once the trigger fires.
enum class ConfAction : std::uint8_t {
  kNone,       ///< no confirmation-phase attack
  kChokeVeto,  ///< flood spurious vetoes (Section IV-C choking)
  kSelfVeto,   ///< veto a hidden own reading with a *valid* MAC (Theorem 2)
};

/// The serializable action genome of a predicated adversary.
struct AttackPolicy {
  AggAction agg{AggAction::kSilentDrop};
  ConfAction conf{ConfAction::kNone};
  LiePolicy lie{LiePolicy::kDenyAll};
  /// kInjectJunk claims an honest neighbor as origin (framing) when true.
  bool frame_honest_origin{true};
  /// kSelfVeto: the hidden reading the malicious sensor vetoes.
  Reading self_veto_value{1};

  friend bool operator==(const AttackPolicy&, const AttackPolicy&) = default;
};

/// Compact one-token text form, e.g. "agg:junk,conf:none,lie:deny,frame:1,veto:1".
[[nodiscard]] std::string to_text(const AttackPolicy& policy);
[[nodiscard]] Expected<AttackPolicy> policy_from_text(std::string_view text);

// --- trigger-state builders (the per-phase halves of the evaluation seam;
//     AdversaryView::trigger_state fills the globally visible fields) ---

[[nodiscard]] TriggerState trigger_state(const AdversaryView& view,
                                         const AggCtx& ctx);
[[nodiscard]] TriggerState trigger_state(const AdversaryView& view,
                                         const ConfCtx& ctx);

/// Any PolicyStrategy as data: participates honestly in tree formation
/// (inherited — the profitable play, and the behavior the shared
/// post-formation snapshot assumes), then runs `policy` in every slot whose
/// trigger state satisfies `when`.
class PredicatedStrategy final : public PolicyStrategy {
 public:
  explicit PredicatedStrategy(AttackPolicy policy,
                              AttackPredicate when = AttackPredicate::always(),
                              std::uint64_t seed = 7);

  void on_agg_slot(AdversaryView& view, const AggCtx& ctx) override;
  void on_conf_slot(AdversaryView& view, const ConfCtx& ctx) override;

  [[nodiscard]] const AttackPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const AttackPredicate& when() const noexcept { return when_; }

 private:
  AttackPolicy policy_;
  AttackPredicate when_;
};

}  // namespace vmat::campaign
