#include "campaign/predicate.h"

#include <array>
#include <cctype>
#include <charconv>

namespace vmat::campaign {
namespace {

struct PhaseName {
  TracePhase phase;
  std::string_view name;
};

constexpr std::array<PhaseName, kTracePhaseCount> kPhaseNames{{
    {TracePhase::kNone, "none"},
    {TracePhase::kBroadcast, "broadcast"},
    {TracePhase::kTreeFormation, "tree"},
    {TracePhase::kAggregation, "aggregation"},
    {TracePhase::kConfirmation, "confirmation"},
    {TracePhase::kPinpoint, "pinpoint"},
}};

std::string_view phase_name(TracePhase phase) {
  for (const PhaseName& p : kPhaseNames)
    if (p.phase == phase) return p.name;
  return "none";
}

}  // namespace

AttackPredicate::AttackPredicate(Kind kind, std::int64_t arg) {
  nodes_.push_back(Node{kind, arg, 0, 0});
}

AttackPredicate AttackPredicate::always() { return {Kind::kAlways, 0}; }
AttackPredicate AttackPredicate::never() { return {Kind::kNever, 0}; }
AttackPredicate AttackPredicate::phase_is(TracePhase phase) {
  return {Kind::kPhaseIs, static_cast<std::int64_t>(phase)};
}
AttackPredicate AttackPredicate::slot_at_least(Interval slot) {
  return {Kind::kSlotAtLeast, slot};
}
AttackPredicate AttackPredicate::level_at_least(Level level) {
  return {Kind::kLevelAtLeast, level};
}
AttackPredicate AttackPredicate::revoked_keys_at_least(std::size_t n) {
  return {Kind::kRevokedKeysAtLeast, static_cast<std::int64_t>(n)};
}
AttackPredicate AttackPredicate::revoked_sensors_at_least(std::size_t n) {
  return {Kind::kRevokedSensorsAtLeast, static_cast<std::int64_t>(n)};
}
AttackPredicate AttackPredicate::round_at_least(std::uint64_t n) {
  return {Kind::kRoundAtLeast, static_cast<std::int64_t>(n)};
}
AttackPredicate AttackPredicate::frames_seen_at_least(std::size_t n) {
  return {Kind::kFramesSeenAtLeast, static_cast<std::int64_t>(n)};
}
AttackPredicate AttackPredicate::min_seen_below(Reading value) {
  return {Kind::kMinSeenBelow, value};
}

AttackPredicate AttackPredicate::combine(Kind kind, const AttackPredicate& a,
                                         const AttackPredicate& b) {
  std::vector<Node> nodes = a.nodes_;
  const auto offset = static_cast<std::uint32_t>(nodes.size());
  for (Node n : b.nodes_) {
    if (n.kind == Kind::kAnd || n.kind == Kind::kOr) {
      n.left += offset;
      n.right += offset;
    } else if (n.kind == Kind::kNot) {
      n.left += offset;
    }
    nodes.push_back(n);
  }
  const auto b_root = static_cast<std::uint32_t>(nodes.size() - 1);
  nodes.push_back(Node{kind, 0, offset - 1, b_root});
  return AttackPredicate{std::move(nodes)};
}

AttackPredicate operator!(const AttackPredicate& a) {
  std::vector<AttackPredicate::Node> nodes = a.nodes_;
  const auto root = static_cast<std::uint32_t>(nodes.size() - 1);
  nodes.push_back(
      {AttackPredicate::Kind::kNot, 0, root, 0});
  return AttackPredicate{std::move(nodes)};
}

bool AttackPredicate::evaluate(const TriggerState& state) const {
  return evaluate_node(static_cast<std::uint32_t>(nodes_.size() - 1), state);
}

bool AttackPredicate::evaluate_node(std::uint32_t index,
                                    const TriggerState& state) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Kind::kAlways:
      return true;
    case Kind::kNever:
      return false;
    case Kind::kPhaseIs:
      return static_cast<std::int64_t>(state.phase) == node.arg;
    case Kind::kSlotAtLeast:
      return state.slot >= node.arg;
    case Kind::kLevelAtLeast:
      return state.deepest_level >= node.arg;
    case Kind::kRevokedKeysAtLeast:
      return static_cast<std::int64_t>(state.revoked_keys) >= node.arg;
    case Kind::kRevokedSensorsAtLeast:
      return static_cast<std::int64_t>(state.revoked_sensors) >= node.arg;
    case Kind::kRoundAtLeast:
      return static_cast<std::int64_t>(state.round) >= node.arg;
    case Kind::kFramesSeenAtLeast:
      return static_cast<std::int64_t>(state.frames_seen) >= node.arg;
    case Kind::kMinSeenBelow:
      return state.min_seen < node.arg;
    case Kind::kAnd:
      return evaluate_node(node.left, state) && evaluate_node(node.right, state);
    case Kind::kOr:
      return evaluate_node(node.left, state) || evaluate_node(node.right, state);
    case Kind::kNot:
      return !evaluate_node(node.left, state);
  }
  return false;
}

void AttackPredicate::print_node(std::uint32_t index, std::string& out) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Kind::kAlways:
      out += "(always)";
      return;
    case Kind::kNever:
      out += "(never)";
      return;
    case Kind::kPhaseIs:
      out += "(phase ";
      out += phase_name(static_cast<TracePhase>(node.arg));
      out += ')';
      return;
    case Kind::kSlotAtLeast:
    case Kind::kLevelAtLeast:
    case Kind::kRevokedKeysAtLeast:
    case Kind::kRevokedSensorsAtLeast:
    case Kind::kRoundAtLeast:
    case Kind::kFramesSeenAtLeast:
    case Kind::kMinSeenBelow: {
      static constexpr std::string_view kHeads[] = {
          "slot>=", "level>=", "keys>=", "sensors>=",
          "round>=", "frames>=", "min<"};
      const auto head =
          kHeads[static_cast<std::size_t>(node.kind) -
                 static_cast<std::size_t>(Kind::kSlotAtLeast)];
      out += '(';
      out += head;
      out += ' ';
      out += std::to_string(node.arg);
      out += ')';
      return;
    }
    case Kind::kAnd:
    case Kind::kOr:
      out += node.kind == Kind::kAnd ? "(and " : "(or ";
      print_node(node.left, out);
      out += ' ';
      print_node(node.right, out);
      out += ')';
      return;
    case Kind::kNot:
      out += "(not ";
      print_node(node.left, out);
      out += ')';
      return;
  }
}

std::string AttackPredicate::to_text() const {
  std::string out;
  print_node(static_cast<std::uint32_t>(nodes_.size() - 1), out);
  return out;
}

namespace {

/// Recursive-descent parser over the s-expression grammar. Appends the
/// parsed subtree to `nodes` in postorder and returns its root index, or an
/// Error describing the first malformed token.
class PredicateParser {
 public:
  explicit PredicateParser(std::string_view text) : text_(text) {}

  Expected<std::uint32_t> parse_expr(std::vector<AttackPredicate::Node>& nodes);

  [[nodiscard]] bool at_end() {
    skip_space();
    return pos_ >= text_.size();
  }

 private:
  using Kind = AttackPredicate::Kind;

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[nodiscard]] Error fail(const std::string& what) const {
    return Error{ErrorCode::kInvalidArgument,
                 "predicate parse at offset " + std::to_string(pos_) + ": " +
                     what};
  }

  /// A head / phase-name token: everything up to whitespace or ')'.
  std::string_view token() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')' && text_[pos_] != '(' &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) == 0)
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  Expected<std::int64_t> number() {
    const std::string_view tok = token();
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || ptr != tok.data() + tok.size())
      return fail("expected an integer, got '" + std::string(tok) + "'");
    return value;
  }

  Status expect(char c) {
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos_;
    return {};
  }

  std::string_view text_;
  std::size_t pos_{0};
};

Expected<std::uint32_t> PredicateParser::parse_expr(
    std::vector<AttackPredicate::Node>& nodes) {
  if (nodes.size() > 1024) return fail("expression too large");
  if (Status s = expect('('); !s) return s.error();
  const std::string_view head = token();

  auto leaf = [&nodes](Kind kind, std::int64_t arg) {
    nodes.push_back({kind, arg, 0, 0});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  };

  std::uint32_t root = 0;
  if (head == "always" || head == "never") {
    root = leaf(head == "always" ? Kind::kAlways : Kind::kNever, 0);
  } else if (head == "phase") {
    const std::string_view name = token();
    bool found = false;
    for (const PhaseName& p : kPhaseNames) {
      if (p.name != name) continue;
      root = leaf(Kind::kPhaseIs, static_cast<std::int64_t>(p.phase));
      found = true;
      break;
    }
    if (!found) return fail("unknown phase '" + std::string(name) + "'");
  } else if (head == "slot>=" || head == "level>=" || head == "keys>=" ||
             head == "sensors>=" || head == "round>=" || head == "frames>=" ||
             head == "min<") {
    const Kind kind = head == "slot>="      ? Kind::kSlotAtLeast
                      : head == "level>="   ? Kind::kLevelAtLeast
                      : head == "keys>="    ? Kind::kRevokedKeysAtLeast
                      : head == "sensors>=" ? Kind::kRevokedSensorsAtLeast
                      : head == "round>="   ? Kind::kRoundAtLeast
                      : head == "frames>="  ? Kind::kFramesSeenAtLeast
                                            : Kind::kMinSeenBelow;
    Expected<std::int64_t> arg = number();
    if (!arg) return arg.error();
    root = leaf(kind, arg.value());
  } else if (head == "and" || head == "or") {
    Expected<std::uint32_t> left = parse_expr(nodes);
    if (!left) return left.error();
    Expected<std::uint32_t> right = parse_expr(nodes);
    if (!right) return right.error();
    nodes.push_back({head == "and" ? Kind::kAnd : Kind::kOr, 0, left.value(),
                     right.value()});
    root = static_cast<std::uint32_t>(nodes.size() - 1);
  } else if (head == "not") {
    Expected<std::uint32_t> child = parse_expr(nodes);
    if (!child) return child.error();
    nodes.push_back({Kind::kNot, 0, child.value(), 0});
    root = static_cast<std::uint32_t>(nodes.size() - 1);
  } else {
    return fail("unknown operator '" + std::string(head) + "'");
  }

  if (Status s = expect(')'); !s) return s.error();
  return root;
}

}  // namespace

Expected<AttackPredicate> AttackPredicate::parse(std::string_view text) {
  PredicateParser parser(text);
  std::vector<Node> nodes;
  Expected<std::uint32_t> root = parser.parse_expr(nodes);
  if (!root) return root.error();
  if (!parser.at_end())
    return Error{ErrorCode::kInvalidArgument,
                 "predicate parse: trailing text after expression"};
  // parse_expr appends in postorder with the outermost expression's node
  // last, so the vector is already in canonical layout.
  return AttackPredicate{std::move(nodes)};
}

}  // namespace vmat::campaign
