#include "campaign/corpus.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace vmat::campaign {
namespace {

constexpr std::string_view kMagic = "vmatc1";

Error fail(const std::string& what) {
  return Error{ErrorCode::kInvalidArgument, "corpus parse: " + what};
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + 16, value, 16);
  return std::string(buf, ptr);
}

/// `key=value` field where value runs to the next space. Returns false if
/// the line does not start (at `pos`) with `key=`.
bool take_field(std::string_view line, std::size_t& pos, std::string_view key,
                std::string_view& value) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (line.substr(pos, key.size()) != key || pos + key.size() >= line.size() ||
      line[pos + key.size()] != '=')
    return false;
  pos += key.size() + 1;
  const std::size_t end = std::min(line.find(' ', pos), line.size());
  value = line.substr(pos, end - pos);
  pos = end;
  return true;
}

}  // namespace

std::string to_line(const CampaignEntry& entry) {
  std::string out(kMagic);
  out += " seed=";
  out += std::to_string(entry.seed);
  out += " digest=";
  out += hex64(entry.digest);
  out += " objective=";
  out += entry.objective;
  out += " policy=";
  out += to_text(entry.policy);
  out += " when=";
  out += entry.when.to_text();
  return out;
}

Expected<CampaignEntry> entry_from_line(std::string_view line) {
  CampaignEntry entry;
  std::size_t pos = 0;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (line.substr(pos, kMagic.size()) != kMagic)
    return fail("line does not start with '" + std::string(kMagic) + "'");
  pos += kMagic.size();

  std::string_view value;
  if (!take_field(line, pos, "seed", value)) return fail("missing seed=");
  {
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), entry.seed);
    if (ec != std::errc{} || ptr != value.data() + value.size())
      return fail("bad seed '" + std::string(value) + "'");
  }
  if (!take_field(line, pos, "digest", value)) return fail("missing digest=");
  {
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), entry.digest, 16);
    if (ec != std::errc{} || ptr != value.data() + value.size())
      return fail("bad digest '" + std::string(value) + "'");
  }
  if (!take_field(line, pos, "objective", value))
    return fail("missing objective=");
  entry.objective = std::string(value);
  if (!take_field(line, pos, "policy", value)) return fail("missing policy=");
  Expected<AttackPolicy> policy = policy_from_text(value);
  if (!policy) return policy.error();
  entry.policy = policy.value();

  // `when=` runs to end of line (the predicate text contains spaces).
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (line.substr(pos, 5) != "when=") return fail("missing when=");
  Expected<AttackPredicate> when = AttackPredicate::parse(line.substr(pos + 5));
  if (!when) return when.error();
  entry.when = when.value();
  return entry;
}

std::string Corpus::to_text() const {
  std::string out =
      "# vmat campaign corpus — one replayable counterexample per line\n";
  for (const CampaignEntry& entry : entries) {
    out += to_line(entry);
    out += '\n';
  }
  return out;
}

Expected<Corpus> Corpus::from_text(std::string_view text) {
  Corpus corpus;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, end - pos);
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (!line.empty() && line.front() != '#') {
      Expected<CampaignEntry> entry = entry_from_line(line);
      if (!entry)
        return Error{entry.error().code, "line " + std::to_string(line_no) +
                                             ": " + entry.error().message};
      corpus.entries.push_back(std::move(entry.value()));
    }
    if (end == text.size()) break;
    pos = end + 1;
  }
  return corpus;
}

Expected<Corpus> Corpus::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Error{ErrorCode::kUnavailable, "corpus load: cannot open " + path};
  std::ostringstream text;
  text << in.rdbuf();
  return from_text(text.str());
}

Status Corpus::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    return Error{ErrorCode::kUnavailable, "corpus save: cannot open " + path};
  out << to_text();
  return out.good() ? Status{}
                    : Status{Error{ErrorCode::kUnavailable,
                                   "corpus save: write failed for " + path}};
}

}  // namespace vmat::campaign
