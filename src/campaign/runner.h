// CampaignRunner — the coverage-guided adversary-strategy fuzzer.
//
// A campaign searches the (policy × predicate × seed) strategy space of one
// deployment for worst cases, with the trace-invariant checker (trace/
// checker.h) as the oracle and the post-formation snapshot (sim/snapshot.h)
// making each probe cheap: the deployment's tree is formed ONCE, every
// probe forks from that shared prefix via resume_min() under a fresh
// Adversary — zero formation rounds per probe after the first (asserted in
// bench_campaign).
//
// Search = random generation + mutation over a seed corpus, guided by a
// coverage signal: each probe's outcome is hashed into a bucket signature
// (log2-bucketed per-phase PhaseCounters + outcome kind/trigger +
// revocation counts); a never-seen signature makes the genome a mutation
// seed. Tracked worst cases:
//
//   ruin         a disrupted execution with the FEWEST adversary keys
//                revoked (the adversary that ruins executions while giving
//                the revocation walk the least to bite on), deepened into a
//                full "executions ruined before full revocation" streak;
//   misrevoke    most honest collateral (honest sensors revoked, revoked
//                keys the adversary never held);
//   latency      longest pinpoint walk (flooding rounds, predicate tests);
//   violation    ANY trace-invariant violation (a protocol bug).
//
// Everything is deterministic for a fixed (seed, probes) budget: probes run
// sequentially through vmat::Rng, and each probe's execution is
// bit-identical for any VMAT_THREADS (the PR 5/6 contract), so the corpus,
// the coverage counters, and the worst-case table replay exactly.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "attack/adversary.h"
#include "campaign/corpus.h"
#include "core/coordinator.h"
#include "sim/snapshot.h"
#include "spec/simulation_spec.h"

namespace vmat::campaign {

struct CampaignConfig {
  /// Deployment under attack. instances is forced to 1 (probes are MIN
  /// queries); depth_bound 0 = physical depth of the honest subgraph.
  SimulationSpec spec{};
  /// Compromised sensor count (placement via choose_malicious).
  std::uint32_t compromised{2};
  std::uint64_t placement_seed{17};
  /// Search budget: probes to run.
  std::uint32_t probes{64};
  /// Fuzzer seed: drives genome generation and mutation.
  std::uint64_t seed{1};
  /// Fork probes from one shared post-formation snapshot (default). When
  /// false — or when snapshots are disabled via VMAT_SNAPSHOT=0 — every
  /// probe builds a private deployment and executes from scratch;
  /// bit-identical results either way (the snapshot contract), only the
  /// formation count and wall clock differ.
  bool fork_probes{true};
  /// Optional seed corpus to mutate from.
  Corpus seeds{};
};

/// One probe's summarized outcome. `entry.digest` is filled with the
/// observed outcome digest, making the entry replayable as a regression.
struct ProbeOutcome {
  CampaignEntry entry;
  bool ruined{false};
  /// Adversary-held keys revoked by this probe.
  std::size_t adversary_keys_revoked{0};
  /// Revoked keys NO malicious sensor holds — pure honest collateral.
  std::size_t framed_keys{0};
  /// Revoked sensors outside the malicious set (θ-cascade collateral).
  std::size_t honest_sensors_revoked{0};
  int pinpoint_rounds{0};
  int predicate_tests{0};
  std::size_t violations{0};
  std::string violation_text{};
  std::uint64_t coverage{0};
  bool new_coverage{false};
};

struct CampaignResult {
  std::vector<ProbeOutcome> probes;
  /// Replayable counterexamples: violations, worst cases, and ruining
  /// coverage novelties (deterministic order, deduplicated).
  Corpus corpus;
  std::size_t coverage_buckets{0};
  /// Tree formations run across the whole campaign (1 in fork mode).
  std::uint64_t formations{0};
  /// Indices into `probes` for each objective (unset = no candidate).
  std::optional<std::size_t> worst_ruin;
  std::optional<std::size_t> worst_misrevocation;
  std::optional<std::size_t> worst_latency;
  std::optional<std::size_t> first_violation;
  /// Deep evaluation of the worst_ruin genome: executions ruined before the
  /// adversary lost every key (or the streak cap), with the total
  /// executions the streak took.
  int ruin_streak{0};
  int ruin_streak_executions{0};

  /// The deterministic worst-case table (what vmatsim --campaign prints).
  [[nodiscard]] std::string table() const;
};

class CampaignRunner {
 public:
  /// Validates config.spec (throws std::invalid_argument with the joined
  /// report) and builds the shared deployment.
  explicit CampaignRunner(CampaignConfig config);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// Run the full budget. Deterministic for a fixed config.
  [[nodiscard]] CampaignResult run();

  /// Re-execute one serialized entry through the probe path; the returned
  /// outcome's entry.digest is freshly computed (compare against the
  /// stored digest to detect behavior drift).
  [[nodiscard]] ProbeOutcome replay(const CampaignEntry& entry);
  /// replay() that also hands back the probe's full event stream (for JSON
  /// export / tools/check_trace.py). `recorder` is cleared first.
  [[nodiscard]] ProbeOutcome replay(const CampaignEntry& entry,
                                    FlightRecorder& recorder);

  [[nodiscard]] const std::unordered_set<NodeId>& malicious() const noexcept {
    return malicious_;
  }
  /// Formations run so far (shared coordinator + scratch probes).
  [[nodiscard]] std::uint64_t formations() const noexcept;

 private:
  [[nodiscard]] ProbeOutcome probe(const CampaignEntry& entry,
                                   FlightRecorder& recorder);
  [[nodiscard]] ProbeOutcome probe_outcome(const CampaignEntry& entry,
                                           const ExecutionOutcome& outcome,
                                           const FlightRecorder& recorder,
                                           const Network& net);
  [[nodiscard]] CampaignEntry random_entry(Rng& rng) const;
  [[nodiscard]] AttackPredicate random_predicate(Rng& rng, int depth) const;
  [[nodiscard]] CampaignEntry mutate(const CampaignEntry& base,
                                     Rng& rng) const;
  [[nodiscard]] std::vector<Reading> probe_readings(std::uint64_t seed) const;
  /// Multi-execution re-run of one genome on a private deployment:
  /// executions ruined before the adversary is fully revoked.
  void deepen_ruin(const CampaignEntry& entry, CampaignResult& result);

  CampaignConfig config_;
  SimulationSpec spec_;  ///< config_.spec with instances/depth_bound pinned
  std::unordered_set<NodeId> malicious_;
  bool fork_{true};
  /// Shared fork deployment (fork mode; unused for scratch probes).
  std::unique_ptr<Network> net_;
  std::unique_ptr<Adversary> formation_adversary_;
  std::unique_ptr<VmatCoordinator> coordinator_;
  std::optional<Snapshot> snapshot_;
  /// Formations run by scratch probes (their coordinators are transient).
  std::uint64_t scratch_formations_{0};
};

/// Outcome digest used for corpus replay verification: a snapshot_mix hash
/// over the complete observable outcome (kind, trigger, minima, revocation
/// lists, rounds, pinpoint cost, fabric bytes, per-phase counters).
[[nodiscard]] std::uint64_t outcome_digest(const ExecutionOutcome& outcome);

/// Coverage-bucket signature for the search (coarser than the digest:
/// log2 buckets so "same shape" outcomes collide).
[[nodiscard]] std::uint64_t coverage_signature(const ExecutionOutcome& outcome,
                                               std::size_t violations);

}  // namespace vmat::campaign
