// The replayable campaign corpus: every interesting probe the fuzzer finds
// (counterexamples, coverage novelties, worst cases) serialized as one
// text line — seed + policy + predicate tree + the outcome digest observed
// when it was recorded. Replaying an entry re-executes the probe and
// compares digests: a mismatch means the protocol's behavior changed, which
// is exactly what the ctest regression target guards against.
//
// Line grammar (space-separated fields; `when=` must be last because the
// predicate s-expression contains spaces):
//
//   vmatc1 seed=<u64> digest=<hex64> objective=<word> policy=<policy> when=<expr>
//
// '#'-prefixed lines and blank lines are comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "campaign/strategy.h"
#include "util/error.h"

namespace vmat::campaign {

struct CampaignEntry {
  /// Seeds the probe's readings and the strategy RNG (LiePolicy::kRandom).
  std::uint64_t seed{1};
  AttackPolicy policy{};
  AttackPredicate when{};
  /// Why this entry is in the corpus: "seed", "coverage", "ruin",
  /// "misrevoke", "latency", or "violation".
  std::string objective{"seed"};
  /// Outcome digest observed when the entry was recorded (0 = unverified).
  std::uint64_t digest{0};

  friend bool operator==(const CampaignEntry&, const CampaignEntry&) = default;
};

[[nodiscard]] std::string to_line(const CampaignEntry& entry);
[[nodiscard]] Expected<CampaignEntry> entry_from_line(std::string_view line);

struct Corpus {
  std::vector<CampaignEntry> entries;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static Expected<Corpus> from_text(std::string_view text);
  [[nodiscard]] static Expected<Corpus> load(const std::string& path);
  [[nodiscard]] Status save(const std::string& path) const;

  friend bool operator==(const Corpus&, const Corpus&) = default;
};

}  // namespace vmat::campaign
