// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), the MAC construction used for
// sensor-key and edge-key MACs throughout VMAT.
#pragma once

#include <span>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace vmat {

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

}  // namespace vmat
