// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), the MAC construction used for
// sensor-key and edge-key MACs throughout VMAT.
//
// Two entry points:
//  * hmac_sha256(): one-shot, re-derives the ipad/opad pads per call;
//  * HmacKeyState: precomputes the ipad/opad SHA-256 midstates once per
//    key, so each subsequent MAC costs only the message + finalization
//    compressions. Repeated MACs under one key (every edge-key hop in the
//    simulator) should go through a cached HmacKeyState.
#pragma once

#include <span>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace vmat {

/// Precomputed HMAC key schedule: the SHA-256 midstates after compressing
/// the 64-byte ipad and opad blocks. Immutable after construction, so a
/// const HmacKeyState is safe to share across threads.
class HmacKeyState {
 public:
  explicit HmacKeyState(std::span<const std::uint8_t> key) noexcept;

  /// HMAC-SHA-256 of `message` under the precomputed key.
  [[nodiscard]] Digest mac(std::span<const std::uint8_t> message) const noexcept;

  /// The pad midstates, exposed for the multi-buffer MAC batching kernels
  /// (crypto/mac_batch.*) which resume many inner/outer hashes in lockstep.
  [[nodiscard]] const Sha256Midstate& inner_midstate() const noexcept {
    return inner_;
  }
  [[nodiscard]] const Sha256Midstate& outer_midstate() const noexcept {
    return outer_;
  }

 private:
  Sha256Midstate inner_;  // state after the ipad block
  Sha256Midstate outer_;  // state after the opad block
};

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

}  // namespace vmat
