// One-way hash chains, the commitment structure behind the authenticated
// broadcast primitive (μTESLA-style, per Ning et al. [20]).
//
// The base station commits to chain anchor H^n(seed); releasing H^{n-i}(seed)
// in epoch i authenticates that epoch's broadcast key. Receivers verify a
// released element by hashing forward to a previously verified element.
//
// Storage: the chain is checkpointed, not materialized — every kStride-th
// element (plus the seed end) is stored, and element(i) rehashes down from
// the nearest checkpoint above. A 2^16-element chain thus costs ~8 KB
// resident instead of 2 MB, and an element access at most kStride-1 extra
// hashes (broadcasts are rare: a handful per execution). Elements are
// identical to the fully materialized chain by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace vmat {

class HashChain {
 public:
  /// Build a chain of `length` elements from a seed. element(0) is the
  /// anchor (deepest hash, publicly known), element(length-1) the seed end.
  HashChain(std::uint64_t seed, std::size_t length);

  [[nodiscard]] std::size_t length() const noexcept { return length_; }

  /// i in [0, length): element i, where larger i = released later. Returned
  /// by value: off-checkpoint elements are recomputed on the fly.
  [[nodiscard]] Digest element(std::size_t i) const;

  [[nodiscard]] const Digest& anchor() const { return checkpoints_.front(); }

  /// Verify that `candidate` is the element at position `i` of a chain whose
  /// element at `verified_pos` (< i) is `verified`. Hashes forward i -
  /// verified_pos times.
  [[nodiscard]] static bool verify(const Digest& candidate, std::size_t i,
                                   const Digest& verified,
                                   std::size_t verified_pos) noexcept;

  /// Checkpoint spacing (elements between stored digests).
  static constexpr std::size_t kStride = 256;

 private:
  std::size_t length_{0};
  std::vector<Digest> checkpoints_;  // element(k * kStride); [0] = anchor
  Digest top_{};                     // element(length-1), the seed end
};

}  // namespace vmat
