// One-way hash chains, the commitment structure behind the authenticated
// broadcast primitive (μTESLA-style, per Ning et al. [20]).
//
// The base station commits to chain anchor H^n(seed); releasing H^{n-i}(seed)
// in epoch i authenticates that epoch's broadcast key. Receivers verify a
// released element by hashing forward to a previously verified element.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace vmat {

class HashChain {
 public:
  /// Build a chain of `length` elements from a seed. element(0) is the
  /// anchor (deepest hash, publicly known), element(length-1) the seed end.
  HashChain(std::uint64_t seed, std::size_t length);

  [[nodiscard]] std::size_t length() const noexcept { return chain_.size(); }

  /// i in [0, length): element i, where larger i = released later.
  [[nodiscard]] const Digest& element(std::size_t i) const;

  [[nodiscard]] const Digest& anchor() const { return element(0); }

  /// Verify that `candidate` is the element at position `i` of a chain whose
  /// element at `verified_pos` (< i) is `verified`. Hashes forward i -
  /// verified_pos times.
  [[nodiscard]] static bool verify(const Digest& candidate, std::size_t i,
                                   const Digest& verified,
                                   std::size_t verified_pos) noexcept;

 private:
  std::vector<Digest> chain_;  // chain_[0] = anchor
};

}  // namespace vmat
