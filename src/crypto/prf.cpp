#include "crypto/prf.h"

#include <cmath>

namespace vmat {

std::uint64_t prf_u64(const SymmetricKey& key, std::uint64_t nonce,
                      std::uint32_t node_id, std::uint32_t synopsis_index,
                      std::uint64_t salt) noexcept {
  ByteWriter w;
  w.u64(nonce);
  w.u32(node_id);
  w.u32(synopsis_index);
  w.u64(salt);
  const Digest d = hmac_sha256(key.span(), w.bytes());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{d[i]} << (8 * i);
  return v;
}

double prf_unit_open(const SymmetricKey& key, std::uint64_t nonce,
                     std::uint32_t node_id, std::uint32_t synopsis_index,
                     std::uint64_t salt) noexcept {
  // 53 uniform bits -> [0,1); retry via salt perturbation in the (measure
  // zero in practice) case of exactly 0, so log() below stays finite.
  std::uint64_t raw = prf_u64(key, nonce, node_id, synopsis_index, salt);
  double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
  std::uint64_t bump = 1;
  while (u <= 0.0) {
    raw = prf_u64(key, nonce, node_id, synopsis_index, salt + 0x9e37 * bump++);
    u = static_cast<double>(raw >> 11) * 0x1.0p-53;
  }
  return u;
}

double prf_exponential(const SymmetricKey& key, std::uint64_t nonce,
                       std::uint32_t node_id, std::uint32_t synopsis_index,
                       std::uint64_t weight) noexcept {
  const double u = prf_unit_open(key, nonce, node_id, synopsis_index, weight);
  return -std::log(u) / static_cast<double>(weight);
}

}  // namespace vmat
