// Self-contained SHA-256 (FIPS 180-4). The paper's one-way hash function
// H() used by the keyed predicate test, and the compression primitive under
// HMAC, hash chains, and the PRF.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace vmat {

using Digest = std::array<std::uint8_t, 32>;

/// Streaming SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint64_t length_{0};  // total bytes seen
  std::uint8_t buffer_[64];
  std::size_t buffered_{0};
};

}  // namespace vmat
