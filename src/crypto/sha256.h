// Self-contained SHA-256 (FIPS 180-4). The paper's one-way hash function
// H() used by the keyed predicate test, and the compression primitive under
// HMAC, hash chains, and the PRF.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"

namespace vmat {

using Digest = std::array<std::uint8_t, 32>;

/// Compression state captured at a 64-byte block boundary. Lets a caller
/// pay for a fixed prefix (e.g. the HMAC ipad/opad block) once and resume
/// from it for every message — the mechanism behind the cached MAC key
/// schedules.
struct Sha256Midstate {
  std::array<std::uint32_t, 8> h{};
  std::uint64_t length{0};  // bytes compressed so far; multiple of 64
};

/// Internals shared with the multi-buffer MAC batching kernels
/// (crypto/mac_batch.*): the FIPS round constants, feature detection, and a
/// single-lane multi-block compressor that follows the same runtime
/// dispatch (SHA-NI when the CPU has it, portable scalar otherwise).
namespace sha256_detail {

extern const std::uint32_t kRoundConstants[64];

[[nodiscard]] bool shani_available() noexcept;

/// Compress `n` consecutive 64-byte blocks into the state `h` (8 words).
void compress_blocks(std::uint32_t* h, const std::uint8_t* blocks,
                     std::size_t n) noexcept;

}  // namespace sha256_detail

/// Streaming SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Resume from a saved block-aligned state.
  explicit Sha256(const Sha256Midstate& m) noexcept;

  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] Digest finish() noexcept;

  /// Snapshot the compression state. Only valid at a block boundary (no
  /// buffered partial block); the HMAC key-schedule is the intended caller.
  [[nodiscard]] Sha256Midstate midstate() const noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint64_t length_{0};  // total bytes seen
  std::uint8_t buffer_[64];
  std::size_t buffered_{0};
};

}  // namespace vmat
