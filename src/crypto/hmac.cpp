#include "crypto/hmac.h"

#include <cstring>

namespace vmat {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  std::uint8_t block_key[64] = {};
  if (key.size() > 64) {
    const Digest d = Sha256::hash(key);
    std::memcpy(block_key, d.data(), d.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  std::uint8_t ipad[64];
  std::uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad).update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad).update(inner_digest);
  return outer.finish();
}

}  // namespace vmat
