#include "crypto/hmac.h"

#include <cstring>

namespace vmat {

HmacKeyState::HmacKeyState(std::span<const std::uint8_t> key) noexcept {
  std::uint8_t block_key[64] = {};
  if (key.size() > 64) {
    const Digest d = Sha256::hash(key);
    std::memcpy(block_key, d.data(), d.size());
  } else if (!key.empty()) {  // empty span may carry nullptr; memcpy(_, nullptr, 0) is UB
    std::memcpy(block_key, key.data(), key.size());
  }

  std::uint8_t pad[64];
  for (int i = 0; i < 64; ++i)
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
  Sha256 inner;
  inner.update(pad);
  inner_ = inner.midstate();

  for (int i = 0; i < 64; ++i)
    pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  Sha256 outer;
  outer.update(pad);
  outer_ = outer.midstate();
}

Digest HmacKeyState::mac(std::span<const std::uint8_t> message) const noexcept {
  Sha256 inner(inner_);
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer(outer_);
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  return HmacKeyState(key).mac(message);
}

}  // namespace vmat
