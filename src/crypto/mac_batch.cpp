#include "crypto/mac_batch.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "crypto/sha256.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VMAT_MB_X86 1
#endif

namespace vmat {
namespace {

std::atomic<MacBatch::Impl> g_requested{MacBatch::Impl::kAuto};

#ifdef VMAT_MB_X86

bool avx2_supported() noexcept { return __builtin_cpu_supports("avx2"); }

// ---------------------------------------------------------------------------
// SHA-NI, two interleaved lanes. Identical round structure to the
// single-lane kernel in sha256.cpp, but with two independent states in
// flight so the sha256rnds2 dependency chains overlap.
// ---------------------------------------------------------------------------
__attribute__((target("sha,sse4.1,ssse3"))) void compress_x2_shani(
    std::uint32_t* ha, std::uint32_t* hb, const std::uint8_t* ma,
    const std::uint8_t* mb, std::size_t nblocks) noexcept {
  const __m128i kBswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {ABCD, EFGH} into the {ABEF, CDGH} layout, both lanes.
  __m128i ta = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&ha[0]));
  __m128i s1a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&ha[4]));
  ta = _mm_shuffle_epi32(ta, 0xB1);
  s1a = _mm_shuffle_epi32(s1a, 0x1B);
  __m128i s0a = _mm_alignr_epi8(ta, s1a, 8);
  s1a = _mm_blend_epi16(s1a, ta, 0xF0);

  __m128i tb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&hb[0]));
  __m128i s1b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&hb[4]));
  tb = _mm_shuffle_epi32(tb, 0xB1);
  s1b = _mm_shuffle_epi32(s1b, 0x1B);
  __m128i s0b = _mm_alignr_epi8(tb, s1b, 8);
  s1b = _mm_blend_epi16(s1b, tb, 0xF0);

  for (std::size_t blk = 0; blk < nblocks; ++blk, ma += 64, mb += 64) {
    const __m128i save0a = s0a, save1a = s1a;
    const __m128i save0b = s0b, save1b = s1b;

    __m128i wa[4], wb[4];
    for (int i = 0; i < 4; ++i) {
      wa[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ma + 16 * i)),
          kBswap);
      wb[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(mb + 16 * i)),
          kBswap);
    }

    for (int i = 0; i < 16; ++i) {
      if (i >= 4) {
        wa[i & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(wa[i & 3], wa[(i + 1) & 3]),
                          _mm_alignr_epi8(wa[(i + 3) & 3], wa[(i + 2) & 3], 4)),
            wa[(i + 3) & 3]);
        wb[i & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(wb[i & 3], wb[(i + 1) & 3]),
                          _mm_alignr_epi8(wb[(i + 3) & 3], wb[(i + 2) & 3], 4)),
            wb[(i + 3) & 3]);
      }
      const __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          &sha256_detail::kRoundConstants[4 * i]));
      const __m128i msga = _mm_add_epi32(wa[i & 3], k);
      const __m128i msgb = _mm_add_epi32(wb[i & 3], k);
      s1a = _mm_sha256rnds2_epu32(s1a, s0a, msga);
      s1b = _mm_sha256rnds2_epu32(s1b, s0b, msgb);
      s0a = _mm_sha256rnds2_epu32(s0a, s1a, _mm_shuffle_epi32(msga, 0x0E));
      s0b = _mm_sha256rnds2_epu32(s0b, s1b, _mm_shuffle_epi32(msgb, 0x0E));
    }

    s0a = _mm_add_epi32(s0a, save0a);
    s1a = _mm_add_epi32(s1a, save1a);
    s0b = _mm_add_epi32(s0b, save0b);
    s1b = _mm_add_epi32(s1b, save1b);
  }

  ta = _mm_shuffle_epi32(s0a, 0x1B);
  s1a = _mm_shuffle_epi32(s1a, 0xB1);
  s0a = _mm_blend_epi16(ta, s1a, 0xF0);
  s1a = _mm_alignr_epi8(s1a, ta, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&ha[0]), s0a);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&ha[4]), s1a);

  tb = _mm_shuffle_epi32(s0b, 0x1B);
  s1b = _mm_shuffle_epi32(s1b, 0xB1);
  s0b = _mm_blend_epi16(tb, s1b, 0xF0);
  s1b = _mm_alignr_epi8(s1b, tb, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&hb[0]), s0b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&hb[4]), s1b);
}

// ---------------------------------------------------------------------------
// AVX2, eight transposed lanes: each 32-bit SIMD element carries one lane's
// word, so one vectorized SHA-256 round advances all eight lanes.
// ---------------------------------------------------------------------------
inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

__attribute__((target("avx2"))) inline __m256i rotr_v(__m256i x,
                                                      int n) noexcept {
  return _mm256_or_si256(_mm256_srli_epi32(x, n),
                         _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"))) void compress_x8_avx2(
    std::uint32_t* const h[8], const std::uint8_t* const m[8],
    std::size_t nblocks) noexcept {
  __m256i s[8];
  for (int r = 0; r < 8; ++r)
    s[r] = _mm256_setr_epi32(
        static_cast<int>(h[0][r]), static_cast<int>(h[1][r]),
        static_cast<int>(h[2][r]), static_cast<int>(h[3][r]),
        static_cast<int>(h[4][r]), static_cast<int>(h[5][r]),
        static_cast<int>(h[6][r]), static_cast<int>(h[7][r]));

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    __m256i w[16];
    for (int t = 0; t < 16; ++t) {
      const std::size_t off = 64 * blk + 4 * static_cast<std::size_t>(t);
      w[t] = _mm256_setr_epi32(static_cast<int>(load_be32(m[0] + off)),
                               static_cast<int>(load_be32(m[1] + off)),
                               static_cast<int>(load_be32(m[2] + off)),
                               static_cast<int>(load_be32(m[3] + off)),
                               static_cast<int>(load_be32(m[4] + off)),
                               static_cast<int>(load_be32(m[5] + off)),
                               static_cast<int>(load_be32(m[6] + off)),
                               static_cast<int>(load_be32(m[7] + off)));
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], hh = s[7];
    for (int i = 0; i < 64; ++i) {
      __m256i wt;
      if (i < 16) {
        wt = w[i];
      } else {
        const __m256i w15 = w[(i - 15) & 15];
        const __m256i w2 = w[(i - 2) & 15];
        const __m256i sig0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr_v(w15, 7), rotr_v(w15, 18)),
            _mm256_srli_epi32(w15, 3));
        const __m256i sig1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr_v(w2, 17), rotr_v(w2, 19)),
            _mm256_srli_epi32(w2, 10));
        wt = _mm256_add_epi32(
            _mm256_add_epi32(w[i & 15], sig0),
            _mm256_add_epi32(w[(i - 7) & 15], sig1));
        w[i & 15] = wt;
      }
      const __m256i big_s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr_v(e, 6), rotr_v(e, 11)), rotr_v(e, 25));
      const __m256i ch = _mm256_xor_si256(
          _mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(hh, big_s1), ch),
          _mm256_add_epi32(
              _mm256_set1_epi32(
                  static_cast<int>(sha256_detail::kRoundConstants[i])),
              wt));
      const __m256i big_s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr_v(a, 2), rotr_v(a, 13)), rotr_v(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(big_s0, maj);
      hh = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }
    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], hh);
  }

  for (int r = 0; r < 8; ++r) {
    alignas(32) std::uint32_t out[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), s[r]);
    for (int lane = 0; lane < 8; ++lane) h[lane][r] = out[lane];
  }
}

#endif  // VMAT_MB_X86

MacBatch::Impl resolve_impl(MacBatch::Impl requested) noexcept {
#ifdef VMAT_MB_X86
  if (requested == MacBatch::Impl::kAuto) {
    if (sha256_detail::shani_available()) return MacBatch::Impl::kShaNiX2;
    if (avx2_supported()) return MacBatch::Impl::kAvx2X8;
    return MacBatch::Impl::kScalar;
  }
  if (requested == MacBatch::Impl::kShaNiX2 &&
      !sha256_detail::shani_available())
    return MacBatch::Impl::kScalar;
  if (requested == MacBatch::Impl::kAvx2X8 && !avx2_supported())
    return MacBatch::Impl::kScalar;
  return requested;
#else
  (void)requested;
  return MacBatch::Impl::kScalar;
#endif
}

/// Compress a run of equal-block-count lanes with the widest kernel the
/// resolved impl allows; the tail narrows down to single-lane compression.
void compress_group(MacBatch::Impl impl, std::uint32_t* const* states,
                    const std::uint8_t* const* streams, std::size_t count,
                    std::size_t nblocks) noexcept {
  std::size_t i = 0;
#ifdef VMAT_MB_X86
  if (impl == MacBatch::Impl::kAvx2X8) {
    for (; i + 8 <= count; i += 8)
      compress_x8_avx2(states + i, streams + i, nblocks);
  }
  // Pair up what's left (the kShaNiX2 impl, or the <8-lane tail of the
  // AVX2 impl on a CPU that also has SHA-NI). Bit-identical either way.
  if (impl != MacBatch::Impl::kScalar && sha256_detail::shani_available()) {
    for (; i + 2 <= count; i += 2)
      compress_x2_shani(states[i], states[i + 1], streams[i], streams[i + 1],
                        nblocks);
  }
#endif
  for (; i < count; ++i)
    sha256_detail::compress_blocks(states[i], streams[i], nblocks);
}

}  // namespace

void MacBatch::set_impl(Impl impl) noexcept {
  g_requested.store(impl, std::memory_order_relaxed);
}

MacBatch::Impl MacBatch::active_impl() noexcept {
  return resolve_impl(g_requested.load(std::memory_order_relaxed));
}

std::size_t MacBatch::add(const MacContext& context,
                          std::span<const std::uint8_t> message) {
  lanes_.push_back(Lane{&context.key_state(),
                        message.empty() ? nullptr : message.data(),
                        message.size()});
  return lanes_.size() - 1;
}

void MacBatch::clear() noexcept {
  lanes_.clear();
  macs_.clear();
}

void MacBatch::compute() {
  const std::size_t m = lanes_.size();
  macs_.resize(m);
  if (m == 0) return;
  const Impl impl = active_impl();

  // Build every lane's padded inner stream (the bytes after the ipad
  // block): message, 0x80, zeros, and the 64-bit big-endian bit length of
  // ipad-block + message.
  offsets_.resize(m);
  nblocks_.resize(m);
  states_.resize(8 * m);
  inner_pad_.clear();
  std::size_t total = 0;
  for (std::size_t i = 0; i < m; ++i) {
    nblocks_[i] = (lanes_[i].length + 9 + 63) / 64;
    offsets_[i] = total;
    total += 64 * nblocks_[i];
  }
  inner_pad_.resize(total);  // value-initialized: padding zeros for free
  for (std::size_t i = 0; i < m; ++i) {
    const Lane& lane = lanes_[i];
    std::uint8_t* dst = inner_pad_.data() + offsets_[i];
    if (lane.length > 0) std::memcpy(dst, lane.message, lane.length);
    dst[lane.length] = 0x80;
    const std::uint64_t bits = (64 + lane.length) * 8;
    std::uint8_t* tail = dst + 64 * nblocks_[i] - 8;
    for (int b = 0; b < 8; ++b)
      tail[b] = static_cast<std::uint8_t>(bits >> (8 * (7 - b)));
    const Sha256Midstate& inner = lane.state->inner_midstate();
    std::memcpy(&states_[8 * i], inner.h.data(), sizeof inner.h);
  }

  // Lockstep compression needs equal block counts: group lane ids by
  // nblocks (stable, so results stay in add() order via lane ids).
  order_.resize(m);
  for (std::size_t i = 0; i < m; ++i) order_[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order_.begin(), order_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return nblocks_[a] < nblocks_[b];
                   });

  std::vector<std::uint32_t*> states;
  std::vector<const std::uint8_t*> streams;
  states.reserve(m);
  streams.reserve(m);
  for (std::size_t g = 0; g < m;) {
    const std::size_t nb = nblocks_[order_[g]];
    std::size_t end = g;
    states.clear();
    streams.clear();
    while (end < m && nblocks_[order_[end]] == nb) {
      states.push_back(&states_[8 * order_[end]]);
      streams.push_back(inner_pad_.data() + offsets_[order_[end]]);
      ++end;
    }
    compress_group(impl, states.data(), streams.data(), end - g, nb);
    g = end;
  }

  // Outer finalization: every lane is exactly one block — the 32-byte inner
  // digest, 0x80, zeros, bit length of opad-block + digest (768).
  outer_pad_.clear();
  outer_pad_.resize(64 * m);
  states.clear();
  streams.clear();
  for (std::size_t i = 0; i < m; ++i) {
    std::uint8_t* dst = outer_pad_.data() + 64 * i;
    for (int r = 0; r < 8; ++r) {
      const std::uint32_t be = __builtin_bswap32(states_[8 * i + r]);
      std::memcpy(dst + 4 * r, &be, 4);
    }
    dst[32] = 0x80;
    dst[62] = 0x03;  // 768 = 0x0300, big-endian in the last two bytes
    dst[63] = 0x00;
    const Sha256Midstate& outer = lanes_[i].state->outer_midstate();
    std::memcpy(&states_[8 * i], outer.h.data(), sizeof outer.h);
    states.push_back(&states_[8 * i]);
    streams.push_back(dst);
  }
  compress_group(impl, states.data(), streams.data(), m, 1);

  for (std::size_t i = 0; i < m; ++i) {
    std::uint8_t digest8[8];
    const std::uint32_t be0 = __builtin_bswap32(states_[8 * i]);
    const std::uint32_t be1 = __builtin_bswap32(states_[8 * i + 1]);
    std::memcpy(digest8, &be0, 4);
    std::memcpy(digest8 + 4, &be1, 4);
    std::memcpy(macs_[i].bytes.data(), digest8, 8);
  }
}

}  // namespace vmat
