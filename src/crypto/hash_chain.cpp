#include "crypto/hash_chain.h"

#include <stdexcept>

#include "util/bytes.h"

namespace vmat {

HashChain::HashChain(std::uint64_t seed, std::size_t length) {
  if (length == 0) throw std::invalid_argument("HashChain: zero length");
  ByteWriter w;
  w.str("vmat.hash-chain.seed");
  w.u64(seed);
  Digest current = Sha256::hash(w.bytes());

  // Build from the seed end back to the anchor, then reverse.
  std::vector<Digest> reversed;
  reversed.reserve(length);
  reversed.push_back(current);
  for (std::size_t i = 1; i < length; ++i) {
    current = Sha256::hash(current);
    reversed.push_back(current);
  }
  chain_.assign(reversed.rbegin(), reversed.rend());
}

const Digest& HashChain::element(std::size_t i) const {
  if (i >= chain_.size()) throw std::out_of_range("HashChain::element");
  return chain_[i];
}

bool HashChain::verify(const Digest& candidate, std::size_t i,
                       const Digest& verified,
                       std::size_t verified_pos) noexcept {
  if (i <= verified_pos) return false;
  Digest current = candidate;
  for (std::size_t step = 0; step < i - verified_pos; ++step)
    current = Sha256::hash(current);
  return current == verified;
}

}  // namespace vmat
