#include "crypto/hash_chain.h"

#include <stdexcept>

#include "util/bytes.h"

namespace vmat {

HashChain::HashChain(std::uint64_t seed, std::size_t length) : length_(length) {
  if (length == 0) throw std::invalid_argument("HashChain: zero length");
  ByteWriter w;
  w.str("vmat.hash-chain.seed");
  w.u64(seed);
  Digest current = Sha256::hash(w.bytes());

  // Walk from the seed end (index length-1) down to the anchor (index 0),
  // keeping the seed end plus every kStride-aligned element, written back
  // to front so checkpoints_[k] holds element(k * kStride).
  checkpoints_.resize((length - 1) / kStride + 1);
  top_ = current;
  for (std::size_t i = length; i-- > 0;) {
    if (i != length - 1) current = Sha256::hash(current);
    if (i % kStride == 0) checkpoints_[i / kStride] = current;
  }
}

Digest HashChain::element(std::size_t i) const {
  if (i >= length_) throw std::out_of_range("HashChain::element");
  // Start from the nearest stored element at or above i and hash down:
  // element(i) = H^(k-i)(element(k)), at most kStride-1 hashes.
  const std::size_t slot = (i + kStride - 1) / kStride;
  std::size_t k;
  Digest current;
  if (slot < checkpoints_.size()) {
    k = slot * kStride;
    current = checkpoints_[slot];
  } else {
    k = length_ - 1;
    current = top_;
  }
  for (std::size_t step = k; step > i; --step) current = Sha256::hash(current);
  return current;
}

bool HashChain::verify(const Digest& candidate, std::size_t i,
                       const Digest& verified,
                       std::size_t verified_pos) noexcept {
  if (i <= verified_pos) return false;
  Digest current = candidate;
  for (std::size_t step = 0; step < i - verified_pos; ++step)
    current = Sha256::hash(current);
  return current == verified;
}

}  // namespace vmat
