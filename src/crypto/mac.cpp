#include "crypto/mac.h"

#include <algorithm>
#include <cstring>

namespace vmat {

Mac MacContext::compute(std::span<const std::uint8_t> message) const noexcept {
  const Digest full = state_.mac(message);
  Mac tag;
  std::copy_n(full.begin(), tag.bytes.size(), tag.bytes.begin());
  return tag;
}

Mac compute_mac(const SymmetricKey& key,
                std::span<const std::uint8_t> message) noexcept {
  return MacContext(key).compute(message);
}

bool verify_mac(const SymmetricKey& key, std::span<const std::uint8_t> message,
                const Mac& tag) noexcept {
  return compute_mac(key, message) == tag;
}

Digest hash_of_mac(const Mac& tag) noexcept { return Sha256::hash(tag.bytes); }

SymmetricKey derive_key(std::string_view label, std::uint64_t seed,
                        std::uint64_t index) noexcept {
  ByteWriter w;
  w.str(label);
  w.u64(seed);
  w.u64(index);
  const Digest d = Sha256::hash(w.bytes());
  SymmetricKey key;
  std::copy_n(d.begin(), key.bytes.size(), key.bytes.begin());
  return key;
}

}  // namespace vmat
