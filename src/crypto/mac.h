// Symmetric keys and truncated message authentication codes.
//
// As in the paper (Section IX), MACs on the wire are truncated to 8 bytes.
// Keys are 16-byte symmetric keys; the global key pool derives each key
// deterministically from a pool seed so that "announce the ring seed" is a
// complete revocation message.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace vmat {

/// A 128-bit symmetric key.
struct SymmetricKey {
  std::array<std::uint8_t, 16> bytes{};

  friend constexpr auto operator<=>(const SymmetricKey&,
                                    const SymmetricKey&) = default;

  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return bytes;
  }
};

/// An 8-byte (64-bit) truncated HMAC tag, the paper's on-wire MAC size.
struct Mac {
  std::array<std::uint8_t, 8> bytes{};

  friend constexpr auto operator<=>(const Mac&, const Mac&) = default;
};

/// A keyed MAC context: the HMAC pad schedule is derived once at
/// construction, so each compute()/verify() pays only the per-message
/// compressions. Hot paths that MAC repeatedly under one key (edge keys,
/// sensor keys) should hold one of these — the key caches in src/keys/
/// hand them out. Immutable after construction.
class MacContext {
 public:
  explicit MacContext(const SymmetricKey& key) noexcept : state_(key.span()) {}

  /// MAC_key(message): HMAC-SHA-256 truncated to 8 bytes.
  [[nodiscard]] Mac compute(std::span<const std::uint8_t> message) const noexcept;

  [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                            const Mac& tag) const noexcept {
    return compute(message) == tag;
  }

  /// The cached HMAC key schedule, exposed for MacBatch lanes.
  [[nodiscard]] const HmacKeyState& key_state() const noexcept {
    return state_;
  }

 private:
  HmacKeyState state_;
};

/// Compute MAC_key(message): HMAC-SHA-256 truncated to 8 bytes. One-shot
/// wrapper over MacContext; prefer a cached MacContext when the key repeats.
[[nodiscard]] Mac compute_mac(const SymmetricKey& key,
                              std::span<const std::uint8_t> message) noexcept;

/// Constant-pattern verification helper.
[[nodiscard]] bool verify_mac(const SymmetricKey& key,
                              std::span<const std::uint8_t> message,
                              const Mac& tag) noexcept;

/// One-way hash of a MAC, H(MAC_K(N)) — the verifier token disseminated by
/// the keyed predicate test.
[[nodiscard]] Digest hash_of_mac(const Mac& tag) noexcept;

/// Derive a key from a label and a 64-bit seed (used by the key pool and by
/// per-sensor key derivation at the trusted base station).
[[nodiscard]] SymmetricKey derive_key(std::string_view label,
                                      std::uint64_t seed,
                                      std::uint64_t index) noexcept;

}  // namespace vmat
