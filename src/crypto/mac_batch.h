// Multi-buffer HMAC-SHA-256: compute/verify N independent MAC lanes at
// once. A batched HMAC decomposes into
//   inner  = SHA-256(ipad-midstate ‖ message)   (variable block count)
//   outer  = SHA-256(opad-midstate ‖ inner)     (always exactly one block)
// so lanes with the same inner block count compress in lockstep, and the
// outer finalization batches perfectly across every lane.
//
// Three kernels behind the crypto layer's usual runtime dispatch:
//   * SHA-NI, two interleaved lanes (hides sha256rnds2 latency);
//   * AVX2, eight transposed lanes (one SIMD SHA-256 round does 8 lanes);
//   * portable single-lane fallback (the same compressor Sha256 uses).
// All three are the same FIPS 180-4 function, bit for bit; impl selection
// can be forced for tests/benches via set_impl().
//
// The protocol hot paths that hold whole inboxes of edge MACs
// (Network::receive_valid, the level-parallel phase drivers' buffered
// sends) are the intended callers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/mac.h"
#include "util/bytes.h"

namespace vmat {

class MacBatch {
 public:
  enum class Impl : std::uint8_t {
    kAuto = 0,  ///< pick the widest kernel the CPU supports
    kScalar,    ///< one lane at a time (portable fallback)
    kShaNiX2,   ///< two interleaved SHA-NI lanes
    kAvx2X8,    ///< eight transposed AVX2 lanes
  };

  /// Queue one lane. The message bytes must stay alive and unchanged until
  /// compute() returns (inbox payload spans and encoded frames both
  /// qualify). Returns the lane index.
  std::size_t add(const MacContext& context,
                  std::span<const std::uint8_t> message);

  [[nodiscard]] std::size_t size() const noexcept { return lanes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return lanes_.empty(); }

  /// Drop all queued lanes (keeps scratch capacity).
  void clear() noexcept;

  /// Compute every queued lane; results become available through macs().
  void compute();

  /// Truncated tags, one per lane in add() order. Valid until the next
  /// clear()/add()/compute().
  [[nodiscard]] std::span<const Mac> macs() const noexcept { return macs_; }

  /// Force a kernel process-wide (tests/benches); kAuto restores runtime
  /// dispatch. Unsupported choices silently fall back at compute() time.
  static void set_impl(Impl impl) noexcept;

  /// The kernel compute() would use right now, after dispatch/fallback.
  [[nodiscard]] static Impl active_impl() noexcept;

 private:
  struct Lane {
    const HmacKeyState* state;
    const std::uint8_t* message;
    std::size_t length;
  };

  std::vector<Lane> lanes_;
  std::vector<Mac> macs_;
  // Scratch reused across compute() calls: padded inner streams, per-lane
  // running states, per-lane block offsets/counts, block-count ordering.
  std::vector<std::uint8_t> inner_pad_;
  std::vector<std::uint8_t> outer_pad_;
  std::vector<std::uint32_t> states_;   // 8 words per lane
  std::vector<std::size_t> offsets_;    // byte offset of each lane's stream
  std::vector<std::size_t> nblocks_;    // inner block count per lane
  std::vector<std::uint32_t> order_;    // lane ids grouped by block count
};

}  // namespace vmat
