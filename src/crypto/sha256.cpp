#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VMAT_SHA_NI_POSSIBLE 1
#endif

namespace vmat {
namespace sha256_detail {

const std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace sha256_detail

namespace {

const std::uint32_t (&kK)[64] = sha256_detail::kRoundConstants;

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

#ifdef VMAT_SHA_NI_POSSIBLE
// Hardware compression via the SHA extensions, selected at runtime so the
// binary still runs on CPUs without them. Same FIPS 180-4 function as the
// scalar path below, bit for bit.
__attribute__((target("sha,sse4.1,ssse3"))) void process_block_shani(
    std::uint32_t h[8], const std::uint8_t* block) noexcept {
  const __m128i kBswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {ABCD, EFGH} into the {ABEF, CDGH} layout sha256rnds2 wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;

  __m128i w[4];
  for (int i = 0; i < 4; ++i)
    w[i] = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * i)),
        kBswap);

  for (int i = 0; i < 16; ++i) {
    if (i >= 4) {
      // Message-schedule recurrence over four-word vectors: the slot being
      // overwritten is W[4(i-4)..], and (i+1)&3, (i+2)&3, (i+3)&3 address
      // the i-3, i-2, i-1 vectors.
      w[i & 3] = _mm_sha256msg2_epu32(
          _mm_add_epi32(_mm_sha256msg1_epu32(w[i & 3], w[(i + 1) & 3]),
                        _mm_alignr_epi8(w[(i + 3) & 3], w[(i + 2) & 3], 4)),
          w[(i + 3) & 3]);
    }
    const __m128i msg = _mm_add_epi32(
        w[i & 3],
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * i])));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 =
        _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  }

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Back to word order.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

bool shani_supported() noexcept {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}
#endif  // VMAT_SHA_NI_POSSIBLE

void compress_block_scalar(std::uint32_t* h_, const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

}  // namespace

namespace sha256_detail {

bool shani_available() noexcept {
#ifdef VMAT_SHA_NI_POSSIBLE
  return shani_supported();
#else
  return false;
#endif
}

void compress_blocks(std::uint32_t* h, const std::uint8_t* blocks,
                     std::size_t n) noexcept {
#ifdef VMAT_SHA_NI_POSSIBLE
  static const bool use_shani = shani_supported();
  if (use_shani) {
    for (std::size_t b = 0; b < n; ++b)
      process_block_shani(h, blocks + 64 * b);
    return;
  }
#endif
  for (std::size_t b = 0; b < n; ++b)
    compress_block_scalar(h, blocks + 64 * b);
}

}  // namespace sha256_detail

Sha256::Sha256() noexcept {
  static constexpr std::uint32_t init[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                            0xa54ff53a, 0x510e527f, 0x9b05688c,
                                            0x1f83d9ab, 0x5be0cd19};
  std::memcpy(h_, init, sizeof h_);
}

Sha256::Sha256(const Sha256Midstate& m) noexcept : length_(m.length) {
  std::memcpy(h_, m.h.data(), sizeof h_);
}

Sha256Midstate Sha256::midstate() const noexcept {
  Sha256Midstate m;
  std::memcpy(m.h.data(), h_, sizeof h_);
  m.length = length_;
  return m;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  sha256_detail::compress_blocks(h_, block, 1);
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) noexcept {
  // An empty span may carry data() == nullptr; memcpy(_, nullptr, 0) is
  // undefined behaviour (UBSan: nonnull attribute), so return before any
  // pointer arithmetic on data.data().
  if (data.empty()) return *this;
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
  return *this;
}

Digest Sha256::finish() noexcept {
  const std::uint64_t bit_length = length_ * 8;
  // Assemble the padding directly in the block buffer: 0x80, zeros up to
  // offset 56 (mod 64), then the 8-byte big-endian bit length.
  buffer_[buffered_] = 0x80;
  if (buffered_ < 56) {
    std::memset(buffer_ + buffered_ + 1, 0, 55 - buffered_);
  } else {
    std::memset(buffer_ + buffered_ + 1, 0, 63 - buffered_);
    process_block(buffer_);
    std::memset(buffer_, 0, 56);
  }
  for (int i = 0; i < 8; ++i)
    buffer_[56 + i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  process_block(buffer_);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    const std::uint32_t be = __builtin_bswap32(h_[i]);
    std::memcpy(out.data() + 4 * i, &be, 4);
  }
  return out;
}

Digest Sha256::hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace vmat
