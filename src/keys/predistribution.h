// Network-wide key predistribution state.
//
// Owns the global pool, every sensor's ring seed and sensor key, the
// key-index -> holders relation, and the pairwise edge-key relation. The
// trusted base station holds one of these; each sensor only ever sees its
// own ring and sensor key (enforced by the node/adversary interfaces, not
// here).
//
// Large-n memory diet: rings are NOT materialized eagerly. The object
// stores one 8-byte ring seed per node and re-derives a ring's sorted
// index set on demand (KeyRing::derive_indices is deterministic), keeping
// a small LRU of materialized KeyRing objects for the serial call sites
// that want the full object. The key-index -> holders map is likewise
// derived on demand (and cached per queried index): clean executions never
// ask for holders, so they no longer pay n·r entries of eager map.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "keys/key_pool.h"
#include "keys/key_ring.h"
#include "util/ids.h"

namespace vmat {

struct KeyMaterialSpec {
  std::uint32_t pool_size{1000};   ///< u — paper's evaluation uses 100,000
  std::uint32_t ring_size{60};     ///< r — paper's evaluation uses 250
  std::uint64_t seed{1};           ///< master seed for pool + ring seeds
};

class Predistribution {
 public:
  /// Set up pool and ring seeds for `node_count` sensors (ids
  /// 0..node_count-1; id 0 is the base station, which gets a ring too so
  /// it can terminate audit trails).
  Predistribution(std::uint32_t node_count, const KeyMaterialSpec& config);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return node_count_;
  }
  [[nodiscard]] const KeyMaterialSpec& config() const noexcept { return config_; }
  [[nodiscard]] const KeyPool& pool() const noexcept { return pool_; }

  /// A node's materialized ring, served from a small LRU (the
  /// provisioning seam the eager-ring lint rule guards). The reference
  /// stays valid until at least kRingCacheCapacity - 1 *other* distinct
  /// rings have been requested — callers may hold two rings at once (edge
  /// key merges do), never more. NOT thread-safe (LRU mutation); parallel
  /// sections use ring_contains()/derive-based paths instead.
  [[nodiscard]] const KeyRing& ring(NodeId node) const;

  /// The deterministic seed node's ring derives from (what the paper's
  /// base station announces; all the diet keeps resident per node).
  [[nodiscard]] std::uint64_t ring_seed(NodeId node) const;

  /// Ring membership without touching the LRU: re-derives the node's index
  /// set into a per-thread memo (one derivation per distinct node per
  /// thread in a row, then O(log r) per query). Safe to call concurrently.
  [[nodiscard]] bool ring_contains(NodeId node, KeyIndex index) const;

  /// The unique symmetric key a sensor shares with the base station.
  [[nodiscard]] SymmetricKey sensor_key(NodeId node) const;

  /// Edge key (smallest shared pool index) between two sensors, if any.
  [[nodiscard]] std::optional<KeyIndex> edge_key(NodeId a, NodeId b) const;

  /// Pool key material for an index.
  [[nodiscard]] SymmetricKey pool_key(KeyIndex index) const {
    return pool_.key(index);
  }

  /// All sensors holding `index` (ring membership or path-key endpoint),
  /// sorted by id — "the base station knows the exact set of the t sensors
  /// holding K_e" (Section VI-A, Figure 6 Step 1). Derived on first query
  /// for a pool index (O(n) ring re-derivations) and cached; pinpointing
  /// and revocation only ever ask about the handful of keys an execution
  /// actually burns. NOT thread-safe (cache mutation); serial points only.
  [[nodiscard]] std::span<const NodeId> holders(KeyIndex index) const;

  // --- path keys (Eschenauer-Gligor path-key establishment) ---
  //
  // Neighbor pairs without a shared ring key can be given a dedicated
  // pairwise key through a base-station-mediated exchange. Path keys get
  // indices above the pool range and have exactly two holders.

  /// Register (or return the existing) path key for the pair {a, b}.
  KeyIndex register_path_key(NodeId a, NodeId b);

  [[nodiscard]] bool is_path_key(KeyIndex index) const noexcept {
    return index != kNoKey && index.value >= config_.pool_size;
  }

  /// The established path key between a and b, if any.
  [[nodiscard]] std::optional<KeyIndex> path_key_between(NodeId a,
                                                         NodeId b) const;

  /// Does this node hold the key (ring membership or path-key endpoint)?
  /// Thread-safe: ring membership goes through ring_contains(), path keys
  /// through the read-only per-node list.
  [[nodiscard]] bool node_holds(NodeId node, KeyIndex index) const;

  /// Every key index the node holds, sorted ascending: its ring followed by
  /// its path keys. This is the sequence the Figure 5 binary search runs
  /// over.
  [[nodiscard]] std::vector<KeyIndex> keys_of(NodeId node) const;

  /// Key material for any index (pool or path key).
  [[nodiscard]] SymmetricKey key_material(KeyIndex index) const;

  /// Cached MAC schedule for any key index (pool or path key). The hot-path
  /// counterpart of key_material(): first use derives the key and its HMAC
  /// pad midstates, every later MAC under the same index skips both. Lazily
  /// mutated; NOT thread-safe (each concurrent trial owns its Network).
  [[nodiscard]] const MacContext& mac_context(KeyIndex index) const;

  /// Cached MAC schedule for a sensor's base-station key — same contract as
  /// mac_context() but keyed by sensor_key(node). Serial call sites only
  /// (base-station verification); the sharded phase drivers build stack
  /// MacContexts from sensor_key() instead, so this cache stays O(queried
  /// sensors), not O(n).
  [[nodiscard]] const MacContext& sensor_mac_context(NodeId node) const;

  /// Derive the MAC contexts for every established path key, so a parallel
  /// section that reads mac_context() on path keys sees only cache hits.
  /// Pool-key contexts are warmed per used edge key by
  /// Network::warm_crypto_caches(), which knows which indices the edges
  /// actually use.
  void warm_path_contexts() const;

 private:
  /// Materialized-ring LRU capacity. Must be >= 2 (edge-key merges hold
  /// two rings at once); 64 keeps every serial cascade loop in cache while
  /// bounding resident ring state to LRU × (r indices + pool/8 bitmap).
  static constexpr std::size_t kRingCacheCapacity = 64;

  struct RingCacheEntry {
    std::uint32_t node{0};
    std::uint64_t last_used{0};
    std::unique_ptr<KeyRing> ring;
  };

  KeyMaterialSpec config_;
  KeyPool pool_;
  std::uint32_t node_count_;
  std::vector<std::uint64_t> ring_seeds_;  // indexed by node id — 8 B/node
  // LRU of materialized rings (linear scan: capacity is tiny and ring()
  // is off the per-frame hot path).
  mutable std::vector<RingCacheEntry> ring_cache_;
  mutable std::uint64_t ring_clock_{0};
  // Holder lists derived on demand, cached per queried pool index; path
  // keys keep their two-element lists here too (written at registration).
  mutable std::unordered_map<KeyIndex, std::vector<NodeId>> holders_cache_;
  std::vector<std::vector<std::pair<NodeId, KeyIndex>>> path_keys_;  // by node
  std::uint32_t next_path_index_;
  // Flat lazy slot tables (no hashing on the hot path): path contexts are
  // indexed by (index - pool_size), sensor contexts by node id. unique_ptr
  // keeps handed-out references stable across register_path_key() growth.
  mutable std::vector<std::unique_ptr<MacContext>> path_contexts_;
  mutable std::unordered_map<std::uint32_t, std::unique_ptr<MacContext>>
      sensor_contexts_;
};

}  // namespace vmat
