// Network-wide key predistribution state.
//
// Owns the global pool, every sensor's ring and sensor key, the
// key-index -> holders map, and the pairwise edge-key relation. The trusted
// base station holds one of these; each sensor only ever sees its own ring
// and sensor key (enforced by the node/adversary interfaces, not here).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "keys/key_pool.h"
#include "keys/key_ring.h"
#include "util/ids.h"

namespace vmat {

struct KeyMaterialSpec {
  std::uint32_t pool_size{1000};   ///< u — paper's evaluation uses 100,000
  std::uint32_t ring_size{60};     ///< r — paper's evaluation uses 250
  std::uint64_t seed{1};           ///< master seed for pool + ring seeds
};

class Predistribution {
 public:
  /// Set up pool and rings for `node_count` sensors (ids 0..node_count-1;
  /// id 0 is the base station, which gets a ring too so it can terminate
  /// audit trails).
  Predistribution(std::uint32_t node_count, const KeyMaterialSpec& config);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }
  [[nodiscard]] const KeyMaterialSpec& config() const noexcept { return config_; }
  [[nodiscard]] const KeyPool& pool() const noexcept { return pool_; }

  [[nodiscard]] const KeyRing& ring(NodeId node) const;

  /// The unique symmetric key a sensor shares with the base station.
  [[nodiscard]] SymmetricKey sensor_key(NodeId node) const;

  /// Edge key (smallest shared pool index) between two sensors, if any.
  [[nodiscard]] std::optional<KeyIndex> edge_key(NodeId a, NodeId b) const;

  /// Pool key material for an index.
  [[nodiscard]] SymmetricKey pool_key(KeyIndex index) const {
    return pool_.key(index);
  }

  /// All sensors holding `index` (ring membership or path-key endpoint),
  /// sorted by id — "the base station knows the exact set of the t sensors
  /// holding K_e" (Section VI-A, Figure 6 Step 1).
  [[nodiscard]] std::span<const NodeId> holders(KeyIndex index) const;

  // --- path keys (Eschenauer-Gligor path-key establishment) ---
  //
  // Neighbor pairs without a shared ring key can be given a dedicated
  // pairwise key through a base-station-mediated exchange. Path keys get
  // indices above the pool range and have exactly two holders.

  /// Register (or return the existing) path key for the pair {a, b}.
  KeyIndex register_path_key(NodeId a, NodeId b);

  [[nodiscard]] bool is_path_key(KeyIndex index) const noexcept {
    return index != kNoKey && index.value >= config_.pool_size;
  }

  /// The established path key between a and b, if any.
  [[nodiscard]] std::optional<KeyIndex> path_key_between(NodeId a,
                                                         NodeId b) const;

  /// Does this node hold the key (ring membership or path-key endpoint)?
  [[nodiscard]] bool node_holds(NodeId node, KeyIndex index) const;

  /// Every key index the node holds, sorted ascending: its ring followed by
  /// its path keys. This is the sequence the Figure 5 binary search runs
  /// over.
  [[nodiscard]] std::vector<KeyIndex> keys_of(NodeId node) const;

  /// Key material for any index (pool or path key).
  [[nodiscard]] SymmetricKey key_material(KeyIndex index) const;

  /// Cached MAC schedule for any key index (pool or path key). The hot-path
  /// counterpart of key_material(): first use derives the key and its HMAC
  /// pad midstates, every later MAC under the same index skips both. Lazily
  /// mutated; NOT thread-safe (each concurrent trial owns its Network).
  [[nodiscard]] const MacContext& mac_context(KeyIndex index) const;

  /// Cached MAC schedule for a sensor's base-station key — same contract as
  /// mac_context() but keyed by sensor_key(node).
  [[nodiscard]] const MacContext& sensor_mac_context(NodeId node) const;

  /// Derive every MAC context honest code can reach — one per held key
  /// (ring or path) plus every sensor key — so the lazy caches behind
  /// mac_context()/sensor_mac_context() are read-only afterwards. The
  /// sharded phase drivers call this (via Network::warm_crypto_caches())
  /// at a serial point before fanning out.
  void warm_mac_contexts() const;

 private:
  KeyMaterialSpec config_;
  KeyPool pool_;
  std::vector<KeyRing> rings_;  // indexed by node id
  std::unordered_map<KeyIndex, std::vector<NodeId>> holders_;
  std::vector<std::vector<std::pair<NodeId, KeyIndex>>> path_keys_;  // by node
  std::uint32_t next_path_index_;
  // Flat lazy slot tables (no hashing on the hot path): path contexts are
  // indexed by (index - pool_size), sensor contexts by node id. unique_ptr
  // keeps handed-out references stable across register_path_key() growth.
  mutable std::vector<std::unique_ptr<MacContext>> path_contexts_;
  mutable std::vector<std::unique_ptr<MacContext>> sensor_contexts_;
};

}  // namespace vmat
