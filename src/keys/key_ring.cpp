#include "keys/key_ring.h"

#include <algorithm>

#include "util/random.h"

namespace vmat {

KeyRing::KeyRing(std::uint64_t ring_seed, std::uint32_t ring_size,
                 std::uint32_t pool_size)
    : seed_(ring_seed) {
  Rng rng(ring_seed);
  const auto raw = rng.sample_without_replacement(pool_size, ring_size);
  indices_.reserve(raw.size());
  for (std::uint32_t v : raw) indices_.push_back(KeyIndex{v});
  if (pool_size <= kBitmapPoolLimit) {
    bits_.assign((pool_size + 63) / 64, 0);
    for (KeyIndex k : indices_) bits_[k.value >> 6] |= 1ULL << (k.value & 63);
  }
}

bool KeyRing::contains(KeyIndex k) const noexcept {
  if (!bits_.empty()) {
    const std::uint32_t word = k.value >> 6;
    if (word >= bits_.size()) return false;
    return (bits_[word] >> (k.value & 63)) & 1ULL;
  }
  return std::binary_search(indices_.begin(), indices_.end(), k);
}

std::optional<std::size_t> KeyRing::position_of(KeyIndex k) const noexcept {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), k);
  if (it == indices_.end() || *it != k) return std::nullopt;
  return static_cast<std::size_t>(it - indices_.begin());
}

std::optional<KeyIndex> KeyRing::shared_key(const KeyRing& other) const {
  auto a = indices_.begin();
  auto b = other.indices_.begin();
  while (a != indices_.end() && b != other.indices_.end()) {
    if (*a == *b) return *a;
    if (*a < *b)
      ++a;
    else
      ++b;
  }
  return std::nullopt;
}

std::size_t KeyRing::overlap(const KeyRing& other) const noexcept {
  std::size_t count = 0;
  auto a = indices_.begin();
  auto b = other.indices_.begin();
  while (a != indices_.end() && b != other.indices_.end()) {
    if (*a == *b) {
      ++count;
      ++a;
      ++b;
    } else if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return count;
}

}  // namespace vmat
