#include "keys/key_ring.h"

#include <algorithm>

#include "util/random.h"

namespace vmat {

KeyRing::KeyRing(std::uint64_t ring_seed, std::uint32_t ring_size,
                 std::uint32_t pool_size)
    : seed_(ring_seed) {
  derive_indices(ring_seed, ring_size, pool_size, indices_);
  if (pool_size <= kBitmapPoolLimit) {
    bits_.assign((pool_size + 63) / 64, 0);
    for (KeyIndex k : indices_) bits_[k.value >> 6] |= 1ULL << (k.value & 63);
  }
}

void KeyRing::derive_indices(std::uint64_t ring_seed, std::uint32_t ring_size,
                             std::uint32_t pool_size,
                             std::vector<KeyIndex>& out) {
  out.clear();
  out.reserve(ring_size);
  // Floyd's sampling with the identical draw sequence as
  // Rng::sample_without_replacement: at step j it draws below(j+1) and
  // inserts either t or j depending only on whether t was already chosen.
  // A zeroed scratch bitmap answers that membership question; bits are
  // cleared again afterwards so the (thread_local) scratch stays all-zero
  // between calls without an O(pool) wipe.
  thread_local std::vector<std::uint64_t> scratch;
  const std::size_t words = (static_cast<std::size_t>(pool_size) + 63) / 64;
  if (scratch.size() < words) scratch.resize(words, 0);
  Rng rng(ring_seed);
  for (std::uint32_t j = pool_size - ring_size; j < pool_size; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.below(j + 1));
    const bool taken = (scratch[t >> 6] >> (t & 63)) & 1ULL;
    const std::uint32_t pick = taken ? j : t;
    scratch[pick >> 6] |= 1ULL << (pick & 63);
    out.push_back(KeyIndex{pick});
  }
  for (const KeyIndex k : out)
    scratch[k.value >> 6] &= ~(1ULL << (k.value & 63));
  std::sort(out.begin(), out.end());
}

void KeyRing::derive_into_bits(std::uint64_t ring_seed,
                               std::uint32_t ring_size,
                               std::uint32_t pool_size, std::uint64_t* bits) {
  Rng rng(ring_seed);
  for (std::uint32_t j = pool_size - ring_size; j < pool_size; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.below(j + 1));
    const bool taken = (bits[t >> 6] >> (t & 63)) & 1ULL;
    const std::uint32_t pick = taken ? j : t;
    bits[pick >> 6] |= 1ULL << (pick & 63);
  }
}

bool KeyRing::contains(KeyIndex k) const noexcept {
  if (!bits_.empty()) {
    const std::uint32_t word = k.value >> 6;
    if (word >= bits_.size()) return false;
    return (bits_[word] >> (k.value & 63)) & 1ULL;
  }
  return std::binary_search(indices_.begin(), indices_.end(), k);
}

std::optional<std::size_t> KeyRing::position_of(KeyIndex k) const noexcept {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), k);
  if (it == indices_.end() || *it != k) return std::nullopt;
  return static_cast<std::size_t>(it - indices_.begin());
}

std::optional<KeyIndex> KeyRing::shared_key(const KeyRing& other) const {
  auto a = indices_.begin();
  auto b = other.indices_.begin();
  while (a != indices_.end() && b != other.indices_.end()) {
    if (*a == *b) return *a;
    if (*a < *b)
      ++a;
    else
      ++b;
  }
  return std::nullopt;
}

std::size_t KeyRing::overlap(const KeyRing& other) const noexcept {
  std::size_t count = 0;
  auto a = indices_.begin();
  auto b = other.indices_.begin();
  while (a != indices_.end() && b != other.indices_.end()) {
    if (*a == *b) {
      ++count;
      ++a;
      ++b;
    } else if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return count;
}

}  // namespace vmat
