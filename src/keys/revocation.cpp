#include "keys/revocation.h"

#include <stdexcept>

#include "sim/snapshot.h"

namespace vmat {

namespace {
constexpr std::uint32_t kRevocationSection = 0x5245564f;  // "REVO"
}  // namespace

RevocationRegistry::RevocationRegistry(const Predistribution* keys,
                                       std::uint32_t threshold)
    : keys_(keys), threshold_(threshold) {
  if (keys == nullptr)
    throw std::invalid_argument("RevocationRegistry: null predistribution");
}

void RevocationRegistry::mark_key(KeyIndex key, RevocationCause cause,
                                  std::vector<NodeId>& newly) {
  if (!revoked_keys_.insert(key).second) return;  // already revoked
  events_.push_back({key, cause});
  tracer_.key_revoked(key, cause == RevocationCause::kPinpointed);
  // Only individually pinpointed keys witness adversarial use. A bulk
  // ring-seed revocation proves nothing about the *other* holders of the
  // ring's keys, so it must not advance their θ counters — otherwise one
  // sensor revocation could avalanche honest high-overlap rings past θ,
  // which the Figure 7 model rules out.
  if (threshold_ == 0 || cause != RevocationCause::kPinpointed) return;
  for (NodeId holder : keys_->holders(key)) {
    if (revoked_sensors_.contains(holder)) continue;
    const std::uint32_t c = ++counts_[holder];
    if (c >= threshold_) mark_sensor(holder, newly);
  }
}

void RevocationRegistry::mark_sensor(NodeId node, std::vector<NodeId>& newly) {
  if (!revoked_sensors_.insert(node).second) return;
  revoked_sensor_order_.push_back(node);
  newly.push_back(node);
  tracer_.sensor_revoked(node);
  // Ring seed announcement plus any path keys the sensor was an endpoint
  // of (the peer drops them once the sensor is revoked).
  for (KeyIndex k : keys_->keys_of(node))
    mark_key(k, RevocationCause::kRingSeed, newly);
}

std::vector<NodeId> RevocationRegistry::revoke_key(KeyIndex key) {
  std::vector<NodeId> newly;
  mark_key(key, RevocationCause::kPinpointed, newly);
  return newly;
}

std::vector<NodeId> RevocationRegistry::revoke_sensor(NodeId node) {
  std::vector<NodeId> newly;
  mark_sensor(node, newly);
  return newly;
}

std::uint32_t RevocationRegistry::revoked_count(NodeId node) const noexcept {
  const auto it = counts_.find(node);
  return it == counts_.end() ? 0 : it->second;
}

void RevocationRegistry::snapshot_save(SnapshotWriter& w) const {
  w.section(kRevocationSection);
  w.pod(static_cast<std::uint64_t>(revoked_keys_.size()));
  for (const KeyIndex k : revoked_keys_) w.pod(k);
  w.pod(static_cast<std::uint64_t>(revoked_sensors_.size()));
  for (const NodeId s : revoked_sensors_) w.pod(s);
  w.vec_pod(revoked_sensor_order_);
  w.pod(static_cast<std::uint64_t>(counts_.size()));
  for (const auto& [node, count] : counts_) {
    w.pod(node);
    w.pod(count);
  }
  w.vec_pod(events_);
}

void RevocationRegistry::snapshot_load(SnapshotReader& r) {
  r.section(kRevocationSection);
  revoked_keys_.clear();
  const auto key_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  for (std::size_t i = 0; i < key_count; ++i)
    revoked_keys_.insert(r.pod<KeyIndex>());
  revoked_sensors_.clear();
  const auto sensor_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  for (std::size_t i = 0; i < sensor_count; ++i)
    revoked_sensors_.insert(r.pod<NodeId>());
  r.vec_pod(revoked_sensor_order_);
  counts_.clear();
  const auto count_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  for (std::size_t i = 0; i < count_count; ++i) {
    const auto node = r.pod<NodeId>();
    counts_[node] = r.pod<std::uint32_t>();
  }
  r.vec_pod(events_);
}

std::size_t RevocationRegistry::pinpointed_key_count() const noexcept {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.cause == RevocationCause::kPinpointed) ++n;
  return n;
}

}  // namespace vmat
