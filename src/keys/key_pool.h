// Global symmetric key pool for Eschenauer-Gligor key predistribution [7].
//
// All u keys are derived deterministically from one pool seed, so the
// trusted base station can reconstruct any key from its index, and a sensor
// ring is fully described by (node id, ring seed) — which is what makes
// "announce the ring seed" a complete full-sensor revocation message
// (Section VI-A, Figure 5 Step 7).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/mac.h"
#include "util/ids.h"

namespace vmat {

class KeyPool {
 public:
  KeyPool(std::uint32_t size, std::uint64_t seed);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The pool key at a given index. Throws if index >= size().
  [[nodiscard]] SymmetricKey key(KeyIndex index) const;

  /// Cached MAC schedule for a pool key: derives the key and its HMAC pad
  /// midstates on first use, then hands out the same context, so repeated
  /// MACs under one pool key skip both the key derivation hash and the pad
  /// compressions. The cache is a flat per-index slot table (one pointer
  /// load on the hot path, no hashing); it is lazily mutated and NOT
  /// thread-safe until warmed — the trial engine gives each concurrent
  /// trial its own KeyPool, and the sharded phase drivers warm it first.
  [[nodiscard]] const MacContext& mac_context(KeyIndex index) const;

 private:
  std::uint32_t size_;
  std::uint64_t seed_;
  // Indexed by pool index; unique_ptr keeps handed-out references stable.
  mutable std::vector<std::unique_ptr<MacContext>> contexts_;
};

}  // namespace vmat
