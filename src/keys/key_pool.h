// Global symmetric key pool for Eschenauer-Gligor key predistribution [7].
//
// All u keys are derived deterministically from one pool seed, so the
// trusted base station can reconstruct any key from its index, and a sensor
// ring is fully described by (node id, ring seed) — which is what makes
// "announce the ring seed" a complete full-sensor revocation message
// (Section VI-A, Figure 5 Step 7).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "crypto/mac.h"
#include "util/ids.h"

namespace vmat {

class KeyPool {
 public:
  KeyPool(std::uint32_t size, std::uint64_t seed);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The pool key at a given index. Throws if index >= size().
  [[nodiscard]] SymmetricKey key(KeyIndex index) const;

  /// Cached MAC schedule for a pool key: derives the key and its HMAC pad
  /// midstates on first use, then hands out the same context, so repeated
  /// MACs under one pool key skip both the key derivation hash and the pad
  /// compressions. The cache is lazily mutated and NOT thread-safe; the
  /// trial engine gives each concurrent trial its own KeyPool.
  [[nodiscard]] const MacContext& mac_context(KeyIndex index) const;

 private:
  std::uint32_t size_;
  std::uint64_t seed_;
  mutable std::unordered_map<std::uint32_t, MacContext> contexts_;
};

}  // namespace vmat
