#include "keys/key_pool.h"

#include <stdexcept>

namespace vmat {

KeyPool::KeyPool(std::uint32_t size, std::uint64_t seed)
    : size_(size), seed_(seed) {
  if (size == 0) throw std::invalid_argument("KeyPool: empty pool");
}

SymmetricKey KeyPool::key(KeyIndex index) const {
  if (index.value >= size_) throw std::out_of_range("KeyPool::key");
  return derive_key("vmat.pool-key", seed_, index.value);
}

const MacContext& KeyPool::mac_context(KeyIndex index) const {
  const auto it = contexts_.find(index.value);
  if (it != contexts_.end()) return it->second;
  return contexts_.emplace(index.value, MacContext(key(index))).first->second;
}

}  // namespace vmat
