#include "keys/key_pool.h"

#include <memory>
#include <stdexcept>

namespace vmat {

KeyPool::KeyPool(std::uint32_t size, std::uint64_t seed)
    : size_(size), seed_(seed) {
  if (size == 0) throw std::invalid_argument("KeyPool: empty pool");
  contexts_.resize(size);
}

SymmetricKey KeyPool::key(KeyIndex index) const {
  if (index.value >= size_) throw std::out_of_range("KeyPool::key");
  return derive_key("vmat.pool-key", seed_, index.value);
}

const MacContext& KeyPool::mac_context(KeyIndex index) const {
  if (index.value >= size_) throw std::out_of_range("KeyPool::mac_context");
  auto& slot = contexts_[index.value];
  if (!slot) slot = std::make_unique<MacContext>(key(index));
  return *slot;
}

}  // namespace vmat
