// A sensor's key ring: r distinct key indices drawn uniformly from the
// global pool by a per-sensor seed (Eschenauer-Gligor [7]).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/ids.h"

namespace vmat {

class KeyRing {
 public:
  /// Draw `ring_size` distinct indices from [0, pool_size) using the given
  /// ring seed. Deterministic: the base station reconstructs the same ring
  /// from the same seed.
  KeyRing(std::uint64_t ring_seed, std::uint32_t ring_size,
          std::uint32_t pool_size);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }

  /// Sorted ascending, as required by the binary search in Figure 5
  /// ("let z_1 < z_2 < ... < z_r be the index of the r edge keys").
  [[nodiscard]] std::span<const KeyIndex> indices() const noexcept {
    return indices_;
  }

  [[nodiscard]] bool contains(KeyIndex k) const noexcept;

  /// Position of key k within the sorted ring, if present.
  [[nodiscard]] std::optional<std::size_t> position_of(KeyIndex k) const noexcept;

  /// Smallest key index shared with another ring, if any — the edge key for
  /// a pair of neighboring sensors.
  [[nodiscard]] std::optional<KeyIndex> shared_key(const KeyRing& other) const;

  /// Number of shared key indices with `other` (used by threshold-θ
  /// mis-revocation analysis, Figure 7).
  [[nodiscard]] std::size_t overlap(const KeyRing& other) const noexcept;

 private:
  /// Pool sizes up to this bound get a membership bitmap (≤ 1 KB per ring)
  /// so contains() is one bit test instead of a binary search; larger pools
  /// fall back to searching the sorted index list.
  static constexpr std::uint32_t kBitmapPoolLimit = 8192;

  std::uint64_t seed_;
  std::vector<KeyIndex> indices_;  // sorted
  std::vector<std::uint64_t> bits_;  // empty when pool > kBitmapPoolLimit
};

}  // namespace vmat
