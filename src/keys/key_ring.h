// A sensor's key ring: r distinct key indices drawn uniformly from the
// global pool by a per-sensor seed (Eschenauer-Gligor [7]).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/ids.h"

namespace vmat {

class KeyRing {
 public:
  /// Draw `ring_size` distinct indices from [0, pool_size) using the given
  /// ring seed. Deterministic: the base station reconstructs the same ring
  /// from the same seed.
  KeyRing(std::uint64_t ring_seed, std::uint32_t ring_size,
          std::uint32_t pool_size);

  /// Recompute the sorted index set a (seed, ring_size, pool_size) triple
  /// defines, without materializing a KeyRing. Bit-identical to the ring
  /// the constructor builds: Floyd's algorithm draws the same value at
  /// step j regardless of the membership structure, so the thread_local
  /// scratch bitmap used here yields the exact set
  /// Rng::sample_without_replacement produces. This is the single source
  /// of truth the lazy Predistribution paths re-derive rings through;
  /// safe to call concurrently (per-thread scratch, no shared state).
  static void derive_indices(std::uint64_t ring_seed, std::uint32_t ring_size,
                             std::uint32_t pool_size,
                             std::vector<KeyIndex>& out);

  /// derive_indices() straight into a caller-owned zeroed bitmap of
  /// (pool_size+63)/64 words — the membership set without the sorted list
  /// (no allocation, no sort). The bulk edge-key warm uses one row per
  /// node; same draw-sequence-identity argument as derive_indices().
  static void derive_into_bits(std::uint64_t ring_seed,
                               std::uint32_t ring_size,
                               std::uint32_t pool_size, std::uint64_t* bits);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }

  /// Sorted ascending, as required by the binary search in Figure 5
  /// ("let z_1 < z_2 < ... < z_r be the index of the r edge keys").
  [[nodiscard]] std::span<const KeyIndex> indices() const noexcept {
    return indices_;
  }

  [[nodiscard]] bool contains(KeyIndex k) const noexcept;

  /// Position of key k within the sorted ring, if present.
  [[nodiscard]] std::optional<std::size_t> position_of(KeyIndex k) const noexcept;

  /// Smallest key index shared with another ring, if any — the edge key for
  /// a pair of neighboring sensors.
  [[nodiscard]] std::optional<KeyIndex> shared_key(const KeyRing& other) const;

  /// Number of shared key indices with `other` (used by threshold-θ
  /// mis-revocation analysis, Figure 7).
  [[nodiscard]] std::size_t overlap(const KeyRing& other) const noexcept;

 private:
  /// Pool sizes up to this bound get a membership bitmap (pool/8 bytes per
  /// materialized ring) so contains() is one bit test instead of a binary
  /// search; larger pools fall back to searching the sorted index list.
  /// The bound covers the paper's evaluation pool (u = 100,000) with room
  /// to spare: since the large-n diet keeps only a small LRU of
  /// materialized rings, the bitmap cost is LRU-capacity × pool/8 bytes
  /// (≈ 8 MB at u = 2^20 with 64 cached rings), not n × pool/8, so there
  /// is no longer a reason to degrade contains() on big pools. The
  /// micro_crypto ring-contains rows measure both sides of the bound.
  static constexpr std::uint32_t kBitmapPoolLimit = 1u << 20;

  std::uint64_t seed_;
  std::vector<KeyIndex> indices_;  // sorted
  std::vector<std::uint64_t> bits_;  // empty when pool > kBitmapPoolLimit
};

}  // namespace vmat
