#include "keys/predistribution.h"

#include <algorithm>
#include <stdexcept>

#include "util/random.h"

namespace vmat {

Predistribution::Predistribution(std::uint32_t node_count,
                                 const KeyMaterialSpec& config)
    : config_(config),
      pool_(config.pool_size, config.seed),
      path_keys_(node_count),
      next_path_index_(config.pool_size) {
  if (node_count == 0)
    throw std::invalid_argument("Predistribution: zero nodes");
  if (config.ring_size > config.pool_size)
    throw std::invalid_argument("Predistribution: ring larger than pool");

  rings_.reserve(node_count);
  std::uint64_t seed_state = config.seed ^ 0xabcdef12345678ULL;
  for (std::uint32_t id = 0; id < node_count; ++id) {
    const std::uint64_t ring_seed = splitmix64(seed_state);
    rings_.emplace_back(ring_seed, config.ring_size, config.pool_size);
    for (KeyIndex k : rings_.back().indices())
      holders_[k].push_back(NodeId{id});
  }
  // Holder lists are built in increasing id order, so they are sorted.
  sensor_contexts_.resize(node_count);
}

const KeyRing& Predistribution::ring(NodeId node) const {
  if (node.value >= rings_.size())
    throw std::out_of_range("Predistribution::ring");
  return rings_[node.value];
}

SymmetricKey Predistribution::sensor_key(NodeId node) const {
  if (node.value >= rings_.size())
    throw std::out_of_range("Predistribution::sensor_key");
  return derive_key("vmat.sensor-key", config_.seed, node.value);
}

std::optional<KeyIndex> Predistribution::edge_key(NodeId a, NodeId b) const {
  return ring(a).shared_key(ring(b));
}

std::span<const NodeId> Predistribution::holders(KeyIndex index) const {
  const auto it = holders_.find(index);
  if (it == holders_.end()) return {};
  return it->second;
}

KeyIndex Predistribution::register_path_key(NodeId a, NodeId b) {
  if (a.value >= rings_.size() || b.value >= rings_.size())
    throw std::out_of_range("register_path_key: bad node id");
  if (a == b) throw std::invalid_argument("register_path_key: same node");
  if (const auto existing = path_key_between(a, b)) return *existing;

  const KeyIndex index{next_path_index_++};
  path_keys_[a.value].emplace_back(b, index);
  path_keys_[b.value].emplace_back(a, index);
  auto& held_by = holders_[index];
  held_by = {std::min(a, b), std::max(a, b)};
  path_contexts_.resize(next_path_index_ - config_.pool_size);
  return index;
}

std::optional<KeyIndex> Predistribution::path_key_between(NodeId a,
                                                          NodeId b) const {
  if (a.value >= path_keys_.size()) return std::nullopt;
  for (const auto& [peer, index] : path_keys_[a.value])
    if (peer == b) return index;
  return std::nullopt;
}

bool Predistribution::node_holds(NodeId node, KeyIndex index) const {
  if (index == kNoKey) return false;
  if (!is_path_key(index)) return ring(node).contains(index);
  for (const auto& [peer, held] : path_keys_[node.value])
    if (held == index) return true;
  return false;
}

std::vector<KeyIndex> Predistribution::keys_of(NodeId node) const {
  std::vector<KeyIndex> out(ring(node).indices().begin(),
                            ring(node).indices().end());
  for (const auto& [peer, index] : path_keys_[node.value])
    out.push_back(index);
  std::sort(out.begin(), out.end());
  return out;
}

SymmetricKey Predistribution::key_material(KeyIndex index) const {
  if (!is_path_key(index)) return pool_.key(index);
  if (!holders_.contains(index))
    throw std::out_of_range("key_material: unknown path key");
  return derive_key("vmat.path-key", config_.seed, index.value);
}

const MacContext& Predistribution::mac_context(KeyIndex index) const {
  if (!is_path_key(index)) return pool_.mac_context(index);
  const std::size_t slot = index.value - config_.pool_size;
  if (slot >= path_contexts_.size())
    throw std::out_of_range("mac_context: unknown path key");
  auto& ctx = path_contexts_[slot];
  if (!ctx) ctx = std::make_unique<MacContext>(key_material(index));
  return *ctx;
}

void Predistribution::warm_mac_contexts() const {
  for (const auto& [index, held_by] : holders_) (void)mac_context(index);
  for (std::uint32_t id = 0; id < node_count(); ++id)
    (void)sensor_mac_context(NodeId{id});
}

const MacContext& Predistribution::sensor_mac_context(NodeId node) const {
  if (node.value >= sensor_contexts_.size())
    throw std::out_of_range("Predistribution::sensor_mac_context");
  auto& ctx = sensor_contexts_[node.value];
  if (!ctx) ctx = std::make_unique<MacContext>(sensor_key(node));
  return *ctx;
}

}  // namespace vmat
