#include "keys/predistribution.h"

#include <algorithm>
#include <stdexcept>

#include "util/random.h"

namespace vmat {

Predistribution::Predistribution(std::uint32_t node_count,
                                 const KeyMaterialSpec& config)
    : config_(config),
      pool_(config.pool_size, config.seed),
      node_count_(node_count),
      path_keys_(node_count),
      next_path_index_(config.pool_size) {
  if (node_count == 0)
    throw std::invalid_argument("Predistribution: zero nodes");
  if (config.ring_size > config.pool_size)
    throw std::invalid_argument("Predistribution: ring larger than pool");

  // The resident per-node key state is exactly one ring seed; rings are
  // re-derived from it on demand (see ring()/ring_contains()).
  ring_seeds_.resize(node_count);
  std::uint64_t seed_state = config.seed ^ 0xabcdef12345678ULL;
  for (std::uint32_t id = 0; id < node_count; ++id)
    ring_seeds_[id] = splitmix64(seed_state);
  ring_cache_.reserve(kRingCacheCapacity);
}

std::uint64_t Predistribution::ring_seed(NodeId node) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Predistribution::ring_seed");
  return ring_seeds_[node.value];
}

const KeyRing& Predistribution::ring(NodeId node) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Predistribution::ring");
  for (RingCacheEntry& entry : ring_cache_) {
    if (entry.node == node.value) {
      entry.last_used = ++ring_clock_;
      return *entry.ring;
    }
  }
  auto ring = std::make_unique<KeyRing>(ring_seeds_[node.value],
                                        config_.ring_size, config_.pool_size);
  if (ring_cache_.size() < kRingCacheCapacity) {
    ring_cache_.push_back({node.value, ++ring_clock_, std::move(ring)});
    return *ring_cache_.back().ring;
  }
  RingCacheEntry* victim = &ring_cache_.front();
  for (RingCacheEntry& entry : ring_cache_)
    if (entry.last_used < victim->last_used) victim = &entry;
  *victim = {node.value, ++ring_clock_, std::move(ring)};
  return *victim->ring;
}

bool Predistribution::ring_contains(NodeId node, KeyIndex index) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Predistribution::ring_contains");
  // Per-thread memo of the last derived ring: inbox drains and cascade
  // loops query the same node many times in a row, so the derivation
  // amortizes to once per (thread, node) run.
  thread_local std::uint64_t memo_seed = 0;
  thread_local bool memo_valid = false;
  thread_local std::vector<KeyIndex> memo_indices;
  const std::uint64_t seed = ring_seeds_[node.value];
  if (!memo_valid || memo_seed != seed) {
    KeyRing::derive_indices(seed, config_.ring_size, config_.pool_size,
                            memo_indices);
    memo_seed = seed;
    memo_valid = true;
  }
  return std::binary_search(memo_indices.begin(), memo_indices.end(), index);
}

SymmetricKey Predistribution::sensor_key(NodeId node) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Predistribution::sensor_key");
  return derive_key("vmat.sensor-key", config_.seed, node.value);
}

std::optional<KeyIndex> Predistribution::edge_key(NodeId a, NodeId b) const {
  return ring(a).shared_key(ring(b));
}

std::span<const NodeId> Predistribution::holders(KeyIndex index) const {
  const auto it = holders_cache_.find(index);
  if (it != holders_cache_.end()) return it->second;
  if (is_path_key(index) || index == kNoKey ||
      index.value >= config_.pool_size)
    return {};  // unknown path keys have no holders; registration fills them
  // First query for this pool index: derive which rings contain it. O(n)
  // ring re-derivations, paid once per distinct revoked/pinpointed key.
  std::vector<NodeId> held_by;
  std::vector<KeyIndex> scratch;
  for (std::uint32_t id = 0; id < node_count_; ++id) {
    KeyRing::derive_indices(ring_seeds_[id], config_.ring_size,
                            config_.pool_size, scratch);
    if (std::binary_search(scratch.begin(), scratch.end(), index))
      held_by.push_back(NodeId{id});
  }
  auto& cached = holders_cache_[index];
  cached = std::move(held_by);  // built in increasing id order, so sorted
  return cached;
}

KeyIndex Predistribution::register_path_key(NodeId a, NodeId b) {
  if (a.value >= node_count_ || b.value >= node_count_)
    throw std::out_of_range("register_path_key: bad node id");
  if (a == b) throw std::invalid_argument("register_path_key: same node");
  if (const auto existing = path_key_between(a, b)) return *existing;

  const KeyIndex index{next_path_index_++};
  path_keys_[a.value].emplace_back(b, index);
  path_keys_[b.value].emplace_back(a, index);
  auto& held_by = holders_cache_[index];
  held_by = {std::min(a, b), std::max(a, b)};
  path_contexts_.resize(next_path_index_ - config_.pool_size);
  return index;
}

std::optional<KeyIndex> Predistribution::path_key_between(NodeId a,
                                                          NodeId b) const {
  if (a.value >= path_keys_.size()) return std::nullopt;
  for (const auto& [peer, index] : path_keys_[a.value])
    if (peer == b) return index;
  return std::nullopt;
}

bool Predistribution::node_holds(NodeId node, KeyIndex index) const {
  if (index == kNoKey) return false;
  if (!is_path_key(index)) return ring_contains(node, index);
  for (const auto& [peer, held] : path_keys_[node.value])
    if (held == index) return true;
  return false;
}

std::vector<KeyIndex> Predistribution::keys_of(NodeId node) const {
  std::vector<KeyIndex> out(ring(node).indices().begin(),
                            ring(node).indices().end());
  for (const auto& [peer, index] : path_keys_[node.value])
    out.push_back(index);
  std::sort(out.begin(), out.end());
  return out;
}

SymmetricKey Predistribution::key_material(KeyIndex index) const {
  if (!is_path_key(index)) return pool_.key(index);
  if (index.value >= next_path_index_)
    throw std::out_of_range("key_material: unknown path key");
  return derive_key("vmat.path-key", config_.seed, index.value);
}

const MacContext& Predistribution::mac_context(KeyIndex index) const {
  if (!is_path_key(index)) return pool_.mac_context(index);
  const std::size_t slot = index.value - config_.pool_size;
  if (slot >= path_contexts_.size())
    throw std::out_of_range("mac_context: unknown path key");
  auto& ctx = path_contexts_[slot];
  if (!ctx) ctx = std::make_unique<MacContext>(key_material(index));
  return *ctx;
}

void Predistribution::warm_path_contexts() const {
  for (std::uint32_t index = config_.pool_size; index < next_path_index_;
       ++index)
    (void)mac_context(KeyIndex{index});
}

const MacContext& Predistribution::sensor_mac_context(NodeId node) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Predistribution::sensor_mac_context");
  auto& ctx = sensor_contexts_[node.value];
  if (!ctx) ctx = std::make_unique<MacContext>(sensor_key(node));
  return *ctx;
}

}  // namespace vmat
