// Revocation registry with threshold-θ full-sensor revocation (Section VI-C).
//
// The base station revokes individual edge keys as pinpointing exposes them.
// Once θ keys of one sensor's ring are revoked, the whole sensor is revoked
// (its ring seed is announced), which marks every remaining key of its ring
// revoked as well — revoking those keys *before* they are used in attacks.
//
// The registry records how each key/sensor came to be revoked so that
// experiments can separate "individually revoked by pinpointing" from
// "revoked in bulk via a ring seed" (the >90% savings claim, Section I).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "keys/predistribution.h"
#include "trace/trace.h"
#include "util/ids.h"

namespace vmat {

class SnapshotReader;
class SnapshotWriter;

enum class RevocationCause : std::uint8_t {
  kPinpointed,   ///< individually exposed by a pinpointing run
  kRingSeed,     ///< bulk-revoked when its holder's ring seed was announced
};

struct RevocationEvent {
  KeyIndex key;
  RevocationCause cause;
};

class RevocationRegistry {
 public:
  /// `threshold` is θ; 0 disables automatic full-sensor revocation.
  RevocationRegistry(const Predistribution* keys, std::uint32_t threshold);

  /// Revoke one edge key (Figure 5 Step 7 / Figure 6 Steps 2, 7, 12).
  /// Returns the sensors newly ring-revoked as a consequence (holders whose
  /// revoked-key count crossed θ, cascading).
  std::vector<NodeId> revoke_key(KeyIndex key);

  /// Announce a sensor's ring seed, revoking all keys in its ring.
  /// Returns any sensors additionally ring-revoked by the cascade (including
  /// `node` itself as the first element if it was not revoked before).
  std::vector<NodeId> revoke_sensor(NodeId node);

  // Both checks run once per frame (and once per node per slot); the
  // empty() test keeps the no-revocations common case to one load.
  [[nodiscard]] bool is_key_revoked(KeyIndex key) const noexcept {
    return !revoked_keys_.empty() && revoked_keys_.contains(key);
  }
  [[nodiscard]] bool is_sensor_revoked(NodeId node) const noexcept {
    return !revoked_sensors_.empty() && revoked_sensors_.contains(node);
  }

  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::size_t revoked_key_count() const noexcept {
    return revoked_keys_.size();
  }
  [[nodiscard]] const std::vector<RevocationEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<NodeId>& revoked_sensors_in_order()
      const noexcept {
    return revoked_sensor_order_;
  }

  /// Number of *pinpointed* revoked keys currently in a sensor's ring —
  /// the count compared against θ. Bulk ring-seed revocations say nothing
  /// about the other holders of those keys and do not contribute.
  [[nodiscard]] std::uint32_t revoked_count(NodeId node) const noexcept;

  /// Attach (or detach) the flight recorder: key/sensor revocation events.
  void set_tracer(Tracer tracer) noexcept { tracer_ = tracer; }

  /// How many events were individual (pinpointed) revocations.
  [[nodiscard]] std::size_t pinpointed_key_count() const noexcept;

  // --- snapshots (sim/snapshot.h) ---

  /// Serialize the registry's full mutable state. The hash containers are
  /// flattened in iteration order; only membership/counts matter to the
  /// protocol, so the restored registry is behaviorally identical.
  void snapshot_save(SnapshotWriter& writer) const;
  /// Restore a snapshot_save() image (replaces all current state).
  void snapshot_load(SnapshotReader& reader);

 private:
  /// Mark one key revoked; push sensors that cross θ onto `newly`.
  void mark_key(KeyIndex key, RevocationCause cause,
                std::vector<NodeId>& newly);
  void mark_sensor(NodeId node, std::vector<NodeId>& newly);

  // Immutable deployment identity (the owning Network fingerprints the
  // key-material spec and pins it via key_generation).
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  const Predistribution* keys_;
  // Construction-time config, part of the deployment fingerprint.
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  std::uint32_t threshold_;
  // Trace sink handle, owned by the coordinator, not execution state.
  // vmat-analyze: allow(snapshot-field-coverage) -- trace sink, not state
  Tracer tracer_;
  // The hash containers below are snapshot-captured by explicit
  // flatten/rebuild in snapshot_save()/snapshot_load() — membership and
  // counts are the only observable state, so iteration order is free.
  // vmat-lint: allow-file(snapshot-unsafe-state) -- flattened/rebuilt pair
  std::unordered_set<KeyIndex> revoked_keys_;
  std::unordered_set<NodeId> revoked_sensors_;
  std::vector<NodeId> revoked_sensor_order_;
  std::unordered_map<NodeId, std::uint32_t> counts_;
  std::vector<RevocationEvent> events_;
};

}  // namespace vmat
