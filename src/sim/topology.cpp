#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "keys/predistribution.h"
#include "util/random.h"

namespace vmat {

Topology::Topology(std::uint32_t node_count)
    : node_count_(node_count), adj_(node_count) {
  if (node_count == 0) throw std::invalid_argument("Topology: zero nodes");
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (a.value >= node_count_ || b.value >= node_count_)
    throw std::out_of_range("Topology::add_edge");
  if (a == b) throw std::invalid_argument("Topology::add_edge: self-loop");
  if (adj_.empty() && csr_ready_) {
    // Rehydrate the nested lists from the CSR so construction can resume
    // after a shed_adjacency().
    adj_.resize(node_count_);
    for (std::uint32_t id = 0; id < node_count_; ++id) {
      const auto row = neighbors(NodeId{id});
      adj_[id].assign(row.begin(), row.end());
    }
  }
  if (has_edge(a, b)) return;
  adj_[a.value].push_back(b);
  adj_[b.value].push_back(a);
  csr_ready_ = false;
}

void Topology::compact() const {
  if (csr_ready_) return;
  csr_offsets_.assign(adj_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t id = 0; id < adj_.size(); ++id) {
    csr_offsets_[id] = static_cast<std::uint32_t>(total);
    total += adj_[id].size();
  }
  csr_offsets_[adj_.size()] = static_cast<std::uint32_t>(total);
  csr_neighbors_.clear();
  csr_neighbors_.reserve(total);
  for (const auto& list : adj_)
    csr_neighbors_.insert(csr_neighbors_.end(), list.begin(), list.end());
  csr_ready_ = true;
}

void Topology::shed_adjacency() const {
  compact();
  adj_.clear();
  adj_.shrink_to_fit();
}

bool Topology::has_edge(NodeId a, NodeId b) const noexcept {
  if (csr_ready_) return directed_edge_slot(a, b) != kNoDirectedEdge;
  if (a.value >= adj_.size()) return false;
  const auto& list = adj_[a.value];
  return std::find(list.begin(), list.end(), b) != list.end();
}

std::uint32_t Topology::directed_edge_slot(NodeId from,
                                           NodeId to) const noexcept {
  if (!csr_ready_ || from.value >= node_count_) return kNoDirectedEdge;
  const std::uint32_t begin = csr_offsets_[from.value];
  const std::uint32_t end = csr_offsets_[from.value + 1];
  for (std::uint32_t i = begin; i < end; ++i)
    if (csr_neighbors_[i] == to) return i;
  return kNoDirectedEdge;
}

std::span<const NodeId> Topology::neighbors(NodeId node) const {
  if (node.value >= node_count_)
    throw std::out_of_range("Topology::neighbors");
  if (csr_ready_) {
    return std::span<const NodeId>(
        csr_neighbors_.data() + csr_offsets_[node.value],
        csr_offsets_[node.value + 1] - csr_offsets_[node.value]);
  }
  return adj_[node.value];
}

std::size_t Topology::degree(NodeId node) const {
  return neighbors(node).size();
}

std::size_t Topology::edge_count() const noexcept {
  if (csr_ready_) return csr_neighbors_.size() / 2;
  std::size_t total = 0;
  for (const auto& list : adj_) total += list.size();
  return total / 2;
}

std::vector<Level> Topology::bfs_depth(
    const std::unordered_set<NodeId>& excluded) const {
  std::vector<Level> depth(node_count_, kNoLevel);
  if (excluded.contains(kBaseStation)) return depth;
  std::deque<NodeId> queue;
  depth[kBaseStation.value] = 0;
  queue.push_back(kBaseStation);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (excluded.contains(v) || depth[v.value] != kNoLevel) continue;
      depth[v.value] = depth[u.value] + 1;
      queue.push_back(v);
    }
  }
  return depth;
}

Level Topology::depth(const std::unordered_set<NodeId>& excluded) const {
  Level max_depth = 0;
  for (Level d : bfs_depth(excluded)) max_depth = std::max(max_depth, d);
  return max_depth;
}

bool Topology::connected(const std::unordered_set<NodeId>& excluded) const {
  const auto depth = bfs_depth(excluded);
  for (std::uint32_t id = 0; id < node_count_; ++id) {
    if (excluded.contains(NodeId{id})) continue;
    if (depth[id] == kNoLevel) return false;
  }
  return true;
}

Topology Topology::secure_subgraph(const Predistribution& keys) const {
  Topology out(node_count());
  for (std::uint32_t id = 0; id < node_count_; ++id) {
    for (NodeId v : neighbors(NodeId{id})) {
      if (v.value < id) continue;  // each undirected edge once
      if (keys.edge_key(NodeId{id}, v).has_value()) out.add_edge(NodeId{id}, v);
    }
  }
  return out;
}

Topology Topology::line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i)
    t.add_edge(NodeId{i}, NodeId{i + 1});
  return t;
}

Topology Topology::grid(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("Topology::grid: empty");
  Topology t(width * height);
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return NodeId{y * width + x};
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) t.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) t.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return t;
}

Topology Topology::star_of_chains(std::uint32_t branches,
                                  std::uint32_t chain_length) {
  if (branches == 0 || chain_length == 0)
    throw std::invalid_argument("Topology::star_of_chains: empty");
  Topology t(1 + branches * chain_length);
  for (std::uint32_t b = 0; b < branches; ++b) {
    NodeId prev = kBaseStation;
    for (std::uint32_t i = 0; i < chain_length; ++i) {
      const NodeId next{1 + b * chain_length + i};
      t.add_edge(prev, next);
      prev = next;
    }
  }
  return t;
}

namespace {

/// Shared coordinate generation for both random_geometric implementations:
/// n uniform points, base station (slot 0) swapped to the node nearest the
/// unit-square center. The draw sequence is the topology's identity — both
/// edge-discovery strategies consume exactly these points.
void geometric_points(std::uint32_t n, std::uint64_t seed, int attempt,
                      std::vector<double>& x, std::vector<double>& y) {
  Rng rng(seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b9ULL);
  x.resize(n);
  y.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x[i] = rng.unit();
    y[i] = rng.unit();
  }
  std::uint32_t best = 0;
  double best_d = 2.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double d = std::hypot(x[i] - 0.5, y[i] - 0.5);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  std::swap(x[0], x[best]);
  std::swap(y[0], y[best]);
}

/// Above this size the O(n^2) pairwise scan is the bottleneck of every
/// large bench cell; the cell-bucketed discovery produces the identical
/// graph (tested) in O(n · expected degree). The crossover is well below
/// this in practice; the brute scan is kept for tiny graphs only because
/// its simplicity anchors the equivalence test.
constexpr std::uint32_t kGeometricCellThreshold = 2048;

}  // namespace

double Topology::connected_radius(std::uint32_t n) {
  const double root = std::sqrt(static_cast<double>(n));
  if (n <= 10000) return 1.8 / root;
  const double threshold =
      std::sqrt(std::log(static_cast<double>(n)) / 3.14159265358979323846);
  return std::max(1.8, 1.15 * threshold) / root;
}

Topology Topology::random_geometric(std::uint32_t n, double radius,
                                    std::uint64_t seed, int max_attempts) {
  if (n >= kGeometricCellThreshold)
    return random_geometric_cells(n, radius, seed, max_attempts);
  std::vector<double> x, y;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    geometric_points(n, seed, attempt, x, y);
    Topology t(n);
    const double r2 = radius * radius;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        if (dx * dx + dy * dy <= r2) t.add_edge(NodeId{i}, NodeId{j});
      }
    }
    if (t.connected()) return t;
  }
  throw std::runtime_error(
      "Topology::random_geometric: could not generate a connected graph; "
      "increase radius");
}

Topology Topology::random_geometric_cells(std::uint32_t n, double radius,
                                          std::uint64_t seed,
                                          int max_attempts) {
  std::vector<double> x, y;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    geometric_points(n, seed, attempt, x, y);

    // Bucket nodes into a grid of radius-sized cells: every neighbor of a
    // point lies in its own or one of the 8 adjacent cells.
    const double r2 = radius * radius;
    const auto grid = static_cast<std::uint32_t>(std::clamp(
        std::floor(1.0 / std::max(radius, 1e-9)), 1.0, 4096.0));
    const auto cell_of = [&](std::uint32_t i) {
      const auto cx = std::min(
          grid - 1, static_cast<std::uint32_t>(x[i] * grid));
      const auto cy = std::min(
          grid - 1, static_cast<std::uint32_t>(y[i] * grid));
      return cy * grid + cx;
    };
    // Counting sort of node ids by cell; ids within a cell stay ascending.
    std::vector<std::uint32_t> cell_begin(
        static_cast<std::size_t>(grid) * grid + 1, 0);
    for (std::uint32_t i = 0; i < n; ++i) ++cell_begin[cell_of(i) + 1];
    for (std::size_t c = 1; c < cell_begin.size(); ++c)
      cell_begin[c] += cell_begin[c - 1];
    std::vector<std::uint32_t> by_cell(n);
    {
      std::vector<std::uint32_t> cursor(cell_begin.begin(),
                                        cell_begin.end() - 1);
      for (std::uint32_t i = 0; i < n; ++i) by_cell[cursor[cell_of(i)]++] = i;
    }

    Topology t(n);
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t i = 0; i < n; ++i) {
      // Gather every j > i within range from the 9 surrounding cells, then
      // add edges in ascending j — the exact insertion order the pairwise
      // scan produces, so adjacency lists (and everything derived from
      // their order) are bit-identical.
      candidates.clear();
      const auto c = cell_of(i);
      const std::uint32_t cx = c % grid;
      const std::uint32_t cy = c / grid;
      for (std::uint32_t dy = cy == 0 ? 0 : cy - 1;
           dy <= std::min(grid - 1, cy + 1); ++dy) {
        for (std::uint32_t dx = cx == 0 ? 0 : cx - 1;
             dx <= std::min(grid - 1, cx + 1); ++dx) {
          const std::uint32_t cell = dy * grid + dx;
          for (std::uint32_t k = cell_begin[cell]; k < cell_begin[cell + 1];
               ++k) {
            const std::uint32_t j = by_cell[k];
            if (j <= i) continue;
            const double ddx = x[i] - x[j];
            const double ddy = y[i] - y[j];
            if (ddx * ddx + ddy * ddy <= r2) candidates.push_back(j);
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      for (std::uint32_t j : candidates) t.add_edge(NodeId{i}, NodeId{j});
    }
    if (t.connected()) return t;
  }
  throw std::runtime_error(
      "Topology::random_geometric: could not generate a connected graph; "
      "increase radius");
}

}  // namespace vmat
