#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "keys/predistribution.h"
#include "util/random.h"

namespace vmat {

Topology::Topology(std::uint32_t node_count) : adj_(node_count) {
  if (node_count == 0) throw std::invalid_argument("Topology: zero nodes");
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (a.value >= adj_.size() || b.value >= adj_.size())
    throw std::out_of_range("Topology::add_edge");
  if (a == b) throw std::invalid_argument("Topology::add_edge: self-loop");
  if (has_edge(a, b)) return;
  adj_[a.value].push_back(b);
  adj_[b.value].push_back(a);
  csr_ready_ = false;
}

void Topology::compact() const {
  if (csr_ready_) return;
  csr_offsets_.assign(adj_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t id = 0; id < adj_.size(); ++id) {
    csr_offsets_[id] = static_cast<std::uint32_t>(total);
    total += adj_[id].size();
  }
  csr_offsets_[adj_.size()] = static_cast<std::uint32_t>(total);
  csr_neighbors_.clear();
  csr_neighbors_.reserve(total);
  for (const auto& list : adj_)
    csr_neighbors_.insert(csr_neighbors_.end(), list.begin(), list.end());
  csr_ready_ = true;
}

bool Topology::has_edge(NodeId a, NodeId b) const noexcept {
  if (csr_ready_) return directed_edge_slot(a, b) != kNoDirectedEdge;
  if (a.value >= adj_.size()) return false;
  const auto& list = adj_[a.value];
  return std::find(list.begin(), list.end(), b) != list.end();
}

std::uint32_t Topology::directed_edge_slot(NodeId from,
                                           NodeId to) const noexcept {
  if (!csr_ready_ || from.value >= adj_.size()) return kNoDirectedEdge;
  const std::uint32_t begin = csr_offsets_[from.value];
  const std::uint32_t end = csr_offsets_[from.value + 1];
  for (std::uint32_t i = begin; i < end; ++i)
    if (csr_neighbors_[i] == to) return i;
  return kNoDirectedEdge;
}

std::span<const NodeId> Topology::neighbors(NodeId node) const {
  if (node.value >= adj_.size()) throw std::out_of_range("Topology::neighbors");
  if (csr_ready_) {
    return std::span<const NodeId>(
        csr_neighbors_.data() + csr_offsets_[node.value],
        csr_offsets_[node.value + 1] - csr_offsets_[node.value]);
  }
  return adj_[node.value];
}

std::size_t Topology::degree(NodeId node) const {
  return neighbors(node).size();
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& list : adj_) total += list.size();
  return total / 2;
}

std::vector<Level> Topology::bfs_depth(
    const std::unordered_set<NodeId>& excluded) const {
  std::vector<Level> depth(adj_.size(), kNoLevel);
  if (excluded.contains(kBaseStation)) return depth;
  std::deque<NodeId> queue;
  depth[kBaseStation.value] = 0;
  queue.push_back(kBaseStation);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adj_[u.value]) {
      if (excluded.contains(v) || depth[v.value] != kNoLevel) continue;
      depth[v.value] = depth[u.value] + 1;
      queue.push_back(v);
    }
  }
  return depth;
}

Level Topology::depth(const std::unordered_set<NodeId>& excluded) const {
  Level max_depth = 0;
  for (Level d : bfs_depth(excluded)) max_depth = std::max(max_depth, d);
  return max_depth;
}

bool Topology::connected(const std::unordered_set<NodeId>& excluded) const {
  const auto depth = bfs_depth(excluded);
  for (std::uint32_t id = 0; id < adj_.size(); ++id) {
    if (excluded.contains(NodeId{id})) continue;
    if (depth[id] == kNoLevel) return false;
  }
  return true;
}

Topology Topology::secure_subgraph(const Predistribution& keys) const {
  Topology out(node_count());
  for (std::uint32_t id = 0; id < adj_.size(); ++id) {
    for (NodeId v : adj_[id]) {
      if (v.value < id) continue;  // each undirected edge once
      if (keys.edge_key(NodeId{id}, v).has_value()) out.add_edge(NodeId{id}, v);
    }
  }
  return out;
}

Topology Topology::line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i)
    t.add_edge(NodeId{i}, NodeId{i + 1});
  return t;
}

Topology Topology::grid(std::uint32_t width, std::uint32_t height) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("Topology::grid: empty");
  Topology t(width * height);
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return NodeId{y * width + x};
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      if (x + 1 < width) t.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) t.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return t;
}

Topology Topology::star_of_chains(std::uint32_t branches,
                                  std::uint32_t chain_length) {
  if (branches == 0 || chain_length == 0)
    throw std::invalid_argument("Topology::star_of_chains: empty");
  Topology t(1 + branches * chain_length);
  for (std::uint32_t b = 0; b < branches; ++b) {
    NodeId prev = kBaseStation;
    for (std::uint32_t i = 0; i < chain_length; ++i) {
      const NodeId next{1 + b * chain_length + i};
      t.add_edge(prev, next);
      prev = next;
    }
  }
  return t;
}

Topology Topology::random_geometric(std::uint32_t n, double radius,
                                    std::uint64_t seed, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Rng rng(seed + static_cast<std::uint64_t>(attempt) * 0x9e3779b9ULL);
    std::vector<double> x(n), y(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      x[i] = rng.unit();
      y[i] = rng.unit();
    }
    // Base station = node nearest the center; swap it into slot 0.
    std::uint32_t best = 0;
    double best_d = 2.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double d = std::hypot(x[i] - 0.5, y[i] - 0.5);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    std::swap(x[0], x[best]);
    std::swap(y[0], y[best]);

    Topology t(n);
    const double r2 = radius * radius;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        if (dx * dx + dy * dy <= r2) t.add_edge(NodeId{i}, NodeId{j});
      }
    }
    if (t.connected()) return t;
  }
  throw std::runtime_error(
      "Topology::random_geometric: could not generate a connected graph; "
      "increase radius");
}

}  // namespace vmat
