// Copy-on-write execution snapshots.
//
// A Snapshot captures the complete *mutable* post-tree-formation execution
// state of a deployment — fabric contents (undrained frames with their
// arena payload bytes), edge-key stamp slots, revocation registry, auth
// broadcast chain positions, audits, the formed tree, trace counters, and
// the coordinator's nonce stream — into one relocatable flat byte buffer.
// Restoring (forking) is a sequential decode back into the live objects in
// O(state size): vectors resize into retained capacity and payload bytes
// re-enter the slot arenas through their bump allocators, so a steady-state
// fork performs no heap allocation beyond what the very first restore
// warmed up.
//
// What is NOT captured (see DESIGN.md "Snapshots & fork execution"):
//   * Immutable deployment identity — topology CSR, key pool/ring material,
//     spec bits. These are *fingerprinted*: restore refuses a snapshot whose
//     fingerprint does not match the live deployment, and the key material
//     is additionally pinned by the captured key_generation.
//   * Warm derived caches — MacContext key schedules stay warm across a
//     restore (they are pure functions of immutable key material), and the
//     Network's map-side edge-key cache is simply cleared (recompute is
//     deterministic, so behavior is unchanged).
//   * The adversary. Forks rebind strategies via
//     VmatCoordinator::set_adversary(); the fork contract requires the
//     malicious *set* (which shaped formation) to stay fixed.
//
// Buffer layout: a fixed sequence of tagged sections, each a sequence of
// little-endian-order POD fields and length-prefixed POD vectors. The
// buffer is position-independent (no pointers, no absolute offsets) and may
// be copied or moved freely between compatible deployments in one process.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "util/bytes.h"

namespace vmat {

/// True unless the VMAT_SNAPSHOT environment variable is exactly "0" — the
/// escape hatch that disables cross-trial snapshot sharing in the bench
/// fork fan-out and epoch re-arming in the serving engine (every execution
/// then pays for its own formation, the pre-snapshot behavior).
[[nodiscard]] bool snapshots_enabled();

/// Append-only encoder for snapshot sections. All writes are raw memcpys
/// of trivially copyable values; layout is the write order.
class SnapshotWriter {
 public:
  void section(std::uint32_t tag) { pod(tag); }

  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot fields must be flat (memcpy-able)");
    const std::size_t at = out_.size();
    out_.resize(at + sizeof value);
    std::memcpy(out_.data() + at, &value, sizeof value);
  }

  template <typename T>
  void vec_pod(const std::vector<T>& items) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot vectors must hold flat elements");
    pod(static_cast<std::uint64_t>(items.size()));
    const std::size_t total = items.size() * sizeof(T);
    const std::size_t at = out_.size();
    out_.resize(at + total);
    if (total > 0) std::memcpy(out_.data() + at, items.data(), total);
  }

  /// Length-prefixed raw byte run (frame payloads).
  void bytes(std::span<const std::uint8_t> data) {
    pod(static_cast<std::uint64_t>(data.size()));
    const std::size_t at = out_.size();
    out_.resize(at + data.size());
    if (!data.empty()) std::memcpy(out_.data() + at, data.data(), data.size());
  }

  [[nodiscard]] Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

/// Sequential decoder over a snapshot buffer. Reads must mirror the write
/// order exactly; any truncation or section-tag mismatch throws
/// std::invalid_argument (a snapshot is trusted in-process state, so a
/// mismatch is a logic error worth failing loudly on).
class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> data)
      : data_(data.data()), size_(data.size()) {}

  void section(std::uint32_t expected) {
    std::uint32_t tag = 0;
    pod(tag);
    if (tag != expected)
      throw std::invalid_argument(
          "SnapshotReader: section tag mismatch (layout skew)");
  }

  template <typename T>
  void pod(T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot fields must be flat (memcpy-able)");
    need(sizeof value);
    std::memcpy(&value, data_ + pos_, sizeof value);
    pos_ += sizeof value;
  }

  template <typename T>
  [[nodiscard]] T pod() {
    T value{};
    pod(value);
    return value;
  }

  template <typename T>
  void vec_pod(std::vector<T>& items) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot vectors must hold flat elements");
    const auto count = static_cast<std::size_t>(pod<std::uint64_t>());
    const std::size_t total = count * sizeof(T);
    need(total);
    items.resize(count);  // shrink/grow into retained capacity
    if (total > 0) std::memcpy(items.data(), data_ + pos_, total);
    pos_ += total;
  }

  /// View of a length-prefixed byte run; valid while the buffer lives.
  [[nodiscard]] std::span<const std::uint8_t> bytes() {
    const auto count = static_cast<std::size_t>(pod<std::uint64_t>());
    need(count);
    const std::span<const std::uint8_t> view(data_ + pos_, count);
    pos_ += count;
    return view;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n)
      throw std::invalid_argument("SnapshotReader: truncated snapshot");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// What execution point a snapshot captures.
enum class SnapshotKind : std::uint8_t {
  /// Mid-execution, right after tree formation: resume_from() finishes the
  /// execution (query phases) many times over, once per fork.
  kExecutionPrefix = 1,
  /// A served epoch at prepare_epoch(): rearm_epoch() re-serves the formed
  /// tree after a transient disruption without re-forming it.
  kEpoch = 2,
};

/// A captured execution state. Value type: copy the Snapshot (one buffer
/// copy) to fork it across threads; each restore decodes its own copy or
/// the shared original — restores never mutate the snapshot.
class Snapshot {
 public:
  Snapshot() = default;

  [[nodiscard]] bool empty() const noexcept { return buffer_.empty(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] SnapshotKind kind() const noexcept { return kind_; }
  /// Deployment identity hash restore checks against (topology, key
  /// material spec, coordinator config).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return node_count_;
  }
  /// Flooding rounds the captured prefix already spent (announcement +
  /// tree formation) — seeds ExecutionOutcome::data_rounds on resume.
  [[nodiscard]] int formation_rounds() const noexcept {
    return formation_rounds_;
  }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return buffer_;
  }

 private:
  friend class VmatCoordinator;

  Bytes buffer_;
  SnapshotKind kind_{SnapshotKind::kExecutionPrefix};
  std::uint64_t fingerprint_{0};
  std::uint32_t node_count_{0};
  int formation_rounds_{0};
};

/// FNV-1a-style accumulator for deployment fingerprints.
[[nodiscard]] inline std::uint64_t snapshot_mix(std::uint64_t h,
                                                std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace vmat
