#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "spec/simulation_spec.h"

namespace vmat {
namespace {

Topology validated_topology(const SimulationSpec& spec) {
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "Network: invalid SimulationSpec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  return spec.build_topology();
}

}  // namespace

Network::Network(const SimulationSpec& spec)
    : Network(validated_topology(spec), spec.network()) {}

Network::Network(Topology topology, const NetworkSpec& config)
    : topology_(std::move(topology)),
      keys_(topology_.node_count(), config.keys),
      revocation_(&keys_, config.revocation_threshold),
      fabric_(&topology_, config.capacity_per_slot),
      redundancy_(config.redundancy == 0 ? 1 : config.redundancy) {
  if (config.loss_probability > 0.0) {
    // Spec-validated configs never hit this; a hand-built config with an
    // out-of-domain loss still fails fast at construction.
    const Status loss =
        fabric_.set_loss(config.loss_probability, config.keys.seed);
    if (!loss) throw std::invalid_argument(loss.error().to_string());
  }
}

std::size_t Network::rekey(const KeyMaterialSpec& fresh_keys) {
  const std::vector<NodeId> dead = revocation_.revoked_sensors_in_order();
  const std::uint32_t theta = revocation_.threshold();
  keys_ = Predistribution(topology_.node_count(), fresh_keys);
  revocation_ = RevocationRegistry(&keys_, theta);
  revocation_.set_tracer(tracer_);
  for (NodeId s : dead) (void)revocation_.revoke_sensor(s);
  fabric_.reset();
  edge_key_cache_.clear();
  ++key_generation_;
  return dead.size();
}

std::size_t Network::establish_path_keys() {
  std::size_t established = 0;
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id) {
    for (NodeId v : topology_.neighbors(NodeId{id})) {
      if (v.value < id) continue;
      if (keys_.edge_key(NodeId{id}, v).has_value()) continue;
      if (keys_.path_key_between(NodeId{id}, v).has_value()) continue;
      (void)keys_.register_path_key(NodeId{id}, v);
      ++established;
    }
  }
  if (established > 0) {
    edge_key_cache_.clear();
    ++key_generation_;
  }
  return established;
}

std::vector<NodeId> Network::usable_neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v : topology_.neighbors(node)) {
    if (usable_edge_key(node, v).has_value()) out.push_back(v);
  }
  return out;
}

std::optional<KeyIndex> Network::usable_edge_key(NodeId a, NodeId b) const {
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  const std::uint64_t edge = (lo << 32) | hi;
  const std::size_t revoked = revocation_.revoked_key_count();
  const auto it = edge_key_cache_.find(edge);
  if (it != edge_key_cache_.end() && it->second.revoked_count == revoked)
    return it->second.key;
  const auto key = compute_usable_edge_key(a, b);
  edge_key_cache_[edge] = {key, revoked};
  return key;
}

std::optional<KeyIndex> Network::compute_usable_edge_key(NodeId a,
                                                         NodeId b) const {
  // The smallest *non-revoked* shared ring key: pairs fall back to their
  // next shared key when one is revoked, exactly as Eschenauer-Gligor
  // intends. An established path key serves as the last resort.
  const auto& ra = keys_.ring(a);
  const auto& rb = keys_.ring(b);
  auto ia = ra.indices().begin();
  auto ib = rb.indices().begin();
  while (ia != ra.indices().end() && ib != rb.indices().end()) {
    if (*ia == *ib) {
      if (!revocation_.is_key_revoked(*ia)) return *ia;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const auto path = keys_.path_key_between(a, b);
  if (path.has_value() && !revocation_.is_key_revoked(*path)) return path;
  return std::nullopt;
}

bool Network::send_secure(NodeId from, NodeId to, const Bytes& payload) {
  const auto key_index = usable_edge_key(from, to);
  if (!key_index.has_value()) return false;
  Envelope e;
  e.from = from;
  e.to = to;
  e.edge_key = *key_index;
  e.payload = payload;
  e.edge_mac = keys_.mac_context(*key_index).compute(payload);
  tracer_.mac_compute(from, *key_index);
  bool sent = false;
  for (std::uint32_t copy = 1; copy < redundancy_; ++copy)
    sent = fabric_.send(e) || sent;
  return fabric_.send(std::move(e)) || sent;
}

std::size_t Network::broadcast_secure(NodeId from, const Bytes& payload) {
  std::size_t sent = 0;
  for (NodeId v : usable_neighbors(from)) {
    if (send_secure(from, v, payload)) ++sent;
  }
  return sent;
}

std::vector<Envelope> Network::receive_valid(NodeId node) {
  std::vector<Envelope> valid;
  for (auto& e : fabric_.take_inbox(node)) {
    if (e.edge_key == kNoKey) continue;
    if (revocation_.is_key_revoked(e.edge_key)) continue;
    if (!keys_.node_holds(node, e.edge_key)) continue;
    const bool mac_ok = keys_.mac_context(e.edge_key).verify(e.payload,
                                                             e.edge_mac);
    tracer_.mac_verify(node, e.edge_key, mac_ok);
    if (!mac_ok) continue;
    valid.push_back(std::move(e));
  }
  return valid;
}

}  // namespace vmat
