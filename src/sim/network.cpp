#include "sim/network.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/snapshot.h"
#include "spec/simulation_spec.h"

namespace vmat {
namespace {

Topology validated_topology(const SimulationSpec& spec) {
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "Network: invalid SimulationSpec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  return spec.build_topology();
}

}  // namespace

Network::Network(const SimulationSpec& spec)
    : Network(validated_topology(spec), spec.network()) {}

Network::Network(Topology topology, const NetworkSpec& config)
    : topology_(std::move(topology)),
      keys_(topology_.node_count(), config.keys),
      revocation_(&keys_, config.revocation_threshold),
      fabric_(&topology_, config.capacity_per_slot),
      redundancy_(config.redundancy == 0 ? 1 : config.redundancy) {
  if (config.loss_probability > 0.0) {
    // Spec-validated configs never hit this; a hand-built config with an
    // out-of-domain loss still fails fast at construction.
    const Status loss =
        fabric_.set_loss(config.loss_probability, config.keys.seed);
    if (!loss) throw std::invalid_argument(loss.error().to_string());
  }
  // Fabric construction compacted the topology, so the directed-edge id
  // space is fixed from here on.
  edge_key_slots_.resize(topology_.directed_edge_count());
  fabric_.set_streaming(
      config.memory_mode == MemoryMode::kStreaming ||
      (config.memory_mode == MemoryMode::kAuto &&
       topology_.node_count() >= kStreamingAutoThreshold));
}

std::size_t Network::rekey(const KeyMaterialSpec& fresh_keys) {
  const std::vector<NodeId> dead = revocation_.revoked_sensors_in_order();
  const std::uint32_t theta = revocation_.threshold();
  keys_ = Predistribution(topology_.node_count(), fresh_keys);
  revocation_ = RevocationRegistry(&keys_, theta);
  revocation_.set_tracer(tracer_);
  for (NodeId s : dead) (void)revocation_.revoke_sensor(s);
  fabric_.reset();
  edge_key_cache_.clear();
  std::fill(edge_key_slots_.begin(), edge_key_slots_.end(), EdgeKeySlot{});
  ++key_generation_;
  return dead.size();
}

std::size_t Network::establish_path_keys() {
  std::size_t established = 0;
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id) {
    for (NodeId v : topology_.neighbors(NodeId{id})) {
      if (v.value < id) continue;
      if (keys_.edge_key(NodeId{id}, v).has_value()) continue;
      if (keys_.path_key_between(NodeId{id}, v).has_value()) continue;
      (void)keys_.register_path_key(NodeId{id}, v);
      ++established;
    }
  }
  if (established > 0) {
    edge_key_cache_.clear();
    std::fill(edge_key_slots_.begin(), edge_key_slots_.end(), EdgeKeySlot{});
    ++key_generation_;
  }
  return established;
}

std::vector<NodeId> Network::usable_neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v : topology_.neighbors(node)) {
    if (usable_edge_key(node, v).has_value()) out.push_back(v);
  }
  return out;
}

std::optional<KeyIndex> Network::usable_edge_key(NodeId a, NodeId b) const {
  const std::size_t revoked = revocation_.revoked_key_count();
  const std::uint32_t slot_index = topology_.directed_edge_slot(a, b);
  if (slot_index != Topology::kNoDirectedEdge &&
      slot_index < edge_key_slots_.size()) {
    EdgeKeySlot& slot = edge_key_slots_[slot_index];
    const std::uint32_t stamp = static_cast<std::uint32_t>(revoked) + 1;
    if (slot.stamp == stamp) {
      if (slot.key == kNoKey) return std::nullopt;
      return slot.key;
    }
    const auto key = compute_usable_edge_key(a, b);
    slot = {key.value_or(kNoKey), stamp};
    // The relation is symmetric; fill the reverse direction too so b→a
    // skips its own ring merge.
    const std::uint32_t reverse = topology_.directed_edge_slot(b, a);
    if (reverse < edge_key_slots_.size()) edge_key_slots_[reverse] = slot;
    return key;
  }
  // Non-adjacent pair or un-compacted topology: the map path.
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  const std::uint64_t edge = (lo << 32) | hi;
  const auto it = edge_key_cache_.find(edge);
  if (it != edge_key_cache_.end() && it->second.revoked_count == revoked)
    return it->second.key;
  const auto key = compute_usable_edge_key(a, b);
  edge_key_cache_[edge] = {key, revoked};
  return key;
}

std::optional<KeyIndex> Network::compute_usable_edge_key(NodeId a,
                                                         NodeId b) const {
  // The smallest *non-revoked* shared ring key: pairs fall back to their
  // next shared key when one is revoked, exactly as Eschenauer-Gligor
  // intends. An established path key serves as the last resort.
  const auto& ra = keys_.ring(a);
  const auto& rb = keys_.ring(b);
  auto ia = ra.indices().begin();
  auto ib = rb.indices().begin();
  while (ia != ra.indices().end() && ib != rb.indices().end()) {
    if (*ia == *ib) {
      if (!revocation_.is_key_revoked(*ia)) return *ia;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const auto path = keys_.path_key_between(a, b);
  if (path.has_value() && !revocation_.is_key_revoked(*path)) return path;
  return std::nullopt;
}

bool Network::send_secure(NodeId from, NodeId to, const Bytes& payload) {
  const auto key_index = usable_edge_key(from, to);
  if (!key_index.has_value()) return false;
  Envelope e;
  e.from = from;
  e.to = to;
  e.edge_key = *key_index;
  e.payload = payload;
  e.edge_mac = keys_.mac_context(*key_index).compute(payload);
  return send_prepared(e);
}

bool Network::send_prepared(const Envelope& envelope) {
  return send_prepared(envelope, envelope.payload);
}

bool Network::send_prepared(const Envelope& envelope,
                            std::span<const std::uint8_t> payload) {
  tracer_.mac_compute(envelope.from, envelope.edge_key);
  bool sent = false;
  for (std::uint32_t copy = 0; copy < redundancy_; ++copy)
    sent = fabric_.send(envelope, payload) || sent;
  return sent;
}

std::size_t Network::broadcast_secure(NodeId from, const Bytes& payload) {
  std::size_t sent = 0;
  for (NodeId v : topology_.neighbors(from)) {
    if (usable_edge_key(from, v).has_value() && send_secure(from, v, payload))
      ++sent;
  }
  return sent;
}

std::span<const Frame> Network::receive_valid(NodeId node, RxScratch& scratch) {
  return receive_valid(node, scratch, tracer_);
}

std::span<const Frame> Network::receive_valid(NodeId node) {
  return receive_valid(node, own_scratch_, tracer_);
}

std::span<const Frame> Network::receive_valid(NodeId node, RxScratch& scratch,
                                              Tracer tracer) {
  scratch.frames.clear();
  const std::span<const Frame> inbox = fabric_.take_inbox(node);
  if (inbox.empty()) return {};  // most per-slot drains; skip the batch
  for (const Frame& f : inbox) {
    if (f.edge_key == kNoKey) continue;
    if (revocation_.is_key_revoked(f.edge_key)) continue;
    if (!holds_claimed_key(node, f)) continue;
    scratch.frames.push_back(f);
  }
  if (scratch.frames.empty()) return {};
  if (scratch.frames.size() == 1) {
    // One candidate: a direct verify skips the batch staging entirely.
    const Frame& f = scratch.frames.front();
    const bool mac_ok =
        keys_.mac_context(f.edge_key).verify(f.payload, f.edge_mac);
    tracer.mac_verify(node, f.edge_key, mac_ok);
    if (!mac_ok) scratch.frames.clear();
    return scratch.frames;
  }
  // All candidate MACs of the inbox verify through one multi-buffer batch;
  // mac_verify events still fire in frame order, so the trace stream is
  // identical to the old one-at-a-time loop.
  scratch.batch.clear();
  for (const Frame& f : scratch.frames)
    scratch.batch.add(keys_.mac_context(f.edge_key), f.payload);
  scratch.batch.compute();
  const std::span<const Mac> macs = scratch.batch.macs();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < scratch.frames.size(); ++i) {
    const bool mac_ok = macs[i] == scratch.frames[i].edge_mac;
    tracer.mac_verify(node, scratch.frames[i].edge_key, mac_ok);
    if (mac_ok) scratch.frames[keep++] = scratch.frames[i];
  }
  scratch.frames.resize(keep);
  return scratch.frames;
}

namespace {
constexpr std::uint32_t kNetworkSection = 0x4e455457;  // "NETW"
}  // namespace

void Network::snapshot_save(SnapshotWriter& w) const {
  w.section(kNetworkSection);
  w.pod(key_generation_);
  // The slot table restores wholesale (stamps included): a slot filled
  // under revoked count c is only trusted while the live count is still c,
  // and the captured registry restores alongside — so stale stamps can
  // never alias a different revoked set.
  w.vec_pod(edge_key_slots_);
  revocation_.snapshot_save(w);
  fabric_.snapshot_save(w);
}

void Network::snapshot_load(SnapshotReader& r) {
  r.section(kNetworkSection);
  const auto generation = r.pod<std::uint64_t>();
  if (generation != key_generation_)
    throw std::invalid_argument(
        "Network::snapshot_load: key material changed since capture "
        "(rekey/path-key establishment) — the snapshot is stale");
  r.vec_pod(edge_key_slots_);
  edge_key_cache_.clear();
  warm_valid_ = false;
  revocation_.snapshot_load(r);
  fabric_.snapshot_load(r);
}

std::uint64_t Network::snapshot_fingerprint() const {
  std::uint64_t h = 0x564d41542d534e41ULL;  // "VMAT-SNA"
  h = snapshot_mix(h, topology_.node_count());
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id)
    for (const NodeId v : topology_.neighbors(NodeId{id}))
      h = snapshot_mix(h, (static_cast<std::uint64_t>(id) << 32) | v.value);
  const KeyMaterialSpec& keys = keys_.config();
  h = snapshot_mix(h, keys.pool_size);
  h = snapshot_mix(h, keys.ring_size);
  h = snapshot_mix(h, keys.seed);
  h = snapshot_mix(h, revocation_.threshold());
  h = snapshot_mix(h, redundancy_);
  return fabric_.config_fingerprint(h);
}

bool Network::holds_claimed_key(NodeId node, const Frame& f) const {
  const std::uint32_t slot = topology_.directed_edge_slot(f.from, node);
  if (slot != Topology::kNoDirectedEdge && slot < edge_key_slots_.size()) {
    const EdgeKeySlot& s = edge_key_slots_[slot];
    const auto stamp =
        static_cast<std::uint32_t>(revocation_.revoked_key_count()) + 1;
    // A warmed usable edge key is by construction shared by both
    // endpoints, so a matching claim is held without any ring work. A
    // mismatch proves nothing (the claim may be another shared key).
    if (s.stamp == stamp && s.key != kNoKey && s.key == f.edge_key)
      return true;
  }
  return keys_.node_holds(node, f.edge_key);
}

void Network::warm_crypto_caches() const {
  if (warm_valid_ && warm_generation_ == key_generation_ &&
      warm_revoked_count_ == revocation_.revoked_key_count())
    return;
  // Every pool MAC context (u-bounded, not n-bounded): parallel RX
  // verifies under whatever held key a frame claims — not only warmed
  // edge keys — so each reachable context must already be a read-only
  // hit before the fan-out. Sensor-key MACs are built on the stack by
  // the sharded phases, so the per-sensor cache stays cold here.
  for (std::uint32_t k = 0; k < keys_.config().pool_size; ++k)
    (void)keys_.mac_context(KeyIndex{k});
  keys_.warm_path_contexts();
  warm_edge_keys();
  warm_valid_ = true;
  warm_generation_ = key_generation_;
  warm_revoked_count_ = revocation_.revoked_key_count();
}

void Network::warm_edge_keys() const {
  const std::uint32_t n = topology_.node_count();
  const std::uint32_t u = keys_.config().pool_size;
  const std::size_t words = (static_cast<std::size_t>(u) + 63) / 64;
  const auto stamp =
      static_cast<std::uint32_t>(revocation_.revoked_key_count()) + 1;

  // Transient per-node ring bitmaps (n · u/8 bytes). Past the budget the
  // pairwise-merge path still warms correctly, only slower.
  constexpr std::uint64_t kWarmBitmapBudget = 1ULL << 28;  // 256 MB
  if (static_cast<std::uint64_t>(n) * words * 8 > kWarmBitmapBudget) {
    for (std::uint32_t id = 0; id < n; ++id) {
      for (NodeId v : topology_.neighbors(NodeId{id})) {
        if (v.value < id) continue;
        (void)usable_edge_key(NodeId{id}, v);
      }
    }
    return;
  }

  // Global non-revoked mask over the pool.
  std::vector<std::uint64_t> usable(words, ~0ULL);
  if ((u & 63) != 0) usable[words - 1] = (1ULL << (u & 63)) - 1;
  for (const RevocationEvent& e : revocation_.events())
    if (e.key.value < u)
      usable[e.key.value >> 6] &= ~(1ULL << (e.key.value & 63));

  // Derive each ring exactly once, straight into its bitmap row.
  std::vector<std::uint64_t> bitmaps(static_cast<std::size_t>(n) * words, 0);
  for (std::uint32_t id = 0; id < n; ++id)
    KeyRing::derive_into_bits(keys_.ring_seed(NodeId{id}),
                              keys_.config().ring_size, u,
                              bitmaps.data() +
                                  static_cast<std::size_t>(id) * words);

  // Smallest shared non-revoked index per edge = lowest set bit of the
  // AND — exactly what compute_usable_edge_key()'s sorted merge returns,
  // path-key fallback included.
  for (std::uint32_t id = 0; id < n; ++id) {
    const std::uint64_t* ri =
        bitmaps.data() + static_cast<std::size_t>(id) * words;
    for (NodeId v : topology_.neighbors(NodeId{id})) {
      if (v.value < id) continue;
      const std::uint64_t* rj =
          bitmaps.data() + static_cast<std::size_t>(v.value) * words;
      KeyIndex key = kNoKey;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t m = ri[w] & rj[w] & usable[w];
        if (m != 0) {
          key = KeyIndex{
              static_cast<std::uint32_t>(w * 64 + std::countr_zero(m))};
          break;
        }
      }
      if (key == kNoKey) {
        const auto path = keys_.path_key_between(NodeId{id}, v);
        if (path.has_value() && !revocation_.is_key_revoked(*path))
          key = *path;
      }
      const EdgeKeySlot slot{key, stamp};
      const std::uint32_t fwd = topology_.directed_edge_slot(NodeId{id}, v);
      const std::uint32_t rev = topology_.directed_edge_slot(v, NodeId{id});
      if (fwd < edge_key_slots_.size()) edge_key_slots_[fwd] = slot;
      if (rev < edge_key_slots_.size()) edge_key_slots_[rev] = slot;
    }
  }
}

}  // namespace vmat
