#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "sim/snapshot.h"
#include "spec/simulation_spec.h"

namespace vmat {
namespace {

Topology validated_topology(const SimulationSpec& spec) {
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "Network: invalid SimulationSpec";
    for (const Error& e : errors) {
      msg += "\n  ";
      msg += e.to_string();
    }
    throw std::invalid_argument(msg);
  }
  return spec.build_topology();
}

}  // namespace

Network::Network(const SimulationSpec& spec)
    : Network(validated_topology(spec), spec.network()) {}

Network::Network(Topology topology, const NetworkSpec& config)
    : topology_(std::move(topology)),
      keys_(topology_.node_count(), config.keys),
      revocation_(&keys_, config.revocation_threshold),
      fabric_(&topology_, config.capacity_per_slot),
      redundancy_(config.redundancy == 0 ? 1 : config.redundancy) {
  if (config.loss_probability > 0.0) {
    // Spec-validated configs never hit this; a hand-built config with an
    // out-of-domain loss still fails fast at construction.
    const Status loss =
        fabric_.set_loss(config.loss_probability, config.keys.seed);
    if (!loss) throw std::invalid_argument(loss.error().to_string());
  }
  // Fabric construction compacted the topology, so the directed-edge id
  // space is fixed from here on.
  edge_key_slots_.resize(topology_.directed_edge_count());
}

std::size_t Network::rekey(const KeyMaterialSpec& fresh_keys) {
  const std::vector<NodeId> dead = revocation_.revoked_sensors_in_order();
  const std::uint32_t theta = revocation_.threshold();
  keys_ = Predistribution(topology_.node_count(), fresh_keys);
  revocation_ = RevocationRegistry(&keys_, theta);
  revocation_.set_tracer(tracer_);
  for (NodeId s : dead) (void)revocation_.revoke_sensor(s);
  fabric_.reset();
  edge_key_cache_.clear();
  std::fill(edge_key_slots_.begin(), edge_key_slots_.end(), EdgeKeySlot{});
  ++key_generation_;
  return dead.size();
}

std::size_t Network::establish_path_keys() {
  std::size_t established = 0;
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id) {
    for (NodeId v : topology_.neighbors(NodeId{id})) {
      if (v.value < id) continue;
      if (keys_.edge_key(NodeId{id}, v).has_value()) continue;
      if (keys_.path_key_between(NodeId{id}, v).has_value()) continue;
      (void)keys_.register_path_key(NodeId{id}, v);
      ++established;
    }
  }
  if (established > 0) {
    edge_key_cache_.clear();
    std::fill(edge_key_slots_.begin(), edge_key_slots_.end(), EdgeKeySlot{});
    ++key_generation_;
  }
  return established;
}

std::vector<NodeId> Network::usable_neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (NodeId v : topology_.neighbors(node)) {
    if (usable_edge_key(node, v).has_value()) out.push_back(v);
  }
  return out;
}

std::optional<KeyIndex> Network::usable_edge_key(NodeId a, NodeId b) const {
  const std::size_t revoked = revocation_.revoked_key_count();
  const std::uint32_t slot_index = topology_.directed_edge_slot(a, b);
  if (slot_index != Topology::kNoDirectedEdge &&
      slot_index < edge_key_slots_.size()) {
    EdgeKeySlot& slot = edge_key_slots_[slot_index];
    const std::uint32_t stamp = static_cast<std::uint32_t>(revoked) + 1;
    if (slot.stamp == stamp) {
      if (slot.key == kNoKey) return std::nullopt;
      return slot.key;
    }
    const auto key = compute_usable_edge_key(a, b);
    slot = {key.value_or(kNoKey), stamp};
    // The relation is symmetric; fill the reverse direction too so b→a
    // skips its own ring merge.
    const std::uint32_t reverse = topology_.directed_edge_slot(b, a);
    if (reverse < edge_key_slots_.size()) edge_key_slots_[reverse] = slot;
    return key;
  }
  // Non-adjacent pair or un-compacted topology: the map path.
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  const std::uint64_t edge = (lo << 32) | hi;
  const auto it = edge_key_cache_.find(edge);
  if (it != edge_key_cache_.end() && it->second.revoked_count == revoked)
    return it->second.key;
  const auto key = compute_usable_edge_key(a, b);
  edge_key_cache_[edge] = {key, revoked};
  return key;
}

std::optional<KeyIndex> Network::compute_usable_edge_key(NodeId a,
                                                         NodeId b) const {
  // The smallest *non-revoked* shared ring key: pairs fall back to their
  // next shared key when one is revoked, exactly as Eschenauer-Gligor
  // intends. An established path key serves as the last resort.
  const auto& ra = keys_.ring(a);
  const auto& rb = keys_.ring(b);
  auto ia = ra.indices().begin();
  auto ib = rb.indices().begin();
  while (ia != ra.indices().end() && ib != rb.indices().end()) {
    if (*ia == *ib) {
      if (!revocation_.is_key_revoked(*ia)) return *ia;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const auto path = keys_.path_key_between(a, b);
  if (path.has_value() && !revocation_.is_key_revoked(*path)) return path;
  return std::nullopt;
}

bool Network::send_secure(NodeId from, NodeId to, const Bytes& payload) {
  const auto key_index = usable_edge_key(from, to);
  if (!key_index.has_value()) return false;
  Envelope e;
  e.from = from;
  e.to = to;
  e.edge_key = *key_index;
  e.payload = payload;
  e.edge_mac = keys_.mac_context(*key_index).compute(payload);
  return send_prepared(e);
}

bool Network::send_prepared(const Envelope& envelope) {
  return send_prepared(envelope, envelope.payload);
}

bool Network::send_prepared(const Envelope& envelope,
                            std::span<const std::uint8_t> payload) {
  tracer_.mac_compute(envelope.from, envelope.edge_key);
  bool sent = false;
  for (std::uint32_t copy = 0; copy < redundancy_; ++copy)
    sent = fabric_.send(envelope, payload) || sent;
  return sent;
}

std::size_t Network::broadcast_secure(NodeId from, const Bytes& payload) {
  std::size_t sent = 0;
  for (NodeId v : topology_.neighbors(from)) {
    if (usable_edge_key(from, v).has_value() && send_secure(from, v, payload))
      ++sent;
  }
  return sent;
}

std::span<const Frame> Network::receive_valid(NodeId node, RxScratch& scratch) {
  return receive_valid(node, scratch, tracer_);
}

std::span<const Frame> Network::receive_valid(NodeId node) {
  return receive_valid(node, own_scratch_, tracer_);
}

std::span<const Frame> Network::receive_valid(NodeId node, RxScratch& scratch,
                                              Tracer tracer) {
  scratch.frames.clear();
  const std::span<const Frame> inbox = fabric_.take_inbox(node);
  if (inbox.empty()) return {};  // most per-slot drains; skip the batch
  for (const Frame& f : inbox) {
    if (f.edge_key == kNoKey) continue;
    if (revocation_.is_key_revoked(f.edge_key)) continue;
    if (!keys_.node_holds(node, f.edge_key)) continue;
    scratch.frames.push_back(f);
  }
  if (scratch.frames.empty()) return {};
  if (scratch.frames.size() == 1) {
    // One candidate: a direct verify skips the batch staging entirely.
    const Frame& f = scratch.frames.front();
    const bool mac_ok =
        keys_.mac_context(f.edge_key).verify(f.payload, f.edge_mac);
    tracer.mac_verify(node, f.edge_key, mac_ok);
    if (!mac_ok) scratch.frames.clear();
    return scratch.frames;
  }
  // All candidate MACs of the inbox verify through one multi-buffer batch;
  // mac_verify events still fire in frame order, so the trace stream is
  // identical to the old one-at-a-time loop.
  scratch.batch.clear();
  for (const Frame& f : scratch.frames)
    scratch.batch.add(keys_.mac_context(f.edge_key), f.payload);
  scratch.batch.compute();
  const std::span<const Mac> macs = scratch.batch.macs();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < scratch.frames.size(); ++i) {
    const bool mac_ok = macs[i] == scratch.frames[i].edge_mac;
    tracer.mac_verify(node, scratch.frames[i].edge_key, mac_ok);
    if (mac_ok) scratch.frames[keep++] = scratch.frames[i];
  }
  scratch.frames.resize(keep);
  return scratch.frames;
}

namespace {
constexpr std::uint32_t kNetworkSection = 0x4e455457;  // "NETW"
}  // namespace

void Network::snapshot_save(SnapshotWriter& w) const {
  w.section(kNetworkSection);
  w.pod(key_generation_);
  // The slot table restores wholesale (stamps included): a slot filled
  // under revoked count c is only trusted while the live count is still c,
  // and the captured registry restores alongside — so stale stamps can
  // never alias a different revoked set.
  w.vec_pod(edge_key_slots_);
  revocation_.snapshot_save(w);
  fabric_.snapshot_save(w);
}

void Network::snapshot_load(SnapshotReader& r) {
  r.section(kNetworkSection);
  const auto generation = r.pod<std::uint64_t>();
  if (generation != key_generation_)
    throw std::invalid_argument(
        "Network::snapshot_load: key material changed since capture "
        "(rekey/path-key establishment) — the snapshot is stale");
  r.vec_pod(edge_key_slots_);
  edge_key_cache_.clear();
  revocation_.snapshot_load(r);
  fabric_.snapshot_load(r);
}

std::uint64_t Network::snapshot_fingerprint() const {
  std::uint64_t h = 0x564d41542d534e41ULL;  // "VMAT-SNA"
  h = snapshot_mix(h, topology_.node_count());
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id)
    for (const NodeId v : topology_.neighbors(NodeId{id}))
      h = snapshot_mix(h, (static_cast<std::uint64_t>(id) << 32) | v.value);
  const KeyMaterialSpec& keys = keys_.config();
  h = snapshot_mix(h, keys.pool_size);
  h = snapshot_mix(h, keys.ring_size);
  h = snapshot_mix(h, keys.seed);
  h = snapshot_mix(h, revocation_.threshold());
  h = snapshot_mix(h, redundancy_);
  return fabric_.config_fingerprint(h);
}

void Network::warm_crypto_caches() const {
  keys_.warm_mac_contexts();
  for (std::uint32_t id = 0; id < topology_.node_count(); ++id) {
    for (NodeId v : topology_.neighbors(NodeId{id})) {
      if (v.value < id) continue;
      (void)usable_edge_key(NodeId{id}, v);
    }
  }
}

}  // namespace vmat
