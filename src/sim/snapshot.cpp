#include "sim/snapshot.h"

#include <cstdlib>

namespace vmat {

bool snapshots_enabled() {
  const char* env = std::getenv("VMAT_SNAPSHOT");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

}  // namespace vmat
