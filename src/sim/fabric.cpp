#include "sim/fabric.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "util/random.h"

namespace vmat {

Fabric::Fabric(const Topology* topology, std::size_t capacity_per_slot)
    : topology_(topology),
      capacity_per_slot_(capacity_per_slot),
      sent_this_slot_(topology->node_count(), 0),
      in_flight_(topology->node_count()),
      inbox_(topology->node_count()),
      bytes_sent_(topology->node_count(), 0),
      bytes_received_(topology->node_count(), 0) {
  if (topology == nullptr) throw std::invalid_argument("Fabric: null topology");
}

Status Fabric::set_loss(double probability, std::uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0)
    return Error{ErrorCode::kInvalidArgument,
                 "Fabric::set_loss: probability in [0,1)"};
  loss_probability_ = probability;
  loss_rng_state_ = seed ^ 0x10553eedULL;
  return {};
}

bool Fabric::send(Envelope envelope) {
  return send_as(envelope.from, std::move(envelope));
}

bool Fabric::send_as(NodeId actual_sender, Envelope envelope) {
  if (actual_sender.value >= in_flight_.size() ||
      envelope.to.value >= in_flight_.size())
    throw std::out_of_range("Fabric::send_as: bad node id");
  const std::size_t size = frame_size(envelope);
  if (!topology_->has_edge(actual_sender, envelope.to)) {
    ++dropped_;
    tracer_.frame_dropped(actual_sender, envelope.to, size);
    return false;  // radios cannot reach beyond physical neighbors
  }
  if (sent_this_slot_[actual_sender.value] >= capacity_per_slot_) {
    ++dropped_;
    tracer_.frame_dropped(actual_sender, envelope.to, size);
    return false;
  }
  ++sent_this_slot_[actual_sender.value];
  ++frames_sent_;
  bytes_sent_[actual_sender.value] += size;
  total_bytes_ += size;
  tracer_.frame_sent(actual_sender, envelope.to, envelope.edge_key, size);
  if (loss_probability_ > 0.0) {
    const double roll =
        static_cast<double>(splitmix64(loss_rng_state_) >> 11) * 0x1.0p-53;
    if (roll < loss_probability_) {
      ++lost_;
      tracer_.frame_lost(actual_sender, envelope.to, size);
      return true;  // sender cannot tell; the ether ate it
    }
  }
  in_flight_[envelope.to.value].push_back(std::move(envelope));
  return true;
}

void Fabric::end_slot() {
  for (std::uint32_t id = 0; id < in_flight_.size(); ++id) {
    auto& arriving = in_flight_[id];
    if (!arriving.empty()) {
      for (const auto& e : arriving) {
        const std::size_t size = frame_size(e);
        bytes_received_[id] += size;
        tracer_.frame_delivered(NodeId{id}, size);
      }
      auto& box = inbox_[id];
      if (box.empty()) {
        // Wholesale handoff: no per-envelope moves, and the vector that
        // swaps back keeps its capacity for the next slot.
        box.swap(arriving);
      } else {
        box.reserve(box.size() + arriving.size());
        std::move(arriving.begin(), arriving.end(), std::back_inserter(box));
        arriving.clear();
      }
    }
    sent_this_slot_[id] = 0;
  }
}

std::vector<Envelope> Fabric::take_inbox(NodeId node) {
  if (node.value >= inbox_.size())
    throw std::out_of_range("Fabric::take_inbox");
  return std::exchange(inbox_[node.value], {});
}

void Fabric::reset() {
  for (auto& q : in_flight_) q.clear();
  for (auto& q : inbox_) q.clear();
  for (auto& c : sent_this_slot_) c = 0;
}

std::uint64_t Fabric::bytes_sent(NodeId node) const {
  if (node.value >= bytes_sent_.size())
    throw std::out_of_range("Fabric::bytes_sent");
  return bytes_sent_[node.value];
}

std::uint64_t Fabric::bytes_received(NodeId node) const {
  if (node.value >= bytes_received_.size())
    throw std::out_of_range("Fabric::bytes_received");
  return bytes_received_[node.value];
}

}  // namespace vmat
