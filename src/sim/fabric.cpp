#include "sim/fabric.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/snapshot.h"
#include "util/random.h"

namespace vmat {

std::span<const std::uint8_t> SlotArena::store(
    std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return {};
  while (active_ < chunks_.size() &&
         chunks_[active_].fill + bytes.size() > chunks_[active_].size)
    ++active_;
  if (active_ == chunks_.size()) {
    // Geometric growth keeps the chunk count logarithmic in peak slot
    // volume; one slot's largest payload always fits a single chunk.
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().size;
    const std::size_t size = std::max({std::size_t{4096}, 2 * last,
                                       bytes.size()});
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size, 0});
  }
  Chunk& chunk = chunks_[active_];
  std::uint8_t* dst = chunk.data.get() + chunk.fill;
  std::memcpy(dst, bytes.data(), bytes.size());
  chunk.fill += bytes.size();
  used_ += bytes.size();
  return {dst, bytes.size()};
}

void SlotArena::reset() noexcept {
  for (Chunk& chunk : chunks_) chunk.fill = 0;
  active_ = 0;
  used_ = 0;
}

void SlotArena::release() noexcept {
  chunks_.clear();
  chunks_.shrink_to_fit();
  active_ = 0;
  used_ = 0;
}

std::size_t SlotArena::capacity() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

Fabric::Fabric(const Topology* topology, std::size_t capacity_per_slot)
    : topology_(topology),
      capacity_per_slot_(capacity_per_slot),
      sent_this_slot_(topology->node_count(), 0),
      inbox_begin_(topology->node_count(), 0),
      inbox_end_(topology->node_count(), 0),
      bytes_sent_(topology->node_count(), 0),
      bytes_received_(topology->node_count(), 0) {
  if (topology == nullptr) throw std::invalid_argument("Fabric: null topology");
  // Every phase loop sweeps neighbors per slot; make sure the adjacency is
  // in its flat CSR form before the first hot loop runs (single-threaded
  // here by construction).
  topology->compact();
}

Status Fabric::set_loss(double probability, std::uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0)
    return Error{ErrorCode::kInvalidArgument,
                 "Fabric::set_loss: probability in [0,1)"};
  loss_probability_ = probability;
  loss_rng_state_ = seed ^ 0x10553eedULL;
  return {};
}

bool Fabric::send(const Envelope& envelope) {
  return send_as(envelope.from, envelope, envelope.payload);
}

bool Fabric::send(const Envelope& envelope,
                  std::span<const std::uint8_t> payload) {
  return send_as(envelope.from, envelope, payload);
}

bool Fabric::send_as(NodeId actual_sender, const Envelope& envelope) {
  return send_as(actual_sender, envelope, envelope.payload);
}

bool Fabric::send_as(NodeId actual_sender, const Envelope& envelope,
                     std::span<const std::uint8_t> payload) {
  if (actual_sender.value >= sent_this_slot_.size() ||
      envelope.to.value >= sent_this_slot_.size())
    throw std::out_of_range("Fabric::send_as: bad node id");
  const std::size_t size = kFrameOverheadBytes + payload.size();
  if (!topology_->has_edge(actual_sender, envelope.to)) {
    ++dropped_;
    tracer_.frame_dropped(actual_sender, envelope.to, size);
    return false;  // radios cannot reach beyond physical neighbors
  }
  if (sent_this_slot_[actual_sender.value] >= capacity_per_slot_) {
    ++dropped_;
    tracer_.frame_dropped(actual_sender, envelope.to, size);
    return false;
  }
  ++sent_this_slot_[actual_sender.value];
  ++frames_sent_;
  bytes_sent_[actual_sender.value] += size;
  total_bytes_ += size;
  tracer_.frame_sent(actual_sender, envelope.to, envelope.edge_key, size);
  if (loss_probability_ > 0.0) {
    const double roll =
        static_cast<double>(splitmix64(loss_rng_state_) >> 11) * 0x1.0p-53;
    if (roll < loss_probability_) {
      ++lost_;
      tracer_.frame_lost(actual_sender, envelope.to, size);
      return true;  // sender cannot tell; the ether ate it
    }
  }
  staged_.push_back(Frame{envelope.from, envelope.to, envelope.edge_key,
                          envelope.edge_mac,
                          arenas_[collect_].store(payload)});
  return true;
}

void Fabric::end_slot() {
  const std::size_t n = sent_this_slot_.size();

  // Stable counting sort of staged_ by destination: delivered_ becomes one
  // flat frame table grouped by receiver, per-node ranges in
  // inbox_begin_/inbox_end_. Delivery order within a node is global send
  // order, exactly as the per-node queues used to behave.
  sort_pos_.assign(n, 0);
  for (const Frame& f : staged_) ++sort_pos_[f.to.value];
  std::uint32_t running = 0;
  for (std::size_t id = 0; id < n; ++id) {
    inbox_begin_[id] = running;
    running += sort_pos_[id];
    inbox_end_[id] = running;
    sort_pos_[id] = inbox_begin_[id];
  }
  // Streaming mode retires the closing delivery slot's frame-table slack
  // before the sort refills it: capacity tracks the current slot instead
  // of the biggest slot ever seen.
  if (streaming_) {
    delivered_.clear();
    delivered_.shrink_to_fit();
  }
  delivered_.resize(staged_.size());
  for (const Frame& f : staged_) delivered_[sort_pos_[f.to.value]++] = f;
  staged_.clear();
  if (streaming_) staged_.shrink_to_fit();

  // Per-receiver delivery accounting, in receiver order (the order the old
  // per-node inbox walk used).
  for (std::size_t id = 0; id < n; ++id) {
    for (std::uint32_t i = inbox_begin_[id]; i < inbox_end_[id]; ++i) {
      const std::size_t size = frame_size(delivered_[i]);
      bytes_received_[id] += size;
      tracer_.frame_delivered(NodeId{static_cast<std::uint32_t>(id)}, size);
    }
    sent_this_slot_[id] = 0;
  }

  // Rotate arenas: this slot's collection arena now backs the open delivery
  // slot; the previous delivery arena is rewound and starts collecting.
  // Undrained frames from the previous slot die here with their arena.
  // Streaming mode frees the retiring arena's chunks outright instead of
  // keeping their capacity parked for the rest of the run.
  collect_ ^= 1;
  if (streaming_)
    arenas_[collect_].release();
  else
    arenas_[collect_].reset();
}

std::span<const Frame> Fabric::take_inbox(NodeId node) {
  if (node.value >= inbox_begin_.size())
    throw std::out_of_range("Fabric::take_inbox");
  const std::uint32_t begin = inbox_begin_[node.value];
  const std::uint32_t end = inbox_end_[node.value];
  inbox_begin_[node.value] = end;  // drained
  return std::span<const Frame>(delivered_.data() + begin, end - begin);
}

void Fabric::reset() {
  staged_.clear();
  delivered_.clear();
  std::fill(inbox_begin_.begin(), inbox_begin_.end(), 0);
  std::fill(inbox_end_.begin(), inbox_end_.end(), 0);
  std::fill(sent_this_slot_.begin(), sent_this_slot_.end(), 0);
  if (streaming_) {
    staged_.shrink_to_fit();
    delivered_.shrink_to_fit();
    arenas_[0].release();
    arenas_[1].release();
  } else {
    arenas_[0].reset();
    arenas_[1].reset();
  }
  collect_ = 0;
}

namespace {

constexpr std::uint32_t kFabricSection = 0x46414252;  // "FABR"

/// Everything of a Frame except the payload span, which is serialized as
/// raw bytes and re-stored into an arena on load.
struct FrameImage {
  NodeId from;
  NodeId to;
  KeyIndex edge_key{kNoKey};
  Mac edge_mac;
};
static_assert(std::is_trivially_copyable_v<FrameImage>);

void save_frame(SnapshotWriter& w, const Frame& f) {
  w.pod(FrameImage{f.from, f.to, f.edge_key, f.edge_mac});
  w.bytes(f.payload);
}

Frame load_frame(SnapshotReader& r, SlotArena& arena) {
  FrameImage image;
  r.pod(image);
  return Frame{image.from, image.to, image.edge_key, image.edge_mac,
               arena.store(r.bytes())};
}

}  // namespace

void Fabric::snapshot_save(SnapshotWriter& w) const {
  w.section(kFabricSection);
  w.pod(loss_rng_state_);
  w.pod(lost_);
  w.pod(static_cast<std::uint64_t>(collect_));
  w.vec_pod(sent_this_slot_);
  w.vec_pod(bytes_sent_);
  w.vec_pod(bytes_received_);
  w.pod(total_bytes_);
  w.pod(dropped_);
  w.pod(frames_sent_);

  w.pod(static_cast<std::uint64_t>(staged_.size()));
  for (std::size_t i = 0; i < staged_.size(); ++i) save_frame(w, staged_[i]);

  // Undrained delivered frames, per receiver in id order. take_inbox()
  // collapses begin onto end, so drained ranges capture as empty.
  for (std::size_t id = 0; id < inbox_begin_.size(); ++id) {
    w.pod(static_cast<std::uint64_t>(inbox_end_[id] - inbox_begin_[id]));
    for (std::uint32_t i = inbox_begin_[id]; i < inbox_end_[id]; ++i)
      save_frame(w, delivered_[i]);
  }
}

void Fabric::snapshot_load(SnapshotReader& r) {
  r.section(kFabricSection);
  r.pod(loss_rng_state_);
  r.pod(lost_);
  collect_ = static_cast<std::size_t>(r.pod<std::uint64_t>()) & 1;
  r.vec_pod(sent_this_slot_);
  r.vec_pod(bytes_sent_);
  r.vec_pod(bytes_received_);
  r.pod(total_bytes_);
  r.pod(dropped_);
  r.pod(frames_sent_);

  // Rewind both arenas (capacity kept) and re-store payloads: staged
  // frames into the collection arena, delivered ones into the arena that
  // backs the open delivery slot (see end_slot()'s rotation).
  arenas_[0].reset();
  arenas_[1].reset();
  staged_.clear();
  const auto staged_count = static_cast<std::size_t>(r.pod<std::uint64_t>());
  for (std::size_t i = 0; i < staged_count; ++i)
    staged_.push_back(load_frame(r, arenas_[collect_]));

  // Delivered frames re-pack compacted (drained prefixes dropped); the
  // per-node ranges yield the same frames in the same order as before.
  delivered_.clear();
  std::uint32_t running = 0;
  for (std::size_t id = 0; id < inbox_begin_.size(); ++id) {
    const auto count = static_cast<std::uint32_t>(r.pod<std::uint64_t>());
    inbox_begin_[id] = running;
    for (std::uint32_t i = 0; i < count; ++i)
      delivered_.push_back(load_frame(r, arenas_[collect_ ^ 1]));
    running += count;
    inbox_end_[id] = running;
  }
}

std::uint64_t Fabric::config_fingerprint(std::uint64_t h) const noexcept {
  h = snapshot_mix(h, static_cast<std::uint64_t>(capacity_per_slot_));
  h = snapshot_mix(h, std::bit_cast<std::uint64_t>(loss_probability_));
  return h;
}

std::uint64_t Fabric::bytes_sent(NodeId node) const {
  if (node.value >= bytes_sent_.size())
    throw std::out_of_range("Fabric::bytes_sent");
  return bytes_sent_[node.value];
}

std::uint64_t Fabric::bytes_received(NodeId node) const {
  if (node.value >= bytes_received_.size())
    throw std::out_of_range("Fabric::bytes_received");
  return bytes_received_[node.value];
}

}  // namespace vmat
