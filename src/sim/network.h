// Secure network: topology + key predistribution + revocation + fabric.
//
// This is the mechanical substrate the protocol phases run on. It provides
// the *honest* send/receive discipline:
//   - a frame to a neighbor is authenticated with the pair's edge key;
//   - on receipt, a node accepts a frame only if it itself holds the claimed
//     edge key, the key is not revoked, and the edge MAC verifies.
// Nothing here knows about protocol semantics or about which nodes are
// malicious; the adversary bypasses these helpers and talks to the fabric
// directly (constrained by physics and by the keys it actually holds).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/mac_batch.h"
#include "keys/predistribution.h"
#include "keys/revocation.h"
#include "sim/fabric.h"
#include "sim/topology.h"

namespace vmat {

struct NetworkSpec {
  KeyMaterialSpec keys;
  /// θ for full-sensor revocation; 0 (default) disables it. θ must be set
  /// well above the expected honest ring overlap with the adversary's key
  /// set (≈ f·r²/u, see Figure 7), otherwise ring revocations cascade into
  /// honest sensors.
  std::uint32_t revocation_threshold{0};
  std::size_t capacity_per_slot{std::numeric_limits<std::size_t>::max()};
  /// Per-frame loss probability (default 0: the paper's "messages are
  /// reliable" assumption holds natively).
  double loss_probability{0.0};
  /// Blind repetitions per logical transmission — the paper's "after
  /// proper retransmissions if necessary". With loss p and redundancy k, a
  /// logical message is lost with probability p^k.
  std::uint32_t redundancy{1};
  /// Fabric allocation policy (sim/fabric.h). kAuto resolves to streaming
  /// at node counts >= kStreamingAutoThreshold, resident below. Purely an
  /// allocation policy — results are bit-identical either way.
  MemoryMode memory_mode{MemoryMode::kAuto};
};

class SimulationSpec;

/// Receive-side scratch for Network::receive_valid(): the candidate-frame
/// list and the multi-buffer MAC batch live across calls, so draining an
/// inbox allocates nothing in the steady state. Callers own one per thread
/// of execution (the sharded phase drivers keep one per shard).
struct RxScratch {
  std::vector<Frame> frames;
  MacBatch batch;
};

class Network {
 public:
  Network(Topology topology, const NetworkSpec& config);

  /// Build the whole deployment — topology included — from a validated
  /// SimulationSpec. Throws std::invalid_argument when spec.validate()
  /// reports errors (validate first for typed errors).
  explicit Network(const SimulationSpec& spec);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return topology_.node_count();
  }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const Predistribution& keys() const noexcept { return keys_; }
  [[nodiscard]] RevocationRegistry& revocation() noexcept { return revocation_; }
  [[nodiscard]] const RevocationRegistry& revocation() const noexcept {
    return revocation_;
  }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }

  /// Attach (or detach, with a default handle) the flight recorder to this
  /// network and its fabric/revocation registry. The coordinator attaches
  /// around each execution; the handle must not outlive its TraceState.
  void set_tracer(Tracer tracer) noexcept {
    tracer_ = tracer;
    fabric_.set_tracer(tracer);
    revocation_.set_tracer(tracer);
  }

  /// Eschenauer-Gligor path-key establishment: give every physical
  /// neighbor pair that shares no ring key a dedicated pairwise path key,
  /// so the secure topology equals the physical one even with sparse
  /// rings. Returns the number of path keys established.
  std::size_t establish_path_keys();

  /// Physical neighbors with whom `node` shares a *usable* (non-revoked)
  /// edge key. This is the communication graph honest protocol code uses.
  [[nodiscard]] std::vector<NodeId> usable_neighbors(NodeId node) const;

  /// The usable edge key between two physical neighbors, if any.
  [[nodiscard]] std::optional<KeyIndex> usable_edge_key(NodeId a,
                                                        NodeId b) const;

  /// Honest unicast: MAC the payload with the pair's edge key and transmit.
  /// Returns false if there is no usable edge key or the fabric dropped it.
  bool send_secure(NodeId from, NodeId to, const Bytes& payload);

  /// Transmit an envelope whose edge MAC was already computed (the sharded
  /// phase drivers batch their MACs, then replay sends serially through
  /// here). Emits the same mac_compute trace event and the same redundancy
  /// copies as send_secure, so the event stream is indistinguishable. The
  /// span overload sends `payload` in place of envelope.payload, letting
  /// replay loops keep their payloads in one flat buffer.
  bool send_prepared(const Envelope& envelope);
  bool send_prepared(const Envelope& envelope,
                     std::span<const std::uint8_t> payload);

  /// Honest local broadcast: send_secure to every usable neighbor.
  /// Returns the number of frames transmitted.
  std::size_t broadcast_secure(NodeId from, const Bytes& payload);

  /// Honest receive: drain `node`'s inbox and keep only frames whose edge
  /// key is in `node`'s own ring, not revoked, and whose MAC verifies. All
  /// surviving MACs of one inbox verify through one multi-buffer batch.
  /// The returned span points into `scratch` and is valid until its next
  /// use; frame payloads point into the fabric's delivery arena (valid
  /// until the next end_slot). Safe to call concurrently for distinct
  /// nodes with distinct scratches *after* warm_crypto_caches(); the
  /// Tracer overload lets sharded callers meter into a per-shard trace.
  [[nodiscard]] std::span<const Frame> receive_valid(NodeId node,
                                                     RxScratch& scratch);
  [[nodiscard]] std::span<const Frame> receive_valid(NodeId node,
                                                     RxScratch& scratch,
                                                     Tracer tracer);
  /// Convenience overload over an internal scratch (serial call sites and
  /// tests; not for concurrent use).
  [[nodiscard]] std::span<const Frame> receive_valid(NodeId node);

  /// Pre-fill every lazily built crypto cache the hot path reads — the
  /// edge-key slot table and the MAC key schedules — so a following
  /// parallel section sees only cache hits on const state. Call at a
  /// single-threaded point; any revocation/rekey in between requires a
  /// re-warm before the next parallel section. Edge keys are warmed by an
  /// inverted pass: each node's ring is derived ONCE into a transient
  /// bitmap (n · pool/8 bytes, budget-gated) and every edge's smallest
  /// shared non-revoked index read off a bitmap AND — O(n + E) ring
  /// derivations instead of O(E) pairwise merges.
  void warm_crypto_caches() const;

  /// Depth (max BFS level) of the full physical topology.
  [[nodiscard]] Level physical_depth() const { return topology_.depth(); }

  /// Copies per logical transmission (see NetworkSpec::redundancy).
  [[nodiscard]] std::uint32_t redundancy() const noexcept {
    return redundancy_;
  }

  /// Monotone key-material generation: bumped whenever the key material
  /// itself changes (rekey, path-key establishment). Together with the
  /// revocation counts this is the coordinator's epoch-validity snapshot.
  [[nodiscard]] std::uint64_t key_generation() const noexcept {
    return key_generation_;
  }

  /// Re-keying epoch: replace the whole predistribution with fresh
  /// material (new pool seed, new rings). Sensors that were fully revoked
  /// are NOT re-keyed — they stay revoked in the fresh registry — while
  /// honest sensors whose edge keys were burned by past pinpointing runs
  /// come back at full capacity. Path keys disappear with the old pool;
  /// call establish_path_keys() again if needed. Returns the number of
  /// sensors carried over as revoked.
  std::size_t rekey(const KeyMaterialSpec& fresh_keys);

  // --- snapshots (sim/snapshot.h) ---

  /// Serialize the network's mutable state: key generation, the flat
  /// edge-key slot table, the revocation registry, and the fabric.
  /// Immutable material (topology, key pool/rings) is not serialized — it
  /// is pinned by snapshot_fingerprint() and the captured key_generation.
  void snapshot_save(SnapshotWriter& writer) const;
  /// Restore a snapshot_save() image. Throws std::invalid_argument when
  /// the key material changed since capture (key_generation mismatch).
  /// The map-side edge-key cache is cleared, not restored: recompute is
  /// deterministic, so behavior is identical either way.
  void snapshot_load(SnapshotReader& reader);
  /// Identity hash of the immutable deployment substrate: topology CSR,
  /// key-material spec, revocation threshold, redundancy, fabric config.
  [[nodiscard]] std::uint64_t snapshot_fingerprint() const;

 private:
  /// Uncached ring merge behind usable_edge_key().
  [[nodiscard]] std::optional<KeyIndex> compute_usable_edge_key(NodeId a,
                                                                NodeId b) const;

  /// Fill edge_key_slots_ for every physical edge at the current revocation
  /// stamp (see warm_crypto_caches docs for the inverted bitmap pass).
  void warm_edge_keys() const;

  /// Receive-side "does `node` hold the claimed key" check. Fast path: a
  /// warmed edge slot for (from → node) matching the claim proves shared
  /// (hence held) without any ring work; otherwise the thread-safe
  /// re-derivation in Predistribution::node_holds decides (adversarial
  /// claims of non-edge keys, unwarmed serial call sites).
  [[nodiscard]] bool holds_claimed_key(NodeId node, const Frame& frame) const;

  // Immutable deployment identity: pinned by snapshot_fingerprint(), not
  // serialized (see snapshot_save docs).
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  Topology topology_;
  // Key material is pinned by the captured key_generation_, never
  // restored wholesale.
  // vmat-analyze: allow(snapshot-field-coverage) -- generation-pinned
  Predistribution keys_;
  RevocationRegistry revocation_;
  Fabric fabric_;
  // Construction-time config, part of the fingerprint, never mutated.
  // vmat-analyze: allow(snapshot-field-coverage) -- fingerprint-pinned
  std::uint32_t redundancy_;
  std::uint64_t key_generation_{0};
  // Trace sink handle: recording identity is owned by the coordinator,
  // not by forked execution state.
  // vmat-analyze: allow(snapshot-field-coverage) -- trace sink, not state
  Tracer tracer_;

  /// Per-edge cache of the usable_edge_key() ring merge. An entry is valid
  /// while the registry's revoked-key count (monotone: keys are only ever
  /// added) still matches the count recorded at fill time; any revocation
  /// in between forces a recompute, since it may have burned the cached
  /// key or changed the smallest-non-revoked answer. Cleared wholesale on
  /// rekey() and establish_path_keys(), which change the key material
  /// itself. Lazily mutated, hence not thread-safe in general; the sharded
  /// phase drivers call warm_crypto_caches() at a serial point first, after
  /// which parallel lookups are read-only hits.
  struct EdgeKeyEntry {
    std::optional<KeyIndex> key;
    std::size_t revoked_count;
  };
  // Not snapshot-captured: snapshot_load() clears it and lets the
  // deterministic recompute repopulate (see snapshot_load docs).
  // vmat-lint: allow(snapshot-unsafe-state) -- cleared on load, recompute
  mutable std::unordered_map<std::uint64_t, EdgeKeyEntry> edge_key_cache_;

  /// Flat fast path in front of edge_key_cache_: one 8-byte slot per
  /// directed CSR edge, indexed by Topology::directed_edge_slot(), so the
  /// per-frame lookup is two array loads instead of a hash probe. stamp is
  /// revoked_key_count()+1 at fill time (0 = unset); key == kNoKey means
  /// "no usable edge key". Sized once at construction (the fabric compacts
  /// the topology first); cleared by rekey()/establish_path_keys(). The
  /// map stays behind it for non-adjacent queries.
  struct EdgeKeySlot {
    KeyIndex key{kNoKey};
    std::uint32_t stamp{0};
  };
  mutable std::vector<EdgeKeySlot> edge_key_slots_;

  /// Warm-state memo: warm_crypto_caches() is a no-op while the key
  /// generation and revocation stamp it last completed under still hold
  /// (phases re-warm at every serial entry; without this each would redo
  /// the O(n) ring-derivation pass). Invalidated by rekey(), path-key
  /// establishment (generation bump), any revocation (stamp change), and
  /// snapshot_load() (conservative: restored slots may predate a
  /// revocation that happened before capture).
  // vmat-lint: allow(snapshot-unsafe-state) -- invalidated on load
  // vmat-analyze: allow(snapshot-field-coverage) -- cache memo, reset on load
  mutable bool warm_valid_{false};
  // vmat-analyze: allow(snapshot-field-coverage) -- cache memo, reset on load
  mutable std::uint64_t warm_generation_{0};
  // vmat-analyze: allow(snapshot-field-coverage) -- cache memo, reset on load
  mutable std::size_t warm_revoked_count_{0};

  /// Backs the scratch-less receive_valid() overload. Transient per-call
  /// scratch, fully overwritten before every use.
  // vmat-analyze: allow(snapshot-field-coverage) -- transient scratch
  RxScratch own_scratch_;
};

}  // namespace vmat
