// Slotted message fabric.
//
// The VMAT protocol is interval-synchronous: within a slot every node may
// transmit to neighbors, and everything transmitted in slot t is available
// in the receiver's inbox during slot t (delivery within the slot, matching
// the paper's clock-guard-band argument). `end_slot()` moves transmissions
// to inboxes and starts the next slot.
//
// Delivery order within a slot is the global send order. Protocol phase
// drivers always let the adversary transmit *first* in each slot, which is
// the pessimistic race model choking attacks need (a spurious veto beats a
// legitimate veto into a one-time-flood inbox).
//
// An optional per-node per-slot transmit budget models the limited relaying
// capacity that choking attacks exhaust; sends beyond it are dropped and
// counted.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "crypto/mac.h"
#include "sim/topology.h"
#include "trace/trace.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/ids.h"

namespace vmat {

/// A unicast frame on the wire: payload plus the edge-key MAC that
/// authenticates it hop-by-hop. `from` is a *claim* — only the edge MAC
/// constrains who could have produced the frame.
struct Envelope {
  NodeId from;
  NodeId to;
  KeyIndex edge_key{kNoKey};
  Mac edge_mac;
  Bytes payload;
};

/// Per-frame wire overhead: from/to ids (4+4), edge key index (4), and the
/// 8-byte truncated edge MAC. The ONE frame-size definition every byte
/// counter in the repo (fabric accounting, trace counters, summarize()'s
/// KB figures, table_comm_cost) derives from.
inline constexpr std::size_t kFrameOverheadBytes = 20;

/// Reporting convention: 1 KB = 1000 bytes (decimal, not KiB), everywhere.
inline constexpr double kBytesPerKb = 1000.0;

/// Wire size of a frame.
[[nodiscard]] inline std::size_t frame_size(const Envelope& e) noexcept {
  return kFrameOverheadBytes + e.payload.size();
}

class Fabric {
 public:
  explicit Fabric(const Topology* topology,
                  std::size_t capacity_per_slot =
                      std::numeric_limits<std::size_t>::max());

  /// Enable lossy links: every frame is independently lost with the given
  /// probability (deterministic per seed). The transmitter still pays for
  /// the frame (radio energy is spent whether or not anyone hears it).
  /// Probability must lie in [0, 1); out-of-domain values are rejected
  /// with ErrorCode::kInvalidArgument and leave the fabric unchanged.
  [[nodiscard]] Status set_loss(double probability, std::uint64_t seed);

  [[nodiscard]] std::uint64_t frames_lost() const noexcept { return lost_; }

  /// Attach (or detach, with a default-constructed handle) the flight
  /// recorder: send/deliver/drop/loss events and per-phase byte counters.
  void set_tracer(Tracer tracer) noexcept { tracer_ = tracer; }

  /// Queue a frame for delivery this slot. Returns false (and drops the
  /// frame) if the sender exhausted its transmit budget, or the (from, to)
  /// pair is not a physical edge. Malicious senders are subject to physics
  /// too: they can only reach their own neighbors.
  bool send(Envelope envelope);

  /// Like send, but `actual_sender` does the transmitting (and pays the
  /// budget) while the envelope may claim any `from` — source spoofing.
  bool send_as(NodeId actual_sender, Envelope envelope);

  /// Close the current slot: queued frames become receivable.
  void end_slot();

  /// Drain a node's inbox (frames delivered at the last end_slot()).
  [[nodiscard]] std::vector<Envelope> take_inbox(NodeId node);

  /// Discard everything in flight and all inboxes (phase boundary).
  void reset();

  // --- accounting ---
  [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const;
  [[nodiscard]] std::uint64_t bytes_received(NodeId node) const;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }

  [[nodiscard]] const Topology& topology() const noexcept { return *topology_; }

 private:
  const Topology* topology_;
  Tracer tracer_;
  std::size_t capacity_per_slot_;
  double loss_probability_{0.0};
  std::uint64_t loss_rng_state_{0};
  std::uint64_t lost_{0};
  std::vector<std::size_t> sent_this_slot_;
  std::vector<std::vector<Envelope>> in_flight_;
  std::vector<std::vector<Envelope>> inbox_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> bytes_received_;
  std::uint64_t total_bytes_{0};
  std::uint64_t dropped_{0};
  std::uint64_t frames_sent_{0};
};

}  // namespace vmat
